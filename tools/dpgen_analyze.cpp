// dpgen-analyze: turn a recorded run into an attributed performance report.
//
// Three input paths, one output format (schema dpgen.report.v1, see
// tools/report_schema.json and docs/observability.md):
//
//   dpgen-analyze --problem=lcs --params=96,96 --ranks=2 --threads=2
//       runs the bundled problem through the engine with tracing on and
//       reports the measured run (writes the JSON report, prints the text
//       report to stdout).
//
//   dpgen-analyze --problem=lcs --params=96,96 --sim --nodes=4 --cores=4
//       reports the cluster simulator's predicted schedule for the same
//       problem instead of a measured run.
//
//   dpgen-analyze --trace=run_trace.json [--problem=... --params=...]
//       re-ingests a Chrome trace exported by --trace= / trace_json_path.
//       Naming the problem restores the tile-dependency offsets and the
//       Ehrhart baseline; without it the critical path degenerates and the
//       load-balance audit shows measured shares only.  Per-peer counters
//       are not part of a trace, so the comm matrix is empty here.
//
//   dpgen-analyze --validate=report.json --schema=tools/report_schema.json
//       validates a report against the schema (exit 1 on violations).
//
//   dpgen-analyze --diff old.json new.json
//       deltas two dpgen.report.v1 reports (phase buckets along the
//       critical path, path length, comm totals, measured imbalance) —
//       the before/after view of an optimisation.  Text to stdout; pass
//       --report=FILE for the dpgen.reportdiff.v1 JSON as well.
//
//   dpgen-analyze --events=FILE [--schema=tools/events_schema.json]
//                 [--report=report.json]
//       summarizes a live dpgen.events.v1 JSONL log (heartbeats,
//       stragglers, stall warnings).  With --schema every line is
//       validated; with --report the final heartbeat totals are
//       cross-checked against the post-hoc dpgen.report.v1 (per-rank
//       executed tiles and total bytes/messages must conserve between the
//       live and post-hoc views).  Exit 1 on any violation or mismatch.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "minimpi/faults.hpp"
#include "obs/analysis.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "problems/problems.hpp"
#include "sim/cluster_sim.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/json_schema.hpp"
#include "support/str.hpp"
#include "tiling/balance.hpp"
#include "tiling/model.hpp"

namespace {

using namespace dpgen;

struct Options {
  std::string problem;
  IntVec params;
  int ranks = 2;
  int threads = 2;
  bool sim = false;
  int nodes = 4;
  int cores = 4;
  std::string report_path = "dpgen_report.json";
  bool report_path_set = false;
  std::string trace_out;
  std::string trace_in;
  std::string validate_path;
  std::string schema_path;
  std::string events_in;
  std::string diff_old;
  std::string diff_new;
  std::string profile_in;    ///< --profile=: analyze a dpgen.profile.v1 doc
  std::string profile_out;   ///< --profile-out=: profile the engine/sim run
  double profile_hz = 97.0;
  bool profile_cputime = false;
  std::string flame_out;     ///< --flame=: write the HTML icicle view
  std::string msgtrace_in;   ///< --msgtrace=: check a dpgen.msgtrace.v1 doc
  std::string msgtrace_out;  ///< --msgtrace-out=: msgtrace the engine/sim run
  std::string waterfall_out; ///< --waterfall=: per-message HTML view
  std::string faults;        ///< --faults=: run the engine under a fault plan
  bool list = false;
};

/// One bundled problem the CLI can run: factory + default parameters.
/// Sequence problems synthesize deterministic random DNA of the requested
/// lengths, so `--params` stays a plain list of integers everywhere.
struct Entry {
  const char* name;
  const char* params_help;
  IntVec defaults;
  problems::Problem (*make)(const IntVec& params);
};

std::vector<std::string> dna(const IntVec& lengths) {
  std::vector<std::string> seqs;
  for (std::size_t i = 0; i < lengths.size(); ++i)
    seqs.push_back(problems::random_dna(
        static_cast<std::size_t>(lengths[i]), static_cast<unsigned>(i + 1)));
  return seqs;
}

const Entry kEntries[] = {
    {"bandit2", "N", {12},
     [](const IntVec&) { return problems::bandit2(); }},
    {"bandit3", "N", {6},
     [](const IntVec&) { return problems::bandit3(); }},
    {"bandit2_delay", "N", {8},
     [](const IntVec&) { return problems::bandit2_delay(); }},
    {"lcs", "len1,len2[,len3]", {96, 96},
     [](const IntVec& p) { return problems::lcs(dna(p)); }},
    {"edit_distance", "len1,len2", {96, 96},
     [](const IntVec& p) {
       auto s = dna(p);
       return problems::edit_distance(s[0], s[1]);
     }},
    {"smith_waterman", "len1,len2", {96, 96},
     [](const IntVec& p) {
       auto s = dna(p);
       return problems::smith_waterman(s[0], s[1]);
     }},
    {"align_affine", "len1,len2", {64, 64},
     [](const IntVec& p) {
       auto s = dna(p);
       return problems::align_affine(s[0], s[1]);
     }},
    {"msa", "len1,len2[,len3]", {32, 32},
     [](const IntVec& p) { return problems::msa(dna(p)); }},
    {"coin_change", "C", {256},
     [](const IntVec&) { return problems::coin_change({1, 5, 9}); }},
    {"seam_carving", "T,S", {64, 64},
     [](const IntVec&) { return problems::seam_carving(); }},
};

const Entry* find_entry(const std::string& name) {
  for (const Entry& e : kEntries)
    if (name == e.name) return &e;
  return nullptr;
}

IntVec parse_csv(const std::string& text) {
  IntVec out;
  for (const std::string& part : split(text, ","))
    out.push_back(std::atoll(part.c_str()));
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "dpgen-analyze: cannot read '%s'\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --problem=NAME [--params=a,b,..] [--ranks=R] [--threads=T]\n"
      "          [--report=FILE] [--trace-out=FILE] [--profile-out=FILE]\n"
      "          [--profile-hz=HZ] [--profile-cputime]\n"
      "       %s --problem=NAME --sim [--nodes=N] [--cores=C] "
      "[--report=FILE] [--profile-out=FILE]\n"
      "       %s --trace=FILE [--problem=NAME --params=..] [--report=FILE]\n"
      "       %s --validate=DOC [--schema=SCHEMA]   (schema inferred from "
      "the doc's id when omitted)\n"
      "       %s --diff OLD.json NEW.json [--report=FILE]\n"
      "       %s --events=FILE [--schema=SCHEMA] [--report=REPORT]\n"
      "       %s --profile=FILE [--report=REPORT] [--flame=FILE]\n"
      "       %s --msgtrace=FILE [--waterfall=FILE]   (conservation check; "
      "exit 1 on unexplained loss)\n"
      "       %s --list\n"
      "engine runs also accept [--msgtrace-out=FILE] [--faults=PLAN]; sim "
      "runs accept [--msgtrace-out=FILE]\n",
      argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0);
  return 2;
}

/// "(a, b, c)" -> {a, b, c} (the exporter's args.tile rendering).
IntVec parse_tile(const std::string& text) {
  IntVec out;
  std::string body = text;
  if (!body.empty() && body.front() == '(') body = body.substr(1);
  if (!body.empty() && body.back() == ')') body.pop_back();
  if (trim(body).empty()) return out;
  for (const std::string& part : split(body, ","))
    out.push_back(std::atoll(trim(part).c_str()));
  return out;
}

/// Re-ingests a Chrome trace-event document into analyzer spans.
void load_trace(const std::string& path, obs::AnalysisInput* in) {
  json::ValuePtr doc = json::parse(read_file(path));
  if (doc->has("metadata") && doc->at("metadata").has("spans_dropped"))
    in->spans_dropped = static_cast<std::uint64_t>(
        doc->at("metadata").at("spans_dropped").as_number());
  for (const json::ValuePtr& ev : doc->at("traceEvents").as_array()) {
    if (!ev->has("ph") || ev->at("ph").as_string() != "X") continue;
    obs::Phase phase;
    if (!ev->has("args") || !ev->at("args").has("phase") ||
        !obs::phase_from_name(ev->at("args").at("phase").as_string(),
                              &phase))
      continue;
    obs::Span s;
    const double ts_us = ev->at("ts").as_number();
    const double dur_us = ev->at("dur").as_number();
    s.start_ns = static_cast<std::int64_t>(ts_us * 1e3);
    s.end_ns = static_cast<std::int64_t>((ts_us + dur_us) * 1e3);
    s.rank = static_cast<std::int16_t>(ev->at("pid").as_number());
    s.thread = static_cast<std::int16_t>(ev->at("tid").as_number());
    s.phase = phase;
    if (ev->at("args").has("tile")) {
      IntVec tile = parse_tile(ev->at("args").at("tile").as_string());
      s.ncoord = static_cast<std::uint8_t>(
          std::min<std::size_t>(tile.size(), obs::kMaxSpanDims));
      for (std::size_t k = 0; k < s.ncoord; ++k)
        s.coord[k] = static_cast<std::int32_t>(tile[k]);
    }
    in->spans.push_back(s);
  }
}

/// Validates a document through the schema registry: with --schema the
/// given file is used; without it the document's own `schema` field picks
/// the checked-in schema (json::kSchemaRegistry), so every v1 document —
/// report, bench, events, checkpoint, profile — validates through this one
/// path.  dpgen.events.v1 files are JSONL: each line validates separately.
int run_validate(const Options& opt) {
  const std::string text = read_file(opt.validate_path);
  // JSONL detection via the first line: events logs are the only multi-
  // document files the tools emit.  Single documents may still span lines
  // (reports pretty-break between sections), so a first line that is not
  // itself a complete JSON value means "one document" — parse the whole
  // text instead.
  const std::string first_line = text.substr(0, text.find('\n'));
  json::ValuePtr first;
  try {
    first = json::parse(first_line.empty() ? text : first_line);
  } catch (const std::exception&) {
    first = json::parse(text);
  }
  const std::string doc_id =
      first->is(json::Kind::kObject) && first->has("schema")
          ? first->at("schema").as_string()
          : "";

  std::string schema_path = opt.schema_path;
  if (schema_path.empty()) {
    const std::string file = json::schema_file_for(doc_id);
    if (file.empty()) {
      std::fprintf(stderr,
                   "dpgen-analyze: '%s' has unknown schema id '%s' and no "
                   "--schema=FILE was given\n",
                   opt.validate_path.c_str(), doc_id.c_str());
      return 2;
    }
    schema_path = json::find_schema_file(file);
    if (schema_path.empty()) {
      std::fprintf(stderr,
                   "dpgen-analyze: cannot locate %s (set DPGEN_SCHEMA_DIR "
                   "or run from the repo root)\n",
                   file.c_str());
      return 2;
    }
  }
  json::ValuePtr schema = json::parse(read_file(schema_path));

  std::vector<std::string> errors;
  if (doc_id == "dpgen.events.v1") {
    long long lineno = 0;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      ++lineno;
      if (trim(line).empty()) continue;
      for (const std::string& e : json::validate(*schema, *json::parse(line)))
        errors.push_back(cat("line ", lineno, e));
    }
  } else {
    errors = json::validate(*schema, *json::parse(text));
  }
  for (const std::string& e : errors)
    std::fprintf(stderr, "dpgen-analyze: schema violation %s\n", e.c_str());
  if (errors.empty())
    std::printf("%s: valid (%s)\n", opt.validate_path.c_str(),
                schema_path.c_str());
  return errors.empty() ? 0 : 1;
}

int run_diff(const Options& opt) {
  json::ValuePtr old_report = json::parse(read_file(opt.diff_old));
  json::ValuePtr new_report = json::parse(read_file(opt.diff_new));
  obs::ReportDelta delta = obs::diff_reports(*old_report, *new_report);
  std::fputs(obs::diff_text(delta).c_str(), stdout);
  if (opt.report_path_set) {
    std::ofstream out(opt.report_path);
    DPGEN_CHECK(out.good(),
                cat("cannot open diff output '", opt.report_path, "'"));
    out << obs::diff_json(delta);
    std::printf("\ndiff written to %s\n", opt.report_path.c_str());
  }
  return 0;
}

int run_trace(const Options& opt) {
  obs::AnalysisInput in;
  in.source = "trace";
  load_trace(opt.trace_in, &in);
  if (!opt.problem.empty()) {
    const Entry* entry = find_entry(opt.problem);
    if (!entry) {
      std::fprintf(stderr, "dpgen-analyze: unknown problem '%s'\n",
                   opt.problem.c_str());
      return 2;
    }
    IntVec params = in.params = !opt.params.empty() ? opt.params
                                                    : entry->defaults;
    problems::Problem problem = entry->make(params);
    tiling::TilingModel model(problem.spec);
    in.problem = entry->name;
    for (const auto& e : model.edges()) in.edge_offsets.push_back(e.offset);
    int nranks = 0;
    for (const obs::Span& s : in.spans)
      nranks = std::max(nranks, static_cast<int>(s.rank) + 1);
    if (nranks > 0) {
      in.nranks = nranks;
      tiling::LoadBalancer balancer(model, params, nranks);
      for (int r = 0; r < nranks; ++r)
        in.predicted_work.push_back(
            static_cast<double>(balancer.owned_work(r)));
    }
  } else {
    std::fprintf(stderr,
                 "dpgen-analyze: note: no --problem given; dependency "
                 "offsets and the Ehrhart baseline are unavailable\n");
  }
  std::fprintf(stderr,
               "dpgen-analyze: note: per-peer comm counters are not part "
               "of a trace; the comm matrix is empty\n");
  obs::AnalysisReport report = obs::analyze(in);
  obs::write_report_json(opt.report_path, report);
  std::fputs(obs::report_text(report).c_str(), stdout);
  std::printf("\nreport written to %s\n", opt.report_path.c_str());
  return 0;
}

/// Live-vs-post-hoc conservation check: summarizes a dpgen.events.v1 JSONL
/// log, optionally schema-validating every line, and cross-checks the final
/// per-rank heartbeat totals against a dpgen.report.v1 document.
int run_events(const Options& opt) {
  std::ifstream in(opt.events_in);
  if (!in.good()) {
    std::fprintf(stderr, "dpgen-analyze: cannot read '%s'\n",
                 opt.events_in.c_str());
    return 2;
  }
  json::ValuePtr schema;
  if (!opt.schema_path.empty())
    schema = json::parse(read_file(opt.schema_path));

  long long lines = 0, heartbeats = 0, stragglers = 0, stall_warnings = 0;
  int nranks = 0;
  bool saw_run_start = false, saw_run_end = false;
  std::vector<json::ValuePtr> last_heartbeat;  // per rank
  std::vector<int> straggler_ranks;
  int violations = 0;

  std::string line;
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    ++lines;
    json::ValuePtr ev;
    try {
      ev = json::parse(line);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "dpgen-analyze: line %lld: bad JSON: %s\n",
                   lines, e.what());
      ++violations;
      continue;
    }
    if (schema) {
      for (const std::string& err : json::validate(*schema, *ev)) {
        std::fprintf(stderr,
                     "dpgen-analyze: line %lld: schema violation %s\n",
                     lines, err.c_str());
        ++violations;
      }
    }
    const std::string kind =
        ev->has("event") ? ev->at("event").as_string() : "";
    if (kind == "run_start") {
      saw_run_start = true;
      if (ev->has("nranks"))
        nranks = static_cast<int>(ev->at("nranks").as_number());
      last_heartbeat.resize(static_cast<std::size_t>(std::max(nranks, 0)));
    } else if (kind == "heartbeat") {
      ++heartbeats;
      const int r = ev->has("rank")
                        ? static_cast<int>(ev->at("rank").as_number())
                        : -1;
      if (r >= 0) {
        if (r >= static_cast<int>(last_heartbeat.size()))
          last_heartbeat.resize(static_cast<std::size_t>(r) + 1);
        last_heartbeat[static_cast<std::size_t>(r)] = std::move(ev);
      }
    } else if (kind == "straggler") {
      ++stragglers;
      if (ev->has("rank"))
        straggler_ranks.push_back(
            static_cast<int>(ev->at("rank").as_number()));
    } else if (kind == "stall_warning") {
      ++stall_warnings;
    } else if (kind == "run_end") {
      saw_run_end = true;
    }
  }
  if (!saw_run_start || !saw_run_end) {
    std::fprintf(stderr,
                 "dpgen-analyze: events log is %s (run_start %s, run_end "
                 "%s)\n",
                 lines == 0 ? "empty" : "truncated",
                 saw_run_start ? "present" : "missing",
                 saw_run_end ? "present" : "missing");
    ++violations;
  }

  auto mismatch = [&](const std::string& what) {
    std::fprintf(stderr, "dpgen-analyze: conservation mismatch: %s\n",
                 what.c_str());
    ++violations;
  };
  if (opt.report_path_set) {
    json::ValuePtr report = json::parse(read_file(opt.report_path));
    const int report_ranks =
        report->has("nranks")
            ? static_cast<int>(report->at("nranks").as_number())
            : 0;
    if (report_ranks != nranks)
      mismatch(cat("events nranks ", nranks, " vs report nranks ",
                   report_ranks));
    long long live_bytes = 0, live_messages = 0;
    if (report->has("load_balance") &&
        report->at("load_balance").has("ranks")) {
      for (const json::ValuePtr& audit :
           report->at("load_balance").at("ranks").as_array()) {
        const int r = static_cast<int>(audit->at("rank").as_number());
        const long long tiles =
            static_cast<long long>(audit->at("tiles").as_number());
        if (r < 0 || r >= static_cast<int>(last_heartbeat.size()) ||
            !last_heartbeat[static_cast<std::size_t>(r)]) {
          mismatch(cat("report rank ", r, " has no heartbeat"));
          continue;
        }
        const json::Value& hb = *last_heartbeat[static_cast<std::size_t>(r)];
        const long long executed =
            static_cast<long long>(hb.at("executed").as_number());
        if (executed != tiles)
          mismatch(cat("rank ", r, ": live executed ", executed,
                       " vs post-hoc tiles ", tiles));
        live_bytes += static_cast<long long>(hb.at("bytes_sent").as_number());
        live_messages +=
            static_cast<long long>(hb.at("messages_sent").as_number());
      }
    }
    if (report->has("comm_matrix")) {
      const json::Value& cm = report->at("comm_matrix");
      const long long total_bytes =
          static_cast<long long>(cm.at("total_bytes").as_number());
      const long long total_messages =
          static_cast<long long>(cm.at("total_messages").as_number());
      if (live_bytes != total_bytes)
        mismatch(cat("live bytes_sent total ", live_bytes,
                     " vs post-hoc total_bytes ", total_bytes));
      if (live_messages != total_messages)
        mismatch(cat("live messages_sent total ", live_messages,
                     " vs post-hoc total_messages ", total_messages));
    }
  }

  std::string flagged;
  for (std::size_t i = 0; i < straggler_ranks.size(); ++i)
    flagged += cat(i ? "," : " flagged_ranks=", straggler_ranks[i]);
  std::printf(
      "events=%lld heartbeats=%lld stragglers=%lld stall_warnings=%lld "
      "ranks=%d%s\n",
      lines, heartbeats, stragglers, stall_warnings, nranks,
      flagged.c_str());
  if (violations == 0 && opt.report_path_set)
    std::printf("conservation check passed (%s vs %s)\n",
                opt.events_in.c_str(), opt.report_path.c_str());
  return violations == 0 ? 0 : 1;
}

/// Analyzes a dpgen.profile.v1 document: prints the phase self-time
/// histogram and the per-family cost table; with --report= cross-checks the
/// sample attribution against the span-attribution report (exit 1 when a
/// major phase disagrees by more than 15 percentage points — an attribution
/// gap one of the two views is missing); with --flame= writes the
/// self-contained HTML icicle view.
int run_profile(const Options& opt) {
  obs::ProfileDoc prof =
      obs::parse_profile_doc(*json::parse(read_file(opt.profile_in)));

  std::printf(
      "profile: problem=%s source=%s counters=%s sampler=%s hz=%.0f "
      "ranks=%d\nsamples: %lld total, %lld untraced, %lld dropped\n",
      prof.problem.c_str(), prof.source.c_str(), prof.counters.c_str(),
      prof.sampler.c_str(), prof.hz, prof.nranks, prof.samples_total,
      prof.samples_untraced, prof.samples_dropped);

  long long attributed = 0;
  for (int p = 0; p < obs::kProfilePhases; ++p)
    attributed += prof.phase_samples[static_cast<std::size_t>(p)];
  std::printf("\nphase self-time (samples):\n");
  for (int p = 0; p < obs::kProfilePhases; ++p) {
    const long long n = prof.phase_samples[static_cast<std::size_t>(p)];
    if (n == 0) continue;
    std::printf("  %-14s %6.1f%%  (%lld)\n",
                obs::phase_name(static_cast<obs::Phase>(p)),
                attributed > 0 ? 100.0 * static_cast<double>(n) /
                                     static_cast<double>(attributed)
                               : 0.0,
                n);
  }

  // Cost table: measured cost per cell against the Ehrhart prediction.
  // In cputime mode the "cycles" channel counts thread CPU ns, so the
  // column is labelled accordingly and IPC is omitted (no instructions).
  const bool perf = prof.counters == "perf";
  std::printf("\ncost model (%s):\n", prof.counters.c_str());
  std::printf("  %-16s %12s %12s %10s %8s %10s\n", "family", "cells",
              "predicted", perf ? "cyc/cell" : "ns/cell", "ipc",
              "llc/cell");
  for (const obs::ProfileFamily& f : prof.families) {
    std::printf("  %-16s %12lld %12.0f %10.2f %8s %10.4f\n",
                f.name.c_str(), f.cells, f.predicted_cells,
                f.cycles_per_cell(),
                f.ipc() > 0 ? cat(f.ipc()).substr(0, 6).c_str() : "-",
                f.misses_per_cell());
  }

  if (!opt.flame_out.empty()) {
    std::ofstream out(opt.flame_out);
    DPGEN_CHECK(out.good(),
                cat("cannot open flame output '", opt.flame_out, "'"));
    out << obs::profile_flame_html(prof);
    std::printf("\nflame view written to %s\n", opt.flame_out.c_str());
  }

  int violations = 0;
  if (opt.report_path_set) {
    // Cross-check: the profiler's sample shares against the tracer's span
    // attribution.  The two measure the same run through independent
    // channels (statistical samples vs exact span brackets), so a major
    // phase (>= 10% of report time) drifting more than 15 percentage
    // points means one view has an attribution gap.  Span phases the
    // report buckets as "other" (setup work) map load_balance / init_scan
    // / gather; "compute" maps tile_execute.
    json::ValuePtr report = json::parse(read_file(opt.report_path));
    std::map<std::string, double> rep_seconds;
    double rep_total = 0.0;
    DPGEN_CHECK(report->has("load_balance") &&
                    report->at("load_balance").has("ranks"),
                "report has no load_balance.ranks for the cross-check");
    for (const json::ValuePtr& rank_audit :
         report->at("load_balance").at("ranks").as_array()) {
      const json::Value& ph = rank_audit->at("phases_seconds");
      for (const auto& [key, val] : ph.fields) {
        rep_seconds[key] += val->as_number();
        rep_total += val->as_number();
      }
    }
    std::map<std::string, long long> prof_samples;
    for (int p = 0; p < obs::kProfilePhases; ++p) {
      const long long n = prof.phase_samples[static_cast<std::size_t>(p)];
      const std::string name =
          obs::phase_name(static_cast<obs::Phase>(p));
      if (name == "tile_execute")
        prof_samples["compute"] += n;
      else if (name == "load_balance" || name == "init_scan" ||
               name == "gather")
        prof_samples["other"] += n;
      else
        prof_samples[name] += n;
    }
    // Two buckets are structurally unobservable by the sampler and are
    // excluded from both sides before computing shares:
    //  - "idle": the sampling timers run on wall time and a descheduled
    //    thread cannot take a signal, so on an oversubscribed host idle
    //    (mostly descheduled) time is systematically under-sampled.
    //  - "other" (load_balance / init_scan / gather): setup phases that
    //    run on the driver thread before the per-worker samplers attach.
    // Both rows are still printed for context but never gated.
    const double rep_busy =
        rep_total - rep_seconds["idle"] - rep_seconds["other"];
    const double prof_busy = static_cast<double>(
        attributed - prof_samples["idle"] - prof_samples["other"]);
    std::printf("\nattribution cross-check (profile vs %s, busy-time "
                "shares):\n",
                opt.report_path.c_str());
    for (const auto& [key, secs] : rep_seconds) {
      if (key == "idle" || key == "other") {
        std::printf("  %-14s report %5.1f%%  samples %5.1f%%  "
                    "(unobservable, not gated)\n",
                    key.c_str(),
                    rep_total > 0 ? 100.0 * secs / rep_total : 0.0,
                    attributed > 0
                        ? 100.0 * static_cast<double>(prof_samples[key]) /
                              static_cast<double>(attributed)
                        : 0.0);
        continue;
      }
      const double rep_share = rep_busy > 0 ? secs / rep_busy : 0.0;
      const double prof_share =
          prof_busy > 0
              ? static_cast<double>(prof_samples[key]) / prof_busy
              : 0.0;
      const double diff = std::abs(prof_share - rep_share);
      const bool major = rep_share >= 0.10;
      const bool bad = major && diff > 0.15;
      std::printf("  %-14s report %5.1f%%  samples %5.1f%%  %s\n",
                  key.c_str(), 100.0 * rep_share, 100.0 * prof_share,
                  bad ? "MISMATCH" : (major ? "ok" : "minor"));
      if (bad) ++violations;
    }
    if (violations > 0)
      std::fprintf(stderr,
                   "dpgen-analyze: %d phase(s) drifted more than 15 "
                   "percentage points between samples and spans\n",
                   violations);
    else
      std::printf("  sample shares within 15pp of span attribution\n");
  }
  return violations == 0 ? 0 : 1;
}

long long inum(const json::Value& v, const char* key) {
  return v.has(key) ? static_cast<long long>(v.at(key).as_number()) : 0;
}

/// pack + sender_blocked + queue + unpack_wait + dispatch == end_to_end:
/// the decomposition's defining invariant (integer ns, exact).
bool queueing_sums(const json::Value& q) {
  return inum(q, "pack") + inum(q, "sender_blocked") + inum(q, "queue") +
             inum(q, "unpack_wait") + inum(q, "dispatch") ==
         inum(q, "end_to_end");
}

/// Self-contained per-message waterfall: one horizontal bar per record,
/// the five lifecycle segments colour-coded, time left to right.
std::string waterfall_html(const json::Value& doc) {
  static const struct {
    const char* stage;
    const char* from;
    const char* to;
    const char* color;
  } kStages[] = {
      {"pack", "pack_ns", "send_ns", "#4c78a8"},
      {"sender_blocked", "send_ns", "admit_ns", "#e45756"},
      {"queue", "admit_ns", "deliver_ns", "#f58518"},
      {"unpack_wait", "deliver_ns", "unpack_ns", "#72b7b2"},
      {"dispatch", "unpack_ns", "dispatch_ns", "#54a24b"},
  };
  constexpr std::size_t kMaxRows = 2000;
  constexpr double kPlotW = 960.0, kLabelW = 150.0, kRowH = 14.0;

  std::vector<const json::Value*> records;
  for (const json::ValuePtr& r : doc.at("records").as_array())
    records.push_back(r.get());
  std::sort(records.begin(), records.end(),
            [](const json::Value* a, const json::Value* b) {
              return inum(*a, "pack_ns") < inum(*b, "pack_ns");
            });
  const std::size_t rows = std::min(records.size(), kMaxRows);
  long long t0 = 0, t1 = 1;
  if (rows > 0) {
    t0 = inum(*records[0], "pack_ns");
    t1 = t0 + 1;
    for (std::size_t i = 0; i < rows; ++i)
      t1 = std::max(t1, inum(*records[i], "dispatch_ns"));
  }
  auto x_of = [&](long long ns) {
    return kLabelW + kPlotW * static_cast<double>(ns - t0) /
                         static_cast<double>(t1 - t0);
  };

  std::string out = cat(
      "<!doctype html>\n<html><head><meta charset=\"utf-8\">"
      "<title>dpgen message waterfall</title>\n"
      "<style>body{font:13px sans-serif;margin:16px}"
      ".lg{display:inline-block;margin-right:14px}"
      ".sw{display:inline-block;width:11px;height:11px;margin-right:4px;"
      "vertical-align:-1px}"
      "text{font:10px monospace}</style></head>\n<body>\n"
      "<h1>dpgen message waterfall</h1>\n<p>problem: ",
      doc.has("problem") ? doc.at("problem").as_string() : "?",
      " &middot; messages: ", inum(doc, "messages"),
      records.size() > rows
          ? cat(" (showing the first ", rows, " by pack time)")
          : std::string(),
      "</p>\n<p>");
  for (const auto& st : kStages)
    out += cat("<span class=\"lg\"><span class=\"sw\" style=\"background:",
               st.color, "\"></span>", st.stage, "</span>");
  out += cat("</p>\n<svg width=\"", kLabelW + kPlotW + 20, "\" height=\"",
             (static_cast<double>(rows) + 2.0) * kRowH,
             "\" xmlns=\"http://www.w3.org/2000/svg\">\n");
  for (std::size_t i = 0; i < rows; ++i) {
    const json::Value& r = *records[i];
    const double y = (static_cast<double>(i) + 1.0) * kRowH;
    out += cat("<text x=\"0\" y=\"", y + 10, "\">", inum(r, "src"),
               "&#8594;", inum(r, "dst"), " #", inum(r, "seq"), "</text>\n");
    // Stamps are taken in lifecycle order on one clock; render with a
    // running clamp so a malformed record cannot produce negative widths.
    long long prev = inum(r, "pack_ns");
    for (const auto& st : kStages) {
      const long long lo = prev;
      const long long hi = std::max(lo, inum(r, st.to));
      prev = hi;
      if (hi == lo) continue;
      out += cat("<rect x=\"", x_of(lo), "\" y=\"", y + 2, "\" width=\"",
                 x_of(hi) - x_of(lo), "\" height=\"", kRowH - 4,
                 "\" fill=\"", st.color, "\"><title>", st.stage, " ",
                 hi - lo, " ns (edge ", inum(r, "edge"), ", ",
                 inum(r, "bytes"), " bytes)</title></rect>\n");
    }
  }
  out += "</svg>\n</body></html>\n";
  return out;
}

/// Conservation checker for a dpgen.msgtrace.v1 document: re-derives the
/// per-link and aggregate accounting from the links array, re-verifies the
/// queueing decomposition's sum invariant everywhere it appears, and exits
/// nonzero on unexplained message loss (gaps beyond the fault plan's
/// expected drops and the recorded ring overflow) or over-budget repeats.
int run_msgtrace(const Options& opt) {
  json::ValuePtr doc = json::parse(read_file(opt.msgtrace_in));
  if (!doc->has("schema") ||
      doc->at("schema").as_string() != "dpgen.msgtrace.v1") {
    std::fprintf(stderr,
                 "dpgen-analyze: '%s' is not a dpgen.msgtrace.v1 document\n",
                 opt.msgtrace_in.c_str());
    return 2;
  }
  int violations = 0;
  auto fail = [&](const std::string& what) {
    std::fprintf(stderr, "dpgen-analyze: msgtrace violation: %s\n",
                 what.c_str());
    ++violations;
  };

  long long sent = 0, delivered = 0, gaps = 0, repeats = 0;
  for (const json::ValuePtr& link : doc->at("links").as_array()) {
    const long long lsent = inum(*link, "sent");
    const long long ldel = inum(*link, "delivered");
    const long long lgaps = inum(*link, "gaps");
    const long long lrep = inum(*link, "repeats");
    const std::string name =
        cat("link ", inum(*link, "src"), "->", inum(*link, "dst"));
    if (lgaps != std::max(0LL, lsent - ldel))
      fail(cat(name, ": gaps ", lgaps, " != max(0, sent ", lsent,
               " - delivered ", ldel, ")"));
    if (lrep < 0 || ldel < 0 || lsent < 0)
      fail(cat(name, ": negative counter"));
    if (!queueing_sums(link->at("queueing_ns")))
      fail(cat(name, ": queueing buckets do not sum to end_to_end"));
    sent += lsent;
    delivered += ldel;
    gaps += lgaps;
    repeats += lrep;
  }
  if (!queueing_sums(doc->at("queueing_ns")))
    fail("aggregate queueing buckets do not sum to end_to_end");

  const json::Value& c = doc->at("conservation");
  if (inum(c, "total_sent") != sent)
    fail(cat("total_sent ", inum(c, "total_sent"), " != links sum ", sent));
  if (inum(c, "total_delivered") != delivered)
    fail(cat("total_delivered ", inum(c, "total_delivered"),
             " != links sum ", delivered));
  if (inum(c, "total_gaps") != gaps)
    fail(cat("total_gaps ", inum(c, "total_gaps"), " != links sum ", gaps));
  if (inum(c, "total_repeats") != repeats)
    fail(cat("total_repeats ", inum(c, "total_repeats"), " != links sum ",
             repeats));
  const long long explained = std::max(0LL, inum(*doc, "expected_drops")) +
                              inum(*doc, "records_dropped");
  const long long unexplained = std::max(0LL, gaps - explained);
  if (inum(c, "unexplained_loss") != unexplained)
    fail(cat("unexplained_loss ", inum(c, "unexplained_loss"),
             " != recomputed ", unexplained));
  const bool accounted =
      unexplained == 0 &&
      repeats <= std::max(0LL, inum(*doc, "expected_dups"));
  const bool doc_accounted = c.has("accounted") &&
                             c.at("accounted").is(json::Kind::kBool) &&
                             c.at("accounted").boolean;
  if (accounted != doc_accounted)
    fail(cat("accounted flag ", doc_accounted ? "true" : "false",
             " disagrees with recomputed ", accounted ? "true" : "false"));
  if (unexplained > 0)
    fail(cat(unexplained, " message(s) lost beyond the expected drops (",
             inum(*doc, "expected_drops"), ") and ring overflow (",
             inum(*doc, "records_dropped"), ")"));
  if (repeats > std::max(0LL, inum(*doc, "expected_dups")))
    fail(cat(repeats, " repeated delivery(ies) vs ",
             inum(*doc, "expected_dups"), " expected duplicates"));

  // Record-level re-check: when the record array is complete, the
  // aggregate decomposition must equal the per-record sum exactly.
  if (inum(*doc, "records_truncated") == 0) {
    long long e2e = 0;
    for (const json::ValuePtr& r : doc->at("records").as_array()) {
      long long prev = inum(*r, "pack_ns");
      for (const char* key : {"send_ns", "admit_ns", "deliver_ns",
                              "unpack_ns", "dispatch_ns"}) {
        const long long t = inum(*r, key);
        if (t > prev) e2e += t - prev;
        prev = std::max(prev, t);
      }
    }
    if (e2e != inum(doc->at("queueing_ns"), "end_to_end"))
      fail(cat("records sum to end_to_end ", e2e, " but the aggregate says ",
               inum(doc->at("queueing_ns"), "end_to_end")));
  }

  std::printf(
      "msgtrace: %lld records (%lld dropped), %lld sent / %lld delivered, "
      "gaps=%lld repeats=%lld expected_drops=%lld expected_dups=%lld "
      "table_duplicates=%lld unexplained=%lld\n",
      inum(*doc, "messages"), inum(*doc, "records_dropped"), sent, delivered,
      gaps, repeats, inum(*doc, "expected_drops"),
      inum(*doc, "expected_dups"), inum(*doc, "table_duplicates"),
      unexplained);

  if (!opt.waterfall_out.empty()) {
    std::ofstream out(opt.waterfall_out);
    DPGEN_CHECK(out.good(), cat("cannot open waterfall output '",
                                opt.waterfall_out, "'"));
    out << waterfall_html(*doc);
    std::printf("waterfall written to %s\n", opt.waterfall_out.c_str());
  }
  if (violations == 0)
    std::printf("conservation check passed (%s)\n", opt.msgtrace_in.c_str());
  return violations == 0 ? 0 : 1;
}

int run_problem(const Options& opt) {
  const Entry* entry = find_entry(opt.problem);
  if (!entry) {
    std::fprintf(stderr, "dpgen-analyze: unknown problem '%s'\n",
                 opt.problem.c_str());
    return 2;
  }
  IntVec params = !opt.params.empty() ? opt.params : entry->defaults;
  problems::Problem problem = entry->make(params);
  tiling::TilingModel model(problem.spec);

  if (opt.sim) {
    sim::ClusterConfig cfg;
    cfg.nodes = opt.nodes;
    cfg.cores_per_node = opt.cores;
    cfg.record_timeline = true;
    cfg.profile_path = opt.profile_out;
    cfg.profile_hz = opt.profile_hz;
    cfg.problem_name = entry->name;
    cfg.msgtrace_path = opt.msgtrace_out;
    sim::SimResult res = sim::simulate(model, params, cfg);
    obs::AnalysisReport report =
        obs::analyze(sim::analysis_input(res, model, params, cfg));
    obs::write_report_json(opt.report_path, report);
    std::fputs(obs::report_text(report).c_str(), stdout);
    std::printf("\nreport written to %s\n", opt.report_path.c_str());
    if (!opt.profile_out.empty())
      std::printf("synthetic profile written to %s\n",
                  opt.profile_out.c_str());
    if (!opt.msgtrace_out.empty() && opt.msgtrace_out != "-")
      std::printf("msgtrace written to %s\n", opt.msgtrace_out.c_str());
    return 0;
  }

  engine::EngineOptions eopt;
  eopt.ranks = opt.ranks;
  eopt.threads = opt.threads;
  eopt.report_json_path = opt.report_path;
  eopt.trace_json_path = opt.trace_out;
  eopt.profile_path = opt.profile_out;
  eopt.profile_hz = opt.profile_hz;
  eopt.profile_force_cputime = opt.profile_cputime;
  eopt.profile_problem = entry->name;
  eopt.msgtrace_json_path = opt.msgtrace_out;
  if (!opt.faults.empty()) {
    // Chaos leg: inject the plan on the first attempt and let the
    // checkpoint/restart path recover; the msgtrace document carries the
    // plan's drop/dup counts as expected gaps/repeats for --msgtrace.
    eopt.fault_plan = minimpi::FaultPlan::parse(opt.faults);
    eopt.fault_tolerant = true;
    eopt.recover_stall_seconds = 0.25;
  }
  engine::EngineResult result =
      engine::run(model, params, problem.kernel, eopt);
  std::fputs(obs::report_text(*result.report).c_str(), stdout);
  std::printf("\nreport written to %s\n", opt.report_path.c_str());
  if (!opt.trace_out.empty())
    std::printf("trace written to %s\n", opt.trace_out.c_str());
  if (!opt.msgtrace_out.empty() && opt.msgtrace_out != "-")
    std::printf("msgtrace written to %s\n", opt.msgtrace_out.c_str());
  if (result.profile) {
    const obs::ProfileDoc& p = *result.profile;
    std::printf(
        "profile: %lld samples (%s counters) over %zu threads",
        p.samples_total, p.counters.c_str(), p.threads.size());
    if (!p.families.empty())
      std::printf(", %.2f %s/cell",
                  p.families[0].cycles_per_cell(),
                  p.counters == "perf" ? "cyc" : "ns");
    std::printf("\n");
    if (opt.profile_out != "-")
      std::printf("profile written to %s\n", opt.profile_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? argv[i] + n : nullptr;
    };
    if (const char* v = value("--problem=")) opt.problem = v;
    else if (const char* v = value("--params=")) opt.params = parse_csv(v);
    else if (const char* v = value("--ranks=")) opt.ranks = std::atoi(v);
    else if (const char* v = value("--threads=")) opt.threads = std::atoi(v);
    else if (arg == "--sim") opt.sim = true;
    else if (const char* v = value("--nodes=")) opt.nodes = std::atoi(v);
    else if (const char* v = value("--cores=")) opt.cores = std::atoi(v);
    else if (const char* v = value("--report=")) {
      opt.report_path = v;
      opt.report_path_set = true;
    }
    else if (const char* v = value("--trace-out=")) opt.trace_out = v;
    else if (const char* v = value("--trace=")) opt.trace_in = v;
    else if (const char* v = value("--validate=")) opt.validate_path = v;
    else if (const char* v = value("--schema=")) opt.schema_path = v;
    else if (const char* v = value("--events=")) opt.events_in = v;
    else if (const char* v = value("--profile-out=")) opt.profile_out = v;
    else if (const char* v = value("--profile-hz=")) opt.profile_hz = std::atof(v);
    else if (arg == "--profile-cputime") opt.profile_cputime = true;
    else if (const char* v = value("--profile=")) opt.profile_in = v;
    else if (const char* v = value("--flame=")) opt.flame_out = v;
    else if (const char* v = value("--msgtrace-out=")) opt.msgtrace_out = v;
    else if (const char* v = value("--msgtrace=")) opt.msgtrace_in = v;
    else if (const char* v = value("--waterfall=")) opt.waterfall_out = v;
    else if (const char* v = value("--faults=")) opt.faults = v;
    else if (const char* v = value("--diff=")) {
      const std::vector<std::string> parts = split(v, ",");
      if (parts.size() != 2) return usage(argv[0]);
      opt.diff_old = parts[0];
      opt.diff_new = parts[1];
    }
    else if (arg == "--diff" && i + 2 < argc) {
      opt.diff_old = argv[++i];
      opt.diff_new = argv[++i];
    }
    else if (arg == "--list") opt.list = true;
    else return usage(argv[0]);
  }

  if (opt.list) {
    for (const Entry& e : kEntries) {
      std::string defaults;
      for (std::size_t k = 0; k < e.defaults.size(); ++k)
        defaults += dpgen::cat(k ? "," : "", e.defaults[k]);
      std::printf("%-14s params: %-18s default: %s\n", e.name,
                  e.params_help, defaults.c_str());
    }
    return 0;
  }
  try {
    if (!opt.validate_path.empty()) return run_validate(opt);
    if (!opt.events_in.empty()) return run_events(opt);
    if (!opt.diff_old.empty()) return run_diff(opt);
    if (!opt.profile_in.empty()) return run_profile(opt);
    if (!opt.msgtrace_in.empty()) return run_msgtrace(opt);
    if (!opt.trace_in.empty()) return run_trace(opt);
    if (!opt.problem.empty()) return run_problem(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dpgen-analyze: %s\n", e.what());
    return 1;
  }
  return usage(argv[0]);
}
