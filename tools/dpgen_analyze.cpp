// dpgen-analyze: turn a recorded run into an attributed performance report.
//
// Three input paths, one output format (schema dpgen.report.v1, see
// tools/report_schema.json and docs/observability.md):
//
//   dpgen-analyze --problem=lcs --params=96,96 --ranks=2 --threads=2
//       runs the bundled problem through the engine with tracing on and
//       reports the measured run (writes the JSON report, prints the text
//       report to stdout).
//
//   dpgen-analyze --problem=lcs --params=96,96 --sim --nodes=4 --cores=4
//       reports the cluster simulator's predicted schedule for the same
//       problem instead of a measured run.
//
//   dpgen-analyze --trace=run_trace.json [--problem=... --params=...]
//       re-ingests a Chrome trace exported by --trace= / trace_json_path.
//       Naming the problem restores the tile-dependency offsets and the
//       Ehrhart baseline; without it the critical path degenerates and the
//       load-balance audit shows measured shares only.  Per-peer counters
//       are not part of a trace, so the comm matrix is empty here.
//
//   dpgen-analyze --validate=report.json --schema=tools/report_schema.json
//       validates a report against the schema (exit 1 on violations).
//
//   dpgen-analyze --diff old.json new.json
//       deltas two dpgen.report.v1 reports (phase buckets along the
//       critical path, path length, comm totals, measured imbalance) —
//       the before/after view of an optimisation.  Text to stdout; pass
//       --report=FILE for the dpgen.reportdiff.v1 JSON as well.
//
//   dpgen-analyze --events=FILE [--schema=tools/events_schema.json]
//                 [--report=report.json]
//       summarizes a live dpgen.events.v1 JSONL log (heartbeats,
//       stragglers, stall warnings).  With --schema every line is
//       validated; with --report the final heartbeat totals are
//       cross-checked against the post-hoc dpgen.report.v1 (per-rank
//       executed tiles and total bytes/messages must conserve between the
//       live and post-hoc views).  Exit 1 on any violation or mismatch.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "obs/analysis.hpp"
#include "obs/trace.hpp"
#include "problems/problems.hpp"
#include "sim/cluster_sim.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/json_schema.hpp"
#include "support/str.hpp"
#include "tiling/balance.hpp"
#include "tiling/model.hpp"

namespace {

using namespace dpgen;

struct Options {
  std::string problem;
  IntVec params;
  int ranks = 2;
  int threads = 2;
  bool sim = false;
  int nodes = 4;
  int cores = 4;
  std::string report_path = "dpgen_report.json";
  bool report_path_set = false;
  std::string trace_out;
  std::string trace_in;
  std::string validate_path;
  std::string schema_path;
  std::string events_in;
  std::string diff_old;
  std::string diff_new;
  bool list = false;
};

/// One bundled problem the CLI can run: factory + default parameters.
/// Sequence problems synthesize deterministic random DNA of the requested
/// lengths, so `--params` stays a plain list of integers everywhere.
struct Entry {
  const char* name;
  const char* params_help;
  IntVec defaults;
  problems::Problem (*make)(const IntVec& params);
};

std::vector<std::string> dna(const IntVec& lengths) {
  std::vector<std::string> seqs;
  for (std::size_t i = 0; i < lengths.size(); ++i)
    seqs.push_back(problems::random_dna(
        static_cast<std::size_t>(lengths[i]), static_cast<unsigned>(i + 1)));
  return seqs;
}

const Entry kEntries[] = {
    {"bandit2", "N", {12},
     [](const IntVec&) { return problems::bandit2(); }},
    {"bandit3", "N", {6},
     [](const IntVec&) { return problems::bandit3(); }},
    {"bandit2_delay", "N", {8},
     [](const IntVec&) { return problems::bandit2_delay(); }},
    {"lcs", "len1,len2[,len3]", {96, 96},
     [](const IntVec& p) { return problems::lcs(dna(p)); }},
    {"edit_distance", "len1,len2", {96, 96},
     [](const IntVec& p) {
       auto s = dna(p);
       return problems::edit_distance(s[0], s[1]);
     }},
    {"smith_waterman", "len1,len2", {96, 96},
     [](const IntVec& p) {
       auto s = dna(p);
       return problems::smith_waterman(s[0], s[1]);
     }},
    {"align_affine", "len1,len2", {64, 64},
     [](const IntVec& p) {
       auto s = dna(p);
       return problems::align_affine(s[0], s[1]);
     }},
    {"msa", "len1,len2[,len3]", {32, 32},
     [](const IntVec& p) { return problems::msa(dna(p)); }},
    {"coin_change", "C", {256},
     [](const IntVec&) { return problems::coin_change({1, 5, 9}); }},
    {"seam_carving", "T,S", {64, 64},
     [](const IntVec&) { return problems::seam_carving(); }},
};

const Entry* find_entry(const std::string& name) {
  for (const Entry& e : kEntries)
    if (name == e.name) return &e;
  return nullptr;
}

IntVec parse_csv(const std::string& text) {
  IntVec out;
  for (const std::string& part : split(text, ","))
    out.push_back(std::atoll(part.c_str()));
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "dpgen-analyze: cannot read '%s'\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --problem=NAME [--params=a,b,..] [--ranks=R] [--threads=T]\n"
      "          [--report=FILE] [--trace-out=FILE]\n"
      "       %s --problem=NAME --sim [--nodes=N] [--cores=C] "
      "[--report=FILE]\n"
      "       %s --trace=FILE [--problem=NAME --params=..] [--report=FILE]\n"
      "       %s --validate=REPORT --schema=SCHEMA\n"
      "       %s --diff OLD.json NEW.json [--report=FILE]\n"
      "       %s --events=FILE [--schema=SCHEMA] [--report=REPORT]\n"
      "       %s --list\n",
      argv0, argv0, argv0, argv0, argv0, argv0, argv0);
  return 2;
}

/// "(a, b, c)" -> {a, b, c} (the exporter's args.tile rendering).
IntVec parse_tile(const std::string& text) {
  IntVec out;
  std::string body = text;
  if (!body.empty() && body.front() == '(') body = body.substr(1);
  if (!body.empty() && body.back() == ')') body.pop_back();
  if (trim(body).empty()) return out;
  for (const std::string& part : split(body, ","))
    out.push_back(std::atoll(trim(part).c_str()));
  return out;
}

/// Re-ingests a Chrome trace-event document into analyzer spans.
void load_trace(const std::string& path, obs::AnalysisInput* in) {
  json::ValuePtr doc = json::parse(read_file(path));
  if (doc->has("metadata") && doc->at("metadata").has("spans_dropped"))
    in->spans_dropped = static_cast<std::uint64_t>(
        doc->at("metadata").at("spans_dropped").as_number());
  for (const json::ValuePtr& ev : doc->at("traceEvents").as_array()) {
    if (!ev->has("ph") || ev->at("ph").as_string() != "X") continue;
    obs::Phase phase;
    if (!ev->has("args") || !ev->at("args").has("phase") ||
        !obs::phase_from_name(ev->at("args").at("phase").as_string(),
                              &phase))
      continue;
    obs::Span s;
    const double ts_us = ev->at("ts").as_number();
    const double dur_us = ev->at("dur").as_number();
    s.start_ns = static_cast<std::int64_t>(ts_us * 1e3);
    s.end_ns = static_cast<std::int64_t>((ts_us + dur_us) * 1e3);
    s.rank = static_cast<std::int16_t>(ev->at("pid").as_number());
    s.thread = static_cast<std::int16_t>(ev->at("tid").as_number());
    s.phase = phase;
    if (ev->at("args").has("tile")) {
      IntVec tile = parse_tile(ev->at("args").at("tile").as_string());
      s.ncoord = static_cast<std::uint8_t>(
          std::min<std::size_t>(tile.size(), obs::kMaxSpanDims));
      for (std::size_t k = 0; k < s.ncoord; ++k)
        s.coord[k] = static_cast<std::int32_t>(tile[k]);
    }
    in->spans.push_back(s);
  }
}

int run_validate(const Options& opt) {
  if (opt.schema_path.empty()) {
    std::fprintf(stderr,
                 "dpgen-analyze: --validate needs --schema=FILE\n");
    return 2;
  }
  json::ValuePtr schema = json::parse(read_file(opt.schema_path));
  json::ValuePtr report = json::parse(read_file(opt.validate_path));
  std::vector<std::string> errors = json::validate(*schema, *report);
  for (const std::string& e : errors)
    std::fprintf(stderr, "dpgen-analyze: schema violation %s\n", e.c_str());
  if (errors.empty())
    std::printf("%s: valid (%s)\n", opt.validate_path.c_str(),
                opt.schema_path.c_str());
  return errors.empty() ? 0 : 1;
}

int run_diff(const Options& opt) {
  json::ValuePtr old_report = json::parse(read_file(opt.diff_old));
  json::ValuePtr new_report = json::parse(read_file(opt.diff_new));
  obs::ReportDelta delta = obs::diff_reports(*old_report, *new_report);
  std::fputs(obs::diff_text(delta).c_str(), stdout);
  if (opt.report_path_set) {
    std::ofstream out(opt.report_path);
    DPGEN_CHECK(out.good(),
                cat("cannot open diff output '", opt.report_path, "'"));
    out << obs::diff_json(delta);
    std::printf("\ndiff written to %s\n", opt.report_path.c_str());
  }
  return 0;
}

int run_trace(const Options& opt) {
  obs::AnalysisInput in;
  in.source = "trace";
  load_trace(opt.trace_in, &in);
  if (!opt.problem.empty()) {
    const Entry* entry = find_entry(opt.problem);
    if (!entry) {
      std::fprintf(stderr, "dpgen-analyze: unknown problem '%s'\n",
                   opt.problem.c_str());
      return 2;
    }
    IntVec params = in.params = !opt.params.empty() ? opt.params
                                                    : entry->defaults;
    problems::Problem problem = entry->make(params);
    tiling::TilingModel model(problem.spec);
    in.problem = entry->name;
    for (const auto& e : model.edges()) in.edge_offsets.push_back(e.offset);
    int nranks = 0;
    for (const obs::Span& s : in.spans)
      nranks = std::max(nranks, static_cast<int>(s.rank) + 1);
    if (nranks > 0) {
      in.nranks = nranks;
      tiling::LoadBalancer balancer(model, params, nranks);
      for (int r = 0; r < nranks; ++r)
        in.predicted_work.push_back(
            static_cast<double>(balancer.owned_work(r)));
    }
  } else {
    std::fprintf(stderr,
                 "dpgen-analyze: note: no --problem given; dependency "
                 "offsets and the Ehrhart baseline are unavailable\n");
  }
  std::fprintf(stderr,
               "dpgen-analyze: note: per-peer comm counters are not part "
               "of a trace; the comm matrix is empty\n");
  obs::AnalysisReport report = obs::analyze(in);
  obs::write_report_json(opt.report_path, report);
  std::fputs(obs::report_text(report).c_str(), stdout);
  std::printf("\nreport written to %s\n", opt.report_path.c_str());
  return 0;
}

/// Live-vs-post-hoc conservation check: summarizes a dpgen.events.v1 JSONL
/// log, optionally schema-validating every line, and cross-checks the final
/// per-rank heartbeat totals against a dpgen.report.v1 document.
int run_events(const Options& opt) {
  std::ifstream in(opt.events_in);
  if (!in.good()) {
    std::fprintf(stderr, "dpgen-analyze: cannot read '%s'\n",
                 opt.events_in.c_str());
    return 2;
  }
  json::ValuePtr schema;
  if (!opt.schema_path.empty())
    schema = json::parse(read_file(opt.schema_path));

  long long lines = 0, heartbeats = 0, stragglers = 0, stall_warnings = 0;
  int nranks = 0;
  bool saw_run_start = false, saw_run_end = false;
  std::vector<json::ValuePtr> last_heartbeat;  // per rank
  std::vector<int> straggler_ranks;
  int violations = 0;

  std::string line;
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    ++lines;
    json::ValuePtr ev;
    try {
      ev = json::parse(line);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "dpgen-analyze: line %lld: bad JSON: %s\n",
                   lines, e.what());
      ++violations;
      continue;
    }
    if (schema) {
      for (const std::string& err : json::validate(*schema, *ev)) {
        std::fprintf(stderr,
                     "dpgen-analyze: line %lld: schema violation %s\n",
                     lines, err.c_str());
        ++violations;
      }
    }
    const std::string kind =
        ev->has("event") ? ev->at("event").as_string() : "";
    if (kind == "run_start") {
      saw_run_start = true;
      if (ev->has("nranks"))
        nranks = static_cast<int>(ev->at("nranks").as_number());
      last_heartbeat.resize(static_cast<std::size_t>(std::max(nranks, 0)));
    } else if (kind == "heartbeat") {
      ++heartbeats;
      const int r = ev->has("rank")
                        ? static_cast<int>(ev->at("rank").as_number())
                        : -1;
      if (r >= 0) {
        if (r >= static_cast<int>(last_heartbeat.size()))
          last_heartbeat.resize(static_cast<std::size_t>(r) + 1);
        last_heartbeat[static_cast<std::size_t>(r)] = std::move(ev);
      }
    } else if (kind == "straggler") {
      ++stragglers;
      if (ev->has("rank"))
        straggler_ranks.push_back(
            static_cast<int>(ev->at("rank").as_number()));
    } else if (kind == "stall_warning") {
      ++stall_warnings;
    } else if (kind == "run_end") {
      saw_run_end = true;
    }
  }
  if (!saw_run_start || !saw_run_end) {
    std::fprintf(stderr,
                 "dpgen-analyze: events log is %s (run_start %s, run_end "
                 "%s)\n",
                 lines == 0 ? "empty" : "truncated",
                 saw_run_start ? "present" : "missing",
                 saw_run_end ? "present" : "missing");
    ++violations;
  }

  auto mismatch = [&](const std::string& what) {
    std::fprintf(stderr, "dpgen-analyze: conservation mismatch: %s\n",
                 what.c_str());
    ++violations;
  };
  if (opt.report_path_set) {
    json::ValuePtr report = json::parse(read_file(opt.report_path));
    const int report_ranks =
        report->has("nranks")
            ? static_cast<int>(report->at("nranks").as_number())
            : 0;
    if (report_ranks != nranks)
      mismatch(cat("events nranks ", nranks, " vs report nranks ",
                   report_ranks));
    long long live_bytes = 0, live_messages = 0;
    if (report->has("load_balance") &&
        report->at("load_balance").has("ranks")) {
      for (const json::ValuePtr& audit :
           report->at("load_balance").at("ranks").as_array()) {
        const int r = static_cast<int>(audit->at("rank").as_number());
        const long long tiles =
            static_cast<long long>(audit->at("tiles").as_number());
        if (r < 0 || r >= static_cast<int>(last_heartbeat.size()) ||
            !last_heartbeat[static_cast<std::size_t>(r)]) {
          mismatch(cat("report rank ", r, " has no heartbeat"));
          continue;
        }
        const json::Value& hb = *last_heartbeat[static_cast<std::size_t>(r)];
        const long long executed =
            static_cast<long long>(hb.at("executed").as_number());
        if (executed != tiles)
          mismatch(cat("rank ", r, ": live executed ", executed,
                       " vs post-hoc tiles ", tiles));
        live_bytes += static_cast<long long>(hb.at("bytes_sent").as_number());
        live_messages +=
            static_cast<long long>(hb.at("messages_sent").as_number());
      }
    }
    if (report->has("comm_matrix")) {
      const json::Value& cm = report->at("comm_matrix");
      const long long total_bytes =
          static_cast<long long>(cm.at("total_bytes").as_number());
      const long long total_messages =
          static_cast<long long>(cm.at("total_messages").as_number());
      if (live_bytes != total_bytes)
        mismatch(cat("live bytes_sent total ", live_bytes,
                     " vs post-hoc total_bytes ", total_bytes));
      if (live_messages != total_messages)
        mismatch(cat("live messages_sent total ", live_messages,
                     " vs post-hoc total_messages ", total_messages));
    }
  }

  std::string flagged;
  for (std::size_t i = 0; i < straggler_ranks.size(); ++i)
    flagged += cat(i ? "," : " flagged_ranks=", straggler_ranks[i]);
  std::printf(
      "events=%lld heartbeats=%lld stragglers=%lld stall_warnings=%lld "
      "ranks=%d%s\n",
      lines, heartbeats, stragglers, stall_warnings, nranks,
      flagged.c_str());
  if (violations == 0 && opt.report_path_set)
    std::printf("conservation check passed (%s vs %s)\n",
                opt.events_in.c_str(), opt.report_path.c_str());
  return violations == 0 ? 0 : 1;
}

int run_problem(const Options& opt) {
  const Entry* entry = find_entry(opt.problem);
  if (!entry) {
    std::fprintf(stderr, "dpgen-analyze: unknown problem '%s'\n",
                 opt.problem.c_str());
    return 2;
  }
  IntVec params = !opt.params.empty() ? opt.params : entry->defaults;
  problems::Problem problem = entry->make(params);
  tiling::TilingModel model(problem.spec);

  if (opt.sim) {
    sim::ClusterConfig cfg;
    cfg.nodes = opt.nodes;
    cfg.cores_per_node = opt.cores;
    cfg.record_timeline = true;
    sim::SimResult res = sim::simulate(model, params, cfg);
    obs::AnalysisReport report =
        obs::analyze(sim::analysis_input(res, model, params, cfg));
    obs::write_report_json(opt.report_path, report);
    std::fputs(obs::report_text(report).c_str(), stdout);
    std::printf("\nreport written to %s\n", opt.report_path.c_str());
    return 0;
  }

  engine::EngineOptions eopt;
  eopt.ranks = opt.ranks;
  eopt.threads = opt.threads;
  eopt.report_json_path = opt.report_path;
  eopt.trace_json_path = opt.trace_out;
  engine::EngineResult result =
      engine::run(model, params, problem.kernel, eopt);
  std::fputs(obs::report_text(*result.report).c_str(), stdout);
  std::printf("\nreport written to %s\n", opt.report_path.c_str());
  if (!opt.trace_out.empty())
    std::printf("trace written to %s\n", opt.trace_out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? argv[i] + n : nullptr;
    };
    if (const char* v = value("--problem=")) opt.problem = v;
    else if (const char* v = value("--params=")) opt.params = parse_csv(v);
    else if (const char* v = value("--ranks=")) opt.ranks = std::atoi(v);
    else if (const char* v = value("--threads=")) opt.threads = std::atoi(v);
    else if (arg == "--sim") opt.sim = true;
    else if (const char* v = value("--nodes=")) opt.nodes = std::atoi(v);
    else if (const char* v = value("--cores=")) opt.cores = std::atoi(v);
    else if (const char* v = value("--report=")) {
      opt.report_path = v;
      opt.report_path_set = true;
    }
    else if (const char* v = value("--trace-out=")) opt.trace_out = v;
    else if (const char* v = value("--trace=")) opt.trace_in = v;
    else if (const char* v = value("--validate=")) opt.validate_path = v;
    else if (const char* v = value("--schema=")) opt.schema_path = v;
    else if (const char* v = value("--events=")) opt.events_in = v;
    else if (const char* v = value("--diff=")) {
      const std::vector<std::string> parts = split(v, ",");
      if (parts.size() != 2) return usage(argv[0]);
      opt.diff_old = parts[0];
      opt.diff_new = parts[1];
    }
    else if (arg == "--diff" && i + 2 < argc) {
      opt.diff_old = argv[++i];
      opt.diff_new = argv[++i];
    }
    else if (arg == "--list") opt.list = true;
    else return usage(argv[0]);
  }

  if (opt.list) {
    for (const Entry& e : kEntries) {
      std::string defaults;
      for (std::size_t k = 0; k < e.defaults.size(); ++k)
        defaults += dpgen::cat(k ? "," : "", e.defaults[k]);
      std::printf("%-14s params: %-18s default: %s\n", e.name,
                  e.params_help, defaults.c_str());
    }
    return 0;
  }
  try {
    if (!opt.validate_path.empty()) return run_validate(opt);
    if (!opt.events_in.empty()) return run_events(opt);
    if (!opt.diff_old.empty()) return run_diff(opt);
    if (!opt.trace_in.empty()) return run_trace(opt);
    if (!opt.problem.empty()) return run_problem(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dpgen-analyze: %s\n", e.what());
    return 1;
  }
  return usage(argv[0]);
}
