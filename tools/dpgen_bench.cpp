// dpgen-bench — the continuous-benchmarking runner over the unified bench
// registry (src/obs/bench_registry.hpp).  Every bench/bench_*.cpp
// translation unit registers its workloads; this binary links them all
// (via the dpgen_benchsuite object library) and runs any subset with
// repeated trials, robust statistics and a perf-regression gate:
//
//   dpgen-bench --list
//       names every registered bench ("family/config").
//
//   dpgen-bench [--filter=a,b] [--trials=N] [--warmup=N] [--json=FILE]
//       runs the selected benches, prints median/MAD/min per bench and
//       optionally writes the dpgen.bench.v1 document.
//
//   dpgen-bench --save-baseline [--archive-dir=DIR]
//       archives the run as DIR/baseline-<fingerprint>.json — the
//       per-machine comparison point for --gate.
//
//   dpgen-bench --archive [--archive-dir=DIR]
//       archives the run as DIR/run-<fingerprint>-<timestamp>.json; the
//       accumulated series feeds --trend.
//
//   dpgen-bench --gate [--baseline=FILE] [--min-delta=R] [--mad-factor=K]
//       compares the run against the baseline (default: the archived
//       per-machine baseline, established automatically on first run)
//       with per-bench thresholds max(min-delta, K * MAD / median); exits
//       1 listing regressions.  A baseline from a different machine
//       fingerprint skips the gate with a warning (exit 0): numbers are
//       only comparable on the machine that produced them.
//
//   dpgen-bench --trend=FILE.html [--archive-dir=DIR]
//       renders the archived series (matching this machine's fingerprint)
//       into a self-contained HTML page of SVG charts.
//
//   dpgen-bench --validate=FILE [--schema=tools/bench_schema.json]
//       validates a dpgen.bench.v1 document (exit 1 on violations); the
//       schema is resolved from the document's own id via the shared
//       registry (support/json_schema.hpp) when --schema is omitted.
//
// --self-test-slowdown=X scales every measured sample by X; the check.sh
// self-test uses it to prove the gate fires on a synthetic regression.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_registry.hpp"
#include "sim/svg.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/json_schema.hpp"
#include "support/str.hpp"

namespace {

using namespace dpgen;
namespace fs = std::filesystem;

struct Options {
  std::string filter;
  int trials = 5;
  int warmup = 1;
  std::string json_path;
  std::string baseline_path;
  bool save_baseline = false;
  bool archive = false;
  std::string archive_dir = "bench-archive";
  bool gate = false;
  std::string gate_json_path;
  double min_delta = 0.10;
  double mad_factor = 5.0;
  double min_abs_delta = 1e-4;
  std::string trend_path;
  std::string validate_path;
  std::string schema_path;
  double self_test_slowdown = 1.0;
  bool list = false;
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--filter=a,b] [--trials=N] [--warmup=N] [--json=FILE]\n"
      "          [--save-baseline] [--archive] [--archive-dir=DIR]\n"
      "          [--gate] [--baseline=FILE] [--gate-json=FILE]\n"
      "          [--min-delta=R] [--mad-factor=K] [--min-abs-delta=S]\n"
      "          [--self-test-slowdown=X]\n"
      "       %s --trend=FILE.html [--archive-dir=DIR]\n"
      "       %s --validate=FILE [--schema=SCHEMA]   (schema inferred "
      "from the doc's id when omitted)\n"
      "       %s --list\n",
      argv0, argv0, argv0, argv0);
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  DPGEN_CHECK(in.good(), cat("cannot open '", path, "'"));
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

obs::BenchDoc load_doc(const std::string& path) {
  return obs::parse_bench_doc(*json::parse(read_file(path)));
}

std::string baseline_path_for(const Options& opt,
                              const obs::RunMeta& meta) {
  if (!opt.baseline_path.empty()) return opt.baseline_path;
  return cat(opt.archive_dir, "/baseline-", meta.fingerprint, ".json");
}

int run_validate(const Options& opt) {
  json::ValuePtr doc = json::parse(read_file(opt.validate_path));
  std::string schema_path = opt.schema_path;
  if (schema_path.empty()) {
    // No --schema: resolve from the document's own id through the shared
    // registry (support/json_schema.hpp), same as dpgen-analyze.
    const std::string id =
        doc->has("schema") ? doc->at("schema").as_string() : "";
    const std::string file = json::schema_file_for(id);
    if (file.empty()) {
      std::fprintf(stderr,
                   "dpgen-bench: document schema id '%s' not in the "
                   "registry; pass --schema=FILE\n",
                   id.c_str());
      return 2;
    }
    schema_path = json::find_schema_file(file);
    if (schema_path.empty()) {
      std::fprintf(stderr,
                   "dpgen-bench: cannot locate %s (set DPGEN_SCHEMA_DIR "
                   "or run from the repo root)\n",
                   file.c_str());
      return 2;
    }
  }
  json::ValuePtr schema = json::parse(read_file(schema_path));
  std::vector<std::string> errors = json::validate(*schema, *doc);
  for (const std::string& e : errors)
    std::fprintf(stderr, "dpgen-bench: schema violation %s\n", e.c_str());
  if (errors.empty())
    std::printf("%s: valid (%s)\n", opt.validate_path.c_str(),
                schema_path.c_str());
  return errors.empty() ? 0 : 1;
}

int run_list() {
  for (const std::string& name :
       obs::BenchRegistry::instance().select(""))
    std::printf("%s\n", name.c_str());
  return 0;
}

obs::BenchDoc run_selected(const Options& opt) {
  auto& reg = obs::BenchRegistry::instance();
  std::vector<std::string> names = reg.select(opt.filter);
  DPGEN_CHECK(!names.empty(),
              cat("no registered bench matches filter '", opt.filter, "'"));
  obs::BenchDoc doc;
  doc.meta = obs::collect_run_meta(opt.trials);
  std::printf("%-36s %-7s %-5s %-12s %-12s %-12s\n", "bench", "trials",
              "kept", "median_s", "mad_s", "min_s");
  for (const std::string& name : names) {
    const obs::BenchEntry* entry = reg.find(name);
    obs::BenchRecord rec = obs::run_bench(*entry, opt.trials, opt.warmup,
                                          opt.self_test_slowdown);
    std::printf("%-36s %-7d %-5d %-12.5f %-12.5f %-12.5f\n",
                rec.name.c_str(), rec.stats.trials, rec.stats.kept,
                rec.stats.median_s, rec.stats.mad_s, rec.stats.min_s);
    std::fflush(stdout);
    doc.records.push_back(std::move(rec));
  }
  return doc;
}

int run_trend(const Options& opt) {
  const obs::RunMeta here = obs::collect_run_meta(0);
  std::vector<obs::BenchDoc> docs;
  if (fs::is_directory(opt.archive_dir)) {
    for (const auto& e : fs::directory_iterator(opt.archive_dir)) {
      if (e.path().extension() != ".json") continue;
      try {
        obs::BenchDoc d = load_doc(e.path().string());
        if (d.meta.fingerprint == here.fingerprint)
          docs.push_back(std::move(d));
      } catch (const std::exception&) {
        // Not a bench document (e.g. a legacy hotpath archive); skip.
      }
    }
  }
  if (docs.empty()) {
    std::fprintf(stderr,
                 "dpgen-bench: no archived runs for fingerprint %s under "
                 "'%s' — run with --archive or --save-baseline first\n",
                 here.fingerprint.c_str(), opt.archive_dir.c_str());
    return 1;
  }
  std::sort(docs.begin(), docs.end(),
            [](const obs::BenchDoc& a, const obs::BenchDoc& b) {
              return a.meta.timestamp < b.meta.timestamp;
            });

  // One chart per bench family (the prefix before '/'), one polyline per
  // bench, one x position per archived run.
  const double kGap = std::nan("");
  std::map<std::string, std::map<std::string, std::vector<double>>> families;
  for (std::size_t di = 0; di < docs.size(); ++di) {
    for (const obs::BenchRecord& r : docs[di].records) {
      auto slash = r.name.find('/');
      std::string family =
          slash == std::string::npos ? r.name : r.name.substr(0, slash);
      auto& series = families[family][r.name];
      series.resize(docs.size(), kGap);
      series[di] = r.stats.median_s;
    }
  }

  std::string html = cat(
      "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>"
      "dpgen bench trend</title></head>\n<body style=\"font-family:"
      "sans-serif\">\n<h1>dpgen bench trend</h1>\n<p>machine: ",
      here.machine, " (fingerprint ", here.fingerprint, "), ", docs.size(),
      " archived runs</p>\n<ol>\n");
  for (const obs::BenchDoc& d : docs)
    html += cat("<li>", d.meta.git_sha, " @ ", d.meta.timestamp, "</li>\n");
  html += "</ol>\n";
  // Axis ticks + legend: x positions are commits (short SHAs), y is
  // auto-scaled seconds with labelled gridlines.
  sim::SeriesSvgOptions svg_opt;
  for (const obs::BenchDoc& d : docs)
    svg_opt.x_labels.push_back(d.meta.git_sha.substr(0, 8));
  svg_opt.y_ticks = 4;
  svg_opt.legend = true;
  for (const auto& [family, benches] : families) {
    std::vector<sim::Series> series;
    for (const auto& [name, y] : benches) {
      sim::Series s;
      s.label = name;
      s.y = y;
      s.y.resize(docs.size(), kGap);
      series.push_back(std::move(s));
    }
    html += cat("<h2>", family, "</h2>\n",
                sim::series_svg(series, cat(family, " median seconds"),
                                svg_opt));
  }
  html += "</body></html>\n";

  std::ofstream out(opt.trend_path);
  DPGEN_CHECK(out.good(), cat("cannot open '", opt.trend_path, "'"));
  out << html;
  DPGEN_CHECK(out.good(), cat("error writing '", opt.trend_path, "'"));
  std::printf("wrote %s (%zu runs, %zu families)\n", opt.trend_path.c_str(),
              docs.size(), families.size());
  return 0;
}

int run_gate(const Options& opt, const obs::BenchDoc& run) {
  const std::string base_path = baseline_path_for(opt, run.meta);
  if (opt.baseline_path.empty() && !fs::exists(base_path)) {
    // Auto-baseline: first gated run on this machine becomes the baseline.
    fs::create_directories(opt.archive_dir);
    obs::write_bench_json(base_path, run);
    std::printf("perf gate: no baseline for this machine yet — "
                "established %s\n", base_path.c_str());
    return 0;
  }
  obs::BenchDoc baseline = load_doc(base_path);
  obs::GateOptions gopt;
  gopt.min_rel_delta = opt.min_delta;
  gopt.mad_factor = opt.mad_factor;
  gopt.min_abs_delta_s = opt.min_abs_delta;
  obs::GateResult result = obs::gate(baseline, run, gopt);
  if (!result.fingerprint_match) {
    std::printf("perf gate: skipped — baseline %s is from a different "
                "machine (%s, this machine %s)\n", base_path.c_str(),
                baseline.meta.fingerprint.c_str(),
                run.meta.fingerprint.c_str());
    return 0;
  }
  std::fputs(obs::gate_text(result).c_str(), stdout);
  if (!opt.gate_json_path.empty()) {
    std::ofstream out(opt.gate_json_path);
    DPGEN_CHECK(out.good(), cat("cannot open '", opt.gate_json_path, "'"));
    out << obs::gate_json(result) << "\n";
  }
  return result.regressions > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return starts_with(arg, prefix) ? arg.c_str() + std::strlen(prefix)
                                      : nullptr;
    };
    if (arg == "--list") opt.list = true;
    else if (arg == "--save-baseline") opt.save_baseline = true;
    else if (arg == "--archive") opt.archive = true;
    else if (arg == "--gate") opt.gate = true;
    else if (const char* v = value("--filter=")) opt.filter = v;
    else if (const char* v = value("--trials=")) opt.trials = std::atoi(v);
    else if (const char* v = value("--warmup=")) opt.warmup = std::atoi(v);
    else if (const char* v = value("--json=")) opt.json_path = v;
    else if (const char* v = value("--baseline=")) opt.baseline_path = v;
    else if (const char* v = value("--archive-dir=")) opt.archive_dir = v;
    else if (const char* v = value("--gate-json=")) opt.gate_json_path = v;
    else if (const char* v = value("--min-delta=")) opt.min_delta = std::atof(v);
    else if (const char* v = value("--mad-factor=")) opt.mad_factor = std::atof(v);
    else if (const char* v = value("--min-abs-delta="))
      opt.min_abs_delta = std::atof(v);
    else if (const char* v = value("--trend=")) opt.trend_path = v;
    else if (const char* v = value("--validate=")) opt.validate_path = v;
    else if (const char* v = value("--schema=")) opt.schema_path = v;
    else if (const char* v = value("--self-test-slowdown="))
      opt.self_test_slowdown = std::atof(v);
    else return usage(argv[0]);
  }
  if (opt.trials < 1 || opt.warmup < 0 || opt.self_test_slowdown <= 0.0)
    return usage(argv[0]);

  try {
    if (opt.list) return run_list();
    if (!opt.validate_path.empty()) return run_validate(opt);
    if (!opt.trend_path.empty()) return run_trend(opt);

    obs::BenchDoc doc = run_selected(opt);
    if (!opt.json_path.empty()) obs::write_bench_json(opt.json_path, doc);
    if (opt.archive) {
      fs::create_directories(opt.archive_dir);
      obs::write_bench_json(cat(opt.archive_dir, "/run-",
                                doc.meta.fingerprint, "-",
                                doc.meta.timestamp, ".json"),
                            doc);
    }
    if (opt.save_baseline) {
      fs::create_directories(opt.archive_dir);
      const std::string path =
          cat(opt.archive_dir, "/baseline-", doc.meta.fingerprint, ".json");
      obs::write_bench_json(path, doc);
      std::printf("saved baseline %s\n", path.c_str());
    }
    if (opt.gate) return run_gate(opt, doc);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dpgen-bench: %s\n", e.what());
    return 1;
  }
}
