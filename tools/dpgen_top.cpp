// dpgen-top: a live run monitor for dpgen executions.
//
// Runs a bundled problem with live telemetry on and renders what the
// obs::Monitor sees while the run is still going:
//
//   dpgen-top --problem=lcs --params=256,256 --ranks=4 --threads=4
//       runs the engine in a background thread and refreshes a per-rank
//       text table (executed/owned, ready/pending depth, buffered edges,
//       blocked senders, bytes on the wire, straggler flags) from the
//       in-process MonitorHub until the run completes.
//
//   dpgen-top --problem=grid --sim --nodes=4 --cores=2 --slow-node=1:4
//       replays the same view from the cluster simulator's DES clock —
//       deterministic, instant, and the straggler-injection knob
//       (--slow-node=NODE:FACTOR) makes the online detector observable
//       on demand.
//
//   dpgen-top --problem=lcs --profile
//       engine mode only: runs the sampling profiler alongside the
//       monitor and adds live ipc / cost-per-cell columns to the table
//       (from each rank's per-tile counter windows; in the perf-free
//       cputime fallback the cost column is ns/cell and ipc is "-").
//
//   dpgen-top --problem=lcs --faults=kill:1@40 --checkpoint=ckpt.json
//       engine mode only: replays a deterministic minimpi::FaultPlan
//       (kill/drop/dup/delay/slow) against the run and flushes the
//       dpgen.checkpoint.v1 store, so the failure, the restart and the
//       re-balanced ownership are all visible in the monitor.
//
// Either mode takes --events=FILE to append the dpgen.events.v1 JSONL
// log, --html=FILE to render a self-refreshing dashboard (progress lines
// per rank via sim::series_svg), and --check to run non-interactively and
// print one machine-readable summary line:
//
//   events=N heartbeats=H stragglers=S stall_warnings=W rank_failures=F
//   restarts=X ranks=R
//
// which scripts/check.sh asserts on (>=1 heartbeat per rank, zero
// spurious straggler flags on balanced runs, and exactly one
// failure/restart pair in the chaos smoke).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "minimpi/faults.hpp"
#include "obs/monitor.hpp"
#include "problems/problems.hpp"
#include "sim/cluster_sim.hpp"
#include "sim/svg.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/str.hpp"
#include "tiling/model.hpp"

namespace {

using namespace dpgen;

struct Options {
  std::string problem;
  IntVec params;
  int ranks = 2;
  int threads = 2;
  bool sim = false;
  int nodes = 4;
  int cores = 2;
  std::vector<double> slowdown;  // sparse --slow-node=I:F, sized later
  double interval = 0.0;         // 0 = mode default
  double refresh = 0.2;
  std::string faults;            // FaultPlan text, engine mode only
  std::string checkpoint_path;   // dpgen.checkpoint.v1 JSON flush target
  bool profile = false;          // live profiler columns, engine mode only
  std::string events_path;
  std::string html_path;
  bool check = false;
  bool list = false;
};

struct Entry {
  const char* name;
  const char* params_help;
  IntVec defaults;
  problems::Problem (*make)(const IntVec& params);
};

std::vector<std::string> dna(const IntVec& lengths) {
  std::vector<std::string> seqs;
  for (std::size_t i = 0; i < lengths.size(); ++i)
    seqs.push_back(problems::random_dna(
        static_cast<std::size_t>(lengths[i]), static_cast<unsigned>(i + 1)));
  return seqs;
}

const Entry kEntries[] = {
    {"bandit2", "N", {12},
     [](const IntVec&) { return problems::bandit2(); }},
    {"bandit3", "N", {6},
     [](const IntVec&) { return problems::bandit3(); }},
    {"lcs", "len1,len2[,len3]", {192, 192},
     [](const IntVec& p) { return problems::lcs(dna(p)); }},
    {"edit_distance", "len1,len2", {192, 192},
     [](const IntVec& p) {
       auto s = dna(p);
       return problems::edit_distance(s[0], s[1]);
     }},
    {"smith_waterman", "len1,len2", {192, 192},
     [](const IntVec& p) {
       auto s = dna(p);
       return problems::smith_waterman(s[0], s[1]);
     }},
    {"coin_change", "C", {512},
     [](const IntVec&) { return problems::coin_change({1, 5, 9}); }},
};

const Entry* find_entry(const std::string& name) {
  for (const Entry& e : kEntries)
    if (name == e.name) return &e;
  return nullptr;
}

IntVec parse_csv(const std::string& text) {
  IntVec out;
  for (const std::string& part : split(text, ","))
    out.push_back(std::atoll(part.c_str()));
  return out;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --problem=NAME [--params=a,b,..] [--ranks=R] [--threads=T]\n"
      "          [--interval=S] [--refresh=S] [--events=FILE] [--html=FILE]\n"
      "          [--faults=PLAN] [--checkpoint=FILE] [--profile] [--check]\n"
      "       %s --problem=NAME --sim [--nodes=N] [--cores=C]\n"
      "          [--slow-node=NODE:FACTOR]... [--interval=S] [--events=FILE]\n"
      "          [--html=FILE] [--check]\n"
      "       %s --list\n",
      argv0, argv0, argv0);
  return 2;
}

// ---- rendering ------------------------------------------------------------

std::string rank_table(const std::vector<obs::RankSnapshot>& snaps,
                       const std::vector<obs::StragglerFlag>& flags) {
  // Profiler columns appear once any rank has counter data: ipc is "-"
  // in the cputime fallback (no instruction counts) and cost/cell is
  // cycles/cell under perf, ns/cell under cputime.
  bool prof = false;
  for (const obs::RankSnapshot& s : snaps)
    if (s.prof_cycles > 0) prof = true;
  std::string out =
      "rank     executed/owned    %   ready  pending  buffered  blocked"
      "   mbox      bytes   msgs";
  if (prof) out += "    ipc  cost/cell";
  out += "  status\n";
  for (std::size_t r = 0; r < snaps.size(); ++r) {
    const obs::RankSnapshot& s = snaps[r];
    const char* status = "start";
    for (const obs::StragglerFlag& f : flags)
      if (f.rank == static_cast<int>(r)) status = "STRAGGLER";
    if (std::string(status) != "STRAGGLER" && s.epoch > 0)
      status = s.owned > 0 && s.executed >= s.owned ? "done" : "run";
    const double pct =
        s.owned > 0 ? 100.0 * static_cast<double>(s.executed) /
                          static_cast<double>(s.owned)
                    : 0.0;
    char line[240];
    std::snprintf(line, sizeof line,
                  "%4zu  %8lld/%-8lld %5.1f  %6lld  %7lld  %8lld  %7lld"
                  "  %5lld  %9lld  %5lld",
                  r, s.executed, s.owned, pct, s.ready_tiles,
                  s.pending_tiles, s.buffered_edges, s.blocked_senders,
                  s.mailbox_depth, s.bytes_sent, s.messages_sent);
    out += line;
    if (prof) {
      if (s.prof_instructions > 0 && s.prof_cycles > 0)
        std::snprintf(line, sizeof line, "  %5.2f",
                      static_cast<double>(s.prof_instructions) /
                          static_cast<double>(s.prof_cycles));
      else
        std::snprintf(line, sizeof line, "  %5s", "-");
      out += line;
      if (s.prof_sampled_cells > 0)
        std::snprintf(line, sizeof line, "  %9.2f",
                      static_cast<double>(s.prof_cycles) /
                          static_cast<double>(s.prof_sampled_cells));
      else
        std::snprintf(line, sizeof line, "  %9s", "-");
      out += line;
    }
    out += cat("  ", status, "\n");
  }
  return out;
}

/// Per-rank completed-fraction history, appended to on every poll; feeds
/// the HTML dashboard's progress chart.
struct History {
  std::vector<std::vector<double>> fraction;  // [rank][sample]
  std::vector<std::string> t_labels;
  std::vector<long long> seen_epoch;

  void observe(const std::vector<obs::RankSnapshot>& snaps, double t_s) {
    fraction.resize(snaps.size());
    seen_epoch.resize(snaps.size(), -1);
    bool fresh = false;
    for (std::size_t r = 0; r < snaps.size(); ++r)
      if (snaps[r].epoch > seen_epoch[r]) fresh = true;
    if (!fresh) return;
    char label[32];
    std::snprintf(label, sizeof label, "%.3gs", t_s);
    t_labels.push_back(label);
    for (std::size_t r = 0; r < snaps.size(); ++r) {
      const obs::RankSnapshot& s = snaps[r];
      seen_epoch[r] = s.epoch;
      fraction[r].push_back(
          s.owned > 0 ? static_cast<double>(s.executed) /
                            static_cast<double>(s.owned)
                      : 0.0);
    }
  }
};

void write_html(const std::string& path, const std::string& title,
                const History& hist, const std::string& table,
                const std::vector<obs::StragglerFlag>& flags,
                bool refreshing, double refresh_s) {
  if (hist.t_labels.empty()) return;
  std::vector<sim::Series> series;
  for (std::size_t r = 0; r < hist.fraction.size(); ++r)
    series.push_back({cat("rank ", r), hist.fraction[r]});
  sim::SeriesSvgOptions svg_opt;
  svg_opt.width_px = 860;
  svg_opt.height_px = 280;
  svg_opt.x_labels = hist.t_labels;
  svg_opt.y_ticks = 4;
  svg_opt.legend = true;
  std::string html = "<!DOCTYPE html>\n<html><head>";
  if (refreshing)
    html += cat("<meta http-equiv=\"refresh\" content=\"",
                refresh_s < 1 ? 1.0 : refresh_s, "\">");
  html += cat("<title>", title, "</title></head>\n<body>\n<h2>", title,
              "</h2>\n",
              sim::series_svg(series, "completed fraction per rank",
                              svg_opt),
              "\n<pre>", table, "</pre>\n");
  for (const obs::StragglerFlag& f : flags) {
    char line[160];
    std::snprintf(line, sizeof line,
                  "<p><b>straggler</b>: rank %d at t=%.3gs pace=%.4g "
                  "median=%.4g lag=%.0f%%</p>\n",
                  f.rank, f.t_s, f.pace, f.median_pace, f.lag * 100.0);
    html += line;
  }
  html += "</body></html>\n";
  std::ofstream out(path);
  DPGEN_CHECK(out.good(), cat("dpgen-top: cannot open '", path, "'"));
  out << html;
}

/// Counts events in a dpgen.events.v1 JSONL log -> the --check summary.
struct EventTotals {
  long long events = 0, heartbeats = 0, stragglers = 0, stall_warnings = 0;
  long long rank_failures = 0, restarts = 0;
  int nranks = 0;
};

EventTotals summarize_events(const std::string& path) {
  EventTotals t;
  std::ifstream in(path);
  DPGEN_CHECK(in.good(), cat("dpgen-top: cannot read '", path, "'"));
  std::string line;
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    ++t.events;
    json::ValuePtr ev = json::parse(line);
    const std::string kind =
        ev->has("event") ? ev->at("event").as_string() : "";
    if (kind == "run_start" && ev->has("nranks"))
      t.nranks = static_cast<int>(ev->at("nranks").as_number());
    else if (kind == "heartbeat")
      ++t.heartbeats;
    else if (kind == "straggler")
      ++t.stragglers;
    else if (kind == "stall_warning")
      ++t.stall_warnings;
    else if (kind == "rank_failed")
      ++t.rank_failures;
    else if (kind == "restart")
      ++t.restarts;
  }
  return t;
}

void print_summary(const EventTotals& t) {
  std::printf(
      "events=%lld heartbeats=%lld stragglers=%lld stall_warnings=%lld "
      "rank_failures=%lld restarts=%lld ranks=%d\n",
      t.events, t.heartbeats, t.stragglers, t.stall_warnings,
      t.rank_failures, t.restarts, t.nranks);
}

// ---- modes ----------------------------------------------------------------

int run_engine_top(const Options& opt, const Entry& entry,
                   const IntVec& params) {
  problems::Problem problem = entry.make(params);
  tiling::TilingModel model(problem.spec);

  engine::EngineOptions eopt;
  eopt.ranks = opt.ranks;
  eopt.threads = opt.threads;
  eopt.monitor_path = opt.events_path.empty() ? "-" : opt.events_path;
  eopt.monitor_interval = opt.interval > 0 ? opt.interval : 0.05;
  if (!opt.faults.empty()) {
    // Replays a deterministic fault plan (implies fault-tolerant mode):
    // the monitor shows the kill, the restart, and the re-balanced
    // ownership live.  Grammar: see minimpi::FaultPlan::parse.
    eopt.fault_plan = minimpi::FaultPlan::parse(opt.faults);
    // Dropped messages only recover via the stall detector.  Kill plans
    // restart on their own and slow plans finish on their own — and a
    // slowed rank must not be mistaken for a stalled one, so the
    // detector is armed only when the plan actually drops messages.
    if (opt.faults.find("drop") != std::string::npos)
      eopt.recover_stall_seconds = 0.5;
  }
  if (!opt.checkpoint_path.empty()) {
    eopt.fault_tolerant = true;
    eopt.checkpoint_json_path = opt.checkpoint_path;
    eopt.checkpoint_every_tiles = 8;
  }
  if (opt.profile) {
    eopt.profile_path = "-";  // collect, don't write
    // Interactive runs are short; sample fast enough that the live
    // table has data on the first refresh.
    eopt.profile_hz = 997.0;
  }

  std::atomic<bool> done{false};
  engine::EngineResult result;
  std::string run_error;
  std::thread runner([&] {
    try {
      result = engine::run(model, params, problem.kernel, eopt);
    } catch (const std::exception& e) {
      run_error = e.what();
    }
    done.store(true);
  });

  const std::string title =
      cat("dpgen-top: ", entry.name, " ranks=", opt.ranks,
          " threads=", opt.threads);
  History hist;
  long long live_heartbeats = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::duration<double>(opt.refresh));
    std::vector<obs::RankSnapshot> snaps;
    std::vector<obs::StragglerFlag> flags;
    long long heartbeats = 0;
    obs::MonitorHub::instance().visit([&](obs::Monitor& m) {
      snaps = m.latest_all();
      flags = m.stragglers();
      heartbeats = m.heartbeats();
    });
    if (snaps.empty()) continue;
    live_heartbeats = heartbeats;
    const double t_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    hist.observe(snaps, t_s);
    const std::string table = rank_table(snaps, flags);
    if (!opt.check) {
      // ANSI clear + home, like top(1).
      std::printf("\033[2J\033[H%s  t=%.2fs heartbeats=%lld\n%s",
                  title.c_str(), t_s, heartbeats, table.c_str());
      std::fflush(stdout);
    }
    if (!opt.html_path.empty())
      write_html(opt.html_path, title, hist, table, flags, true,
                 opt.refresh);
  }
  runner.join();
  if (!run_error.empty()) {
    std::fprintf(stderr, "dpgen-top: run failed: %s\n", run_error.c_str());
    return 1;
  }

  // Final view from the run's own results (the hub entry is gone).
  long long stall_warnings = 0;
  for (const auto& s : result.rank_stats) stall_warnings += s.stall_warnings;
  for (int r : result.failed_ranks)
    std::fprintf(stderr, "dpgen-top: rank %d failed mid-run\n", r);
  if (result.restarts > 0)
    std::fprintf(stderr,
                 "dpgen-top: recovered via %d checkpoint restart%s "
                 "(kills=%lld dropped=%lld duplicated=%lld delayed=%lld)\n",
                 result.restarts, result.restarts == 1 ? "" : "s",
                 result.fault_stats.kills_fired,
                 result.fault_stats.messages_dropped,
                 result.fault_stats.messages_duplicated,
                 result.fault_stats.messages_delayed);
  for (const obs::StragglerFlag& f : result.stragglers)
    std::fprintf(stderr,
                 "dpgen-top: straggler: rank %d pace=%.4g median=%.4g "
                 "lag=%.0f%%\n",
                 f.rank, f.pace, f.median_pace, f.lag * 100.0);
  if (result.profile) {
    const obs::ProfileDoc& doc = *result.profile;
    double cost = 0.0;
    if (!doc.families.empty() && doc.families[0].sampled_cells > 0)
      cost = static_cast<double>(doc.families[0].cycles) /
             static_cast<double>(doc.families[0].sampled_cells);
    std::printf("profile samples=%lld counters=%s cost_per_cell=%.2f\n",
                doc.samples_total, doc.counters.c_str(), cost);
  }
  if (!opt.html_path.empty() && !hist.t_labels.empty())
    write_html(opt.html_path, title, hist,
               "run complete\n", result.stragglers, false, opt.refresh);
  if (!opt.events_path.empty()) {
    print_summary(summarize_events(opt.events_path));
  } else {
    // No log to count from; live_heartbeats is the last hub sample (a
    // lower bound — the forced final beats land after the poll loop).
    std::printf("events=0 heartbeats=%lld stragglers=%lld "
                "stall_warnings=%lld rank_failures=%zu restarts=%d "
                "ranks=%d\n",
                live_heartbeats,
                static_cast<long long>(result.stragglers.size()),
                stall_warnings, result.failed_ranks.size(),
                result.restarts, opt.ranks);
  }
  return 0;
}

int run_sim_top(const Options& opt, const Entry& entry,
                const IntVec& params) {
  problems::Problem problem = entry.make(params);
  tiling::TilingModel model(problem.spec);

  sim::ClusterConfig cfg;
  cfg.nodes = opt.nodes;
  cfg.cores_per_node = opt.cores;
  cfg.events_path = opt.events_path.empty() ? "-" : opt.events_path;
  cfg.monitor_interval_s = opt.interval;
  if (!opt.slowdown.empty()) {
    cfg.node_slowdown.assign(static_cast<std::size_t>(opt.nodes), 1.0);
    for (std::size_t n = 0; n < opt.slowdown.size() &&
                            n < cfg.node_slowdown.size();
         ++n)
      if (opt.slowdown[n] > 0) cfg.node_slowdown[n] = opt.slowdown[n];
  }
  sim::SimResult res = sim::simulate(model, params, cfg);

  const std::string title =
      cat("dpgen-top (sim): ", entry.name, " nodes=", opt.nodes,
          " cores=", opt.cores);
  if (!opt.check)
    std::printf("%s  makespan=%.6fs utilization=%.3f tiles=%lld\n",
                title.c_str(), res.makespan, res.utilization, res.tiles);
  for (const obs::StragglerFlag& f : res.stragglers)
    std::fprintf(stderr,
                 "dpgen-top: straggler: node %d at t=%.6gs pace=%.4g "
                 "median=%.4g lag=%.0f%%\n",
                 f.rank, f.t_s, f.pace, f.median_pace, f.lag * 100.0);

  if (!opt.events_path.empty()) {
    // Re-read the log for the table + dashboard: the sim's monitor is
    // gone, but its events are the same data.
    std::vector<obs::RankSnapshot> final_snaps(
        static_cast<std::size_t>(opt.nodes));
    History hist;
    std::ifstream in(opt.events_path);
    DPGEN_CHECK(in.good(),
                cat("dpgen-top: cannot read '", opt.events_path, "'"));
    std::string line;
    std::vector<obs::RankSnapshot> batch(
        static_cast<std::size_t>(opt.nodes));
    double batch_t = -1.0;
    auto flush_batch = [&] {
      if (batch_t >= 0) hist.observe(batch, batch_t);
    };
    while (std::getline(in, line)) {
      if (trim(line).empty()) continue;
      json::ValuePtr ev = json::parse(line);
      if (!ev->has("event") || ev->at("event").as_string() != "heartbeat")
        continue;
      const int r = static_cast<int>(ev->at("rank").as_number());
      if (r < 0 || r >= opt.nodes) continue;
      obs::RankSnapshot s;
      s.epoch = static_cast<long long>(ev->at("epoch").as_number());
      s.t_s = ev->at("t_s").as_number();
      s.executed = static_cast<long long>(ev->at("executed").as_number());
      s.owned = static_cast<long long>(ev->at("owned").as_number());
      s.pending_tiles =
          static_cast<long long>(ev->at("pending_tiles").as_number());
      s.ready_tiles =
          static_cast<long long>(ev->at("ready_tiles").as_number());
      s.buffered_edges =
          static_cast<long long>(ev->at("buffered_edges").as_number());
      s.bytes_sent =
          static_cast<long long>(ev->at("bytes_sent").as_number());
      s.messages_sent =
          static_cast<long long>(ev->at("messages_sent").as_number());
      if (ev->has("mailbox_depth"))
        s.mailbox_depth =
            static_cast<long long>(ev->at("mailbox_depth").as_number());
      if (s.t_s != batch_t) {
        flush_batch();
        batch_t = s.t_s;
      }
      batch[static_cast<std::size_t>(r)] = s;
      final_snaps[static_cast<std::size_t>(r)] = s;
    }
    flush_batch();
    const std::string table = rank_table(final_snaps, res.stragglers);
    if (!opt.check) std::fputs(table.c_str(), stdout);
    if (!opt.html_path.empty())
      write_html(opt.html_path, title, hist, table, res.stragglers, false,
                 opt.refresh);
    print_summary(summarize_events(opt.events_path));
  } else {
    std::printf(
        "events=0 heartbeats=0 stragglers=%lld stall_warnings=0 "
        "ranks=%d\n",
        static_cast<long long>(res.stragglers.size()), opt.nodes);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? argv[i] + n : nullptr;
    };
    if (const char* v = value("--problem=")) opt.problem = v;
    else if (const char* v = value("--params=")) opt.params = parse_csv(v);
    else if (const char* v = value("--ranks=")) opt.ranks = std::atoi(v);
    else if (const char* v = value("--threads=")) opt.threads = std::atoi(v);
    else if (arg == "--sim") opt.sim = true;
    else if (const char* v = value("--nodes=")) opt.nodes = std::atoi(v);
    else if (const char* v = value("--cores=")) opt.cores = std::atoi(v);
    else if (const char* v = value("--slow-node=")) {
      const std::vector<std::string> parts = split(v, ":");
      if (parts.size() != 2) return usage(argv[0]);
      const std::size_t node =
          static_cast<std::size_t>(std::atoll(parts[0].c_str()));
      if (opt.slowdown.size() <= node) opt.slowdown.resize(node + 1, 0.0);
      opt.slowdown[node] = std::atof(parts[1].c_str());
    }
    else if (const char* v = value("--interval=")) opt.interval = std::atof(v);
    else if (const char* v = value("--refresh=")) opt.refresh = std::atof(v);
    else if (const char* v = value("--faults=")) opt.faults = v;
    else if (const char* v = value("--checkpoint=")) opt.checkpoint_path = v;
    else if (const char* v = value("--events=")) opt.events_path = v;
    else if (const char* v = value("--html=")) opt.html_path = v;
    else if (arg == "--profile") opt.profile = true;
    else if (arg == "--check") opt.check = true;
    else if (arg == "--list") opt.list = true;
    else return usage(argv[0]);
  }

  if (opt.list) {
    for (const Entry& e : kEntries) {
      std::string defaults;
      for (std::size_t k = 0; k < e.defaults.size(); ++k)
        defaults += dpgen::cat(k ? "," : "", e.defaults[k]);
      std::printf("%-14s params: %-18s default: %s\n", e.name,
                  e.params_help, defaults.c_str());
    }
    return 0;
  }
  if (opt.problem.empty()) return usage(argv[0]);
  if (opt.sim &&
      (!opt.faults.empty() || !opt.checkpoint_path.empty() || opt.profile)) {
    std::fprintf(stderr,
                 "dpgen-top: --faults/--checkpoint/--profile need the live "
                 "engine (drop --sim)\n");
    return 2;
  }
  const Entry* entry = find_entry(opt.problem);
  if (!entry) {
    std::fprintf(stderr, "dpgen-top: unknown problem '%s'\n",
                 opt.problem.c_str());
    return 2;
  }
  const IntVec params = !opt.params.empty() ? opt.params : entry->defaults;
  try {
    return opt.sim ? run_sim_top(opt, *entry, params)
                   : run_engine_top(opt, *entry, params);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dpgen-top: %s\n", e.what());
    return 1;
  }
}
