#pragma once
// Umbrella header: the public dpgen API in one include.
//
//   #include "dpgen.hpp"
//
// Pulls in the problem-description layer (spec), the tiling analysis, the
// direct executor with recovery and the serial reference, the program
// generator, the cluster simulator with autotuning, and the packaged
// problems.  Fine-grained headers remain available for faster builds.

#include "codegen/generator.hpp"   // IWYU pragma: export
#include "engine/decisions.hpp"    // IWYU pragma: export
#include "engine/engine.hpp"       // IWYU pragma: export
#include "engine/recovery.hpp"     // IWYU pragma: export
#include "engine/serial.hpp"       // IWYU pragma: export
#include "problems/problems.hpp"   // IWYU pragma: export
#include "sim/cluster_sim.hpp"     // IWYU pragma: export
#include "sim/tune.hpp"            // IWYU pragma: export
#include "spec/parser.hpp"         // IWYU pragma: export
#include "spec/problem_spec.hpp"   // IWYU pragma: export
#include "tiling/balance.hpp"      // IWYU pragma: export
#include "tiling/model.hpp"        // IWYU pragma: export

namespace dpgen {

/// Library version (reproduction of VandenBerg & Stout, CLUSTER 2011).
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace dpgen
