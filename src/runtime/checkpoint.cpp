#include "runtime/checkpoint.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/json.hpp"
#include "support/str.hpp"

namespace dpgen::runtime {

namespace detail {

std::string bytes_to_hex(const std::uint8_t* data, std::size_t n) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    out += digits[data[i] >> 4];
    out += digits[data[i] & 0xf];
  }
  return out;
}

namespace {
int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::vector<std::uint8_t> hex_to_bytes(const std::string& hex) {
  DPGEN_CHECK(hex.size() % 2 == 0,
              "checkpoint payload hex has odd length");
  std::vector<std::uint8_t> out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const int hi = hex_digit(hex[2 * i]);
    const int lo = hex_digit(hex[2 * i + 1]);
    DPGEN_CHECK(hi >= 0 && lo >= 0,
                "checkpoint payload hex has a non-hex character");
    out[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return out;
}

}  // namespace detail

namespace {

void write_tile(json::Writer& w, const IntVec& tile) {
  w.begin_array();
  for (Int c : tile) w.value(static_cast<long long>(c));
  w.end_array();
}

IntVec read_tile(const json::Value& v) {
  IntVec out;
  for (const auto& c : v.as_array())
    out.push_back(static_cast<Int>(c->as_number()));
  return out;
}

}  // namespace

std::string encode_checkpoint_json(const CheckpointDoc& doc) {
  json::Writer w;
  w.begin_object();
  w.key("schema").value("dpgen.checkpoint.v1");
  w.key("problem").value(doc.problem);
  w.key("params").value(doc.params);
  w.key("dim").value(doc.dim);
  w.key("scalar_bytes").value(doc.scalar_bytes);
  w.key("completed_tiles")
      .value(static_cast<long long>(doc.executed.size()));
  w.key("executed").begin_array();
  for (const auto& t : doc.executed) write_tile(w, t);
  w.end_array();
  w.key("edges").begin_array();
  for (const auto& e : doc.edges) {
    w.begin_object();
    w.key("consumer");
    write_tile(w, e.consumer);
    w.key("edge").value(e.edge);
    w.key("payload").value(detail::bytes_to_hex(e.payload_bytes.data(),
                                                e.payload_bytes.size()));
    w.end_object();
  }
  w.end_array();
  w.key("ranks").begin_array();
  for (const auto& r : doc.ranks) {
    w.begin_object();
    w.key("rank").value(r.rank);
    w.key("pending_tiles").value(r.pending_tiles);
    w.key("ready_tiles").value(r.ready_tiles);
    w.key("buffered_edges").value(r.buffered_edges);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

CheckpointDoc load_checkpoint_json(const std::string& path) {
  std::ifstream in(path);
  DPGEN_CHECK(in.good(), cat("cannot open checkpoint file ", path));
  std::stringstream buf;
  buf << in.rdbuf();
  json::ValuePtr root;
  try {
    root = json::parse(buf.str());
  } catch (const std::exception& e) {
    raise(cat("checkpoint ", path, ": ", e.what()));
  }
  DPGEN_CHECK(root->is(json::Kind::kObject),
              cat("checkpoint ", path, ": not a JSON object"));
  DPGEN_CHECK(root->at("schema").as_string() == "dpgen.checkpoint.v1",
              cat("checkpoint ", path, ": unknown schema '",
                  root->at("schema").as_string(), "'"));
  CheckpointDoc doc;
  doc.problem = root->at("problem").as_string();
  doc.params = root->at("params").as_string();
  doc.dim = static_cast<int>(root->at("dim").as_number());
  doc.scalar_bytes = static_cast<int>(root->at("scalar_bytes").as_number());
  DPGEN_CHECK(doc.dim >= 1 && doc.scalar_bytes >= 1,
              cat("checkpoint ", path, ": bad geometry"));
  for (const auto& t : root->at("executed").as_array()) {
    IntVec tile = read_tile(*t);
    DPGEN_CHECK(static_cast<int>(tile.size()) == doc.dim,
                cat("checkpoint ", path, ": executed tile of wrong dim"));
    doc.executed.push_back(std::move(tile));
  }
  for (const auto& ev : root->at("edges").as_array()) {
    CheckpointDoc::Edge e;
    e.consumer = read_tile(ev->at("consumer"));
    DPGEN_CHECK(static_cast<int>(e.consumer.size()) == doc.dim,
                cat("checkpoint ", path, ": edge consumer of wrong dim"));
    e.edge = static_cast<int>(ev->at("edge").as_number());
    DPGEN_CHECK(e.edge >= 0, cat("checkpoint ", path, ": bad edge index"));
    e.payload_bytes = detail::hex_to_bytes(ev->at("payload").as_string());
    doc.edges.push_back(std::move(e));
  }
  const long long declared =
      static_cast<long long>(root->at("completed_tiles").as_number());
  DPGEN_CHECK(declared == static_cast<long long>(doc.executed.size()),
              cat("checkpoint ", path, ": completed_tiles=", declared,
                  " but ", doc.executed.size(), " executed tiles listed"));
  if (root->has("ranks")) {
    for (const auto& rv : root->at("ranks").as_array()) {
      CheckpointDoc::RankState r;
      r.rank = static_cast<int>(rv->at("rank").as_number());
      r.pending_tiles =
          static_cast<long long>(rv->at("pending_tiles").as_number());
      r.ready_tiles =
          static_cast<long long>(rv->at("ready_tiles").as_number());
      r.buffered_edges =
          static_cast<long long>(rv->at("buffered_edges").as_number());
      doc.ranks.push_back(r);
    }
  }
  return doc;
}

void write_checkpoint_file(const std::string& path, const std::string& text) {
  // Unique temporary per call: concurrent writers (two ranks flushing the
  // same store) must not truncate each other's temp file or race the
  // rename — each write lands whole and the last rename wins.
  static std::atomic<unsigned> write_seq{0};
  const std::string tmp =
      cat(path, ".tmp.", write_seq.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::out | std::ios::trunc);
    DPGEN_CHECK(out.good(), cat("cannot write checkpoint file ", tmp));
    out << text << '\n';
    out.flush();
    DPGEN_CHECK(out.good(), cat("short write to checkpoint file ", tmp));
  }
  DPGEN_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
              cat("cannot move checkpoint into place at ", path));
}

}  // namespace dpgen::runtime
