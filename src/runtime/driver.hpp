#pragma once
// The hybrid node driver (paper section V.A).
//
// run_node() is the main body of every generated program and of engine
// runs: after load balancing and initial-tile generation, each of the
// node's worker threads executes the paper's while-loop —
//   1. get the next available tile,
//   2. unpack its stored edge data into a fresh tile buffer (+ghost cells),
//   3. execute the tile,
//   4. pack each valid outgoing edge and either update a neighbouring
//      local tile or send the edge to the owning rank,
//   5. add any now-ready tiles to the priority queue,
//   6. poll for incoming edges when the comm lock is available.
//
// Only tiles in execution hold full buffers; everything else is packed
// edges.  The problem-specific pieces are supplied through ProblemHooks:
// the interpreted engine implements them by walking the TilingModel, and
// generated programs implement them with emitted loop nests.
//
// The steady-state loop is allocation-free: payload vectors cycle through
// a per-worker BufferPool (unpack releases feed the very next pack
// acquires), remote edges are packed straight into a pooled wire buffer
// after a reserved header and moved into the mailbox, and received wire
// buffers are recycled for the next send.  Pool misses are counted as
// `runtime.edge_alloc` and hits as `runtime.pool_hit`, so the claim shows
// up in the metrics rather than relying on code reading.
//
// Worker threads are std::threads by default; when compiled with OpenMP
// and DPGEN_RUNTIME_USE_OPENMP (as generated programs are), the workers
// run inside an OpenMP parallel region instead, making the program a true
// hybrid OpenMP + message-passing executable.
//
// Observability: every phase of the loop records an obs::ScopedSpan
// (tile-execute spans carry the tile coordinates) and the counters feed
// the obs::MetricsRegistry alongside the returned RunStats.  At the end
// of the run the ranks' span buffers are merged to rank 0 through the
// comm layer (obs/gather.hpp), ready for Chrome-trace export.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "minimpi/world.hpp"
#include "support/str.hpp"
#include "obs/gather.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "runtime/buffer_pool.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/tile_table.hpp"

#if defined(_OPENMP) && defined(DPGEN_RUNTIME_USE_OPENMP)
#include <omp.h>
#endif

namespace dpgen::runtime {

/// The problem-specific interface the driver runs against.  All methods
/// must be safe to call from multiple worker threads concurrently.
template <typename S>
class ProblemHooks {
 public:
  virtual ~ProblemHooks() = default;

  /// Number of tile dimensions.
  virtual int dim() const = 0;
  /// Scalars in one tile buffer (interior + ghost ring).
  virtual Int buffer_size() const = 0;

  /// Tile edges (distinct tile-dependency offsets).
  virtual int num_edges() const = 0;
  virtual const IntVec& edge_offset(int edge) const = 0;
  /// Upper bound on the scalars `edge` can carry (any producer tile); the
  /// driver sizes pack destinations with it before calling pack().
  virtual Int edge_capacity(int edge) const = 0;

  /// True when the tile exists (is inside the tile space).
  virtual bool tile_exists(const IntVec& tile) const = 0;
  /// Number of in-space dependencies of an existing tile.
  virtual int dep_count(const IntVec& tile) const = 0;
  /// Appends every dependency-free tile (across all ranks) to out.
  virtual void initial_tiles(std::vector<IntVec>& out) const = 0;

  /// Owning rank of a tile and the number of tiles a rank owns.
  virtual int owner(const IntVec& tile) const = 0;
  virtual Int owned_tiles(int rank) const = 0;

  /// Cell count of a tile (Ehrhart-exact where available; 0 = unknown).
  /// Only consulted when live monitoring is on: the straggler detector
  /// prefers cells over tile counts because tile costs are heavy-tailed.
  virtual Int tile_cells(const IntVec& tile) const {
    (void)tile;
    return 0;
  }

  /// Runs the tile's loop nest over `buffer` (ghosts already unpacked).
  virtual void execute_tile(const IntVec& tile, S* buffer) = 0;
  /// Called after execution with the filled buffer (result capture).
  virtual void on_tile_executed(const IntVec& tile, const S* buffer) {
    (void)tile;
    (void)buffer;
  }

  /// Packs the producer-side cells of `edge` from `buffer` into `out`
  /// (room for at least edge_capacity(edge) scalars); returns the number
  /// of scalars packed.
  virtual Int pack(int edge, const IntVec& producer, const S* buffer,
                   S* out) const = 0;
  /// Unpacks edge data into the consumer tile's buffer ghost cells;
  /// `producer` identifies the tile the data came from.
  virtual void unpack(int edge, const IntVec& producer, const S* data,
                      Int count, S* buffer) const = 0;
};

struct RunOptions {
  int threads = 1;
  TileOrder order;
  /// Ready-queue shards (paper VII.C); workers prefer shard
  /// (worker_id mod shards) and steal from the rest.
  int queue_shards = 1;
  /// Fill fresh tile buffers with NaN instead of zero so that reads of
  /// never-written ghost cells surface as NaNs (floating-point S only).
  bool poison_buffers = false;
  /// Abort with an error after this long with no progress (0 = never);
  /// protects tests against scheduling deadlocks.  A structured
  /// stall_warning fires at half this budget so live monitors see trouble
  /// before the run dies.
  double stall_timeout_seconds = 120.0;
  /// Live-telemetry sink (not owned; null = monitoring off).  The steady
  /// state pays one relaxed load per tile; snapshots are only taken when
  /// the monitor's sampler asks for one.
  obs::Monitor* monitor = nullptr;
  /// Fault recovery (only honoured when run_node gets a checkpoint
  /// store): a rank starved of progress for this long declares a
  /// transport failure — messages it depends on are presumed lost — so
  /// every rank unwinds and the engine restarts from the checkpoint.
  /// 0 = never; must be well under stall_timeout_seconds when set.
  double recover_stall_seconds = 0.0;
  /// Arms the tile table's post-ready duplicate guard.  Set by the engine
  /// for any run that can see re-delivered edges (a fault plan, or a
  /// fault-tolerant run whose restart replays sends); off by default so
  /// the clean path stays free of the guard's per-tile set insert.
  bool replay_guard = false;
  /// Continuous profiling (obs/profile.hpp): worker threads register with
  /// the process-wide Profiler (sampling timer + counter group each) and
  /// tile executions feed the adaptive-stride counter windows.  The
  /// profiler must have been start()ed by the caller (the engine or a
  /// generated program's main).
  bool profile = false;
};

struct RunStats {
  long long tiles_executed = 0;
  long long initial_tiles = 0;
  long long local_edges = 0;     // delivered without messaging
  long long remote_edges = 0;    // sent through the comm layer
  long long polls = 0;
  long long idle_spins = 0;
  /// Buffer-pool misses (each one a real heap allocation on the edge
  /// path) and hits; in steady state every acquire should be a hit.
  long long edge_allocs = 0;
  long long pool_hits = 0;
  double init_scan_seconds = 0.0;
  double total_seconds = 0.0;
  /// Wall time this rank's workers spent with no ready tile (includes the
  /// exponential-backoff sleeps, which dominate long idle stretches).
  double idle_seconds = 0.0;
  /// Wall time spent retrying sends against full destination mailboxes.
  double blocked_send_seconds = 0.0;
  /// stall_warning events raised (progress resumed after each, or the run
  /// would have aborted at the full timeout instead).
  long long stall_warnings = 0;
  TableStats table;
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t blocked_sends = 0;
};

namespace detail {

// Wire format of one edge message: [edge, count, consumer tile coords,
// payload scalars].  The header length is a multiple of sizeof(Int), so
// the payload region is suitably aligned for the scalar type.

inline std::size_t edge_wire_header(int dim) {
  return sizeof(Int) * (2 + static_cast<std::size_t>(dim));
}

/// Sizes `buf` for a payload of up to `capacity` scalars after the header
/// and returns the payload write pointer; pack fills it in place and
/// finish_edge_wire() then trims and stamps the header — no intermediate
/// scratch-to-wire copy.
template <typename S>
S* begin_edge_wire(std::vector<std::uint8_t>& buf, int dim, Int capacity) {
  const std::size_t head = edge_wire_header(dim);
  buf.resize(head + static_cast<std::size_t>(capacity) * sizeof(S));
  return reinterpret_cast<S*>(buf.data() + head);
}

template <typename S>
void finish_edge_wire(std::vector<std::uint8_t>& buf, int edge,
                      const IntVec& consumer, Int count) {
  const std::size_t head =
      edge_wire_header(static_cast<int>(consumer.size()));
  buf.resize(head + static_cast<std::size_t>(count) * sizeof(S));
  Int header[2] = {static_cast<Int>(edge), count};
  std::memcpy(buf.data(), header, sizeof(header));
  std::memcpy(buf.data() + sizeof(header), consumer.data(),
              consumer.size() * sizeof(Int));
}

template <typename S>
std::vector<std::uint8_t> encode_edge(int edge, const IntVec& consumer,
                                      const std::vector<S>& payload) {
  std::vector<std::uint8_t> buf;
  S* out = begin_edge_wire<S>(buf, static_cast<int>(consumer.size()),
                              static_cast<Int>(payload.size()));
  if (!payload.empty())
    std::memcpy(out, payload.data(), payload.size() * sizeof(S));
  finish_edge_wire<S>(buf, edge, consumer,
                      static_cast<Int>(payload.size()));
  return buf;
}

/// Decodes one edge message, validating every header field against the
/// receiver's own geometry before trusting it: `num_edges` bounds the edge
/// index and the payload count must be non-negative and match the buffer
/// length exactly (checked without overflowing).
template <typename S>
void decode_edge(const std::vector<std::uint8_t>& buf, int dim,
                 int num_edges, int* edge, IntVec* consumer,
                 std::vector<S>* payload) {
  Int header[2];
  DPGEN_CHECK(buf.size() >= sizeof(header), "malformed edge message");
  std::memcpy(header, buf.data(), sizeof(header));
  DPGEN_CHECK(header[0] >= 0 && header[0] < num_edges,
              cat("edge message: edge index ", header[0], " outside [0, ",
                  num_edges, ")"));
  consumer->resize(static_cast<std::size_t>(dim));
  const std::size_t head = edge_wire_header(dim);
  DPGEN_CHECK(buf.size() >= head, "malformed edge message");
  DPGEN_CHECK(header[1] >= 0 &&
                  static_cast<std::uint64_t>(header[1]) <=
                      (buf.size() - head) / sizeof(S),
              cat("edge message: bad payload count ", header[1]));
  const auto count = static_cast<std::size_t>(header[1]);
  DPGEN_CHECK(buf.size() == head + count * sizeof(S),
              "edge message length mismatch");
  *edge = static_cast<int>(header[0]);
  std::memcpy(consumer->data(), buf.data() + sizeof(header),
              consumer->size() * sizeof(Int));
  const S* src = reinterpret_cast<const S*>(buf.data() + head);
  payload->assign(src, src + count);
}

/// Bounded exponential backoff for the driver's wait loops.  The first
/// pauses only yield (a waiting thread reacts within a scheduling
/// quantum); after that it sleeps with doubling duration up to a small
/// cap, so an idle worker stops burning its core while a message or a
/// ready tile is at most ~an eighth of a millisecond away.
class Backoff {
 public:
  void pause() {
    if (spins_ < kSpinLimit) {
      ++spins_;
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us_));
    if (sleep_us_ < kMaxSleepUs) sleep_us_ *= 2;
  }

  void reset() {
    spins_ = 0;
    sleep_us_ = 1;
  }

 private:
  static constexpr int kSpinLimit = 64;
  static constexpr long kMaxSleepUs = 128;
  int spins_ = 0;
  long sleep_us_ = 1;
};

/// Per-run cached handles into the metrics registry (name lookups are
/// mutex-guarded; the hot loop must only touch atomics).
struct DriverMetrics {
  obs::Counter& tiles = obs::MetricsRegistry::instance().counter(
      "runtime.tiles_executed");
  obs::Counter& local_edges = obs::MetricsRegistry::instance().counter(
      "runtime.local_edges");
  obs::Counter& remote_edges = obs::MetricsRegistry::instance().counter(
      "runtime.remote_edges");
  obs::Counter& polls =
      obs::MetricsRegistry::instance().counter("runtime.polls");
  obs::Counter& idle_ns = obs::MetricsRegistry::instance().counter(
      "runtime.idle_ns");
  obs::Counter& blocked_send_ns = obs::MetricsRegistry::instance().counter(
      "runtime.blocked_send_ns");
  /// Buffer-pool misses (real allocations) and hits on the edge path.
  obs::Counter& edge_alloc = obs::MetricsRegistry::instance().counter(
      "runtime.edge_alloc");
  obs::Counter& pool_hit = obs::MetricsRegistry::instance().counter(
      "runtime.pool_hit");
  obs::Histogram& tile_ns = obs::MetricsRegistry::instance().histogram(
      "runtime.tile_latency_ns");
  obs::Histogram& payload_scalars =
      obs::MetricsRegistry::instance().histogram(
          "runtime.edge_payload_scalars");
  /// Per-edge-direction remote send counts (index = edge id).
  std::vector<obs::Counter*> edge_sent;

  explicit DriverMetrics(int num_edges) {
    for (int e = 0; e < num_edges; ++e)
      edge_sent.push_back(&obs::MetricsRegistry::instance().counter(
          cat("runtime.edge_sent.e", e)));
  }
};

}  // namespace detail

/// Executes one rank's share of the problem.  Returns per-rank statistics.
/// With a checkpoint store, completed tiles and their outgoing edges are
/// recorded as the run progresses, previously-executed work is credited
/// instead of re-run, and stored edges seed the fresh tile table (restart
/// protocol in checkpoint.hpp).
template <typename S>
RunStats run_node(ProblemHooks<S>& hooks, minimpi::Comm& comm,
                  const RunOptions& opt,
                  CheckpointStore<S>* checkpoint = nullptr) {
  using Clock = std::chrono::steady_clock;
  const auto t_start = Clock::now();
  const int rank = comm.rank();
  const int dim = hooks.dim();
  const int num_edges = hooks.num_edges();

  obs::Tracer::set_identity(rank, 0);
  detail::DriverMetrics metrics(num_edges);

  RunStats stats;
  ShardedTileTable<S> table(opt.order, opt.queue_shards);
  // Producers can only re-execute (and re-send credited edges) after a
  // resume or restart; the per-edge executed() screens below are skipped
  // entirely on a clean first attempt.  Fixed for the whole attempt: the
  // store enters replay mode between attempts, never mid-run.
  const bool ckpt_replay = checkpoint && checkpoint->replay_possible();
  if (opt.replay_guard || ckpt_replay) table.enable_replay_guard();

  // ---- initial tiles (paper IV.K): serial, then filtered by ownership ----
  {
    obs::ScopedSpan span(obs::Phase::kInitScan);
    const auto t0 = Clock::now();
    std::vector<IntVec> initial;
    hooks.initial_tiles(initial);
    for (auto& t : initial) {
      if (hooks.owner(t) != rank) continue;
      // Tiles the checkpoint already has results for are credited below
      // instead of re-run.
      if (ckpt_replay && checkpoint->executed(t)) continue;
      table.seed_ready(std::move(t));
      ++stats.initial_tiles;
    }
    stats.init_scan_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
  }

  const Int owned = hooks.owned_tiles(rank);
  std::atomic<long long> done{0};
  if (checkpoint) {
    // Restart seeding: credit executed owned tiles and replay stored
    // edges for this rank's not-yet-executed consumers into the fresh
    // table.  Non-executed producers re-execute and re-send live.
    done.store(checkpoint->seed_rank(
        rank, [&](const IntVec& t) { return hooks.owner(t); },
        [&](const IntVec& t) { return hooks.dep_count(t); }, table));
    checkpoint->attach_table(rank, &table);
  }
  // Declared after `table` so detach runs before the table dies.
  struct CheckpointDetach {
    CheckpointStore<S>* store;
    int rank;
    ~CheckpointDetach() {
      if (store) store->detach_table(rank);
    }
  } checkpoint_detach{checkpoint, rank};
  // Cells of tiles started (credited at dispatch, not completion — see the
  // worker loop).  Only maintained when monitored.
  std::atomic<long long> done_cells{0};
  std::atomic<long long> progress_marker{0};
  std::mutex poll_mu;  // the paper's "poll ... if lock available"
  std::mutex stats_mu;
  // Stall diagnostics: workers currently stuck in the blocked-send retry
  // loop, and the last tile any worker completed.  Both feed the
  // stall-abort message so a stalled rank reports what it was waiting on.
  std::atomic<int> blocked_senders{0};
  // Worker-failure latch: the first exception a worker throws (a
  // TransportFailure from a poisoned wire, or a hook error) is captured
  // and rethrown after the join; the flag stops the other workers' loops
  // so they unwind instead of waiting for tiles that will never come.
  std::atomic<bool> worker_failed{false};
  std::mutex error_mu;
  std::exception_ptr first_error;
  // Workers currently processing a popped tile (unpack/execute/pack);
  // feeds RankSnapshot::active_workers so the straggler detector can tell
  // "busy inside a long kernel" apart from "dependency-starved".
  std::atomic<int> busy_workers{0};
  std::mutex diag_mu;
  IntVec last_tile_completed;  // empty until the first tile finishes
  // Wire buffers are recycled rank-wide: try_recv frees a message's buffer
  // into this pool and the next remote pack reuses it, so a pipelined
  // exchange settles into zero wire allocations per edge.
  detail::SharedBufferPool<std::uint8_t> wire_pool;

  // Live telemetry: builds a RankSnapshot on demand.  Takes the shard
  // locks, so it only runs when the monitor's sampler raised this rank's
  // want flag (claim() below) — never on the steady-state path.
  auto monitor_snapshot = [&]() {
    obs::RankSnapshot s;
    s.t_s = opt.monitor->now_s();
    const TableSnapshot snap = table.snapshot();
    s.pending_tiles = snap.pending_tiles;
    s.ready_tiles = snap.ready_tiles;
    s.buffered_edges = snap.buffered_edges;
    s.executed = done.load(std::memory_order_relaxed);
    s.executed_cells = done_cells.load(std::memory_order_relaxed);
    s.owned = owned;
    s.blocked_senders = blocked_senders.load(std::memory_order_relaxed);
    s.bytes_sent = static_cast<long long>(comm.bytes_sent());
    s.messages_sent = static_cast<long long>(comm.messages_sent());
    s.progress_marker = progress_marker.load(std::memory_order_relaxed);
    s.active_workers = busy_workers.load(std::memory_order_relaxed);
    s.workers = opt.threads;
    s.mailbox_depth = static_cast<long long>(comm.mailbox_depth());
    if (opt.profile) {
      const auto prof = obs::Profiler::instance().rank_totals(rank);
      s.prof_cycles = static_cast<long long>(prof.cycles);
      s.prof_instructions = static_cast<long long>(prof.instructions);
      s.prof_sampled_cells = static_cast<long long>(prof.sampled_cells);
      s.prof_sampled_exec_ns =
          static_cast<long long>(prof.sampled_exec_ns);
    }
    return s;
  };
  // Marker value a stall_warning was already issued for: one warning per
  // no-progress stretch, re-armed as soon as any worker makes progress.
  std::atomic<long long> stall_warned_marker{-1};

  auto expected_deps = [&](const IntVec& t) { return hooks.dep_count(t); };

  auto worker = [&](int worker_id) {
    obs::Tracer::set_identity(rank, worker_id);
    // Profiled runs: arm this worker's sampling timer + counter group for
    // the duration of the run (no-op when the profiler is inactive).
    obs::ProfileThreadScope prof_scope(opt.profile, rank, worker_id);
    const int preferred_shard = worker_id % table.shards();
    RunStats local;
    std::vector<S> buffer(static_cast<std::size_t>(hooks.buffer_size()));
    // Payload vectors cycle worker-locally: each tile's unpack releases
    // exactly the buffers its packs then re-acquire, so after warm-up
    // every acquire is a pool hit.
    detail::BufferPool<S> payload_pool;
    IntVec consumer(static_cast<std::size_t>(dim));
    IntVec producer(static_cast<std::size_t>(dim));
    IntVec poll_consumer;
    // Outgoing edges of the tile in flight, captured for the checkpoint
    // (recorded atomically with the executed mark in tile_complete).
    std::vector<CheckpointEdge<S>> ckpt_edges;
    long long seen_marker = progress_marker.load();
    auto seen_time = Clock::now();
    detail::Backoff backoff;
    // Set while in an idle stretch (no ready tile): its start time.
    bool idling = false;
    auto idle_since = Clock::now();
    // Idle spans are recorded retrospectively (no ScopedSpan wraps the
    // stretch), so the profiler's phase frame is maintained by hand.
    bool idle_frame = false;

    auto poll = [&]() -> bool {
      std::unique_lock<std::mutex> lock(poll_mu, std::try_to_lock);
      if (!lock.owns_lock()) return false;
      obs::ScopedSpan span(obs::Phase::kPoll);
      bool got = false;
      std::int64_t batch_deliver_ns = 0;
      while (auto msg = comm.try_recv()) {
        EdgeData<S> ed;
        ed.payload = payload_pool.acquire();
        detail::decode_edge<S>(msg->payload, dim, num_edges, &ed.edge,
                               &poll_consumer, &ed.payload);
        if (msg->env.seq >= 0) {
          // Traced message: complete the sender/transport half of the
          // lifecycle envelope into the edge's record; unpack and
          // dispatch are stamped when the consumer tile runs.
          ed.msg.seq = msg->env.seq;
          ed.msg.pack_ns = msg->env.pack_ns;
          ed.msg.send_ns = msg->env.send_ns;
          ed.msg.admit_ns = msg->env.admit_ns;
          // One stamp per drain sweep: every message pulled while the
          // poll lock is held was sitting in the mailbox at the same
          // instant, so they share a deliver time (and the hot path pays
          // one clock read per sweep, not per message).
          if (batch_deliver_ns == 0) batch_deliver_ns = obs::MsgTracer::now_ns();
          ed.msg.deliver_ns = batch_deliver_ns;
          ed.msg.bytes = static_cast<std::int64_t>(msg->payload.size());
          ed.msg.src = static_cast<std::int16_t>(msg->source);
          ed.msg.dst = static_cast<std::int16_t>(rank);
          ed.msg.src_thread = msg->env.src_thread;
          ed.msg.edge = static_cast<std::int16_t>(ed.edge);
        }
        wire_pool.release(std::move(msg->payload));
        // After a restart/resume, a re-executing producer re-sends edges
        // whose consumer the checkpoint already credits as executed.
        // Delivering those would rebuild the consumer's full dependency
        // set and make it execute twice, so they are dropped here.
        if (ckpt_replay && checkpoint->executed(poll_consumer)) {
          if (ed.msg.seq >= 0) {
            // Delivered-but-screened: record it now (conservation counts
            // the delivery; dispatch never happens for a replayed edge).
            ed.msg.unpack_ns = ed.msg.deliver_ns;
            ed.msg.dispatch_ns = ed.msg.deliver_ns;
            ed.msg.dst_thread = static_cast<std::int16_t>(worker_id);
            obs::MsgTracer::instance().record(ed.msg);
          }
          payload_pool.release(std::move(ed.payload));
        } else {
          table.deliver(poll_consumer, expected_deps, std::move(ed));
        }
        got = true;
      }
      ++local.polls;
      return got;
    };

    while (!worker_failed.load(std::memory_order_acquire) &&
           done.load(std::memory_order_acquire) < owned) {
      auto ready = table.pop(preferred_shard);
      if (!ready) {
        // 6'. idle path: poll, then back off so the core is not burnt.
        if (!idling) {
          idling = true;
          idle_since = Clock::now();
          idle_frame = obs::profile_frame_push(obs::Phase::kIdle);
        }
        if (poll()) {
          progress_marker.fetch_add(1);
          backoff.reset();
        }
        ++local.idle_spins;
        backoff.pause();
        if (opt.monitor && opt.monitor->claim(rank))
          opt.monitor->publish(rank, monitor_snapshot());
        if (opt.stall_timeout_seconds > 0) {
          long long marker = progress_marker.load();
          if (marker != seen_marker) {
            seen_marker = marker;
            seen_time = Clock::now();
          } else {
            const double waited =
                std::chrono::duration<double>(Clock::now() - seen_time)
                    .count();
            if (checkpoint && opt.recover_stall_seconds > 0 &&
                waited > opt.recover_stall_seconds) {
              // Recovery path: dependencies this rank is starving for are
              // presumed lost (a dropped message cannot be told apart
              // from a slow one, so the budget decides).  Poison the
              // transport so every rank unwinds; the engine restarts
              // from the checkpoint and producers re-send.
              const TableSnapshot snap = table.snapshot();
              const std::string why = cat(
                  "no progress for ", waited, "s (recover budget ",
                  opt.recover_stall_seconds, "s): presumed message loss; "
                  "ready=", snap.ready_tiles, " pending=",
                  snap.pending_tiles, " buffered_edges=",
                  snap.buffered_edges, " executed=", done.load(), "/",
                  owned);
              comm.declare_failure(why);
              throw minimpi::TransportFailure(why);
            }
            if (waited > 0.5 * opt.stall_timeout_seconds) {
              // Halfway to the abort: warn once per no-progress stretch so
              // live monitors see trouble before the run dies.
              long long warned =
                  stall_warned_marker.load(std::memory_order_relaxed);
              if (warned != marker &&
                  stall_warned_marker.compare_exchange_strong(warned,
                                                              marker)) {
                ++local.stall_warnings;
                const TableSnapshot snap = table.snapshot();
                std::fprintf(
                    stderr,
                    "dpgen: stall_warning: rank %d made no progress for "
                    "%.2fs (timeout %.2fs): ready=%lld pending=%lld "
                    "buffered_edges=%lld executed=%lld/%lld "
                    "blocked_senders=%d\n",
                    rank, waited, opt.stall_timeout_seconds,
                    snap.ready_tiles, snap.pending_tiles,
                    snap.buffered_edges, done.load(),
                    static_cast<long long>(owned), blocked_senders.load());
                if (opt.monitor) {
                  obs::RankSnapshot ms = monitor_snapshot();
                  opt.monitor->stall_warning(rank, ms, waited,
                                             opt.stall_timeout_seconds);
                }
              }
            }
            if (waited > opt.stall_timeout_seconds) {
              const TableSnapshot snap = table.snapshot();
              std::string last = "(none)";
              {
                std::lock_guard<std::mutex> lock(diag_mu);
                if (!last_tile_completed.empty()) {
                  last = "(";
                  for (std::size_t k = 0; k < last_tile_completed.size();
                       ++k)
                    last += cat(k ? "," : "", last_tile_completed[k]);
                  last += ")";
                }
              }
              raise(cat(
                  "runtime stalled: no tile became ready within the stall "
                  "timeout (likely a scheduling bug or a dead peer rank); "
                  "rank ", rank, " scheduler snapshot: ready=",
                  snap.ready_tiles, " pending=", snap.pending_tiles,
                  " buffered_edges=", snap.buffered_edges, " executed=",
                  done.load(), "/", owned, " owned tiles, blocked_senders=",
                  blocked_senders.load(), " (", comm.blocked_sends(),
                  " blocked sends so far), last tile completed: ", last));
            }
          }
        }
        continue;
      }
      if (idling) {
        const double idle =
            std::chrono::duration<double>(Clock::now() - idle_since).count();
        local.idle_seconds += idle;
        metrics.idle_ns.add(static_cast<std::int64_t>(idle * 1e9));
        obs::Tracer& tracer = obs::Tracer::instance();
        if (tracer.enabled()) {
          const std::int64_t end_ns = tracer.now_ns();
          tracer.record(obs::Phase::kIdle,
                        end_ns - static_cast<std::int64_t>(idle * 1e9),
                        end_ns);
        }
        idling = false;
        obs::profile_frame_pop(idle_frame);
        idle_frame = false;
        backoff.reset();
      }
      busy_workers.fetch_add(1, std::memory_order_relaxed);
      progress_marker.fetch_add(1, std::memory_order_relaxed);
      // Cells are credited at tile *start* so a worker grinding through one
      // expensive tile doesn't read as stalled between heartbeats (cell
      // counts are heavy-tailed; completion-credit is a step function whose
      // flats the straggler detector would mistake for slowness).  The
      // profiler's per-tile totals reuse the same count.
      const Int tile_cells_now = (opt.monitor || opt.profile)
                                     ? hooks.tile_cells(ready->tile)
                                     : 0;
      if (opt.monitor)
        done_cells.fetch_add(tile_cells_now, std::memory_order_relaxed);

      // 2. fresh buffer + unpack stored edges (payloads go back to the
      // pool, where step 4's packs pick them straight up again)
      {
        obs::ScopedSpan span(obs::Phase::kUnpack, &ready->tile);
        if constexpr (std::is_floating_point_v<S>) {
          std::fill(buffer.begin(), buffer.end(),
                    opt.poison_buffers ? std::numeric_limits<S>::quiet_NaN()
                                       : S{});
        } else {
          std::fill(buffer.begin(), buffer.end(), S{});
        }
        // All of this tile's stored edges unpack back to back; one stamp
        // (taken at the first traced edge) marks the batch, keeping the
        // clock off the hot path for locally-fed tiles.
        std::int64_t unpack_ns = 0;
        for (auto& e : ready->edges) {
          const IntVec& off = hooks.edge_offset(e.edge);
          for (int k = 0; k < dim; ++k)
            producer[static_cast<std::size_t>(k)] =
                add_ck(ready->tile[static_cast<std::size_t>(k)],
                       off[static_cast<std::size_t>(k)]);
          hooks.unpack(e.edge, producer, e.payload.data(),
                       static_cast<Int>(e.payload.size()), buffer.data());
          if (e.msg.seq >= 0) {
            if (unpack_ns == 0) unpack_ns = obs::MsgTracer::now_ns();
            e.msg.unpack_ns = unpack_ns;
          }
          payload_pool.release(std::move(e.payload));
        }
      }

      // Dispatch stamp: the dependent tile is about to execute.  Each
      // remote edge's lifecycle record is complete here, so it goes into
      // the ring (one shared stamp — the edges unblock the same tile).
      if (obs::MsgTracer::instance().enabled()) {
        // Most tiles are fed by local edges only; find a traced edge
        // before touching the clock so purely-local tiles pay one relaxed
        // load and a short scan, not a timestamp per pop.
        std::int64_t dispatch_ns = 0;
        const auto nc = static_cast<std::uint8_t>(std::min<std::size_t>(
            ready->tile.size(), obs::kMaxSpanDims));
        for (auto& e : ready->edges) {
          if (e.msg.seq < 0) continue;
          if (dispatch_ns == 0) dispatch_ns = obs::MsgTracer::now_ns();
          e.msg.dispatch_ns = dispatch_ns;
          e.msg.dst_thread = static_cast<std::int16_t>(worker_id);
          e.msg.ncoord = nc;
          for (std::uint8_t k = 0; k < nc; ++k)
            e.msg.consumer[k] = static_cast<std::int32_t>(ready->tile[k]);
          obs::MsgTracer::instance().record(e.msg);
        }
      }

      // 3. execute
      {
        obs::ScopedSpan span(obs::Phase::kTileExecute, &ready->tile);
        const bool prof_window =
            opt.profile && obs::Profiler::tile_begin();
        const auto t0 = Clock::now();
        hooks.execute_tile(ready->tile, buffer.data());
        const std::int64_t exec_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - t0)
                .count();
        if (opt.profile)
          obs::Profiler::tile_end(prof_window,
                                  static_cast<long long>(tile_cells_now),
                                  exec_ns);
        metrics.tile_ns.observe(exec_ns);
      }
      hooks.on_tile_executed(ready->tile, buffer.data());
      ++local.tiles_executed;
      {
        std::lock_guard<std::mutex> lock(diag_mu);
        last_tile_completed.assign(ready->tile.begin(), ready->tile.end());
      }

      // 4. pack and route each valid outgoing edge
      for (int e = 0; e < num_edges; ++e) {
        const IntVec& off = hooks.edge_offset(e);
        for (int k = 0; k < dim; ++k)
          consumer[static_cast<std::size_t>(k)] =
              sub_ck(ready->tile[static_cast<std::size_t>(k)],
                     off[static_cast<std::size_t>(k)]);
        if (!hooks.tile_exists(consumer)) continue;
        // Executed consumers (possible only after a restart/resume, when
        // this producer is re-running) already folded this edge into their
        // recorded results; sending it again would at best be dropped at
        // the receiver and at worst re-execute the consumer.
        if (ckpt_replay && checkpoint->executed(consumer)) continue;
        const int dst = hooks.owner(consumer);
        if (dst == rank) {
          // Local edge: pack into a pooled payload vector and move it
          // into the table — no copies anywhere on the path.
          EdgeData<S> ed;
          ed.edge = e;
          ed.payload = payload_pool.acquire();
          ed.payload.resize(
              static_cast<std::size_t>(hooks.edge_capacity(e)));
          Int count;
          {
            obs::ScopedSpan span(obs::Phase::kPack, &ready->tile);
            count = hooks.pack(e, ready->tile, buffer.data(),
                               ed.payload.data());
          }
          DPGEN_ASSERT(count >= 0 &&
                       count <= static_cast<Int>(ed.payload.size()));
          ed.payload.resize(static_cast<std::size_t>(count));
          metrics.payload_scalars.observe(count);
          if (checkpoint)
            ckpt_edges.push_back(CheckpointEdge<S>{consumer, e, ed.payload});
          table.deliver(consumer, expected_deps, std::move(ed));
          ++local.local_edges;
        } else {
          // Remote edge: pack straight into the wire buffer after the
          // reserved header, then move the buffer into the mailbox.
          obs::ScopedSpan span(obs::Phase::kSend, &consumer);
          const bool msg_traced = obs::MsgTracer::instance().enabled();
          minimpi::MsgEnvelope env;
          if (msg_traced) env.pack_ns = obs::MsgTracer::now_ns();
          std::vector<std::uint8_t> wire = wire_pool.acquire();
          S* out = detail::begin_edge_wire<S>(wire, dim,
                                              hooks.edge_capacity(e));
          Int count;
          {
            obs::ScopedSpan pack_span(obs::Phase::kPack, &ready->tile);
            count = hooks.pack(e, ready->tile, buffer.data(), out);
          }
          DPGEN_ASSERT(count >= 0 && count <= hooks.edge_capacity(e));
          detail::finish_edge_wire<S>(wire, e, consumer, count);
          metrics.payload_scalars.observe(count);
          if (checkpoint)
            // finish_edge_wire only shrinks the buffer, so `out` (the
            // payload region) is still valid here.
            ckpt_edges.push_back(
                CheckpointEdge<S>{consumer, e, std::vector<S>(out, out + count)});
          if (msg_traced) {
            // One sequence number per message, assigned before the retry
            // loop — retries reuse the same envelope, so a blocked send
            // never burns extra numbers.
            env.seq = comm.next_seq(dst);
            env.send_ns = obs::MsgTracer::now_ns();
            env.src_thread = static_cast<std::int16_t>(worker_id);
          }
          const minimpi::MsgEnvelope* envp = msg_traced ? &env : nullptr;
          if (!comm.try_send(dst, e, wire, envp)) {
            // Destination buffers full: service our own mailbox while
            // backing off, which avoids cyclic send deadlocks under
            // small buffer budgets.
            obs::ScopedSpan blocked(obs::Phase::kBlockedSend, &consumer);
            const auto t0 = Clock::now();
            blocked_senders.fetch_add(1, std::memory_order_relaxed);
            detail::Backoff send_backoff;
            do {
              if (worker_failed.load(std::memory_order_acquire))
                raise("peer worker failed while this send was blocked");
              poll();
              send_backoff.pause();
            } while (!comm.try_send(dst, e, wire, envp));
            blocked_senders.fetch_sub(1, std::memory_order_relaxed);
            const double waited =
                std::chrono::duration<double>(Clock::now() - t0).count();
            local.blocked_send_seconds += waited;
            metrics.blocked_send_ns.add(
                static_cast<std::int64_t>(waited * 1e9));
          }
          metrics.edge_sent[static_cast<std::size_t>(e)]->increment();
          ++local.remote_edges;
        }
      }

      // Completed-tile record (the executed mark and the outgoing edges
      // land in one atomic step, so the store never names a producer
      // whose edges it does not hold).
      if (checkpoint) {
        checkpoint->tile_complete(ready->tile, std::move(ckpt_edges));
        ckpt_edges.clear();
      }

      // 5. hand the tile's containers back to the table so the next
      // pending slots reuse their heap storage (payloads already went to
      // payload_pool during unpack).
      table.recycle(std::move(*ready));

      done.fetch_add(1, std::memory_order_release);
      // Publish (if asked) before dropping busy_workers so the snapshot
      // still counts this worker as active for the tile it just finished.
      if (opt.monitor && opt.monitor->claim(rank))
        opt.monitor->publish(rank, monitor_snapshot());
      busy_workers.fetch_sub(1, std::memory_order_relaxed);
      // 6. opportunistic poll
      poll();
    }

    if (idling) {
      // Workers that drain early exit the loop mid-idle (the loop
      // condition flips while they wait for peers to finish the last
      // tiles), so the stretch must be closed here: this tail idle is
      // exactly what the load-balance audit attributes imbalance to.
      obs::profile_frame_pop(idle_frame);
      idle_frame = false;
      const double idle =
          std::chrono::duration<double>(Clock::now() - idle_since).count();
      local.idle_seconds += idle;
      metrics.idle_ns.add(static_cast<std::int64_t>(idle * 1e9));
      obs::Tracer& tracer = obs::Tracer::instance();
      if (tracer.enabled()) {
        const std::int64_t end_ns = tracer.now_ns();
        tracer.record(obs::Phase::kIdle,
                      end_ns - static_cast<std::int64_t>(idle * 1e9), end_ns);
      }
    }

    local.pool_hits += payload_pool.hits();
    local.edge_allocs += payload_pool.misses();

    metrics.tiles.add(local.tiles_executed);
    metrics.local_edges.add(local.local_edges);
    metrics.remote_edges.add(local.remote_edges);
    metrics.polls.add(local.polls);
    metrics.pool_hit.add(local.pool_hits);
    metrics.edge_alloc.add(local.edge_allocs);

    std::lock_guard<std::mutex> lock(stats_mu);
    stats.tiles_executed += local.tiles_executed;
    stats.local_edges += local.local_edges;
    stats.remote_edges += local.remote_edges;
    stats.polls += local.polls;
    stats.idle_spins += local.idle_spins;
    stats.edge_allocs += local.edge_allocs;
    stats.pool_hits += local.pool_hits;
    stats.idle_seconds += local.idle_seconds;
    stats.blocked_send_seconds += local.blocked_send_seconds;
    stats.stall_warnings += local.stall_warnings;
  };

  // Worker exceptions must not escape their threads (std::terminate);
  // capture the first and rethrow it on the spawning thread after the
  // join, which is how a TransportFailure reaches the engine's
  // fault-tolerant restart loop.
  auto guarded_worker = [&](int w) {
    try {
      worker(w);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      worker_failed.store(true, std::memory_order_release);
    }
  };

#if defined(_OPENMP) && defined(DPGEN_RUNTIME_USE_OPENMP)
#pragma omp parallel num_threads(opt.threads)
  { guarded_worker(omp_get_thread_num()); }
#else
  if (opt.threads <= 1) {
    guarded_worker(0);
  } else {
    std::vector<std::thread> threads;
    for (int w = 0; w < opt.threads; ++w)
      threads.emplace_back(guarded_worker, w);
    for (auto& t : threads) t.join();
  }
#endif

  if (first_error) {
    // A rank about to unwind must not leave its peers parked: they may
    // already be waiting in the final barrier (which only wakes on
    // transport failure) or starving for edges this rank will never send.
    // TransportFailure implies the transport is already poisoned; any
    // other error poisons it here so the whole world unwinds.
    try {
      std::rethrow_exception(first_error);
    } catch (const minimpi::TransportFailure&) {
    } catch (const std::exception& e) {
      comm.declare_failure(cat("rank ", rank, " worker error: ", e.what()));
    } catch (...) {
      comm.declare_failure(cat("rank ", rank, " worker error"));
    }
    std::rethrow_exception(first_error);
  }

  stats.edge_allocs += wire_pool.misses();
  stats.pool_hits += wire_pool.hits();
  metrics.edge_alloc.add(wire_pool.misses());
  metrics.pool_hit.add(wire_pool.hits());

  // Forced final heartbeat: even a run shorter than the sampling interval
  // leaves one complete (fully-executed, drained-table) snapshot per rank.
  if (opt.monitor) opt.monitor->publish(rank, monitor_snapshot());

  obs::Tracer::set_identity(rank, 0);
  {
    obs::ScopedSpan span(obs::Phase::kBarrier);
    comm.barrier();
  }
  stats.table = table.stats();
  stats.messages_sent = comm.messages_sent();
  stats.bytes_sent = comm.bytes_sent();
  stats.blocked_sends = comm.blocked_sends();
  stats.total_seconds =
      std::chrono::duration<double>(Clock::now() - t_start).count();

#if DPGEN_TRACE
  // Merge every rank's span buffer to rank 0 (collective, so every rank
  // participates exactly when all do — the flag is process-wide here and
  // would be mirrored across real MPI ranks by the launcher).
  if (obs::Tracer::instance().enabled()) {
    obs::ScopedSpan span(obs::Phase::kGather);
    obs::gather_and_merge(comm);
  }
  // Message records ride the same collective path (the enable flag is
  // process-wide, so every rank takes this branch together or not at all).
  if (obs::MsgTracer::instance().enabled()) {
    obs::ScopedSpan span(obs::Phase::kGather);
    obs::gather_and_merge_msgs(comm);
  }
#endif
  return stats;
}

}  // namespace dpgen::runtime
