#include "runtime/order.hpp"

#include "support/error.hpp"

namespace dpgen::runtime {

TileOrder::TileOrder(std::vector<int> dim_priority, std::vector<int> signs,
                     PriorityPolicy policy)
    : dim_priority_(std::move(dim_priority)),
      signs_(signs.begin(), signs.end()),
      policy_(policy) {
  DPGEN_CHECK(dim_priority_.size() == signs_.size(),
              "TileOrder: dim_priority and signs must have equal length");
}

bool TileOrder::earlier(const IntVec& a, const IntVec& b) const {
  DPGEN_ASSERT(a.size() == signs_.size() && b.size() == signs_.size());
  if (policy_ == PriorityPolicy::kLevelSet) {
    // Wavefront order (Fig. 4b): complete each level set before starting
    // the next, i.e. less-progressed tiles first.  This maximises
    // parallelism at the cost of ~d times the buffered-edge memory.
    Int la = 0, lb = 0;
    for (std::size_t k = 0; k < a.size(); ++k) {
      la = add_ck(la, progress(a, k));
      lb = add_ck(lb, progress(b, k));
    }
    if (la != lb) return la < lb;
    // fall through to lexicographic tie-break
  }
  // Column-major flavour (Fig. 5): the tile furthest along the execution
  // direction runs first, comparing the load-balanced dimensions first.
  // Advancing fastest along the balanced dimensions reaches the tiles that
  // feed neighbouring nodes as early as possible ("tiles that cause
  // communication execute more quickly").
  for (int dim : dim_priority_) {
    auto k = static_cast<std::size_t>(dim);
    Int pa = progress(a, k);
    Int pb = progress(b, k);
    if (pa != pb) return pa > pb;
  }
  return false;  // equal
}

}  // namespace dpgen::runtime
