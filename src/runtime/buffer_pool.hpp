#pragma once
// Freelist pools for the driver's hot-path buffers.
//
// The steady-state driver loop checks two kinds of buffers in and out per
// edge: `std::vector<S>` payload vectors (local delivery and unpack) and
// `std::vector<uint8_t>` wire buffers (remote send/receive).  Pooling them
// makes the loop allocation-free after warm-up: a release keeps the
// vector's heap storage on a freelist and the next acquire hands it back
// with size zero but capacity intact.
//
// `BufferPool` is unsynchronised — one per worker thread, fed by that
// worker's own unpack-release / pack-acquire cycle, which balances exactly
// (every tile releases its in-edge payloads before acquiring out-edge
// payloads).  `SharedBufferPool` is the mutex-guarded variant shared by a
// rank's workers for wire buffers, where the release side (try_recv) and
// the acquire side (send) can be different threads.
//
// Both count hits (freelist reuse) and misses (a real allocation); the
// driver surfaces these as `runtime.pool_hit` / `runtime.edge_alloc`, so
// "zero per-edge allocations in steady state" is a measurable claim, not a
// code-reading exercise.

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace dpgen::runtime::detail {

/// Unsynchronised freelist of `std::vector<T>` buffers (one per worker).
template <typename T>
class BufferPool {
 public:
  /// Returns an empty vector, reusing pooled heap storage when available.
  std::vector<T> acquire() {
    if (free_.empty()) {
      ++misses_;
      return {};
    }
    ++hits_;
    std::vector<T> buf = std::move(free_.back());
    free_.pop_back();
    buf.clear();
    return buf;
  }

  /// Returns a buffer's storage to the freelist.
  void release(std::vector<T>&& buf) { free_.push_back(std::move(buf)); }

  long long hits() const { return hits_; }
  long long misses() const { return misses_; }

 private:
  std::vector<std::vector<T>> free_;
  long long hits_ = 0;
  long long misses_ = 0;
};

/// Mutex-guarded freelist shared by a rank's workers (wire buffers: the
/// receiver recycles message payloads that senders then reuse).
template <typename T>
class SharedBufferPool {
 public:
  std::vector<T> acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        ++hits_;
        std::vector<T> buf = std::move(free_.back());
        free_.pop_back();
        buf.clear();
        return buf;
      }
      ++misses_;
    }
    return {};
  }

  void release(std::vector<T>&& buf) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(buf));
  }

  long long hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  long long misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<T>> free_;
  long long hits_ = 0;
  long long misses_ = 0;
};

}  // namespace dpgen::runtime::detail
