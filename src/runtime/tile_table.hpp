#pragma once
// Pending-tile table and eligible-tile priority queue (paper section V.B).
//
// The two main data structures of a generated program:
//   * the pending table holds every tile known to this node that still has
//     unsatisfied dependencies, together with the packed edge data received
//     for it so far — only edge data, never whole tiles, which is what
//     keeps live memory O(n^(d-1)) instead of Theta(n^d);
//   * the ready queue holds tiles whose dependencies are all satisfied,
//     ordered by the TileOrder priority (Fig. 5).
//
// Both are flat, allocation-light structures: the ready queue is a binary
// heap over a contiguous vector (std::push_heap/pop_heap with the TileOrder
// comparator — same pop order as the old std::map, without a node
// allocation per ready tile), and the pending table is an open-addressing
// linear-probe map keyed by a hash the caller computes once (the sharded
// wrapper reuses it for shard selection, so each delivery hashes its tile
// exactly once).  Tombstoned slots keep their vectors' heap storage, so a
// busy table stops allocating once it reaches steady state.
//
// Both are guarded by one mutex per shard; the paper notes contention on
// these structures has not been a bottleneck, and it is not here either.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_set>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/msgtrace.hpp"
#include "runtime/order.hpp"
#include "support/error.hpp"

namespace dpgen::runtime {

/// One packed tile edge: which edge (tile-dependency offset index) plus the
/// packed scalars in canonical pack order.  `msg` is the in-flight message
/// lifecycle record for a remote edge (msg.seq < 0 for local edges and
/// untraced runs); the driver completes it at dispatch time.  Checkpoint
/// serialization ignores it — losing stamps across a restart only costs
/// observability.
template <typename S>
struct EdgeData {
  int edge = -1;
  std::vector<S> payload;
  obs::MsgRecord msg{};
};

/// A tile ready for execution, with every incoming edge it accumulated.
template <typename S>
struct ReadyTile {
  IntVec tile;
  std::vector<EdgeData<S>> edges;
};

/// Instantaneous scheduler state, read under the shard locks.  Feeds the
/// driver's stall-abort diagnostics: a stalled rank reports what it was
/// waiting on (tiles still missing dependencies, edges buffered for them)
/// rather than just that it waited.
struct TableSnapshot {
  long long pending_tiles = 0;   ///< tiles with unsatisfied dependencies
  long long ready_tiles = 0;     ///< eligible tiles not yet popped
  long long buffered_edges = 0;  ///< edges held for pending tiles
};

/// Memory-usage counters exposed for the FIG4 / PEND reproductions.
struct TableStats {
  long long peak_pending_tiles = 0;
  long long peak_buffered_edges = 0;
  long long peak_buffered_scalars = 0;
  long long delivered_edges = 0;
  /// Most tiles simultaneously eligible (ready-queue depth high-water).
  long long peak_ready_tiles = 0;
  /// Redeliveries of an edge index a pending tile already buffered —
  /// dropped on arrival.  Nonzero under a duplicating transport fault or a
  /// checkpoint replay that overlaps live sends; always zero on a clean run.
  long long duplicate_edges = 0;
};

/// Serialized table contents (checkpoint/restart): every pending tile with
/// its remaining-dependency count and buffered edges, plus the ready queue.
template <typename S>
struct TableState {
  struct Pending {
    IntVec tile;
    int waiting = 0;  ///< dependencies still missing
    std::vector<EdgeData<S>> edges;
  };
  std::vector<Pending> pending;
  std::vector<ReadyTile<S>> ready;
};

namespace detail {
/// Process-wide ready-queue depth gauge.  Fed the rank-level aggregate
/// depth (summed across a table's shards), so its instantaneous value is a
/// real per-rank queue depth and its max a real per-rank peak.
inline obs::Gauge& ready_depth_gauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::instance().gauge("runtime.ready_queue_depth");
  return g;
}

/// Second hash round applied before probing.  Shard selection consumes the
/// low bits of the tile hash (h % shards), so every tile landing in one
/// shard shares them; scrambling keeps those keys from clustering into
/// every shards-th probe slot.
inline std::size_t scramble_hash(std::size_t h) {
  std::uint64_t x = h;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return static_cast<std::size_t>(x);
}
}  // namespace detail

/// Rank-level ready-queue depth, shared by all shards of one table so the
/// exported gauge and the TableStats peak describe the rank's real queue
/// depth rather than a per-shard (or summed-peaks) approximation.
class ReadyDepthAgg {
 public:
  void add(long long delta) {
    long long cur = depth_.fetch_add(delta, std::memory_order_relaxed) + delta;
    if (delta > 0) {
      long long peak = peak_.load(std::memory_order_relaxed);
      while (cur > peak &&
             !peak_.compare_exchange_weak(peak, cur,
                                          std::memory_order_relaxed)) {
      }
    }
    detail::ready_depth_gauge().set(cur);
  }

  long long peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  std::atomic<long long> depth_{0};
  std::atomic<long long> peak_{0};
};

template <typename S>
class TileTable {
 public:
  /// `depth` aggregates ready-queue depth across shards; when null the
  /// table tracks its own (single-shard use and tests).
  explicit TileTable(const TileOrder& order, ReadyDepthAgg* depth = nullptr)
      : order_(order), depth_(depth ? depth : &own_depth_) {
    slots_.resize(kInitialSlots);
  }

  // The heap comparator and depth aggregate point into the table; pinning
  // it keeps those references valid.
  TileTable(const TileTable&) = delete;
  TileTable& operator=(const TileTable&) = delete;

  /// Seeds a dependency-free (initial) tile straight into the ready queue.
  void seed_ready(IntVec tile) {
    std::lock_guard<std::mutex> lock(mu_);
    push_ready(std::move(tile), {});
  }

  /// Delivers one edge for `tile`.  On first sight of the tile,
  /// expected_deps is consulted for its total in-space dependency count.
  /// When the last dependency arrives the tile moves to the ready queue.
  template <typename ExpectedFn>
  void deliver(const IntVec& tile, ExpectedFn&& expected_deps,
               EdgeData<S> edge) {
    deliver_hashed(tile, IntVecHash{}(tile),
                   std::forward<ExpectedFn>(expected_deps), std::move(edge));
  }

  /// Fast path: the caller supplies IntVecHash{}(tile), computed once and
  /// shared with shard selection.
  template <typename ExpectedFn>
  void deliver_hashed(const IntVec& tile, std::size_t tile_hash,
                      ExpectedFn&& expected_deps, EdgeData<S> edge) {
    const std::size_t hash = detail::scramble_hash(tile_hash);
    std::lock_guard<std::mutex> lock(mu_);
    // A duplicate that arrives after its tile already went ready must not
    // resurrect the tile: the slot is tombstoned by then, so without this
    // check the duplicate would open a fresh pending entry — and for a
    // tile expecting a single edge, immediately re-ready (and re-execute)
    // it, double-crediting the completion count.  Tracking every satisfied
    // tile costs a set insert per tile, so it is only armed when
    // duplicates are possible at all (fault injection or replay); a clean
    // transport never re-delivers, and the clean path stays
    // allocation-free.
    if (replay_guard_ && satisfied_.count(tile) != 0) {
      ++stats_.duplicate_edges;
      return;
    }
    grow_if_needed();

    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash & mask;
    Slot* slot = nullptr;
    Slot* reuse = nullptr;  // first tombstone crossed while probing
    for (;;) {
      Slot& s = slots_[i];
      if (s.state == kEmpty) break;
      if (s.state == kTombstone) {
        if (!reuse) reuse = &s;
      } else if (s.hash == hash && s.tile == tile) {
        slot = &s;
        break;
      }
      i = (i + 1) & mask;
    }
    if (!slot) {
      const int expected = expected_deps(tile);
      DPGEN_ASSERT(expected >= 1);
      slot = reuse ? reuse : &slots_[i];
      if (slot->state == kTombstone) --tombstones_;
      slot->hash = hash;
      if (slot->tile.capacity() == 0 && !spares_.empty()) {
        // The slot's vectors were moved out when its last tile went ready;
        // refill from a recycled pair so the assign/reserve below reuse
        // heap storage instead of allocating.
        slot->tile = std::move(spares_.back().tile);
        slot->edges = std::move(spares_.back().edges);
        spares_.pop_back();
      }
      slot->tile.assign(tile.begin(), tile.end());
      slot->edges.clear();
      slot->edges.reserve(static_cast<std::size_t>(expected));
      slot->waiting = expected;
      slot->state = kOccupied;
      ++size_;
      stats_.peak_pending_tiles =
          std::max(stats_.peak_pending_tiles, size_);
    }

    // Duplicate-edge guard: a faulty (or replayed) wire can deliver the
    // same edge twice; counting it twice would fire waiting==0 early and
    // execute the tile with dependencies missing.
    for (const auto& have : slot->edges) {
      if (have.edge == edge.edge) {
        ++stats_.duplicate_edges;
        return;
      }
    }

    cur_edges_ += 1;
    cur_scalars_ += static_cast<long long>(edge.payload.size());
    stats_.peak_buffered_edges =
        std::max(stats_.peak_buffered_edges, cur_edges_);
    stats_.peak_buffered_scalars =
        std::max(stats_.peak_buffered_scalars, cur_scalars_);
    ++stats_.delivered_edges;

    slot->edges.push_back(std::move(edge));
    if (--slot->waiting == 0) {
      if (replay_guard_) satisfied_.insert(tile);
      push_ready(std::move(slot->tile), std::move(slot->edges));
      slot->tile.clear();
      slot->edges.clear();
      slot->state = kTombstone;
      ++tombstones_;
      --size_;
    }
  }

  /// Pops the highest-priority ready tile, or nullopt when none is ready.
  std::optional<ReadyTile<S>> pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (ready_.empty()) return std::nullopt;
    std::pop_heap(ready_.begin(), ready_.end(), heap_before());
    ReadyTile<S> out = std::move(ready_.back());
    ready_.pop_back();
    depth_->add(-1);
    for (const auto& e : out.edges) {
      cur_edges_ -= 1;
      cur_scalars_ -= static_cast<long long>(e.payload.size());
    }
    return out;
  }

  /// Returns a processed tile's containers (the tile coordinates and the
  /// edges vector — payloads are expected to have been moved out already)
  /// so future pending slots reuse their heap storage.
  void recycle(ReadyTile<S>&& done) {
    done.edges.clear();
    std::lock_guard<std::mutex> lock(mu_);
    spares_.push_back(std::move(done));
  }

  /// True when nothing is pending or ready (diagnostic only).
  bool idle() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_ == 0 && ready_.empty();
  }

  TableStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    TableStats out = stats_;
    out.peak_ready_tiles = depth_->peak();
    return out;
  }

  TableSnapshot snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return {size_, static_cast<long long>(ready_.size()), cur_edges_};
  }

  /// Deep copy of the table contents for checkpointing (pending tiles with
  /// their buffered edges, plus the ready queue in heap order).
  TableState<S> export_state() const {
    std::lock_guard<std::mutex> lock(mu_);
    TableState<S> out;
    for (const Slot& s : slots_) {
      if (s.state != kOccupied) continue;
      out.pending.push_back(
          typename TableState<S>::Pending{s.tile, s.waiting, s.edges});
    }
    out.ready = ready_;
    return out;
  }

  /// Arms the post-ready duplicate guard (the satisfied-tile set consulted
  /// in deliver()).  Call before any tile goes ready, on tables that may
  /// see re-delivered edges: fault-injected runs, checkpoint replay.  Off
  /// by default — the guard costs a set insert per completed tile, which
  /// would break the clean path's zero-per-edge-allocation invariant.
  void enable_replay_guard() {
    std::lock_guard<std::mutex> lock(mu_);
    replay_guard_ = true;
  }

  /// Reloads exported contents into this (expected empty) table.  Pending
  /// tiles are replayed through the delivery path — same accounting, same
  /// ready transition if the state says no dependencies remain.  A restore
  /// implies replayed edges may still arrive, so the guard is armed.
  void restore_state(const TableState<S>& state) {
    enable_replay_guard();
    for (const auto& p : state.pending) {
      const int expected =
          p.waiting + static_cast<int>(p.edges.size());
      for (const auto& e : p.edges)
        deliver(p.tile, [&](const IntVec&) { return expected; }, e);
    }
    for (const auto& r : state.ready) restore_ready(r);
  }

  /// Re-enqueues one checkpointed ready tile, restoring the buffered-edge
  /// accounting that pop() will unwind.
  void restore_ready(const ReadyTile<S>& r) {
    std::lock_guard<std::mutex> lock(mu_);
    replay_guard_ = true;
    for (const auto& e : r.edges) {
      cur_edges_ += 1;
      cur_scalars_ += static_cast<long long>(e.payload.size());
    }
    stats_.peak_buffered_edges =
        std::max(stats_.peak_buffered_edges, cur_edges_);
    stats_.peak_buffered_scalars =
        std::max(stats_.peak_buffered_scalars, cur_scalars_);
    IntVec tile = r.tile;
    std::vector<EdgeData<S>> edges = r.edges;
    satisfied_.insert(tile);  // any further delivery for it is a duplicate
    push_ready(std::move(tile), std::move(edges));
  }

 private:
  static constexpr std::size_t kInitialSlots = 64;  // power of two
  static constexpr int kEmpty = 0;
  static constexpr int kTombstone = 1;
  static constexpr int kOccupied = 2;

  struct Slot {
    std::size_t hash = 0;
    int state = kEmpty;
    int waiting = 0;
    IntVec tile;
    std::vector<EdgeData<S>> edges;
  };

  /// Max-heap comparator: the heap's top is the tile the TileOrder says
  /// runs first, so `before(a, b)` holds when a is *later* than b.
  auto heap_before() const {
    return [this](const ReadyTile<S>& a, const ReadyTile<S>& b) {
      return order_.earlier(b.tile, a.tile);
    };
  }

  /// Called under mu_.
  void push_ready(IntVec&& tile, std::vector<EdgeData<S>>&& edges) {
    ready_.push_back(ReadyTile<S>{std::move(tile), std::move(edges)});
    std::push_heap(ready_.begin(), ready_.end(), heap_before());
    stats_.peak_ready_tiles =
        std::max(stats_.peak_ready_tiles,
                 static_cast<long long>(ready_.size()));
    depth_->add(1);
  }

  /// Called under mu_.  Keeps the live+tombstone load factor under 3/4 so
  /// probe chains stay short; rehashing drops tombstones.
  void grow_if_needed() {
    if ((size_ + tombstones_ + 1) * 4 <= slots_.size() * 3) return;
    std::size_t cap = slots_.size();
    while (static_cast<std::size_t>(size_ + 1) * 4 > cap * 2) cap *= 2;
    std::vector<Slot> old;
    old.swap(slots_);
    slots_.resize(cap);
    tombstones_ = 0;
    const std::size_t mask = cap - 1;
    for (Slot& s : old) {
      if (s.state != kOccupied) continue;
      std::size_t i = s.hash & mask;
      while (slots_[i].state != kEmpty) i = (i + 1) & mask;
      slots_[i] = std::move(s);
    }
  }

  TileOrder order_;
  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  long long size_ = 0;        // occupied slots
  std::size_t tombstones_ = 0;
  std::vector<ReadyTile<S>> ready_;  // binary heap ordered by heap_before()
  std::vector<ReadyTile<S>> spares_;  // recycled (tile, edges) containers
  /// Tiles whose dependency set has been fully delivered (they moved to the
  /// ready queue).  Late duplicates of their edges are dropped on sight —
  /// the tombstone left in slots_ forgets the tile's identity, so this set
  /// is what makes the duplicate guard hold across the ready transition.
  /// Populated only when replay_guard_ is armed (see enable_replay_guard).
  std::unordered_set<IntVec, IntVecHash> satisfied_;
  bool replay_guard_ = false;
  ReadyDepthAgg own_depth_;
  ReadyDepthAgg* depth_;
  TableStats stats_;
  long long cur_edges_ = 0;
  long long cur_scalars_ = 0;
};

/// Sharded variant (paper section VII.C): "separate shared data structures
/// for groups of closely connected cores — as long as its own queue has
/// work, a core would not need to compete for locks outside its group."
/// Tiles are assigned to shards by hash; workers pop from their preferred
/// shard first and steal from the others when it is empty.  Global
/// priority becomes approximate across shards, which is the accepted
/// trade-off.
template <typename S>
class ShardedTileTable {
 public:
  ShardedTileTable(const TileOrder& order, int shards) {
    DPGEN_CHECK(shards >= 1, "need at least one queue shard");
    for (int i = 0; i < shards; ++i)
      shards_.push_back(std::make_unique<TileTable<S>>(order, &depth_));
  }

  int shards() const { return static_cast<int>(shards_.size()); }

  /// Arms every shard's post-ready duplicate guard (see
  /// TileTable::enable_replay_guard).
  void enable_replay_guard() {
    for (auto& s : shards_) s->enable_replay_guard();
  }

  void seed_ready(IntVec tile) {
    shard_for(IntVecHash{}(tile)).seed_ready(std::move(tile));
  }

  template <typename ExpectedFn>
  void deliver(const IntVec& tile, ExpectedFn&& expected_deps,
               EdgeData<S> edge) {
    const std::size_t h = IntVecHash{}(tile);
    shard_for(h).deliver_hashed(tile, h,
                                std::forward<ExpectedFn>(expected_deps),
                                std::move(edge));
  }

  /// Pops from the preferred shard, stealing round-robin when empty.
  std::optional<ReadyTile<S>> pop(int preferred) {
    const int n = shards();
    for (int i = 0; i < n; ++i) {
      auto r = shards_[static_cast<std::size_t>((preferred + i) % n)]->pop();
      if (r) return r;
    }
    return std::nullopt;
  }

  bool idle() const {
    for (const auto& s : shards_)
      if (!s->idle()) return false;
    return true;
  }

  /// Hands a processed tile's containers back, rotating across shards so
  /// every shard's freelist gets a supply regardless of which workers
  /// finish tiles.
  void recycle(ReadyTile<S>&& done) {
    const std::size_t i =
        recycle_next_.fetch_add(1, std::memory_order_relaxed);
    shards_[i % shards_.size()]->recycle(std::move(done));
  }

  /// Aggregated statistics.  Memory peaks are summed over shards (they
  /// bound the true simultaneous peak from above); the ready peak is the
  /// shared depth aggregate's high-water, i.e. the true rank-level peak.
  TableStats stats() const {
    TableStats total;
    for (const auto& s : shards_) {
      TableStats t = s->stats();
      total.peak_pending_tiles += t.peak_pending_tiles;
      total.peak_buffered_edges += t.peak_buffered_edges;
      total.peak_buffered_scalars += t.peak_buffered_scalars;
      total.delivered_edges += t.delivered_edges;
      total.duplicate_edges += t.duplicate_edges;
    }
    total.peak_ready_tiles = depth_.peak();
    return total;
  }

  /// Shards concatenated into one flat state (the checkpoint does not
  /// record sharding; restore re-routes by hash, so a state exported from
  /// N shards restores cleanly into M).
  TableState<S> export_state() const {
    TableState<S> out;
    for (const auto& s : shards_) {
      TableState<S> t = s->export_state();
      for (auto& p : t.pending) out.pending.push_back(std::move(p));
      for (auto& r : t.ready) out.ready.push_back(std::move(r));
    }
    return out;
  }

  void restore_state(const TableState<S>& state) {
    enable_replay_guard();
    for (const auto& p : state.pending) {
      const int expected =
          p.waiting + static_cast<int>(p.edges.size());
      for (const auto& e : p.edges)
        deliver(p.tile, [&](const IntVec&) { return expected; }, e);
    }
    for (const auto& r : state.ready)
      shard_for(IntVecHash{}(r.tile)).restore_ready(r);
  }

  /// Summed over shards; each shard is internally consistent but the
  /// shards are read one after another, which is fine for diagnostics.
  TableSnapshot snapshot() const {
    TableSnapshot total;
    for (const auto& s : shards_) {
      TableSnapshot t = s->snapshot();
      total.pending_tiles += t.pending_tiles;
      total.ready_tiles += t.ready_tiles;
      total.buffered_edges += t.buffered_edges;
    }
    return total;
  }

 private:
  TileTable<S>& shard_for(std::size_t hash) {
    return *shards_[hash % shards_.size()];
  }

  ReadyDepthAgg depth_;
  std::atomic<std::size_t> recycle_next_{0};
  std::vector<std::unique_ptr<TileTable<S>>> shards_;
};

}  // namespace dpgen::runtime
