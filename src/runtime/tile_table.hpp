#pragma once
// Pending-tile table and eligible-tile priority queue (paper section V.B).
//
// The two main data structures of a generated program:
//   * the pending table holds every tile known to this node that still has
//     unsatisfied dependencies, together with the packed edge data received
//     for it so far — only edge data, never whole tiles, which is what
//     keeps live memory O(n^(d-1)) instead of Theta(n^d);
//   * the ready queue holds tiles whose dependencies are all satisfied,
//     ordered by the TileOrder priority (Fig. 5).
//
// Both are guarded by one mutex; the paper notes contention on these
// structures has not been a bottleneck, and it is not here either.

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "runtime/order.hpp"
#include "support/error.hpp"

namespace dpgen::runtime {

/// One packed tile edge: which edge (tile-dependency offset index) plus the
/// packed scalars in canonical pack order.
template <typename S>
struct EdgeData {
  int edge = -1;
  std::vector<S> payload;
};

/// A tile ready for execution, with every incoming edge it accumulated.
template <typename S>
struct ReadyTile {
  IntVec tile;
  std::vector<EdgeData<S>> edges;
};

/// Memory-usage counters exposed for the FIG4 / PEND reproductions.
struct TableStats {
  long long peak_pending_tiles = 0;
  long long peak_buffered_edges = 0;
  long long peak_buffered_scalars = 0;
  long long delivered_edges = 0;
  /// Most tiles simultaneously eligible (ready-queue depth high-water).
  long long peak_ready_tiles = 0;
};

namespace detail {
/// Process-wide ready-queue depth gauge (its max is the useful signal;
/// the instantaneous value mixes shards and ranks).
inline obs::Gauge& ready_depth_gauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::instance().gauge("runtime.ready_queue_depth");
  return g;
}
}  // namespace detail

template <typename S>
class TileTable {
 public:
  explicit TileTable(const TileOrder& order)
      : order_(order), ready_(order_.less()) {}

  // The ready queue's comparator points at order_; pinning the table keeps
  // that pointer valid.
  TileTable(const TileTable&) = delete;
  TileTable& operator=(const TileTable&) = delete;

  /// Seeds a dependency-free (initial) tile straight into the ready queue.
  void seed_ready(IntVec tile) {
    std::lock_guard<std::mutex> lock(mu_);
    ready_.emplace(std::move(tile), std::vector<EdgeData<S>>{});
    note_ready_depth();
  }

  /// Delivers one edge for `tile`.  On first sight of the tile,
  /// expected_deps is consulted for its total in-space dependency count.
  /// When the last dependency arrives the tile moves to the ready queue.
  template <typename ExpectedFn>
  void deliver(const IntVec& tile, ExpectedFn&& expected_deps,
               EdgeData<S> edge) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(tile);
    if (it == pending_.end()) {
      int expected = expected_deps(tile);
      DPGEN_ASSERT(expected >= 1);
      it = pending_.emplace(tile, Pending{expected, {}}).first;
      stats_.peak_pending_tiles =
          std::max(stats_.peak_pending_tiles,
                   static_cast<long long>(pending_.size()));
    }
    cur_edges_ += 1;
    cur_scalars_ += static_cast<long long>(edge.payload.size());
    stats_.peak_buffered_edges =
        std::max(stats_.peak_buffered_edges, cur_edges_);
    stats_.peak_buffered_scalars =
        std::max(stats_.peak_buffered_scalars, cur_scalars_);
    ++stats_.delivered_edges;

    it->second.edges.push_back(std::move(edge));
    if (--it->second.waiting == 0) {
      ready_.emplace(tile, std::move(it->second.edges));
      pending_.erase(it);
      note_ready_depth();
    }
  }

  /// Pops the highest-priority ready tile, or nullopt when none is ready.
  std::optional<ReadyTile<S>> pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (ready_.empty()) return std::nullopt;
    auto it = ready_.begin();
    ReadyTile<S> out{it->first, std::move(it->second)};
    ready_.erase(it);
    for (const auto& e : out.edges) {
      cur_edges_ -= 1;
      cur_scalars_ -= static_cast<long long>(e.payload.size());
    }
    return out;
  }

  /// True when nothing is pending or ready (diagnostic only).
  bool idle() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_.empty() && ready_.empty();
  }

  TableStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  struct Pending {
    int waiting = 0;
    std::vector<EdgeData<S>> edges;
  };

  /// Called under mu_ whenever a tile becomes eligible.
  void note_ready_depth() {
    auto depth = static_cast<long long>(ready_.size());
    stats_.peak_ready_tiles = std::max(stats_.peak_ready_tiles, depth);
    detail::ready_depth_gauge().set(depth);
  }

  TileOrder order_;
  mutable std::mutex mu_;
  std::unordered_map<IntVec, Pending, IntVecHash> pending_;
  std::map<IntVec, std::vector<EdgeData<S>>, TileOrder::Less> ready_;
  TableStats stats_;
  long long cur_edges_ = 0;
  long long cur_scalars_ = 0;
};

/// Sharded variant (paper section VII.C): "separate shared data structures
/// for groups of closely connected cores — as long as its own queue has
/// work, a core would not need to compete for locks outside its group."
/// Tiles are assigned to shards by hash; workers pop from their preferred
/// shard first and steal from the others when it is empty.  Global
/// priority becomes approximate across shards, which is the accepted
/// trade-off.
template <typename S>
class ShardedTileTable {
 public:
  ShardedTileTable(const TileOrder& order, int shards) {
    DPGEN_CHECK(shards >= 1, "need at least one queue shard");
    for (int i = 0; i < shards; ++i)
      shards_.push_back(std::make_unique<TileTable<S>>(order));
  }

  int shards() const { return static_cast<int>(shards_.size()); }

  void seed_ready(IntVec tile) {
    shard_for(tile).seed_ready(std::move(tile));
  }

  template <typename ExpectedFn>
  void deliver(const IntVec& tile, ExpectedFn&& expected_deps,
               EdgeData<S> edge) {
    shard_for(tile).deliver(tile, std::forward<ExpectedFn>(expected_deps),
                            std::move(edge));
  }

  /// Pops from the preferred shard, stealing round-robin when empty.
  std::optional<ReadyTile<S>> pop(int preferred) {
    const int n = shards();
    for (int i = 0; i < n; ++i) {
      auto r = shards_[static_cast<std::size_t>((preferred + i) % n)]->pop();
      if (r) return r;
    }
    return std::nullopt;
  }

  bool idle() const {
    for (const auto& s : shards_)
      if (!s->idle()) return false;
    return true;
  }

  /// Aggregated statistics (peaks are summed over shards, so they bound
  /// the true simultaneous peak from above).
  TableStats stats() const {
    TableStats total;
    for (const auto& s : shards_) {
      TableStats t = s->stats();
      total.peak_pending_tiles += t.peak_pending_tiles;
      total.peak_buffered_edges += t.peak_buffered_edges;
      total.peak_buffered_scalars += t.peak_buffered_scalars;
      total.delivered_edges += t.delivered_edges;
      total.peak_ready_tiles += t.peak_ready_tiles;
    }
    return total;
  }

 private:
  TileTable<S>& shard_for(const IntVec& tile) {
    return *shards_[IntVecHash{}(tile) % shards_.size()];
  }

  std::vector<std::unique_ptr<TileTable<S>>> shards_;
};

}  // namespace dpgen::runtime
