#pragma once
// Checkpoint/restart of the pending-tile computation (ROADMAP item 5).
//
// The store is a producer-side log: when a tile finishes executing, the
// driver records the tile as executed together with every outgoing edge it
// produced (consumer tile, edge index, packed payload) in one atomic step.
// That log *is* the serialized tile-table state, consolidated across
// ranks: every edge buffered in any rank's pending table came from an
// executed producer, so it is in the store; every dependency that is not
// in the store comes from a producer that has not executed and will be
// re-sent when the producer (re)runs.
//
// Restart protocol (driver.hpp + engine.cpp):
//   1. the engine re-runs the Ehrhart LoadBalancer over the surviving
//      ranks, so every tile has a (new) owner;
//   2. each rank seeds a *fresh* tile table: initial tiles it owns that
//      have not executed, plus — via seed_rank() — every stored edge whose
//      consumer it owns and which has not executed;
//   3. each rank's completion target is pre-credited with its executed
//      owned tiles, and the run proceeds; non-executed producers
//      re-execute and re-send their edges exactly as in a clean run.
// A tile that executed but crashed before its tile_complete() record
// simply re-executes: recording is idempotent (first record wins) and
// re-delivered edges are dropped by the tile table's duplicate guard or
// land in the next attempt's fresh tables at most once.
//
// The JSON file format (dpgen.checkpoint.v1, tools/checkpoint_schema.json)
// hex-encodes payload bytes so any trivially-copyable scalar round-trips
// exactly — %.17g would cover double, but the store is scalar-agnostic.

#include <atomic>
#include <cstring>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "runtime/tile_table.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace dpgen::runtime {

namespace detail {
std::string bytes_to_hex(const std::uint8_t* data, std::size_t n);
/// Inverse of bytes_to_hex; throws dpgen::Error on malformed input.
std::vector<std::uint8_t> hex_to_bytes(const std::string& hex);
}  // namespace detail

/// Scalar-type-erased checkpoint contents — exactly what the JSON file
/// holds.  CheckpointStore<S> converts payloads to/from raw bytes.
struct CheckpointDoc {
  std::string problem;
  std::string params;
  int dim = 0;
  int scalar_bytes = 0;
  std::vector<IntVec> executed;
  struct Edge {
    IntVec consumer;
    int edge = -1;
    std::vector<std::uint8_t> payload_bytes;
  };
  std::vector<Edge> edges;
  /// Informational per-rank table occupancy at flush time (not consumed
  /// by restore; restart rebuilds tables from the edge log).
  struct RankState {
    int rank = -1;
    long long pending_tiles = 0;
    long long ready_tiles = 0;
    long long buffered_edges = 0;
  };
  std::vector<RankState> ranks;
};

/// Serializes `doc` as a dpgen.checkpoint.v1 JSON document.
std::string encode_checkpoint_json(const CheckpointDoc& doc);
/// Parses and structurally validates a checkpoint file.
CheckpointDoc load_checkpoint_json(const std::string& path);
/// Writes `text` to `path` via a temporary + rename, so a crash mid-write
/// never leaves a truncated checkpoint behind.
void write_checkpoint_file(const std::string& path, const std::string& text);

/// One outgoing edge captured at tile completion.
template <typename S>
struct CheckpointEdge {
  IntVec consumer;
  int edge = -1;
  std::vector<S> payload;
};

/// Thread-safe, cross-rank checkpoint store (one per engine run; every
/// rank's workers record into it).  In a multi-process deployment each
/// rank would keep its own shard and the engine would merge on restart;
/// in-process, one store with one mutex mirrors that without the I/O.
template <typename S>
class CheckpointStore {
 public:
  static_assert(std::is_trivially_copyable_v<S>,
                "checkpoint payloads are raw scalar bytes");

  void set_meta(std::string problem, std::string params, int dim) {
    std::lock_guard<std::mutex> lock(mu_);
    problem_ = std::move(problem);
    params_ = std::move(params);
    dim_ = dim;
  }

  /// Enables periodic JSON flushes: every `every_tiles` completions the
  /// store rewrites `path` (empty path = in-memory only).
  void configure_flush(std::string path, long long every_tiles) {
    std::lock_guard<std::mutex> lock(mu_);
    json_path_ = std::move(path);
    every_ = every_tiles > 0 ? every_tiles : 0;
  }

  bool executed(const IntVec& tile) const {
    std::lock_guard<std::mutex> lock(mu_);
    return executed_.count(tile) != 0;
  }

  /// True once already-credited tiles can re-execute and re-send their
  /// edges — after a resume (restore_from) or a restart (enter_replay).
  /// The driver consults executed() per delivered edge only in this mode:
  /// on a clean first attempt no producer ever re-runs, so the per-edge
  /// lock + lookup would be pure overhead on the hot path.
  bool replay_possible() const {
    return replay_.load(std::memory_order_acquire);
  }
  void enter_replay() { replay_.store(true, std::memory_order_release); }

  long long completed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<long long>(executed_.size());
  }

  /// Records a finished tile and its outgoing edges atomically.
  /// Idempotent: a tile that re-executes after a crash-before-record on a
  /// previous attempt records once; later calls are dropped whole (the
  /// edge payloads are deterministic, so first-wins is also last-wins).
  void tile_complete(const IntVec& tile,
                     std::vector<CheckpointEdge<S>>&& edges) {
    bool flush_now = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (executed_.count(tile) != 0) return;
      for (auto& e : edges)
        edges_[e.consumer].push_back(
            EdgeData<S>{e.edge, std::move(e.payload)});
      executed_.insert(tile);
      if (!json_path_.empty() && every_ > 0 &&
          ++since_flush_ >= every_) {
        since_flush_ = 0;
        flush_now = true;
      }
    }
    if (flush_now) flush();
  }

  /// Restore seeding: delivers every stored edge whose consumer `owner`
  /// assigns to `rank` and which has not executed into `table`, and
  /// returns the number of executed tiles the rank owns (its pre-credited
  /// completion count).
  template <typename OwnerFn, typename ExpectedFn, typename Table>
  long long seed_rank(int rank, OwnerFn&& owner, ExpectedFn&& expected,
                      Table& table) const {
    std::lock_guard<std::mutex> lock(mu_);
    long long credited = 0;
    for (const auto& t : executed_)
      if (owner(t) == rank) ++credited;
    for (const auto& [consumer, edges] : edges_) {
      if (owner(consumer) != rank || executed_.count(consumer) != 0)
        continue;
      for (const auto& e : edges)
        table.deliver(consumer, expected, EdgeData<S>{e.edge, e.payload});
    }
    return credited;
  }

  /// Registers a rank's live table so periodic flushes record its
  /// occupancy; detach before the table dies (the driver uses an RAII
  /// guard around each attempt).
  void attach_table(int rank, const ShardedTileTable<S>* table) {
    std::lock_guard<std::mutex> lock(mu_);
    tables_[rank] = table;
  }
  void detach_table(int rank) {
    std::lock_guard<std::mutex> lock(mu_);
    tables_.erase(rank);
  }

  CheckpointDoc to_doc() const {
    std::lock_guard<std::mutex> lock(mu_);
    return to_doc_locked();
  }

  /// Serializes to the configured path now (no-op without a path).
  /// flush_mu_ orders concurrent flushers end to end (encode *and* write),
  /// so the file on disk is always the most recently encoded snapshot —
  /// without it a slow writer could rename an older snapshot over a newer
  /// one.
  void flush() const {
    std::lock_guard<std::mutex> flush_lock(flush_mu_);
    std::string path, text;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (json_path_.empty()) return;
      path = json_path_;
      text = encode_checkpoint_json(to_doc_locked());
    }
    write_checkpoint_file(path, text);
  }

  /// Loads a parsed checkpoint, replacing current contents.  Validates
  /// that it describes the same problem instance and scalar type.
  void restore_from(const CheckpointDoc& doc) {
    std::lock_guard<std::mutex> lock(mu_);
    DPGEN_CHECK(doc.scalar_bytes == static_cast<int>(sizeof(S)),
                cat("checkpoint scalar width ", doc.scalar_bytes,
                    " does not match runtime scalar of ",
                    static_cast<int>(sizeof(S)), " bytes"));
    DPGEN_CHECK(problem_.empty() || doc.problem == problem_,
                cat("checkpoint is for problem '", doc.problem,
                    "', not '", problem_, "'"));
    DPGEN_CHECK(params_.empty() || doc.params == params_,
                cat("checkpoint params '", doc.params,
                    "' do not match run params '", params_, "'"));
    DPGEN_CHECK(dim_ == 0 || doc.dim == dim_, "checkpoint dim mismatch");
    replay_.store(true, std::memory_order_release);
    executed_.clear();
    edges_.clear();
    for (const auto& t : doc.executed) executed_.insert(t);
    for (const auto& e : doc.edges) {
      DPGEN_CHECK(e.payload_bytes.size() % sizeof(S) == 0,
                  "checkpoint edge payload is not a whole number of scalars");
      std::vector<S> payload(e.payload_bytes.size() / sizeof(S));
      if (!payload.empty())
        std::memcpy(payload.data(), e.payload_bytes.data(),
                    e.payload_bytes.size());
      edges_[e.consumer].push_back(EdgeData<S>{e.edge, std::move(payload)});
    }
  }

 private:
  CheckpointDoc to_doc_locked() const {
    CheckpointDoc doc;
    doc.problem = problem_;
    doc.params = params_;
    doc.dim = dim_;
    doc.scalar_bytes = static_cast<int>(sizeof(S));
    doc.executed.assign(executed_.begin(), executed_.end());
    // Deterministic file contents: hash-set order varies run to run.
    std::sort(doc.executed.begin(), doc.executed.end());
    for (const auto& [consumer, edges] : edges_) {
      for (const auto& e : edges) {
        CheckpointDoc::Edge out;
        out.consumer = consumer;
        out.edge = e.edge;
        out.payload_bytes.resize(e.payload.size() * sizeof(S));
        if (!e.payload.empty())
          std::memcpy(out.payload_bytes.data(), e.payload.data(),
                      out.payload_bytes.size());
        doc.edges.push_back(std::move(out));
      }
    }
    std::sort(doc.edges.begin(), doc.edges.end(),
              [](const CheckpointDoc::Edge& a, const CheckpointDoc::Edge& b) {
                if (a.consumer != b.consumer) return a.consumer < b.consumer;
                return a.edge < b.edge;
              });
    for (const auto& [rank, table] : tables_) {
      const TableSnapshot snap = table->snapshot();
      doc.ranks.push_back(CheckpointDoc::RankState{
          rank, snap.pending_tiles, snap.ready_tiles, snap.buffered_edges});
    }
    return doc;
  }

  mutable std::mutex mu_;
  mutable std::mutex flush_mu_;  ///< see flush(); always taken before mu_
  std::string problem_, params_;
  int dim_ = 0;
  std::string json_path_;
  long long every_ = 0;
  long long since_flush_ = 0;
  std::unordered_set<IntVec, IntVecHash> executed_;
  std::unordered_map<IntVec, std::vector<EdgeData<S>>, IntVecHash> edges_;
  std::unordered_map<int, const ShardedTileTable<S>*> tables_;
  std::atomic<bool> replay_{false};  ///< see replay_possible()
};

}  // namespace dpgen::runtime
