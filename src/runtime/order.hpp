#pragma once
// Tile execution priority (paper section V.B, Figures 4 and 5).
//
// Among the tiles whose dependencies are all satisfied, the runtime picks
// the next tile to execute with a priority function.  The paper's choice
// (Fig. 5) is a column-major-flavoured order with the load-balanced
// dimensions most significant: it keeps the number of buffered edges near
// n+1 on an n x n tile grid and pushes tiles that feed neighbouring nodes
// first.  The level-set order (Fig. 4b) maximises available parallelism at
// the cost of ~d times the edge memory; it is provided for the FIG4
// reproduction and as a user-selectable policy.

#include <vector>

#include "support/vec.hpp"

namespace dpgen::runtime {

enum class PriorityPolicy {
  kColumnMajor,  // paper Fig. 4(a)/Fig. 5: the default
  kLevelSet,     // paper Fig. 4(b): wavefront order
};

/// Strict weak ordering over tile indices: earlier(a, b) is true when tile
/// a should execute before tile b.
class TileOrder {
 public:
  TileOrder() = default;

  /// `dim_priority` lists tile dimensions most-significant first (the
  /// load-balanced dimensions, then the rest in loop order).  `signs` gives
  /// the per-dimension dependency sign (+1, 0 or -1): execution proceeds
  /// from high indices to low in +1 dimensions and low to high in -1
  /// dimensions.
  TileOrder(std::vector<int> dim_priority, std::vector<int> signs,
            PriorityPolicy policy);

  PriorityPolicy policy() const { return policy_; }

  bool earlier(const IntVec& a, const IntVec& b) const;

  /// Comparator adapter for ordered containers (acts as operator<).
  struct Less {
    const TileOrder* order;
    bool operator()(const IntVec& a, const IntVec& b) const {
      return order->earlier(a, b);
    }
  };
  Less less() const { return Less{this}; }

 private:
  /// Execution progress of tile coordinate v in dimension k: larger means
  /// further along the execution direction (execution runs from high to
  /// low indices in +1 dimensions).  sign-0 dimensions have no inherent
  /// direction; treating them like +1 keeps the ordering total.
  Int progress(const IntVec& t, std::size_t k) const {
    return signs_[k] >= 0 ? -t[k] : t[k];
  }

  std::vector<int> dim_priority_;
  std::vector<int> signs_;
  PriorityPolicy policy_ = PriorityPolicy::kColumnMajor;
};

}  // namespace dpgen::runtime
