#include "codegen/emit.hpp"

#include "support/error.hpp"
#include "support/str.hpp"

namespace dpgen::codegen {

void Writer::line(const std::string& text) {
  for (int i = 0; i < indent_; ++i) out_ += "  ";
  out_ += text;
  out_ += '\n';
}

void Writer::blank() { out_ += '\n'; }

void Writer::raw_block(const std::string& text) {
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      line(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) line(cur);
}

std::string expr_cpp(const poly::LinExpr& e,
                     const std::vector<std::string>& names) {
  DPGEN_ASSERT(e.coeffs.size() == names.size());
  std::string out;
  for (int i = 0; i < e.nvars(); ++i) {
    Int a = e.coef(i);
    if (a == 0) continue;
    const std::string& name = names[static_cast<std::size_t>(i)];
    if (out.empty()) {
      if (a == 1)
        out = name;
      else if (a == -1)
        out = "-" + name;
      else
        out = std::to_string(a) + "LL*" + name;
    } else {
      Int m = a > 0 ? a : neg_ck(a);
      out += a > 0 ? " + " : " - ";
      if (m != 1) out += std::to_string(m) + "LL*";
      out += name;
    }
  }
  if (e.c != 0 || out.empty()) {
    if (out.empty()) {
      out = std::to_string(e.c) + "LL";
    } else {
      out += e.c > 0 ? " + " : " - ";
      out += std::to_string(e.c > 0 ? e.c : neg_ck(e.c)) + "LL";
    }
  }
  return out;
}

namespace {

/// True when `div` divides every coefficient and the constant of `e` —
/// the rounding in ceil/floor division is then vacuous.
bool exactly_divisible(const poly::LinExpr& e, Int div) {
  for (Int a : e.coeffs)
    if (a % div != 0) return false;
  return e.c % div == 0;
}

poly::LinExpr divided(poly::LinExpr e, Int div) {
  for (auto& a : e.coeffs) a /= div;
  e.c /= div;
  return e;
}

}  // namespace

std::string bound_cpp(const poly::Bound& b,
                      const std::vector<std::string>& names) {
  if (b.coef > 0) {
    // coef*v + rest >= 0  ->  v >= ceil(-rest / coef).  Unit coefficients
    // and exact divisors fold to the plain expression: no dp_ceildiv call
    // (and nothing opaque to the vectorizer) in the emitted bound.
    if (b.coef == 1) return "(" + expr_cpp(-b.rest, names) + ")";
    if (exactly_divisible(b.rest, b.coef))
      return "(" + expr_cpp(divided(-b.rest, b.coef), names) + ")";
    return cat("dp_ceildiv(", expr_cpp(-b.rest, names), ", ", b.coef, "LL)");
  }
  // coef*v + rest >= 0 with coef < 0  ->  v <= floor(rest / -coef)
  Int div = neg_ck(b.coef);
  if (div == 1) return "(" + expr_cpp(b.rest, names) + ")";
  if (exactly_divisible(b.rest, div))
    return "(" + expr_cpp(divided(b.rest, div), names) + ")";
  return cat("dp_floordiv(", expr_cpp(b.rest, names), ", ", div, "LL)");
}

namespace {

std::string fold_minmax(const std::vector<poly::Bound>& bounds,
                        const std::vector<std::string>& names,
                        const char* fn) {
  DPGEN_ASSERT(!bounds.empty());
  std::string out = bound_cpp(bounds[0], names);
  for (std::size_t i = 1; i < bounds.size(); ++i)
    out = cat(fn, "(", out, ", ", bound_cpp(bounds[i], names), ")");
  return out;
}

}  // namespace

std::string level_lo_cpp(const poly::LoopNest& nest, int level,
                         const std::vector<std::string>& names) {
  return fold_minmax(nest.lowers(level), names, "dp_max");
}

std::string level_hi_cpp(const poly::LoopNest& nest, int level,
                         const std::vector<std::string>& names) {
  return fold_minmax(nest.uppers(level), names, "dp_min");
}

namespace {

void emit_scan_level(Writer& w, const poly::LoopNest& nest, int level,
                     const std::vector<std::string>& names,
                     const std::function<void(Writer&)>& body) {
  if (level == nest.levels()) {
    body(w);
    return;
  }
  const std::string& v = names[static_cast<std::size_t>(nest.var_at(level))];
  std::string lo = level_lo_cpp(nest, level, names);
  std::string hi = level_hi_cpp(nest, level, names);
  w.line(cat("const long long dp_lo_", v, " = ", lo, ";"));
  w.line(cat("const long long dp_hi_", v, " = ", hi, ";"));
  std::string header =
      nest.dir(level) >= 0
          ? cat("for (long long ", v, " = dp_lo_", v, "; ", v, " <= dp_hi_",
                v, "; ++", v, ")")
          : cat("for (long long ", v, " = dp_hi_", v, "; ", v, " >= dp_lo_",
                v, "; --", v, ")");
  Block loop(w, header);
  emit_scan_level(w, nest, level + 1, names, body);
}

}  // namespace

void emit_scan(Writer& w, const poly::LoopNest& nest,
               const std::vector<std::string>& names,
               const std::function<void(Writer&)>& body) {
  emit_scan_level(w, nest, 0, names, body);
}

void emit_count(Writer& w, const poly::LoopNest& nest,
                const std::vector<std::string>& names,
                const std::string& accum) {
  DPGEN_CHECK(nest.levels() >= 1, "emit_count needs at least one level");
  const int last = nest.levels() - 1;

  std::function<void(Writer&, int)> rec = [&](Writer& ww, int level) {
    const std::string& v =
        names[static_cast<std::size_t>(nest.var_at(level))];
    std::string lo = level_lo_cpp(nest, level, names);
    std::string hi = level_hi_cpp(nest, level, names);
    if (level == last) {
      ww.line(cat("{ const long long dp_l = ", lo, ", dp_h = ", hi,
                  "; if (dp_h >= dp_l) ", accum, " += dp_h - dp_l + 1; }"));
      return;
    }
    ww.line(cat("const long long dp_lo_", v, " = ", lo, ";"));
    ww.line(cat("const long long dp_hi_", v, " = ", hi, ";"));
    Block loop(ww, cat("for (long long ", v, " = dp_lo_", v, "; ", v,
                       " <= dp_hi_", v, "; ++", v, ")"));
    rec(ww, level + 1);
  };
  rec(w, 0);
}

void emit_scan_coalesced(
    Writer& w, const poly::LoopNest& nest,
    const std::vector<std::string>& names,
    const std::function<void(Writer&, const std::string&)>& body) {
  DPGEN_CHECK(nest.levels() >= 1,
              "emit_scan_coalesced needs at least one level");
  const int last = nest.levels() - 1;

  std::function<void(Writer&, int)> rec = [&](Writer& ww, int level) {
    const std::string& v =
        names[static_cast<std::size_t>(nest.var_at(level))];
    ww.line(cat("const long long dp_lo_", v, " = ",
                level_lo_cpp(nest, level, names), ";"));
    ww.line(cat("const long long dp_hi_", v, " = ",
                level_hi_cpp(nest, level, names), ";"));
    if (level == last) {
      body(ww, v);
      return;
    }
    Block loop(ww, cat("for (long long ", v, " = dp_lo_", v, "; ", v,
                       " <= dp_hi_", v, "; ++", v, ")"));
    rec(ww, level + 1);
  };
  rec(w, 0);
}

std::string system_test_cpp(const poly::System& sys,
                            const std::vector<std::string>& names) {
  if (sys.empty()) return "true";
  std::vector<std::string> parts;
  for (const auto& c : sys.constraints()) {
    std::string e = expr_cpp(c.e, names);
    parts.push_back(cat("(", e, c.rel == poly::Rel::Ge ? ") >= 0" : ") == 0"));
  }
  return join(parts, " && ");
}

void emit_obs_span(Writer& w, const std::string& var,
                   const std::string& phase, const std::string& tile_expr) {
  std::string decl = cat("dpgen::obs::ScopedSpan ", var,
                         "(dpgen::obs::Phase::", phase);
  if (!tile_expr.empty()) decl += cat(", ", tile_expr);
  w.line(decl + ");");
}

}  // namespace dpgen::codegen
