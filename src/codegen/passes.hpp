#pragma once
// The codegen optimization pass pipeline: transforms sitting between
// tiling::TilingModel and the emitted center loop of a generated program.
//
// The generator's default emission reproduces the paper's Fig. 3 loop nest
// verbatim: one body per cell computing the original coordinates, the
// mapping function `loc`, the per-dependency `loc_rj` offsets and the
// validity flags, then the user's center code.  That shape is correct but
// hostile to vectorization: the validity flags guard loads (`if
// (is_valid_rj) ... V[loc_rj] ...`), and a compiler that cannot prove a
// conditional load safe will not if-convert it, so the loop stays scalar.
//
// Three ordered passes, selectable via GenOptions::passes, rewrite the
// innermost loop:
//
//  1. "canonicalize" — lifts the center loop into a small IR (CenterLoopIR:
//     the poly::LoopNest levels plus every per-cell definition and validity
//     check as an affine form over the extended variables), hoists the
//     loop-invariant row base of `loc` out of the innermost loop
//     (strength-reducing the per-cell address computation to `dp_row + i`),
//     and splits the innermost range into head / interior / tail segments
//     at the thresholds of the validity checks that vary with the
//     innermost variable.  Inside the interior every such check is the
//     constant `true`, so the guarded loads become unconditional and the
//     loop body is straight-line code; when every dependency moves in some
//     non-innermost dimension the interior also carries `#pragma GCC
//     ivdep` (see ivdep_legal() for the proof obligation).
//  2. "unroll[:U]" — unrolls the innermost loop by U (default 4).  On a
//     canonicalized (vector-eligible) interior loop this is `#pragma GCC
//     unroll U`, so unrolling composes with vectorization instead of
//     defeating it; on a non-canonicalized loop (per-cell guards, scalar
//     at baseline -O3) it is source-level replication with a scalar
//     remainder loop continuing the same counter, preserving the exact
//     cell visit order.
//  3. "layout" — pads the innermost buffer extent to a multiple of
//     kLayoutAlign cells so every buffer row starts aligned; the whole
//     tile-buffer geometry (strides, dep offsets, unpack shifts) is
//     re-derived through LayoutPlan.  The pack/unpack runs stay contiguous
//     (the innermost dimension keeps stride 1), so the memcpy-coalescing
//     win and the wire format are unchanged.
//
// Passes never change results: every segment visits the same cells in the
// same order with the same values, and the differential suites
// (tests/test_codegen_passes.cpp, tests/test_codegen_fuzz.cpp) assert
// byte-identical RESULT/MAX lines against the pass-free program and the
// interpreter for every subset.  Generated programs additionally accept
// `--passes=none|full` at run time to fall back to the plain loop (the
// layout pass is baked into the geometry and cannot be toggled).

#include <string>
#include <vector>

#include "tiling/model.hpp"

namespace dpgen::codegen {

class Writer;

/// Innermost-extent padding granularity of the layout pass, in cells
/// (8 doubles = one 64-byte line).
inline constexpr Int kLayoutAlign = 8;

/// The ordered pass list.  Parsed from "none", "full"/"all" or a
/// comma-separated subset ("canonicalize,unroll:8,layout").
struct PassPipeline {
  bool canonicalize = false;
  bool unroll = false;
  bool layout = false;
  int unroll_factor = 4;

  /// True when any pass is enabled.
  bool any() const { return canonicalize || unroll || layout; }
  /// True when a pass rewriting the loop body (not just the buffer
  /// geometry) is enabled — these are the passes the generated program's
  /// --passes= flag can disable at run time.
  bool loop_passes() const { return canonicalize || unroll; }

  /// Parses a pass list; throws dpgen::Error on unknown pass names or
  /// out-of-range unroll factors (1..16).
  static PassPipeline parse(const std::string& text);

  /// Names of the enabled passes in pipeline order, e.g.
  /// {"canonicalize", "unroll:4", "layout"}.
  std::vector<std::string> names() const;

  /// The canonical textual form: names() joined with ",", or "none".
  std::string to_string() const;
};

/// The tile-buffer geometry the generated program is emitted against:
/// either the model's own (identity) or the layout pass's padded variant.
/// Everything the generator bakes into constants — strides, buffer size,
/// per-dependency loc offsets, per-edge unpack shifts, the ghost-base
/// constant of the mapping function — comes from here so the two variants
/// cannot drift apart.
struct LayoutPlan {
  IntVec extents;
  IntVec strides;
  IntVec ghost_lo;
  Int buffer_size = 0;
  /// Constant term of `loc`: sum_k strides[k] * ghost_lo[k].
  Int loc_const = 0;
  /// Constant offset from `loc` to `loc_rj`, per dependency.
  std::vector<Int> dep_offsets;
  /// Constant unpack shift per edge (producer local -> consumer ghost).
  std::vector<Int> unpack_shifts;
  /// True when padding actually changed the geometry.
  bool padded = false;

  /// Derives the plan from the model; `pad` pads the innermost extent up
  /// to a multiple of kLayoutAlign (a no-op for 1-dimensional problems,
  /// where there is no outer stride to align).
  static LayoutPlan make(const tiling::TilingModel& model, bool pad);
};

/// One validity check of the center loop, lifted to the extended
/// variables (x_k substituted by i_k + w_k * t_k).
struct CenterCheck {
  std::string rendered;  ///< C test over the original names, e.g. "(x1) >= 0"
  poly::LinExpr ext;     ///< the same affine form over the extended vars
  poly::Rel rel = poly::Rel::Ge;
  Int inner_coef = 0;  ///< coefficient of the innermost local variable
};

/// The center loop lifted from poly::LoopNest into pass-transformable
/// form: the nest itself plus the per-cell definitions and checks as
/// affine data rather than strings.
struct CenterLoopIR {
  const poly::LoopNest* nest = nullptr;
  std::vector<CenterCheck> checks;          ///< indexed by dp_chk number
  std::vector<std::vector<int>> dep_checks; ///< check indices per dependency
  bool ivdep_legal = false;

  /// Lifts the model's local nest: dedups the validity checks across
  /// dependencies exactly like the plain emission (shared dp_chk
  /// indices), lifts each to the extended table, and decides ivdep
  /// legality.
  static CenterLoopIR lift(const tiling::TilingModel& model);
};

/// True when `#pragma GCC ivdep` is sound for the innermost loop: every
/// dependency vector has a nonzero component in some non-innermost
/// dimension.  Then for any dependency the buffer distance |loc_rj - loc|
/// is at least the innermost tile width (the read lands outside the row
/// of cells the innermost loop writes), so the loop carries no memory
/// dependence.  Proof sketch: with j the outermost nonzero component,
/// strides[j] >= sum_{k>j} |r_k| * strides[k] + w_inner because every
/// extent covers its dimension's ghost depth, hence |sum_k strides[k] *
/// r_k| >= w_inner.  Assumes the center code writes only V[loc] (the DP
/// contract).
bool ivdep_legal(const tiling::TilingModel& model);

/// Renders the per-cell mapping function `loc` against `plan`'s strides
/// (the stride-weighted local variables plus the ghost-base constant).
std::string loc_expr_cpp(const tiling::TilingModel& model,
                         const LayoutPlan& plan,
                         const std::vector<std::string>& ext_names);

/// Emits the plain (pass-free) center loop nest: the generator's
/// historical Fig. 3 emission, parametrised by the layout plan.
void emit_center_plain(Writer& w, const tiling::TilingModel& model,
                       const LayoutPlan& plan,
                       const std::vector<std::string>& ext_names);

/// Emits the optimized center loop nest for the enabled loop passes
/// (canonicalize and/or unroll).  The layout pass participates through
/// `plan` only.  The interior for-line carries the "dpgen:vec-inner"
/// marker consumed by the vectorization smoke in scripts/check.sh.
void emit_center_optimized(Writer& w, const tiling::TilingModel& model,
                           const LayoutPlan& plan,
                           const PassPipeline& passes,
                           const std::vector<std::string>& ext_names);

}  // namespace dpgen::codegen
