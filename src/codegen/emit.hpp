#pragma once
// Low-level C++ emission helpers: affine expressions, loop bounds (the
// ub_k/lb_k functions of the paper's Figure 3) and whole scan/counting loop
// nests, rendered against a chosen naming of the extended variables.

#include <functional>
#include <string>
#include <vector>

#include "poly/loopnest.hpp"
#include "poly/system.hpp"

namespace dpgen::codegen {

/// Accumulates indented source lines.
class Writer {
 public:
  void line(const std::string& text);
  void blank();
  /// Emits raw multi-line text at the current indent.
  void raw_block(const std::string& text);
  void indent() { indent_ += 1; }
  void dedent() { indent_ -= 1; }
  std::string str() const { return out_; }

 private:
  int indent_ = 0;
  std::string out_;
};

/// RAII indentation + braces: emits "header {" ... "}".
class Block {
 public:
  Block(Writer& w, const std::string& header) : w_(w) {
    w_.line(header + " {");
    w_.indent();
  }
  ~Block() {
    w_.dedent();
    w_.line("}");
  }

 private:
  Writer& w_;
};

/// Renders an affine expression as C code using `names[i]` for variable i.
/// Emits "0LL" for the zero expression; integer literals carry the LL
/// suffix so arithmetic stays 64-bit.
std::string expr_cpp(const poly::LinExpr& e,
                     const std::vector<std::string>& names);

/// Renders one loop bound: lower bounds become dp_ceildiv(-(rest), coef),
/// upper bounds dp_floordiv(rest, -coef); exact divisors are folded.
std::string bound_cpp(const poly::Bound& b,
                      const std::vector<std::string>& names);

/// Renders the max of all lower bounds (or min of all upper bounds) at one
/// nest level, chaining dp_max/dp_min.
std::string level_lo_cpp(const poly::LoopNest& nest, int level,
                         const std::vector<std::string>& names);
std::string level_hi_cpp(const poly::LoopNest& nest, int level,
                         const std::vector<std::string>& names);

/// Emits the nested for-loops of `nest` (paper Fig. 3 structure) and calls
/// `body(w)` at the innermost level.  Loop variables are declared as
/// `long long <names[var]>`; scan direction honours nest.dir().
void emit_scan(Writer& w, const poly::LoopNest& nest,
               const std::vector<std::string>& names,
               const std::function<void(Writer&)>& body);

/// Emits a counting loop nest: outer levels scan, the innermost level is
/// closed in constant time; the count accumulates into `accum` (an lvalue
/// expression in scope).
void emit_count(Writer& w, const poly::LoopNest& nest,
                const std::vector<std::string>& names,
                const std::string& accum);

/// Emits the outer loops of `nest` but leaves the innermost level as a
/// [dp_lo_v, dp_hi_v] range: `body(w, v)` runs with those two bounds
/// declared and `v` naming the innermost variable (not declared — the body
/// handles the whole range at once, e.g. as one memcpy).  This is the
/// emitted form of the run-coalesced pack/unpack: when the innermost
/// variable has buffer stride 1, each range is one contiguous run.
void emit_scan_coalesced(
    Writer& w, const poly::LoopNest& nest,
    const std::vector<std::string>& names,
    const std::function<void(Writer&, const std::string&)>& body);

/// Renders a conjunction testing every constraint of `sys` (1 when empty).
std::string system_test_cpp(const poly::System& sys,
                            const std::vector<std::string>& names);

/// Emits a `dpgen::obs::ScopedSpan <var>(...)` declaration so generated
/// programs record the same trace phases the library runtime does (the
/// span compiles to nothing when the program is built with
/// -DDPGEN_TRACE=0).  `phase` is the Phase enumerator name ("kLoadBalance");
/// `tile_expr` is an optional `const dpgen::IntVec*` expression.
void emit_obs_span(Writer& w, const std::string& var,
                   const std::string& phase,
                   const std::string& tile_expr = "");

}  // namespace dpgen::codegen
