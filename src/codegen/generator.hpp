#pragma once
// The program generator (paper sections IV.C and V): assembles a complete,
// standalone hybrid OpenMP + message-passing C++ program for a problem.
//
// The emitted program contains, all specialised to the problem:
//   * the user's global / init / center-loop code, inserted verbatim,
//   * the tile-existence test (the FM-projected tile space as a C
//     conjunction),
//   * the Fig. 3 tile-calculation loop nest with mapping functions (loc,
//     loc_rj) and validity flags (is_valid_rj) in scope for the center code,
//   * pack and unpack functions for every tile edge,
//   * the initial-tile face scans,
//   * the load-balancing code (per-cell work counting loop nests — the role
//     of the paper's Ehrhart polynomials — plus the prefix-cut owner table),
//   * a main() that parses parameters/options, runs the ranks and prints
//     the probed results and run statistics.
//
// The program #includes the pre-written runtime library headers
// (runtime/driver.hpp, minimpi/world.hpp) exactly as the paper's generated
// code links its pre-written communication/memory-management libraries;
// compile with -I<repo>/src and link dpgen_runtime, dpgen_minimpi and
// dpgen_support.  With -fopenmp -DDPGEN_RUNTIME_USE_OPENMP the worker loop
// runs inside an OpenMP parallel region (the hybrid configuration).

#include <string>

#include "codegen/passes.hpp"
#include "tiling/model.hpp"

namespace dpgen::codegen {

struct GenOptions {
  /// Locations whose final values the program prints (default: the origin,
  /// the usual f(0) objective).
  std::vector<IntVec> probes;
  /// Also track and print the maximum value over all locations (the
  /// objective shape of local-alignment style problems): the program
  /// prints a "MAX (coords) = value" line.
  bool track_max = false;
  /// Optimization passes applied to the emitted center loop and tile
  /// buffer layout (docs/codegen.md).  Default: none — the paper's plain
  /// Fig. 3 emission.  Programs generated with loop passes also accept
  /// --passes=none|full at run time to fall back to the plain nest.
  PassPipeline passes;
};

/// Returns the complete C++ source of the generated program.
std::string generate_program(const tiling::TilingModel& model,
                             const GenOptions& options = {});

/// Writes the generated program to `path`.
void write_program(const tiling::TilingModel& model, const std::string& path,
                   const GenOptions& options = {});

}  // namespace dpgen::codegen
