#include "codegen/passes.hpp"

#include <map>

#include "codegen/emit.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace dpgen::codegen {

// ---- PassPipeline ----------------------------------------------------------

PassPipeline PassPipeline::parse(const std::string& text) {
  PassPipeline p;
  if (text.empty() || text == "none") return p;
  if (text == "full" || text == "all") {
    p.canonicalize = p.unroll = p.layout = true;
    return p;
  }
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    std::string tok = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (tok == "canonicalize") {
      p.canonicalize = true;
    } else if (tok == "layout") {
      p.layout = true;
    } else if (tok == "unroll" || tok.rfind("unroll:", 0) == 0) {
      p.unroll = true;
      if (tok.size() > 7) {
        std::size_t used = 0;
        int factor = 0;
        try {
          factor = std::stoi(tok.substr(7), &used);
        } catch (const std::exception&) {
          used = 0;
        }
        DPGEN_CHECK(used == tok.size() - 7 && factor >= 1 && factor <= 16,
                    cat("bad unroll factor in pass '", tok,
                        "' (expected unroll:N with N in 1..16)"));
        p.unroll_factor = factor;
      }
    } else {
      DPGEN_CHECK(false, cat("unknown codegen pass '", tok,
                             "' (expected canonicalize, unroll[:N], layout, "
                             "none or full)"));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return p;
}

std::vector<std::string> PassPipeline::names() const {
  std::vector<std::string> out;
  if (canonicalize) out.push_back("canonicalize");
  if (unroll) out.push_back(cat("unroll:", unroll_factor));
  if (layout) out.push_back("layout");
  return out;
}

std::string PassPipeline::to_string() const {
  auto n = names();
  return n.empty() ? "none" : join(n, ",");
}

// ---- LayoutPlan ------------------------------------------------------------

LayoutPlan LayoutPlan::make(const tiling::TilingModel& model, bool pad) {
  const spec::ProblemSpec& spec = model.problem();
  const int d = model.dim();
  LayoutPlan plan;
  plan.extents = model.buffer_extents();
  plan.ghost_lo = model.ghost_lo();
  if (pad && d >= 2) {
    auto& inner = plan.extents[static_cast<std::size_t>(d - 1)];
    Int rounded =
        mul_ck((inner + kLayoutAlign - 1) / kLayoutAlign, kLayoutAlign);
    plan.padded = rounded != inner;
    inner = rounded;
  }
  plan.strides.assign(static_cast<std::size_t>(d), 1);
  for (int k = d - 2; k >= 0; --k) {
    auto ks = static_cast<std::size_t>(k);
    plan.strides[ks] = mul_ck(plan.strides[ks + 1], plan.extents[ks + 1]);
  }
  plan.buffer_size = mul_ck(plan.strides[0], plan.extents[0]);
  for (const auto& dp : spec.deps())
    plan.dep_offsets.push_back(vec_dot(plan.strides, dp.vec));
  for (const auto& e : model.edges()) {
    Int shift = 0;
    for (int k = 0; k < d; ++k) {
      auto ks = static_cast<std::size_t>(k);
      shift = add_ck(shift, mul_ck(plan.strides[ks],
                                   mul_ck(spec.widths()[ks], e.offset[ks])));
    }
    plan.unpack_shifts.push_back(shift);
  }
  plan.loc_const = 0;
  for (int k = 0; k < d; ++k) {
    auto ks = static_cast<std::size_t>(k);
    plan.loc_const =
        add_ck(plan.loc_const, mul_ck(plan.strides[ks], plan.ghost_lo[ks]));
  }
  return plan;
}

// ---- ivdep legality --------------------------------------------------------

bool ivdep_legal(const tiling::TilingModel& model) {
  const int d = model.dim();
  for (const auto& dp : model.problem().deps()) {
    bool has_outer = false;
    for (int k = 0; k + 1 < d; ++k)
      if (dp.vec[static_cast<std::size_t>(k)] != 0) has_outer = true;
    if (!has_outer) return false;
  }
  return true;
}

// ---- CenterLoopIR ----------------------------------------------------------

CenterLoopIR CenterLoopIR::lift(const tiling::TilingModel& model) {
  const spec::ProblemSpec& spec = model.problem();
  const int d = model.dim();
  const int p = model.nparams();
  const int n_ext = model.ext_vars().size();
  const std::vector<std::string>& orig_names = spec.space().vars().names();

  // Original table is (params, x); lift x_k to the local index i_k and add
  // the w_k * t_k contribution of x_k = i_k + w_k * t_k afterwards.
  std::vector<int> map(orig_names.size(), 0);
  for (int i = 0; i < p; ++i) map[static_cast<std::size_t>(i)] = i;
  for (int k = 0; k < d; ++k)
    map[static_cast<std::size_t>(spec.space_var(k))] = model.ext_local(k);

  CenterLoopIR ir;
  ir.nest = &model.local_nest();
  ir.dep_checks.resize(spec.deps().size());
  // Shared-check numbering must match the emitted dp_chk indices: first
  // encounter over (dependency, check) order assigns the next index.
  std::map<std::string, int> shared;
  for (std::size_t j = 0; j < spec.deps().size(); ++j) {
    for (const auto& c : model.validity_checks(static_cast<int>(j))) {
      std::string rendered =
          cat("(", expr_cpp(c.expr, orig_names),
              c.rel == poly::Rel::Ge ? ") >= 0" : ") == 0");
      auto [it, inserted] =
          shared.emplace(rendered, static_cast<int>(shared.size()));
      if (inserted) {
        CenterCheck cc;
        cc.rendered = rendered;
        cc.ext = c.expr.remapped(map, n_ext);
        for (int k = 0; k < d; ++k) {
          Int a = c.expr.coef(spec.space_var(k));
          if (a == 0) continue;
          int tk = model.ext_tile(k);
          cc.ext.set_coef(
              tk, add_ck(cc.ext.coef(tk),
                         mul_ck(a, spec.widths()[static_cast<std::size_t>(k)])));
        }
        cc.rel = c.rel;
        cc.inner_coef = cc.ext.coef(model.ext_local(d - 1));
        ir.checks.push_back(std::move(cc));
      }
      ir.dep_checks[j].push_back(it->second);
    }
  }
  ir.ivdep_legal = codegen::ivdep_legal(model);
  return ir;
}

// ---- emission --------------------------------------------------------------

std::string loc_expr_cpp(const tiling::TilingModel& model,
                         const LayoutPlan& plan,
                         const std::vector<std::string>& ext_names) {
  std::string out;
  for (int k = 0; k < model.dim(); ++k) {
    auto ks = static_cast<std::size_t>(k);
    Int stride = plan.strides[ks];
    if (!out.empty()) out += " + ";
    if (stride == 1)
      out += ext_names[static_cast<std::size_t>(model.ext_local(k))];
    else
      out += cat(stride, "LL*",
                 ext_names[static_cast<std::size_t>(model.ext_local(k))]);
  }
  if (plan.loc_const != 0) out += cat(" + ", plan.loc_const, "LL");
  return out;
}

namespace {

/// Emits the per-cell body of the center loop (paper IV.L): original
/// coordinates, mapping functions, validity flags, then the user's center
/// code.  `force_true` (optional, one flag per IR check) replaces the
/// marked checks with the literal `true` — the canonicalized interior,
/// where the split thresholds already guarantee them.  `loc_override`
/// (optional) replaces the full mapping expression — the hoisted
/// `dp_row + i` form.
void emit_cell_body(Writer& ww, const tiling::TilingModel& m,
                    const LayoutPlan& plan, const CenterLoopIR& ir,
                    const std::vector<std::string>& ext_names,
                    const std::vector<bool>* force_true,
                    const std::string* loc_override) {
  const spec::ProblemSpec& spec = m.problem();
  const int d = m.dim();
  // Original loop variables: x_k = i_k + w_k * t_k.
  for (int k = 0; k < d; ++k) {
    auto ks = static_cast<std::size_t>(k);
    ww.line(cat("const long long ", spec.var_names()[ks], " = ",
                ext_names[static_cast<std::size_t>(m.ext_local(k))], " + ",
                spec.widths()[ks], "LL*",
                ext_names[static_cast<std::size_t>(m.ext_tile(k))], "; (void)",
                spec.var_names()[ks], ";"));
  }
  std::string loc =
      loc_override ? *loc_override : loc_expr_cpp(m, plan, ext_names);
  ww.line(cat("const long long loc = ", loc, "; (void)loc;"));
  for (std::size_t j = 0; j < spec.deps().size(); ++j) {
    ww.line(cat("const long long loc_", spec.deps()[j].name, " = loc + ",
                plan.dep_offsets[j], "LL; (void)loc_", spec.deps()[j].name,
                ";"));
  }
  // Validity flags (paper IV.G), shared across dependencies.
  for (std::size_t i = 0; i < ir.checks.size(); ++i) {
    bool forced = force_true && (*force_true)[i];
    ww.line(cat("const bool dp_chk_", i, " = ",
                forced ? "true" : ir.checks[i].rendered, ";"));
  }
  for (std::size_t j = 0; j < spec.deps().size(); ++j) {
    std::string cond;
    if (ir.dep_checks[j].empty()) {
      cond = "true";
    } else {
      std::vector<std::string> parts;
      for (int idx : ir.dep_checks[j]) parts.push_back(cat("dp_chk_", idx));
      cond = join(parts, " && ");
    }
    ww.line(cat("const bool is_valid_", spec.deps()[j].name, " = ", cond,
                "; (void)is_valid_", spec.deps()[j].name, ";"));
  }
  ww.line("// ---- user center-loop code ----");
  Block user(ww, "");
  ww.raw_block(spec.code().center);
}

/// Emits one innermost loop over [`lo`, `hi`] (both inclusive bound
/// expressions) in the given direction, optionally unrolled, optionally
/// preceded by `#pragma GCC ivdep`, optionally carrying the vectorization
/// marker on the for-line.
///
/// Two unrolling strategies, picked by `pragma_unroll`:
///   * pragma (canonicalized interior loops): `#pragma GCC unroll N` on an
///     untouched loop.  Source-level replication would hand the vectorizer
///     a body it can no longer analyze as a single-iteration loop (SLP
///     across the copies fails on the guarded loads), killing the very
///     vectorization the canonicalize pass arranged; the pragma lets GCC
///     vectorize first and unroll the vector loop.
///   * manual (non-canonicalized loops, which keep per-cell varying guards
///     and stay scalar at baseline -O3): the counter advances by the
///     factor, each copy rebinds the loop variable in its own scope, and a
///     scalar remainder loop picks up from the counter so the visit order
///     is exactly the plain loop's.
void emit_inner_loop(Writer& w, const std::string& v, const std::string& lo,
                     const std::string& hi, bool ascending, int unroll,
                     bool pragma_unroll, bool ivdep, bool marker,
                     const std::function<void(Writer&)>& body) {
  auto open = [&](const std::string& header) {
    if (marker) {
      // Emitted without Block so the marker shares the for-statement's
      // line: the check.sh vectorization smoke greps this line's number
      // and matches it against -fopt-info-vec output.
      w.line(cat(header, " {  // dpgen:vec-inner"));
      w.indent();
    } else {
      w.line(header + " {");
      w.indent();
    }
  };
  auto close = [&]() {
    w.dedent();
    w.line("}");
  };
  if (unroll <= 1 || pragma_unroll) {
    if (ivdep) w.line("#pragma GCC ivdep");
    if (unroll > 1) w.line(cat("#pragma GCC unroll ", unroll));
    open(ascending ? cat("for (long long ", v, " = ", lo, "; ", v, " <= ", hi,
                         "; ++", v, ")")
                   : cat("for (long long ", v, " = ", hi, "; ", v, " >= ", lo,
                         "; --", v, ")"));
    body(w);
    close();
    return;
  }
  const std::string base = cat("dp_base_", v);
  w.line(cat("long long ", base, " = ", ascending ? lo : hi, ";"));
  if (ivdep) w.line("#pragma GCC ivdep");
  open(ascending ? cat("for (; ", base, " + ", unroll - 1, "LL <= ", hi, "; ",
                       base, " += ", unroll, "LL)")
                 : cat("for (; ", base, " - ", unroll - 1, "LL >= ", lo, "; ",
                       base, " -= ", unroll, "LL)"));
  for (int u = 0; u < unroll; ++u) {
    Block copy(w, "");
    w.line(cat("const long long ", v, " = ", base, ascending ? " + " : " - ",
               u, "LL;"));
    body(w);
  }
  close();
  {
    Block rem(w, ascending ? cat("for (long long ", v, " = ", base, "; ", v,
                                 " <= ", hi, "; ++", v, ")")
                           : cat("for (long long ", v, " = ", base, "; ", v,
                                 " >= ", lo, "; --", v, ")"));
    body(w);
  }
}

/// Emits the outer (non-innermost) levels of the nest exactly like
/// emit_scan, then hands the writer to `inner` for the innermost level
/// (with dp_lo_<v>/dp_hi_<v> already declared).
void emit_outer_levels(Writer& w, const poly::LoopNest& nest,
                       const std::vector<std::string>& names, int level,
                       const std::function<void(Writer&)>& inner) {
  const std::string& v = names[static_cast<std::size_t>(nest.var_at(level))];
  w.line(cat("const long long dp_lo_", v, " = ",
             level_lo_cpp(nest, level, names), ";"));
  w.line(cat("const long long dp_hi_", v, " = ",
             level_hi_cpp(nest, level, names), ";"));
  if (level == nest.levels() - 1) {
    inner(w);
    return;
  }
  std::string header =
      nest.dir(level) >= 0
          ? cat("for (long long ", v, " = dp_lo_", v, "; ", v, " <= dp_hi_",
                v, "; ++", v, ")")
          : cat("for (long long ", v, " = dp_hi_", v, "; ", v, " >= dp_lo_",
                v, "; --", v, ")");
  Block loop(w, header);
  emit_outer_levels(w, nest, names, level + 1, inner);
}

}  // namespace

void emit_center_plain(Writer& w, const tiling::TilingModel& model,
                       const LayoutPlan& plan,
                       const std::vector<std::string>& ext_names) {
  CenterLoopIR ir = CenterLoopIR::lift(model);
  emit_scan(w, model.local_nest(), ext_names, [&](Writer& ww) {
    emit_cell_body(ww, model, plan, ir, ext_names, nullptr, nullptr);
  });
}

void emit_center_optimized(Writer& w, const tiling::TilingModel& model,
                           const LayoutPlan& plan, const PassPipeline& passes,
                           const std::vector<std::string>& ext_names) {
  DPGEN_CHECK(passes.loop_passes(),
              "emit_center_optimized requires canonicalize or unroll");
  CenterLoopIR ir = CenterLoopIR::lift(model);
  const poly::LoopNest& nest = model.local_nest();
  const int d = model.dim();
  const int last = nest.levels() - 1;
  const int unroll = passes.unroll ? passes.unroll_factor : 1;

  auto inner = [&](Writer& ww) {
    const std::string& v =
        ext_names[static_cast<std::size_t>(nest.var_at(last))];
    const bool asc = nest.dir(last) >= 0;
    auto plain_body = [&](Writer& wb) {
      emit_cell_body(wb, model, plan, ir, ext_names, nullptr, nullptr);
    };
    if (!passes.canonicalize) {
      // Unroll-only: the whole innermost range, plain body, manual unroll
      // (the per-cell guards keep this loop scalar at baseline -O3, so
      // source-level replication costs nothing and saves loop overhead).
      emit_inner_loop(ww, v, cat("dp_lo_", v), cat("dp_hi_", v), asc, unroll,
                      false, ir.ivdep_legal, true, plain_body);
      return;
    }

    // Hoist the loop-invariant part of the mapping function: the
    // innermost dimension has buffer stride 1, so loc == dp_row + i.
    const std::string row = cat("dp_row_", v);
    {
      std::string expr;
      for (int k = 0; k + 1 < d; ++k) {
        auto ks = static_cast<std::size_t>(k);
        if (!expr.empty()) expr += " + ";
        if (plan.strides[ks] == 1)
          expr += ext_names[static_cast<std::size_t>(model.ext_local(k))];
        else
          expr += cat(plan.strides[ks], "LL*",
                      ext_names[static_cast<std::size_t>(model.ext_local(k))]);
      }
      if (plan.loc_const != 0 || expr.empty())
        expr += cat(expr.empty() ? "" : " + ", plan.loc_const, "LL");
      ww.line(cat("const long long ", row, " = ", expr, ";"));
    }
    const std::string interior_loc = cat(row, " + ", v);
    // Checks that vary with the innermost variable split the range; in
    // the interior segment they are identically true.  Only inequalities
    // split (an equality selects isolated points, not a subrange).
    std::vector<bool> force(ir.checks.size(), false);
    std::vector<std::string> lo_thr, hi_thr;
    for (std::size_t i = 0; i < ir.checks.size(); ++i) {
      const CenterCheck& c = ir.checks[i];
      if (c.rel != poly::Rel::Ge || c.inner_coef == 0) continue;
      force[i] = true;
      poly::Bound b;
      b.rest = c.ext;
      b.rest.set_coef(model.ext_local(d - 1), 0);
      b.coef = c.inner_coef;
      (c.inner_coef > 0 ? lo_thr : hi_thr)
          .push_back(bound_cpp(b, ext_names));
    }
    auto interior_body = [&](Writer& wb) {
      emit_cell_body(wb, model, plan, ir, ext_names, &force, &interior_loc);
    };
    if (lo_thr.empty() && hi_thr.empty()) {
      // Nothing varies with the innermost variable: the whole range is
      // interior.
      emit_inner_loop(ww, v, cat("dp_lo_", v), cat("dp_hi_", v), asc, unroll,
                      true, ir.ivdep_legal, true, interior_body);
      return;
    }
    // Split bounds: interior = [dp_sa, dp_sb], the subrange on which every
    // splittable check holds; head/tail keep the per-cell checks.  The
    // clamps make the three segments an exact partition of [lo, hi] even
    // when the interior is empty.
    std::string sa_chain = cat("dp_lo_", v);
    for (const auto& t : lo_thr) sa_chain = cat("dp_max(", sa_chain, ", ", t, ")");
    std::string sb_chain = cat("dp_hi_", v);
    for (const auto& t : hi_thr) sb_chain = cat("dp_min(", sb_chain, ", ", t, ")");
    ww.line(cat("const long long dp_sa_", v, " = dp_min(", sa_chain,
                ", dp_hi_", v, " + 1LL);"));
    ww.line(cat("const long long dp_sb_", v, " = dp_max(dp_sa_", v,
                " - 1LL, ", sb_chain, ");"));
    auto head = [&]() {
      emit_inner_loop(ww, v, cat("dp_lo_", v), cat("dp_sa_", v, " - 1LL"),
                      asc, 1, false, false, false, plain_body);
    };
    auto interior = [&]() {
      emit_inner_loop(ww, v, cat("dp_sa_", v), cat("dp_sb_", v), asc, unroll,
                      true, ir.ivdep_legal, true, interior_body);
    };
    auto tail = [&]() {
      emit_inner_loop(ww, v, cat("dp_sb_", v, " + 1LL"), cat("dp_hi_", v),
                      asc, 1, false, false, false, plain_body);
    };
    if (asc) {
      head();
      interior();
      tail();
    } else {
      tail();
      interior();
      head();
    }
  };
  emit_outer_levels(w, nest, ext_names, 0, inner);
}

}  // namespace dpgen::codegen
