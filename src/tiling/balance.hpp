#pragma once
// Load balancing across nodes (paper section IV.J, plus the Figure 8
// hyperplane method from section VII.B).
//
// The per-dimension method cuts the load-balance cells (tiles grouped by
// their lb_1..lb_j indices) in lb_1-major order into contiguous runs of
// equal work, using exact per-cell work counts (the role the paper's
// Ehrhart polynomials play).  The hyperplane method orders cells by the
// level sets of the all-ones hyperplane over the balanced dimensions before
// cutting, which shortens the pipeline critical path on wedge-shaped
// spaces.

#include <unordered_map>

#include "tiling/model.hpp"

namespace dpgen::tiling {

enum class BalanceMethod {
  kPerDimension,  // paper IV.J: cut along lb1, refine with lb2, ...
  kHyperplane,    // paper VII.B / Fig. 8: cut along sum(t_lb) level sets
};

/// Assigns every tile to a rank so that per-rank work (location counts) is
/// as even as the cell granularity allows.
class LoadBalancer {
 public:
  /// Requires lb dimensions in the model when nranks > 1.
  LoadBalancer(const TilingModel& model, const IntVec& params, int nranks,
               BalanceMethod method = BalanceMethod::kPerDimension);

  int nranks() const { return nranks_; }
  BalanceMethod method() const { return method_; }

  /// Owning rank of a tile (must be in the tile space).
  int owner(const IntVec& tile) const;

  Int total_work() const { return total_work_; }
  Int owned_work(int rank) const { return work_[static_cast<std::size_t>(rank)]; }
  Int owned_tiles(int rank) const { return tiles_[static_cast<std::size_t>(rank)]; }
  Int num_cells() const { return static_cast<Int>(owner_by_cell_.size()); }

  /// Largest-to-average work ratio: 1.0 is a perfect balance.
  double imbalance() const;

 private:
  const TilingModel& model_;
  int nranks_;
  BalanceMethod method_;
  Int total_work_ = 0;
  std::vector<Int> work_;
  std::vector<Int> tiles_;
  std::unordered_map<IntVec, int, IntVecHash> owner_by_cell_;
  // Dense owner lookup over the lb cells' bounding box (-1 marks holes).
  // owner() is on the per-edge runtime hot path, where the hash-map probe
  // shows up; the box is skipped when too sparse to be worth the memory.
  IntVec flat_lo_;
  IntVec flat_extents_;
  std::vector<int> owner_flat_;
};

}  // namespace dpgen::tiling
