#pragma once
// The tiling model (paper sections IV.E - IV.I, IV.K, IV.L).
//
// From a validated ProblemSpec, TilingModel derives every compile-time
// artifact of the generation process:
//   * the extended system of linear inequalities linking original loop
//     variables x_k to tile indices t_k and local indices i_k through
//     x_k = i_k + w_k * t_k,
//   * the tile space (FM projection onto parameters + tile indices),
//   * tile dependency offsets derived from the template vectors,
//   * ghost-cell geometry, buffer strides and the constant mapping-function
//     offsets (loc, loc_r1, ...),
//   * per-dependency validity checks (is_valid_r1, ...),
//   * pack/unpack iteration spaces for every tile edge,
//   * the face systems used to find the initial (dependency-free) tiles.
//
// The same model drives both the interpreted engine (direct execution) and
// the code generator (emitted C++), so generated programs and engine runs
// share one definition of the schedule.

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "poly/count.hpp"
#include "poly/loopnest.hpp"
#include "spec/problem_spec.hpp"

namespace dpgen::tiling {

/// One runtime validity check for a dependency: the original-space
/// constraint shifted by the template vector.  `expr` is over the original
/// space variables (params, x); the dependency access is valid only when
/// every check's expr evaluates >= 0 (Ge) or == 0 (Eq).
struct ValidityCheck {
  poly::LinExpr expr;
  poly::Rel rel = poly::Rel::Ge;
};

/// One tile edge: data flowing from producer tile q to consumer tile
/// q - offset (the consumer reads across its +offset boundary).
struct Edge {
  IntVec offset;               // the tile-dependency offset (delta)
  std::vector<int> deps;       // template-dependency indices crossing it
  IntVec box_lo, box_hi;       // producer-local slab bounds per dimension
  Int capacity = 0;            // product of slab extents (upper bound)
};

/// Per-run specialisation of cell_count for per-tile hot paths (the live
/// monitor credits a tile's cells at every dispatch).  When the local
/// (cell) nest is separable — every local variable's bounds mention only
/// the parameters and its own dimension's tile index — the cell count of
/// tile t factors into a product of per-dimension extents, each a min/max
/// of affine forms (a * t_k + c) / div with the parameters folded into c
/// at construction.  count() then costs a handful of integer ops.  ok()
/// is false for non-separable models (e.g. triangular local spaces);
/// callers fall back to TilingModel::cell_count().
class CellCountFn {
 public:
  CellCountFn() = default;

  bool ok() const { return ok_; }

  /// Cells of tile `tile` (tile.size() == model dim).  Valid only when
  /// ok(); agrees exactly with TilingModel::cell_count at the params this
  /// evaluator was built for.
  Int count(const IntVec& tile) const;

 private:
  friend class TilingModel;

  /// One tile-dependent bound on the local extent of a dimension,
  /// specialised to the run's parameters.  div == 1 bounds are
  /// pre-normalised (lowers negated) so the bound value is a*t + c with no
  /// division; div > 1 keeps the rounding form
  ///   lower:  ceil((-(a*t + c)) / div)    upper:  floor((a*t + c) / div).
  struct Affine {
    Int a = 0;
    Int c = 0;
    Int div = 1;
    bool lower = false;
  };
  struct Dim {
    // Constant bounds folded at build time (limits when none exist).
    Int lo0 = 0;
    Int hi0 = 0;
    std::vector<Affine> bounds;  // tile-dependent bounds only (a != 0)
  };

  std::vector<Dim> dims_;  // indexed by tile dimension
  bool ok_ = false;
};

class TilingModel {
 public:
  /// Builds the model; validates the spec first.
  explicit TilingModel(spec::ProblemSpec problem);

  const spec::ProblemSpec& problem() const { return spec_; }
  int dim() const { return d_; }
  int nparams() const { return p_; }

  // ---- variable tables ----------------------------------------------------
  /// Extended variables: params, then tile indices, then local indices.
  const poly::Vars& ext_vars() const { return ext_vars_; }
  int ext_param(int i) const { return i; }
  int ext_tile(int k) const { return p_ + k; }
  int ext_local(int k) const { return p_ + d_ + k; }

  const poly::System& extended() const { return extended_; }
  const poly::System& tile_space() const { return tile_space_; }

  // ---- tiles ----------------------------------------------------------------
  /// True when tile t exists for the given parameter values.  This is THE
  /// tile-existence criterion used consistently by dependency counting,
  /// ownership and discovery.
  bool tile_in_space(const IntVec& params, const IntVec& tile) const;

  /// Invokes fn(t) for every tile, scanned in tile-index order.
  void for_each_tile(const IntVec& params,
                     const std::function<void(const IntVec&)>& fn) const;

  /// Total number of tiles (including tiles whose local space is empty).
  Int total_tiles(const IntVec& params) const;

  /// Total number of locations (lattice points of the iteration space).
  Int total_cells(const IntVec& params) const;

  // ---- dependencies --------------------------------------------------------
  /// All distinct nonzero tile-dependency offsets (paper IV.F).
  const std::vector<Edge>& edges() const { return edges_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Offsets delta such that tile t depends on tile t + delta (i.e. both are
  /// in the tile space).  Returns edge indices.
  std::vector<int> deps_of(const IntVec& params, const IntVec& tile) const;

  /// Number of in-space dependencies of `tile` — deps_of(...).size() without
  /// materialising the index list (the runtime hot path only needs the
  /// count, once per tile, and must not allocate).
  int num_deps_of(const IntVec& params, const IntVec& tile) const;

  // ---- geometry (paper IV.H) -------------------------------------------------
  const IntVec& ghost_lo() const { return ghost_lo_; }
  const IntVec& ghost_hi() const { return ghost_hi_; }
  /// Tile buffer extent per dimension: w_k + ghost_lo_k + ghost_hi_k.
  const IntVec& buffer_extents() const { return extents_; }
  const IntVec& strides() const { return strides_; }
  Int buffer_size() const { return buffer_size_; }

  /// Constant term of the mapping function: the buffer index of local
  /// coordinate 0 (sum_k strides_k * ghost_lo_k).  Every loc expression is
  /// this constant plus the stride-weighted local coordinates.
  Int ghost_base() const {
    Int base = 0;
    for (std::size_t k = 0; k < strides_.size(); ++k)
      base = add_ck(base, mul_ck(strides_[k], ghost_lo_[k]));
    return base;
  }

  /// Linear index of local coordinate i (interior: 0 <= i_k < w_k; ghost
  /// coordinates extend to [-ghost_lo_k, w_k - 1 + ghost_hi_k]).
  Int local_index(const IntVec& local) const;

  /// Constant offset added to `loc` to reach dependency j (loc_rj).
  Int dep_loc_offset(int dep) const { return dep_offsets_[static_cast<std::size_t>(dep)]; }

  /// Global coordinate of local cell i in tile t: x_k = i_k + w_k t_k.
  IntVec global_of(const IntVec& tile, const IntVec& local) const;

  // ---- local iteration (paper IV.L) -----------------------------------------
  /// Scans the cells of tile t in loop order; fn receives the local
  /// coordinate (interior only) and the global coordinate.
  void for_each_cell(
      const IntVec& params, const IntVec& tile,
      const std::function<void(const IntVec& local, const IntVec& global)>& fn)
      const;

  /// Template variant of for_each_cell for the execute hot path: no
  /// std::function wrapper (whose capturing closure allocates per call)
  /// and per-thread scratch, so the scan is allocation-free in steady
  /// state.
  template <typename Fn>
  void for_each_cell_fast(const IntVec& params, const IntVec& tile,
                          Fn&& fn) const {
    thread_local IntVec seed;
    thread_local IntVec local;
    thread_local IntVec global;
    ext_seed_into(params, seed);
    for (int k = 0; k < d_; ++k)
      seed[static_cast<std::size_t>(ext_tile(k))] =
          tile[static_cast<std::size_t>(k)];
    local.assign(static_cast<std::size_t>(d_), 0);
    global.assign(static_cast<std::size_t>(d_), 0);
    poly::for_each_point_inplace(local_nest_, seed, [&](const IntVec& pt) {
      for (int k = 0; k < d_; ++k) {
        auto ks = static_cast<std::size_t>(k);
        local[ks] = pt[static_cast<std::size_t>(ext_local(k))];
        global[ks] = local[ks] + spec_.widths()[ks] * tile[ks];
      }
      fn(static_cast<const IntVec&>(local), static_cast<const IntVec&>(global));
    });
  }

  /// Number of cells in tile t (the tile's work).
  Int cell_count(const IntVec& params, const IntVec& tile) const;

  /// Builds the specialised per-tile cell counter for these parameter
  /// values (see CellCountFn).  The result's ok() is false when the local
  /// nest is not separable; callers then fall back to cell_count().
  CellCountFn cell_count_fn(const IntVec& params) const;

  /// Work of all tiles whose load-balanced indices match `lb_values`
  /// (the paper's second Ehrhart polynomial, evaluated exactly).
  Int cell_count_lb(const IntVec& params, const IntVec& lb_values) const;

  /// Tile count with load-balanced indices fixed (used for per-rank
  /// owned-tile totals).
  Int tile_count_lb(const IntVec& params, const IntVec& lb_values) const;

  // ---- validity (paper IV.G) ---------------------------------------------------
  /// Checks for dependency j, expressed over the original space variables.
  const std::vector<ValidityCheck>& validity_checks(int dep) const {
    return validity_[static_cast<std::size_t>(dep)];
  }
  /// True when x + r_j is inside the iteration space; `orig_point` is the
  /// full original-space assignment (params then x).
  bool dep_valid_at(const IntVec& orig_point, int dep) const;

  // ---- packing (paper IV.I) ------------------------------------------------------
  /// Scans the producer-local cells of edge e for producer tile q, in the
  /// canonical (pack == unpack) order.  fn receives the producer-local
  /// coordinate j; the consumer-side ghost coordinate is j + w*delta.
  void for_each_pack_cell(const IntVec& params, const IntVec& producer,
                          int edge,
                          const std::function<void(const IntVec&)>& fn) const;

  /// Constant buffer-index shift from a producer-local pack cell to the
  /// consumer-side ghost cell of edge e: sum_k strides_k * w_k * delta_k
  /// (local_index(j + w*delta) == local_index(j) + shift).
  Int edge_unpack_shift(int edge) const {
    return unpack_shifts_[static_cast<std::size_t>(edge)];
  }

  /// Scans the producer-local cells of edge e as maximal contiguous runs
  /// along the innermost buffer dimension.  The pack nest iterates locals
  /// ascending with the innermost level at buffer stride 1, so every
  /// innermost range [lo, hi] is one contiguous buffer run; fn(start, len)
  /// receives the run's first buffer index and its length, covering the
  /// cells in exactly the canonical per-cell pack order.  This is what
  /// turns interpreted pack/unpack into one memcpy per run.
  template <typename Fn>
  void for_each_pack_run(const IntVec& params, const IntVec& producer,
                         int edge, Fn&& fn) const {
    const poly::LoopNest& nest = pack_nests_[static_cast<std::size_t>(edge)];
    // Scratch persists per thread: pack/unpack run once per edge per tile,
    // so these must not allocate in steady state.
    thread_local IntVec pt;
    thread_local IntVec local;
    ext_seed_into(params, pt);
    for (int k = 0; k < d_; ++k)
      pt[static_cast<std::size_t>(ext_tile(k))] =
          producer[static_cast<std::size_t>(k)];
    local.assign(static_cast<std::size_t>(d_), 0);
    const int last = nest.levels() - 1;
    auto rec = [&](auto&& self, int level) -> void {
      auto [lo, hi] = nest.range(level, pt);
      if (level == last) {
        if (lo > hi) return;
        for (int k = 0; k + 1 < d_; ++k)
          local[static_cast<std::size_t>(k)] =
              pt[static_cast<std::size_t>(ext_local(k))];
        local[static_cast<std::size_t>(d_ - 1)] = lo;
        fn(local_index(local), hi - lo + 1);
        return;
      }
      auto v = static_cast<std::size_t>(nest.var_at(level));
      for (Int x = lo; x <= hi; ++x) {
        pt[v] = x;
        self(self, level + 1);
      }
    };
    rec(rec, 0);
  }

  // ---- initial tiles (paper IV.K) ---------------------------------------------------
  /// Finds every tile all of whose dependencies fall outside the tile
  /// space, by scanning candidate face systems (not the whole tile space).
  /// Returns the number of candidate tiles examined (for the INIT bench).
  Int for_each_initial_tile(
      const IntVec& params,
      const std::function<void(const IntVec&)>& fn) const;

  // ---- load balancing support ------------------------------------------------------
  /// Indices (within 0..d-1) of the load-balanced dimensions, priority
  /// order.
  const std::vector<int>& lb_dims() const { return lb_dims_; }
  /// The load-balancing space: tile space with non-balanced tile indices
  /// eliminated (over params + t_lb in ext_vars order).
  const poly::System& lb_space() const { return lb_space_; }
  /// Scans load-balance cells in priority (lb1-major) order.
  void for_each_lb_cell(const IntVec& params,
                        const std::function<void(const IntVec&)>& fn) const;

  // ---- loop nests, exposed for code emission ---------------------------------
  const poly::LoopNest& tile_nest() const { return tile_nest_; }
  const poly::LoopNest& local_nest() const { return local_nest_; }
  const poly::LoopNest& lb_nest() const { return lb_nest_; }
  const poly::LoopNest& pack_nest(int edge) const {
    return pack_nests_[static_cast<std::size_t>(edge)];
  }
  const std::vector<poly::LoopNest>& face_nests() const { return face_nests_; }

 private:
  IntVec ext_seed(const IntVec& params) const;
  /// Allocation-free ext_seed: fills `seed` in place (capacity persists
  /// when the caller reuses the same scratch vector).
  void ext_seed_into(const IntVec& params, IntVec& seed) const;

  spec::ProblemSpec spec_;
  int p_ = 0;
  int d_ = 0;

  poly::Vars ext_vars_;
  poly::System extended_;
  poly::System tile_space_;

  poly::LoopNest tile_nest_;   // scan t over tile_space_
  poly::LoopNest local_nest_;  // scan i over extended_ (t fixed via seed)

  IntVec ghost_lo_, ghost_hi_, extents_, strides_;
  Int buffer_size_ = 0;
  std::vector<Int> dep_offsets_;  // constant loc_rj offsets

  std::vector<Edge> edges_;
  std::vector<poly::LoopNest> pack_nests_;  // one per edge
  std::vector<Int> unpack_shifts_;          // one per edge

  std::vector<std::vector<ValidityCheck>> validity_;  // per dependency

  std::vector<poly::System> face_systems_;  // initial-tile candidates
  std::vector<poly::LoopNest> face_nests_;

  std::vector<int> lb_dims_;
  poly::System lb_space_;
  poly::LoopNest lb_nest_;

  // Counters (constructed lazily would complicate const-ness; build once).
  std::unique_ptr<poly::LatticeCounter> cells_counter_;     // all cells
  std::unique_ptr<poly::LatticeCounter> tiles_counter_;     // all tiles
  std::unique_ptr<poly::LatticeCounter> tile_cells_counter_;  // cells of one tile
  std::unique_ptr<poly::LatticeCounter> lb_cells_counter_;  // cells per lb cell
  std::unique_ptr<poly::LatticeCounter> lb_tiles_counter_;  // tiles per lb cell
};

}  // namespace dpgen::tiling
