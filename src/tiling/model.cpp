#include "tiling/model.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "support/error.hpp"
#include "support/str.hpp"

namespace dpgen::tiling {

namespace {

/// Picks a name based on `base` that is not yet in `vars`.
std::string unique_name(const poly::Vars& vars, std::string base) {
  while (vars.index_of(base) >= 0) base += "_";
  return base;
}

}  // namespace

TilingModel::TilingModel(spec::ProblemSpec problem) : spec_(std::move(problem)) {
  spec_.validate();
  p_ = spec_.nparams();
  d_ = spec_.dim();
  const IntVec& w = spec_.widths();

  // ---- extended variable table: params, tile indices, local indices ------
  for (const auto& name : spec_.param_names()) ext_vars_.add(name);
  for (const auto& name : spec_.var_names())
    ext_vars_.add(unique_name(ext_vars_, "t_" + name));
  for (const auto& name : spec_.var_names())
    ext_vars_.add(unique_name(ext_vars_, "i_" + name));
  const int n_ext = ext_vars_.size();

  // ---- extended system: substitute x_k = i_k + w_k t_k, add local bounds --
  std::vector<poly::LinExpr> image;
  for (int i = 0; i < p_; ++i)
    image.push_back(poly::LinExpr::term(n_ext, ext_param(i)));
  for (int k = 0; k < d_; ++k) {
    poly::LinExpr e = poly::LinExpr::term(n_ext, ext_local(k)) +
                      poly::LinExpr::term(n_ext, ext_tile(k),
                                          w[static_cast<std::size_t>(k)]);
    image.push_back(std::move(e));
  }
  extended_ = poly::transform(spec_.space(), ext_vars_, image);
  for (int k = 0; k < d_; ++k) {
    // 0 <= i_k <= w_k - 1
    extended_.add_ge(poly::LinExpr::term(n_ext, ext_local(k)));
    poly::LinExpr hi = -poly::LinExpr::term(n_ext, ext_local(k));
    hi.c = w[static_cast<std::size_t>(k)] - 1;
    extended_.add_ge(std::move(hi));
  }
  extended_.simplify();

  // ---- tile space: FM-eliminate the local indices, innermost first -------
  {
    std::vector<int> locals;
    for (int k = d_ - 1; k >= 0; --k) locals.push_back(ext_local(k));
    tile_space_ = extended_.eliminated_all(locals);
    // Exact pruning keeps the emitted membership test and the initial-tile
    // face bands minimal (FM projections carry redundant combinations).
    tile_space_.remove_redundant();
  }

  // ---- loop nests ----------------------------------------------------------
  {
    std::vector<int> t_order, i_order;
    for (int k = 0; k < d_; ++k) {
      t_order.push_back(ext_tile(k));
      i_order.push_back(ext_local(k));
    }
    tile_nest_ = poly::LoopNest::build(tile_space_, t_order);
    // Cells within a tile must be scanned against the dependency direction:
    // positive template vectors mean f(x) reads f(x + r), so larger
    // coordinates are computed first (the paper's Fig. 3 "from ub to lb").
    std::vector<int> dirs;
    for (int k = 0; k < d_; ++k)
      dirs.push_back(spec_.dep_signs()[static_cast<std::size_t>(k)] > 0 ? -1
                                                                        : 1);
    local_nest_ = poly::LoopNest::build(extended_, i_order, dirs);
  }

  // ---- ghost geometry, strides, mapping offsets (IV.H) ----------------------
  ghost_lo_.assign(static_cast<std::size_t>(d_), 0);
  ghost_hi_.assign(static_cast<std::size_t>(d_), 0);
  for (const auto& dp : spec_.deps()) {
    for (int k = 0; k < d_; ++k) {
      Int r = dp.vec[static_cast<std::size_t>(k)];
      auto ks = static_cast<std::size_t>(k);
      ghost_lo_[ks] = std::max(ghost_lo_[ks], r < 0 ? -r : 0);
      ghost_hi_[ks] = std::max(ghost_hi_[ks], r > 0 ? r : 0);
    }
  }
  extents_.resize(static_cast<std::size_t>(d_));
  for (int k = 0; k < d_; ++k) {
    auto ks = static_cast<std::size_t>(k);
    extents_[ks] = add_ck(w[ks], add_ck(ghost_lo_[ks], ghost_hi_[ks]));
  }
  strides_.assign(static_cast<std::size_t>(d_), 1);
  for (int k = d_ - 2; k >= 0; --k) {
    auto ks = static_cast<std::size_t>(k);
    strides_[ks] = mul_ck(strides_[ks + 1], extents_[ks + 1]);
  }
  buffer_size_ = mul_ck(strides_[0], extents_[0]);
  for (const auto& dp : spec_.deps())
    dep_offsets_.push_back(vec_dot(strides_, dp.vec));

  // ---- tile dependency offsets and edge slabs (IV.F, IV.I) ------------------
  std::map<IntVec, std::vector<int>> offset_deps;
  for (std::size_t j = 0; j < spec_.deps().size(); ++j) {
    const IntVec& r = spec_.deps()[j].vec;
    // Per-dimension candidate tile offsets: floor((i_k + r_k) / w_k) for
    // i_k in [0, w_k - 1] spans at most two consecutive integers.
    std::vector<IntVec> partial{{}};
    for (int k = 0; k < d_; ++k) {
      auto ks = static_cast<std::size_t>(k);
      Int lo = floor_div(r[ks], w[ks]);
      Int hi = floor_div(add_ck(w[ks] - 1, r[ks]), w[ks]);
      std::vector<IntVec> next;
      for (const auto& base : partial)
        for (Int v = lo; v <= hi; ++v) {
          auto e = base;
          e.push_back(v);
          next.push_back(std::move(e));
        }
      partial = std::move(next);
    }
    for (auto& delta : partial) {
      if (vec_is_zero(delta)) continue;  // intra-tile accesses need no edge
      offset_deps[delta].push_back(static_cast<int>(j));
    }
  }
  // Drop phantom offsets: an offset only becomes an edge when some tile t
  // and its neighbour t + delta can both exist (for some parameter
  // values).  Shifting the affine tile space by the constant delta only
  // moves each constraint's constant term, so feasibility of the
  // conjunction is a pure FM check.
  for (auto it = offset_deps.begin(); it != offset_deps.end();) {
    poly::System both = tile_space_;
    for (const auto& c : tile_space_.constraints()) {
      poly::Constraint shifted = c;
      Int s = 0;
      for (int k = 0; k < d_; ++k)
        s = add_ck(s, mul_ck(c.e.coef(ext_tile(k)),
                             it->first[static_cast<std::size_t>(k)]));
      shifted.e.c = add_ck(shifted.e.c, s);
      both.add(std::move(shifted));
    }
    for (int v = 0; v < ext_vars_.size(); ++v) both = both.eliminated(v);
    both.simplify();
    if (both.known_infeasible())
      it = offset_deps.erase(it);
    else
      ++it;
  }

  // Tile-level acyclicity: every surviving offset must be lexicographically
  // positive under a direction assignment compatible with the cell-level
  // scan directions, or same-row tiles would wait on each other.
  {
    std::vector<int> dirs = spec_.dep_signs();
    for (const auto& [delta, deps] : offset_deps) {
      for (int k = 0; k < d_; ++k) {
        Int v = delta[static_cast<std::size_t>(k)];
        if (v == 0) continue;
        int s = v > 0 ? 1 : -1;
        auto ks = static_cast<std::size_t>(k);
        DPGEN_CHECK(
            dirs[ks] == 0 || dirs[ks] == s,
            cat("tile dependencies form a cycle at the given tile widths "
                "(offset ", vec_to_string(delta), " conflicts in dimension '",
                spec_.var_names()[ks],
                "'); use tile width 1 in the pipelined dimension or "
                "reorder the loop variables"));
        dirs[ks] = s;
        break;
      }
    }
  }

  for (auto& [delta, deps] : offset_deps) {
    Edge e;
    e.offset = delta;
    e.deps = deps;
    e.box_lo.resize(static_cast<std::size_t>(d_));
    e.box_hi.resize(static_cast<std::size_t>(d_));
    e.capacity = 1;
    for (int k = 0; k < d_; ++k) {
      auto ks = static_cast<std::size_t>(k);
      Int lo = w[ks];  // sentinel: above any valid hi
      Int hi = -1;
      for (int j : deps) {
        Int r = spec_.deps()[static_cast<std::size_t>(j)].vec[ks];
        Int shift = mul_ck(w[ks], delta[ks]);
        Int jlo = std::max<Int>(0, sub_ck(r, shift));
        Int jhi = std::min<Int>(w[ks] - 1, sub_ck(add_ck(w[ks] - 1, r), shift));
        if (jlo > jhi) continue;  // this dep cannot cross with this offset here
        lo = std::min(lo, jlo);
        hi = std::max(hi, jhi);
      }
      DPGEN_ASSERT(lo <= hi);
      e.box_lo[ks] = lo;
      e.box_hi[ks] = hi;
      e.capacity = mul_ck(e.capacity, hi - lo + 1);
    }
    edges_.push_back(std::move(e));
  }

  // Pack/unpack iteration spaces: the producer's local space clipped to the
  // edge slab (paper IV.I: "slightly modified versions of the local
  // iteration space of the source tile").
  for (const auto& e : edges_) {
    poly::System s = extended_;
    for (int k = 0; k < d_; ++k) {
      auto ks = static_cast<std::size_t>(k);
      poly::LinExpr lo = poly::LinExpr::term(n_ext, ext_local(k));
      lo.c = -e.box_lo[ks];
      s.add_ge(std::move(lo));  // i_k >= box_lo
      poly::LinExpr hi = -poly::LinExpr::term(n_ext, ext_local(k));
      hi.c = e.box_hi[ks];
      s.add_ge(std::move(hi));  // i_k <= box_hi
    }
    std::vector<int> i_order;
    for (int k = 0; k < d_; ++k) i_order.push_back(ext_local(k));
    pack_nests_.push_back(poly::LoopNest::build(s, i_order));

    Int shift = 0;
    for (int k = 0; k < d_; ++k) {
      auto ks = static_cast<std::size_t>(k);
      shift = add_ck(shift,
                     mul_ck(strides_[ks], mul_ck(w[ks], e.offset[ks])));
    }
    unpack_shifts_.push_back(shift);
  }

  // ---- validity checks (IV.G) -------------------------------------------------
  validity_.resize(spec_.deps().size());
  for (std::size_t j = 0; j < spec_.deps().size(); ++j) {
    const IntVec& r = spec_.deps()[j].vec;
    for (const auto& c : spec_.space().constraints()) {
      Int shift = 0;
      for (int k = 0; k < d_; ++k)
        shift = add_ck(shift,
                       mul_ck(c.e.coef(spec_.space_var(k)),
                              r[static_cast<std::size_t>(k)]));
      if (c.rel == poly::Rel::Ge) {
        if (shift >= 0) continue;  // satisfied at x implies satisfied at x+r
        ValidityCheck v;
        v.expr = c.e;
        v.expr.c = add_ck(v.expr.c, shift);
        v.rel = poly::Rel::Ge;
        validity_[j].push_back(std::move(v));
      } else {
        if (shift == 0) continue;
        ValidityCheck v;
        v.expr = c.e;
        v.expr.c = add_ck(v.expr.c, shift);
        v.rel = poly::Rel::Eq;
        validity_[j].push_back(std::move(v));
      }
    }
  }

  // ---- initial-tile face systems (IV.K) ------------------------------------------
  {
    bool need_full_scan = false;
    // Several edges often violate the same constraint by the same (or a
    // smaller) amount, producing nested bands; keep only the widest band
    // per constraint to avoid rescanning the same tiles.
    std::map<int, Int> widest;  // constraint index -> max violation depth
    for (std::size_t ci = 0; ci < tile_space_.constraints().size(); ++ci) {
      const auto& c = tile_space_.constraints()[ci];
      for (const auto& e : edges_) {
        Int s = 0;
        for (int k = 0; k < d_; ++k)
          s = add_ck(s, mul_ck(c.e.coef(ext_tile(k)),
                               e.offset[static_cast<std::size_t>(k)]));
        if (c.rel == poly::Rel::Eq) {
          if (s != 0) need_full_scan = true;
          continue;
        }
        if (s >= 0) continue;
        auto [it, inserted] = widest.emplace(static_cast<int>(ci), neg_ck(s));
        if (!inserted) it->second = std::max(it->second, neg_ck(s));
      }
    }
    for (const auto& [ci, depth] : widest) {
      // Band where t satisfies the constraint but t + offset violates it
      // for some edge: 0 <= c.e(t) <= depth - 1.
      const auto& c =
          tile_space_.constraints()[static_cast<std::size_t>(ci)];
      poly::System band = tile_space_;
      poly::LinExpr hi = -c.e;
      hi.c = add_ck(hi.c, sub_ck(depth, 1));
      band.add_ge(std::move(hi));
      band.simplify();
      if (band.known_infeasible()) continue;
      face_systems_.push_back(std::move(band));
    }
    if (need_full_scan) face_systems_.push_back(tile_space_);
    std::vector<int> t_order;
    for (int k = 0; k < d_; ++k) t_order.push_back(ext_tile(k));
    for (const auto& s : face_systems_)
      face_nests_.push_back(poly::LoopNest::build(s, t_order));
  }

  // ---- load balancing space (IV.J) ------------------------------------------------
  for (const auto& name : spec_.load_balance_dims()) {
    for (int k = 0; k < d_; ++k)
      if (spec_.var_names()[static_cast<std::size_t>(k)] == name)
        lb_dims_.push_back(k);
  }
  {
    std::vector<int> drop;
    for (int k = 0; k < d_; ++k)
      if (std::find(lb_dims_.begin(), lb_dims_.end(), k) == lb_dims_.end())
        drop.push_back(ext_tile(k));
    lb_space_ = tile_space_.eliminated_all(drop);
    lb_space_.remove_redundant();
    std::vector<int> lb_order;
    for (int k : lb_dims_) lb_order.push_back(ext_tile(k));
    lb_nest_ = poly::LoopNest::build(lb_space_, lb_order);
  }

  // ---- counters ----------------------------------------------------------------------
  {
    std::vector<int> ti_order, t_order, i_order, nonlb_i_order, nonlb_order;
    for (int k = 0; k < d_; ++k) t_order.push_back(ext_tile(k));
    for (int k = 0; k < d_; ++k) i_order.push_back(ext_local(k));
    ti_order = t_order;
    for (int v : i_order) ti_order.push_back(v);
    for (int k = 0; k < d_; ++k)
      if (std::find(lb_dims_.begin(), lb_dims_.end(), k) == lb_dims_.end())
        nonlb_order.push_back(ext_tile(k));
    nonlb_i_order = nonlb_order;
    for (int v : i_order) nonlb_i_order.push_back(v);

    cells_counter_ = std::make_unique<poly::LatticeCounter>(extended_, ti_order);
    tiles_counter_ =
        std::make_unique<poly::LatticeCounter>(tile_space_, t_order);
    tile_cells_counter_ =
        std::make_unique<poly::LatticeCounter>(extended_, i_order);
    lb_cells_counter_ =
        std::make_unique<poly::LatticeCounter>(extended_, nonlb_i_order);
    lb_tiles_counter_ =
        std::make_unique<poly::LatticeCounter>(tile_space_, nonlb_order);
  }
}

IntVec TilingModel::ext_seed(const IntVec& params) const {
  IntVec seed;
  ext_seed_into(params, seed);
  return seed;
}

void TilingModel::ext_seed_into(const IntVec& params, IntVec& seed) const {
  DPGEN_CHECK(static_cast<int>(params.size()) == p_,
              cat("expected ", p_, " parameter values, got ", params.size()));
  seed.assign(ext_vars_.size(), 0);
  std::copy(params.begin(), params.end(), seed.begin());
}

bool TilingModel::tile_in_space(const IntVec& params, const IntVec& tile) const {
  DPGEN_ASSERT(static_cast<int>(tile.size()) == d_);
  // Called once per outgoing edge in the runtime hot path; per-thread
  // scratch keeps it allocation-free in steady state.
  thread_local IntVec seed;
  ext_seed_into(params, seed);
  for (int k = 0; k < d_; ++k)
    seed[static_cast<std::size_t>(ext_tile(k))] =
        tile[static_cast<std::size_t>(k)];
  return tile_space_.contains(seed);
}

void TilingModel::for_each_tile(
    const IntVec& params, const std::function<void(const IntVec&)>& fn) const {
  IntVec tile(static_cast<std::size_t>(d_));
  poly::for_each_point(tile_nest_, ext_seed(params), [&](const IntVec& pt) {
    for (int k = 0; k < d_; ++k)
      tile[static_cast<std::size_t>(k)] =
          pt[static_cast<std::size_t>(ext_tile(k))];
    fn(tile);
  });
}

Int TilingModel::total_tiles(const IntVec& params) const {
  return tiles_counter_->count(ext_seed(params));
}

Int TilingModel::total_cells(const IntVec& params) const {
  return cells_counter_->count(ext_seed(params));
}

std::vector<int> TilingModel::deps_of(const IntVec& params,
                                      const IntVec& tile) const {
  std::vector<int> out;
  for (int e = 0; e < num_edges(); ++e) {
    if (tile_in_space(params,
                      vec_add(tile, edges_[static_cast<std::size_t>(e)].offset)))
      out.push_back(e);
  }
  return out;
}

int TilingModel::num_deps_of(const IntVec& params, const IntVec& tile) const {
  DPGEN_ASSERT(static_cast<int>(tile.size()) == d_);
  thread_local IntVec seed;
  ext_seed_into(params, seed);
  int n = 0;
  for (const Edge& e : edges_) {
    for (int k = 0; k < d_; ++k) {
      auto ks = static_cast<std::size_t>(k);
      seed[static_cast<std::size_t>(ext_tile(k))] =
          add_ck(tile[ks], e.offset[ks]);
    }
    if (tile_space_.contains(seed)) ++n;
  }
  return n;
}

Int TilingModel::local_index(const IntVec& local) const {
  Int idx = 0;
  for (int k = 0; k < d_; ++k) {
    auto ks = static_cast<std::size_t>(k);
    idx = add_ck(idx, mul_ck(strides_[ks], add_ck(local[ks], ghost_lo_[ks])));
  }
  return idx;
}

IntVec TilingModel::global_of(const IntVec& tile, const IntVec& local) const {
  IntVec x(static_cast<std::size_t>(d_));
  for (int k = 0; k < d_; ++k) {
    auto ks = static_cast<std::size_t>(k);
    x[ks] = add_ck(local[ks],
                   mul_ck(spec_.widths()[ks], tile[ks]));
  }
  return x;
}

void TilingModel::for_each_cell(
    const IntVec& params, const IntVec& tile,
    const std::function<void(const IntVec&, const IntVec&)>& fn) const {
  for_each_cell_fast(params, tile, fn);
}

Int CellCountFn::count(const IntVec& tile) const {
  DPGEN_ASSERT(tile.size() == dims_.size());
  Int total = 1;
  for (std::size_t k = 0; k < dims_.size(); ++k) {
    const Dim& d = dims_[k];
    Int lo = d.lo0;
    Int hi = d.hi0;
    for (const Affine& b : d.bounds) {
      const Int r = add_ck(mul_ck(b.a, tile[k]), b.c);
      if (b.div == 1) {
        // Pre-normalised: r is the bound value itself (lowers were negated
        // at build time), so the common unit-coefficient case pays no
        // division.
        if (b.lower)
          lo = std::max(lo, r);
        else
          hi = std::min(hi, r);
      } else if (b.lower) {
        lo = std::max(lo, ceil_div(neg_ck(r), b.div));
      } else {
        hi = std::min(hi, floor_div(r, b.div));
      }
    }
    if (hi < lo) return 0;
    total = mul_ck(total, hi - lo + 1);
  }
  return total;
}

CellCountFn TilingModel::cell_count_fn(const IntVec& params) const {
  CellCountFn fn;
  if (local_nest_.levels() != d_ || local_nest_.unbounded()) return fn;
  fn.dims_.resize(static_cast<std::size_t>(d_));
  for (auto& d : fn.dims_) {
    d.lo0 = std::numeric_limits<Int>::min();
    d.hi0 = std::numeric_limits<Int>::max();
  }
  for (int level = 0; level < d_; ++level) {
    const int v = local_nest_.var_at(level);
    const int k = v - ext_local(0);
    if (k < 0 || k >= d_) return CellCountFn{};
    CellCountFn::Dim& dim = fn.dims_[static_cast<std::size_t>(k)];
    auto specialize = [&](const poly::Bound& b, bool lower) -> bool {
      CellCountFn::Affine a;
      a.a = b.rest.coef(ext_tile(k));
      a.c = b.rest.c;
      a.div = lower ? b.coef : neg_ck(b.coef);
      a.lower = lower;
      for (int i = 0; i < b.rest.nvars(); ++i) {
        if (b.rest.coef(i) == 0) continue;
        if (i < p_) {
          // Parameter: fold its value into the constant.
          a.c = add_ck(a.c, mul_ck(b.rest.coef(i),
                                   params[static_cast<std::size_t>(i)]));
        } else if (i != ext_tile(k)) {
          // Another tile index or another local variable: the extent of
          // this dimension is coupled to it, so the product form is wrong.
          return false;
        }
      }
      if (a.a == 0) {
        // Tile-independent: fold the finished bound value into lo0/hi0.
        const Int val = lower ? ceil_div(neg_ck(a.c), a.div)
                              : floor_div(a.c, a.div);
        if (lower)
          dim.lo0 = std::max(dim.lo0, val);
        else
          dim.hi0 = std::min(dim.hi0, val);
        return true;
      }
      if (a.div == 1 && lower) {
        // Normalise so count() uses a*t + c directly (see Affine).
        a.a = neg_ck(a.a);
        a.c = neg_ck(a.c);
      }
      dim.bounds.push_back(a);
      return true;
    };
    for (const poly::Bound& b : local_nest_.lowers(level))
      if (!specialize(b, true)) return CellCountFn{};
    for (const poly::Bound& b : local_nest_.uppers(level))
      if (!specialize(b, false)) return CellCountFn{};
  }
  fn.ok_ = true;
  return fn;
}

Int TilingModel::cell_count(const IntVec& params, const IntVec& tile) const {
  // Called per dispatched tile by the monitored driver hot path, so it must
  // not allocate (same idiom as num_deps_of above).
  thread_local IntVec seed;
  ext_seed_into(params, seed);
  for (int k = 0; k < d_; ++k)
    seed[static_cast<std::size_t>(ext_tile(k))] =
        tile[static_cast<std::size_t>(k)];
  return tile_cells_counter_->count_in_place(seed);
}

Int TilingModel::cell_count_lb(const IntVec& params,
                               const IntVec& lb_values) const {
  DPGEN_ASSERT(lb_values.size() == lb_dims_.size());
  IntVec seed = ext_seed(params);
  for (std::size_t i = 0; i < lb_dims_.size(); ++i)
    seed[static_cast<std::size_t>(ext_tile(lb_dims_[i]))] = lb_values[i];
  return lb_cells_counter_->count(seed);
}

Int TilingModel::tile_count_lb(const IntVec& params,
                               const IntVec& lb_values) const {
  DPGEN_ASSERT(lb_values.size() == lb_dims_.size());
  IntVec seed = ext_seed(params);
  for (std::size_t i = 0; i < lb_dims_.size(); ++i)
    seed[static_cast<std::size_t>(ext_tile(lb_dims_[i]))] = lb_values[i];
  return lb_tiles_counter_->count(seed);
}

bool TilingModel::dep_valid_at(const IntVec& orig_point, int dep) const {
  for (const auto& v : validity_[static_cast<std::size_t>(dep)]) {
    Int val = v.expr.eval(orig_point);
    if (v.rel == poly::Rel::Ge ? val < 0 : val != 0) return false;
  }
  return true;
}

void TilingModel::for_each_pack_cell(
    const IntVec& params, const IntVec& producer, int edge,
    const std::function<void(const IntVec&)>& fn) const {
  IntVec seed = ext_seed(params);
  for (int k = 0; k < d_; ++k)
    seed[static_cast<std::size_t>(ext_tile(k))] =
        producer[static_cast<std::size_t>(k)];
  IntVec local(static_cast<std::size_t>(d_));
  poly::for_each_point(
      pack_nests_[static_cast<std::size_t>(edge)], seed,
      [&](const IntVec& pt) {
        for (int k = 0; k < d_; ++k)
          local[static_cast<std::size_t>(k)] =
              pt[static_cast<std::size_t>(ext_local(k))];
        fn(local);
      });
}

Int TilingModel::for_each_initial_tile(
    const IntVec& params, const std::function<void(const IntVec&)>& fn) const {
  std::set<IntVec> candidates;
  Int scanned = 0;
  IntVec tile(static_cast<std::size_t>(d_));
  for (const auto& nest : face_nests_) {
    poly::for_each_point(nest, ext_seed(params), [&](const IntVec& pt) {
      ++scanned;
      for (int k = 0; k < d_; ++k)
        tile[static_cast<std::size_t>(k)] =
            pt[static_cast<std::size_t>(ext_tile(k))];
      candidates.insert(tile);
    });
  }
  for (const auto& t : candidates) {
    if (!tile_in_space(params, t)) continue;
    bool initial = true;
    for (const auto& e : edges_) {
      if (tile_in_space(params, vec_add(t, e.offset))) {
        initial = false;
        break;
      }
    }
    if (initial) fn(t);
  }
  return scanned;
}

void TilingModel::for_each_lb_cell(
    const IntVec& params, const std::function<void(const IntVec&)>& fn) const {
  IntVec cell(lb_dims_.size());
  poly::for_each_point(lb_nest_, ext_seed(params), [&](const IntVec& pt) {
    for (std::size_t i = 0; i < lb_dims_.size(); ++i)
      cell[i] = pt[static_cast<std::size_t>(ext_tile(lb_dims_[i]))];
    fn(cell);
  });
}

}  // namespace dpgen::tiling
