#include "tiling/balance.hpp"

#include <algorithm>
#include <numeric>

#include "support/error.hpp"
#include "support/str.hpp"

namespace dpgen::tiling {

LoadBalancer::LoadBalancer(const TilingModel& model, const IntVec& params,
                           int nranks, BalanceMethod method)
    : model_(model), nranks_(nranks), method_(method) {
  DPGEN_CHECK(nranks >= 1, "load balancer needs at least one rank");
  DPGEN_CHECK(nranks == 1 || !model.lb_dims().empty(),
              "multi-rank runs require load-balance dimensions in the spec");
  work_.assign(static_cast<std::size_t>(nranks), 0);
  tiles_.assign(static_cast<std::size_t>(nranks), 0);

  struct Cell {
    IntVec lb;
    Int work;
    Int tiles;
  };
  std::vector<Cell> cells;
  model.for_each_lb_cell(params, [&](const IntVec& lb) {
    Cell c;
    c.lb = lb;
    c.work = model.cell_count_lb(params, lb);
    c.tiles = model.tile_count_lb(params, lb);
    total_work_ = add_ck(total_work_, c.work);
    cells.push_back(std::move(c));
  });

  if (method == BalanceMethod::kHyperplane) {
    // Order by the all-ones hyperplane over the balanced dimensions, then
    // lexicographically; the prefix cut below then slices along diagonal
    // level sets (Fig. 8).
    std::stable_sort(cells.begin(), cells.end(),
                     [](const Cell& a, const Cell& b) {
                       Int sa = std::accumulate(a.lb.begin(), a.lb.end(), Int{0});
                       Int sb = std::accumulate(b.lb.begin(), b.lb.end(), Int{0});
                       if (sa != sb) return sa < sb;
                       return a.lb < b.lb;
                     });
  }
  // (kPerDimension keeps the natural lb1-major scan order.)

  Int cum = 0;
  for (const auto& c : cells) {
    int rank = 0;
    if (total_work_ > 0) {
      // Prefix cut: the cell whose preceding cumulative work is in
      // [i*W/P, (i+1)*W/P) goes to rank i.
      rank = static_cast<int>(
          (static_cast<__int128>(cum) * nranks_) / total_work_);
      rank = std::min(rank, nranks_ - 1);
    }
    owner_by_cell_.emplace(c.lb, rank);
    work_[static_cast<std::size_t>(rank)] += c.work;
    tiles_[static_cast<std::size_t>(rank)] += c.tiles;
    cum = add_ck(cum, c.work);
  }

  // Dense owner table over the cells' bounding box, unless the box is so
  // much larger than the cell set that the memory is not worth it.
  if (!cells.empty()) {
    const std::size_t nd = cells[0].lb.size();
    IntVec lo = cells[0].lb;
    IntVec hi = cells[0].lb;
    for (const auto& c : cells)
      for (std::size_t i = 0; i < nd; ++i) {
        lo[i] = std::min(lo[i], c.lb[i]);
        hi[i] = std::max(hi[i], c.lb[i]);
      }
    Int vol = 1;
    bool ok = true;
    for (std::size_t i = 0; i < nd && ok; ++i) {
      vol = mul_ck(vol, hi[i] - lo[i] + 1);
      if (vol > std::max<Int>(4096, 8 * static_cast<Int>(cells.size())))
        ok = false;
    }
    if (ok) {
      flat_lo_ = lo;
      flat_extents_.resize(nd);
      for (std::size_t i = 0; i < nd; ++i)
        flat_extents_[i] = hi[i] - lo[i] + 1;
      owner_flat_.assign(static_cast<std::size_t>(vol), -1);
      for (const auto& [lb, rank] : owner_by_cell_) {
        std::size_t idx = 0;
        for (std::size_t i = 0; i < nd; ++i)
          idx = idx * static_cast<std::size_t>(flat_extents_[i]) +
                static_cast<std::size_t>(lb[i] - flat_lo_[i]);
        owner_flat_[idx] = rank;
      }
    }
  }
}

int LoadBalancer::owner(const IntVec& tile) const {
  const auto& dims = model_.lb_dims();
  if (dims.empty()) return 0;
  // Called once per outgoing edge in the runtime hot path: the dense box
  // lookup is allocation- and hash-free.
  if (!owner_flat_.empty()) {
    std::size_t idx = 0;
    bool inside = true;
    for (std::size_t i = 0; i < dims.size(); ++i) {
      const Int v = tile[static_cast<std::size_t>(dims[i])] - flat_lo_[i];
      if (v < 0 || v >= flat_extents_[i]) {
        inside = false;
        break;
      }
      idx = idx * static_cast<std::size_t>(flat_extents_[i]) +
            static_cast<std::size_t>(v);
    }
    const int rank = inside ? owner_flat_[idx] : -1;
    DPGEN_CHECK(rank >= 0,
                cat("tile ", vec_to_string(tile),
                    " has no load-balance cell; is it in the tile space?"));
    return rank;
  }
  thread_local IntVec lb;
  lb.assign(dims.size(), 0);
  for (std::size_t i = 0; i < lb.size(); ++i)
    lb[i] = tile[static_cast<std::size_t>(dims[i])];
  auto it = owner_by_cell_.find(lb);
  DPGEN_CHECK(it != owner_by_cell_.end(),
              cat("tile ", vec_to_string(tile),
                  " has no load-balance cell; is it in the tile space?"));
  return it->second;
}

double LoadBalancer::imbalance() const {
  if (total_work_ == 0) return 1.0;
  Int max_work = *std::max_element(work_.begin(), work_.end());
  double avg = static_cast<double>(total_work_) / nranks_;
  return static_cast<double>(max_work) / avg;
}

}  // namespace dpgen::tiling
