#pragma once
// Runtime tracing: per-thread span buffers with Perfetto-compatible export.
//
// Every phase of a hybrid run — tile execution, edge unpacking/packing,
// sends, blocked sends, polling, idle backoff, barriers, load balancing —
// is recorded as a Span (steady-clock nanoseconds, rank, thread, tile
// coordinates) into a per-thread ring buffer.  Buffers are single-writer:
// the owning thread appends without taking a lock; collection happens
// after the writer quiesced (workers joined, barrier passed).  The spans
// of all ranks are merged through minimpi::Comm::gather at the end of
// run_node (see obs/gather.hpp) and exported as Chrome trace-event JSON
// (obs/export.hpp) with one track per rank x thread, loadable in Perfetto
// or chrome://tracing.
//
// Cost model (the instrumentation sits on the runtime's hottest paths):
//   * compile time: building with -DDPGEN_TRACE=0 compiles every record
//     call and ScopedSpan to nothing — the macro path check.sh verifies;
//   * runtime: tracing is off by default; a disabled tracer costs one
//     relaxed atomic load per span site and no clock reads.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/vec.hpp"

#ifndef DPGEN_TRACE
#define DPGEN_TRACE 1
#endif

namespace dpgen::obs {

/// True when span recording is compiled in (-DDPGEN_TRACE).
inline constexpr bool kTraceCompiled = DPGEN_TRACE != 0;

/// The span taxonomy (docs/observability.md).  Every phase of the node
/// driver's while-loop, the comm layer and the setup path has one entry.
enum class Phase : std::uint8_t {
  kTileExecute = 0,  ///< the tile's loop nest (one span per executed tile)
  kUnpack,           ///< stored edges -> fresh tile buffer ghost cells
  kPack,             ///< boundary slab -> packed edge payload
  kSend,             ///< routing one remote edge (encode + try_send loop)
  kBlockedSend,      ///< waiting for a full destination mailbox
  kPoll,             ///< draining this rank's mailbox
  kIdle,             ///< no ready tile: poll/backoff stretch
  kBarrier,          ///< minimpi barrier wait
  kLoadBalance,      ///< ownership computation before the run
  kInitScan,         ///< initial-tile face scan
  kGather,           ///< end-of-run trace/metrics gather
  kPhaseCount
};

/// Stable lower-case name for exporters ("tile_execute", "idle", ...).
const char* phase_name(Phase p);

/// Inverse of phase_name (the analyzer re-ingests exported traces).
/// Returns false when `name` matches no phase.
bool phase_from_name(const std::string& name, Phase* out);

/// Tile coordinates beyond this many dimensions are dropped from spans
/// (the span stays; only the trailing coordinates are lost).
inline constexpr int kMaxSpanDims = 6;

namespace profdetail {

/// Sampling-profiler frame hooks (defined in profile.cpp; declared here so
/// ScopedSpan can maintain the per-thread phase stack without trace.hpp
/// depending on the profiler).  While a Profiler run is active every
/// ScopedSpan pushes its phase onto a thread-local stack encoded in one
/// atomic word; the profiler's signal handler reads that word to attribute
/// each sample — no unwinder, no allocation, one relaxed store per span.
extern std::atomic<bool> g_frames_on;
void push_frame(Phase p);
void pop_frame();

inline bool frames_on() {
  return g_frames_on.load(std::memory_order_relaxed);
}

}  // namespace profdetail

/// One recorded interval.  Trivially copyable by design: rank buffers are
/// serialized with memcpy and shipped through minimpi::Comm::gather.
struct Span {
  std::int64_t start_ns = 0;  ///< steady-clock ns since Tracer::epoch
  std::int64_t end_ns = 0;
  std::array<std::int32_t, kMaxSpanDims> coord{};  ///< tile coordinates
  std::int16_t rank = -1;    ///< -1: outside any rank (setup phases)
  std::int16_t thread = 0;   ///< worker id within the rank
  Phase phase = Phase::kTileExecute;
  std::uint8_t ncoord = 0;   ///< how many of `coord` are meaningful
};

static_assert(std::is_trivially_copyable_v<Span>, "Span is wire format");

/// Process-wide tracer.  Ranks in this reproduction are threads of one
/// process, so a single registry holds every rank's buffers; the per-rank
/// collect + gather path still mirrors what real MPI ranks would do.
class Tracer {
 public:
  /// Spans one thread can hold before the oldest are overwritten.
  static constexpr std::size_t kRingCapacity = 1u << 16;

  static Tracer& instance();

  /// Runtime switch (cheap: one relaxed load on the disabled path).
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on && kTraceCompiled, std::memory_order_relaxed);
  }

  /// Tags the calling thread's future spans.  Called by the node driver
  /// when a rank / worker thread starts.
  static void set_identity(int rank, int thread);

  /// Steady-clock nanoseconds since the tracer's epoch (monotone).
  std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Records a span for the calling thread (identity + clock applied).
  void record(Phase phase, std::int64_t start_ns, std::int64_t end_ns,
              const IntVec* tile = nullptr);

  /// Records a fully specified span (the cluster simulator uses this to
  /// write its simulated schedule through the same API).
  void record_raw(const Span& span);

  /// Snapshot of every span recorded with exactly this rank (use -1 for
  /// spans recorded outside any rank, e.g. setup phases).  Writers for
  /// that rank must have quiesced (joined / past a barrier).
  std::vector<Span> collect_rank(int rank) const;

  /// Snapshot of every recorded span regardless of rank.
  std::vector<Span> collect_all() const;

  /// Spans merged from all ranks (filled on the gather root).
  std::vector<Span> merged() const;
  void add_merged(std::vector<Span> spans);

  /// Spans dropped because a thread's ring wrapped.
  std::uint64_t dropped() const;

  /// Forgets every recorded and merged span (buffers stay registered so
  /// long-lived threads keep a valid slot).  Call between runs.
  void clear();

 private:
  struct ThreadBuffer {
    std::vector<Span> ring;
    std::atomic<std::uint64_t> head{0};  ///< total spans ever written
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::int32_t> rank{-1};
    std::atomic<std::int32_t> thread{0};
  };

  friend class ScopedSpan;

  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  ThreadBuffer& local_buffer();
  void collect_into(const ThreadBuffer& buf, bool filter, int want_rank,
                    std::vector<Span>* out) const;

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards buffers_ growth and merged_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::vector<Span> merged_;
};

/// RAII span: records [construction, destruction) when tracing is on.
/// With DPGEN_TRACE=0 the whole class compiles to an empty object.
class ScopedSpan {
 public:
#if DPGEN_TRACE
  explicit ScopedSpan(Phase phase, const IntVec* tile = nullptr)
      : phase_(phase), tile_(tile) {
    Tracer& t = Tracer::instance();
    if (t.enabled()) start_ns_ = t.now_ns();
    if (profdetail::frames_on()) {
      profdetail::push_frame(phase);
      pushed_ = true;
    }
  }
  ~ScopedSpan() {
    close();
    // The frame outlives close(): samples taken between an early close()
    // and destruction still belong to this phase.
    if (pushed_) profdetail::pop_frame();
  }

  /// Ends the span early (idempotent).
  void close() {
    if (start_ns_ < 0) return;
    Tracer& t = Tracer::instance();
    t.record(phase_, start_ns_, t.now_ns(), tile_);
    start_ns_ = -1;
  }

 private:
  Phase phase_;
  const IntVec* tile_;
  std::int64_t start_ns_ = -1;
  bool pushed_ = false;
#else
  explicit ScopedSpan(Phase, const IntVec* = nullptr) {}
  void close() {}
#endif

 public:
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

}  // namespace dpgen::obs
