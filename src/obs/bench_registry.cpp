#include "obs/bench_registry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "support/error.hpp"
#include "support/str.hpp"

namespace dpgen::obs {

namespace {

/// Outlier rejection width: |x - median| > k * scaled MAD drops a sample.
/// 1.4826 makes the MAD a consistent sigma estimate under normal noise,
/// so 3.5 scaled MADs is the usual conservative cut.
constexpr double kOutlierMads = 3.5;
constexpr double kMadSigma = 1.4826;

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  std::size_t n = v.size();
  return (n % 2) ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

std::string first_line(const std::string& s) {
  auto pos = s.find('\n');
  return trim(pos == std::string::npos ? s : s.substr(0, pos));
}

/// Short stable hex digest (FNV-1a) — good enough to key archive file
/// names by machine; collisions only cost a spurious gate skip.
std::string fnv1a_hex(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::string run_command(const char* cmd) {
  FILE* pipe = ::popen(cmd, "r");
  if (!pipe) return "";
  std::string out;
  char buf[256];
  while (std::fgets(buf, sizeof buf, pipe)) out += buf;
  int rc = ::pclose(pipe);
  if (rc != 0) return "";
  return first_line(out);
}

std::string cpu_summary() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  std::string model = "unknown-cpu";
  int processors = 0;
  while (std::getline(in, line)) {
    if (line.rfind("processor", 0) == 0) ++processors;
    if (line.rfind("model name", 0) == 0 && model == "unknown-cpu") {
      auto colon = line.find(':');
      if (colon != std::string::npos)
        model = trim(line.substr(colon + 1));
    }
  }
  if (processors == 0)
    processors = static_cast<int>(std::thread::hardware_concurrency());
  return cat(model, " x", processors);
}

const char* verdict_name(GateVerdict v) {
  switch (v) {
    case GateVerdict::kOk: return "ok";
    case GateVerdict::kRegression: return "regression";
    case GateVerdict::kImprovement: return "improvement";
    case GateVerdict::kNoBaseline: return "no-baseline";
    case GateVerdict::kNotRun: return "not-run";
  }
  return "ok";
}

}  // namespace

BenchRegistry& BenchRegistry::instance() {
  static BenchRegistry reg;
  return reg;
}

bool BenchRegistry::add(const std::string& name,
                        std::function<BenchSample()> fn) {
  if (by_name_.count(name)) return false;
  by_name_[name] = entries_.size();
  entries_.push_back({name, std::move(fn)});
  return true;
}

const BenchEntry* BenchRegistry::find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &entries_[it->second];
}

std::vector<std::string> BenchRegistry::select(
    const std::string& filter) const {
  std::vector<std::string> pats;
  for (const std::string& p : split(filter, ","))
    if (!trim(p).empty()) pats.push_back(trim(p));
  std::vector<std::string> out;
  for (const auto& [name, idx] : by_name_) {
    (void)idx;
    if (pats.empty()) {
      out.push_back(name);
      continue;
    }
    for (const std::string& p : pats) {
      if (name.find(p) != std::string::npos) {
        out.push_back(name);
        break;
      }
    }
  }
  return out;  // std::map iteration is already sorted
}

TrialStats robust_stats(std::vector<double> samples) {
  TrialStats st;
  st.trials = static_cast<int>(samples.size());
  st.samples_s = samples;
  if (samples.empty()) return st;
  st.min_s = *std::min_element(samples.begin(), samples.end());
  st.max_s = *std::max_element(samples.begin(), samples.end());
  double med = median_of(samples);
  std::vector<double> dev;
  dev.reserve(samples.size());
  for (double s : samples) dev.push_back(std::fabs(s - med));
  double mad = median_of(dev);
  std::vector<double> kept;
  if (mad > 0.0) {
    for (double s : samples)
      if (std::fabs(s - med) <= kOutlierMads * kMadSigma * mad)
        kept.push_back(s);
  }
  if (kept.empty()) kept = samples;  // zero MAD: identical samples, keep all
  st.kept = static_cast<int>(kept.size());
  st.median_s = median_of(kept);
  std::vector<double> kept_dev;
  kept_dev.reserve(kept.size());
  for (double s : kept) kept_dev.push_back(std::fabs(s - st.median_s));
  st.mad_s = median_of(kept_dev);
  return st;
}

RunMeta collect_run_meta(int trials) {
  RunMeta meta;
  meta.trials = trials;
  const char* sha = std::getenv("DPGEN_GIT_SHA");
  if (sha && *sha) {
    meta.git_sha = sha;
  } else {
    meta.git_sha = run_command("git rev-parse --short=12 HEAD 2>/dev/null");
    if (meta.git_sha.empty()) meta.git_sha = "unknown";
  }
  meta.machine = cpu_summary();
  meta.fingerprint = fnv1a_hex(meta.machine);
  meta.timestamp = static_cast<long long>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  return meta;
}

BenchRecord run_bench(const BenchEntry& entry, int trials, int warmup,
                      double slowdown) {
  DPGEN_CHECK(trials > 0, "run_bench: trials must be positive");
  for (int i = 0; i < warmup; ++i) (void)entry.run();
  std::vector<double> seconds;
  std::vector<BenchSample> trials_out;
  seconds.reserve(trials);
  trials_out.reserve(trials);
  for (int i = 0; i < trials; ++i) {
    BenchSample s = entry.run();
    s.seconds *= slowdown;
    seconds.push_back(s.seconds);
    trials_out.push_back(std::move(s));
  }
  BenchRecord rec;
  rec.name = entry.name;
  rec.stats = robust_stats(seconds);
  // Attach the metrics of the trial closest to the median: counters from
  // the most representative run, not an average that mixes outliers in.
  std::size_t best = 0;
  double best_gap = std::fabs(seconds[0] - rec.stats.median_s);
  for (std::size_t i = 1; i < seconds.size(); ++i) {
    double gap = std::fabs(seconds[i] - rec.stats.median_s);
    if (gap < best_gap) {
      best_gap = gap;
      best = i;
    }
  }
  rec.metrics = std::move(trials_out[best].metrics);
  return rec;
}

std::string bench_json(const BenchDoc& doc) {
  json::Writer w;
  w.begin_object();
  w.key("schema").value("dpgen.bench.v1");
  w.key("git_sha").value(doc.meta.git_sha);
  w.key("machine").value(doc.meta.machine);
  w.key("fingerprint").value(doc.meta.fingerprint);
  w.key("timestamp").value(doc.meta.timestamp);
  w.key("trials").value(doc.meta.trials);
  w.key("benches").begin_array();
  for (const BenchRecord& r : doc.records) {
    w.begin_object();
    w.key("name").value(r.name);
    w.key("trials").value(r.stats.trials);
    w.key("kept").value(r.stats.kept);
    w.key("median_s").value(r.stats.median_s);
    w.key("mad_s").value(r.stats.mad_s);
    w.key("min_s").value(r.stats.min_s);
    w.key("max_s").value(r.stats.max_s);
    w.key("samples_s").begin_array();
    for (double s : r.stats.samples_s) w.value(s);
    w.end_array();
    w.key("metrics").begin_object();
    for (const auto& [k, v] : r.metrics) w.key(k).value(v);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void write_bench_json(const std::string& path, const BenchDoc& doc) {
  std::ofstream out(path);
  DPGEN_CHECK(out.good(), cat("cannot open '", path, "' for writing"));
  out << bench_json(doc) << "\n";
  DPGEN_CHECK(out.good(), cat("failed writing '", path, "'"));
}

BenchDoc parse_bench_doc(const json::Value& doc) {
  DPGEN_CHECK(doc.is(json::Kind::kObject), "bench doc: not an object");
  DPGEN_CHECK(doc.has("schema") && doc.at("schema").as_string() ==
                                       "dpgen.bench.v1",
              "bench doc: schema tag is not dpgen.bench.v1");
  BenchDoc out;
  out.meta.git_sha = doc.at("git_sha").as_string();
  out.meta.machine = doc.at("machine").as_string();
  out.meta.fingerprint = doc.at("fingerprint").as_string();
  out.meta.timestamp =
      static_cast<long long>(doc.at("timestamp").as_number());
  out.meta.trials = static_cast<int>(doc.at("trials").as_number());
  for (const auto& b : doc.at("benches").as_array()) {
    BenchRecord rec;
    rec.name = b->at("name").as_string();
    rec.stats.trials = static_cast<int>(b->at("trials").as_number());
    rec.stats.kept = static_cast<int>(b->at("kept").as_number());
    rec.stats.median_s = b->at("median_s").as_number();
    rec.stats.mad_s = b->at("mad_s").as_number();
    rec.stats.min_s = b->at("min_s").as_number();
    rec.stats.max_s = b->at("max_s").as_number();
    for (const auto& s : b->at("samples_s").as_array())
      rec.stats.samples_s.push_back(s->as_number());
    for (const auto& [k, v] : b->at("metrics").fields)
      rec.metrics.emplace_back(
          k, v->is(json::Kind::kNumber) ? v->as_number() : 0.0);
    out.records.push_back(std::move(rec));
  }
  return out;
}

GateResult gate(const BenchDoc& baseline, const BenchDoc& run,
                const GateOptions& options) {
  GateResult result;
  result.fingerprint_match =
      baseline.meta.fingerprint == run.meta.fingerprint;
  std::map<std::string, const BenchRecord*> base;
  for (const BenchRecord& r : baseline.records) base[r.name] = &r;
  std::map<std::string, const BenchRecord*> cur;
  for (const BenchRecord& r : run.records) cur[r.name] = &r;

  for (const auto& [name, rec] : cur) {
    GateFinding f;
    f.name = name;
    f.run_s = rec->stats.median_s;
    auto it = base.find(name);
    if (it == base.end()) {
      f.verdict = GateVerdict::kNoBaseline;
      result.findings.push_back(f);
      continue;
    }
    const BenchRecord& b = *it->second;
    f.baseline_s = b.stats.median_s;
    if (f.baseline_s > 0.0) f.ratio = f.run_s / f.baseline_s;
    double noise = 0.0;
    if (b.stats.median_s > 0.0)
      noise = std::max(noise, options.mad_factor * b.stats.mad_s /
                                  b.stats.median_s);
    if (rec->stats.median_s > 0.0)
      noise = std::max(noise, options.mad_factor * rec->stats.mad_s /
                                  rec->stats.median_s);
    f.threshold = std::max(options.min_rel_delta, noise);
    const bool above_abs_floor =
        std::fabs(f.run_s - f.baseline_s) > options.min_abs_delta_s;
    if (f.ratio > 1.0 + f.threshold && above_abs_floor) {
      f.verdict = GateVerdict::kRegression;
      ++result.regressions;
    } else if (f.ratio > 0.0 && f.ratio < 1.0 - f.threshold &&
               above_abs_floor) {
      f.verdict = GateVerdict::kImprovement;
      ++result.improvements;
    }
    result.findings.push_back(f);
  }
  for (const auto& [name, rec] : base) {
    if (cur.count(name)) continue;
    GateFinding f;
    f.name = name;
    f.verdict = GateVerdict::kNotRun;
    f.baseline_s = rec->stats.median_s;
    result.findings.push_back(f);
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const GateFinding& a, const GateFinding& b) {
              return a.name < b.name;
            });
  return result;
}

std::string gate_text(const GateResult& result) {
  std::ostringstream out;
  out << "perf gate: " << result.findings.size() << " benches, "
      << result.regressions << " regression(s), " << result.improvements
      << " improvement(s)";
  if (!result.fingerprint_match) out << " [fingerprint mismatch]";
  out << "\n";
  char buf[160];
  for (const GateFinding& f : result.findings) {
    if (f.verdict == GateVerdict::kNoBaseline) {
      std::snprintf(buf, sizeof buf, "  %-40s %-11s run %.3gs (new)\n",
                    f.name.c_str(), verdict_name(f.verdict), f.run_s);
    } else if (f.verdict == GateVerdict::kNotRun) {
      std::snprintf(buf, sizeof buf, "  %-40s %-11s base %.3gs\n",
                    f.name.c_str(), verdict_name(f.verdict), f.baseline_s);
    } else {
      std::snprintf(buf, sizeof buf,
                    "  %-40s %-11s base %.3gs run %.3gs ratio %.3f "
                    "(threshold ±%.0f%%)\n",
                    f.name.c_str(), verdict_name(f.verdict), f.baseline_s,
                    f.run_s, f.ratio, 100.0 * f.threshold);
    }
    out << buf;
  }
  return out.str();
}

std::string gate_json(const GateResult& result) {
  json::Writer w;
  w.begin_object();
  w.key("schema").value("dpgen.benchgate.v1");
  w.key("fingerprint_match").value(result.fingerprint_match);
  w.key("regressions").value(result.regressions);
  w.key("improvements").value(result.improvements);
  w.key("findings").begin_array();
  for (const GateFinding& f : result.findings) {
    w.begin_object();
    w.key("name").value(f.name);
    w.key("verdict").value(verdict_name(f.verdict));
    w.key("baseline_s").value(f.baseline_s);
    w.key("run_s").value(f.run_s);
    w.key("ratio").value(f.ratio);
    w.key("threshold").value(f.threshold);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace dpgen::obs
