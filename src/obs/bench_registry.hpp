#pragma once
// Continuous-benchmarking registry: the cross-commit half of the obs
// subsystem.  Spans and metrics (trace.hpp / metrics.hpp) say where one
// run spent its time; this registry makes runs comparable across commits:
//
//   * every bench binary registers named trial functions ("family/config"
//     -> one measured sample) into the process-wide BenchRegistry, so one
//     runner (tools/dpgen-bench) can run any subset with repeated trials;
//   * robust_stats() turns repeated trials into median + MAD + min with
//     MAD-scaled outlier rejection — DP kernels on shared machines are
//     noisy enough that single-shot timings mislead (Tadonki,
//     arXiv:2001.07103), so the median of several trials is the tracked
//     statistic and the MAD feeds the regression gate's thresholds;
//   * bench_json() emits the schema-stable dpgen.bench.v1 document
//     (tools/bench_schema.json), keyed by git SHA + machine fingerprint so
//     an archive under bench-archive/ forms an honest per-machine series;
//   * gate() compares a run against a baseline with noise-aware per-bench
//     thresholds (MAD-scaled with a floor) and classifies each bench as
//     ok / regression / improvement.
//
// Records carry named metrics (edges/s, pool-hit %, bytes on wire — often
// read from the MetricsRegistry) so a gated regression is attributable,
// not just detectable.

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "support/json.hpp"

namespace dpgen::obs {

/// One measured trial of a registered bench: wall seconds plus named
/// metrics explaining the number (throughput, counters, hit rates).
struct BenchSample {
  double seconds = 0.0;
  std::vector<std::pair<std::string, double>> metrics;
};

/// A registered bench: "family/config" name plus a callable that runs one
/// trial and reports it.  The callable must be re-runnable (the runner
/// adds warm-up and repeated trials around it).
struct BenchEntry {
  std::string name;
  std::function<BenchSample()> run;
};

/// Process-wide bench registry.  Bench translation units register their
/// entries from static initializers; the same objects link into both the
/// standalone bench binaries and the dpgen-bench runner.
class BenchRegistry {
 public:
  static BenchRegistry& instance();

  /// Registers an entry; duplicate names are rejected (first one wins)
  /// and reported by the false return.
  bool add(const std::string& name, std::function<BenchSample()> fn);

  const std::vector<BenchEntry>& entries() const { return entries_; }
  const BenchEntry* find(const std::string& name) const;

  /// Names matching `filter` — a comma-separated list of substrings, ""
  /// matches everything — in sorted order.
  std::vector<std::string> select(const std::string& filter) const;

 private:
  std::vector<BenchEntry> entries_;
  std::map<std::string, std::size_t> by_name_;
};

/// Robust statistics over repeated trials.  Samples more than
/// `kOutlierMads` scaled MADs above the median are rejected (a page-cache
/// miss, a scheduler preemption) and the statistics recomputed over the
/// kept set; min/max always cover every sample.
struct TrialStats {
  int trials = 0;  ///< samples taken
  int kept = 0;    ///< after outlier rejection
  double median_s = 0.0;
  double mad_s = 0.0;  ///< median absolute deviation of the kept samples
  double min_s = 0.0;
  double max_s = 0.0;
  std::vector<double> samples_s;  ///< raw samples, in run order
};

TrialStats robust_stats(std::vector<double> samples);

/// One bench's result in a dpgen.bench.v1 document.
struct BenchRecord {
  std::string name;
  TrialStats stats;
  /// Metrics of the trial whose seconds is closest to the median.
  std::vector<std::pair<std::string, double>> metrics;
};

/// Environment identity stamped into every document: a run is only
/// comparable to runs of the same machine fingerprint.
struct RunMeta {
  std::string git_sha;      ///< "unknown" outside a git tree
  std::string machine;      ///< human-readable CPU summary
  std::string fingerprint;  ///< stable hash key of `machine`
  long long timestamp = 0;  ///< seconds since the epoch
  int trials = 0;           ///< trials requested per bench
};

/// Reads the git SHA (DPGEN_GIT_SHA env override, then `git rev-parse`),
/// the /proc/cpuinfo summary and the wall clock.
RunMeta collect_run_meta(int trials);

/// Runs one entry: one warm-up plus `trials` measured trials.
/// `slowdown` scales every measured sample (the gate's self-test injects
/// a synthetic regression through it; 1.0 in normal use).
BenchRecord run_bench(const BenchEntry& entry, int trials, int warmup = 1,
                      double slowdown = 1.0);

/// A parsed or in-memory dpgen.bench.v1 document.
struct BenchDoc {
  RunMeta meta;
  std::vector<BenchRecord> records;
};

/// Renders the schema-stable dpgen.bench.v1 JSON document.
std::string bench_json(const BenchDoc& doc);

/// Writes bench_json(doc) to `path` (throws dpgen::Error on I/O failure).
void write_bench_json(const std::string& path, const BenchDoc& doc);

/// Parses a dpgen.bench.v1 document (throws on shape/schema-tag errors).
BenchDoc parse_bench_doc(const json::Value& doc);

// ---- regression gate ------------------------------------------------------

struct GateOptions {
  /// Relative threshold floor: deltas below it never fire, whatever the
  /// noise estimate says (protects against a spuriously tiny MAD).
  double min_rel_delta = 0.10;
  /// Noise scaling: threshold = max(floor, mad_factor * MAD / median),
  /// with the MAD taken as the larger of the baseline's and the run's.
  double mad_factor = 5.0;
  /// Absolute floor: |run - baseline| below this many seconds never
  /// fires.  Microsecond-scale benches jitter 20-30% between processes
  /// (cache state, frequency scaling) while their within-run MAD stays
  /// tiny; an absolute floor keeps them from tripping the gate on noise
  /// no relative threshold can model.
  double min_abs_delta_s = 1e-4;
};

enum class GateVerdict {
  kOk,           ///< within threshold
  kRegression,   ///< run median above baseline median by > threshold
  kImprovement,  ///< run median below baseline median by > threshold
  kNoBaseline,   ///< bench ran but the baseline has no record of it
  kNotRun,       ///< baseline record with no counterpart in the run
};

struct GateFinding {
  std::string name;
  GateVerdict verdict = GateVerdict::kOk;
  double baseline_s = 0.0;
  double run_s = 0.0;
  double ratio = 0.0;      ///< run / baseline (0 when either is missing)
  double threshold = 0.0;  ///< relative threshold applied
};

struct GateResult {
  bool fingerprint_match = true;
  int regressions = 0;
  int improvements = 0;
  std::vector<GateFinding> findings;  ///< sorted by name
};

/// Compares `run` against `baseline` with per-bench noise-aware
/// thresholds.  Benches present on only one side are classified, never
/// counted as regressions.
GateResult gate(const BenchDoc& baseline, const BenchDoc& run,
                const GateOptions& options = {});

/// Human-readable verdict table (one line per finding plus a summary).
std::string gate_text(const GateResult& result);

/// Machine-readable rendering ("dpgen.benchgate.v1").
std::string gate_json(const GateResult& result);

}  // namespace dpgen::obs
