#include "obs/trace.hpp"

#include <algorithm>

namespace dpgen::obs {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kTileExecute: return "tile_execute";
    case Phase::kUnpack: return "unpack";
    case Phase::kPack: return "pack";
    case Phase::kSend: return "send";
    case Phase::kBlockedSend: return "blocked_send";
    case Phase::kPoll: return "poll";
    case Phase::kIdle: return "idle";
    case Phase::kBarrier: return "barrier";
    case Phase::kLoadBalance: return "load_balance";
    case Phase::kInitScan: return "init_scan";
    case Phase::kGather: return "gather";
    case Phase::kPhaseCount: break;
  }
  return "unknown";
}

bool phase_from_name(const std::string& name, Phase* out) {
  for (int p = 0; p < static_cast<int>(Phase::kPhaseCount); ++p) {
    if (name == phase_name(static_cast<Phase>(p))) {
      *out = static_cast<Phase>(p);
      return true;
    }
  }
  return false;
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  thread_local ThreadBuffer* tl_buffer = nullptr;
  if (tl_buffer) return *tl_buffer;
  auto buf = std::make_unique<ThreadBuffer>();
  buf->ring.resize(kRingCapacity);
  ThreadBuffer* raw = buf.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::move(buf));  // addresses stay pinned
  }
  tl_buffer = raw;
  return *raw;
}

void Tracer::set_identity(int rank, int thread) {
  ThreadBuffer& buf = instance().local_buffer();
  buf.rank.store(rank, std::memory_order_relaxed);
  buf.thread.store(thread, std::memory_order_relaxed);
}

void Tracer::record(Phase phase, std::int64_t start_ns, std::int64_t end_ns,
                    const IntVec* tile) {
  if (!enabled()) return;
  ThreadBuffer& buf = local_buffer();
  Span s;
  s.start_ns = start_ns;
  s.end_ns = end_ns;
  s.phase = phase;
  s.rank = static_cast<std::int16_t>(buf.rank.load(std::memory_order_relaxed));
  s.thread =
      static_cast<std::int16_t>(buf.thread.load(std::memory_order_relaxed));
  if (tile) {
    s.ncoord = static_cast<std::uint8_t>(
        std::min<std::size_t>(tile->size(), kMaxSpanDims));
    for (std::size_t k = 0; k < s.ncoord; ++k)
      s.coord[k] = static_cast<std::int32_t>((*tile)[k]);
  }
  const std::uint64_t head = buf.head.load(std::memory_order_relaxed);
  buf.ring[head % kRingCapacity] = s;
  if (head >= kRingCapacity)
    buf.dropped.fetch_add(1, std::memory_order_relaxed);
  // Publish after the slot write so collectors never read a torn span.
  buf.head.store(head + 1, std::memory_order_release);
}

void Tracer::record_raw(const Span& span) {
  if (!enabled()) return;
  ThreadBuffer& buf = local_buffer();
  const std::uint64_t head = buf.head.load(std::memory_order_relaxed);
  buf.ring[head % kRingCapacity] = span;
  if (head >= kRingCapacity)
    buf.dropped.fetch_add(1, std::memory_order_relaxed);
  buf.head.store(head + 1, std::memory_order_release);
}

void Tracer::collect_into(const ThreadBuffer& buf, bool filter, int want_rank,
                          std::vector<Span>* out) const {
  const std::uint64_t head = buf.head.load(std::memory_order_acquire);
  const std::uint64_t n = std::min<std::uint64_t>(head, kRingCapacity);
  const std::uint64_t first = head - n;
  for (std::uint64_t i = first; i < head; ++i) {
    const Span& s = buf.ring[i % kRingCapacity];
    if (!filter || s.rank == want_rank) out->push_back(s);
  }
}

namespace {
bool span_starts_earlier(const Span& a, const Span& b) {
  return a.start_ns < b.start_ns;
}
}  // namespace

std::vector<Span> Tracer::collect_rank(int rank) const {
  std::vector<Span> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_)
    collect_into(*buf, /*filter=*/true, rank, &out);
  std::sort(out.begin(), out.end(), span_starts_earlier);
  return out;
}

std::vector<Span> Tracer::collect_all() const {
  std::vector<Span> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_)
    collect_into(*buf, /*filter=*/false, 0, &out);
  std::sort(out.begin(), out.end(), span_starts_earlier);
  return out;
}

std::vector<Span> Tracer::merged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return merged_;
}

void Tracer::add_merged(std::vector<Span> spans) {
  std::lock_guard<std::mutex> lock(mu_);
  merged_.insert(merged_.end(), spans.begin(), spans.end());
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_)
    total += buf->dropped.load(std::memory_order_relaxed);
  return total;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buf : buffers_) {
    buf->head.store(0, std::memory_order_release);
    buf->dropped.store(0, std::memory_order_relaxed);
  }
  merged_.clear();
}

}  // namespace dpgen::obs
