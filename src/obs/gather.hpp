#pragma once
// End-of-run trace merge: every rank ships its span buffer to rank 0
// through the comm layer's collectives, mirroring what real MPI ranks
// would do (MPI_Allreduce for the size, MPI_Gather for the payload).
//
// Header-only and duck-typed on the Comm interface so obs does not link
// against minimpi (minimpi itself records spans, which would otherwise be
// a dependency cycle).

#include <cstring>
#include <vector>

#include "obs/msgtrace.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace dpgen::obs {

/// Serializes spans into the fixed-size wire format [count, Span...].
inline std::vector<std::uint8_t> serialize_spans(
    const std::vector<Span>& spans) {
  std::vector<std::uint8_t> out(sizeof(std::uint64_t) +
                                spans.size() * sizeof(Span));
  const std::uint64_t count = spans.size();
  std::memcpy(out.data(), &count, sizeof(count));
  if (!spans.empty())
    std::memcpy(out.data() + sizeof(count), spans.data(),
                spans.size() * sizeof(Span));
  return out;
}

/// Inverse of serialize_spans; tolerates trailing padding bytes.
inline std::vector<Span> deserialize_spans(const std::uint8_t* data,
                                           std::size_t bytes) {
  DPGEN_CHECK(bytes >= sizeof(std::uint64_t), "malformed span buffer");
  std::uint64_t count = 0;
  std::memcpy(&count, data, sizeof(count));
  DPGEN_CHECK(bytes >= sizeof(count) + count * sizeof(Span),
              "span buffer length mismatch");
  std::vector<Span> spans(count);
  if (count)
    std::memcpy(spans.data(), data + sizeof(count), count * sizeof(Span));
  return spans;
}

/// Gathers every rank's recorded spans to rank 0, which adds them to the
/// tracer's merged set.  Collective: every rank of the communicator must
/// call it (run_node does, after its final barrier).  CommT needs rank(),
/// allreduce_max(double) and gather(root, data, bytes, out) — the shape
/// of both minimpi::Comm and an MPI wrapper.
template <typename CommT>
void gather_and_merge(CommT& comm) {
  Tracer& tracer = Tracer::instance();
  std::vector<std::uint8_t> mine =
      serialize_spans(tracer.collect_rank(comm.rank()));
  // Ranks trace different amounts; gather needs one fixed size, so pad
  // everyone to the largest buffer (the count prefix marks the real end).
  const auto max_bytes = static_cast<std::size_t>(
      comm.allreduce_max(static_cast<double>(mine.size())));
  mine.resize(max_bytes, 0);
  std::vector<std::uint8_t> all;
  comm.gather(0, mine.data(), mine.size(), &all);
  if (comm.rank() == 0) {
    for (std::size_t off = 0; off < all.size(); off += max_bytes)
      tracer.add_merged(deserialize_spans(all.data() + off, max_bytes));
  }
}

/// Serializes message records into the wire format [count, MsgRecord...].
inline std::vector<std::uint8_t> serialize_msgs(
    const std::vector<MsgRecord>& records) {
  std::vector<std::uint8_t> out(sizeof(std::uint64_t) +
                                records.size() * sizeof(MsgRecord));
  const std::uint64_t count = records.size();
  std::memcpy(out.data(), &count, sizeof(count));
  if (!records.empty())
    std::memcpy(out.data() + sizeof(count), records.data(),
                records.size() * sizeof(MsgRecord));
  return out;
}

/// Inverse of serialize_msgs; tolerates trailing padding bytes.
inline std::vector<MsgRecord> deserialize_msgs(const std::uint8_t* data,
                                               std::size_t bytes) {
  DPGEN_CHECK(bytes >= sizeof(std::uint64_t), "malformed msg buffer");
  std::uint64_t count = 0;
  std::memcpy(&count, data, sizeof(count));
  DPGEN_CHECK(bytes >= sizeof(count) + count * sizeof(MsgRecord),
              "msg buffer length mismatch");
  std::vector<MsgRecord> records(count);
  if (count)
    std::memcpy(records.data(), data + sizeof(count),
                count * sizeof(MsgRecord));
  return records;
}

/// gather_and_merge for message lifecycle records: each rank ships the
/// records it *received* (collect_rank filters on destination) to rank 0.
/// Collective, same contract as gather_and_merge.
template <typename CommT>
void gather_and_merge_msgs(CommT& comm) {
  MsgTracer& tracer = MsgTracer::instance();
  std::vector<std::uint8_t> mine =
      serialize_msgs(tracer.collect_rank(comm.rank()));
  const auto max_bytes = static_cast<std::size_t>(
      comm.allreduce_max(static_cast<double>(mine.size())));
  mine.resize(max_bytes, 0);
  std::vector<std::uint8_t> all;
  comm.gather(0, mine.data(), mine.size(), &all);
  if (comm.rank() == 0) {
    for (std::size_t off = 0; off < all.size(); off += max_bytes)
      tracer.add_merged(deserialize_msgs(all.data() + off, max_bytes));
  }
}

}  // namespace dpgen::obs
