#pragma once
// Continuous profiling: a per-thread sampling profiler plus hardware-counter
// attribution per executed tile, feeding the per-problem cost model the
// autotuner (ROADMAP item 2) consumes.
//
// Two measurement channels, both allocation-free on the hot path:
//
//   * Samples.  Each registered worker thread arms a POSIX timer
//     (CLOCK_MONOTONIC, SIGEV_THREAD_ID -> SIGPROF) at a configurable Hz.
//     The signal handler attributes the sample to the current ScopedSpan
//     phase stack — encoded in ONE atomic u32 per thread, 5 bits per frame
//     (phase + 1), pushed/popped by a single relaxed store each — so the
//     handler never sees a torn stack and needs no unwinder, no TLS lookup
//     (the per-thread state arrives in sigev_value.sival_ptr) and no
//     allocation: counts land in a fixed 64-slot open-addressing table.
//
//   * Counters.  Every worker owns an obs::HwCounterGroup (perf group or
//     CLOCK_THREAD_CPUTIME fallback; see hwcounters.hpp).  Reading it
//     around *every* tile would blow the < 3% overhead budget on tiny-tile
//     workloads, so tiles are counter-sampled with an adaptive stride:
//     every Kth tile is wrapped exactly (begin/end reads = an exact
//     measurement window), and K scales up for sub-2us tiles and back down
//     for long ones.  All-tile totals (tiles / cells / wall ns) ride the
//     driver's existing per-tile clock pair, so the derived cycles-per-cell
//     is an honest ratio of sampled counters over sampled cells.
//
// Results flush as a schema-stable dpgen.profile.v1 document
// (tools/profile_schema.json): phase-bucketed sample histograms, folded
// stacks ("rank0;send;pack N") for the flame view, per-thread sample
// counts and per-problem-family derived metrics (IPC, cycles/cell,
// misses/cell) against the Ehrhart-predicted cell count.
//
// Wiring (the same four ways every obs layer ships): EngineOptions::
// {profile_path,profile_hz}, generated programs' --profile=/--profile-hz=,
// sim synthetic profiles from DES time, and dpgen-top live IPC /
// cycles-per-cell columns via Profiler::rank_totals.

#include <array>
#include <atomic>
#include <cstdint>
#include <ctime>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/hwcounters.hpp"
#include "obs/trace.hpp"
#include "support/json.hpp"
#include "support/vec.hpp"

namespace dpgen::obs {

struct ProfileOptions {
  /// Sampling frequency per thread (clamped to [1, 10000]).
  double hz = 97.0;
  /// Skip the perf probe and run every thread's counter group in
  /// CLOCK_THREAD_CPUTIME mode (the forced-fallback test knob; the same
  /// path runs automatically when perf events are unavailable).
  bool force_cputime = false;
  std::string source = "engine";  ///< "engine" | "generated" | "sim"
  std::string problem;
  IntVec params;
};

/// Per-problem-family cost-model row.  One engine/generated run profiles
/// one family; the analyzer's cost table merges rows across documents.
struct ProfileFamily {
  std::string name;
  long long tiles = 0;          ///< tiles executed (all, not just sampled)
  long long cells = 0;          ///< cells of those tiles
  double exec_seconds = 0.0;    ///< wall time inside execute_tile, all tiles
  long long sampled_tiles = 0;  ///< tiles wrapped in exact counter windows
  long long sampled_cells = 0;
  double sampled_exec_seconds = 0.0;
  std::uint64_t cycles = 0;  ///< thread CPU ns in cputime mode (see doc)
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t branch_misses = 0;
  /// Ehrhart-predicted cell total for the run's parameters (the cost
  /// table's "predicted" column); set by the caller after stop().
  double predicted_cells = 0.0;

  double ipc() const {
    return cycles > 0 && instructions > 0
               ? static_cast<double>(instructions) /
                     static_cast<double>(cycles)
               : 0.0;
  }
  double cycles_per_cell() const {
    return sampled_cells > 0
               ? static_cast<double>(cycles) /
                     static_cast<double>(sampled_cells)
               : 0.0;
  }
  double misses_per_cell() const {
    return sampled_cells > 0
               ? static_cast<double>(llc_misses) /
                     static_cast<double>(sampled_cells)
               : 0.0;
  }
};

struct ProfileThreadSummary {
  int rank = -1;
  int thread = 0;
  long long samples = 0;
};

/// One folded-stack line: semicolon-joined frames rooted at the rank
/// ("rank0;send;pack") and the sample count attributed to exactly that
/// stack (flamegraph-style folded format).
struct FoldedStack {
  std::string stack;
  long long samples = 0;
};

inline constexpr int kProfilePhases = static_cast<int>(Phase::kPhaseCount);

/// A dpgen.profile.v1 document (in-memory form).
struct ProfileDoc {
  std::string source = "engine";
  std::string problem;
  IntVec params;
  double hz = 0.0;
  std::string counters = "cputime";  ///< "perf" | "cputime" | "sim"
  std::string sampler = "timer";     ///< "timer" | "synthetic"
  int nranks = 0;
  long long samples_total = 0;
  long long samples_untraced = 0;  ///< taken outside any ScopedSpan frame
  long long samples_dropped = 0;   ///< sample-table overflow
  /// Samples whose top-of-stack frame was the given phase (self time).
  std::array<long long, kProfilePhases> phase_samples{};
  std::vector<FoldedStack> folded;
  std::vector<ProfileThreadSummary> threads;
  std::vector<ProfileFamily> families;
};

/// Renders / writes / parses the schema-stable document.
std::string profile_json(const ProfileDoc& doc);
void write_profile_json(const std::string& path, const ProfileDoc& doc);
ProfileDoc parse_profile_doc(const json::Value& doc);

/// Self-contained HTML icicle (flame) view of the folded stacks, one
/// icicle per rank, in the series_svg visual style (inline SVG, no JS).
std::string profile_flame_html(const ProfileDoc& doc);

namespace profdetail {

/// Everything the signal handler and the tile hot path touch for one
/// thread.  Single logical writer per field (the owning thread or its own
/// handler — SIGPROF is blocked while the handler runs, so the handler
/// never interrupts itself); cross-thread readers (rank_totals, final
/// collection) use relaxed loads and tolerate slight skew.
struct ThreadProfState {
  int rank = -1;
  int thread = 0;

  // ---- sampling (written by the signal handler) ----
  std::atomic<std::uint32_t> stack{0};  ///< encoded phase stack (trace.hpp)
  std::atomic<std::uint64_t> samples{0};
  std::atomic<std::uint64_t> untraced{0};
  std::atomic<std::uint64_t> dropped{0};
  static constexpr int kSlots = 64;  ///< distinct stacks per thread (power of 2)
  struct SampleSlot {
    std::atomic<std::uint32_t> key{0};  ///< encoded stack; 0 = empty slot
    std::atomic<std::uint32_t> count{0};
  };
  SampleSlot table[kSlots];

  // ---- timer ----
  bool timer_armed = false;
  timer_t timer_id{};

  // ---- tile counter sampling (written by the owning worker thread) ----
  HwCounterGroup counters;
  bool counters_open = false;
  HwCounterValues window_begin{};
  int stride = 1;     ///< measure every stride-th tile
  int countdown = 1;  ///< tiles until the next measured window
  std::atomic<std::uint64_t> sampled_tiles{0};
  std::atomic<std::uint64_t> sampled_cells{0};
  std::atomic<std::uint64_t> sampled_exec_ns{0};
  std::atomic<std::uint64_t> cycles{0};
  std::atomic<std::uint64_t> instructions{0};
  std::atomic<std::uint64_t> llc_misses{0};
  std::atomic<std::uint64_t> branch_misses{0};
  std::atomic<std::uint64_t> all_tiles{0};
  std::atomic<std::uint64_t> all_cells{0};
  std::atomic<std::uint64_t> all_exec_ns{0};
};

extern thread_local ThreadProfState* t_state;

/// Tile windows shorter than this adapt the stride up (toward
/// kMaxStride); longer than kLongTileNs adapt it back down toward 1.
inline constexpr std::int64_t kShortTileNs = 2000;
inline constexpr std::int64_t kLongTileNs = 50000;
inline constexpr int kMaxStride = 64;

}  // namespace profdetail

/// Process-wide sampling profiler.  One active run at a time (like the
/// Tracer); start() arms it, worker threads register with thread_enter /
/// thread_exit, stop() disarms and aggregates the document.
class Profiler {
 public:
  static Profiler& instance();

  /// True while a profiled run is active (one relaxed load; the driver
  /// checks RunOptions::profile instead on the per-tile path).
  bool active() const { return active_.load(std::memory_order_relaxed); }

  /// True when the active run reads real perf events ("perf" mode).
  bool perf_mode() const { return perf_mode_; }

  /// Arms the profiler: decides the counter mode once (perf probe unless
  /// forced to cputime), installs the SIGPROF handler, enables ScopedSpan
  /// frame maintenance.  Throws if a run is already active.
  void start(const ProfileOptions& opt);

  /// Disarms and aggregates everything the run's threads recorded into a
  /// dpgen.profile.v1 document.  Threads should have exited (thread_exit);
  /// stragglers' timers are disarmed here as a safety net.
  ProfileDoc stop();

  /// Registers the calling thread: opens its counter group, arms its
  /// sampling timer, publishes its state for the signal handler.  No-op
  /// when the profiler is inactive.
  void thread_enter(int rank, int thread);
  /// Unregisters the calling thread (disarms its timer, closes counters).
  void thread_exit();

  /// Live per-rank counter totals for dpgen-top's IPC / cycles-per-cell
  /// columns (relaxed reads; takes the registry mutex, so call it at
  /// monitor cadence, never per tile).
  struct RankTotals {
    std::uint64_t samples = 0;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t sampled_cells = 0;
    std::uint64_t sampled_exec_ns = 0;
  };
  RankTotals rank_totals(int rank) const;

  // ---- per-tile hot path (driver; call only when RunOptions::profile) ----

  /// Opens an exact counter window when this tile is due for measurement;
  /// returns whether it did (pass the result to tile_end).
  static bool tile_begin() {
    using namespace profdetail;
    ThreadProfState* st = t_state;
    if (!st || !st->counters_open) return false;
    if (--st->countdown > 0) return false;
    st->counters.read(&st->window_begin);
    return true;
  }

  /// Closes the window (when `sampled`) and folds this tile into the
  /// all-tile totals.  `exec_ns` is the driver's existing per-tile clock
  /// pair — no extra clock reads on the unsampled path.
  static void tile_end(bool sampled, long long cells, std::int64_t exec_ns) {
    using namespace profdetail;
    ThreadProfState* st = t_state;
    if (!st) return;
    st->all_tiles.fetch_add(1, std::memory_order_relaxed);
    st->all_cells.fetch_add(static_cast<std::uint64_t>(cells > 0 ? cells : 0),
                            std::memory_order_relaxed);
    st->all_exec_ns.fetch_add(
        static_cast<std::uint64_t>(exec_ns > 0 ? exec_ns : 0),
        std::memory_order_relaxed);
    if (!sampled) return;
    HwCounterValues end;
    st->counters.read(&end);
    st->cycles.fetch_add(end.cycles - st->window_begin.cycles,
                         std::memory_order_relaxed);
    st->instructions.fetch_add(
        end.instructions - st->window_begin.instructions,
        std::memory_order_relaxed);
    st->llc_misses.fetch_add(end.llc_misses - st->window_begin.llc_misses,
                             std::memory_order_relaxed);
    st->branch_misses.fetch_add(
        end.branch_misses - st->window_begin.branch_misses,
        std::memory_order_relaxed);
    st->sampled_tiles.fetch_add(1, std::memory_order_relaxed);
    st->sampled_cells.fetch_add(
        static_cast<std::uint64_t>(cells > 0 ? cells : 0),
        std::memory_order_relaxed);
    st->sampled_exec_ns.fetch_add(
        static_cast<std::uint64_t>(exec_ns > 0 ? exec_ns : 0),
        std::memory_order_relaxed);
    // Adapt: two read syscalls per window are noise for a 50us tile but
    // real overhead for a sub-2us one, so short tiles stretch the stride
    // (amortising the window over up to kMaxStride tiles) and long tiles
    // snap it back to every-tile coverage.
    if (exec_ns < kShortTileNs) {
      if (st->stride < kMaxStride) st->stride *= 2;
    } else if (exec_ns > kLongTileNs) {
      st->stride = st->stride > 1 ? st->stride / 2 : 1;
    }
    st->countdown = st->stride;
  }

 private:
  Profiler() = default;

  std::atomic<bool> active_{false};
  bool perf_mode_ = false;
  ProfileOptions opt_;
  mutable std::mutex mu_;  ///< guards states_ growth and stop()
  std::vector<std::unique_ptr<profdetail::ThreadProfState>> states_;
};

/// RAII worker-thread registration for the driver: enters on construction
/// when `enabled` (RunOptions::profile) and the profiler is active, exits
/// on destruction.
class ProfileThreadScope {
 public:
  ProfileThreadScope(bool enabled, int rank, int thread) {
    if (enabled && Profiler::instance().active()) {
      Profiler::instance().thread_enter(rank, thread);
      entered_ = true;
    }
  }
  ~ProfileThreadScope() {
    if (entered_) Profiler::instance().thread_exit();
  }
  ProfileThreadScope(const ProfileThreadScope&) = delete;
  ProfileThreadScope& operator=(const ProfileThreadScope&) = delete;

 private:
  bool entered_ = false;
};

/// Manual frame push for phases that are not lexically scoped (the
/// driver's idle stretch spans loop iterations).  Returns whether a frame
/// was pushed; pass the result to profile_frame_pop.
inline bool profile_frame_push(Phase p) {
  if (!profdetail::frames_on()) return false;
  profdetail::push_frame(p);
  return true;
}
inline void profile_frame_pop(bool pushed) {
  if (pushed) profdetail::pop_frame();
}

}  // namespace dpgen::obs
