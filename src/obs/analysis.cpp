#include "obs/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "support/error.hpp"
#include "support/str.hpp"

namespace dpgen::obs {

namespace {

constexpr double kNsPerSec = 1e9;

/// Gap attribution resolves nested spans by priority: when two spans
/// cover the same instant on one track, the more specific cause wins —
/// pack inside send counts as pack, the poll loop inside a blocked send
/// counts as blocked_send, polls inside an idle stretch count as idle.
constexpr Phase kAttributionOrder[] = {
    Phase::kTileExecute, Phase::kPack,    Phase::kUnpack,
    Phase::kBlockedSend, Phase::kIdle,    Phase::kSend,
    Phase::kPoll,        Phase::kBarrier, Phase::kInitScan,
    Phase::kLoadBalance, Phase::kGather,
};

double* bucket_of(PhaseBreakdown& b, Phase p) {
  switch (p) {
    case Phase::kTileExecute: return &b.compute;
    case Phase::kUnpack: return &b.unpack;
    case Phase::kPack: return &b.pack;
    case Phase::kSend: return &b.send;
    case Phase::kBlockedSend: return &b.blocked_send;
    case Phase::kPoll: return &b.poll;
    case Phase::kIdle: return &b.idle;
    case Phase::kBarrier: return &b.barrier;
    default: return &b.other;
  }
}

struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};

/// Per-phase sorted, (near) non-overlapping intervals of one rank/thread
/// track.
struct Track {
  int rank = 0;
  int thread = 0;
  bool seen = false;
  std::int64_t first_start = 0;
  std::int64_t last_end = 0;
  std::vector<Interval> by_phase[static_cast<int>(Phase::kPhaseCount)];
};

/// Covers `uncovered` with `spans` (sorted by lo): moves the overlapped
/// nanoseconds into *covered_ns and returns the still-uncovered rest.
std::vector<Interval> subtract_covered(const std::vector<Interval>& spans,
                                       std::vector<Interval> uncovered,
                                       std::int64_t* covered_ns) {
  if (spans.empty() || uncovered.empty()) return uncovered;
  std::vector<Interval> rest;
  rest.reserve(uncovered.size());
  for (const Interval& u : uncovered) {
    auto it = std::lower_bound(
        spans.begin(), spans.end(), u.lo,
        [](const Interval& s, std::int64_t lo) { return s.lo < lo; });
    if (it != spans.begin() && std::prev(it)->hi > u.lo) --it;
    std::int64_t cur = u.lo;
    for (; it != spans.end() && it->lo < u.hi; ++it) {
      std::int64_t s = std::max(cur, it->lo);
      std::int64_t e = std::min(u.hi, it->hi);
      if (e <= s) continue;
      if (s > cur) rest.push_back({cur, s});
      *covered_ns += e - s;
      cur = e;
    }
    if (cur < u.hi) rest.push_back({cur, u.hi});
  }
  return rest;
}

/// Attributes the window [lo, hi) of `track` across the phase buckets;
/// whatever no span covers lands in `other`, so the buckets gain exactly
/// hi - lo seconds in total.
void attribute_window(const Track& track, std::int64_t lo, std::int64_t hi,
                      PhaseBreakdown* out) {
  if (hi <= lo) return;
  std::vector<Interval> uncovered{{lo, hi}};
  for (Phase p : kAttributionOrder) {
    std::int64_t covered = 0;
    uncovered = subtract_covered(track.by_phase[static_cast<int>(p)],
                                 std::move(uncovered), &covered);
    *bucket_of(*out, p) += static_cast<double>(covered) / kNsPerSec;
    if (uncovered.empty()) break;
  }
  for (const Interval& u : uncovered)
    out->other += static_cast<double>(u.hi - u.lo) / kNsPerSec;
}

IntVec span_tile(const Span& s) {
  IntVec t(static_cast<std::size_t>(s.ncoord));
  for (int k = 0; k < s.ncoord; ++k)
    t[static_cast<std::size_t>(k)] =
        static_cast<Int>(s.coord[static_cast<std::size_t>(k)]);
  return t;
}

/// Finite-checked double for JSON output (NaN/inf are not valid JSON).
std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string json_vec(const IntVec& v) {
  std::string out = "[";
  for (std::size_t k = 0; k < v.size(); ++k)
    out += cat(k ? "," : "", v[k]);
  return out + "]";
}

std::string json_matrix(const std::vector<std::vector<std::uint64_t>>& m) {
  std::string out = "[";
  for (std::size_t r = 0; r < m.size(); ++r) {
    out += cat(r ? "," : "", "[");
    for (std::size_t c = 0; c < m[r].size(); ++c)
      out += cat(c ? "," : "", m[r][c]);
    out += "]";
  }
  return out + "]";
}

std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += cat("\\", c);
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out + "\"";
}

std::string json_breakdown(const PhaseBreakdown& b) {
  return cat("{\"compute\":", num(b.compute), ",\"unpack\":", num(b.unpack),
             ",\"pack\":", num(b.pack), ",\"send\":", num(b.send),
             ",\"blocked_send\":", num(b.blocked_send),
             ",\"poll\":", num(b.poll), ",\"idle\":", num(b.idle),
             ",\"barrier\":", num(b.barrier), ",\"other\":", num(b.other),
             "}");
}

std::string pct(double part, double whole) {
  return whole > 0 ? cat(num(100.0 * part / whole), "%") : "-";
}

}  // namespace

PhaseBreakdown& PhaseBreakdown::operator+=(const PhaseBreakdown& o) {
  compute += o.compute;
  unpack += o.unpack;
  pack += o.pack;
  send += o.send;
  blocked_send += o.blocked_send;
  poll += o.poll;
  idle += o.idle;
  barrier += o.barrier;
  other += o.other;
  return *this;
}

AnalysisReport analyze(const AnalysisInput& input) {
  AnalysisReport report;
  report.source = input.source;
  report.problem = input.problem;
  report.params = input.params;
  report.passes = input.passes;
  report.spans_dropped = input.spans_dropped;
  if (input.spans_dropped > 0)
    report.warnings.push_back(
        cat(input.spans_dropped,
            " spans were dropped (ring-buffer overflow): the timeline is "
            "incomplete and every attribution below is biased"));

  // ---- index the spans: per-track phase intervals + executed tiles ------
  std::map<std::pair<int, int>, Track> tracks;
  std::unordered_map<IntVec, std::size_t, IntVecHash> exec_by_tile;
  std::vector<const Span*> exec_spans;
  int max_rank = -1;
  bool have_window = false;
  std::int64_t run_start = 0;
  for (const Span& s : input.spans) {
    max_rank = std::max(max_rank, static_cast<int>(s.rank));
    if (s.rank < 0) continue;  // setup spans sit outside the run window
    if (!have_window || s.start_ns < run_start) run_start = s.start_ns;
    have_window = true;
    Track& track = tracks[{s.rank, s.thread}];
    if (!track.seen) {
      track.seen = true;
      track.rank = s.rank;
      track.thread = s.thread;
      track.first_start = s.start_ns;
      track.last_end = s.end_ns;
    }
    track.first_start = std::min(track.first_start, s.start_ns);
    track.last_end = std::max(track.last_end, s.end_ns);
    track.by_phase[static_cast<int>(s.phase)].push_back(
        {s.start_ns, s.end_ns});
    if (s.phase == Phase::kTileExecute) {
      exec_spans.push_back(&s);
      auto [it, inserted] =
          exec_by_tile.emplace(span_tile(s), exec_spans.size() - 1);
      // A tile executes once per run; on duplicates keep the later finish
      // (re-ingested traces may carry stale runs).
      if (!inserted && s.end_ns > exec_spans[it->second]->end_ns)
        it->second = exec_spans.size() - 1;
    }
  }
  for (auto& [key, track] : tracks)
    for (auto& phase_spans : track.by_phase)
      std::sort(phase_spans.begin(), phase_spans.end(),
                [](const Interval& a, const Interval& b) {
                  return a.lo < b.lo;
                });

  report.nranks = input.nranks > 0 ? input.nranks : max_rank + 1;
  if (report.nranks <= 0) {
    report.warnings.push_back("no in-rank spans: nothing to analyze");
    return report;
  }

  // ---- (1) critical path ------------------------------------------------
  if (!exec_spans.empty()) {
    const Span* terminal = exec_spans.front();
    for (const Span* s : exec_spans)
      if (s->end_ns > terminal->end_ns) terminal = s;
    report.makespan_s =
        static_cast<double>(terminal->end_ns - run_start) / kNsPerSec;

    // Offsets are applied in span-coordinate space; spans truncate tile
    // coordinates past kMaxSpanDims, in which case the reconstruction is
    // best-effort.
    const std::size_t span_dim = span_tile(*terminal).size();
    std::vector<IntVec> offsets;
    bool truncated = false;
    for (const IntVec& off : input.edge_offsets) {
      if (off.size() < span_dim) continue;
      offsets.emplace_back(off.begin(),
                           off.begin() + static_cast<std::ptrdiff_t>(span_dim));
      truncated = truncated || off.size() > span_dim;
    }
    if (truncated)
      report.warnings.push_back(
          "tile coordinates were truncated in the trace; the critical "
          "path is reconstructed from the leading dimensions only");
    if (offsets.empty() && !exec_spans.empty() &&
        input.edge_offsets.empty())
      report.warnings.push_back(
          "no tile-dependency offsets supplied: the critical path "
          "degenerates to the last-finishing tile");

    std::vector<const Span*> path_rev{terminal};
    std::unordered_set<IntVec, IntVecHash> visited{span_tile(*terminal)};
    IntVec cur = span_tile(*terminal);
    while (true) {
      const Span* best = nullptr;
      IntVec best_tile;
      for (const IntVec& off : offsets) {
        IntVec pred = vec_add(cur, off);
        auto it = exec_by_tile.find(pred);
        if (it == exec_by_tile.end() || visited.count(pred)) continue;
        const Span* cand = exec_spans[it->second];
        if (!best || cand->end_ns > best->end_ns) {
          best = cand;
          best_tile = pred;
        }
      }
      if (!best) break;
      path_rev.push_back(best);
      visited.insert(best_tile);
      cur = std::move(best_tile);
    }
    std::reverse(path_rev.begin(), path_rev.end());

    // Attribute [run_start, terminal end): each step contributes its
    // execute time plus the attributed gap before it, so the buckets sum
    // to the makespan exactly (negative gaps from clock anomalies clamp).
    std::int64_t prev_end = run_start;
    bool clamped = false;
    for (const Span* s : path_rev) {
      CriticalPathStep step;
      step.tile = span_tile(*s);
      step.rank = s->rank;
      step.thread = s->thread;
      step.start_s =
          static_cast<double>(s->start_ns - run_start) / kNsPerSec;
      step.end_s = static_cast<double>(s->end_ns - run_start) / kNsPerSec;
      step.gap_before_s =
          static_cast<double>(std::max<std::int64_t>(0, s->start_ns -
                                                            prev_end)) /
          kNsPerSec;
      if (s->start_ns < prev_end) clamped = true;
      auto it = tracks.find({s->rank, s->thread});
      if (it != tracks.end())
        attribute_window(it->second, prev_end, s->start_ns,
                         &report.path_attribution);
      report.path_attribution.compute +=
          static_cast<double>(s->end_ns - std::max(s->start_ns, prev_end)) /
          kNsPerSec;
      prev_end = std::max(prev_end, s->end_ns);
      report.critical_path.push_back(std::move(step));
    }
    if (clamped)
      report.warnings.push_back(
          "overlapping execute spans on the critical path (clock "
          "anomaly): gap attribution was clamped");
    report.path_coverage =
        report.makespan_s > 0
            ? report.path_attribution.total() / report.makespan_s
            : 1.0;
  } else {
    report.warnings.push_back(
        "no tile_execute spans: was the run traced?");
  }

  // ---- (2) load-balance audit -------------------------------------------
  report.ranks.resize(static_cast<std::size_t>(report.nranks));
  for (int r = 0; r < report.nranks; ++r)
    report.ranks[static_cast<std::size_t>(r)].rank = r;
  for (const auto& [key, track] : tracks) {
    if (track.rank >= report.nranks) continue;
    RankAudit& audit = report.ranks[static_cast<std::size_t>(track.rank)];
    audit.thread_seconds +=
        static_cast<double>(track.last_end - track.first_start) / kNsPerSec;
    attribute_window(track, track.first_start, track.last_end,
                     &audit.phases);
    for (const Interval& e :
         track.by_phase[static_cast<int>(Phase::kTileExecute)]) {
      audit.measured_compute_s +=
          static_cast<double>(e.hi - e.lo) / kNsPerSec;
      ++audit.tiles;
    }
  }
  // Rank wall time spans all of the rank's threads, not just the longest
  // track: first start to last end across the rank.
  std::map<int, Interval> rank_window;
  for (const auto& [key, track] : tracks) {
    auto [it, inserted] =
        rank_window.emplace(track.rank,
                            Interval{track.first_start, track.last_end});
    if (!inserted) {
      it->second.lo = std::min(it->second.lo, track.first_start);
      it->second.hi = std::max(it->second.hi, track.last_end);
    }
  }
  for (const auto& [rank, window] : rank_window)
    if (rank < report.nranks)
      report.ranks[static_cast<std::size_t>(rank)].wall_s =
          static_cast<double>(window.hi - window.lo) / kNsPerSec;

  double total_predicted = 0.0, total_measured = 0.0;
  double max_predicted = 0.0, max_measured = 0.0;
  for (int r = 0; r < report.nranks; ++r) {
    RankAudit& audit = report.ranks[static_cast<std::size_t>(r)];
    if (static_cast<std::size_t>(r) < input.predicted_work.size())
      audit.predicted_work = input.predicted_work[static_cast<std::size_t>(r)];
    total_predicted += audit.predicted_work;
    total_measured += audit.measured_compute_s;
    max_predicted = std::max(max_predicted, audit.predicted_work);
    max_measured = std::max(max_measured, audit.measured_compute_s);
  }
  for (RankAudit& audit : report.ranks) {
    if (total_predicted > 0)
      audit.predicted_share = audit.predicted_work / total_predicted;
    if (total_measured > 0)
      audit.measured_share = audit.measured_compute_s / total_measured;
    audit.share_error = audit.measured_share - audit.predicted_share;
  }
  if (total_predicted > 0)
    report.predicted_imbalance =
        max_predicted / (total_predicted / report.nranks);
  if (total_measured > 0)
    report.measured_imbalance =
        max_measured / (total_measured / report.nranks);
  if (input.predicted_work.empty())
    report.warnings.push_back(
        "no predicted per-rank work supplied: the Ehrhart audit reports "
        "measured shares only");

  // ---- (3) communication matrix -----------------------------------------
  report.bytes_matrix = input.bytes_matrix;
  report.messages_matrix = input.messages_matrix;
  for (const auto& row : report.bytes_matrix)
    for (std::uint64_t v : row) report.total_bytes += v;
  for (const auto& row : report.messages_matrix)
    for (std::uint64_t v : row) report.total_messages += v;

  // ---- (4) measured message path ------------------------------------------
  report.msg_records = input.msg_records.size();
  report.msg_records_dropped = input.msg_records_dropped;
  if (!input.msg_records.empty()) {
    report.queueing = decompose(input.msg_records);
    if (input.msg_records_dropped > 0)
      report.warnings.push_back(
          cat(input.msg_records_dropped,
              " message records were dropped (ring overflow): the measured "
              "path and conservation accounting are incomplete"));
  }
  if (!input.msg_records.empty() && !exec_spans.empty()) {
    const Span* terminal = exec_spans.front();
    for (const Span* s : exec_spans)
      if (s->end_ns > terminal->end_ns) terminal = s;
    const std::size_t span_dim = span_tile(*terminal).size();
    // Offsets indexed by edge id, in span-coordinate space (empty entry =
    // that edge is unusable for the walk).
    std::vector<IntVec> edge_off(input.edge_offsets.size());
    for (std::size_t e = 0; e < input.edge_offsets.size(); ++e)
      if (input.edge_offsets[e].size() >= span_dim)
        edge_off[e].assign(
            input.edge_offsets[e].begin(),
            input.edge_offsets[e].begin() +
                static_cast<std::ptrdiff_t>(span_dim));
    // Delivered records grouped by consumer tile; arrival() resolves one
    // (consumer, edge) dependency to its latest delivery stamp.
    std::unordered_map<IntVec, std::vector<const MsgRecord*>, IntVecHash>
        delivered;
    for (const MsgRecord& m : input.msg_records) {
      IntVec c(static_cast<std::size_t>(m.ncoord));
      for (std::uint8_t k = 0; k < m.ncoord; ++k)
        c[k] = static_cast<Int>(m.consumer[k]);
      if (c.size() == span_dim) delivered[c].push_back(&m);
    }
    auto arrival = [&](const IntVec& consumer,
                       int edge) -> const MsgRecord* {
      auto it = delivered.find(consumer);
      if (it == delivered.end()) return nullptr;
      const MsgRecord* best = nullptr;
      for (const MsgRecord* m : it->second)
        if (m->edge == edge && (!best || m->deliver_ns > best->deliver_ns))
          best = m;
      return best;
    };

    // Same walk as (1), but the binding predecessor is the dependency
    // that *arrived* last: remote edges at their measured delivery,
    // local edges at the producer's execute end.
    std::vector<const Span*> path_rev{terminal};
    std::unordered_set<IntVec, IntVecHash> visited{span_tile(*terminal)};
    IntVec cur = span_tile(*terminal);
    while (true) {
      const Span* best = nullptr;
      IntVec best_tile;
      std::int64_t best_arrival = 0;
      for (std::size_t e = 0; e < edge_off.size(); ++e) {
        if (edge_off[e].empty()) continue;
        IntVec pred = vec_add(cur, edge_off[e]);
        auto it = exec_by_tile.find(pred);
        if (it == exec_by_tile.end() || visited.count(pred)) continue;
        const Span* cand = exec_spans[it->second];
        const MsgRecord* rec = arrival(cur, static_cast<int>(e));
        const std::int64_t t = rec ? rec->deliver_ns : cand->end_ns;
        if (!best || t > best_arrival) {
          best = cand;
          best_tile = pred;
          best_arrival = t;
        }
      }
      if (!best) break;
      path_rev.push_back(best);
      visited.insert(best_tile);
      cur = std::move(best_tile);
    }
    std::reverse(path_rev.begin(), path_rev.end());

    // Identical attribution mechanics to (1), so the two paths' phase
    // shares are directly comparable.
    std::int64_t prev_end = run_start;
    for (const Span* s : path_rev) {
      CriticalPathStep step;
      step.tile = span_tile(*s);
      step.rank = s->rank;
      step.thread = s->thread;
      step.start_s =
          static_cast<double>(s->start_ns - run_start) / kNsPerSec;
      step.end_s = static_cast<double>(s->end_ns - run_start) / kNsPerSec;
      step.gap_before_s =
          static_cast<double>(std::max<std::int64_t>(0, s->start_ns -
                                                            prev_end)) /
          kNsPerSec;
      auto it = tracks.find({s->rank, s->thread});
      if (it != tracks.end())
        attribute_window(it->second, prev_end, s->start_ns,
                         &report.measured_attribution);
      report.measured_attribution.compute +=
          static_cast<double>(s->end_ns - std::max(s->start_ns, prev_end)) /
          kNsPerSec;
      prev_end = std::max(prev_end, s->end_ns);
      report.measured_path.push_back(std::move(step));
    }
    report.measured_coverage =
        report.makespan_s > 0
            ? report.measured_attribution.total() / report.makespan_s
            : 1.0;
    report.measured_path_valid = true;
  }

  return report;
}

std::string report_json(const AnalysisReport& r) {
  std::string out = cat(
      "{\"schema\":\"dpgen.report.v1\"",
      ",\"source\":", json_string(r.source),
      ",\"problem\":", json_string(r.problem),
      ",\"params\":", json_vec(r.params), ",\"passes\":[");
  for (std::size_t i = 0; i < r.passes.size(); ++i)
    out += cat(i ? "," : "", json_string(r.passes[i]));
  out += cat("],\"nranks\":", r.nranks,
             ",\"makespan_seconds\":", num(r.makespan_s),
             ",\"spans_dropped\":", r.spans_dropped, ",\"warnings\":[");
  for (std::size_t i = 0; i < r.warnings.size(); ++i)
    out += cat(i ? "," : "", json_string(r.warnings[i]));
  out += "],\n\"critical_path\":{\"tiles\":[";
  for (std::size_t i = 0; i < r.critical_path.size(); ++i) {
    const CriticalPathStep& s = r.critical_path[i];
    out += cat(i ? ",\n" : "", "{\"tile\":", json_vec(s.tile),
               ",\"rank\":", s.rank, ",\"thread\":", s.thread,
               ",\"start_s\":", num(s.start_s), ",\"end_s\":", num(s.end_s),
               ",\"gap_before_s\":", num(s.gap_before_s), "}");
  }
  out += cat("],\"length\":", r.critical_path.size(),
             ",\"attribution_seconds\":", json_breakdown(r.path_attribution),
             ",\"coverage\":", num(r.path_coverage), "},\n\"load_balance\":{",
             "\"predicted_imbalance\":", num(r.predicted_imbalance),
             ",\"measured_imbalance\":", num(r.measured_imbalance),
             ",\"ranks\":[");
  for (std::size_t i = 0; i < r.ranks.size(); ++i) {
    const RankAudit& a = r.ranks[i];
    out += cat(i ? ",\n" : "", "{\"rank\":", a.rank, ",\"tiles\":", a.tiles,
               ",\"predicted_work\":", num(a.predicted_work),
               ",\"predicted_share\":", num(a.predicted_share),
               ",\"measured_compute_s\":", num(a.measured_compute_s),
               ",\"measured_share\":", num(a.measured_share),
               ",\"share_error\":", num(a.share_error),
               ",\"wall_s\":", num(a.wall_s),
               ",\"thread_seconds\":", num(a.thread_seconds),
               ",\"phases_seconds\":", json_breakdown(a.phases), "}");
  }
  out += cat("]},\n\"comm_matrix\":{\"bytes\":", json_matrix(r.bytes_matrix),
             ",\"messages\":", json_matrix(r.messages_matrix),
             ",\"total_bytes\":", r.total_bytes,
             ",\"total_messages\":", r.total_messages, "}");
  if (r.msg_records > 0 || r.measured_path_valid) {
    // Additive: pre-msgtrace consumers never see this object.
    const MsgQueueing& q = r.queueing;
    auto secs = [](std::int64_t ns) {
      return num(static_cast<double>(ns) / 1e9);
    };
    out += cat(",\n\"msgtrace\":{\"messages\":", r.msg_records,
               ",\"records_dropped\":", r.msg_records_dropped,
               ",\"queueing_seconds\":{\"pack\":", secs(q.pack_ns),
               ",\"sender_blocked\":", secs(q.sender_blocked_ns),
               ",\"queue\":", secs(q.queue_ns),
               ",\"unpack_wait\":", secs(q.unpack_wait_ns),
               ",\"dispatch\":", secs(q.dispatch_ns),
               ",\"end_to_end\":", secs(q.total()),
               "},\"measured_path\":{\"tiles\":[");
    for (std::size_t i = 0; i < r.measured_path.size(); ++i) {
      const CriticalPathStep& s = r.measured_path[i];
      out += cat(i ? ",\n" : "", "{\"tile\":", json_vec(s.tile),
                 ",\"rank\":", s.rank, ",\"thread\":", s.thread,
                 ",\"start_s\":", num(s.start_s), ",\"end_s\":", num(s.end_s),
                 ",\"gap_before_s\":", num(s.gap_before_s), "}");
    }
    out += cat("],\"length\":", r.measured_path.size(),
               ",\"attribution_seconds\":",
               json_breakdown(r.measured_attribution),
               ",\"coverage\":", num(r.measured_coverage),
               ",\"valid\":", r.measured_path_valid ? "true" : "false", "}}");
  }
  out += "}\n";
  return out;
}

std::string report_text(const AnalysisReport& r) {
  std::string out =
      cat("dpgen performance report  [", r.source.empty() ? "?" : r.source,
          r.problem.empty() ? "" : cat(": ", r.problem), "]");
  if (!r.params.empty()) out += cat("  params ", vec_to_string(r.params));
  out += cat("\nranks: ", r.nranks,
             "   makespan: ", num(r.makespan_s * 1e3), " ms\n");
  if (!r.passes.empty())
    out += cat("codegen passes: ", join(r.passes, ","), "\n");
  if (r.spans_dropped > 0)
    out += cat("WARNING: ", r.spans_dropped,
               " spans dropped — timeline incomplete, attribution biased\n");
  for (const std::string& w : r.warnings)
    if (r.spans_dropped == 0 || w.find("dropped") == std::string::npos)
      out += cat("warning: ", w, "\n");

  const PhaseBreakdown& b = r.path_attribution;
  out += cat("\ncritical path: ", r.critical_path.size(),
             " tiles, attribution covers ", pct(r.path_coverage, 1.0),
             " of the makespan\n");
  auto row = [&](const char* name, double v) {
    if (v <= 0) return;
    out += cat("  ", name, " ", num(v * 1e3), " ms  (",
               pct(v, r.makespan_s), ")\n");
  };
  row("compute      ", b.compute);
  row("unpack       ", b.unpack);
  row("pack         ", b.pack);
  row("send         ", b.send);
  row("blocked_send ", b.blocked_send);
  row("poll         ", b.poll);
  row("idle         ", b.idle);
  row("barrier      ", b.barrier);
  row("other        ", b.other);

  out += "\nload balance (Ehrhart-predicted vs measured):\n";
  out += "  rank  tiles  pred_share  meas_share  error      compute_s\n";
  for (const RankAudit& a : r.ranks) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %4d  %5lld  %10.4f  %10.4f  %+9.4f  %9.6f\n", a.rank,
                  a.tiles, a.predicted_share, a.measured_share,
                  a.share_error, a.measured_compute_s);
    out += line;
  }
  out += cat("  predicted imbalance ", num(r.predicted_imbalance),
             ", measured ", num(r.measured_imbalance), "\n");

  if (!r.bytes_matrix.empty()) {
    out += cat("\ncomm matrix, bytes (row = source rank): total ",
               r.total_bytes, " bytes / ", r.total_messages,
               " messages\n");
    for (std::size_t s = 0; s < r.bytes_matrix.size(); ++s) {
      out += cat("  ", s, ":");
      for (std::uint64_t v : r.bytes_matrix[s]) out += cat(" ", v);
      out += "\n";
    }
  }

  if (r.msg_records > 0) {
    const MsgQueueing& q = r.queueing;
    const std::int64_t e2e = q.total();
    out += cat("\nmessage tracing: ", r.msg_records, " records");
    if (r.msg_records_dropped > 0)
      out += cat(" (", r.msg_records_dropped, " dropped)");
    out += cat("\n  queueing (summed over messages): end-to-end ",
               num(static_cast<double>(e2e) / 1e6), " ms\n");
    auto qrow = [&](const char* name, std::int64_t v) {
      if (v <= 0) return;
      out += cat("    ", name, " ", num(static_cast<double>(v) / 1e6),
                 " ms  (", pct(static_cast<double>(v),
                               static_cast<double>(e2e)),
                 ")\n");
    };
    qrow("pack          ", q.pack_ns);
    qrow("sender_blocked", q.sender_blocked_ns);
    qrow("queue         ", q.queue_ns);
    qrow("unpack_wait   ", q.unpack_wait_ns);
    qrow("dispatch      ", q.dispatch_ns);
    if (r.measured_path_valid)
      out += cat("  measured path: ", r.measured_path.size(),
                 " tiles (inferred: ", r.critical_path.size(),
                 "), attribution covers ", pct(r.measured_coverage, 1.0),
                 " of the makespan\n");
  }
  return out;
}

void write_report_json(const std::string& path,
                       const AnalysisReport& report) {
  std::ofstream out(path);
  DPGEN_CHECK(out.good(), cat("cannot open report output '", path, "'"));
  out << report_json(report);
  DPGEN_CHECK(out.good(), cat("error writing report '", path, "'"));
}

// ---- report diffing -------------------------------------------------------

namespace {

double field_num(const json::Value& v, const char* key) {
  return v.has(key) ? v.at(key).as_number() : 0.0;
}

constexpr const char* kCanonicalPhases[] = {
    "compute", "unpack", "pack",    "send", "blocked_send",
    "poll",    "idle",   "barrier", "other"};

bool is_canonical_phase(const std::string& name) {
  for (const char* c : kCanonicalPhases)
    if (name == c) return true;
  return false;
}

/// Canonical nine buckets into the PhaseBreakdown; any other numeric key
/// (a newer report revision) into `extras` so it diffs against 0 rather
/// than vanishing when only one side has it.
PhaseBreakdown parse_breakdown(const json::Value& b,
                               std::map<std::string, double>* extras) {
  PhaseBreakdown out;
  out.compute = field_num(b, "compute");
  out.unpack = field_num(b, "unpack");
  out.pack = field_num(b, "pack");
  out.send = field_num(b, "send");
  out.blocked_send = field_num(b, "blocked_send");
  out.poll = field_num(b, "poll");
  out.idle = field_num(b, "idle");
  out.barrier = field_num(b, "barrier");
  out.other = field_num(b, "other");
  if (extras)
    for (const auto& [name, value] : b.fields)
      if (!is_canonical_phase(name) && value->is(json::Kind::kNumber))
        (*extras)[name] = value->as_number();
  return out;
}

void write_diff_side(json::Writer& w, const std::string& source,
                     const std::string& problem, const std::string& passes,
                     double makespan_s, long long path_tiles,
                     const PhaseBreakdown& phases,
                     const std::map<std::string, double>& extra_phases,
                     double bytes, double messages, double imbalance) {
  w.begin_object();
  w.key("source");
  w.value(source);
  w.key("problem");
  w.value(problem);
  w.key("passes");
  w.value(passes);
  w.key("makespan_s");
  w.value(makespan_s);
  w.key("path_tiles");
  w.value(path_tiles);
  w.key("phases_seconds");
  w.begin_object();
  w.key("compute");
  w.value(phases.compute);
  w.key("unpack");
  w.value(phases.unpack);
  w.key("pack");
  w.value(phases.pack);
  w.key("send");
  w.value(phases.send);
  w.key("blocked_send");
  w.value(phases.blocked_send);
  w.key("poll");
  w.value(phases.poll);
  w.key("idle");
  w.value(phases.idle);
  w.key("barrier");
  w.value(phases.barrier);
  w.key("other");
  w.value(phases.other);
  for (const auto& [name, value] : extra_phases) {
    w.key(name);
    w.value(value);
  }
  w.end_object();
  w.key("total_bytes");
  w.value(bytes);
  w.key("total_messages");
  w.value(messages);
  w.key("measured_imbalance");
  w.value(imbalance);
  w.end_object();
}

}  // namespace

ReportDelta diff_reports(const json::Value& old_report,
                         const json::Value& new_report) {
  auto check_v1 = [](const json::Value& r, const char* which) {
    DPGEN_CHECK(r.has("schema") &&
                    r.at("schema").as_string() == "dpgen.report.v1",
                cat("the ", which,
                    " report is not a dpgen.report.v1 document"));
  };
  check_v1(old_report, "old");
  check_v1(new_report, "new");

  ReportDelta d;
  auto side = [](const json::Value& r, std::string* source,
                 std::string* problem, std::string* passes, double* makespan,
                 long long* path_tiles, PhaseBreakdown* phases,
                 std::map<std::string, double>* extra_phases, double* bytes,
                 double* messages, double* imbalance) {
    if (r.has("source")) *source = r.at("source").as_string();
    if (r.has("problem")) *problem = r.at("problem").as_string();
    if (r.has("passes")) {
      // "passes" joined with "," (absent in pre-pass-pipeline documents).
      std::vector<std::string> names;
      for (const auto& item : r.at("passes").items)
        names.push_back(item->as_string());
      *passes = join(names, ",");
    }
    *makespan = field_num(r, "makespan_seconds");
    if (r.has("critical_path")) {
      const json::Value& cp = r.at("critical_path");
      *path_tiles = static_cast<long long>(field_num(cp, "length"));
      if (cp.has("attribution_seconds"))
        *phases =
            parse_breakdown(cp.at("attribution_seconds"), extra_phases);
    }
    if (r.has("comm_matrix")) {
      *bytes = field_num(r.at("comm_matrix"), "total_bytes");
      *messages = field_num(r.at("comm_matrix"), "total_messages");
    }
    if (r.has("load_balance"))
      *imbalance = field_num(r.at("load_balance"), "measured_imbalance");
  };
  side(old_report, &d.old_source, &d.old_problem, &d.old_passes,
       &d.old_makespan_s, &d.old_path_tiles, &d.old_phases,
       &d.old_extra_phases, &d.old_total_bytes, &d.old_total_messages,
       &d.old_measured_imbalance);
  side(new_report, &d.new_source, &d.new_problem, &d.new_passes,
       &d.new_makespan_s, &d.new_path_tiles, &d.new_phases,
       &d.new_extra_phases, &d.new_total_bytes, &d.new_total_messages,
       &d.new_measured_imbalance);
  return d;
}

std::string diff_text(const ReportDelta& d) {
  std::string out = cat("dpgen report diff  [", d.old_problem, " (",
                        d.old_source, ") -> ", d.new_problem, " (",
                        d.new_source, ")]\n");
  if (d.old_problem != d.new_problem)
    out += "warning: the reports describe different problems; the deltas "
           "compare apples to oranges\n";
  if (d.old_passes != d.new_passes)
    out += cat("codegen passes: [", d.old_passes, "] -> [", d.new_passes,
               "]\n");
  out +=
      "  metric           old            new            delta          "
      "rel\n";
  auto row = [&](const char* name, double oldv, double newv) {
    char line[160];
    const double delta = newv - oldv;
    if (oldv != 0.0)
      std::snprintf(line, sizeof(line),
                    "  %-16s %-14.6g %-14.6g %+-14.6g %+.1f%%\n", name, oldv,
                    newv, delta, 100.0 * delta / oldv);
    else
      std::snprintf(line, sizeof(line),
                    "  %-16s %-14.6g %-14.6g %+-14.6g -\n", name, oldv,
                    newv, delta);
    out += line;
  };
  row("makespan_s", d.old_makespan_s, d.new_makespan_s);
  row("path_tiles", static_cast<double>(d.old_path_tiles),
      static_cast<double>(d.new_path_tiles));
  row("compute_s", d.old_phases.compute, d.new_phases.compute);
  row("unpack_s", d.old_phases.unpack, d.new_phases.unpack);
  row("pack_s", d.old_phases.pack, d.new_phases.pack);
  row("send_s", d.old_phases.send, d.new_phases.send);
  row("blocked_send_s", d.old_phases.blocked_send,
      d.new_phases.blocked_send);
  row("poll_s", d.old_phases.poll, d.new_phases.poll);
  row("idle_s", d.old_phases.idle, d.new_phases.idle);
  row("barrier_s", d.old_phases.barrier, d.new_phases.barrier);
  row("other_s", d.old_phases.other, d.new_phases.other);
  // Buckets outside the canonical nine: present on either side diffs
  // against 0 on the other (previously they were silently dropped).
  std::map<std::string, std::pair<double, double>> extras;
  for (const auto& [name, value] : d.old_extra_phases)
    extras[name].first = value;
  for (const auto& [name, value] : d.new_extra_phases)
    extras[name].second = value;
  for (const auto& [name, values] : extras)
    row(cat(name, "_s").c_str(), values.first, values.second);
  row("total_bytes", d.old_total_bytes, d.new_total_bytes);
  row("total_messages", d.old_total_messages, d.new_total_messages);
  row("imbalance", d.old_measured_imbalance, d.new_measured_imbalance);
  return out;
}

std::string diff_json(const ReportDelta& d) {
  json::Writer w;
  w.begin_object();
  w.key("schema");
  w.value("dpgen.reportdiff.v1");
  w.key("old");
  write_diff_side(w, d.old_source, d.old_problem, d.old_passes,
                  d.old_makespan_s, d.old_path_tiles, d.old_phases,
                  d.old_extra_phases, d.old_total_bytes,
                  d.old_total_messages, d.old_measured_imbalance);
  w.key("new");
  write_diff_side(w, d.new_source, d.new_problem, d.new_passes,
                  d.new_makespan_s, d.new_path_tiles, d.new_phases,
                  d.new_extra_phases, d.new_total_bytes,
                  d.new_total_messages, d.new_measured_imbalance);
  w.key("delta");
  PhaseBreakdown dp;
  dp.compute = d.new_phases.compute - d.old_phases.compute;
  dp.unpack = d.new_phases.unpack - d.old_phases.unpack;
  dp.pack = d.new_phases.pack - d.old_phases.pack;
  dp.send = d.new_phases.send - d.old_phases.send;
  dp.blocked_send = d.new_phases.blocked_send - d.old_phases.blocked_send;
  dp.poll = d.new_phases.poll - d.old_phases.poll;
  dp.idle = d.new_phases.idle - d.old_phases.idle;
  dp.barrier = d.new_phases.barrier - d.old_phases.barrier;
  dp.other = d.new_phases.other - d.old_phases.other;
  // Extra buckets delta over the union of both sides' keys (absent = 0).
  std::map<std::string, double> dextra;
  for (const auto& [name, value] : d.new_extra_phases) dextra[name] = value;
  for (const auto& [name, value] : d.old_extra_phases)
    dextra[name] -= value;
  write_diff_side(w, d.new_source, d.new_problem, d.new_passes,
                  d.new_makespan_s - d.old_makespan_s,
                  d.new_path_tiles - d.old_path_tiles, dp, dextra,
                  d.new_total_bytes - d.old_total_bytes,
                  d.new_total_messages - d.old_total_messages,
                  d.new_measured_imbalance - d.old_measured_imbalance);
  w.end_object();
  return w.str() + "\n";
}

}  // namespace dpgen::obs
