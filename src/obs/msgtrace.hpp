#pragma once
// Causal message tracing: per-message lifecycle records.
//
// Every data-plane minimpi message carries a compact envelope (sequence
// number + monotonic stamps; see minimpi::MsgEnvelope) that the transport
// and the node driver fill in as the message moves: pack, hand-off to the
// transport, mailbox admission, delivery by the receiver's poll, payload
// unpack, and finally the dispatch of the dependent tile.  The receiver
// completes the envelope into one MsgRecord and appends it to a per-thread
// ring here — the same single-writer design as obs::Tracer's span rings,
// and the records ride the same end-of-run gather (obs/gather.hpp) to
// rank 0.
//
// Envelope-only by construction: payload bytes and the computed RESULT
// stay byte-identical whether tracing is on or off.
//
// Consumers (obs/analysis.hpp, dpgen-analyze):
//   * the measured message-granularity critical path, cross-checked
//     against the span-inferred path;
//   * the per-link queueing-delay decomposition (pack / sender-blocked /
//     queue residency / unpack wait / dispatch lag) — integer nanoseconds
//     that sum *exactly* to the end-to-end message latency;
//   * Perfetto flow events linking sender send spans to receiver dispatch
//     spans (obs/export.hpp);
//   * the dpgen.msgtrace.v1 document with per-link send/delivery
//     conservation accounting (fault-injected drops and duplicates are
//     expected gaps/repeats, not errors).
//
// Cost model matches the span tracer: -DDPGEN_TRACE=0 compiles recording
// out; a disabled tracer costs one relaxed load per site.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/trace.hpp"
#include "support/vec.hpp"

namespace dpgen::obs {

/// One completed message lifecycle.  Trivially copyable by design: rings
/// are serialized with memcpy and shipped through minimpi::Comm::gather.
/// All stamps are steady-clock nanoseconds since the Tracer epoch, so
/// they are directly comparable with Span start/end times.
struct MsgRecord {
  std::int64_t seq = -1;         ///< per-link sequence number (src -> dst)
  std::int64_t pack_ns = 0;      ///< sender: edge pack started
  std::int64_t send_ns = 0;      ///< sender: handed to the transport
  std::int64_t admit_ns = 0;     ///< transport: admitted to dst's mailbox
  std::int64_t deliver_ns = 0;   ///< receiver: popped by poll
  std::int64_t unpack_ns = 0;    ///< receiver: payload unpacked
  std::int64_t dispatch_ns = 0;  ///< receiver: dependent tile dispatched
  std::int64_t bytes = 0;        ///< wire payload size
  std::array<std::int32_t, kMaxSpanDims> consumer{};  ///< dependent tile
  std::int16_t src = -1;
  std::int16_t dst = -1;
  std::int16_t src_thread = 0;
  std::int16_t dst_thread = 0;
  std::int16_t edge = -1;        ///< tile-dependency offset index
  std::uint8_t ncoord = 0;       ///< meaningful entries of `consumer`
};

static_assert(std::is_trivially_copyable_v<MsgRecord>,
              "MsgRecord is wire format");

/// Queueing-delay decomposition totals in integer nanoseconds.  The five
/// buckets partition [pack_ns, dispatch_ns) of each record, so
/// total() == sum of end-to-end latencies exactly (the conservation
/// invariant dpgen-analyze --msgtrace verifies).
struct MsgQueueing {
  std::int64_t pack_ns = 0;            ///< pack -> send: encode time
  std::int64_t sender_blocked_ns = 0;  ///< send -> admit: backpressure
  std::int64_t queue_ns = 0;           ///< admit -> deliver: mailbox stay
  std::int64_t unpack_wait_ns = 0;     ///< deliver -> unpack: poll-to-use
  std::int64_t dispatch_ns = 0;        ///< unpack -> dispatch: launch lag
  std::int64_t total() const {
    return pack_ns + sender_blocked_ns + queue_ns + unpack_wait_ns +
           dispatch_ns;
  }
  MsgQueueing& operator+=(const MsgQueueing& o) {
    pack_ns += o.pack_ns;
    sender_blocked_ns += o.sender_blocked_ns;
    queue_ns += o.queue_ns;
    unpack_wait_ns += o.unpack_wait_ns;
    dispatch_ns += o.dispatch_ns;
    return *this;
  }
};

/// Decomposition of one record (clamped to non-negative segments; the
/// stamps are taken in lifecycle order on one steady clock, so negative
/// segments indicate a malformed record and are truncated to zero).
MsgQueueing decompose(const MsgRecord& r);

/// Aggregate decomposition over a record set.
MsgQueueing decompose(const std::vector<MsgRecord>& records);

/// Process-wide message-record collector; mirrors obs::Tracer (per-thread
/// single-writer rings, merged set on the gather root).
class MsgTracer {
 public:
  /// Records one thread can hold before the oldest are overwritten.
  static constexpr std::size_t kRingCapacity = 1u << 14;

  static MsgTracer& instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on && kTraceCompiled, std::memory_order_relaxed);
  }

  /// Stamps share the span tracer's clock so flow events line up with
  /// spans on the exported timeline.
  static std::int64_t now_ns() { return Tracer::instance().now_ns(); }

  /// Appends a completed record for the calling thread.
  void record(const MsgRecord& r);

  /// Every record whose destination is `rank` (writers quiesced).
  std::vector<MsgRecord> collect_rank(int rank) const;
  std::vector<MsgRecord> collect_all() const;

  /// Records merged from all ranks (filled on the gather root).
  std::vector<MsgRecord> merged() const;
  void add_merged(std::vector<MsgRecord> records);

  /// Records dropped because a thread's ring wrapped.
  std::uint64_t dropped() const;

  /// Forgets every recorded and merged record (buffers stay registered).
  void clear();

 private:
  struct ThreadBuffer {
    std::vector<MsgRecord> ring;
    std::atomic<std::uint64_t> head{0};  ///< total records ever written
    std::atomic<std::uint64_t> dropped{0};
  };

  MsgTracer() = default;

  ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards buffers_ growth and merged_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::vector<MsgRecord> merged_;
};

// ---- dpgen.msgtrace.v1 document -----------------------------------------

/// Everything the msgtrace document needs.  Plain matrices (not minimpi
/// types) so the simulator and generated programs can fill it too.
struct MsgTraceInput {
  std::vector<MsgRecord> records;
  int nranks = 0;
  /// Per-link data-plane sends, [source][destination]: how many sequence
  /// numbers each sender assigned (minimpi::World::sent_matrix, or the
  /// simulator's per-link message counts).
  std::vector<std::vector<std::uint64_t>> sent_matrix;
  std::uint64_t records_dropped = 0;  ///< ring-overflow losses
  long long expected_drops = 0;       ///< FaultStats::messages_dropped
  long long expected_dups = 0;        ///< FaultStats::messages_duplicated
  /// Duplicate edges the tile tables screened out (dup faults surface
  /// here, not as extra records).
  long long table_duplicates = 0;
  std::string source = "engine";
  std::string problem;
  IntVec params;
  /// Records above this count are dropped from the document's `records`
  /// array (aggregates still cover everything).  0 = keep all.
  std::size_t max_records = 20000;
};

/// Renders the dpgen.msgtrace.v1 JSON document: run metadata, aggregate +
/// per-link queueing decomposition, per-link conservation accounting and
/// the (possibly truncated) record array.
std::string msgtrace_json(const MsgTraceInput& input);

/// msgtrace_json to a file; throws dpgen::Error on I/O failure.
void write_msgtrace_json(const std::string& path, const MsgTraceInput& input);

}  // namespace dpgen::obs
