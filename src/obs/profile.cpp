// Sampling profiler + hardware-counter attribution.  See profile.hpp for
// the design; the signal-safety rules live right next to the handler below.

#include "obs/profile.hpp"

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <utility>

#include "support/error.hpp"
#include "support/str.hpp"

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#define DPGEN_HAVE_THREAD_TIMERS 1
#else
#define DPGEN_HAVE_THREAD_TIMERS 0
#endif

// Older glibc spells SIGEV_THREAD_ID only through the internal union.
#if DPGEN_HAVE_THREAD_TIMERS
#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
#endif

namespace dpgen::obs {

namespace profdetail {

std::atomic<bool> g_frames_on{false};
thread_local ThreadProfState* t_state = nullptr;

// The phase stack is one u32: 5 bits per frame, top of stack in the low
// bits, each entry = phase + 1 (0 marks "no frame").  Push and pop are
// each a single relaxed store, so the signal handler — which can land
// between any two instructions of the owning thread — always reads a
// complete, never-torn stack.  Depth beyond 6 sheds the *oldest* frames
// off the top bits; pops stay balanced and the shed frames decode as
// "lost" (driver nesting is <= 3 deep in practice).
void push_frame(Phase p) {
  ThreadProfState* st = t_state;
  if (!st) return;
  const std::uint32_t cur = st->stack.load(std::memory_order_relaxed);
  st->stack.store((cur << 5) | (static_cast<std::uint32_t>(p) + 1),
                  std::memory_order_relaxed);
}

void pop_frame() {
  ThreadProfState* st = t_state;
  if (!st) return;
  const std::uint32_t cur = st->stack.load(std::memory_order_relaxed);
  st->stack.store(cur >> 5, std::memory_order_relaxed);
}

namespace {

// ---- the sample hot path -------------------------------------------------
// Runs in a SIGPROF handler on the sampled thread itself.  The rules:
// nothing here may allocate, lock, or call anything not async-signal-safe.
// Only lock-free atomic ops on the thread's own state — the state pointer
// arrives in si_value (no TLS lookup, which is not guaranteed
// signal-safe during thread setup), SIGPROF is blocked while the handler
// runs (sigaction default), so the handler never races itself; concurrent
// readers on other threads use relaxed loads and tolerate skew.
void record_sample(ThreadProfState* st) {
  st->samples.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t key = st->stack.load(std::memory_order_relaxed);
  if (key == 0) {
    st->untraced.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::uint32_t h = key * 2654435761u;  // Fibonacci hashing
  for (int probe = 0; probe < ThreadProfState::kSlots; ++probe) {
    auto& slot =
        st->table[(h + static_cast<std::uint32_t>(probe)) &
                  (ThreadProfState::kSlots - 1)];
    const std::uint32_t k = slot.key.load(std::memory_order_relaxed);
    if (k == 0) slot.key.store(key, std::memory_order_relaxed);
    if (k == 0 || k == key) {
      slot.count.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  st->dropped.fetch_add(1, std::memory_order_relaxed);
}

void sigprof_handler(int, siginfo_t* si, void*) {
  auto* st = static_cast<ThreadProfState*>(si->si_value.sival_ptr);
  if (st) record_sample(st);
}

void install_handler() {
  static bool installed = [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = sigprof_handler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    return sigaction(SIGPROF, &sa, nullptr) == 0;
  }();
  (void)installed;
}

bool arm_timer(ThreadProfState* st, double hz) {
#if DPGEN_HAVE_THREAD_TIMERS
  struct sigevent sev;
  std::memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_value.sival_ptr = st;
  sev.sigev_notify_thread_id =
      static_cast<pid_t>(syscall(SYS_gettid));
  if (timer_create(CLOCK_MONOTONIC, &sev, &st->timer_id) != 0) return false;
  const double period_s = 1.0 / hz;
  itimerspec its{};
  its.it_interval.tv_sec = static_cast<time_t>(period_s);
  its.it_interval.tv_nsec =
      static_cast<long>((period_s - std::floor(period_s)) * 1e9);
  if (its.it_interval.tv_sec == 0 && its.it_interval.tv_nsec == 0)
    its.it_interval.tv_nsec = 1000000;  // floor: 1ms
  its.it_value = its.it_interval;
  if (timer_settime(st->timer_id, 0, &its, nullptr) != 0) {
    timer_delete(st->timer_id);
    return false;
  }
  return true;
#else
  (void)st;
  (void)hz;
  return false;
#endif
}

void disarm_timer(ThreadProfState* st) {
#if DPGEN_HAVE_THREAD_TIMERS
  if (st->timer_armed) timer_delete(st->timer_id);
#endif
  st->timer_armed = false;
}

/// Decodes an encoded stack into "rankR;frame;frame" (bottom-first).
std::string decode_stack(std::uint32_t key, int rank) {
  std::uint32_t groups[8];
  int n = 0;
  while (key != 0 && n < 8) {
    groups[n++] = key & 31u;  // n-th entry = n frames down from the top
    key >>= 5;
  }
  std::string out = cat("rank", rank);
  for (int i = n - 1; i >= 0; --i) {
    out += ';';
    if (groups[i] >= 1 &&
        groups[i] <= static_cast<std::uint32_t>(kProfilePhases))
      out += phase_name(static_cast<Phase>(groups[i] - 1));
    else
      out += "lost";  // shed by a deeper-than-6 push
  }
  return out;
}

}  // namespace

}  // namespace profdetail

Profiler& Profiler::instance() {
  static Profiler p;
  return p;
}

void Profiler::start(const ProfileOptions& opt) {
  std::lock_guard<std::mutex> lock(mu_);
  DPGEN_CHECK(!active_.load(std::memory_order_relaxed),
              "profiler: a profiled run is already active");
  opt_ = opt;
  opt_.hz = std::min(10000.0, std::max(1.0, opt.hz));
  states_.clear();
  perf_mode_ = !opt_.force_cputime && HwCounterGroup::perf_available();
  profdetail::install_handler();
  profdetail::g_frames_on.store(true, std::memory_order_relaxed);
  active_.store(true, std::memory_order_relaxed);
}

void Profiler::thread_enter(int rank, int thread) {
  using namespace profdetail;
  if (!active() || t_state != nullptr) return;
  auto st = std::make_unique<ThreadProfState>();
  st->rank = rank;
  st->thread = thread;
  st->counters.open(/*force_cputime=*/!perf_mode_);
  st->counters_open = true;
  st->stride = 1;
  st->countdown = 1;
  ThreadProfState* raw = st.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!active()) return;  // raced with stop(); drop the state
    states_.push_back(std::move(st));
  }
  // Arm only after the state is pinned: the first signal may fire
  // immediately and the handler dereferences sival_ptr.
  raw->timer_armed = arm_timer(raw, opt_.hz);
  t_state = raw;
}

void Profiler::thread_exit() {
  using namespace profdetail;
  ThreadProfState* st = t_state;
  if (!st) return;
  t_state = nullptr;
  disarm_timer(st);
  st->counters.close();
  st->counters_open = false;
}

Profiler::RankTotals Profiler::rank_totals(int rank) const {
  RankTotals out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& st : states_) {
    if (st->rank != rank) continue;
    out.samples += st->samples.load(std::memory_order_relaxed);
    out.cycles += st->cycles.load(std::memory_order_relaxed);
    out.instructions += st->instructions.load(std::memory_order_relaxed);
    out.sampled_cells += st->sampled_cells.load(std::memory_order_relaxed);
    out.sampled_exec_ns +=
        st->sampled_exec_ns.load(std::memory_order_relaxed);
  }
  return out;
}

ProfileDoc Profiler::stop() {
  using namespace profdetail;
  std::lock_guard<std::mutex> lock(mu_);
  DPGEN_CHECK(active_.load(std::memory_order_relaxed),
              "profiler: stop() without an active run");
  active_.store(false, std::memory_order_relaxed);
  g_frames_on.store(false, std::memory_order_relaxed);
  // Safety net: a worker that died without thread_exit leaves an armed
  // timer behind; its state outlives it here, so disarm before reading.
  for (auto& st : states_) disarm_timer(st.get());

  ProfileDoc doc;
  doc.source = opt_.source;
  doc.problem = opt_.problem;
  doc.params = opt_.params;
  doc.hz = opt_.hz;
  doc.counters = perf_mode_ ? "perf" : "cputime";
  doc.sampler = "timer";

  ProfileFamily fam;
  fam.name = opt_.problem.empty() ? "unknown" : opt_.problem;
  std::map<std::pair<int, std::uint32_t>, long long> folded;
  int max_rank = -1;
  for (const auto& st : states_) {
    max_rank = std::max(max_rank, st->rank);
    ProfileThreadSummary ts;
    ts.rank = st->rank;
    ts.thread = st->thread;
    ts.samples =
        static_cast<long long>(st->samples.load(std::memory_order_relaxed));
    doc.threads.push_back(ts);
    doc.samples_total += ts.samples;
    const auto untraced = static_cast<long long>(
        st->untraced.load(std::memory_order_relaxed));
    doc.samples_untraced += untraced;
    doc.samples_dropped += static_cast<long long>(
        st->dropped.load(std::memory_order_relaxed));
    if (untraced > 0) folded[{st->rank, 0u}] += untraced;
    for (const auto& slot : st->table) {
      const std::uint32_t key = slot.key.load(std::memory_order_relaxed);
      if (key == 0) continue;
      const auto count = static_cast<long long>(
          slot.count.load(std::memory_order_relaxed));
      if (count == 0) continue;
      const std::uint32_t top = key & 31u;
      if (top >= 1 && top <= static_cast<std::uint32_t>(kProfilePhases))
        doc.phase_samples[top - 1] += count;
      folded[{st->rank, key}] += count;
    }
    fam.tiles += static_cast<long long>(
        st->all_tiles.load(std::memory_order_relaxed));
    fam.cells += static_cast<long long>(
        st->all_cells.load(std::memory_order_relaxed));
    fam.exec_seconds +=
        static_cast<double>(st->all_exec_ns.load(std::memory_order_relaxed)) *
        1e-9;
    fam.sampled_tiles += static_cast<long long>(
        st->sampled_tiles.load(std::memory_order_relaxed));
    fam.sampled_cells += static_cast<long long>(
        st->sampled_cells.load(std::memory_order_relaxed));
    fam.sampled_exec_seconds +=
        static_cast<double>(
            st->sampled_exec_ns.load(std::memory_order_relaxed)) *
        1e-9;
    fam.cycles += st->cycles.load(std::memory_order_relaxed);
    fam.instructions += st->instructions.load(std::memory_order_relaxed);
    fam.llc_misses += st->llc_misses.load(std::memory_order_relaxed);
    fam.branch_misses += st->branch_misses.load(std::memory_order_relaxed);
  }
  doc.nranks = max_rank + 1;
  std::sort(doc.threads.begin(), doc.threads.end(),
            [](const ProfileThreadSummary& a, const ProfileThreadSummary& b) {
              return a.rank != b.rank ? a.rank < b.rank
                                      : a.thread < b.thread;
            });
  for (const auto& [rk, count] : folded) {
    FoldedStack fs;
    fs.stack = rk.second == 0 ? cat("rank", rk.first, ";untraced")
                              : decode_stack(rk.second, rk.first);
    fs.samples = count;
    doc.folded.push_back(fs);
  }
  std::sort(doc.folded.begin(), doc.folded.end(),
            [](const FoldedStack& a, const FoldedStack& b) {
              return a.stack < b.stack;
            });
  doc.families.push_back(std::move(fam));
  return doc;
}

// ---- document rendering --------------------------------------------------

std::string profile_json(const ProfileDoc& doc) {
  json::Writer w;
  w.begin_object();
  w.key("schema").value("dpgen.profile.v1");
  w.key("source").value(doc.source);
  w.key("problem").value(doc.problem);
  w.key("params").begin_array();
  for (Int p : doc.params) w.value(static_cast<long long>(p));
  w.end_array();
  w.key("hz").value(doc.hz);
  w.key("counters").value(doc.counters);
  w.key("sampler").value(doc.sampler);
  w.key("nranks").value(doc.nranks);
  w.key("samples_total").value(doc.samples_total);
  w.key("samples_untraced").value(doc.samples_untraced);
  w.key("samples_dropped").value(doc.samples_dropped);
  w.key("phase_samples").begin_object();
  for (int p = 0; p < kProfilePhases; ++p)
    w.key(phase_name(static_cast<Phase>(p)))
        .value(doc.phase_samples[static_cast<std::size_t>(p)]);
  w.key("untraced").value(doc.samples_untraced);
  w.end_object();
  w.key("folded").begin_array();
  for (const FoldedStack& f : doc.folded)
    w.value(cat(f.stack, " ", f.samples));
  w.end_array();
  w.key("threads").begin_array();
  for (const ProfileThreadSummary& t : doc.threads) {
    w.begin_object();
    w.key("rank").value(t.rank);
    w.key("thread").value(t.thread);
    w.key("samples").value(t.samples);
    w.end_object();
  }
  w.end_array();
  w.key("families").begin_array();
  for (const ProfileFamily& f : doc.families) {
    w.begin_object();
    w.key("name").value(f.name);
    w.key("tiles").value(f.tiles);
    w.key("cells").value(f.cells);
    w.key("exec_seconds").value(f.exec_seconds);
    w.key("sampled_tiles").value(f.sampled_tiles);
    w.key("sampled_cells").value(f.sampled_cells);
    w.key("sampled_exec_seconds").value(f.sampled_exec_seconds);
    w.key("cycles").value(static_cast<unsigned long long>(f.cycles));
    w.key("instructions")
        .value(static_cast<unsigned long long>(f.instructions));
    w.key("llc_misses").value(static_cast<unsigned long long>(f.llc_misses));
    w.key("branch_misses")
        .value(static_cast<unsigned long long>(f.branch_misses));
    w.key("ipc").value(f.ipc());
    w.key("cycles_per_cell").value(f.cycles_per_cell());
    w.key("misses_per_cell").value(f.misses_per_cell());
    w.key("predicted_cells").value(f.predicted_cells);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void write_profile_json(const std::string& path, const ProfileDoc& doc) {
  std::ofstream out(path);
  DPGEN_CHECK(out.good(), cat("profile: cannot open '", path, "'"));
  out << profile_json(doc) << "\n";
  DPGEN_CHECK(out.good(), cat("profile: error writing '", path, "'"));
}

ProfileDoc parse_profile_doc(const json::Value& v) {
  DPGEN_CHECK(v.is(json::Kind::kObject) && v.has("schema") &&
                  v.at("schema").as_string() == "dpgen.profile.v1",
              "not a dpgen.profile.v1 document");
  ProfileDoc doc;
  doc.source = v.at("source").as_string();
  doc.problem = v.at("problem").as_string();
  for (const auto& p : v.at("params").as_array())
    doc.params.push_back(static_cast<Int>(p->as_number()));
  doc.hz = v.at("hz").as_number();
  doc.counters = v.at("counters").as_string();
  doc.sampler = v.at("sampler").as_string();
  doc.nranks = static_cast<int>(v.at("nranks").as_number());
  doc.samples_total =
      static_cast<long long>(v.at("samples_total").as_number());
  doc.samples_untraced =
      static_cast<long long>(v.at("samples_untraced").as_number());
  doc.samples_dropped =
      static_cast<long long>(v.at("samples_dropped").as_number());
  const json::Value& ps = v.at("phase_samples");
  for (int p = 0; p < kProfilePhases; ++p) {
    const char* name = phase_name(static_cast<Phase>(p));
    if (ps.has(name))
      doc.phase_samples[static_cast<std::size_t>(p)] =
          static_cast<long long>(ps.at(name).as_number());
  }
  for (const auto& line : v.at("folded").as_array()) {
    const std::string& s = line->as_string();
    const auto space = s.rfind(' ');
    DPGEN_CHECK(space != std::string::npos, "profile: bad folded line");
    FoldedStack fs;
    fs.stack = s.substr(0, space);
    fs.samples = std::atoll(s.c_str() + space + 1);
    doc.folded.push_back(std::move(fs));
  }
  for (const auto& t : v.at("threads").as_array()) {
    ProfileThreadSummary ts;
    ts.rank = static_cast<int>(t->at("rank").as_number());
    ts.thread = static_cast<int>(t->at("thread").as_number());
    ts.samples = static_cast<long long>(t->at("samples").as_number());
    doc.threads.push_back(ts);
  }
  for (const auto& f : v.at("families").as_array()) {
    ProfileFamily fam;
    fam.name = f->at("name").as_string();
    fam.tiles = static_cast<long long>(f->at("tiles").as_number());
    fam.cells = static_cast<long long>(f->at("cells").as_number());
    fam.exec_seconds = f->at("exec_seconds").as_number();
    fam.sampled_tiles =
        static_cast<long long>(f->at("sampled_tiles").as_number());
    fam.sampled_cells =
        static_cast<long long>(f->at("sampled_cells").as_number());
    fam.sampled_exec_seconds = f->at("sampled_exec_seconds").as_number();
    fam.cycles = static_cast<std::uint64_t>(f->at("cycles").as_number());
    fam.instructions =
        static_cast<std::uint64_t>(f->at("instructions").as_number());
    fam.llc_misses =
        static_cast<std::uint64_t>(f->at("llc_misses").as_number());
    fam.branch_misses =
        static_cast<std::uint64_t>(f->at("branch_misses").as_number());
    fam.predicted_cells = f->at("predicted_cells").as_number();
    doc.families.push_back(std::move(fam));
  }
  return doc;
}

// ---- flame (icicle) view -------------------------------------------------

namespace {

struct FlameNode {
  std::map<std::string, FlameNode> kids;
  long long self = 0;
  long long total = 0;
};

long long fill_totals(FlameNode& n) {
  n.total = n.self;
  for (auto& [name, kid] : n.kids) n.total += fill_totals(kid);
  return n.total;
}

/// Same palette family as sim::series_svg, keyed by frame name so a phase
/// keeps its colour across ranks and documents.
const char* flame_color(const std::string& name) {
  static const char* kPalette[] = {"#4e79a7", "#f28e2b", "#e15759",
                                   "#76b7b2", "#59a14f", "#edc948",
                                   "#b07aa1", "#ff9da7", "#9c755f",
                                   "#bab0ac"};
  std::size_t h = 1469598103u;
  for (char c : name) h = (h ^ static_cast<std::size_t>(c)) * 1099511628211u;
  return kPalette[h % (sizeof(kPalette) / sizeof(kPalette[0]))];
}

void render_node(const FlameNode& n, const std::string& name, double x0,
                 double width_per_sample, int depth, int row_h,
                 std::string* svg) {
  const double w = static_cast<double>(n.total) * width_per_sample;
  if (w < 0.5) return;
  const int y = depth * row_h;
  *svg += cat("<g><title>", name, ": ", n.total, " samples</title>",
              "<rect x=\"", x0, "\" y=\"", y, "\" width=\"", w,
              "\" height=\"", row_h - 1, "\" fill=\"", flame_color(name),
              "\" stroke=\"#fff\" stroke-width=\"0.5\"/>");
  if (w > 40)
    *svg += cat("<text x=\"", x0 + 3, "\" y=\"", y + row_h - 5,
                "\" font-size=\"11\" fill=\"#fff\">", name, "</text>");
  *svg += "</g>\n";
  double x = x0 + static_cast<double>(n.self) * width_per_sample;
  for (const auto& [kid_name, kid] : n.kids) {
    render_node(kid, kid_name, x, width_per_sample, depth + 1, row_h, svg);
    x += static_cast<double>(kid.total) * width_per_sample;
  }
}

int tree_depth(const FlameNode& n) {
  int d = 0;
  for (const auto& [name, kid] : n.kids)
    d = std::max(d, 1 + tree_depth(kid));
  return d;
}

}  // namespace

std::string profile_flame_html(const ProfileDoc& doc) {
  // One icicle per rank: root = the rank, children = phase frames.
  std::map<std::string, FlameNode> roots;
  for (const FoldedStack& f : doc.folded) {
    FlameNode* node = nullptr;
    std::size_t start = 0;
    std::string root_name;
    while (start <= f.stack.size()) {
      const std::size_t semi = f.stack.find(';', start);
      const std::string frame =
          f.stack.substr(start, semi == std::string::npos ? std::string::npos
                                                          : semi - start);
      if (node == nullptr) {
        root_name = frame;
        node = &roots[frame];
      } else {
        node = &node->kids[frame];
      }
      if (semi == std::string::npos) break;
      start = semi + 1;
    }
    if (node) node->self += f.samples;
  }

  std::string html = cat(
      "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>dpgen "
      "profile flame</title></head>\n<body style=\"font-family:sans-serif\">"
      "\n<h1>dpgen profile: ", doc.problem.empty() ? "?" : doc.problem,
      "</h1>\n<p>source ", doc.source, ", counters ", doc.counters,
      ", sampler ", doc.sampler, " @ ", doc.hz, " Hz, ", doc.samples_total,
      " samples (", doc.samples_untraced, " untraced, ", doc.samples_dropped,
      " dropped)</p>\n");
  const int kWidth = 760;
  const int kRowH = 18;
  for (auto& [rank_name, root] : roots) {
    fill_totals(root);
    if (root.total <= 0) continue;
    const int depth = 1 + tree_depth(root);
    const int height = depth * kRowH;
    const double per_sample =
        static_cast<double>(kWidth) / static_cast<double>(root.total);
    std::string svg;
    render_node(root, rank_name, 0.0, per_sample, 0, kRowH, &svg);
    html += cat("<h2>", rank_name, " (", root.total, " samples)</h2>\n",
                "<svg width=\"", kWidth, "\" height=\"", height,
                "\" xmlns=\"http://www.w3.org/2000/svg\" style=\"background:"
                "#fafafa;border:1px solid #ddd\">\n", svg, "</svg>\n");
  }
  html += "</body></html>\n";
  return html;
}

}  // namespace dpgen::obs
