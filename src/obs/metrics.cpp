#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "support/str.hpp"

namespace dpgen::obs {

namespace {

int bucket_index(std::int64_t v) {
  if (v <= 0) return 0;
  int b = 0;
  while (v > 0 && b < Histogram::kBuckets - 1) {
    v >>= 1;
    ++b;
  }
  return b;
}

void atomic_min(std::atomic<std::int64_t>& slot, std::int64_t v) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::int64_t>& slot, std::int64_t v) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Quantiles are estimates (log2-bucket interpolation); a short fixed
/// precision keeps the dumps diffable.
std::string quantile_str(const Histogram& h, double q) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", h.quantile(q));
  return buf;
}

}  // namespace

void Histogram::observe(std::int64_t v) {
  if (v < 0) v = 0;
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    // First observation seeds min/max (races only tighten them below).
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  sum_.fetch_add(v, std::memory_order_relaxed);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::quantile(double q) const {
  const std::int64_t n = count();
  if (n <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Target rank, 1-based: the smallest observation whose cumulative count
  // reaches q * n.
  std::int64_t target = static_cast<std::int64_t>(q * static_cast<double>(n));
  if (target < 1) target = 1;
  if (target > n) target = n;
  std::int64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::int64_t in_bucket = bucket(b);
    if (in_bucket == 0) continue;
    if (cum + in_bucket < target) {
      cum += in_bucket;
      continue;
    }
    // Bucket b covers [2^(b-1), 2^b) (bucket 0 holds exactly 0);
    // interpolate the rank's position linearly across that range.
    if (b == 0) return std::max<double>(0.0, static_cast<double>(min()));
    const double lo = static_cast<double>(std::int64_t{1} << (b - 1));
    const double hi = lo * 2.0;
    const double frac = (static_cast<double>(target - cum) - 0.5) /
                        static_cast<double>(in_bucket);
    double v = lo + frac * (hi - lo);
    v = std::min(v, static_cast<double>(max()));
    v = std::max(v, static_cast<double>(min()));
    return v;
  }
  return static_cast<double>(max());
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += cat(first ? "" : ",", "\n    \"", name, "\": ", c->value());
    first = false;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += cat(first ? "" : ",", "\n    \"", name, "\": {\"value\": ",
               g->value(), ", \"max\": ", g->max(), "}");
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += cat(first ? "" : ",", "\n    \"", name, "\": {\"count\": ",
               h->count(), ", \"sum\": ", h->sum(), ", \"min\": ", h->min(),
               ", \"max\": ", h->max(),
               ", \"p50\": ", quantile_str(*h, 0.50),
               ", \"p95\": ", quantile_str(*h, 0.95),
               ", \"p99\": ", quantile_str(*h, 0.99), ", \"buckets\": [");
    // Trailing zero buckets are elided; the boundary of bucket b is 2^b.
    int last = -1;
    for (int b = 0; b < Histogram::kBuckets; ++b)
      if (h->bucket(b) != 0) last = b;
    for (int b = 0; b <= last; ++b)
      out += cat(b ? ", " : "", h->bucket(b));
    out += "]}";
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

std::string MetricsRegistry::to_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_)
    out += cat(name, " ", c->value(), "\n");
  for (const auto& [name, g] : gauges_) {
    out += cat(name, " ", g->value(), "\n");
    out += cat(name, ".max ", g->max(), "\n");
  }
  for (const auto& [name, h] : histograms_) {
    out += cat(name, ".count ", h->count(), "\n");
    out += cat(name, ".sum ", h->sum(), "\n");
    out += cat(name, ".min ", h->min(), "\n");
    out += cat(name, ".max ", h->max(), "\n");
    out += cat(name, ".p50 ", quantile_str(*h, 0.50), "\n");
    out += cat(name, ".p95 ", quantile_str(*h, 0.95), "\n");
    out += cat(name, ".p99 ", quantile_str(*h, 0.99), "\n");
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace dpgen::obs
