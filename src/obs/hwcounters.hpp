#pragma once
// Hardware-counter attribution for tile execution (docs/observability.md,
// "Continuous profiling").
//
// HwCounterGroup wraps one perf_event_open *group* per worker thread —
// cycles as the leader with instructions / LLC misses / branch misses as
// siblings — so one read() syscall returns a consistent snapshot of all
// four and the derived ratios (IPC, misses per cell) are internally
// coherent.  Counters are per-thread (pid = 0, cpu = -1) and count user
// space only, which is what unprivileged perf access allows in most
// containers.
//
// Graceful degradation is the design center, not an afterthought: CI
// containers routinely run with perf_event_paranoid locked down or without
// the perf syscall at all.  The fallback ladder is
//
//   perf group  ->  CLOCK_THREAD_CPUTIME_ID  ->  (profiling off)
//
// In cputime mode read() reports thread CPU *nanoseconds* in the `cycles`
// slot (instructions/misses stay 0, so IPC is undefined and omitted) —
// the per-cell cost model still works, just in ns/cell instead of
// cycles/cell, and every emitted dpgen.profile.v1 document names its mode
// in the `counters` field so consumers never mistake one unit for the
// other.

#include <cstdint>

namespace dpgen::obs {

/// One point-in-time reading of the group (monotonic totals since open();
/// callers diff two readings around the region of interest).
struct HwCounterValues {
  std::uint64_t cycles = 0;  ///< CPU cycles; thread CPU ns in cputime mode
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t branch_misses = 0;
};

/// A per-thread counter group.  Not thread-safe: open/read/close must all
/// happen on the thread being measured (perf events are opened with
/// pid = 0, i.e. "the calling thread").
class HwCounterGroup {
 public:
  HwCounterGroup() = default;
  ~HwCounterGroup() { close(); }
  HwCounterGroup(const HwCounterGroup&) = delete;
  HwCounterGroup& operator=(const HwCounterGroup&) = delete;

  /// Opens the group on the calling thread.  With `force_cputime` (or when
  /// the cycles leader cannot be opened) the group runs in cputime mode.
  /// Returns true when real perf events were opened.
  bool open(bool force_cputime);

  void close();

  /// True when the group reads real perf events (false = cputime mode).
  bool perf() const { return leader_fd_ >= 0; }

  /// Reads the group's current totals.  Returns false (zero-filled `out`)
  /// only if the group was never opened.
  bool read(HwCounterValues* out);

  /// One-shot process-wide probe: can this process open a perf cycles
  /// counter on itself?  Used by the profiler to pick the mode once so
  /// every thread of a run agrees.
  static bool perf_available();

 private:
  static constexpr int kEvents = 4;  // cycles, insns, llc, branch
  int leader_fd_ = -1;
  int fds_[kEvents] = {-1, -1, -1, -1};
  /// Index of each logical event in the group read buffer (-1 = the event
  /// failed to open — e.g. LLC misses in a VM — and reads as 0).
  int read_index_[kEvents] = {-1, -1, -1, -1};
  bool cputime_ = false;
};

}  // namespace dpgen::obs
