#pragma once
// Live run telemetry (ISSUE 6): per-rank heartbeats, periodic scheduler
// snapshots, and an online straggler detector.
//
// Everything post-hoc in obs/ (traces, dpgen.report.v1, bench baselines)
// only exists after a run ends; the Monitor is the *live* view.  Each rank
// publishes a RankSnapshot into a double-buffered seqlock slot whenever the
// sampler asks for one, so the driver's steady-state loop pays exactly one
// relaxed atomic load per tile (claim()) and zero allocations — the PR 2
// hot-path invariant holds with monitoring on.
//
// Snapshots are consumed two ways:
//   * an append-only `dpgen.events.v1` JSONL event log (one JSON object per
//     line: run_start / heartbeat / straggler / stall_warning / run_end),
//     schema-checked by tools/events_schema.json like the report and bench
//     documents;
//   * the in-process MonitorHub registry, which `dpgen-top` polls to render
//     a refreshing per-rank table and HTML dashboard.
//
// Straggler detection is *pace*-based rather than progress-fraction-based:
// in a wavefront DP the downstream ranks legitimately start late (pipeline
// fill) and spend long stretches dependency-starved, so comparing completed
// fractions at the same wall instant would flag perfectly healthy ranks.
// Instead each rank is clocked only over its own *active* time — detector
// ticks where it completed a tile, had ready tiles queued, or had workers
// inside a kernel, each weighted by the fraction of its workers actually
// busy — and its progress is scaled by the Ehrhart-predicted work share
// W_r the planner assigned (per-rank tiles are not equal-cost):
//
//   pace_r = (executed_r / owned_r) * W_r / active_seconds_r
//
// i.e. predicted cells completed per second of actually-usable time.  On a
// balanced machine every rank converges to the same cells/s regardless of
// where the wavefront serialises; a slow node falls below while the ranks
// it starves stay at full pace (their starved ticks don't count).  A rank
// is flagged when pace < `pace_floor` x median(pace) for `lag_consecutive`
// consecutive detector ticks after a short warmup.  Finished ranks freeze
// their final pace: they keep anchoring the median, stay quiet on balanced
// runs even at the drain phase (a frozen healthy pace sits at the median),
// and a straggler whose stage serialised before its peers even started is
// still caught retrospectively once the fleet median forms.
//
// Time is injected, not assumed: the engine publishes wall time (now_s()),
// the simulator publishes DES time and drives tick() from the event loop,
// so detector behaviour is testable deterministically.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dpgen::obs {

/// One rank's instantaneous state, as published into the seqlock slot and
/// echoed on heartbeat events.  `t_s` is seconds since run start on the
/// publisher's clock (wall for engine/generated runs, DES for the sim).
struct RankSnapshot {
  long long epoch = 0;  ///< heartbeat number, assigned by the Monitor
  double t_s = 0.0;
  long long executed = 0;
  /// Cells of tiles *started* so far, credited at dispatch (0 = publisher
  /// can't count cells).  The detector prefers this over tile counts: tile
  /// costs are heavy-tailed, so tiles-at-average-cost overstates early
  /// progress for ranks whose cheap boundary tiles finish first, and
  /// completion-credit is a step function whose flats (a worker inside one
  /// expensive tile) would read as stalls.
  long long executed_cells = 0;
  long long owned = 0;
  long long pending_tiles = 0;
  long long ready_tiles = 0;
  long long buffered_edges = 0;
  long long blocked_senders = 0;
  long long bytes_sent = 0;
  long long messages_sent = 0;
  long long progress_marker = 0;
  /// Workers currently inside a tile kernel (busy cores in the sim), and
  /// the rank's total worker count.  Their ratio weights the detector's
  /// active-time accounting: a tick spent with 1 of 2 workers busy counts
  /// as half a tick, so a rank trickle-fed by a slow upstream is judged
  /// at its true per-worker speed instead of half of it.
  long long active_workers = 0;
  long long workers = 1;
  /// Messages waiting in this rank's mailbox when the snapshot was taken —
  /// the live backpressure gauge (a persistently deep mailbox means the
  /// rank polls slower than its upstreams send).
  long long mailbox_depth = 0;
  /// Continuous-profiling totals for this rank (obs::Profiler::rank_totals;
  /// all zero when the run is not profiled).  `prof_cycles` counts thread
  /// CPU ns instead of cycles when the profiler runs in cputime mode —
  /// consumers derive IPC only when prof_instructions > 0.
  long long prof_cycles = 0;
  long long prof_instructions = 0;
  long long prof_sampled_cells = 0;
  long long prof_sampled_exec_ns = 0;
};

/// A straggler verdict: `rank` completed work at `pace` predicted-cells per
/// active second against a fleet median of `median_pace`;
/// `lag` = 1 - pace/median.
struct StragglerFlag {
  int rank = -1;
  double t_s = 0.0;
  double pace = 0.0;
  double median_pace = 0.0;
  double lag = 0.0;
};

struct MonitorOptions {
  int nranks = 1;
  /// Sampling / detector period in publisher-clock seconds.
  double interval_s = 0.05;
  /// Append-only dpgen.events.v1 JSONL path ("" = no event log).
  std::string events_path;
  /// Ehrhart-predicted per-rank work share (cells or tiles; only ratios
  /// matter).  Normalises pace across ranks whose tiles differ in cost and
  /// is echoed on run_start.  Empty (or not one positive entry per rank) =
  /// unknown: paces fall back to plain owned-fractions per active second.
  std::vector<double> predicted_work;
  /// Flag a rank when pace < pace_floor * median(pace)...
  double pace_floor = 0.5;
  /// ...for this many consecutive detector ticks...
  int lag_consecutive = 2;
  /// ...once t >= warmup_s (negative = default 2 * interval_s).
  double warmup_s = -1.0;
  /// A rank's pace joins the median (and can be flagged) only after it has
  /// completed this many tiles over this many active ticks.  Below either
  /// threshold the estimate is quantisation noise — one cheap boundary
  /// tile finishing inside the first interval reads as a severalfold
  /// pace, and a single expensive tile as a severalfold deficit.
  long long min_executed_tiles = 3;
  int min_active_ticks = 3;
  /// Spawn a wall-clock sampler thread (engine runs).  The simulator sets
  /// this false and drives tick() from DES time instead.
  bool sampler_thread = true;
  std::string source = "engine";  ///< "engine" | "sim" | "generated"
  std::string problem;            ///< problem name, for run_start
  /// Append to an existing event log instead of truncating it.  The
  /// fault-tolerant engine opens one Monitor per restart attempt; the
  /// attempts after the first append, so a recovered run leaves a single
  /// continuous JSONL history (rank_failed / restart events included).
  bool append = false;
};

class Monitor {
 public:
  explicit Monitor(MonitorOptions opt);
  ~Monitor();

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  // ---- hot path (publisher rank threads) ----

  /// True when the sampler asked for a fresh snapshot from `rank`.  One
  /// relaxed load in the common (false) case; claiming clears the flag so
  /// at most one worker per rank pays for the snapshot per interval.
  bool claim(int rank) {
    Slot& sl = slots_[static_cast<std::size_t>(rank)];
    if (!sl.want.load(std::memory_order_relaxed)) return false;
    return sl.want.exchange(false, std::memory_order_relaxed);
  }

  /// Publishes `snap` into rank's seqlock slot (epoch is assigned here) and
  /// appends a heartbeat event.  Single writer per rank; readers never
  /// block it.
  void publish(int rank, const RankSnapshot& snap);

  /// Records a stall warning (driver, at 50% of the stall timeout).
  void stall_warning(int rank, const RankSnapshot& snap, double waited_s,
                     double timeout_s);

  /// Records a rank declared dead by the fault layer (fault-tolerant
  /// engine runs): emits a `rank_failed` event carrying the failure
  /// reason string.
  void rank_failed(int rank, const std::string& reason);

  /// Records a checkpoint restart: emits a `restart` event with the
  /// 1-based attempt number and the surviving rank count.
  void restart_event(int attempt, int alive);

  // ---- sampler / simulator ----

  /// Seconds since Monitor construction on the wall clock.
  double now_s() const;

  /// One sampler step at publisher-clock time `t_s`: raises every rank's
  /// want flag and runs the straggler detector over the latest snapshots.
  /// Called by the internal sampler thread (engine) or the DES loop (sim).
  void tick(double t_s);

  /// Stops the sampler, runs a final detector pass at `t_end_s` (negative =
  /// now_s()), and writes the run_end event.  Idempotent; the destructor
  /// calls it too.
  void stop(double t_end_s = -1.0);

  // ---- readers (dpgen-top, tests) ----

  /// Latest snapshot for `rank` (epoch 0 = none published yet).  Lock-free
  /// seqlock read; safe concurrently with publish().
  RankSnapshot latest(int rank) const;
  std::vector<RankSnapshot> latest_all() const;

  std::vector<StragglerFlag> stragglers() const;
  long long heartbeats() const {
    return heartbeats_.load(std::memory_order_relaxed);
  }
  long long stall_warnings() const {
    return stall_warnings_.load(std::memory_order_relaxed);
  }
  long long rank_failures() const {
    return rank_failures_.load(std::memory_order_relaxed);
  }
  const MonitorOptions& options() const { return opt_; }

 private:
  // The two snapshot buffers mirror RankSnapshot with relaxed atomics so a
  // lapped reader observes torn-but-well-defined values (discarded by the
  // seq recheck) instead of a data race.
  struct Buf {
    std::atomic<long long> epoch{0};
    std::atomic<double> t_s{0.0};
    std::atomic<long long> executed{0};
    std::atomic<long long> executed_cells{0};
    std::atomic<long long> owned{0};
    std::atomic<long long> pending_tiles{0};
    std::atomic<long long> ready_tiles{0};
    std::atomic<long long> buffered_edges{0};
    std::atomic<long long> blocked_senders{0};
    std::atomic<long long> bytes_sent{0};
    std::atomic<long long> messages_sent{0};
    std::atomic<long long> progress_marker{0};
    std::atomic<long long> active_workers{0};
    std::atomic<long long> workers{1};
    std::atomic<long long> mailbox_depth{0};
    std::atomic<long long> prof_cycles{0};
    std::atomic<long long> prof_instructions{0};
    std::atomic<long long> prof_sampled_cells{0};
    std::atomic<long long> prof_sampled_exec_ns{0};
  };
  struct Slot {
    std::atomic<std::uint32_t> seq{0};  ///< even; (seq >> 1) & 1 = live buf
    Buf buf[2];
    std::atomic<bool> want{false};
    long long epoch = 0;  ///< publisher-private heartbeat counter
  };
  /// Per-rank detector state (guarded by det_mu_).
  struct Det {
    long long last_executed = 0;  ///< executed count at the previous tick
    double active_s = 0.0;    ///< accumulated active time (see header doc)
    double pace = 0.0;        ///< latest (or frozen final) pace
    bool valid = false;       ///< pace is meaningful this tick
    bool finished = false;    ///< executed == owned observed; pace frozen
    int lag_count = 0;        ///< consecutive below-floor ticks
    bool flagged = false;     ///< already reported (sticky)
  };

  void detect_locked(double t_s);
  void event_line(const std::string& line);
  void write_event_header(const char* event, double t_s);

  MonitorOptions opt_;
  /// predicted_work is usable: one positive entry per rank.
  bool use_weights_ = false;
  std::chrono::steady_clock::time_point start_;
  std::unique_ptr<Slot[]> slots_;

  std::atomic<long long> heartbeats_{0};
  std::atomic<long long> stall_warnings_{0};
  std::atomic<long long> rank_failures_{0};

  mutable std::mutex det_mu_;
  std::vector<Det> det_;
  std::vector<StragglerFlag> flags_;

  std::mutex ev_mu_;
  std::ofstream events_;
  bool events_open_ = false;

  std::mutex stop_mu_;
  bool stopped_ = false;
  std::thread sampler_;
  std::mutex cv_mu_;
  std::condition_variable cv_;
  bool quit_ = false;
};

/// Process-wide registry of live Monitors, so `dpgen-top` (which runs the
/// engine in-process — ranks are threads, not processes) can watch a run
/// it did not create.  Monitors register on construction and unregister on
/// destruction; visit() holds the registry lock for the callback's whole
/// duration, so the pointers it passes cannot dangle.
class MonitorHub {
 public:
  static MonitorHub& instance();

  template <typename Fn>
  void visit(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mu_);
    for (Monitor* m : monitors_) fn(*m);
  }

  std::size_t count() {
    std::lock_guard<std::mutex> lock(mu_);
    return monitors_.size();
  }

 private:
  friend class Monitor;
  void add(Monitor* m);
  void remove(Monitor* m);

  std::mutex mu_;
  std::vector<Monitor*> monitors_;
};

}  // namespace dpgen::obs
