#include "obs/export.hpp"

#include <algorithm>
#include <fstream>
#include <set>

#include "support/error.hpp"
#include "support/str.hpp"

namespace dpgen::obs {

namespace {

/// Microsecond timestamp with nanosecond precision (trace-event "ts").
/// Timestamps are steady-clock offsets from the tracer epoch, never
/// negative; anything else is clamped to zero.
std::string us_from_ns(std::int64_t ns) {
  if (ns < 0) ns = 0;
  std::string out = cat(ns / 1000);
  std::int64_t frac = ns % 1000;
  if (frac == 0) return out;
  std::string f = cat(frac);
  return cat(out, ".", std::string(3 - f.size(), '0'), f);
}

std::string tile_string(const Span& s) {
  std::string out = "(";
  for (int k = 0; k < s.ncoord; ++k)
    out += cat(k ? ", " : "", s.coord[static_cast<std::size_t>(k)]);
  return out + ")";
}

std::string track_name(int rank) {
  return rank < 0 ? std::string("setup") : cat("rank ", rank);
}

}  // namespace

std::string chrome_trace_json(const std::vector<Span>& spans,
                              std::uint64_t dropped,
                              const std::vector<MsgRecord>& msgs) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& event) {
    out += cat(first ? "" : ",\n", event);
    first = false;
  };

  // Metadata: name every rank's process track and every thread track.
  std::set<int> ranks;
  std::set<std::pair<int, int>> threads;
  for (const Span& s : spans) {
    ranks.insert(s.rank);
    threads.insert({s.rank, s.thread});
  }
  for (const MsgRecord& m : msgs) {
    // Flow endpoints need their tracks named even when span collection
    // missed the thread (ring overflow).
    ranks.insert(m.src);
    ranks.insert(m.dst);
    threads.insert({m.src, m.src_thread});
    threads.insert({m.dst, m.dst_thread});
  }
  for (int r : ranks)
    emit(cat("{\"ph\":\"M\",\"pid\":", r,
             ",\"name\":\"process_name\",\"args\":{\"name\":\"",
             track_name(r), "\"}}"));
  for (auto [r, t] : threads)
    emit(cat("{\"ph\":\"M\",\"pid\":", r, ",\"tid\":", t,
             ",\"name\":\"thread_name\",\"args\":{\"name\":\"worker ", t,
             "\"}}"));

  for (const Span& s : spans) {
    std::string args;
    if (s.ncoord > 0) args = cat(",\"tile\":\"", tile_string(s), "\"");
    std::string name = phase_name(s.phase);
    if (s.phase == Phase::kTileExecute && s.ncoord > 0)
      name = cat(name, " ", tile_string(s));
    emit(cat("{\"ph\":\"X\",\"pid\":", s.rank, ",\"tid\":", s.thread,
             ",\"ts\":", us_from_ns(s.start_ns),
             ",\"dur\":", us_from_ns(std::max<std::int64_t>(
                              0, s.end_ns - s.start_ns)),
             ",\"name\":\"", name, "\",\"cat\":\"", phase_name(s.phase),
             "\",\"args\":{\"phase\":\"", phase_name(s.phase), "\"", args,
             "}}"));
  }
  // Flow events: one "s"/"f" pair per message, identified by the per-link
  // sequence number.  The start binds to the sender's enclosing send span
  // at send time; "bp":"e" makes the finish bind to the receiver's
  // enclosing span at dispatch time rather than the next slice.
  for (const MsgRecord& m : msgs) {
    const std::string id = cat(m.src, ":", m.dst, ":", m.seq);
    emit(cat("{\"ph\":\"s\",\"cat\":\"msg\",\"name\":\"msg\",\"id\":\"", id,
             "\",\"pid\":", m.src, ",\"tid\":", m.src_thread,
             ",\"ts\":", us_from_ns(m.send_ns), "}"));
    emit(cat("{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"msg\",\"name\":\"msg\","
             "\"id\":\"", id, "\",\"pid\":", m.dst, ",\"tid\":",
             m.dst_thread, ",\"ts\":", us_from_ns(m.dispatch_ns), "}"));
  }

  out += cat("\n],\"displayTimeUnit\":\"ms\",\"metadata\":{\"spans_dropped\":",
             dropped, "}}\n");
  return out;
}

void write_chrome_trace(const std::string& path,
                        const std::vector<Span>& spans,
                        std::uint64_t dropped,
                        const std::vector<MsgRecord>& msgs) {
  std::ofstream out(path);
  DPGEN_CHECK(out.good(), cat("cannot open trace output '", path, "'"));
  out << chrome_trace_json(spans, dropped, msgs);
  DPGEN_CHECK(out.good(), cat("error writing trace '", path, "'"));
}

void write_metrics_json(const std::string& path,
                        const MetricsRegistry& registry) {
  std::ofstream out(path);
  DPGEN_CHECK(out.good(), cat("cannot open metrics output '", path, "'"));
  out << registry.to_json();
  DPGEN_CHECK(out.good(), cat("error writing metrics '", path, "'"));
}

}  // namespace dpgen::obs
