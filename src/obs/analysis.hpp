#pragma once
// Performance attribution: turns a recorded run into a report that says
// where the makespan went.
//
// Three analyses, each answering a question the raw telemetry (PR 1's
// spans and counters) leaves to eyeballing:
//   1. Critical path — reconstruct the executed tile DAG from the
//      tile_execute spans plus the tile-dependency offsets (tile t
//      depends on t + offset, the TilingModel's edge convention), walk
//      back from the last-finishing tile along latest-finishing
//      predecessors, and attribute every nanosecond of the makespan along
//      that chain to compute / pack / unpack / send / blocked-send /
//      poll / idle / other.  The attribution sums to the makespan by
//      construction.
//   2. Load-balance audit — the paper's Sec. IV.J premise is that
//      Ehrhart-polynomial work counts predict per-rank runtime; the
//      report puts the LoadBalancer's predicted per-rank share next to
//      the measured per-rank tile_execute time and the per-rank error.
//   3. Communication matrix — the per-peer minimpi counters rendered as
//      a rank x rank bytes/messages matrix with row/column totals.
//
// One analyzer serves every producer: engine runs
// (EngineOptions::report_json_path), generated programs (--report=FILE),
// the cluster simulator's replayed timelines (sim::analysis_input), and
// re-ingested trace files (tools/dpgen-analyze --trace).  The JSON shape
// is schema-stable ("dpgen.report.v1", tools/report_schema.json).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/msgtrace.hpp"
#include "obs/trace.hpp"
#include "support/json.hpp"
#include "support/vec.hpp"

namespace dpgen::obs {

/// Everything the analyzer consumes.  Producers fill what they have;
/// empty members degrade gracefully (no offsets -> single-tile path with
/// a warning, no matrices -> comm section omitted from the text view).
struct AnalysisInput {
  std::vector<Span> spans;
  /// Ranks in the run; 0 derives it from the spans.
  int nranks = 0;
  /// Tile-dependency offsets: tile t depends on tile t + offset (the
  /// TilingModel / kEdgeOffsets convention).
  std::vector<IntVec> edge_offsets;
  /// LoadBalancer-predicted (Ehrhart) work per rank, in locations.
  std::vector<double> predicted_work;
  /// Per-peer send totals, [source][destination].
  std::vector<std::vector<std::uint64_t>> bytes_matrix;
  std::vector<std::vector<std::uint64_t>> messages_matrix;
  /// Tracer::dropped() at export time: nonzero means the timeline (and
  /// therefore every reading of it) is incomplete.
  std::uint64_t spans_dropped = 0;
  std::string source;   ///< "engine" | "generated" | "sim" | "trace"
  std::string problem;  ///< problem name, when known
  IntVec params;        ///< parameter values, when known
  /// Codegen optimization passes live during the run (generated programs:
  /// the generation-time pipeline minus anything --passes=none disabled).
  std::vector<std::string> passes;
  /// Per-message lifecycle records (causal message tracing); empty =
  /// untraced run, msgtrace analyses are skipped.
  std::vector<MsgRecord> msg_records;
  /// MsgTracer::dropped() at export time.
  std::uint64_t msg_records_dropped = 0;
};

/// Seconds attributed to each phase bucket.  `other` is the uncovered
/// remainder (scheduler bookkeeping, setup scans, untraced stretches), so
/// total() equals the attributed window exactly.
struct PhaseBreakdown {
  double compute = 0.0;
  double unpack = 0.0;
  double pack = 0.0;
  double send = 0.0;
  double blocked_send = 0.0;
  double poll = 0.0;
  double idle = 0.0;
  double barrier = 0.0;
  double other = 0.0;

  double total() const {
    return compute + unpack + pack + send + blocked_send + poll + idle +
           barrier + other;
  }
  PhaseBreakdown& operator+=(const PhaseBreakdown& o);
};

/// One tile on the critical path, in execution order.
struct CriticalPathStep {
  IntVec tile;
  int rank = 0;
  int thread = 0;
  double start_s = 0.0;  ///< relative to the run start
  double end_s = 0.0;
  /// Wait between the predecessor's finish (or the run start) and this
  /// tile's execute start — the window the gap attribution explains.
  double gap_before_s = 0.0;
};

/// Predicted-vs-measured audit for one rank.
struct RankAudit {
  int rank = 0;
  long long tiles = 0;
  /// Sum of this rank's tile_execute durations (all threads).
  double measured_compute_s = 0.0;
  /// Last span end minus first span start on this rank.
  double wall_s = 0.0;
  /// Sum of the per-thread track windows (phases.total() equals this by
  /// construction — the per-rank conservation invariant).
  double thread_seconds = 0.0;
  /// Whole-rank phase totals, summed over the rank's worker threads.
  PhaseBreakdown phases;
  double predicted_work = 0.0;   ///< Ehrhart locations owned by this rank
  double predicted_share = 0.0;  ///< predicted_work / total predicted
  double measured_share = 0.0;   ///< measured_compute_s / total measured
  /// measured_share - predicted_share: positive means the rank did more
  /// of the work than the Ehrhart counts promised.
  double share_error = 0.0;
};

struct AnalysisReport {
  std::string source;
  std::string problem;
  IntVec params;
  int nranks = 0;
  /// Codegen passes live during the run (copied from the input).
  std::vector<std::string> passes;
  /// Run start (earliest in-rank span) to last tile finish, seconds.
  double makespan_s = 0.0;
  std::uint64_t spans_dropped = 0;
  std::vector<std::string> warnings;

  // ---- (1) critical path --------------------------------------------------
  std::vector<CriticalPathStep> critical_path;
  /// Attribution of the whole [run start, last tile finish] window along
  /// the path: compute is the path tiles' execute time (plus other tiles
  /// run on the same thread during waits); the rest explains the gaps.
  PhaseBreakdown path_attribution;
  /// path_attribution.total() / makespan_s — 1.0 unless clock anomalies
  /// forced a gap clamp.
  double path_coverage = 0.0;

  // ---- (2) load-balance audit ---------------------------------------------
  std::vector<RankAudit> ranks;
  double predicted_imbalance = 0.0;  ///< max/avg predicted work
  double measured_imbalance = 0.0;   ///< max/avg measured compute time

  // ---- (3) communication matrix -------------------------------------------
  std::vector<std::vector<std::uint64_t>> bytes_matrix;
  std::vector<std::vector<std::uint64_t>> messages_matrix;
  std::uint64_t total_bytes = 0;
  std::uint64_t total_messages = 0;

  // ---- (4) measured message path (causal message tracing) -----------------
  // Same walk and the same gap-attribution mechanics as (1), but
  // predecessors are chosen by *measured* arrival: a remote dependency
  // becomes available at its record's deliver stamp, a local one at the
  // producer's execute end.  Cross-checking this path against the inferred
  // one is the tracing stack's end-to-end self-test.
  std::vector<CriticalPathStep> measured_path;
  PhaseBreakdown measured_attribution;
  double measured_coverage = 0.0;
  /// True when message records were supplied and the path was computed.
  bool measured_path_valid = false;
  /// Aggregate queueing-delay decomposition over all message records
  /// (integer ns; total() == summed end-to-end latency exactly).
  MsgQueueing queueing;
  std::uint64_t msg_records = 0;
  std::uint64_t msg_records_dropped = 0;
};

/// Runs all three analyses.  Pure function of the input; deterministic.
AnalysisReport analyze(const AnalysisInput& input);

/// Schema-stable JSON rendering ("dpgen.report.v1";
/// tools/report_schema.json is the contract).
std::string report_json(const AnalysisReport& report);

/// Human-readable rendering (the CLI's default output).
std::string report_text(const AnalysisReport& report);

/// Writes report_json to `path` (throws dpgen::Error on I/O failure).
void write_report_json(const std::string& path,
                       const AnalysisReport& report);

// ---- report diffing -------------------------------------------------------
//
// Two reports of the same problem taken before and after a change answer
// "what got slower, and where": the delta of the critical-path phase
// buckets localises a makespan change to compute vs communication vs
// waiting, and the comm totals say whether the message traffic moved.

/// Delta between two dpgen.report.v1 documents (new minus old
/// throughout).
struct ReportDelta {
  std::string old_source, new_source;
  std::string old_problem, new_problem;
  double old_makespan_s = 0.0, new_makespan_s = 0.0;
  long long old_path_tiles = 0, new_path_tiles = 0;
  /// Critical-path attribution of each report.
  PhaseBreakdown old_phases, new_phases;
  double old_total_bytes = 0.0, new_total_bytes = 0.0;
  double old_total_messages = 0.0, new_total_messages = 0.0;
  double old_measured_imbalance = 0.0, new_measured_imbalance = 0.0;
  /// Codegen pass lists, comma-joined ("" when absent/none) — a diff in
  /// which these differ compares two different emissions of the problem.
  std::string old_passes, new_passes;
  /// Attribution buckets outside the canonical nine (a newer report
  /// revision's extra phases vs an old archive).  Keyed by bucket name; a
  /// bucket present in only one report diffs against 0 on the other side
  /// instead of being silently dropped.
  std::map<std::string, double> old_extra_phases, new_extra_phases;
};

/// Extracts the comparable summary of two parsed dpgen.report.v1
/// documents (throws dpgen::Error when either is not a v1 report).
ReportDelta diff_reports(const json::Value& old_report,
                         const json::Value& new_report);

/// Human-readable old/new/delta table.
std::string diff_text(const ReportDelta& delta);

/// Machine-readable rendering ("dpgen.reportdiff.v1").
std::string diff_json(const ReportDelta& delta);

}  // namespace dpgen::obs
