#pragma once
// Named metrics: counters, gauges and log2-bucketed histograms.
//
// The registry subsumes the ad-hoc RunStats / TableStats / Comm counters:
// the runtime, comm layer and tile table publish into it under a
// dotted-name convention (`<component>.<metric>[_<unit>]`, see
// docs/observability.md), and the whole registry dumps as one JSON or
// text document.  Instruments are created once (mutex-guarded name
// lookup) and then updated with single relaxed atomics, so they are safe
// and cheap on hot paths; callers cache the returned references.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dpgen::obs {

/// Monotone event count.
class Counter {
 public:
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() { add(1); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Point-in-time level; also tracks the maximum level ever set.
class Gauge {
 public:
  void set(std::int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    std::int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  /// Clears the level AND the high-water mark: back-to-back runs in one
  /// process must not inherit the previous run's peak through
  /// MetricsRegistry::reset().
  void reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Histogram over nonnegative values with power-of-two bucket boundaries:
/// bucket b counts observations in [2^(b-1), 2^b) (bucket 0 holds 0).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(std::int64_t v);

  std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t min() const { return min_.load(std::memory_order_relaxed); }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::int64_t bucket(int b) const {
    return buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
  }

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside
  /// the log2 bucket holding the target rank, clamped to [min, max].
  /// Exact at the bucket boundaries; within a factor of 2 inside.
  double quantile(double q) const;

  void reset();

 private:
  std::atomic<std::int64_t> buckets_[kBuckets] = {};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Process-wide registry of named instruments.  Names are stable for the
/// life of the process; reset() zeroes values but keeps instruments so
/// cached references stay valid.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// {"counters":{...},"gauges":{...},"histograms":{...}}
  std::string to_json() const;
  /// One `name value` line per instrument (Prometheus-flavoured).
  std::string to_text() const;

  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace dpgen::obs
