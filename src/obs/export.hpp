#pragma once
// Trace / metrics exporters.
//
// chrome_trace_json renders spans in the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// one complete ("ph":"X") event per span, pid = rank, tid = thread, so
// Perfetto / chrome://tracing shows one track per rank x thread.  The
// cluster simulator's schedule goes through the same Span type, so
// simulated and real timelines open side by side in one viewer.

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dpgen::obs {

/// Renders spans as a Chrome trace-event JSON document.  `dropped` is
/// Tracer::dropped() at export time; it is surfaced in the document's
/// "metadata" object ("spans_dropped") so a reader — human or the
/// analyzer — knows when ring-buffer overflow truncated the timeline.
std::string chrome_trace_json(const std::vector<Span>& spans,
                              std::uint64_t dropped = 0);

/// Writes chrome_trace_json(spans, dropped) to `path` (throws
/// dpgen::Error on I/O failure).
void write_chrome_trace(const std::string& path,
                        const std::vector<Span>& spans,
                        std::uint64_t dropped = 0);

/// Writes the registry's JSON dump to `path`.
void write_metrics_json(const std::string& path,
                        const MetricsRegistry& registry);

}  // namespace dpgen::obs
