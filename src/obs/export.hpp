#pragma once
// Trace / metrics exporters.
//
// chrome_trace_json renders spans in the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// one complete ("ph":"X") event per span, pid = rank, tid = thread, so
// Perfetto / chrome://tracing shows one track per rank x thread.  The
// cluster simulator's schedule goes through the same Span type, so
// simulated and real timelines open side by side in one viewer.

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/msgtrace.hpp"
#include "obs/trace.hpp"

namespace dpgen::obs {

/// Renders spans as a Chrome trace-event JSON document.  `dropped` is
/// Tracer::dropped() at export time; it is surfaced in the document's
/// "metadata" object ("spans_dropped") so a reader — human or the
/// analyzer — knows when ring-buffer overflow truncated the timeline.
/// When `msgs` is non-empty each message record also emits a Perfetto
/// flow pair: "s" on the sender's track at send time, "f" on the
/// receiver's track at dispatch time, so the viewer draws an arrow from
/// the producing send span to the consuming dispatch.
std::string chrome_trace_json(const std::vector<Span>& spans,
                              std::uint64_t dropped = 0,
                              const std::vector<MsgRecord>& msgs = {});

/// Writes chrome_trace_json(spans, dropped, msgs) to `path` (throws
/// dpgen::Error on I/O failure).
void write_chrome_trace(const std::string& path,
                        const std::vector<Span>& spans,
                        std::uint64_t dropped = 0,
                        const std::vector<MsgRecord>& msgs = {});

/// Writes the registry's JSON dump to `path`.
void write_metrics_json(const std::string& path,
                        const MetricsRegistry& registry);

}  // namespace dpgen::obs
