// Live telemetry: seqlock publication, JSONL event log, pace-based
// straggler detection.  See monitor.hpp for the design rationale.

#include "obs/monitor.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/json.hpp"
#include "support/str.hpp"

namespace dpgen::obs {

MonitorHub& MonitorHub::instance() {
  static MonitorHub hub;
  return hub;
}

void MonitorHub::add(Monitor* m) {
  std::lock_guard<std::mutex> lock(mu_);
  monitors_.push_back(m);
}

void MonitorHub::remove(Monitor* m) {
  std::lock_guard<std::mutex> lock(mu_);
  monitors_.erase(std::remove(monitors_.begin(), monitors_.end(), m),
                  monitors_.end());
}

Monitor::Monitor(MonitorOptions opt) : opt_(std::move(opt)) {
  DPGEN_CHECK(opt_.nranks >= 1, "monitor: nranks must be >= 1");
  DPGEN_CHECK(opt_.interval_s > 0, "monitor: interval must be positive");
  DPGEN_CHECK(opt_.pace_floor > 0 && opt_.pace_floor < 1,
              "monitor: pace_floor must be in (0, 1)");
  DPGEN_CHECK(opt_.lag_consecutive >= 1,
              "monitor: lag_consecutive must be >= 1");
  DPGEN_CHECK(opt_.min_executed_tiles >= 1 && opt_.min_active_ticks >= 1,
              "monitor: validity thresholds must be >= 1");
  if (opt_.warmup_s < 0) opt_.warmup_s = 2.0 * opt_.interval_s;
  // Weights need one finite non-negative entry per rank; zero entries are
  // fine (a rank owning no work never enters detection anyway).
  use_weights_ =
      opt_.predicted_work.size() == static_cast<std::size_t>(opt_.nranks) &&
      std::all_of(opt_.predicted_work.begin(), opt_.predicted_work.end(),
                  [](double w) { return w >= 0 && std::isfinite(w); });
  start_ = std::chrono::steady_clock::now();
  slots_ = std::make_unique<Slot[]>(static_cast<std::size_t>(opt_.nranks));
  det_.resize(static_cast<std::size_t>(opt_.nranks));

  if (!opt_.events_path.empty()) {
    events_.open(opt_.events_path,
                 opt_.append ? (std::ios::out | std::ios::app)
                             : (std::ios::out | std::ios::trunc));
    DPGEN_CHECK(events_.good(),
                cat("monitor: cannot open events file ", opt_.events_path));
    events_open_ = true;
    json::Writer w;
    w.begin_object();
    w.key("schema").value("dpgen.events.v1");
    w.key("event").value("run_start");
    w.key("t_s").value(0.0);
    w.key("source").value(opt_.source);
    if (!opt_.problem.empty()) w.key("problem").value(opt_.problem);
    w.key("nranks").value(opt_.nranks);
    w.key("interval_s").value(opt_.interval_s);
    w.key("pace_floor").value(opt_.pace_floor);
    w.key("lag_consecutive").value(opt_.lag_consecutive);
    w.key("warmup_s").value(opt_.warmup_s);
    w.key("min_executed_tiles").value(opt_.min_executed_tiles);
    w.key("min_active_ticks").value(opt_.min_active_ticks);
    if (!opt_.predicted_work.empty()) {
      w.key("predicted_work").begin_array();
      for (double v : opt_.predicted_work) w.value(v);
      w.end_array();
    }
    w.end_object();
    event_line(w.str());
  }

  MonitorHub::instance().add(this);

  if (opt_.sampler_thread) {
    sampler_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(cv_mu_);
      for (;;) {
        cv_.wait_for(lock,
                     std::chrono::duration<double>(opt_.interval_s),
                     [this] { return quit_; });
        if (quit_) return;
        lock.unlock();
        tick(now_s());
        lock.lock();
      }
    });
  }
}

Monitor::~Monitor() {
  stop();
  MonitorHub::instance().remove(this);
}

double Monitor::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

void Monitor::event_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(ev_mu_);
  if (!events_open_) return;
  events_ << line << '\n';
  events_.flush();
}

void Monitor::publish(int rank, const RankSnapshot& snap) {
  DPGEN_ASSERT(rank >= 0 && rank < opt_.nranks);
  Slot& sl = slots_[static_cast<std::size_t>(rank)];
  const long long epoch = ++sl.epoch;

  const std::uint32_t s = sl.seq.load(std::memory_order_relaxed);
  Buf& b = sl.buf[((s >> 1) + 1) & 1];
  b.epoch.store(epoch, std::memory_order_relaxed);
  b.t_s.store(snap.t_s, std::memory_order_relaxed);
  b.executed.store(snap.executed, std::memory_order_relaxed);
  b.executed_cells.store(snap.executed_cells, std::memory_order_relaxed);
  b.owned.store(snap.owned, std::memory_order_relaxed);
  b.pending_tiles.store(snap.pending_tiles, std::memory_order_relaxed);
  b.ready_tiles.store(snap.ready_tiles, std::memory_order_relaxed);
  b.buffered_edges.store(snap.buffered_edges, std::memory_order_relaxed);
  b.blocked_senders.store(snap.blocked_senders, std::memory_order_relaxed);
  b.bytes_sent.store(snap.bytes_sent, std::memory_order_relaxed);
  b.messages_sent.store(snap.messages_sent, std::memory_order_relaxed);
  b.progress_marker.store(snap.progress_marker, std::memory_order_relaxed);
  b.active_workers.store(snap.active_workers, std::memory_order_relaxed);
  b.workers.store(snap.workers, std::memory_order_relaxed);
  b.mailbox_depth.store(snap.mailbox_depth, std::memory_order_relaxed);
  b.prof_cycles.store(snap.prof_cycles, std::memory_order_relaxed);
  b.prof_instructions.store(snap.prof_instructions,
                            std::memory_order_relaxed);
  b.prof_sampled_cells.store(snap.prof_sampled_cells,
                             std::memory_order_relaxed);
  b.prof_sampled_exec_ns.store(snap.prof_sampled_exec_ns,
                               std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  sl.seq.store(s + 2, std::memory_order_release);

  heartbeats_.fetch_add(1, std::memory_order_relaxed);

  if (events_open_) {
    json::Writer w;
    w.begin_object();
    w.key("schema").value("dpgen.events.v1");
    w.key("event").value("heartbeat");
    w.key("t_s").value(snap.t_s);
    w.key("rank").value(rank);
    w.key("epoch").value(epoch);
    w.key("executed").value(snap.executed);
    w.key("executed_cells").value(snap.executed_cells);
    w.key("owned").value(snap.owned);
    w.key("pending_tiles").value(snap.pending_tiles);
    w.key("ready_tiles").value(snap.ready_tiles);
    w.key("buffered_edges").value(snap.buffered_edges);
    w.key("blocked_senders").value(snap.blocked_senders);
    w.key("bytes_sent").value(snap.bytes_sent);
    w.key("messages_sent").value(snap.messages_sent);
    w.key("progress_marker").value(snap.progress_marker);
    w.key("active_workers").value(snap.active_workers);
    w.key("workers").value(snap.workers);
    w.key("mailbox_depth").value(snap.mailbox_depth);
    if (snap.prof_cycles > 0) {
      // Profiled runs only: live counter totals (cycles, or thread CPU ns
      // in cputime mode) so dpgen-top and log consumers can derive IPC and
      // cycles/cell without waiting for the final document.
      w.key("prof_cycles").value(snap.prof_cycles);
      w.key("prof_instructions").value(snap.prof_instructions);
      w.key("prof_sampled_cells").value(snap.prof_sampled_cells);
      w.key("prof_sampled_exec_ns").value(snap.prof_sampled_exec_ns);
    }
    w.end_object();
    event_line(w.str());
  }
}

void Monitor::stall_warning(int rank, const RankSnapshot& snap,
                            double waited_s, double timeout_s) {
  stall_warnings_.fetch_add(1, std::memory_order_relaxed);
  if (!events_open_) return;
  json::Writer w;
  w.begin_object();
  w.key("schema").value("dpgen.events.v1");
  w.key("event").value("stall_warning");
  w.key("t_s").value(snap.t_s);
  w.key("rank").value(rank);
  w.key("waited_s").value(waited_s);
  w.key("timeout_s").value(timeout_s);
  // Full scheduler snapshot: the warning is most useful when the consumer
  // can see *why* nothing is ready — blocked-sender depth, buffered edges
  // waiting on missing dependencies, and whether any worker is inside a
  // kernel at all.
  w.key("executed").value(snap.executed);
  w.key("executed_cells").value(snap.executed_cells);
  w.key("owned").value(snap.owned);
  w.key("pending_tiles").value(snap.pending_tiles);
  w.key("ready_tiles").value(snap.ready_tiles);
  w.key("buffered_edges").value(snap.buffered_edges);
  w.key("blocked_senders").value(snap.blocked_senders);
  w.key("bytes_sent").value(snap.bytes_sent);
  w.key("messages_sent").value(snap.messages_sent);
  w.key("active_workers").value(snap.active_workers);
  w.key("workers").value(snap.workers);
  w.key("progress_marker").value(snap.progress_marker);
  w.end_object();
  event_line(w.str());
}

void Monitor::rank_failed(int rank, const std::string& reason) {
  rank_failures_.fetch_add(1, std::memory_order_relaxed);
  if (!events_open_) return;
  json::Writer w;
  w.begin_object();
  w.key("schema").value("dpgen.events.v1");
  w.key("event").value("rank_failed");
  w.key("t_s").value(now_s());
  w.key("rank").value(rank);
  w.key("reason").value(reason);
  w.end_object();
  event_line(w.str());
}

void Monitor::restart_event(int attempt, int alive) {
  if (!events_open_) return;
  json::Writer w;
  w.begin_object();
  w.key("schema").value("dpgen.events.v1");
  w.key("event").value("restart");
  w.key("t_s").value(now_s());
  w.key("attempt").value(attempt);
  w.key("nranks").value(alive);
  w.end_object();
  event_line(w.str());
}

RankSnapshot Monitor::latest(int rank) const {
  DPGEN_ASSERT(rank >= 0 && rank < opt_.nranks);
  const Slot& sl = slots_[static_cast<std::size_t>(rank)];
  RankSnapshot out;
  for (;;) {
    const std::uint32_t s1 = sl.seq.load(std::memory_order_acquire);
    if (s1 == 0) return out;  // nothing published yet
    const Buf& b = sl.buf[(s1 >> 1) & 1];
    out.epoch = b.epoch.load(std::memory_order_relaxed);
    out.t_s = b.t_s.load(std::memory_order_relaxed);
    out.executed = b.executed.load(std::memory_order_relaxed);
    out.executed_cells = b.executed_cells.load(std::memory_order_relaxed);
    out.owned = b.owned.load(std::memory_order_relaxed);
    out.pending_tiles = b.pending_tiles.load(std::memory_order_relaxed);
    out.ready_tiles = b.ready_tiles.load(std::memory_order_relaxed);
    out.buffered_edges = b.buffered_edges.load(std::memory_order_relaxed);
    out.blocked_senders = b.blocked_senders.load(std::memory_order_relaxed);
    out.bytes_sent = b.bytes_sent.load(std::memory_order_relaxed);
    out.messages_sent = b.messages_sent.load(std::memory_order_relaxed);
    out.progress_marker = b.progress_marker.load(std::memory_order_relaxed);
    out.active_workers = b.active_workers.load(std::memory_order_relaxed);
    out.workers = b.workers.load(std::memory_order_relaxed);
    out.mailbox_depth = b.mailbox_depth.load(std::memory_order_relaxed);
    out.prof_cycles = b.prof_cycles.load(std::memory_order_relaxed);
    out.prof_instructions =
        b.prof_instructions.load(std::memory_order_relaxed);
    out.prof_sampled_cells =
        b.prof_sampled_cells.load(std::memory_order_relaxed);
    out.prof_sampled_exec_ns =
        b.prof_sampled_exec_ns.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint32_t s2 = sl.seq.load(std::memory_order_relaxed);
    if (s1 == s2) return out;  // not lapped mid-read
  }
}

std::vector<RankSnapshot> Monitor::latest_all() const {
  std::vector<RankSnapshot> out;
  out.reserve(static_cast<std::size_t>(opt_.nranks));
  for (int r = 0; r < opt_.nranks; ++r) out.push_back(latest(r));
  return out;
}

std::vector<StragglerFlag> Monitor::stragglers() const {
  std::lock_guard<std::mutex> lock(det_mu_);
  return flags_;
}

void Monitor::tick(double t_s) {
  {
    std::lock_guard<std::mutex> lock(det_mu_);
    detect_locked(t_s);
  }
  // Raise the want flags *after* detecting, so this tick judges the
  // snapshots requested by the previous one (a full interval old) rather
  // than half-written fresh ones.
  for (int r = 0; r < opt_.nranks; ++r)
    slots_[static_cast<std::size_t>(r)].want.store(
        true, std::memory_order_relaxed);
}

void Monitor::detect_locked(double t_s) {
  // Update per-rank pace from the latest snapshots.
  std::vector<double> paces;
  for (int r = 0; r < opt_.nranks; ++r) {
    Det& d = det_[static_cast<std::size_t>(r)];
    const RankSnapshot s = latest(r);
    if (s.epoch == 0 || s.owned <= 0) {
      d.valid = false;  // nothing published yet, or owns nothing
      continue;
    }
    if (d.finished) {
      paces.push_back(d.pace);
      continue;
    }
    // A tick counts as active when the rank completed a tile since the
    // last one, has ready tiles queued, or has workers inside a kernel —
    // weighted by the busy fraction of its workers, so a rank trickle-fed
    // at half capacity accrues half a tick.  Dependency-starved ticks
    // (wavefront not here yet / already past) accumulate no active time,
    // so starved ranks aren't mistaken for slow ones.
    const double workers =
        s.workers > 0 ? static_cast<double>(s.workers) : 1.0;
    double busy = static_cast<double>(s.active_workers);
    if (busy <= 0 && (s.executed > d.last_executed || s.ready_tiles > 0))
      busy = 1.0;  // progressed between samples; assume one worker's worth
    busy = std::min(busy, workers);
    d.last_executed = std::max(d.last_executed, s.executed);
    if (busy > 0) d.active_s += opt_.interval_s * (busy / workers);
    if (s.executed < opt_.min_executed_tiles ||
        d.active_s <
            (opt_.min_active_ticks - 0.5) * opt_.interval_s) {
      d.valid = false;  // idle so far, or too few samples to judge
      continue;
    }
    // Progress metric, best first: exact cells completed (publishers that
    // can count them), else the owned-fraction scaled by the predicted
    // work share — tiles-at-average-cost, which overstates early progress
    // when cheap boundary tiles finish first.
    double progress;
    if (s.executed_cells > 0) {
      progress = static_cast<double>(s.executed_cells);
    } else {
      double weight =
          use_weights_ ? opt_.predicted_work[static_cast<std::size_t>(r)]
                       : 1.0;
      if (weight <= 0) weight = 1.0;  // owns tiles but zero predicted cells
      progress = (static_cast<double>(s.executed) /
                  static_cast<double>(s.owned)) *
                 weight;
    }
    d.pace = progress / d.active_s;
    d.valid = true;
    if (s.executed >= s.owned) d.finished = true;  // freeze final pace
    paces.push_back(d.pace);
  }
  if (paces.size() < 2 || t_s < opt_.warmup_s) return;

  // Upper median: with an even fleet the averaged median includes the
  // straggler's own pace, so in the smallest fleet (2 ranks) a 4x-slow
  // rank drags the reference far enough toward itself to escape the
  // floor.  paces[n/2] keeps the reference anchored on the healthy half.
  std::sort(paces.begin(), paces.end());
  const double median = paces[paces.size() / 2];
  if (!(median > 0)) return;

  // Finished ranks stay comparable: their pace is frozen at its true
  // lifetime value, so a healthy drained rank sits at the median and is
  // never flagged, while a straggler that serialised *before* its peers
  // even started (no concurrent window to compare in) is still caught
  // retrospectively once the fleet median forms.
  for (int r = 0; r < opt_.nranks; ++r) {
    Det& d = det_[static_cast<std::size_t>(r)];
    if (!d.valid) {
      d.lag_count = 0;
      continue;
    }
    if (d.pace < opt_.pace_floor * median) {
      if (++d.lag_count >= opt_.lag_consecutive && !d.flagged) {
        d.flagged = true;
        StragglerFlag f;
        f.rank = r;
        f.t_s = t_s;
        f.pace = d.pace;
        f.median_pace = median;
        f.lag = 1.0 - d.pace / median;
        flags_.push_back(f);
        if (events_open_) {
          json::Writer w;
          w.begin_object();
          w.key("schema").value("dpgen.events.v1");
          w.key("event").value("straggler");
          w.key("t_s").value(t_s);
          w.key("rank").value(r);
          w.key("pace").value(f.pace);
          w.key("median_pace").value(f.median_pace);
          w.key("lag").value(f.lag);
          w.end_object();
          event_line(w.str());
        }
      }
    } else {
      d.lag_count = 0;
    }
  }
}

void Monitor::stop(double t_end_s) {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  if (sampler_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(cv_mu_);
      quit_ = true;
    }
    cv_.notify_all();
    sampler_.join();
  }
  const double t_end = t_end_s >= 0 ? t_end_s : now_s();
  {
    std::lock_guard<std::mutex> lock(det_mu_);
    detect_locked(t_end);
  }
  if (events_open_) {
    json::Writer w;
    w.begin_object();
    w.key("schema").value("dpgen.events.v1");
    w.key("event").value("run_end");
    w.key("t_s").value(t_end);
    w.key("elapsed_s").value(t_end);
    w.key("heartbeats").value(heartbeats());
    w.key("stragglers").value(
        static_cast<long long>(stragglers().size()));
    w.key("stall_warnings").value(stall_warnings());
    w.end_object();
    event_line(w.str());
    std::lock_guard<std::mutex> lock(ev_mu_);
    events_.close();
    events_open_ = false;
  }
}

}  // namespace dpgen::obs
