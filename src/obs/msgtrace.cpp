// Per-message lifecycle records: rings, queueing decomposition and the
// dpgen.msgtrace.v1 document.  See msgtrace.hpp for the design rationale.

#include "obs/msgtrace.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <unordered_set>
#include <utility>

#include "support/error.hpp"
#include "support/json.hpp"
#include "support/str.hpp"

namespace dpgen::obs {

MsgQueueing decompose(const MsgRecord& r) {
  auto seg = [](std::int64_t from, std::int64_t to) {
    return to > from ? to - from : 0;
  };
  MsgQueueing q;
  q.pack_ns = seg(r.pack_ns, r.send_ns);
  q.sender_blocked_ns = seg(r.send_ns, r.admit_ns);
  q.queue_ns = seg(r.admit_ns, r.deliver_ns);
  q.unpack_wait_ns = seg(r.deliver_ns, r.unpack_ns);
  q.dispatch_ns = seg(r.unpack_ns, r.dispatch_ns);
  return q;
}

MsgQueueing decompose(const std::vector<MsgRecord>& records) {
  MsgQueueing total;
  for (const MsgRecord& r : records) total += decompose(r);
  return total;
}

MsgTracer& MsgTracer::instance() {
  static MsgTracer tracer;
  return tracer;
}

MsgTracer::ThreadBuffer& MsgTracer::local_buffer() {
  thread_local ThreadBuffer* tl_buffer = nullptr;
  if (tl_buffer) return *tl_buffer;
  auto buf = std::make_unique<ThreadBuffer>();
  buf->ring.resize(kRingCapacity);
  ThreadBuffer* raw = buf.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::move(buf));  // addresses stay pinned
  }
  tl_buffer = raw;
  return *raw;
}

void MsgTracer::record(const MsgRecord& r) {
  if (!enabled()) return;
  ThreadBuffer& buf = local_buffer();
  const std::uint64_t head = buf.head.load(std::memory_order_relaxed);
  buf.ring[head % kRingCapacity] = r;
  if (head >= kRingCapacity)
    buf.dropped.fetch_add(1, std::memory_order_relaxed);
  // Publish after the slot write so collectors never read a torn record.
  buf.head.store(head + 1, std::memory_order_release);
}

namespace {

bool record_packs_earlier(const MsgRecord& a, const MsgRecord& b) {
  return a.pack_ns < b.pack_ns;
}

}  // namespace

std::vector<MsgRecord> MsgTracer::collect_rank(int rank) const {
  std::vector<MsgRecord> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    const std::uint64_t head = buf->head.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(head, kRingCapacity);
    for (std::uint64_t i = head - n; i < head; ++i) {
      const MsgRecord& r = buf->ring[i % kRingCapacity];
      if (r.dst == rank) out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end(), record_packs_earlier);
  return out;
}

std::vector<MsgRecord> MsgTracer::collect_all() const {
  std::vector<MsgRecord> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    const std::uint64_t head = buf->head.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(head, kRingCapacity);
    for (std::uint64_t i = head - n; i < head; ++i)
      out.push_back(buf->ring[i % kRingCapacity]);
  }
  std::sort(out.begin(), out.end(), record_packs_earlier);
  return out;
}

std::vector<MsgRecord> MsgTracer::merged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return merged_;
}

void MsgTracer::add_merged(std::vector<MsgRecord> records) {
  std::lock_guard<std::mutex> lock(mu_);
  merged_.insert(merged_.end(), records.begin(), records.end());
}

std::uint64_t MsgTracer::dropped() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_)
    total += buf->dropped.load(std::memory_order_relaxed);
  return total;
}

void MsgTracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buf : buffers_) {
    buf->head.store(0, std::memory_order_release);
    buf->dropped.store(0, std::memory_order_relaxed);
  }
  merged_.clear();
}

// ---- dpgen.msgtrace.v1 ---------------------------------------------------

namespace {

void write_queueing(json::Writer* w, const MsgQueueing& q) {
  w->begin_object();
  w->key("pack").value(static_cast<long long>(q.pack_ns));
  w->key("sender_blocked").value(static_cast<long long>(q.sender_blocked_ns));
  w->key("queue").value(static_cast<long long>(q.queue_ns));
  w->key("unpack_wait").value(static_cast<long long>(q.unpack_wait_ns));
  w->key("dispatch").value(static_cast<long long>(q.dispatch_ns));
  w->key("end_to_end").value(static_cast<long long>(q.total()));
  w->end_object();
}

struct LinkAgg {
  std::uint64_t delivered = 0;  ///< records seen (repeats included)
  std::uint64_t unique = 0;     ///< distinct sequence numbers
  MsgQueueing queueing;
  std::unordered_set<std::int64_t> seqs;
};

}  // namespace

std::string msgtrace_json(const MsgTraceInput& input) {
  std::map<std::pair<int, int>, LinkAgg> links;
  for (const MsgRecord& r : input.records) {
    LinkAgg& agg = links[{r.src, r.dst}];
    ++agg.delivered;
    if (agg.seqs.insert(r.seq).second) ++agg.unique;
    agg.queueing += decompose(r);
  }
  // Links that sent but delivered nothing still need a row (a fully
  // dropped link is exactly what the conservation check must see).
  for (std::size_t s = 0; s < input.sent_matrix.size(); ++s)
    for (std::size_t d = 0; d < input.sent_matrix[s].size(); ++d)
      if (input.sent_matrix[s][d] > 0)
        links[{static_cast<int>(s), static_cast<int>(d)}];

  std::uint64_t total_sent = 0, total_delivered = 0, total_repeats = 0,
                total_gaps = 0;
  json::Writer w;
  w.begin_object();
  w.key("schema").value("dpgen.msgtrace.v1");
  w.key("source").value(input.source);
  w.key("problem").value(input.problem);
  w.key("params").begin_array();
  for (Int p : input.params) w.value(static_cast<long long>(p));
  w.end_array();
  w.key("nranks").value(input.nranks);
  w.key("messages").value(static_cast<long long>(input.records.size()));
  w.key("records_dropped")
      .value(static_cast<long long>(input.records_dropped));
  w.key("expected_drops").value(input.expected_drops);
  w.key("expected_dups").value(input.expected_dups);
  w.key("table_duplicates").value(input.table_duplicates);
  w.key("queueing_ns");
  write_queueing(&w, decompose(input.records));

  w.key("links").begin_array();
  for (const auto& [key, agg] : links) {
    const auto [src, dst] = key;
    std::uint64_t sent = 0;
    if (src >= 0 && static_cast<std::size_t>(src) < input.sent_matrix.size() &&
        dst >= 0 &&
        static_cast<std::size_t>(dst) < input.sent_matrix[src].size())
      sent = input.sent_matrix[static_cast<std::size_t>(src)]
                              [static_cast<std::size_t>(dst)];
    const std::uint64_t repeats = agg.delivered - agg.unique;
    const std::uint64_t gaps = sent > agg.unique ? sent - agg.unique : 0;
    total_sent += sent;
    total_delivered += agg.unique;
    total_repeats += repeats;
    total_gaps += gaps;
    w.begin_object();
    w.key("src").value(src);
    w.key("dst").value(dst);
    w.key("sent").value(static_cast<long long>(sent));
    w.key("delivered").value(static_cast<long long>(agg.unique));
    w.key("repeats").value(static_cast<long long>(repeats));
    w.key("gaps").value(static_cast<long long>(gaps));
    w.key("queueing_ns");
    write_queueing(&w, agg.queueing);
    w.end_object();
  }
  w.end_array();

  // Conservation: every assigned sequence number is either delivered, an
  // expected fault-plan drop, or lost to a ring overflow.  Anything left
  // is unexplained loss, which dpgen-analyze --msgtrace rejects.
  const std::uint64_t explained =
      static_cast<std::uint64_t>(
          input.expected_drops < 0 ? 0 : input.expected_drops) +
      input.records_dropped;
  const std::uint64_t unexplained =
      total_gaps > explained ? total_gaps - explained : 0;
  w.key("conservation").begin_object();
  w.key("total_sent").value(static_cast<long long>(total_sent));
  w.key("total_delivered").value(static_cast<long long>(total_delivered));
  w.key("total_gaps").value(static_cast<long long>(total_gaps));
  w.key("total_repeats").value(static_cast<long long>(total_repeats));
  w.key("unexplained_loss").value(static_cast<long long>(unexplained));
  w.key("accounted")
      .value(unexplained == 0 &&
             total_repeats <= static_cast<std::uint64_t>(
                                  input.expected_dups < 0
                                      ? 0
                                      : input.expected_dups));
  w.end_object();

  const std::size_t keep =
      input.max_records == 0
          ? input.records.size()
          : std::min(input.records.size(), input.max_records);
  w.key("records_truncated")
      .value(static_cast<long long>(input.records.size() - keep));
  w.key("records").begin_array();
  for (std::size_t i = 0; i < keep; ++i) {
    const MsgRecord& r = input.records[i];
    w.begin_object();
    w.key("seq").value(static_cast<long long>(r.seq));
    w.key("src").value(r.src);
    w.key("dst").value(r.dst);
    w.key("src_thread").value(r.src_thread);
    w.key("dst_thread").value(r.dst_thread);
    w.key("edge").value(r.edge);
    w.key("bytes").value(static_cast<long long>(r.bytes));
    w.key("consumer").begin_array();
    for (std::uint8_t k = 0; k < r.ncoord; ++k)
      w.value(r.consumer[k]);
    w.end_array();
    w.key("pack_ns").value(static_cast<long long>(r.pack_ns));
    w.key("send_ns").value(static_cast<long long>(r.send_ns));
    w.key("admit_ns").value(static_cast<long long>(r.admit_ns));
    w.key("deliver_ns").value(static_cast<long long>(r.deliver_ns));
    w.key("unpack_ns").value(static_cast<long long>(r.unpack_ns));
    w.key("dispatch_ns").value(static_cast<long long>(r.dispatch_ns));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void write_msgtrace_json(const std::string& path,
                         const MsgTraceInput& input) {
  std::ofstream out(path);
  DPGEN_CHECK(out.good(), cat("cannot open msgtrace file '", path, "'"));
  out << msgtrace_json(input) << '\n';
  DPGEN_CHECK(out.good(), cat("error writing msgtrace file '", path, "'"));
}

}  // namespace dpgen::obs
