// perf_event_open group wrapper with CLOCK_THREAD_CPUTIME_ID fallback.
// See hwcounters.hpp for the degradation ladder.

#include "obs/hwcounters.hpp"

#include <cstring>
#include <ctime>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define DPGEN_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define DPGEN_HAVE_PERF_EVENT 0
#endif

namespace dpgen::obs {

namespace {

#if DPGEN_HAVE_PERF_EVENT

int perf_open(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 0;
  // User space only: kernel/hypervisor counting needs privileges most
  // containers do not grant, and the tile kernels are pure user code.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, /*flags=*/0));
}

#endif  // DPGEN_HAVE_PERF_EVENT

std::uint64_t thread_cputime_ns() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace

bool HwCounterGroup::perf_available() {
#if DPGEN_HAVE_PERF_EVENT
  const int fd =
      perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (fd < 0) return false;
  ::close(fd);
  return true;
#else
  return false;
#endif
}

bool HwCounterGroup::open(bool force_cputime) {
  close();
#if DPGEN_HAVE_PERF_EVENT
  if (!force_cputime) {
    leader_fd_ = perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
    if (leader_fd_ >= 0) {
      fds_[0] = leader_fd_;
      read_index_[0] = 0;
      int next_index = 1;
      // Siblings are individually optional: a VM that hides LLC misses
      // still yields cycles/instructions (and so IPC); a missing event
      // reads as 0 rather than demoting the whole group.
      static constexpr std::uint64_t kSiblings[kEvents] = {
          0,  // leader slot
          PERF_COUNT_HW_INSTRUCTIONS,
          PERF_COUNT_HW_CACHE_MISSES,
          PERF_COUNT_HW_BRANCH_MISSES,
      };
      for (int e = 1; e < kEvents; ++e) {
        fds_[e] = perf_open(PERF_TYPE_HARDWARE, kSiblings[e], leader_fd_);
        if (fds_[e] >= 0) read_index_[e] = next_index++;
      }
      cputime_ = false;
      return true;
    }
  }
#else
  (void)force_cputime;
#endif
  cputime_ = true;
  return false;
}

void HwCounterGroup::close() {
#if DPGEN_HAVE_PERF_EVENT
  for (int e = 0; e < kEvents; ++e) {
    if (fds_[e] >= 0) ::close(fds_[e]);
    fds_[e] = -1;
    read_index_[e] = -1;
  }
  leader_fd_ = -1;
#endif
  cputime_ = false;
}

bool HwCounterGroup::read(HwCounterValues* out) {
  *out = HwCounterValues{};
#if DPGEN_HAVE_PERF_EVENT
  if (leader_fd_ >= 0) {
    // PERF_FORMAT_GROUP layout: { u64 nr; u64 values[nr]; } in the order
    // the events joined the group.
    std::uint64_t buf[1 + kEvents] = {};
    const auto n = ::read(leader_fd_, buf, sizeof(buf));
    if (n < static_cast<ssize_t>(2 * sizeof(std::uint64_t))) return true;
    const auto nr = buf[0];
    auto value_at = [&](int logical) -> std::uint64_t {
      const int idx = read_index_[logical];
      if (idx < 0 || static_cast<std::uint64_t>(idx) >= nr) return 0;
      return buf[1 + idx];
    };
    out->cycles = value_at(0);
    out->instructions = value_at(1);
    out->llc_misses = value_at(2);
    out->branch_misses = value_at(3);
    return true;
  }
#endif
  if (!cputime_) return false;
  out->cycles = thread_cputime_ns();
  return true;
}

}  // namespace dpgen::obs
