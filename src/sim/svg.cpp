#include "sim/svg.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>

#include "support/error.hpp"
#include "support/str.hpp"

namespace dpgen::sim {

namespace {

/// A small qualitative palette; nodes beyond its size wrap around.
const char* kNodeColors[] = {"#4e79a7", "#f28e2b", "#59a14f", "#e15759",
                             "#76b7b2", "#edc948", "#b07aa1", "#9c755f"};

}  // namespace

std::string timeline_svg(const SimResult& result, const SvgOptions& opt) {
  DPGEN_CHECK(!result.timeline.empty(),
              "timeline_svg needs a recorded timeline "
              "(set ClusterConfig::record_timeline)");
  DPGEN_CHECK(result.makespan > 0, "empty run");

  // Lane index per (node, core), ordered.
  std::map<std::pair<int, int>, int> lanes;
  for (const auto& s : result.timeline)
    lanes.emplace(std::make_pair(s.node, s.core),
                  static_cast<int>(lanes.size()));
  // Re-number in sorted order so lanes group by node.
  {
    int i = 0;
    for (auto& [key, lane] : lanes) lane = i++;
  }

  const int lane_stride = opt.lane_height_px + opt.lane_gap_px;
  const int height = static_cast<int>(lanes.size()) * lane_stride + 20;
  const double xscale = (opt.width_px - 2) / result.makespan;

  std::string svg = cat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"", opt.width_px,
      "\" height=\"", height, "\" viewBox=\"0 0 ", opt.width_px, " ", height,
      "\">\n<rect width=\"100%\" height=\"100%\" fill=\"#ffffff\"/>\n");
  for (const auto& s : result.timeline) {
    int lane = lanes.at({s.node, s.core});
    double x = 1 + s.start * xscale;
    double w = std::max(0.5, (s.end - s.start) * xscale);
    const char* color =
        kNodeColors[static_cast<std::size_t>(s.node) %
                    (sizeof kNodeColors / sizeof kNodeColors[0])];
    svg += cat("<rect x=\"", x, "\" y=\"", 10 + lane * lane_stride,
               "\" width=\"", w, "\" height=\"", opt.lane_height_px,
               "\" fill=\"", color, "\"><title>node ", s.node, " core ",
               s.core, " tile ", vec_to_string(s.tile), " [", s.start, ", ",
               s.end, "]</title></rect>\n");
  }
  svg += "</svg>\n";
  return svg;
}

std::string series_svg(const std::vector<Series>& series,
                       const std::string& title,
                       const SeriesSvgOptions& opt) {
  std::size_t npoints = 0;
  double ymax = 0.0;
  for (const Series& s : series) {
    npoints = std::max(npoints, s.y.size());
    for (double v : s.y)
      if (std::isfinite(v)) ymax = std::max(ymax, v);
  }
  DPGEN_CHECK(npoints > 0, "series_svg: no data points");
  if (ymax <= 0.0) ymax = 1.0;

  // Default margins match the original chart; axis decorations widen them
  // so old renderings (and their tests) are unchanged when unused.
  const double left = opt.y_ticks > 0 ? 48 : 8;
  const double right = 8, top = 24;
  const double bottom = opt.x_labels.empty() ? 8 : 22;
  const double plot_w = opt.width_px - left - right;
  const double plot_h = opt.height_px - top - bottom;
  const double xstep = npoints > 1 ? plot_w / (npoints - 1) : 0.0;

  std::string svg = cat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"", opt.width_px,
      "\" height=\"", opt.height_px, "\" viewBox=\"0 0 ", opt.width_px, " ",
      opt.height_px,
      "\">\n<rect width=\"100%\" height=\"100%\" fill=\"#ffffff\"/>\n",
      "<text x=\"", left, "\" y=\"16\" font-family=\"sans-serif\" "
      "font-size=\"12\">", title, "</text>\n");

  if (opt.y_ticks > 0) {
    for (int k = 0; k <= opt.y_ticks; ++k) {
      const double frac = static_cast<double>(k) / opt.y_ticks;
      const double y = top + plot_h * (1.0 - frac);
      char label[32];
      std::snprintf(label, sizeof label, "%.3g", frac * ymax);
      svg += cat("<line x1=\"", left, "\" y1=\"", y, "\" x2=\"",
                 left + plot_w, "\" y2=\"", y,
                 "\" stroke=\"#dddddd\" stroke-width=\"0.5\"/>\n");
      svg += cat("<text x=\"", left - 4, "\" y=\"", y + 3,
                 "\" font-family=\"sans-serif\" font-size=\"9\" "
                 "fill=\"#555555\" text-anchor=\"end\">",
                 label, "</text>\n");
    }
  }
  if (!opt.x_labels.empty()) {
    // Sample the ticks to a stride that keeps ~60px between labels.
    const std::size_t stride =
        xstep > 0 ? std::max<std::size_t>(
                        1, static_cast<std::size_t>(60.0 / xstep))
                  : 1;
    for (std::size_t i = 0; i < opt.x_labels.size() && i < npoints;
         i += stride) {
      const double x = left + static_cast<double>(i) * xstep;
      svg += cat("<text x=\"", x, "\" y=\"", opt.height_px - 6,
                 "\" font-family=\"sans-serif\" font-size=\"9\" "
                 "fill=\"#555555\" text-anchor=\"middle\">",
                 opt.x_labels[i], "</text>\n");
    }
  }
  for (std::size_t si = 0; si < series.size(); ++si) {
    const Series& s = series[si];
    const char* color =
        kNodeColors[si % (sizeof kNodeColors / sizeof kNodeColors[0])];
    // Split at non-finite values so gaps render as gaps, not segments.
    std::string points;
    bool has_segment = false;
    auto flush = [&] {
      if (has_segment)
        svg += cat("<polyline fill=\"none\" stroke=\"", color,
                   "\" stroke-width=\"1.5\" points=\"", points, "\"/>\n");
      points.clear();
      has_segment = false;
    };
    for (std::size_t i = 0; i < s.y.size(); ++i) {
      if (!std::isfinite(s.y[i])) {
        flush();
        continue;
      }
      double x = left + static_cast<double>(i) * xstep;
      double y = top + plot_h * (1.0 - s.y[i] / ymax);
      points += cat(x, ",", y, " ");
      svg += cat("<circle cx=\"", x, "\" cy=\"", y, "\" r=\"2\" fill=\"",
                 color, "\"><title>", s.label, "[", i, "] = ", s.y[i],
                 "</title></circle>\n");
      has_segment = true;
    }
    flush();
    if (opt.legend) {
      // Legend block: swatch + label rows in the top-right corner.
      const double lx = opt.width_px - right - 150;
      const double ly = top + 6 + 14.0 * static_cast<double>(si);
      svg += cat("<rect x=\"", lx, "\" y=\"", ly - 8,
                 "\" width=\"10\" height=\"10\" fill=\"", color, "\"/>\n");
      svg += cat("<text x=\"", lx + 14, "\" y=\"", ly + 1,
                 "\" font-family=\"sans-serif\" font-size=\"10\">",
                 s.label, "</text>\n");
    } else {
      svg += cat("<text x=\"", left + 120 * static_cast<double>(si),
                 "\" y=\"", opt.height_px - bottom + 6,
                 "\" font-family=\"sans-serif\" font-size=\"10\" fill=\"",
                 color, "\">", s.label, "</text>\n");
    }
  }
  svg += "</svg>\n";
  return svg;
}

void write_timeline_svg(const SimResult& result, const std::string& path,
                        const SvgOptions& options) {
  std::ofstream out(path);
  DPGEN_CHECK(out.good(), cat("cannot open '", path, "'"));
  out << timeline_svg(result, options);
  DPGEN_CHECK(out.good(), cat("error writing '", path, "'"));
}

}  // namespace dpgen::sim
