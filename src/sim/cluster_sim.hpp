#pragma once
// Discrete-event cluster simulator (see DESIGN.md, substitutions).
//
// The paper's evaluation (Figures 6 and 7, section VI) was run on an
// 8-node x 24-core cluster; this container has one core and no MPI.  The
// simulator replays the exact schedule a generated program would follow —
// the same tile DAG (from the TilingModel), the same ownership (from the
// LoadBalancer), the same eligible-tile priority (runtime::TileOrder), the
// same pack/send/unpack sequencing — under a configurable machine model
// (nodes x cores, per-location compute cost, per-message latency,
// bandwidth).  Makespan, utilization, idle time and peak buffered edges
// come out deterministically, which is what the scaling *shapes* of the
// paper's figures are made of.
//
// The simulator is also the measurement device for the paper's memory
// claims (Fig. 4): it tracks the peak number of buffered tile edges under
// the column-major and level-set priorities.

#include "obs/analysis.hpp"
#include "obs/monitor.hpp"
#include "runtime/order.hpp"
#include "tiling/balance.hpp"
#include "tiling/model.hpp"

namespace dpgen::sim {

/// Machine and policy model for one simulated run.
struct ClusterConfig {
  int nodes = 1;
  int cores_per_node = 1;
  /// Seconds of compute per location (cell).
  double sec_per_cell = 1e-6;
  /// Fixed per-tile cost: buffer allocation, unpacking, queue handling.
  double tile_overhead_sec = 2e-6;
  /// Per-message latency for edges crossing nodes.
  double link_latency_sec = 20e-6;
  /// Scalars per second across the inter-node link.
  double link_bandwidth_scalars = 5e8;
  runtime::PriorityPolicy policy = runtime::PriorityPolicy::kColumnMajor;
  tiling::BalanceMethod balance = tiling::BalanceMethod::kPerDimension;
  /// Record one TileSpan per executed tile (timeline analysis).
  bool record_timeline = false;
  /// Also push the recorded timeline through obs::Tracer (simulated
  /// seconds become trace nanoseconds, node -> rank, core -> thread), so
  /// a simulated schedule exports to the same Perfetto timeline as a real
  /// run.  Requires record_timeline and an enabled tracer.
  bool trace_timeline = false;
  /// When non-empty, a timeline is recorded (record_timeline is implied)
  /// and the simulated schedule is pushed through the same performance
  /// analyzer as real runs (obs/analysis.hpp); the report JSON is written
  /// here.
  std::string report_json_path;
  /// When non-empty, the DES synthesizes one causal message record per
  /// remote edge (pack/send/admit at the producer's completion, deliver
  /// after the modelled link latency, unpack/dispatch at the consumer's
  /// execute start) and writes the dpgen.msgtrace.v1 document here ("-" =
  /// collect into SimResult::msg_records only).  Implies record_timeline.
  /// Simulated delivery is lossless, so conservation always accounts.
  std::string msgtrace_path;
  /// Per-node compute slowdown factors (empty = all 1.0): tile cost on
  /// node n is multiplied by node_slowdown[n].  The deterministic
  /// straggler-injection knob for testing the online detector.
  std::vector<double> node_slowdown;
  /// When non-empty, live monitoring runs against DES time: synthetic
  /// per-node heartbeats and the online straggler detector
  /// (obs::Monitor), with events appended here as dpgen.events.v1 JSONL.
  /// "-" monitors without writing a log (SimResult::stragglers only).
  std::string events_path;
  /// Monitor sampling period in *simulated* seconds (0 = auto: the
  /// predicted makespan split into ~32 samples).
  double monitor_interval_s = 0.0;
  /// When non-empty, a *synthetic* dpgen.profile.v1 document is derived
  /// from the simulated timeline and written here (requires
  /// record_timeline; implied when set): sample counts are DES busy/idle
  /// time x profile_hz per node, the counter channel reports simulated
  /// nanoseconds (`counters: "sim"`, `sampler: "synthetic"`).  Lets
  /// profile consumers (cost table, flame view) be exercised
  /// deterministically without wall-clock sampling.
  std::string profile_path;
  double profile_hz = 997.0;
  /// Family name stamped into the synthetic profile document.
  std::string problem_name;
};

/// One executed tile in the recorded timeline.
struct TileSpan {
  int node = 0;
  int core = 0;
  double start = 0.0;
  double end = 0.0;
  IntVec tile;
};

struct SimResult {
  double makespan = 0.0;
  /// Sum over tiles of compute time (the serial compute bound).
  double total_work_sec = 0.0;
  /// Per-node busy seconds.
  std::vector<double> node_busy;
  /// busy / (makespan * nodes * cores): 1.0 is perfect.
  double utilization = 0.0;
  long long tiles = 0;
  long long remote_messages = 0;
  double remote_scalars = 0.0;
  /// Peak number of simultaneously buffered edges, summed over nodes
  /// (Fig. 4 metric).
  long long peak_buffered_edges = 0;
  /// Per-tile execution spans (only when ClusterConfig::record_timeline).
  std::vector<TileSpan> timeline;
  /// Synthesized per-message lifecycle records (only when
  /// ClusterConfig::msgtrace_path is set); they feed the report's
  /// msgtrace section through analysis_input.
  std::vector<obs::MsgRecord> msg_records;
  /// node x node simulated traffic, [source][destination].  Bytes assume
  /// 8-byte wire scalars (edge capacity x sizeof(double)), matching the
  /// link-bandwidth model's scalar accounting.
  std::vector<std::vector<std::uint64_t>> bytes_matrix;
  std::vector<std::vector<std::uint64_t>> messages_matrix;
  /// Nodes the online detector flagged (only when ClusterConfig::
  /// events_path is set; empty on a balanced run).
  std::vector<obs::StragglerFlag> stragglers;

  /// Speedup of this run relative to a serial execution of the same work.
  double speedup() const {
    return makespan > 0 ? total_work_sec / makespan : 0.0;
  }
  /// Efficiency against the given core count.
  double efficiency(int total_cores) const {
    return speedup() / static_cast<double>(total_cores);
  }
};

/// Simulates one run.  Deterministic: same inputs, same result.
SimResult simulate(const tiling::TilingModel& model, const IntVec& params,
                   const ClusterConfig& config);

/// Packages a simulated run (requires a recorded timeline) as analyzer
/// input: the timeline becomes tile-execute spans (simulated seconds ->
/// trace nanoseconds, node -> rank, core -> thread), the LoadBalancer is
/// re-derived for the Ehrhart baseline, and the simulated traffic matrices
/// ride along.  So a predicted schedule and a measured one produce reports
/// in the same format, side by side.
obs::AnalysisInput analysis_input(const SimResult& result,
                                  const tiling::TilingModel& model,
                                  const IntVec& params,
                                  const ClusterConfig& config);

/// Fraction of total core capacity busy in each of `buckets` equal time
/// slices of the run (requires a recorded timeline).  The shape makes
/// pipeline fill/drain phases visible at a glance.
std::vector<double> utilization_profile(const SimResult& result,
                                        int total_cores, int buckets);

}  // namespace dpgen::sim
