#include "sim/tune.hpp"

#include "support/error.hpp"

namespace dpgen::sim {

std::vector<WidthResult> sweep_widths(
    const std::function<spec::ProblemSpec(Int width)>& make_spec,
    const std::vector<Int>& widths, const IntVec& params,
    const ClusterConfig& config) {
  DPGEN_CHECK(!widths.empty(), "sweep_widths needs at least one width");
  std::vector<WidthResult> out;
  out.reserve(widths.size());
  for (Int w : widths) {
    tiling::TilingModel model(make_spec(w));
    out.push_back({w, simulate(model, params, config)});
  }
  return out;
}

Int best_width(const std::vector<WidthResult>& sweep) {
  DPGEN_CHECK(!sweep.empty(), "best_width needs a non-empty sweep");
  const WidthResult* best = &sweep.front();
  for (const auto& r : sweep)
    if (r.result.makespan < best->result.makespan) best = &r;
  return best->width;
}

}  // namespace dpgen::sim
