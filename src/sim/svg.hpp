#pragma once
// SVG rendering of a simulated execution timeline: one horizontal lane per
// (node, core), one rectangle per executed tile, colored by node.  Makes
// pipeline fill/drain, starvation and load imbalance visible at a glance —
// the qualitative story behind the paper's Figures 6/7 and section VI.C.
//
// Also hosts the generic line-series chart dpgen-bench --trend uses to
// render archived bench medians across commits.

#include <string>
#include <vector>

#include "sim/cluster_sim.hpp"

namespace dpgen::sim {

struct SvgOptions {
  int width_px = 960;
  int lane_height_px = 14;
  int lane_gap_px = 2;
};

/// Renders the recorded timeline (requires ClusterConfig::record_timeline)
/// as a self-contained SVG document.
std::string timeline_svg(const SimResult& result,
                         const SvgOptions& options = {});

/// Writes timeline_svg to a file.
void write_timeline_svg(const SimResult& result, const std::string& path,
                        const SvgOptions& options = {});

/// One polyline of a series chart: a label plus the y value at each
/// shared x position (NaN marks a gap — e.g. a bench absent from one
/// archived run).
struct Series {
  std::string label;
  std::vector<double> y;
};

struct SeriesSvgOptions {
  int width_px = 760;
  int height_px = 240;
  /// Labels for the shared x positions (e.g. short git SHAs).  When
  /// non-empty, tick labels are drawn along the x axis, sampled to a
  /// stride that keeps them from overlapping.
  std::vector<std::string> x_labels;
  /// Number of horizontal y-axis gridlines with value labels (0 = none).
  int y_ticks = 0;
  /// Draw the series names as a legend block (color swatch + label rows,
  /// top-right) instead of the inline bottom row.
  bool legend = false;
};

/// Renders the series as a self-contained SVG line chart: shared x
/// positions 0..n-1 (callers label them externally — e.g. with git SHAs),
/// y auto-scaled from zero, one color per series with a legend.
std::string series_svg(const std::vector<Series>& series,
                       const std::string& title,
                       const SeriesSvgOptions& options = {});

}  // namespace dpgen::sim
