#pragma once
// SVG rendering of a simulated execution timeline: one horizontal lane per
// (node, core), one rectangle per executed tile, colored by node.  Makes
// pipeline fill/drain, starvation and load imbalance visible at a glance —
// the qualitative story behind the paper's Figures 6/7 and section VI.C.

#include <string>

#include "sim/cluster_sim.hpp"

namespace dpgen::sim {

struct SvgOptions {
  int width_px = 960;
  int lane_height_px = 14;
  int lane_gap_px = 2;
};

/// Renders the recorded timeline (requires ClusterConfig::record_timeline)
/// as a self-contained SVG document.
std::string timeline_svg(const SimResult& result,
                         const SvgOptions& options = {});

/// Writes timeline_svg to a file.
void write_timeline_svg(const SimResult& result, const std::string& path,
                        const SvgOptions& options = {});

}  // namespace dpgen::sim
