#pragma once
// Tile-width autotuning (paper section VI.C).
//
// "The optimal settings for these options vary, so that finding the
// correct values ... is not trivial, and would require a parameter sweep
// in order to find the best values."  This is that parameter sweep,
// performed on the simulator so no cluster time is burned: the caller
// supplies a factory from tile width to spec (widths are baked into the
// tiling model) and a machine model; sweep_widths simulates each width and
// best_width returns the argmin makespan.

#include <functional>

#include "sim/cluster_sim.hpp"

namespace dpgen::sim {

struct WidthResult {
  Int width = 0;
  SimResult result;
};

/// Simulates every candidate width; results come back in input order.
std::vector<WidthResult> sweep_widths(
    const std::function<spec::ProblemSpec(Int width)>& make_spec,
    const std::vector<Int>& widths, const IntVec& params,
    const ClusterConfig& config);

/// The width with the smallest makespan (first wins ties).
Int best_width(const std::vector<WidthResult>& sweep);

}  // namespace dpgen::sim
