#include "sim/cluster_sim.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <queue>
#include <set>
#include <unordered_map>

#include <cmath>

#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace dpgen::sim {

namespace {

enum class EventKind { kTileComplete, kEdgeArrive };

struct Event {
  double time = 0.0;
  long long seq = 0;  // FIFO tie-break for determinism
  EventKind kind = EventKind::kEdgeArrive;
  int node = 0;
  IntVec tile;  // completed tile / consumer tile
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

struct NodeState {
  explicit NodeState(const runtime::TileOrder& order)
      : ready(order.less()) {}

  std::set<IntVec, runtime::TileOrder::Less> ready;
  std::unordered_map<IntVec, int, IntVecHash> waiting;       // deps left
  std::unordered_map<IntVec, int, IntVecHash> stored_edges;  // buffered
  std::vector<double> core_free;  // absolute free times
  double busy = 0.0;
  long long cur_edges = 0;
  // Live-telemetry counters (only read when monitoring is on).
  long long executed = 0;
  long long executed_cells = 0;
  long long sent_bytes = 0;
  long long sent_msgs = 0;
};

}  // namespace

SimResult simulate(const tiling::TilingModel& model, const IntVec& params,
                   const ClusterConfig& cfg) {
  DPGEN_CHECK(cfg.nodes >= 1 && cfg.cores_per_node >= 1,
              "cluster needs at least one node and one core");
  DPGEN_CHECK(cfg.sec_per_cell > 0, "sec_per_cell must be positive");
  DPGEN_CHECK(cfg.node_slowdown.empty() ||
                  cfg.node_slowdown.size() ==
                      static_cast<std::size_t>(cfg.nodes),
              "node_slowdown must be empty or have one factor per node");
  for (double f : cfg.node_slowdown)
    DPGEN_CHECK(f > 0, "node_slowdown factors must be positive");

  tiling::LoadBalancer balancer(model, params, cfg.nodes, cfg.balance);

  // Priority dimensions: load-balanced dims first, then the rest (Fig. 5).
  std::vector<int> dim_priority = model.lb_dims();
  for (int k = 0; k < model.dim(); ++k)
    if (std::find(dim_priority.begin(), dim_priority.end(), k) ==
        dim_priority.end())
      dim_priority.push_back(k);
  runtime::TileOrder order(dim_priority, model.problem().dep_signs(),
                           cfg.policy);

  std::vector<NodeState> nodes;
  nodes.reserve(static_cast<std::size_t>(cfg.nodes));
  for (int n = 0; n < cfg.nodes; ++n) {
    nodes.emplace_back(order);
    nodes.back().core_free.assign(
        static_cast<std::size_t>(cfg.cores_per_node), 0.0);
  }

  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  long long seq = 0;

  SimResult result;
  const bool msg_trace = !cfg.msgtrace_path.empty();
  const bool record_timeline = cfg.record_timeline ||
                               !cfg.report_json_path.empty() || msg_trace;
  result.bytes_matrix.assign(
      static_cast<std::size_t>(cfg.nodes),
      std::vector<std::uint64_t>(static_cast<std::size_t>(cfg.nodes), 0));
  result.messages_matrix.assign(
      static_cast<std::size_t>(cfg.nodes),
      std::vector<std::uint64_t>(static_cast<std::size_t>(cfg.nodes), 0));
  long long global_edges = 0;
  // Per-link sequence counters for synthesized message records; simulated
  // seconds map to trace nanoseconds (same scale as trace_timeline).
  std::map<std::pair<int, int>, std::int64_t> link_seq;
  auto sim_ns = [](double t) { return static_cast<std::int64_t>(t * 1e9); };

  auto tile_cost = [&](int n, const IntVec& t) {
    const double slow = cfg.node_slowdown.empty()
                            ? 1.0
                            : cfg.node_slowdown[static_cast<std::size_t>(n)];
    return slow * (cfg.tile_overhead_sec +
                   static_cast<double>(model.cell_count(params, t)) *
                       cfg.sec_per_cell);
  };

  // Live monitoring against DES time: the event loop publishes synthetic
  // heartbeats at every interval boundary it crosses, so detector
  // behaviour is exactly reproducible (no sampler thread, no wall clock).
  std::optional<obs::Monitor> monitor;
  double monitor_interval = cfg.monitor_interval_s;
  if (!cfg.events_path.empty()) {
    if (monitor_interval <= 0) {
      // Predicted makespan (balanced-compute estimate) split ~32 ways.
      double cells = 0.0;
      for (int r = 0; r < cfg.nodes; ++r)
        cells += static_cast<double>(balancer.owned_work(r));
      monitor_interval = std::max(
          cells * cfg.sec_per_cell / (cfg.nodes * cfg.cores_per_node) / 32.0,
          cfg.sec_per_cell);
    }
    obs::MonitorOptions mopt;
    mopt.nranks = cfg.nodes;
    mopt.interval_s = monitor_interval;
    if (cfg.events_path != "-") mopt.events_path = cfg.events_path;
    for (int r = 0; r < cfg.nodes; ++r)
      mopt.predicted_work.push_back(
          static_cast<double>(balancer.owned_work(r)));
    mopt.sampler_thread = false;
    mopt.source = "sim";
    mopt.problem = model.problem().problem_name();
    monitor.emplace(std::move(mopt));
  }
  auto publish_all = [&](std::vector<NodeState>& ns, double t) {
    for (int n = 0; n < cfg.nodes; ++n) {
      const NodeState& node = ns[static_cast<std::size_t>(n)];
      obs::RankSnapshot s;
      s.t_s = t;
      s.executed = node.executed;
      s.executed_cells = node.executed_cells;
      s.owned = balancer.owned_tiles(n);
      s.pending_tiles = static_cast<long long>(node.waiting.size());
      s.ready_tiles = static_cast<long long>(node.ready.size());
      s.buffered_edges = node.cur_edges;
      s.bytes_sent = node.sent_bytes;
      s.messages_sent = node.sent_msgs;
      s.progress_marker = node.executed;
      // A core is busy at `t` when its absolute free time lies ahead.
      for (double f : node.core_free)
        if (f > t + 1e-15) ++s.active_workers;
      s.workers = cfg.cores_per_node;
      monitor->publish(n, s);
    }
  };

  // Dispatch any idle cores of a node onto ready tiles.
  auto dispatch = [&](int n, double now) {
    auto& node = nodes[static_cast<std::size_t>(n)];
    while (!node.ready.empty()) {
      // Find an idle core.
      std::size_t core = node.core_free.size();
      for (std::size_t c = 0; c < node.core_free.size(); ++c) {
        if (node.core_free[c] <= now + 1e-15) {
          core = c;
          break;
        }
      }
      if (core == node.core_free.size()) break;  // all busy
      IntVec tile = *node.ready.begin();
      node.ready.erase(node.ready.begin());
      // Release the buffered edges this tile accumulated.
      auto it = node.stored_edges.find(tile);
      if (it != node.stored_edges.end()) {
        node.cur_edges -= it->second;
        global_edges -= it->second;
        node.stored_edges.erase(it);
      }
      // Cells are credited at dispatch, mirroring the driver: a core
      // inside one expensive tile must not read as stalled.
      if (monitor) node.executed_cells += model.cell_count(params, tile);
      double duration = tile_cost(n, tile);
      double finish = now + duration;
      node.core_free[core] = finish;
      node.busy += duration;
      if (record_timeline)
        result.timeline.push_back(
            {n, static_cast<int>(core), now, finish, tile});
      events.push({finish, seq++, EventKind::kTileComplete, n, tile});
    }
  };

  // Seed the initial (dependency-free) tiles.
  model.for_each_initial_tile(params, [&](const IntVec& t) {
    int n = balancer.owner(t);
    nodes[static_cast<std::size_t>(n)].ready.insert(t);
  });
  for (int n = 0; n < cfg.nodes; ++n) dispatch(n, 0.0);

  // Events are processed in same-timestamp batches: all completions and
  // arrivals at time `now` take effect before any core is dispatched.
  // This matches the real runtime, where a finishing worker delivers all
  // its outgoing edges before the next pop, so the priority queue chooses
  // among every tile that became eligible "at the same moment".
  double makespan = 0.0;
  std::set<int> touched;
  double next_sample = monitor_interval;
  while (!events.empty()) {
    const double now = events.top().time;
    makespan = std::max(makespan, now);
    // Cross every sampling boundary up to `now` before applying this
    // batch: the node states still describe simulated time < now, so each
    // published heartbeat is the state exactly at its boundary.
    while (monitor && next_sample <= now) {
      publish_all(nodes, next_sample);
      monitor->tick(next_sample);
      next_sample += monitor_interval;
    }
    touched.clear();
    while (!events.empty() && events.top().time == now) {
      Event ev = events.top();
      events.pop();
      auto& node = nodes[static_cast<std::size_t>(ev.node)];
      touched.insert(ev.node);

      if (ev.kind == EventKind::kTileComplete) {
        ++result.tiles;
        ++node.executed;
        // Route each outgoing edge to its consumer.
        for (int e = 0; e < model.num_edges(); ++e) {
          IntVec consumer = vec_sub(
              ev.tile, model.edges()[static_cast<std::size_t>(e)].offset);
          if (!model.tile_in_space(params, consumer)) continue;
          int dst = balancer.owner(consumer);
          double arrive = ev.time;
          if (dst != ev.node) {
            double scalars = static_cast<double>(
                model.edges()[static_cast<std::size_t>(e)].capacity);
            arrive += cfg.link_latency_sec +
                      scalars / cfg.link_bandwidth_scalars;
            ++result.remote_messages;
            result.remote_scalars += scalars;
            auto src = static_cast<std::size_t>(ev.node);
            auto dsts = static_cast<std::size_t>(dst);
            ++result.messages_matrix[src][dsts];
            const auto wire_bytes = static_cast<std::uint64_t>(
                model.edges()[static_cast<std::size_t>(e)].capacity *
                static_cast<Int>(sizeof(double)));
            result.bytes_matrix[src][dsts] += wire_bytes;
            ++node.sent_msgs;
            node.sent_bytes += static_cast<long long>(wire_bytes);
            if (msg_trace) {
              // The DES has no pack/admit granularity: those stamps
              // collapse onto the producer's completion, so the
              // decomposition puts the whole modelled link cost in the
              // `queue` bucket.  Consumer-side stamps are filled in after
              // the run from the consumer's execute start.
              obs::MsgRecord m;
              m.seq = link_seq[{ev.node, dst}]++;
              m.pack_ns = m.send_ns = m.admit_ns = sim_ns(ev.time);
              m.deliver_ns = sim_ns(arrive);
              m.bytes = static_cast<std::int64_t>(wire_bytes);
              m.src = static_cast<std::int16_t>(ev.node);
              m.dst = static_cast<std::int16_t>(dst);
              m.edge = static_cast<std::int16_t>(e);
              m.ncoord = static_cast<std::uint8_t>(std::min<std::size_t>(
                  consumer.size(), obs::kMaxSpanDims));
              for (std::size_t k = 0; k < m.ncoord; ++k)
                m.consumer[k] = static_cast<std::int32_t>(consumer[k]);
              result.msg_records.push_back(m);
            }
          }
          events.push(
              {arrive, seq++, EventKind::kEdgeArrive, dst, consumer});
        }
      } else {  // kEdgeArrive
        ++node.cur_edges;
        ++global_edges;
        result.peak_buffered_edges =
            std::max(result.peak_buffered_edges, global_edges);
        ++node.stored_edges[ev.tile];
        auto it = node.waiting.find(ev.tile);
        if (it == node.waiting.end()) {
          int expected =
              static_cast<int>(model.deps_of(params, ev.tile).size());
          it = node.waiting.emplace(ev.tile, expected).first;
        }
        if (--it->second == 0) {
          node.waiting.erase(it);
          node.ready.insert(ev.tile);
        }
      }
    }
    for (int n : touched) dispatch(n, now);
  }

  if (monitor) {
    // Final heartbeat at the makespan (all tables drained), final
    // detector pass, run_end event.
    publish_all(nodes, makespan);
    monitor->stop(makespan);
    result.stragglers = monitor->stragglers();
  }

  if (cfg.trace_timeline && obs::Tracer::instance().enabled()) {
    // Replay the simulated schedule through the span API: one
    // tile-execute span per TileSpan, simulated seconds mapped to trace
    // nanoseconds, so real and simulated timelines share one viewer.
    obs::Tracer& tracer = obs::Tracer::instance();
    for (const TileSpan& ts : result.timeline) {
      obs::Span s;
      s.start_ns = static_cast<std::int64_t>(ts.start * 1e9);
      s.end_ns = static_cast<std::int64_t>(ts.end * 1e9);
      s.rank = static_cast<std::int16_t>(ts.node);
      s.thread = static_cast<std::int16_t>(ts.core);
      s.phase = obs::Phase::kTileExecute;
      s.ncoord = static_cast<std::uint8_t>(
          std::min<std::size_t>(ts.tile.size(), obs::kMaxSpanDims));
      for (std::size_t k = 0; k < s.ncoord; ++k)
        s.coord[k] = static_cast<std::int32_t>(ts.tile[k]);
      tracer.record_raw(s);
    }
  }

  result.makespan = makespan;
  result.node_busy.reserve(nodes.size());
  double total_busy = 0.0;
  for (const auto& n : nodes) {
    result.node_busy.push_back(n.busy);
    total_busy += n.busy;
    DPGEN_ASSERT(n.ready.empty());
    DPGEN_ASSERT(n.waiting.empty());
  }
  result.total_work_sec = total_busy;
  result.utilization =
      makespan > 0
          ? total_busy / (makespan * cfg.nodes * cfg.cores_per_node)
          : 1.0;
  DPGEN_CHECK(result.tiles == model.total_tiles(params),
              "simulation did not execute every tile (scheduling bug)");

  if (msg_trace) {
    // Complete the consumer-side stamps: a simulated consumer "unpacks"
    // and "dispatches" when its tile starts executing.
    std::unordered_map<IntVec, const TileSpan*, IntVecHash> span_of;
    for (const TileSpan& ts : result.timeline) span_of[ts.tile] = &ts;
    for (obs::MsgRecord& m : result.msg_records) {
      IntVec consumer(static_cast<std::size_t>(m.ncoord));
      for (std::uint8_t k = 0; k < m.ncoord; ++k)
        consumer[k] = static_cast<Int>(m.consumer[k]);
      auto it = span_of.find(consumer);
      if (it == span_of.end()) continue;  // truncated coords; leave zeros
      m.unpack_ns = m.dispatch_ns =
          std::max(m.deliver_ns, sim_ns(it->second->start));
      m.dst_thread = static_cast<std::int16_t>(it->second->core);
    }
    if (cfg.msgtrace_path != "-") {
      obs::MsgTraceInput min;
      min.records = result.msg_records;
      min.nranks = cfg.nodes;
      min.sent_matrix = result.messages_matrix;
      min.source = "sim";
      min.problem = model.problem().problem_name();
      min.params = params;
      obs::write_msgtrace_json(cfg.msgtrace_path, min);
    }
  }

  if (!cfg.report_json_path.empty())
    obs::write_report_json(cfg.report_json_path,
                           obs::analyze(analysis_input(result, model, params,
                                                       cfg)));

  if (!cfg.profile_path.empty()) {
    // Synthetic profile: what a sampling profiler at profile_hz would have
    // seen, derived deterministically from DES time — per-node busy time
    // becomes tile_execute samples, the rest of the capacity becomes idle
    // samples, and the counter channel carries simulated nanoseconds.
    obs::ProfileDoc doc;
    doc.source = "sim";
    doc.problem =
        cfg.problem_name.empty() ? model.problem().problem_name()
                                 : cfg.problem_name;
    doc.params = params;
    // Simulated makespans are often milliseconds, where a wall-clock-ish
    // rate would round every node to zero samples; the synthetic sampler
    // raises the rate until the run yields ~1000 samples of resolution
    // (deterministic — it only depends on the makespan).
    double hz = cfg.profile_hz;
    const double capacity_total =
        makespan * cfg.cores_per_node * cfg.nodes;
    if (capacity_total > 0 && capacity_total * hz < 1000.0)
      hz = 1000.0 / capacity_total;
    doc.hz = hz;
    doc.counters = "sim";
    doc.sampler = "synthetic";
    doc.nranks = cfg.nodes;
    obs::ProfileFamily fam;
    fam.name = doc.problem;
    double predicted = 0.0;
    for (int n = 0; n < cfg.nodes; ++n)
      predicted += static_cast<double>(balancer.owned_work(n));
    fam.predicted_cells = predicted;
    fam.tiles = result.tiles;
    fam.cells = static_cast<long long>(predicted);
    fam.exec_seconds = result.total_work_sec;
    fam.sampled_tiles = result.tiles;
    fam.sampled_cells = fam.cells;
    fam.sampled_exec_seconds = result.total_work_sec;
    fam.cycles =
        static_cast<std::uint64_t>(result.total_work_sec * 1e9);  // sim ns
    for (int n = 0; n < cfg.nodes; ++n) {
      const double busy = result.node_busy[static_cast<std::size_t>(n)];
      const double capacity = makespan * cfg.cores_per_node;
      const auto busy_samples =
          static_cast<long long>(std::llround(busy * hz));
      const auto idle_samples = static_cast<long long>(
          std::llround(std::max(0.0, capacity - busy) * hz));
      doc.phase_samples[static_cast<std::size_t>(
          obs::Phase::kTileExecute)] += busy_samples;
      doc.phase_samples[static_cast<std::size_t>(obs::Phase::kIdle)] +=
          idle_samples;
      doc.samples_total += busy_samples + idle_samples;
      if (busy_samples > 0)
        doc.folded.push_back(
            {cat("rank", n, ";tile_execute"), busy_samples});
      if (idle_samples > 0)
        doc.folded.push_back({cat("rank", n, ";idle"), idle_samples});
      obs::ProfileThreadSummary ts;
      ts.rank = n;
      ts.thread = 0;
      ts.samples = busy_samples + idle_samples;
      doc.threads.push_back(ts);
    }
    doc.families.push_back(std::move(fam));
    obs::write_profile_json(cfg.profile_path, doc);
  }
  return result;
}

obs::AnalysisInput analysis_input(const SimResult& result,
                                  const tiling::TilingModel& model,
                                  const IntVec& params,
                                  const ClusterConfig& cfg) {
  obs::AnalysisInput in;
  in.source = "sim";
  in.problem = model.problem().problem_name();
  in.params = params;
  in.nranks = cfg.nodes;
  for (const auto& e : model.edges()) in.edge_offsets.push_back(e.offset);
  tiling::LoadBalancer balancer(model, params, cfg.nodes, cfg.balance);
  for (int r = 0; r < cfg.nodes; ++r)
    in.predicted_work.push_back(static_cast<double>(balancer.owned_work(r)));
  in.bytes_matrix = result.bytes_matrix;
  in.messages_matrix = result.messages_matrix;
  in.msg_records = result.msg_records;
  in.spans.reserve(result.timeline.size());
  for (const TileSpan& ts : result.timeline) {
    obs::Span s;
    s.start_ns = static_cast<std::int64_t>(ts.start * 1e9);
    s.end_ns = static_cast<std::int64_t>(ts.end * 1e9);
    s.rank = static_cast<std::int16_t>(ts.node);
    s.thread = static_cast<std::int16_t>(ts.core);
    s.phase = obs::Phase::kTileExecute;
    s.ncoord = static_cast<std::uint8_t>(
        std::min<std::size_t>(ts.tile.size(), obs::kMaxSpanDims));
    for (std::size_t k = 0; k < s.ncoord; ++k)
      s.coord[k] = static_cast<std::int32_t>(ts.tile[k]);
    in.spans.push_back(s);
  }
  return in;
}

std::vector<double> utilization_profile(const SimResult& result,
                                        int total_cores, int buckets) {
  DPGEN_CHECK(buckets >= 1 && total_cores >= 1,
              "utilization_profile needs positive buckets and cores");
  std::vector<double> busy(static_cast<std::size_t>(buckets), 0.0);
  if (result.makespan <= 0.0) return busy;
  const double width = result.makespan / buckets;
  for (const auto& span : result.timeline) {
    // Distribute the span's busy time over the buckets it overlaps.
    int b0 = std::min(buckets - 1, static_cast<int>(span.start / width));
    int b1 = std::min(buckets - 1, static_cast<int>(span.end / width));
    for (int b = b0; b <= b1; ++b) {
      double lo = std::max(span.start, b * width);
      double hi = std::min(span.end, (b + 1) * width);
      if (hi > lo) busy[static_cast<std::size_t>(b)] += hi - lo;
    }
  }
  for (auto& v : busy) v /= width * total_cores;
  return busy;
}

}  // namespace dpgen::sim
