#pragma once
// Small dense integer vectors used for points, template vectors and tile
// indices throughout the library, plus the hashing needed to key tiles.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "support/checked.hpp"

namespace dpgen {

/// A point / offset / coefficient row in Z^d.
using IntVec = std::vector<Int>;

/// Component-wise sum; both vectors must have the same length.
inline IntVec vec_add(const IntVec& a, const IntVec& b) {
  DPGEN_ASSERT(a.size() == b.size());
  IntVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = add_ck(a[i], b[i]);
  return r;
}

/// Component-wise difference; both vectors must have the same length.
inline IntVec vec_sub(const IntVec& a, const IntVec& b) {
  DPGEN_ASSERT(a.size() == b.size());
  IntVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = sub_ck(a[i], b[i]);
  return r;
}

/// Scales every component by s.
inline IntVec vec_scale(const IntVec& a, Int s) {
  IntVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = mul_ck(a[i], s);
  return r;
}

/// Inner product with overflow checking.
inline Int vec_dot(const IntVec& a, const IntVec& b) {
  DPGEN_ASSERT(a.size() == b.size());
  Int acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc = add_ck(acc, mul_ck(a[i], b[i]));
  return acc;
}

/// True if every component is zero.
inline bool vec_is_zero(const IntVec& a) {
  for (Int v : a)
    if (v != 0) return false;
  return true;
}

/// Renders as "(a, b, c)".
std::string vec_to_string(const IntVec& a);

/// FNV-1a style hash suitable for unordered_map keys.
struct IntVecHash {
  std::size_t operator()(const IntVec& v) const {
    std::size_t h = 1469598103934665603ull;
    for (Int x : v) {
      h ^= static_cast<std::size_t>(x) + 0x9e3779b97f4a7c15ull;
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace dpgen
