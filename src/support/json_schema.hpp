#pragma once
// Subset JSON-Schema validator for the analyzer's report documents.
//
// dpgen-analyze --validate checks a report against tools/report_schema.json
// without any external tooling (the container has no Python), so only the
// keywords that schema uses are implemented:
//   type ("object", "array", "string", "number", "integer", "boolean"),
//   required, properties, items, const, minimum.
// Unknown keywords are ignored (JSON Schema's own convention), which keeps
// the schema file free to carry documentation like "description".
// Validation errors are collected with JSON-pointer-style paths so a
// failing report names the offending field.

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "support/json.hpp"
#include "support/str.hpp"

namespace dpgen::json {

namespace detail {

inline bool type_matches(const Value& v, const std::string& type) {
  if (type == "object") return v.is(Kind::kObject);
  if (type == "array") return v.is(Kind::kArray);
  if (type == "string") return v.is(Kind::kString);
  if (type == "boolean") return v.is(Kind::kBool);
  if (type == "number") return v.is(Kind::kNumber);
  if (type == "integer")
    return v.is(Kind::kNumber) && v.number == std::floor(v.number);
  if (type == "null") return v.is(Kind::kNull);
  return true;  // unknown type names do not constrain
}

inline void validate_at(const Value& schema, const Value& v,
                        const std::string& path,
                        std::vector<std::string>* errors) {
  if (!schema.is(Kind::kObject)) return;

  if (schema.has("type")) {
    const std::string& type = schema.at("type").as_string();
    if (!type_matches(v, type)) {
      errors->push_back(cat(path, ": expected ", type));
      return;  // further keywords assume the right shape
    }
  }

  if (schema.has("const")) {
    const Value& want = schema.at("const");
    bool ok = want.kind == v.kind;
    if (ok && want.is(Kind::kString)) ok = want.str == v.str;
    if (ok && want.is(Kind::kNumber)) ok = want.number == v.number;
    if (ok && want.is(Kind::kBool)) ok = want.boolean == v.boolean;
    if (!ok) {
      errors->push_back(cat(path, ": does not match const"));
      return;
    }
  }

  if (schema.has("minimum") && v.is(Kind::kNumber) &&
      v.number < schema.at("minimum").as_number())
    errors->push_back(cat(path, ": below minimum"));

  if (v.is(Kind::kObject)) {
    if (schema.has("required"))
      for (const auto& key : schema.at("required").as_array())
        if (!v.has(key->as_string()))
          errors->push_back(
              cat(path, ": missing required key '", key->as_string(), "'"));
    if (schema.has("properties")) {
      const Value& props = schema.at("properties");
      for (const auto& [key, sub] : props.fields)
        if (v.has(key)) validate_at(*sub, v.at(key), cat(path, "/", key),
                                    errors);
    }
  }

  if (v.is(Kind::kArray) && schema.has("items")) {
    const Value& items = schema.at("items");
    for (std::size_t i = 0; i < v.items.size(); ++i)
      validate_at(items, *v.items[i], cat(path, "/", i), errors);
  }
}

}  // namespace detail

/// Validates `document` against `schema`; returns the list of violations
/// (empty = valid), each as "<path>: <problem>".
inline std::vector<std::string> validate(const Value& schema,
                                         const Value& document) {
  std::vector<std::string> errors;
  detail::validate_at(schema, document, "", &errors);
  return errors;
}

// ---- schema registry -----------------------------------------------------
// Single source of truth mapping every versioned document id the tools
// emit to its checked-in schema file, so `dpgen-analyze --validate` (and
// dpgen-bench's validator) resolve the right schema from the document's
// own `schema` field through one path instead of per-tool special cases.

struct SchemaRegistryEntry {
  const char* id;    ///< the document's `schema` field value
  const char* file;  ///< schema filename under tools/
};

inline constexpr SchemaRegistryEntry kSchemaRegistry[] = {
    {"dpgen.report.v1", "report_schema.json"},
    {"dpgen.bench.v1", "bench_schema.json"},
    {"dpgen.events.v1", "events_schema.json"},
    {"dpgen.checkpoint.v1", "checkpoint_schema.json"},
    {"dpgen.profile.v1", "profile_schema.json"},
    {"dpgen.msgtrace.v1", "msgtrace_schema.json"},
};

/// Schema filename for a document id ("" = unknown id).
inline std::string schema_file_for(const std::string& schema_id) {
  for (const auto& e : kSchemaRegistry)
    if (schema_id == e.id) return e.file;
  return "";
}

/// Resolves a registry filename to an on-disk path, probing (in order) the
/// DPGEN_SCHEMA_DIR environment variable, ./tools/ (running from the repo
/// root) and ../tools/ (running from build/).  Returns "" when no
/// candidate exists.
inline std::string find_schema_file(const std::string& file) {
  std::vector<std::string> candidates;
  if (const char* dir = std::getenv("DPGEN_SCHEMA_DIR"))
    candidates.push_back(cat(dir, "/", file));
  candidates.push_back(cat("tools/", file));
  candidates.push_back(cat("../tools/", file));
  for (const auto& c : candidates) {
    std::ifstream in(c);
    if (in.good()) return c;
  }
  return "";
}

}  // namespace dpgen::json
