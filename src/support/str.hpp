#pragma once
// String helpers shared by the parser, code emitter and diagnostics.

#include <sstream>
#include <string>
#include <vector>

namespace dpgen {

/// Concatenates the string representations of all arguments.
template <typename... Ts>
std::string cat(const Ts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

/// Joins the elements of `parts` with `sep` between them.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Removes leading and trailing ASCII whitespace.
std::string trim(const std::string& s);

/// Splits on any run of the characters in `delims`; empty tokens dropped.
std::vector<std::string> split(const std::string& s, const std::string& delims);

/// True if `s` begins with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// True if `name` is a valid C identifier ([A-Za-z_][A-Za-z0-9_]*).
bool is_identifier(const std::string& name);

}  // namespace dpgen
