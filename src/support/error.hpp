#pragma once
// Error handling for the dpgen library.
//
// All user-facing failures (bad problem specifications, infeasible systems,
// arithmetic overflow in exact computations) throw dpgen::Error.  Internal
// invariant violations use DPGEN_ASSERT, which also throws so that tests can
// exercise failure paths without aborting the process.

#include <stdexcept>
#include <string>

namespace dpgen {

/// Exception type thrown by every checked failure in the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws dpgen::Error with the given message.  Out-of-line so that the
/// throw site does not bloat headers.
[[noreturn]] void raise(const std::string& message);

/// Throws dpgen::Error annotated with file/line, used by DPGEN_ASSERT.
[[noreturn]] void raise_assert(const char* expr, const char* file, int line);

}  // namespace dpgen

/// Validates a user-visible precondition; throws dpgen::Error on failure.
#define DPGEN_CHECK(cond, msg)          \
  do {                                  \
    if (!(cond)) ::dpgen::raise((msg)); \
  } while (0)

/// Validates an internal invariant; throws dpgen::Error on failure.
#define DPGEN_ASSERT(cond)                                        \
  do {                                                            \
    if (!(cond)) ::dpgen::raise_assert(#cond, __FILE__, __LINE__); \
  } while (0)
