#pragma once
// Overflow-checked 64-bit integer arithmetic.
//
// The polyhedral machinery (Fourier-Motzkin elimination, Ehrhart fitting)
// performs exact integer arithmetic whose intermediate values can grow
// quickly.  Rather than silently wrapping, every operation here throws
// dpgen::Error on overflow so that a mis-scaled problem fails loudly.

#include <cstdint>
#include <numeric>

#include "support/error.hpp"

namespace dpgen {

/// The integer type used throughout the exact-arithmetic layers.
using Int = std::int64_t;

/// Returns a + b, throwing on signed overflow.
inline Int add_ck(Int a, Int b) {
  Int r;
  if (__builtin_add_overflow(a, b, &r)) raise("integer overflow in addition");
  return r;
}

/// Returns a - b, throwing on signed overflow.
inline Int sub_ck(Int a, Int b) {
  Int r;
  if (__builtin_sub_overflow(a, b, &r)) raise("integer overflow in subtraction");
  return r;
}

/// Returns a * b, throwing on signed overflow.
inline Int mul_ck(Int a, Int b) {
  Int r;
  if (__builtin_mul_overflow(a, b, &r)) raise("integer overflow in multiplication");
  return r;
}

/// Returns -a, throwing on overflow (INT64_MIN has no negation).
inline Int neg_ck(Int a) { return sub_ck(0, a); }

/// Floor division: largest q with q*b <= a.  b must be nonzero.
inline Int floor_div(Int a, Int b) {
  DPGEN_CHECK(b != 0, "floor_div by zero");
  Int q = a / b;
  Int r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) --q;
  return q;
}

/// Ceiling division: smallest q with q*b >= a.  b must be nonzero.
inline Int ceil_div(Int a, Int b) {
  DPGEN_CHECK(b != 0, "ceil_div by zero");
  Int q = a / b;
  Int r = a % b;
  if (r != 0 && ((r < 0) == (b < 0))) ++q;
  return q;
}

/// Nonnegative gcd; gcd(0,0) == 0.
inline Int gcd(Int a, Int b) {
  if (a < 0) a = neg_ck(a);
  if (b < 0) b = neg_ck(b);
  while (b != 0) {
    Int t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Least common multiple with overflow checking.
inline Int lcm(Int a, Int b) {
  if (a == 0 || b == 0) return 0;
  if (a < 0) a = neg_ck(a);
  if (b < 0) b = neg_ck(b);
  return mul_ck(a / gcd(a, b), b);
}

}  // namespace dpgen
