#pragma once
// Exact rational arithmetic over checked 64-bit integers.
//
// Used by the Ehrhart fitter (Gaussian elimination over Q) and by the
// load balancer when cutting work into fractional shares.  All operations
// normalise (gcd-reduced, positive denominator) and throw on overflow.

#include <compare>
#include <string>

#include "support/checked.hpp"

namespace dpgen {

/// An exact rational number p/q with q > 0, always stored in lowest terms.
class Rat {
 public:
  Rat() = default;
  Rat(Int numerator) : num_(numerator), den_(1) {}  // NOLINT: implicit by design
  Rat(Int numerator, Int denominator) : num_(numerator), den_(denominator) {
    DPGEN_CHECK(den_ != 0, "rational with zero denominator");
    normalize();
  }

  Int num() const { return num_; }
  Int den() const { return den_; }

  bool is_zero() const { return num_ == 0; }
  bool is_integer() const { return den_ == 1; }

  /// The integer value; throws unless is_integer().
  Int as_int() const {
    DPGEN_CHECK(den_ == 1, "rational is not an integer");
    return num_;
  }

  /// Largest integer <= value.
  Int floor() const { return floor_div(num_, den_); }
  /// Smallest integer >= value.
  Int ceil() const { return ceil_div(num_, den_); }

  Rat operator-() const { return Rat(neg_ck(num_), den_); }

  friend Rat operator+(const Rat& a, const Rat& b) {
    Int g = gcd(a.den_, b.den_);
    Int bd = b.den_ / g;
    Int n = add_ck(mul_ck(a.num_, bd), mul_ck(b.num_, a.den_ / g));
    return Rat(n, mul_ck(a.den_, bd));
  }
  friend Rat operator-(const Rat& a, const Rat& b) { return a + (-b); }
  friend Rat operator*(const Rat& a, const Rat& b) {
    // Cross-reduce before multiplying to keep intermediates small.
    Int g1 = gcd(a.num_, b.den_);
    Int g2 = gcd(b.num_, a.den_);
    return Rat(mul_ck(a.num_ / g1, b.num_ / g2),
               mul_ck(a.den_ / g2, b.den_ / g1));
  }
  friend Rat operator/(const Rat& a, const Rat& b) {
    DPGEN_CHECK(b.num_ != 0, "rational division by zero");
    return a * Rat(b.den_, b.num_);
  }

  Rat& operator+=(const Rat& o) { return *this = *this + o; }
  Rat& operator-=(const Rat& o) { return *this = *this - o; }
  Rat& operator*=(const Rat& o) { return *this = *this * o; }
  Rat& operator/=(const Rat& o) { return *this = *this / o; }

  friend bool operator==(const Rat& a, const Rat& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rat& a, const Rat& b) {
    // Compare via 128-bit cross multiplication; exact, cannot overflow.
    __int128 lhs = static_cast<__int128>(a.num_) * b.den_;
    __int128 rhs = static_cast<__int128>(b.num_) * a.den_;
    if (lhs < rhs) return std::strong_ordering::less;
    if (lhs > rhs) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }

  double to_double() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  std::string to_string() const {
    if (den_ == 1) return std::to_string(num_);
    return std::to_string(num_) + "/" + std::to_string(den_);
  }

 private:
  void normalize() {
    if (den_ < 0) {
      num_ = neg_ck(num_);
      den_ = neg_ck(den_);
    }
    Int g = dpgen::gcd(num_, den_);
    if (g > 1) {
      num_ /= g;
      den_ /= g;
    }
    if (num_ == 0) den_ = 1;
  }

  Int num_ = 0;
  Int den_ = 1;
};

}  // namespace dpgen
