#pragma once
// Minimal JSON reader shared by the analyzer CLI (re-ingesting exported
// traces and validating reports against the report schema) and the test
// suite (validating exported artifacts: Chrome traces, metrics dumps,
// bench --json records).  Strict enough to reject malformed output; not a
// general-purpose library.

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace dpgen::json {

class Value;
using ValuePtr = std::shared_ptr<Value>;

enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

/// One parsed JSON value.  Accessors throw on kind mismatch so tests fail
/// loudly on shape errors.
class Value {
 public:
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<ValuePtr> items;
  std::map<std::string, ValuePtr> fields;

  bool is(Kind k) const { return kind == k; }

  double as_number() const {
    require(Kind::kNumber);
    return number;
  }
  const std::string& as_string() const {
    require(Kind::kString);
    return str;
  }
  const std::vector<ValuePtr>& as_array() const {
    require(Kind::kArray);
    return items;
  }

  bool has(const std::string& key) const {
    require(Kind::kObject);
    return fields.count(key) != 0;
  }
  const Value& at(const std::string& key) const {
    require(Kind::kObject);
    auto it = fields.find(key);
    if (it == fields.end())
      throw std::runtime_error("json: missing key '" + key + "'");
    return *it->second;
  }

 private:
  void require(Kind k) const {
    if (kind != k) throw std::runtime_error("json: wrong value kind");
  }
};

namespace detail {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  ValuePtr parse() {
    ValuePtr v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json: " + why + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  std::string string_body() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            // Tests only need the ASCII subset; wider code points keep
            // their low byte, which is enough for structural checks.
            out += static_cast<char>(
                std::strtol(s_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  ValuePtr value() {
    skip_ws();
    char c = peek();
    auto v = std::make_shared<Value>();
    if (c == '{') {
      v->kind = Kind::kObject;
      ++pos_;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        skip_ws();
        std::string key = string_body();
        skip_ws();
        expect(':');
        v->fields[key] = value();
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v->kind = Kind::kArray;
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        v->items.push_back(value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v->kind = Kind::kString;
      v->str = string_body();
      return v;
    }
    if (consume_literal("true")) {
      v->kind = Kind::kBool;
      v->boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v->kind = Kind::kBool;
      return v;
    }
    if (consume_literal("null")) return v;
    // number
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("unexpected character");
    v->kind = Kind::kNumber;
    v->number = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parses a complete JSON document; throws std::runtime_error on errors.
inline ValuePtr parse(const std::string& text) {
  return detail::Parser(text).parse();
}

}  // namespace dpgen::json
