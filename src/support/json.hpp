#pragma once
// Minimal JSON reader and writer shared by the analyzer / bench CLIs
// (re-ingesting exported traces, validating documents against the checked
// in schemas, emitting dpgen.bench.v1 records) and the test suite
// (validating exported artifacts: Chrome traces, metrics dumps, bench
// records).  Strict enough to reject malformed output; not a
// general-purpose library.

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace dpgen::json {

class Value;
using ValuePtr = std::shared_ptr<Value>;

enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

/// One parsed JSON value.  Accessors throw on kind mismatch so tests fail
/// loudly on shape errors.
class Value {
 public:
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<ValuePtr> items;
  std::map<std::string, ValuePtr> fields;

  bool is(Kind k) const { return kind == k; }

  double as_number() const {
    require(Kind::kNumber);
    return number;
  }
  const std::string& as_string() const {
    require(Kind::kString);
    return str;
  }
  const std::vector<ValuePtr>& as_array() const {
    require(Kind::kArray);
    return items;
  }

  bool has(const std::string& key) const {
    require(Kind::kObject);
    return fields.count(key) != 0;
  }
  const Value& at(const std::string& key) const {
    require(Kind::kObject);
    auto it = fields.find(key);
    if (it == fields.end())
      throw std::runtime_error("json: missing key '" + key + "'");
    return *it->second;
  }

 private:
  void require(Kind k) const {
    if (kind != k) throw std::runtime_error("json: wrong value kind");
  }
};

namespace detail {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  ValuePtr parse() {
    ValuePtr v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json: " + why + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  std::string string_body() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            // Tests only need the ASCII subset; wider code points keep
            // their low byte, which is enough for structural checks.
            out += static_cast<char>(
                std::strtol(s_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  ValuePtr value() {
    skip_ws();
    char c = peek();
    auto v = std::make_shared<Value>();
    if (c == '{') {
      v->kind = Kind::kObject;
      ++pos_;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        skip_ws();
        std::string key = string_body();
        skip_ws();
        expect(':');
        v->fields[key] = value();
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v->kind = Kind::kArray;
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        v->items.push_back(value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v->kind = Kind::kString;
      v->str = string_body();
      return v;
    }
    if (consume_literal("true")) {
      v->kind = Kind::kBool;
      v->boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v->kind = Kind::kBool;
      return v;
    }
    if (consume_literal("null")) return v;
    // number
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("unexpected character");
    v->kind = Kind::kNumber;
    v->number = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parses a complete JSON document; throws std::runtime_error on errors.
inline ValuePtr parse(const std::string& text) {
  return detail::Parser(text).parse();
}

/// Escapes `s` into a double-quoted JSON string literal.
inline std::string escaped(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out + "\"";
}

/// Streaming JSON writer: replaces the hand-concatenated document builders
/// that produced unparseable output on edge cases.  Commas are managed by
/// the container stack; strings are escaped; non-finite doubles (a NaN
/// timing, an inf ratio) serialize as null so every emitted document stays
/// parseable.  Misuse (unbalanced containers, a value without a key inside
/// an object) throws instead of writing a corrupt file.
class Writer {
 public:
  Writer& begin_object() { return open('{', '}'); }
  Writer& end_object() { return close('}'); }
  Writer& begin_array() { return open('[', ']'); }
  Writer& end_array() { return close(']'); }

  Writer& key(const std::string& k) {
    if (stack_.empty() || stack_.back().close != '}' || after_key_)
      throw std::runtime_error("json::Writer: key outside object");
    comma();
    out_ += escaped(k);
    out_ += ':';
    after_key_ = true;
    return *this;
  }

  Writer& value(double v) {
    if (!std::isfinite(v)) return null();
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    return raw(buf);
  }
  Writer& value(long long v) { return raw(std::to_string(v)); }
  Writer& value(unsigned long long v) { return raw(std::to_string(v)); }
  Writer& value(int v) { return value(static_cast<long long>(v)); }
  Writer& value(bool v) { return raw(v ? "true" : "false"); }
  Writer& value(const std::string& s) { return raw(escaped(s)); }
  Writer& value(const char* s) { return raw(escaped(s)); }
  Writer& null() { return raw("null"); }

  /// The finished document; throws when containers are still open.
  const std::string& str() const {
    if (!stack_.empty())
      throw std::runtime_error("json::Writer: unbalanced containers");
    return out_;
  }

 private:
  struct Frame {
    char close;
    bool has_items = false;
  };

  void comma() {
    if (!stack_.empty() && stack_.back().has_items) out_ += ',';
    if (!stack_.empty()) stack_.back().has_items = true;
  }

  void pre_value() {
    if (after_key_) {
      after_key_ = false;
      return;  // the key already placed the comma
    }
    if (!stack_.empty() && stack_.back().close == '}')
      throw std::runtime_error("json::Writer: value without key in object");
    comma();
  }

  Writer& raw(const std::string& text) {
    pre_value();
    out_ += text;
    return *this;
  }

  Writer& open(char c, char close_c) {
    pre_value();
    out_ += c;
    stack_.push_back({close_c});
    return *this;
  }

  Writer& close(char c) {
    if (stack_.empty() || stack_.back().close != c || after_key_)
      throw std::runtime_error("json::Writer: mismatched close");
    stack_.pop_back();
    out_ += c;
    return *this;
  }

  std::string out_;
  std::vector<Frame> stack_;
  bool after_key_ = false;
};

}  // namespace dpgen::json
