#include "support/str.hpp"

#include <cctype>

#include "support/vec.hpp"

namespace dpgen {

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(const std::string& s,
                               const std::string& delims) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (delims.find(c) != std::string::npos) {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool is_identifier(const std::string& name) {
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_'))
    return false;
  for (char c : name)
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_'))
      return false;
  return true;
}

std::string vec_to_string(const IntVec& a) {
  std::string out = "(";
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(a[i]);
  }
  out += ")";
  return out;
}

}  // namespace dpgen
