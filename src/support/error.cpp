#include "support/error.hpp"

namespace dpgen {

void raise(const std::string& message) { throw Error(message); }

void raise_assert(const char* expr, const char* file, int line) {
  throw Error(std::string("internal invariant violated: ") + expr + " at " +
              file + ":" + std::to_string(line));
}

}  // namespace dpgen
