#include "minimpi/transport.hpp"

#include "obs/msgtrace.hpp"
#include "support/str.hpp"

namespace dpgen::minimpi {

std::string Transport::failure_reason() const {
  auto state = failure_state();
  std::lock_guard<std::mutex> lock(state->mu);
  return state->reason;
}

void Transport::fail(const std::string& reason) {
  auto state = failure_state();
  std::vector<std::function<void()>> listeners;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->failed.load(std::memory_order_relaxed)) return;
    state->reason = reason;
    state->failed.store(true, std::memory_order_release);
    listeners = state->listeners;
  }
  // Listeners run outside the state lock: they take their own locks (the
  // mailbox mutexes, World's barrier mutex) to publish the wakeup.
  for (auto& fn : listeners) fn();
}

void Transport::check_alive() const {
  if (failed())
    throw TransportFailure(cat("transport failed: ", failure_reason()));
}

void Transport::add_failure_listener(std::function<void()> fn) {
  auto state = failure_state();
  std::lock_guard<std::mutex> lock(state->mu);
  state->listeners.push_back(std::move(fn));
}

InProcessTransport::InProcessTransport(int nranks,
                                       std::size_t mailbox_capacity)
    : capacity_(mailbox_capacity) {
  DPGEN_CHECK(nranks >= 1, "transport needs at least one rank");
  for (int r = 0; r < nranks; ++r)
    boxes_.push_back(std::make_unique<Mailbox>());
  // Wake every parked sender and receiver when the stack is poisoned; the
  // wait predicates below re-check failed() and throw.
  add_failure_listener([this] {
    for (auto& b : boxes_) {
      std::lock_guard<std::mutex> lock(b->mu);
      b->not_empty.notify_all();
      b->not_full.notify_all();
    }
  });
}

PostResult InProcessTransport::try_post(int src, int dst, Message& m) {
  (void)src;
  check_alive();
  Mailbox& b = box(dst);
  {
    std::lock_guard<std::mutex> lock(b.mu);
    if (capacity_ > 0 && b.queue.size() >= capacity_)
      return PostResult::kFull;
    if (m.env.seq >= 0) m.env.admit_ns = obs::MsgTracer::now_ns();
    b.queue.push_back(std::move(m));
  }
  b.not_empty.notify_one();
  return PostResult::kDelivered;
}

std::size_t InProcessTransport::depth(int rank) const {
  Mailbox& b = box(rank);
  std::lock_guard<std::mutex> lock(b.mu);
  return b.queue.size();
}

bool InProcessTransport::would_block(int dst) const {
  if (capacity_ == 0) return false;
  Mailbox& b = box(dst);
  std::lock_guard<std::mutex> lock(b.mu);
  return b.queue.size() >= capacity_;
}

void InProcessTransport::wait_capacity(int src, int dst) {
  (void)src;
  Mailbox& b = box(dst);
  std::unique_lock<std::mutex> lock(b.mu);
  b.not_full.wait(lock, [&] {
    return failed() || capacity_ == 0 || b.queue.size() < capacity_;
  });
  check_alive();
}

bool InProcessTransport::probe(int rank, int* src, int* tag) {
  check_alive();
  Mailbox& b = box(rank);
  std::lock_guard<std::mutex> lock(b.mu);
  if (b.queue.empty()) return false;
  if (src) *src = b.queue.front().source;
  if (tag) *tag = b.queue.front().tag;
  return true;
}

std::optional<Message> InProcessTransport::collect(int rank) {
  check_alive();
  Mailbox& b = box(rank);
  std::lock_guard<std::mutex> lock(b.mu);
  if (b.queue.empty()) return std::nullopt;
  Message m = std::move(b.queue.front());
  b.queue.pop_front();
  b.not_full.notify_one();
  return m;
}

Message InProcessTransport::collect_blocking(int rank) {
  Mailbox& b = box(rank);
  std::unique_lock<std::mutex> lock(b.mu);
  b.not_empty.wait(lock, [&] { return failed() || !b.queue.empty(); });
  check_alive();
  Message m = std::move(b.queue.front());
  b.queue.pop_front();
  b.not_full.notify_one();
  return m;
}

std::optional<Message> InProcessTransport::collect_match(int rank, int src,
                                                         int tag) {
  check_alive();
  Mailbox& b = box(rank);
  std::lock_guard<std::mutex> lock(b.mu);
  for (auto it = b.queue.begin(); it != b.queue.end(); ++it) {
    if ((src >= 0 && it->source != src) || (tag >= 0 && it->tag != tag))
      continue;
    Message m = std::move(*it);
    b.queue.erase(it);
    b.not_full.notify_one();
    return m;
  }
  return std::nullopt;
}

void InProcessTransport::force_post(int dst, Message&& m) {
  Mailbox& b = box(dst);
  {
    std::lock_guard<std::mutex> lock(b.mu);
    // Delayed / duplicated reinjections admit now, not when first posted.
    if (m.env.seq >= 0) m.env.admit_ns = obs::MsgTracer::now_ns();
    b.queue.push_back(std::move(m));
  }
  b.not_empty.notify_one();
}

}  // namespace dpgen::minimpi
