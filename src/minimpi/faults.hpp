#pragma once
// Seeded, schedule-deterministic fault injection for the minimpi wire
// (ROADMAP item 5; proven by tests/test_faults.cpp).
//
// FaultInjector decorates an InProcessTransport and misbehaves on a plan:
//   * kill  — a rank dies at its Nth transport operation: the whole stack
//     is poisoned (every rank's next operation throws TransportFailure)
//     and the rank is reported dead, so the engine restarts from the
//     checkpoint over the survivors;
//   * drop  — the Nth message on a link vanishes (the sender believes it
//     was delivered).  Recovery path: the starved consumer rank declares
//     a transport failure after `recover_stall_seconds` without progress
//     and the run restarts from the checkpoint;
//   * dup   — the Nth message on a link is delivered twice (the tile
//     table's duplicate-edge guard must drop the second copy);
//   * delay — the Nth message on a link is parked and reinjected only
//     after the destination rank performs `hold` further transport
//     operations (reordering without loss);
//   * slow  — a rank sleeps a fixed number of microseconds on every
//     transport operation (a straggler, not a failure).
//
// Determinism: triggers count transport *operations* and per-link
// *messages*, never wall time, so a plan fires at the same logical point
// on every run with the same plan — which is what lets the chaos suite
// assert byte-identical results against the fault-free run.
//
// FaultPlan has a compact textual grammar (docs/fault-tolerance.md):
//   kill:R@N; drop:S>D@N; dup:S>D@N; delay:S>D@N+H; slow:R@U
// with `*` as a source/destination wildcard, e.g.
//   "kill:1@120;slow:0@25" or "drop:*>*@3".
// parse() and to_string() round-trip, so a failing randomized soak
// iteration logs a plan string that replays the failure exactly.

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "minimpi/transport.hpp"

namespace dpgen::minimpi {

struct FaultPlan {
  struct Kill {
    int rank = 0;
    long long after_ops = 1;  ///< dies at its after_ops-th transport op
  };
  /// Link faults apply to data-plane messages only (nonnegative tags);
  /// the collective tag space is exempt — see FaultInjector::try_post.
  struct LinkFault {
    enum Kind { kDrop, kDuplicate, kDelay };
    Kind kind = kDrop;
    int src = -1;        ///< -1 = any source
    int dst = -1;        ///< -1 = any destination
    long long nth = 1;   ///< fires on the nth message of a matching link
    long long hold = 4;  ///< delay only: destination ops before release
  };
  struct Slow {
    int rank = 0;
    long long op_delay_us = 10;
  };

  std::vector<Kill> kills;
  std::vector<LinkFault> links;
  std::vector<Slow> slows;

  bool empty() const {
    return kills.empty() && links.empty() && slows.empty();
  }

  std::string to_string() const;
  /// Parses the grammar above; throws dpgen::Error on malformed input.
  static FaultPlan parse(const std::string& text);
  /// A seeded random plan (soak testing): one or two faults drawn from
  /// every category, with triggers sized for small lattice runs.
  static FaultPlan random(unsigned seed, int nranks);
};

/// What the injector actually did, for test assertions ("the kill fired",
/// "at least one message was dropped").
struct FaultStats {
  long long kills_fired = 0;
  long long messages_dropped = 0;
  long long messages_duplicated = 0;
  long long messages_delayed = 0;
  long long slow_ops = 0;
  long long posts_to_dead = 0;  ///< sends swallowed after a rank died
};

class FaultInjector final : public Transport {
 public:
  FaultInjector(std::shared_ptr<InProcessTransport> inner, FaultPlan plan);

  int nranks() const override { return inner_->nranks(); }
  std::size_t capacity() const override { return inner_->capacity(); }

  PostResult try_post(int src, int dst, Message& m) override;
  bool would_block(int dst) const override {
    return inner_->would_block(dst);
  }
  std::size_t depth(int rank) const override { return inner_->depth(rank); }
  void wait_capacity(int src, int dst) override;

  bool probe(int rank, int* src, int* tag) override;
  std::optional<Message> collect(int rank) override;
  Message collect_blocking(int rank) override;
  std::optional<Message> collect_match(int rank, int src, int tag) override;

  std::vector<int> dead_ranks() const override;
  FaultStats stats() const;
  const FaultPlan& plan() const { return plan_; }

 private:
  /// Counts one transport operation by `rank`: applies slowdowns, releases
  /// parked (delayed) messages due for this rank, fires kills (poisoning
  /// the stack and throwing), and finally re-checks the poison flag.
  void account_op(int rank);

  struct Parked {
    int dst = -1;
    long long release_at = 0;  ///< ops_[dst] threshold for reinjection
    Message msg;
  };

  std::shared_ptr<InProcessTransport> inner_;
  FaultPlan plan_;

  mutable std::mutex mu_;  // guards every mutable field below
  std::vector<long long> ops_;         // per-rank transport op counts
  std::vector<long long> link_msgs_;   // per src*n+dst message counts
  std::vector<bool> dead_;
  std::vector<bool> kill_fired_;       // parallel to plan_.kills
  std::vector<Parked> parked_;
  FaultStats stats_;
};

}  // namespace dpgen::minimpi
