#include "minimpi/world.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace dpgen::minimpi {

namespace {

/// Cached registry handles (the send path must only touch atomics).
obs::Counter& messages_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("comm.messages_sent");
  return c;
}
obs::Counter& bytes_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("comm.bytes_sent");
  return c;
}
obs::Counter& blocked_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("comm.blocked_sends");
  return c;
}
obs::Histogram& message_bytes_histogram() {
  static obs::Histogram& h =
      obs::MetricsRegistry::instance().histogram("comm.message_bytes");
  return h;
}

}  // namespace

World::World(int nranks, std::size_t mailbox_capacity,
             std::shared_ptr<Transport> transport)
    : transport_(std::move(transport)) {
  DPGEN_CHECK(nranks >= 1, "world needs at least one rank");
  if (!transport_)
    transport_ =
        std::make_shared<InProcessTransport>(nranks, mailbox_capacity);
  DPGEN_CHECK(transport_->nranks() == nranks,
              cat("world of ", nranks, " ranks over a transport of ",
                  transport_->nranks()));
  // When the transport is poisoned, ranks parked in a collective must wake
  // up and throw too — the wait predicates re-check transport_->failed().
  transport_->add_failure_listener([this] {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    barrier_cv_.notify_all();
  });
  // Registry instruments are process-wide (shared by every source rank),
  // so resolve each destination's handle once and hand it to all Comms.
  std::vector<obs::Counter*> peer_messages, peer_bytes;
  auto& registry = obs::MetricsRegistry::instance();
  for (int r = 0; r < nranks; ++r) {
    peer_messages.push_back(&registry.counter(cat("comm.messages_sent.to", r)));
    peer_bytes.push_back(&registry.counter(cat("comm.bytes_sent.to", r)));
  }
  for (int r = 0; r < nranks; ++r) {
    comms_.push_back(std::unique_ptr<Comm>(new Comm()));
    comms_.back()->world_ = this;
    comms_.back()->rank_ = r;
    comms_.back()->peers_ =
        std::vector<Comm::PeerStats>(static_cast<std::size_t>(nranks));
    for (int dst = 0; dst < nranks; ++dst) {
      auto& peer = comms_.back()->peers_[static_cast<std::size_t>(dst)];
      peer.messages_counter = peer_messages[static_cast<std::size_t>(dst)];
      peer.bytes_counter = peer_bytes[static_cast<std::size_t>(dst)];
    }
  }
}

std::vector<std::vector<std::uint64_t>> World::bytes_matrix() const {
  std::vector<std::vector<std::uint64_t>> m(comms_.size());
  for (std::size_t src = 0; src < comms_.size(); ++src)
    for (std::size_t dst = 0; dst < comms_.size(); ++dst)
      m[src].push_back(comms_[src]->bytes_sent_to(static_cast<int>(dst)));
  return m;
}

std::vector<std::vector<std::uint64_t>> World::messages_matrix() const {
  std::vector<std::vector<std::uint64_t>> m(comms_.size());
  for (std::size_t src = 0; src < comms_.size(); ++src)
    for (std::size_t dst = 0; dst < comms_.size(); ++dst)
      m[src].push_back(comms_[src]->messages_sent_to(static_cast<int>(dst)));
  return m;
}

std::vector<std::vector<std::uint64_t>> World::sent_matrix() const {
  std::vector<std::vector<std::uint64_t>> m(comms_.size());
  for (std::size_t src = 0; src < comms_.size(); ++src)
    for (std::size_t dst = 0; dst < comms_.size(); ++dst)
      m[src].push_back(comms_[src]->peers_[dst].data_seq.load(
          std::memory_order_relaxed));
  return m;
}

int Comm::size() const { return world_->size(); }

Transport& Comm::transport() { return *world_->transport_; }

void Comm::count_send(int dst, std::size_t bytes) {
  ++messages_sent_;
  bytes_sent_ += bytes;
  auto& peer = peers_[static_cast<std::size_t>(dst)];
  peer.messages.fetch_add(1, std::memory_order_relaxed);
  peer.bytes.fetch_add(bytes, std::memory_order_relaxed);
  messages_counter().increment();
  bytes_counter().add(static_cast<std::int64_t>(bytes));
  peer.messages_counter->increment();
  peer.bytes_counter->add(static_cast<std::int64_t>(bytes));
  message_bytes_histogram().observe(static_cast<std::int64_t>(bytes));
}

void Comm::count_blocked() {
  ++blocked_sends_;
  blocked_counter().increment();
}

void Comm::send_impl(int dst, int tag, std::vector<std::uint8_t>&& payload) {
  const std::size_t bytes = payload.size();
  Message m;
  m.source = rank_;
  m.tag = tag;
  m.payload = std::move(payload);
  Transport& t = transport();
  if (t.try_post(rank_, dst, m) == PostResult::kFull) {
    count_blocked();
    obs::ScopedSpan span(obs::Phase::kBlockedSend);
    do {
      t.wait_capacity(rank_, dst);
    } while (t.try_post(rank_, dst, m) == PostResult::kFull);
  }
  count_send(dst, bytes);
}

void Comm::send(int dst, int tag, const void* data, std::size_t bytes) {
  DPGEN_CHECK(dst >= 0 && dst < size(), cat("send to invalid rank ", dst));
  const auto* p = static_cast<const std::uint8_t*>(data);
  send_impl(dst, tag, std::vector<std::uint8_t>(p, p + bytes));
}

void Comm::send(int dst, int tag, std::vector<std::uint8_t>&& payload) {
  DPGEN_CHECK(dst >= 0 && dst < size(), cat("send to invalid rank ", dst));
  send_impl(dst, tag, std::move(payload));
}

bool Comm::try_send(int dst, int tag, const void* data, std::size_t bytes) {
  DPGEN_CHECK(dst >= 0 && dst < size(), cat("send to invalid rank ", dst));
  Transport& t = transport();
  // The payload is copied only after the capacity hint passes, so a
  // polling retry loop does not pay for copies that would be thrown away.
  if (t.would_block(dst)) {
    t.check_alive();
    count_blocked();
    return false;
  }
  Message m;
  m.source = rank_;
  m.tag = tag;
  const auto* p = static_cast<const std::uint8_t*>(data);
  m.payload.assign(p, p + bytes);
  if (t.try_post(rank_, dst, m) == PostResult::kFull) {
    count_blocked();
    return false;
  }
  count_send(dst, bytes);
  return true;
}

bool Comm::try_send(int dst, int tag, std::vector<std::uint8_t>& payload,
                    const MsgEnvelope* env) {
  DPGEN_CHECK(dst >= 0 && dst < size(), cat("send to invalid rank ", dst));
  Transport& t = transport();
  const std::size_t bytes = payload.size();
  Message m;
  m.source = rank_;
  m.tag = tag;
  if (env) m.env = *env;
  m.payload = std::move(payload);
  if (t.try_post(rank_, dst, m) == PostResult::kFull) {
    payload = std::move(m.payload);  // untouched for the caller's retry
    count_blocked();
    return false;
  }
  count_send(dst, bytes);
  return true;
}

bool Comm::iprobe(int* src, int* tag) {
  return transport().probe(rank_, src, tag);
}

std::optional<Message> Comm::try_recv() { return transport().collect(rank_); }

std::size_t Comm::mailbox_depth() { return transport().depth(rank_); }

Message Comm::recv() { return transport().collect_blocking(rank_); }

std::optional<Message> Comm::try_recv_match(int source, int tag) {
  return transport().collect_match(rank_, source, tag);
}

void Comm::declare_failure(const std::string& reason) {
  transport().fail(cat("rank ", rank_, ": ", reason));
}

Request Comm::isend(int dst, int tag, const void* data, std::size_t bytes) {
  DPGEN_CHECK(dst >= 0 && dst < size(), cat("isend to invalid rank ", dst));
  Request r;
  r.comm_ = this;
  r.kind_ = Request::Kind::kSend;
  r.dst_ = dst;
  r.tag_ = tag;
  const auto* p = static_cast<const std::uint8_t*>(data);
  r.payload_.assign(p, p + bytes);
  r.test();  // attempt immediate delivery
  return r;
}

Request Comm::irecv(int source, int tag) {
  Request r;
  r.comm_ = this;
  r.kind_ = Request::Kind::kRecv;
  r.want_src_ = source;
  r.want_tag_ = tag;
  r.test();
  return r;
}

bool Request::test() {
  if (done_) return true;
  DPGEN_CHECK(kind_ != Kind::kInvalid, "test() on an empty Request");
  if (kind_ == Kind::kSend) {
    if (comm_->try_send(dst_, tag_, payload_.data(), payload_.size())) {
      payload_.clear();
      payload_.shrink_to_fit();
      done_ = true;
    }
  } else {
    if (auto m = comm_->try_recv_match(want_src_, want_tag_)) {
      received_ = std::move(*m);
      done_ = true;
    }
  }
  return done_;
}

void Request::wait() {
  while (!test()) std::this_thread::yield();
}

const Message& Request::message() const {
  DPGEN_CHECK(kind_ == Kind::kRecv && done_,
              "message() requires a completed receive request");
  return received_;
}

void Comm::barrier() {
  obs::ScopedSpan span(obs::Phase::kBarrier);
  Transport& t = transport();
  t.check_alive();
  std::unique_lock<std::mutex> lock(world_->barrier_mu_);
  std::uint64_t gen = world_->barrier_generation_;
  if (++world_->barrier_arrived_ == size()) {
    world_->barrier_arrived_ = 0;
    ++world_->barrier_generation_;
    world_->barrier_cv_.notify_all();
    return;
  }
  world_->barrier_cv_.wait(lock, [&] {
    return world_->barrier_generation_ != gen || t.failed();
  });
  if (world_->barrier_generation_ == gen) {
    --world_->barrier_arrived_;  // barrier abandoned; keep state consistent
    t.check_alive();
  }
}

Int Comm::allreduce_sum(Int value) {
  return world_->allreduce_round<Int>(value, false, world_->accum_int_,
                                      world_->result_int_);
}

double Comm::allreduce_sum(double value) {
  return world_->allreduce_round<double>(value, false, world_->accum_dbl_,
                                         world_->result_dbl_);
}

double Comm::allreduce_max(double value) {
  return world_->allreduce_round<double>(value, true, world_->accum_dbl_,
                                         world_->result_dbl_);
}

namespace {
/// Tag space reserved for collectives; user tags are nonnegative ints so
/// these cannot collide.
constexpr int kBcastTag = -101;
constexpr int kGatherTag = -102;
}  // namespace

void Comm::broadcast(int root, void* data, std::size_t bytes) {
  DPGEN_CHECK(root >= 0 && root < size(), "broadcast: invalid root");
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r)
      if (r != root) send(r, kBcastTag, data, bytes);
  } else {
    while (true) {
      if (auto m = try_recv_match(root, kBcastTag)) {
        DPGEN_CHECK(m->payload.size() == bytes,
                    "broadcast: payload size mismatch");
        std::memcpy(data, m->payload.data(), bytes);
        break;
      }
      std::this_thread::yield();
    }
  }
  barrier();
}

void Comm::gather(int root, const void* send_buf, std::size_t bytes,
                  std::vector<std::uint8_t>* out) {
  DPGEN_CHECK(root >= 0 && root < size(), "gather: invalid root");
  if (rank_ == root) {
    DPGEN_CHECK(out != nullptr, "gather: root needs an output buffer");
    out->assign(static_cast<std::size_t>(size()) * bytes, 0);
    const auto* self = static_cast<const std::uint8_t*>(send_buf);
    std::copy(self, self + bytes,
              out->begin() +
                  static_cast<std::ptrdiff_t>(
                      static_cast<std::size_t>(rank_) * bytes));
    for (int received = 0; received < size() - 1;) {
      if (auto m = try_recv_match(-1, kGatherTag)) {
        DPGEN_CHECK(m->payload.size() == bytes,
                    "gather: payload size mismatch");
        std::copy(m->payload.begin(), m->payload.end(),
                  out->begin() + static_cast<std::ptrdiff_t>(
                                     static_cast<std::size_t>(m->source) *
                                     bytes));
        ++received;
      } else {
        std::this_thread::yield();
      }
    }
  } else {
    send(root, kGatherTag, send_buf, bytes);
  }
  barrier();
}

void World::run(const std::function<void(Comm&)>& fn) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(comms_.size());
  for (std::size_t r = 0; r < comms_.size(); ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(*comms_[r]);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  // When one rank hits a genuine error it poisons the transport, so its
  // peers all unwind with secondary TransportFailures.  Rethrow the root
  // cause, not whichever secondary happens to sit at a lower rank —
  // otherwise a fault-tolerant caller would "recover" from a plain bug.
  std::exception_ptr transport_error;
  for (auto& e : errors) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const TransportFailure&) {
      if (!transport_error) transport_error = e;
    } catch (...) {
      std::rethrow_exception(e);
    }
  }
  if (transport_error) std::rethrow_exception(transport_error);
}

}  // namespace dpgen::minimpi
