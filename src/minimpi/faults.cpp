#include "minimpi/faults.hpp"

#include <chrono>
#include <cstdlib>
#include <random>
#include <thread>

#include "support/str.hpp"

namespace dpgen::minimpi {

namespace {

const char* link_kind_name(FaultPlan::LinkFault::Kind kind) {
  switch (kind) {
    case FaultPlan::LinkFault::kDrop:
      return "drop";
    case FaultPlan::LinkFault::kDuplicate:
      return "dup";
    case FaultPlan::LinkFault::kDelay:
      return "delay";
  }
  return "?";
}

std::string rank_or_star(int r) {
  return r < 0 ? std::string("*") : std::to_string(r);
}

int parse_rank_or_star(const std::string& s, const std::string& token) {
  if (s == "*") return -1;
  DPGEN_CHECK(!s.empty() && s.find_first_not_of("0123456789") ==
                                std::string::npos,
              cat("fault plan: bad rank '", s, "' in '", token, "'"));
  return std::atoi(s.c_str());
}

long long parse_count(const std::string& s, const std::string& token) {
  DPGEN_CHECK(!s.empty() && s.find_first_not_of("0123456789") ==
                                std::string::npos,
              cat("fault plan: bad count '", s, "' in '", token, "'"));
  return std::atoll(s.c_str());
}

}  // namespace

std::string FaultPlan::to_string() const {
  std::string out;
  auto append = [&](const std::string& s) {
    if (!out.empty()) out += ';';
    out += s;
  };
  for (const Kill& k : kills)
    append(cat("kill:", k.rank, "@", k.after_ops));
  for (const LinkFault& lf : links) {
    std::string s = cat(link_kind_name(lf.kind), ":", rank_or_star(lf.src),
                        ">", rank_or_star(lf.dst), "@", lf.nth);
    if (lf.kind == LinkFault::kDelay) s += cat("+", lf.hold);
    append(s);
  }
  for (const Slow& s : slows)
    append(cat("slow:", s.rank, "@", s.op_delay_us));
  return out;
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  for (const std::string& raw : split(text, ";")) {
    const std::string token = trim(raw);
    if (token.empty()) continue;
    const std::size_t colon = token.find(':');
    DPGEN_CHECK(colon != std::string::npos,
                cat("fault plan: missing ':' in '", token, "'"));
    const std::string kind = token.substr(0, colon);
    const std::string spec = token.substr(colon + 1);
    const std::size_t at = spec.find('@');
    DPGEN_CHECK(at != std::string::npos,
                cat("fault plan: missing '@' in '", token, "'"));
    if (kind == "kill" || kind == "slow") {
      const long long n = parse_count(spec.substr(at + 1), token);
      const int rank = parse_rank_or_star(spec.substr(0, at), token);
      DPGEN_CHECK(rank >= 0,
                  cat("fault plan: '", kind, "' needs a concrete rank"));
      if (kind == "kill")
        plan.kills.push_back(Kill{rank, n});
      else
        plan.slows.push_back(Slow{rank, n});
      continue;
    }
    const std::size_t gt = spec.find('>');
    DPGEN_CHECK(gt != std::string::npos && gt < at,
                cat("fault plan: link fault needs 'S>D@N' in '", token,
                    "'"));
    LinkFault lf;
    if (kind == "drop")
      lf.kind = LinkFault::kDrop;
    else if (kind == "dup")
      lf.kind = LinkFault::kDuplicate;
    else if (kind == "delay")
      lf.kind = LinkFault::kDelay;
    else
      raise(cat("fault plan: unknown fault kind '", kind, "'"));
    lf.src = parse_rank_or_star(spec.substr(0, gt), token);
    lf.dst = parse_rank_or_star(spec.substr(gt + 1, at - gt - 1), token);
    std::string count = spec.substr(at + 1);
    if (lf.kind == LinkFault::kDelay) {
      const std::size_t plus = count.find('+');
      DPGEN_CHECK(plus != std::string::npos,
                  cat("fault plan: delay needs '@N+HOLD' in '", token, "'"));
      lf.hold = parse_count(count.substr(plus + 1), token);
      count = count.substr(0, plus);
    }
    lf.nth = parse_count(count, token);
    plan.links.push_back(lf);
  }
  return plan;
}

FaultPlan FaultPlan::random(unsigned seed, int nranks) {
  std::mt19937 gen(seed);
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(gen);
  };
  FaultPlan plan;
  int kind = pick(0, 4);
  if (kind == 0 && nranks < 2) kind = 1;  // killing the only rank is moot
  switch (kind) {
    case 0:
      plan.kills.push_back(Kill{pick(0, nranks - 1), pick(10, 160)});
      break;
    case 1:
      plan.links.push_back(LinkFault{LinkFault::kDrop, -1, -1, pick(1, 5), 0});
      break;
    case 2:
      plan.links.push_back(
          LinkFault{LinkFault::kDuplicate, -1, -1, pick(1, 5), 0});
      break;
    case 3:
      plan.links.push_back(
          LinkFault{LinkFault::kDelay, -1, -1, pick(1, 5), pick(2, 12)});
      break;
    default:
      plan.slows.push_back(Slow{pick(0, nranks - 1), pick(5, 40)});
      break;
  }
  // Sometimes stack a slowdown on top, so link faults also fire under
  // skewed timing.
  if (pick(0, 3) == 0) plan.slows.push_back(Slow{pick(0, nranks - 1), pick(5, 20)});
  return plan;
}

FaultInjector::FaultInjector(std::shared_ptr<InProcessTransport> inner,
                             FaultPlan plan)
    : Transport(inner->failure_state()),
      inner_(std::move(inner)),
      plan_(std::move(plan)) {
  const int n = nranks();
  ops_.assign(static_cast<std::size_t>(n), 0);
  link_msgs_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                    0);
  dead_.assign(static_cast<std::size_t>(n), false);
  kill_fired_.assign(plan_.kills.size(), false);
  for (const auto& k : plan_.kills) {
    DPGEN_CHECK(k.rank >= 0 && k.rank < n,
                cat("fault plan: kill rank ", k.rank, " outside world of ",
                    n));
    DPGEN_CHECK(k.after_ops >= 1, "fault plan: kill trigger must be >= 1");
  }
  for (const auto& lf : plan_.links) {
    DPGEN_CHECK(lf.src >= -1 && lf.src < n && lf.dst >= -1 && lf.dst < n,
                "fault plan: link fault rank outside world");
    DPGEN_CHECK(lf.nth >= 1, "fault plan: link trigger must be >= 1");
    DPGEN_CHECK(lf.kind != FaultPlan::LinkFault::kDelay || lf.hold >= 1,
                "fault plan: delay hold must be >= 1");
  }
  for (const auto& s : plan_.slows) {
    DPGEN_CHECK(s.rank >= 0 && s.rank < n,
                cat("fault plan: slow rank ", s.rank, " outside world of ",
                    n));
    DPGEN_CHECK(s.op_delay_us >= 0, "fault plan: negative slowdown");
  }
}

void FaultInjector::account_op(int rank) {
  long long sleep_us = 0;
  std::string kill_reason;
  std::vector<Parked> due;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const long long n = ++ops_[static_cast<std::size_t>(rank)];
    for (const auto& s : plan_.slows)
      if (s.rank == rank) sleep_us += s.op_delay_us;
    if (sleep_us > 0) ++stats_.slow_ops;
    for (std::size_t k = 0; k < plan_.kills.size(); ++k) {
      const auto& kill = plan_.kills[k];
      if (kill_fired_[k] || kill.rank != rank || n < kill.after_ops)
        continue;
      kill_fired_[k] = true;
      dead_[static_cast<std::size_t>(rank)] = true;
      ++stats_.kills_fired;
      kill_reason =
          cat("rank ", rank, " killed at transport op ", n, " by fault plan");
    }
    for (std::size_t i = 0; i < parked_.size();) {
      if (parked_[i].dst == rank && n >= parked_[i].release_at) {
        due.push_back(std::move(parked_[i]));
        parked_[i] = std::move(parked_.back());
        parked_.pop_back();
      } else {
        ++i;
      }
    }
  }
  // Reinject due delayed messages before the caller's own receive runs,
  // so a hold of H means "visible after H further destination ops".
  for (auto& p : due) inner_->force_post(p.dst, std::move(p.msg));
  if (sleep_us > 0)
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
  if (!kill_reason.empty()) {
    fail(kill_reason);
    throw TransportFailure(kill_reason);
  }
  check_alive();
}

PostResult FaultInjector::try_post(int src, int dst, Message& m) {
  account_op(src);
  enum class Action { kForward, kSwallow, kPark, kDuplicate };
  Action action = Action::kForward;
  long long park_release = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_[static_cast<std::size_t>(dst)]) {
      ++stats_.posts_to_dead;
      action = Action::kSwallow;
    } else if (m.tag >= 0) {
      // Link faults hit the data plane only (nonnegative tags).  The
      // collective tag space (broadcast / gather, negative tags) is
      // exempt: those run after every rank's worker loop drained, where a
      // dropped message would hang the run with nothing left to trigger
      // recovery — real MPI collectives similarly fail fast rather than
      // silently losing contributions.
      const std::size_t link = static_cast<std::size_t>(src) *
                                   static_cast<std::size_t>(nranks()) +
                               static_cast<std::size_t>(dst);
      const long long count = ++link_msgs_[link];
      for (const auto& lf : plan_.links) {
        if ((lf.src >= 0 && lf.src != src) ||
            (lf.dst >= 0 && lf.dst != dst) || lf.nth != count)
          continue;
        if (lf.kind == FaultPlan::LinkFault::kDrop) {
          ++stats_.messages_dropped;
          action = Action::kSwallow;
        } else if (lf.kind == FaultPlan::LinkFault::kDuplicate) {
          action = Action::kDuplicate;
        } else {
          ++stats_.messages_delayed;
          action = Action::kPark;
          park_release = ops_[static_cast<std::size_t>(dst)] + lf.hold;
        }
        break;  // first matching fault wins
      }
    }
    if (action == Action::kPark)
      parked_.push_back(Parked{dst, park_release, std::move(m)});
  }
  switch (action) {
    case Action::kSwallow: {
      Message discarded = std::move(m);
      (void)discarded;
      return PostResult::kDelivered;
    }
    case Action::kPark:
      return PostResult::kDelivered;
    case Action::kDuplicate: {
      Message copy;
      copy.source = m.source;
      copy.tag = m.tag;
      copy.payload = m.payload;
      if (inner_->try_post(src, dst, m) == PostResult::kFull)
        return PostResult::kFull;  // copy discarded; retry counts afresh
      inner_->force_post(dst, std::move(copy));
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.messages_duplicated;
      return PostResult::kDelivered;
    }
    case Action::kForward:
      break;
  }
  return inner_->try_post(src, dst, m);
}

void FaultInjector::wait_capacity(int src, int dst) {
  account_op(src);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A dead destination never drains its mailbox; return so the caller's
    // retry posts (and the post is swallowed).
    if (dead_[static_cast<std::size_t>(dst)]) return;
  }
  inner_->wait_capacity(src, dst);
}

bool FaultInjector::probe(int rank, int* src, int* tag) {
  account_op(rank);
  return inner_->probe(rank, src, tag);
}

std::optional<Message> FaultInjector::collect(int rank) {
  account_op(rank);
  return inner_->collect(rank);
}

Message FaultInjector::collect_blocking(int rank) {
  account_op(rank);
  return inner_->collect_blocking(rank);
}

std::optional<Message> FaultInjector::collect_match(int rank, int src,
                                                    int tag) {
  account_op(rank);
  return inner_->collect_match(rank, src, tag);
}

std::vector<int> FaultInjector::dead_ranks() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> out;
  for (std::size_t r = 0; r < dead_.size(); ++r)
    if (dead_[r]) out.push_back(static_cast<int>(r));
  return out;
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dpgen::minimpi
