#pragma once
// minimpi: an in-process message-passing substrate with MPI-like semantics.
//
// The paper's generated programs are hybrid OpenMP + MPI; this container
// has no MPI installation, so minimpi supplies the message-passing layer
// (see DESIGN.md, substitutions): ranks run as std::threads inside one
// process, each with a tagged mailbox.  Sends copy the payload into the
// destination mailbox (blocking when the mailbox is at capacity, which
// models the generated programs' configurable number of send/receive
// buffers); receives are by polling (iprobe/try_recv) or blocking (recv).
// Collectives (barrier, allreduce) follow MPI semantics.
//
// The byte-moving substrate itself lives behind the Transport interface
// (transport.hpp): World/Comm implement the MPI-shaped semantics on top
// of whatever Transport they are constructed with — the in-process
// mailboxes by default, or a fault-injecting decorator (faults.hpp) for
// chaos testing.  When the transport fails, every blocked collective and
// receive wakes up and throws TransportFailure.
//
// Everything the runtime does with this interface maps 1:1 onto real MPI
// calls (MPI_Send/MPI_Iprobe/MPI_Recv/MPI_Barrier/MPI_Allreduce), so
// generated code can be retargeted by swapping this header's backend.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "minimpi/transport.hpp"
#include "support/checked.hpp"

namespace dpgen::obs {
class Counter;
}

namespace dpgen::minimpi {

class World;

class Comm;

/// Handle for a nonblocking operation (MPI_Request analogue).  Obtained
/// from Comm::isend / Comm::irecv; poll with test() or block with wait().
/// Requests are movable, single-owner, and must not outlive their Comm.
class Request {
 public:
  Request() = default;

  /// True once the operation completed (idempotent after completion).
  bool test();

  /// Blocks (by polling) until completion.
  void wait();

  bool done() const { return done_; }

  /// The received message; only valid for completed irecv requests.
  const Message& message() const;

 private:
  friend class Comm;
  enum class Kind { kInvalid, kSend, kRecv };

  Comm* comm_ = nullptr;
  Kind kind_ = Kind::kInvalid;
  bool done_ = false;
  // send state
  int dst_ = -1;
  int tag_ = 0;
  std::vector<std::uint8_t> payload_;
  // recv state
  int want_src_ = -1;  // -1 = any
  int want_tag_ = -1;  // -1 = any
  Message received_;
};

/// A rank's endpoint: everything a node runtime needs to communicate.
/// Thread-safe: multiple worker threads of one rank may use it concurrently
/// (the generated programs poll under a lock; minimpi locks internally).
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Copies `bytes` of `data` into rank `dst`'s mailbox.  Blocks while the
  /// destination mailbox is at capacity (capacity 0 = unbounded).
  void send(int dst, int tag, const void* data, std::size_t bytes);

  /// Move-in variant: the payload vector's heap storage becomes the
  /// mailbox Message's, with no intermediate copy (the MPI analogue is a
  /// buffer handed to MPI_Send and reused after return; here ownership
  /// transfers outright, which is what lets the runtime pool wire
  /// buffers end to end).
  void send(int dst, int tag, std::vector<std::uint8_t>&& payload);

  /// Non-blocking send: returns false (without sending) when the
  /// destination mailbox is at capacity.  Callers that hold work to do —
  /// like the tile worker loop — use this and service their own mailbox
  /// while waiting, which avoids cyclic send deadlocks under small buffer
  /// budgets.
  bool try_send(int dst, int tag, const void* data, std::size_t bytes);

  /// Move-in variant of try_send: on success the payload is moved into
  /// the mailbox (and left empty); on failure it is untouched, so a
  /// retry loop keeps using the same buffer.  When `env` is non-null the
  /// message carries that lifecycle envelope (causal message tracing);
  /// retries of the same message must reuse the same envelope so the
  /// sequence number is assigned exactly once.
  bool try_send(int dst, int tag, std::vector<std::uint8_t>& payload,
                const MsgEnvelope* env = nullptr);

  /// Assigns the next data-plane sequence number for the `rank() -> dst`
  /// link.  Call once per traced message, before the send retry loop.
  std::int64_t next_seq(int dst) {
    return static_cast<std::int64_t>(
        peers_[static_cast<std::size_t>(dst)].data_seq.fetch_add(
            1, std::memory_order_relaxed));
  }

  /// Current depth of this rank's own mailbox (backpressure gauge).
  std::size_t mailbox_depth();

  /// True when a message is waiting; fills src/tag when non-null.
  bool iprobe(int* src = nullptr, int* tag = nullptr);

  /// Pops the oldest waiting message, if any.
  std::optional<Message> try_recv();

  /// Blocks until a message arrives.
  Message recv();

  /// Nonblocking send: the payload is copied immediately; delivery
  /// happens on test()/wait() when the destination mailbox has space
  /// (immediately when unbounded).
  Request isend(int dst, int tag, const void* data, std::size_t bytes);

  /// Nonblocking receive matching source/tag (-1 = any).  Completion is
  /// checked on test()/wait(); the matched message may arrive out of
  /// arrival order relative to non-matching messages (MPI matching).
  Request irecv(int source = -1, int tag = -1);

  /// Pops the oldest message matching source/tag (-1 = any), if present.
  std::optional<Message> try_recv_match(int source, int tag);

  /// Blocks until every rank has entered the barrier — or the transport
  /// fails, in which case TransportFailure is thrown.
  void barrier();

  /// Sum-reduction over all ranks; every rank receives the total.
  Int allreduce_sum(Int value);
  double allreduce_sum(double value);

  /// Max-reduction over all ranks.
  double allreduce_max(double value);

  /// Broadcast: every rank receives root's bytes (MPI_Bcast semantics —
  /// all ranks call with the same root; buffers must be `bytes` long).
  void broadcast(int root, void* data, std::size_t bytes);

  /// Gather: root receives size() payloads concatenated in rank order
  /// (each rank contributes `bytes` bytes); non-root out stays untouched.
  void gather(int root, const void* send, std::size_t bytes,
              std::vector<std::uint8_t>* out);

  /// Poisons the transport stack: every rank's next transport operation
  /// (including this rank's) throws TransportFailure.  The driver's
  /// recovery path uses this when a rank concludes messages were lost —
  /// stalled with dependencies that will never arrive — so the engine can
  /// unwind all ranks and restart from the checkpoint.
  void declare_failure(const std::string& reason);

  // ---- statistics (atomic: several worker threads share one Comm) ---------
  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  /// Number of sends that found the destination mailbox full.
  std::uint64_t blocked_sends() const { return blocked_sends_; }

  /// Per-peer send totals (the communication-matrix source: row = this
  /// rank, column = dst).  Collective traffic (broadcast/gather) counts
  /// too, so summing a row reproduces messages_sent()/bytes_sent().
  std::uint64_t messages_sent_to(int dst) const {
    return peers_[static_cast<std::size_t>(dst)].messages.load(
        std::memory_order_relaxed);
  }
  std::uint64_t bytes_sent_to(int dst) const {
    return peers_[static_cast<std::size_t>(dst)].bytes.load(
        std::memory_order_relaxed);
  }

 private:
  friend class World;

  /// Per-destination counters plus cached handles for the registry's
  /// process-wide `comm.{messages,bytes}_sent.to<dst>` instruments.
  struct PeerStats {
    std::atomic<std::uint64_t> messages{0};
    std::atomic<std::uint64_t> bytes{0};
    /// Traced data-plane sequence counter (next_seq); counts only
    /// messages that were assigned an envelope, so it matches the
    /// msgtrace document's per-link `sent` exactly.
    std::atomic<std::uint64_t> data_seq{0};
    obs::Counter* messages_counter = nullptr;
    obs::Counter* bytes_counter = nullptr;
  };

  /// Send accounting shared by every send path (atomics only).
  void count_send(int dst, std::size_t bytes);
  /// Accounting for a send that found the destination mailbox full.
  void count_blocked();
  /// Shared body of the move-in blocking sends.
  void send_impl(int dst, int tag, std::vector<std::uint8_t>&& payload);

  Transport& transport();

  World* world_ = nullptr;
  int rank_ = -1;
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> blocked_sends_{0};
  std::vector<PeerStats> peers_;  // sized by the World constructor
};

/// A communicator world of `nranks` ranks within this process.
class World {
 public:
  /// mailbox_capacity bounds the per-rank receive queue (0 = unbounded),
  /// modelling the paper's configurable send/receive buffer counts.
  /// When `transport` is null an InProcessTransport is created; passing
  /// one explicitly (e.g. a FaultInjector stack) must agree on nranks.
  explicit World(int nranks, std::size_t mailbox_capacity = 0,
                 std::shared_ptr<Transport> transport = nullptr);

  int size() const { return static_cast<int>(comms_.size()); }
  Comm& comm(int rank) { return *comms_[static_cast<std::size_t>(rank)]; }
  const Comm& comm(int rank) const {
    return *comms_[static_cast<std::size_t>(rank)];
  }

  /// The wire this world runs on.
  Transport& transport() { return *transport_; }

  /// rank x rank send totals, [source][destination] — the communication
  /// matrix the performance report renders (obs/analysis.hpp).
  std::vector<std::vector<std::uint64_t>> bytes_matrix() const;
  std::vector<std::vector<std::uint64_t>> messages_matrix() const;
  /// Traced data-plane sends per link (sequence numbers assigned via
  /// Comm::next_seq) — the msgtrace conservation baseline.
  std::vector<std::vector<std::uint64_t>> sent_matrix() const;

  /// Runs fn(comm) on every rank, each on its own thread, and joins them.
  /// The first exception thrown by any rank is rethrown here.
  void run(const std::function<void(Comm&)>& fn);

 private:
  friend class Comm;

  std::shared_ptr<Transport> transport_;
  std::vector<std::unique_ptr<Comm>> comms_;  // Comm holds atomics: pinned

  // Barrier state.
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // Allreduce state (guarded by barrier_mu_ as well).  All ranks must call
  // matching collectives in the same order, like MPI.
  int reduce_arrived_ = 0;
  std::uint64_t reduce_generation_ = 0;
  Int accum_int_ = 0, result_int_ = 0;
  double accum_dbl_ = 0.0, result_dbl_ = 0.0;

  /// One sum/max round shared by the allreduce overloads.  Failure-aware:
  /// a poisoned transport wakes the waiters (via the listener registered
  /// in the constructor) and they throw instead of waiting forever for
  /// ranks that will never arrive.
  template <typename T>
  T allreduce_round(T value, bool take_max, T& accum, T& result) {
    transport_->check_alive();
    std::unique_lock<std::mutex> lock(barrier_mu_);
    std::uint64_t gen = reduce_generation_;
    if (reduce_arrived_ == 0) accum = value;
    else if (take_max)
      accum = accum < value ? value : accum;
    else
      accum = accum + value;
    if (++reduce_arrived_ == size()) {
      reduce_arrived_ = 0;
      result = accum;
      ++reduce_generation_;
      barrier_cv_.notify_all();
      return result;
    }
    barrier_cv_.wait(lock, [&] {
      return reduce_generation_ != gen || transport_->failed();
    });
    if (reduce_generation_ == gen) {
      --reduce_arrived_;  // round abandoned; leave state consistent
      transport_->check_alive();
    }
    return result;
  }
};

}  // namespace dpgen::minimpi
