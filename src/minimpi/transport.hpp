#pragma once
// Transport: the wire underneath minimpi::World.
//
// World/Comm implement MPI-shaped semantics (tagged sends, probing
// receives, collectives); Transport is the byte-moving substrate those
// semantics run on.  Splitting the two serves ROADMAP item 5 twice over:
//   * portability — retargeting the generated programs to a different wire
//     (real MPI, shared memory segments, sockets) means implementing this
//     interface, not rewriting World;
//   * fault tolerance — a Transport can *fail*: a decorator (faults.hpp)
//     kills ranks and corrupts links on a seeded schedule, and every
//     blocked operation in the stack wakes up and throws TransportFailure
//     so the engine can unwind all ranks and restart from a checkpoint.
//
// The failure state is shared between a decorator and the transport it
// wraps (one FailureState per stack), so poisoning either side poisons
// both and a single set of listeners wakes every waiter — mailbox
// condition variables here, the collective waiters in World.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace dpgen::minimpi {

/// Lifecycle envelope riding alongside the payload (never inside it — the
/// wire bytes and the computed result stay identical with tracing on or
/// off).  Sender and transport fill it in as the message moves; the
/// receiver completes it into an obs::MsgRecord.  All stamps share the
/// span tracer's steady clock.  seq < 0 means untraced (tracing disabled,
/// or a control-plane/collective message).
struct MsgEnvelope {
  std::int64_t seq = -1;      ///< per-link (src -> dst) sequence number
  std::int64_t pack_ns = 0;   ///< sender: payload encode started
  std::int64_t send_ns = 0;   ///< sender: first handed to the transport
  std::int64_t admit_ns = 0;  ///< transport: admitted to dst's mailbox
  std::int16_t src_thread = 0;
};

/// One delivered message: source rank, user tag and a byte payload.
struct Message {
  int source = -1;
  int tag = 0;
  std::vector<std::uint8_t> payload;
  MsgEnvelope env;
};

/// Thrown by every transport operation once the transport has failed (a
/// rank was killed, or a rank declared a failure after losing messages).
/// All ranks unwind through it; the engine's fault-tolerant loop catches
/// it at the top and restarts from the checkpoint over surviving ranks.
class TransportFailure : public Error {
 public:
  explicit TransportFailure(const std::string& what) : Error(what) {}
};

enum class PostResult {
  kDelivered,  ///< message consumed (moved into the destination mailbox)
  kFull,       ///< destination at capacity; message left intact for retry
};

class Transport {
 public:
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  virtual int nranks() const = 0;
  /// Mailbox capacity (0 = unbounded).
  virtual std::size_t capacity() const = 0;

  // ---- sending (src = posting rank) ----

  /// Attempts to append `m` to dst's mailbox.  On kDelivered the message
  /// was consumed; on kFull it is untouched so a retry loop keeps using
  /// the same buffer.
  virtual PostResult try_post(int src, int dst, Message& m) = 0;

  /// Cheap capacity hint: true when a try_post to dst would likely return
  /// kFull right now.  Racy by nature (another sender can change the
  /// answer immediately); purely an optimisation to skip payload copies.
  virtual bool would_block(int dst) const = 0;

  /// Current depth of `rank`'s mailbox — a backpressure gauge for the
  /// monitor, racy like would_block.  Transports without a queue to
  /// inspect report 0.
  virtual std::size_t depth(int rank) const {
    (void)rank;
    return 0;
  }

  /// Blocks until dst's mailbox has space — or the transport fails, in
  /// which case TransportFailure is thrown.
  virtual void wait_capacity(int src, int dst) = 0;

  // ---- receiving (rank = owner of the polled mailbox) ----

  virtual bool probe(int rank, int* src, int* tag) = 0;
  virtual std::optional<Message> collect(int rank) = 0;
  /// Blocks until a message arrives (or the transport fails).
  virtual Message collect_blocking(int rank) = 0;
  /// Pops the oldest message matching source/tag (-1 = any), if present.
  virtual std::optional<Message> collect_match(int rank, int src,
                                               int tag) = 0;

  // ---- failure surface ----

  /// True once the transport has failed; every subsequent operation on
  /// any rank throws TransportFailure.
  bool failed() const {
    return state_->failed.load(std::memory_order_acquire);
  }
  std::string failure_reason() const;

  /// Declares a failure: sets the flag, then runs every registered
  /// listener (outside the state lock) so blocked waiters wake and throw.
  /// Idempotent — only the first reason sticks.
  void fail(const std::string& reason);

  /// Throws TransportFailure when the transport has failed.
  void check_alive() const;

  /// Ranks the fault layer has declared dead.  The base transport never
  /// kills anyone.
  virtual std::vector<int> dead_ranks() const { return {}; }

  /// Registers a callback run once when fail() first fires.  Register
  /// before ranks start; listeners must outlive the transport stack's
  /// active use (World registers its collective-wakeup here).
  void add_failure_listener(std::function<void()> fn);

  /// Failure state shared across a decorator stack.
  struct FailureState {
    std::atomic<bool> failed{false};
    std::mutex mu;
    std::string reason;
    std::vector<std::function<void()>> listeners;
  };

  /// Shared so a decorator can adopt it (one FailureState per stack).
  std::shared_ptr<FailureState> failure_state() const { return state_; }

 protected:
  Transport() : state_(std::make_shared<FailureState>()) {}
  /// Decorator constructor: adopt the wrapped transport's failure state.
  explicit Transport(std::shared_ptr<FailureState> state)
      : state_(std::move(state)) {}

 private:
  std::shared_ptr<FailureState> state_;
};

/// The in-process implementation: per-rank bounded mailboxes (mutex + two
/// condition variables + a deque), exactly the machinery World itself held
/// before the Transport split.  Blocking waits are failure-aware: fail()
/// notifies every condition variable and the wait predicates re-check the
/// poisoned flag, so no rank stays parked on a dead transport.
class InProcessTransport final : public Transport {
 public:
  InProcessTransport(int nranks, std::size_t mailbox_capacity);

  int nranks() const override { return static_cast<int>(boxes_.size()); }
  std::size_t capacity() const override { return capacity_; }

  PostResult try_post(int src, int dst, Message& m) override;
  bool would_block(int dst) const override;
  std::size_t depth(int rank) const override;
  void wait_capacity(int src, int dst) override;

  bool probe(int rank, int* src, int* tag) override;
  std::optional<Message> collect(int rank) override;
  Message collect_blocking(int rank) override;
  std::optional<Message> collect_match(int rank, int src, int tag) override;

  /// Appends regardless of capacity.  The fault layer uses it to reinject
  /// delayed and duplicated messages without re-entering the capacity
  /// gate (a parked message already passed it once).
  void force_post(int dst, Message&& m);

 private:
  struct Mailbox {
    mutable std::mutex mu;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    std::deque<Message> queue;
  };

  Mailbox& box(int rank) const {
    return *boxes_[static_cast<std::size_t>(rank)];
  }

  std::size_t capacity_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;
};

}  // namespace dpgen::minimpi
