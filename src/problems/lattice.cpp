// Trellis / seam-carving shortest path: a Viterbi-shaped recurrence with
// laterally mixed-sign template vectors (1,-1), (1,0), (1,+1).
//
// f(t, s) is the minimal accumulated energy of a connected vertical seam
// from row t, column s to the bottom of a T x S energy field:
//   f(t, s) = e(t, s) + min(f(t+1, s-1), f(t+1, s), f(t+1, s+1)).
//
// Rectangular tiling of mixed-sign lateral dependencies is only legal when
// the tile offsets stay lexicographically positive, which strip tiles
// (width 1 in the pipelined t dimension) guarantee — the spec validator
// enforces exactly that, so this problem doubles as the regression test
// for the generalised legality rule.

#include <algorithm>
#include <vector>

#include "problems/problems.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace dpgen::problems {

namespace {

/// Deterministic pseudo-random energy in [0, 255].
double energy(Int t, Int s, unsigned seed) {
  std::uint64_t h = static_cast<std::uint64_t>(t) * 0x9e3779b97f4a7c15ull ^
                    static_cast<std::uint64_t>(s) * 0xc2b2ae3d27d4eb4full ^
                    (static_cast<std::uint64_t>(seed) << 32);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return static_cast<double>(h & 0xffu);
}

}  // namespace

Problem seam_carving(Int lateral_tile_width, unsigned seed) {
  Problem p;
  p.spec.name("seam")
      .params({"T", "S"})
      .vars({"t", "s"})
      .array("V")
      .constraint("t >= 0")
      .constraint("t <= T")
      .constraint("s >= 0")
      .constraint("s <= S")
      .dep("down_left", {1, -1})
      .dep("down", {1, 0})
      .dep("down_right", {1, 1})
      .load_balance({"t"})
      // Strip tiles: width 1 in t keeps the tile graph acyclic with the
      // mixed lateral signs.
      .tile_widths({1, lateral_tile_width})
      .global_code(cat("static const unsigned dp_seam_seed = ", seed, ";\n",
                       R"(static double dp_energy(long long t, long long s) {
  unsigned long long h = (unsigned long long)t * 0x9e3779b97f4a7c15ull ^
                         (unsigned long long)s * 0xc2b2ae3d27d4eb4full ^
                         ((unsigned long long)dp_seam_seed << 32);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return (double)(h & 0xffu);
}
)"))
      .center_code(R"(
double dp_best = 0.0; int dp_any = 0;
if (is_valid_down_left) { dp_best = V[loc_down_left]; dp_any = 1; }
if (is_valid_down && (!dp_any || V[loc_down] < dp_best)) {
  dp_best = V[loc_down]; dp_any = 1;
}
if (is_valid_down_right && (!dp_any || V[loc_down_right] < dp_best)) {
  dp_best = V[loc_down_right]; dp_any = 1;
}
V[loc] = dp_energy(t, s) + (dp_any ? dp_best : 0.0);
)");
  p.spec.validate();

  p.kernel = [seed](const engine::Cell& c) {
    double best = 0.0;
    bool any = false;
    for (int j = 0; j < 3; ++j) {
      if (!c.valid[j]) continue;
      double v = c.V[c.loc_dep[j]];
      if (!any || v < best) {
        best = v;
        any = true;
      }
    }
    c.V[c.loc] = energy(c.x[0], c.x[1], seed) + (any ? best : 0.0);
  };

  p.objective = {0, 0};

  p.reference = [seed](const IntVec& params) {
    const Int T = params.at(0), S = params.at(1);
    std::vector<std::vector<double>> f(
        static_cast<std::size_t>(T + 1),
        std::vector<double>(static_cast<std::size_t>(S + 1), 0.0));
    for (Int t = T; t >= 0; --t) {
      for (Int s = 0; s <= S; ++s) {
        double best = 0.0;
        bool any = false;
        if (t < T) {
          for (Int ds : {-1, 0, 1}) {
            Int ns = s + ds;
            if (ns < 0 || ns > S) continue;
            double v = f[static_cast<std::size_t>(t + 1)]
                        [static_cast<std::size_t>(ns)];
            if (!any || v < best) {
              best = v;
              any = true;
            }
          }
        }
        f[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)] =
            energy(t, s, seed) + (any ? best : 0.0);
      }
    }
    return f[0][0];
  };
  return p;
}

Problem coin_change(IntVec denominations, Int tile_width) {
  DPGEN_CHECK(!denominations.empty(), "coin_change needs denominations");
  for (Int d : denominations)
    DPGEN_CHECK(d >= 1, "denominations must be positive");

  Problem p;
  // Suffix form: f(c) counts coins needed for the REMAINING amount C - c,
  // i.e. g(a) for amount a = C - c; using deps f(c + d_j) keeps template
  // vectors positive.  f(C) = 0, objective at c = 0.
  p.spec.name("coin_change")
      .params({"C"})
      .vars({"c"})
      .array("V")
      .constraint("c >= 0")
      .constraint("c <= C")
      .load_balance({"c"})
      .tile_widths({tile_width});
  std::string center = "double dp_best = 0.0; int dp_any = 0;\n";
  for (std::size_t j = 0; j < denominations.size(); ++j) {
    p.spec.dep(cat("d", denominations[j]), {denominations[j]});
    center += cat("if (is_valid_d", denominations[j], " && (!dp_any || V[loc_d",
                  denominations[j], "] < dp_best)) { dp_best = V[loc_d",
                  denominations[j], "]; dp_any = 1; }\n");
  }
  center +=
      "V[loc] = c == C ? 0.0 : (dp_any && dp_best < 1e17 ? 1.0 + dp_best "
      ": 1e18);\n";
  p.spec.center_code(center);
  p.spec.validate();

  IntVec denoms = denominations;
  p.kernel = [denoms](const engine::Cell& c) {
    // f(C) = 0; is_valid flags say whether c + d_j <= C.
    bool at_end = true;
    double best = 0.0;
    bool any = false;
    for (std::size_t j = 0; j < denoms.size(); ++j) {
      if (!c.valid[j]) continue;
      at_end = false;
      double v = c.V[c.loc_dep[j]];
      if (!any || v < best) {
        best = v;
        any = true;
      }
    }
    if (c.x[0] == c.params[0]) {
      c.V[c.loc] = 0.0;
    } else {
      c.V[c.loc] = (any && best < 1e17) ? 1.0 + best : 1e18;
    }
    (void)at_end;
  };

  p.objective = {0};

  p.reference = [denoms](const IntVec& params) {
    const Int C = params.at(0);
    std::vector<double> g(static_cast<std::size_t>(C + 1), 1e18);
    g[0] = 0.0;  // amount 0 needs no coins
    for (Int a = 1; a <= C; ++a) {
      for (Int d : denoms) {
        if (d <= a && g[static_cast<std::size_t>(a - d)] + 1.0 <
                          g[static_cast<std::size_t>(a)])
          g[static_cast<std::size_t>(a)] =
              g[static_cast<std::size_t>(a - d)] + 1.0;
      }
    }
    return g[static_cast<std::size_t>(C)];
  };
  return p;
}

}  // namespace dpgen::problems
