// Vectorization-benchmark families: guarded weighted-sum recurrences whose
// center loops are exactly the shape the codegen pass pipeline targets.
//
// Both kernels read every dependency behind its validity flag
// (`if (is_valid_rj) ... V[loc_rj]`).  In the plain Fig. 3 emission those
// are conditional loads the compiler must not speculate (the ghost cells
// behind an invalid flag may be outside the tile buffer's initialised
// region, and a load it cannot prove safe blocks if-conversion), so the
// inner loop stays scalar.  The canonicalize pass splits the innermost
// range so the interior's flags fold to `true`, the loads become
// unconditional straight-line code and the loop vectorizes — these two
// families are the ones bench/bench_codegen_kernels.cpp and the check.sh
// perf gate measure.
//
//   trellis:  f(t,s) = c(t,s) + 0.3125 f(t+1,s-1) + 0.375 f(t+1,s)
//                             + 0.28125 f(t+1,s+1)        (strip tiles)
//   downhill: f(t,s) = c(t,s) + 0.46875 f(t+1,s) + 0.40625 f(t+1,s+1)
//                                                        (square tiles)
//
// All weights are exact binary fractions and every producer (engine
// interpreter, generated program, serial reference) accumulates them in
// the same order, so results agree bit-for-bit across pass pipelines.

#include <vector>

#include "problems/problems.hpp"
#include "support/error.hpp"

namespace dpgen::problems {

namespace {

/// Deterministic per-cell source term, exact in binary floating point.
/// The int64 -> int32 narrowing before the double conversion matters: GCC
/// has no packed long long -> double conversion below AVX-512, so a direct
/// (double)(long long) cast would block vectorization of the whole loop at
/// baseline -O3.  The masked value fits in 3 bits, so the narrowing is
/// value-preserving.
double trellis_cell(Int t, Int s) {
  return 0.25 +
         static_cast<double>(static_cast<int>((3 * t + 5 * s) & 7)) * 0.125;
}

double downhill_cell(Int t, Int s) {
  return 0.5 +
         static_cast<double>(static_cast<int>((t + 2 * s) & 3)) * 0.25;
}

}  // namespace

Problem trellis(Int lateral_tile_width) {
  Problem p;
  p.spec.name("trellis")
      .params({"T", "S"})
      .vars({"t", "s"})
      .array("V")
      .constraint("t >= 0")
      .constraint("t <= T")
      .constraint("s >= 0")
      .constraint("s <= S")
      .dep("up_left", {1, -1})
      .dep("up", {1, 0})
      .dep("up_right", {1, 1})
      .load_balance({"t"})
      // Strip tiles: the mixed lateral signs need width 1 in the
      // pipelined t dimension (same legality argument as seam_carving).
      .tile_widths({1, lateral_tile_width})
      .center_code(R"(
double dp_v = 0.25 + (double)(int)((3*t + 5*s) & 7) * 0.125;
if (is_valid_up_left) dp_v += 0.3125 * V[loc_up_left];
if (is_valid_up) dp_v += 0.375 * V[loc_up];
if (is_valid_up_right) dp_v += 0.28125 * V[loc_up_right];
V[loc] = dp_v;
)");
  p.spec.validate();

  p.kernel = [](const engine::Cell& c) {
    double v = trellis_cell(c.x[0], c.x[1]);
    if (c.valid[0]) v += 0.3125 * c.V[c.loc_dep[0]];
    if (c.valid[1]) v += 0.375 * c.V[c.loc_dep[1]];
    if (c.valid[2]) v += 0.28125 * c.V[c.loc_dep[2]];
    c.V[c.loc] = v;
  };

  p.objective = {0, 0};

  p.reference = [](const IntVec& params) {
    const Int T = params.at(0), S = params.at(1);
    std::vector<std::vector<double>> f(
        static_cast<std::size_t>(T + 1),
        std::vector<double>(static_cast<std::size_t>(S + 1), 0.0));
    for (Int t = T; t >= 0; --t) {
      for (Int s = 0; s <= S; ++s) {
        double v = trellis_cell(t, s);
        if (t + 1 <= T && s - 1 >= 0)
          v += 0.3125 * f[static_cast<std::size_t>(t + 1)]
                         [static_cast<std::size_t>(s - 1)];
        if (t + 1 <= T)
          v += 0.375 *
               f[static_cast<std::size_t>(t + 1)][static_cast<std::size_t>(s)];
        if (t + 1 <= T && s + 1 <= S)
          v += 0.28125 * f[static_cast<std::size_t>(t + 1)]
                          [static_cast<std::size_t>(s + 1)];
        f[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)] = v;
      }
    }
    return f[0][0];
  };
  return p;
}

Problem downhill(Int tile_width_t, Int tile_width_s) {
  Problem p;
  p.spec.name("downhill")
      .params({"T", "S"})
      .vars({"t", "s"})
      .array("V")
      .constraint("t >= 0")
      .constraint("t <= T")
      .constraint("s >= 0")
      .constraint("s <= S")
      .dep("down", {1, 0})
      .dep("diag", {1, 1})
      .load_balance({"t"})
      // Same-sign dependencies admit genuine 2-D (square) tiles.
      .tile_widths({tile_width_t, tile_width_s})
      .center_code(R"(
double dp_v = 0.5 + (double)(int)((t + 2*s) & 3) * 0.25;
if (is_valid_down) dp_v += 0.46875 * V[loc_down];
if (is_valid_diag) dp_v += 0.40625 * V[loc_diag];
V[loc] = dp_v;
)");
  p.spec.validate();

  p.kernel = [](const engine::Cell& c) {
    double v = downhill_cell(c.x[0], c.x[1]);
    if (c.valid[0]) v += 0.46875 * c.V[c.loc_dep[0]];
    if (c.valid[1]) v += 0.40625 * c.V[c.loc_dep[1]];
    c.V[c.loc] = v;
  };

  p.objective = {0, 0};

  p.reference = [](const IntVec& params) {
    const Int T = params.at(0), S = params.at(1);
    std::vector<std::vector<double>> f(
        static_cast<std::size_t>(T + 1),
        std::vector<double>(static_cast<std::size_t>(S + 1), 0.0));
    for (Int t = T; t >= 0; --t) {
      for (Int s = 0; s <= S; ++s) {
        double v = downhill_cell(t, s);
        if (t + 1 <= T)
          v += 0.46875 *
               f[static_cast<std::size_t>(t + 1)][static_cast<std::size_t>(s)];
        if (t + 1 <= T && s + 1 <= S)
          v += 0.40625 * f[static_cast<std::size_t>(t + 1)]
                          [static_cast<std::size_t>(s + 1)];
        f[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)] = v;
      }
    }
    return f[0][0];
  };
  return p;
}

}  // namespace dpgen::problems
