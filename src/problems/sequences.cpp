// Sequence problems: exact multiple sequence alignment, longest common
// subsequence and edit distance (paper section I).
//
// All three use the suffix formulation so that every template vector is
// nonnegative: f(x) is the optimal score of aligning the sequence suffixes
// starting at positions x, and the objective lives at the origin.

#include <algorithm>
#include <vector>

#include "problems/problems.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace dpgen::problems {

namespace {

constexpr double kInf = 1e300;

/// Flat row-major strides for dims (L_i + 1).
std::vector<std::size_t> strides_for(const IntVec& lens) {
  std::vector<std::size_t> s(lens.size());
  std::size_t acc = 1;
  for (std::size_t k = lens.size(); k-- > 0;) {
    s[k] = acc;
    acc *= static_cast<std::size_t>(lens[k] + 1);
  }
  return s;
}

/// Sum-of-pairs column cost for advancing the sequences in `mask` at
/// positions `pos`.
double sp_column_cost(const std::vector<std::string>& seqs, const Int* pos,
                      unsigned mask, double mismatch, double gap) {
  const int m = static_cast<int>(seqs.size());
  double cost = 0.0;
  for (int i = 0; i < m; ++i) {
    for (int j = i + 1; j < m; ++j) {
      bool ai = (mask >> i) & 1u;
      bool aj = (mask >> j) & 1u;
      if (ai && aj) {
        char ci = seqs[static_cast<std::size_t>(i)]
                      [static_cast<std::size_t>(pos[i])];
        char cj = seqs[static_cast<std::size_t>(j)]
                      [static_cast<std::size_t>(pos[j])];
        cost += (ci == cj) ? 0.0 : mismatch;
      } else if (ai != aj) {
        cost += gap;
      }
    }
  }
  return cost;
}

}  // namespace

IntVec sequence_params(const std::vector<std::string>& seqs) {
  IntVec lens;
  for (const auto& s : seqs) lens.push_back(static_cast<Int>(s.size()));
  return lens;
}

std::string random_dna(std::size_t length, unsigned seed) {
  static const char kBases[] = "ACGT";
  std::string out;
  out.reserve(length);
  std::uint64_t state = seed * 6364136223846793005ull + 1442695040888963407ull;
  for (std::size_t i = 0; i < length; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    out += kBases[(state >> 33) & 3u];
  }
  return out;
}

Problem msa(const std::vector<std::string>& seqs, Int tile_width,
            double mismatch, double gap) {
  const int m = static_cast<int>(seqs.size());
  DPGEN_CHECK(m >= 2 && m <= 4, "msa supports 2 to 4 sequences");

  Problem p;
  std::vector<std::string> vars, params;
  for (int i = 1; i <= m; ++i) {
    vars.push_back("x" + std::to_string(i));
    params.push_back("L" + std::to_string(i));
  }
  p.spec.name(cat("msa", m)).params(params).vars(vars).array("V");
  for (int i = 1; i <= m; ++i) {
    p.spec.constraint(cat("x", i, " >= 0"));
    p.spec.constraint(cat("x", i, " <= L", i));
  }
  const unsigned nmasks = (1u << m) - 1u;
  for (unsigned mask = 1; mask <= nmasks; ++mask) {
    IntVec r(static_cast<std::size_t>(m), 0);
    for (int i = 0; i < m; ++i) r[static_cast<std::size_t>(i)] = (mask >> i) & 1u;
    p.spec.dep(cat("r", mask), r);
  }
  p.spec.load_balance({vars[0], vars[1]});
  p.spec.tile_widths(IntVec(static_cast<std::size_t>(m), tile_width));

  // Generated-code fragments: the sequences become global char arrays and
  // the center loop is the unrolled min over subsets.
  {
    std::string global;
    for (int i = 0; i < m; ++i)
      global += cat("static const char dp_seq", i, "[] = \"",
                    seqs[static_cast<std::size_t>(i)], "\";\n");
    std::string center = "double dp_best = 0.0; int dp_any = 0;\n";
    for (unsigned mask = 1; mask <= nmasks; ++mask) {
      std::string cost;
      for (int i = 0; i < m; ++i)
        for (int j = i + 1; j < m; ++j) {
          bool ai = (mask >> i) & 1u, aj = (mask >> j) & 1u;
          std::string term;
          if (ai && aj)
            term = cat("(dp_seq", i, "[x", i + 1, "] == dp_seq", j, "[x",
                       j + 1, "] ? 0.0 : ", mismatch, ")");
          else if (ai != aj)
            term = cat(gap);
          else
            continue;
          cost += (cost.empty() ? "" : " + ") + term;
        }
      center += cat("if (is_valid_r", mask, ") {\n  double dp_c = ", cost,
                    " + V[loc_r", mask,
                    "];\n  if (!dp_any || dp_c < dp_best) { dp_best = dp_c; "
                    "dp_any = 1; }\n}\n");
    }
    center += "V[loc] = dp_any ? dp_best : 0.0;\n";
    p.spec.global_code(global).center_code(center);
  }
  p.spec.validate();

  auto seqs_copy = seqs;
  p.kernel = [seqs_copy, m, nmasks, mismatch, gap](const engine::Cell& c) {
    double best = kInf;
    bool any = false;
    for (unsigned mask = 1; mask <= nmasks; ++mask) {
      unsigned j = mask - 1;  // dep index
      if (!c.valid[j]) continue;
      double cand =
          sp_column_cost(seqs_copy, c.x, mask, mismatch, gap) +
          c.V[c.loc_dep[j]];
      if (!any || cand < best) {
        best = cand;
        any = true;
      }
      (void)m;
    }
    c.V[c.loc] = any ? best : 0.0;
  };

  p.objective = IntVec(static_cast<std::size_t>(m), 0);

  p.reference = [seqs_copy, m, nmasks, mismatch, gap](const IntVec& lens) {
    auto strides = strides_for(lens);
    std::size_t total = 1;
    for (Int l : lens) total *= static_cast<std::size_t>(l + 1);
    std::vector<double> D(total, 0.0);
    std::vector<Int> pos(static_cast<std::size_t>(m));
    for (std::size_t flat = total; flat-- > 0;) {
      std::size_t rem = flat;
      for (int k = 0; k < m; ++k) {
        auto ks = static_cast<std::size_t>(k);
        pos[ks] = static_cast<Int>(rem / strides[ks]);
        rem %= strides[ks];
      }
      double best = kInf;
      bool any = false;
      for (unsigned mask = 1; mask <= nmasks; ++mask) {
        bool ok = true;
        std::size_t nflat = flat;
        for (int i = 0; i < m && ok; ++i) {
          if (!((mask >> i) & 1u)) continue;
          if (pos[static_cast<std::size_t>(i)] >=
              lens[static_cast<std::size_t>(i)])
            ok = false;
          else
            nflat += strides[static_cast<std::size_t>(i)];
        }
        if (!ok) continue;
        double cand =
            sp_column_cost(seqs_copy, pos.data(), mask, mismatch, gap) +
            D[nflat];
        if (!any || cand < best) {
          best = cand;
          any = true;
        }
      }
      D[flat] = any ? best : 0.0;
    }
    return D[0];
  };
  return p;
}

Problem lcs(const std::vector<std::string>& seqs, Int tile_width) {
  const int m = static_cast<int>(seqs.size());
  DPGEN_CHECK(m >= 2 && m <= 3, "lcs supports 2 or 3 strings");

  Problem p;
  std::vector<std::string> vars, params;
  for (int i = 1; i <= m; ++i) {
    vars.push_back("x" + std::to_string(i));
    params.push_back("L" + std::to_string(i));
  }
  p.spec.name(cat("lcs", m)).params(params).vars(vars).array("V");
  for (int i = 1; i <= m; ++i) {
    p.spec.constraint(cat("x", i, " >= 0"));
    p.spec.constraint(cat("x", i, " <= L", i));
  }
  for (int i = 0; i < m; ++i) {
    IntVec r(static_cast<std::size_t>(m), 0);
    r[static_cast<std::size_t>(i)] = 1;
    p.spec.dep(cat("r", i + 1), r);
  }
  p.spec.dep("rall", IntVec(static_cast<std::size_t>(m), 1));
  p.spec.load_balance({vars[0]});
  p.spec.tile_widths(IntVec(static_cast<std::size_t>(m), tile_width));

  {
    std::string global;
    for (int i = 0; i < m; ++i)
      global += cat("static const char dp_seq", i, "[] = \"",
                    seqs[static_cast<std::size_t>(i)], "\";\n");
    std::string center = "double dp_best = 0.0;\n";
    for (int i = 1; i <= m; ++i)
      center += cat("if (is_valid_r", i, " && V[loc_r", i,
                    "] > dp_best) dp_best = V[loc_r", i, "];\n");
    std::string eq;
    for (int i = 1; i < m; ++i)
      eq += cat(i > 1 ? " && " : "", "dp_seq0[x1] == dp_seq", i, "[x", i + 1,
                "]");
    center += cat("if (is_valid_rall && (", eq,
                  ") && 1.0 + V[loc_rall] > dp_best) dp_best = 1.0 + "
                  "V[loc_rall];\n");
    center += "V[loc] = dp_best;\n";
    p.spec.global_code(global).center_code(center);
  }
  p.spec.validate();

  auto seqs_copy = seqs;
  p.kernel = [seqs_copy, m](const engine::Cell& c) {
    double best = 0.0;
    for (int i = 0; i < m; ++i)
      if (c.valid[i]) best = std::max(best, c.V[c.loc_dep[i]]);
    if (c.valid[m]) {
      bool eq = true;
      char c0 = seqs_copy[0][static_cast<std::size_t>(c.x[0])];
      for (int i = 1; i < m; ++i)
        eq = eq && seqs_copy[static_cast<std::size_t>(i)]
                            [static_cast<std::size_t>(c.x[i])] == c0;
      if (eq) best = std::max(best, 1.0 + c.V[c.loc_dep[m]]);
    }
    c.V[c.loc] = best;
  };

  p.objective = IntVec(static_cast<std::size_t>(m), 0);

  p.reference = [seqs_copy, m](const IntVec& lens) {
    auto strides = strides_for(lens);
    std::size_t total = 1;
    for (Int l : lens) total *= static_cast<std::size_t>(l + 1);
    std::vector<double> D(total, 0.0);
    std::vector<Int> pos(static_cast<std::size_t>(m));
    for (std::size_t flat = total; flat-- > 0;) {
      std::size_t rem = flat;
      for (int k = 0; k < m; ++k) {
        auto ks = static_cast<std::size_t>(k);
        pos[ks] = static_cast<Int>(rem / strides[ks]);
        rem %= strides[ks];
      }
      double best = 0.0;
      bool all_interior = true;
      for (int i = 0; i < m; ++i) {
        auto is = static_cast<std::size_t>(i);
        if (pos[is] < lens[is])
          best = std::max(best, D[flat + strides[is]]);
        else
          all_interior = false;
      }
      if (all_interior) {
        bool eq = true;
        char c0 = seqs_copy[0][static_cast<std::size_t>(pos[0])];
        for (int i = 1; i < m; ++i)
          eq = eq && seqs_copy[static_cast<std::size_t>(i)]
                              [static_cast<std::size_t>(pos[i])] == c0;
        if (eq) {
          std::size_t diag = flat;
          for (int i = 0; i < m; ++i) diag += strides[static_cast<std::size_t>(i)];
          best = std::max(best, 1.0 + D[diag]);
        }
      }
      D[flat] = best;
    }
    return D[0];
  };
  return p;
}

Problem edit_distance(const std::string& a, const std::string& b,
                      Int tile_width) {
  Problem p = msa({a, b}, tile_width, /*mismatch=*/1.0, /*gap=*/1.0);
  // Edit distance is exactly 2-sequence MSA with unit substitution and gap
  // costs; rebrand the spec for the quickstart example.
  p.spec.name("edit_distance");
  return p;
}

}  // namespace dpgen::problems
