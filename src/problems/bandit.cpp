// Bernoulli bandit problems (paper sections I, II, VI).

#include <algorithm>
#include <vector>

#include "problems/problems.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace dpgen::problems {

namespace {

/// Posterior success probability of an arm with s successes, f failures
/// under a uniform prior.
double posterior(Int s, Int f) {
  return static_cast<double>(s + 1) / static_cast<double>(s + f + 2);
}

}  // namespace

Problem bandit2(Int tile_width) {
  Problem p;
  p.spec.name("bandit2")
      .params({"N"})
      .vars({"s1", "f1", "s2", "f2"})
      .array("V")
      .constraint("s1 >= 0")
      .constraint("f1 >= 0")
      .constraint("s2 >= 0")
      .constraint("f2 >= 0")
      .constraint("s1 + f1 + s2 + f2 <= N")
      .dep("r1", {1, 0, 0, 0})
      .dep("r2", {0, 1, 0, 0})
      .dep("r3", {0, 0, 1, 0})
      .dep("r4", {0, 0, 0, 1})
      .load_balance({"s1", "f1"})
      .tile_widths(IntVec(4, tile_width))
      .center_code(R"(
if (is_valid_r1 && is_valid_r2 && is_valid_r3 && is_valid_r4) {
  double p1 = (double)(s1 + 1) / (double)(s1 + f1 + 2);
  double p2 = (double)(s2 + 1) / (double)(s2 + f2 + 2);
  double v1 = p1 * (1.0 + V[loc_r1]) + (1.0 - p1) * V[loc_r2];
  double v2 = p2 * (1.0 + V[loc_r3]) + (1.0 - p2) * V[loc_r4];
  V[loc] = v1 > v2 ? v1 : v2;
} else {
  V[loc] = 0.0;
}
)");
  p.spec.validate();

  p.kernel = [](const engine::Cell& c) {
    if (c.valid[0] && c.valid[1] && c.valid[2] && c.valid[3]) {
      double p1 = posterior(c.x[0], c.x[1]);
      double p2 = posterior(c.x[2], c.x[3]);
      double v1 =
          p1 * (1.0 + c.V[c.loc_dep[0]]) + (1.0 - p1) * c.V[c.loc_dep[1]];
      double v2 =
          p2 * (1.0 + c.V[c.loc_dep[2]]) + (1.0 - p2) * c.V[c.loc_dep[3]];
      c.V[c.loc] = std::max(v1, v2);
    } else {
      c.V[c.loc] = 0.0;
    }
  };

  p.objective = {0, 0, 0, 0};

  p.reference = [](const IntVec& params) {
    const Int N = params.at(0);
    const Int n1 = N + 1;
    std::vector<double> V(
        static_cast<std::size_t>(n1 * n1 * n1 * n1), 0.0);
    auto at = [&](Int s1, Int f1, Int s2, Int f2) -> double& {
      return V[static_cast<std::size_t>(((s1 * n1 + f1) * n1 + s2) * n1 +
                                        f2)];
    };
    for (Int m = N - 1; m >= 0; --m) {
      for (Int s1 = 0; s1 <= m; ++s1)
        for (Int f1 = 0; f1 <= m - s1; ++f1)
          for (Int s2 = 0; s2 <= m - s1 - f1; ++s2) {
            Int f2 = m - s1 - f1 - s2;
            double p1 = posterior(s1, f1);
            double p2 = posterior(s2, f2);
            double v1 = p1 * (1.0 + at(s1 + 1, f1, s2, f2)) +
                        (1.0 - p1) * at(s1, f1 + 1, s2, f2);
            double v2 = p2 * (1.0 + at(s1, f1, s2 + 1, f2)) +
                        (1.0 - p2) * at(s1, f1, s2, f2 + 1);
            at(s1, f1, s2, f2) = std::max(v1, v2);
          }
    }
    return at(0, 0, 0, 0);
  };
  return p;
}

Problem bandit3(Int tile_width) {
  Problem p;
  p.spec.name("bandit3")
      .params({"N"})
      .vars({"s1", "f1", "s2", "f2", "s3", "f3"})
      .array("V")
      .constraint("s1 >= 0")
      .constraint("f1 >= 0")
      .constraint("s2 >= 0")
      .constraint("f2 >= 0")
      .constraint("s3 >= 0")
      .constraint("f3 >= 0")
      .constraint("s1 + f1 + s2 + f2 + s3 + f3 <= N")
      .dep("r1", {1, 0, 0, 0, 0, 0})
      .dep("r2", {0, 1, 0, 0, 0, 0})
      .dep("r3", {0, 0, 1, 0, 0, 0})
      .dep("r4", {0, 0, 0, 1, 0, 0})
      .dep("r5", {0, 0, 0, 0, 1, 0})
      .dep("r6", {0, 0, 0, 0, 0, 1})
      .load_balance({"s1", "f1"})
      .tile_widths(IntVec(6, tile_width))
      .center_code(R"(
if (is_valid_r1 && is_valid_r2) {
  double p1 = (double)(s1 + 1) / (double)(s1 + f1 + 2);
  double p2 = (double)(s2 + 1) / (double)(s2 + f2 + 2);
  double p3 = (double)(s3 + 1) / (double)(s3 + f3 + 2);
  double v1 = p1 * (1.0 + V[loc_r1]) + (1.0 - p1) * V[loc_r2];
  double v2 = p2 * (1.0 + V[loc_r3]) + (1.0 - p2) * V[loc_r4];
  double v3 = p3 * (1.0 + V[loc_r5]) + (1.0 - p3) * V[loc_r6];
  double v = v1 > v2 ? v1 : v2;
  V[loc] = v > v3 ? v : v3;
} else {
  V[loc] = 0.0;
}
)");
  p.spec.validate();

  p.kernel = [](const engine::Cell& c) {
    // All six flags are equal (only the sum constraint can be violated).
    if (!c.valid[0]) {
      c.V[c.loc] = 0.0;
      return;
    }
    double best = 0.0;
    for (int arm = 0; arm < 3; ++arm) {
      double pa = posterior(c.x[2 * arm], c.x[2 * arm + 1]);
      double v = pa * (1.0 + c.V[c.loc_dep[2 * arm]]) +
                 (1.0 - pa) * c.V[c.loc_dep[2 * arm + 1]];
      best = std::max(best, v);
    }
    c.V[c.loc] = best;
  };

  p.objective = IntVec(6, 0);

  p.reference = [](const IntVec& params) {
    const Int N = params.at(0);
    const Int n1 = N + 1;
    std::size_t total = 1;
    for (int i = 0; i < 6; ++i) total *= static_cast<std::size_t>(n1);
    std::vector<double> V(total, 0.0);
    auto idx = [&](const Int* s) {
      std::size_t v = 0;
      for (int i = 0; i < 6; ++i)
        v = v * static_cast<std::size_t>(n1) + static_cast<std::size_t>(s[i]);
      return v;
    };
    // Iterate by decreasing total pulls m.
    for (Int m = N - 1; m >= 0; --m) {
      Int s[6];
      for (s[0] = 0; s[0] <= m; ++s[0])
        for (s[1] = 0; s[1] <= m - s[0]; ++s[1])
          for (s[2] = 0; s[2] <= m - s[0] - s[1]; ++s[2])
            for (s[3] = 0; s[3] <= m - s[0] - s[1] - s[2]; ++s[3])
              for (s[4] = 0; s[4] <= m - s[0] - s[1] - s[2] - s[3]; ++s[4]) {
                s[5] = m - s[0] - s[1] - s[2] - s[3] - s[4];
                double best = 0.0;
                for (int arm = 0; arm < 3; ++arm) {
                  double pa = posterior(s[2 * arm], s[2 * arm + 1]);
                  Int hi[6], lo[6];
                  std::copy(s, s + 6, hi);
                  std::copy(s, s + 6, lo);
                  ++hi[2 * arm];
                  ++lo[2 * arm + 1];
                  double v = pa * (1.0 + V[idx(hi)]) + (1.0 - pa) * V[idx(lo)];
                  best = std::max(best, v);
                }
                V[idx(s)] = best;
              }
    }
    Int zero[6] = {0, 0, 0, 0, 0, 0};
    return V[idx(zero)];
  };
  return p;
}

Problem bandit2_delay(Int tile_width) {
  Problem p;
  p.spec.name("bandit2_delay")
      .params({"N"})
      .vars({"u1", "s1", "f1", "u2", "s2", "f2"})
      .array("V")
      .constraint("u1 >= 0")
      .constraint("s1 >= 0")
      .constraint("f1 >= 0")
      .constraint("u2 >= 0")
      .constraint("s2 >= 0")
      .constraint("f2 >= 0")
      .constraint("s1 + f1 <= u1")
      .constraint("s2 + f2 <= u2")
      .constraint("u1 + u2 <= N")
      .dep("ru1", {1, 0, 0, 0, 0, 0})
      .dep("rs1", {0, 1, 0, 0, 0, 0})
      .dep("rf1", {0, 0, 1, 0, 0, 0})
      .dep("ru2", {0, 0, 0, 1, 0, 0})
      .dep("rs2", {0, 0, 0, 0, 1, 0})
      .dep("rf2", {0, 0, 0, 0, 0, 1})
      .load_balance({"u1", "u2"})
      .tile_widths(IntVec(6, tile_width))
      .center_code(R"(
if (is_valid_rs1) {
  double p1 = (double)(s1 + 1) / (double)(s1 + f1 + 2);
  V[loc] = p1 * (1.0 + V[loc_rs1]) + (1.0 - p1) * V[loc_rf1];
} else if (is_valid_rs2) {
  double p2 = (double)(s2 + 1) / (double)(s2 + f2 + 2);
  V[loc] = p2 * (1.0 + V[loc_rs2]) + (1.0 - p2) * V[loc_rf2];
} else if (is_valid_ru1) {
  double a = V[loc_ru1], b = V[loc_ru2];
  V[loc] = a > b ? a : b;
} else {
  V[loc] = 0.0;
}
)");
  p.spec.validate();

  // Dep order: ru1, rs1, rf1, ru2, rs2, rf2 (indices 0..5).
  p.kernel = [](const engine::Cell& c) {
    if (c.valid[1]) {  // an arm-1 result is outstanding: observe it first
      double p1 = posterior(c.x[1], c.x[2]);
      c.V[c.loc] = p1 * (1.0 + c.V[c.loc_dep[1]]) +
                   (1.0 - p1) * c.V[c.loc_dep[2]];
    } else if (c.valid[4]) {  // arm-2 result outstanding
      double p2 = posterior(c.x[4], c.x[5]);
      c.V[c.loc] = p2 * (1.0 + c.V[c.loc_dep[4]]) +
                   (1.0 - p2) * c.V[c.loc_dep[5]];
    } else if (c.valid[0]) {  // no outstanding results: choose a pull
      c.V[c.loc] = std::max(c.V[c.loc_dep[0]], c.V[c.loc_dep[3]]);
    } else {
      c.V[c.loc] = 0.0;
    }
  };

  p.objective = IntVec(6, 0);

  p.reference = [](const IntVec& params) {
    const Int N = params.at(0);
    const Int n1 = N + 1;
    std::size_t total = 1;
    for (int i = 0; i < 6; ++i) total *= static_cast<std::size_t>(n1);
    std::vector<double> V(total, 0.0);
    auto idx = [&](Int u1, Int s1, Int f1, Int u2, Int s2, Int f2) {
      std::size_t v = 0;
      for (Int c : {u1, s1, f1, u2, s2, f2})
        v = v * static_cast<std::size_t>(n1) + static_cast<std::size_t>(c);
      return v;
    };
    // Scan all dimensions descending: every dependency increases a
    // coordinate, so descending order is a valid schedule.
    for (Int u1 = N; u1 >= 0; --u1)
      for (Int s1 = u1; s1 >= 0; --s1)
        for (Int f1 = u1 - s1; f1 >= 0; --f1)
          for (Int u2 = N - u1; u2 >= 0; --u2)
            for (Int s2 = u2; s2 >= 0; --s2)
              for (Int f2 = u2 - s2; f2 >= 0; --f2) {
                double v;
                if (s1 + f1 < u1) {
                  double p1 = posterior(s1, f1);
                  v = p1 * (1.0 + V[idx(u1, s1 + 1, f1, u2, s2, f2)]) +
                      (1.0 - p1) * V[idx(u1, s1, f1 + 1, u2, s2, f2)];
                } else if (s2 + f2 < u2) {
                  double p2 = posterior(s2, f2);
                  v = p2 * (1.0 + V[idx(u1, s1, f1, u2, s2 + 1, f2)]) +
                      (1.0 - p2) * V[idx(u1, s1, f1, u2, s2, f2 + 1)];
                } else if (u1 + u2 < N) {
                  v = std::max(V[idx(u1 + 1, s1, f1, u2, s2, f2)],
                               V[idx(u1, s1, f1, u2 + 1, s2, f2)]);
                } else {
                  v = 0.0;
                }
                V[idx(u1, s1, f1, u2, s2, f2)] = v;
              }
    return V[idx(0, 0, 0, 0, 0, 0)];
  };
  return p;
}

}  // namespace dpgen::problems
