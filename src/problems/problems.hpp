#pragma once
// The paper's motivating problems (sections I, II, VI), each packaged as:
//   * a ProblemSpec (what a user would feed the generator),
//   * an engine kernel (the center-loop body as a C++ callable),
//   * an independent serial reference solver used as a correctness oracle,
//   * the objective location (usually the origin, f(0)).
//
// Problems included:
//   * bandit2        — 2-arm Bernoulli bandit (4-dimensional, Fig. 1),
//   * bandit3        — 3-arm Bernoulli bandit (6-dimensional),
//   * bandit2_delay  — 2-arm bandit with delayed responses (6-dimensional
//                      wedge: result dimensions bounded by pull dimensions),
//   * msa            — exact multiple sequence alignment of 2..4 sequences
//                      (suffix formulation, sum-of-pairs score),
//   * lcs            — longest common subsequence of 2..3 strings,
//   * edit_distance  — classic 2-string edit distance (quickstart-sized).
//
// Bandit values follow the Bayesian (uniform prior) formulation: the
// probability the next pull of arm i succeeds is (s_i+1)/(s_i+f_i+2) and a
// success contributes 1 to the objective, so V(0) is the maximal expected
// number of successes in N trials.  (The paper's Fig. 1 omits the +1 reward
// term for brevity; any fixed convention works for reproduction as the
// engine and the oracle share it.)

#include <string>

#include "engine/engine.hpp"
#include "spec/problem_spec.hpp"

namespace dpgen::problems {

/// A ready-to-run problem: spec + kernel + oracle.
struct Problem {
  spec::ProblemSpec spec;
  engine::CenterFn kernel;
  /// Where the objective value lives (global coordinates).
  IntVec objective;
  /// Independent serial solver returning the objective value for the given
  /// parameter values.  Used as the correctness oracle in tests.
  std::function<double(const IntVec& params)> reference;
};

/// 2-arm Bernoulli bandit; parameter N = number of trials.
Problem bandit2(Int tile_width = 8);

/// 3-arm Bernoulli bandit; parameter N.  Keep N modest: the oracle
/// allocates (N+1)^6 doubles.
Problem bandit3(Int tile_width = 4);

/// 2-arm bandit with delayed responses (6-dimensional): pulls u_i and
/// observed results s_i, f_i with s_i + f_i <= u_i and u_1 + u_2 <= N.
Problem bandit2_delay(Int tile_width = 4);

/// Exact MSA of 2..4 sequences, sum-of-pairs score with unit mismatch and
/// gap costs `mismatch` and `gap`.  Parameters are the sequence lengths.
Problem msa(const std::vector<std::string>& seqs, Int tile_width = 8,
            double mismatch = 1.0, double gap = 2.0);

/// LCS of 2..3 strings (maximised match count).
Problem lcs(const std::vector<std::string>& seqs, Int tile_width = 16);

/// Edit distance between two strings (insert/delete/substitute, unit cost).
Problem edit_distance(const std::string& a, const std::string& b,
                      Int tile_width = 16);

/// Smith-Waterman local alignment (maximised similarity, clamped at 0):
/// H(i,j) = max(0, s(a_i,b_j) + H(i+1,j+1), gap + H(i+1,j), gap + H(i,j+1)).
/// The answer is the maximum over ALL locations — run the engine with
/// EngineOptions::track_max (the packaged reference returns that max).
Problem smith_waterman(const std::string& a, const std::string& b,
                       double match = 2.0, double mismatch = -1.0,
                       double gap = -1.0, Int tile_width = 8);

/// Pairwise alignment with affine gap costs (Gotoh; paper section I's
/// "Gap Creation Penalty" vs "Gap Extension Penalty"), expressed as a
/// 3-dimensional problem whose third (3-wide) dimension is the classic
/// M/Ix/Iy matrix index.  Parameters are the sequence lengths.
Problem align_affine(const std::string& a, const std::string& b,
                     double mismatch = 1.0, double gap_open = 3.0,
                     double gap_extend = 1.0, Int tile_width = 8);

/// Unbounded change-making: minimal number of coins summing to the
/// parameter C, f(c) = 1 + min_j f(c - d_j) with f(0) = 0 — a 1-D problem
/// whose template vectors are the denominations themselves, so
/// dependencies span several tiles (long-range edges).  Unreachable
/// amounts get the sentinel 1e18.
Problem coin_change(IntVec denominations, Int tile_width = 8);

/// Trellis shortest path (seam carving / Viterbi shape): laterally
/// mixed-sign template vectors (1,-1),(1,0),(1,1) over a T x S field,
/// legal under strip tiling (t tile width 1).  Parameters are T and S.
Problem seam_carving(Int lateral_tile_width = 16, unsigned seed = 7);

/// Guarded weighted-sum trellis smoothing over (1,-1),(1,0),(1,1) with
/// strip tiles — the vectorization-benchmark family for the codegen pass
/// pipeline (docs/codegen.md).  Parameters are T and S.
Problem trellis(Int lateral_tile_width = 64);

/// Guarded weighted-sum accumulation over (1,0),(1,1) with genuine 2-D
/// (square) tiles — the second vectorization-benchmark family.
/// Parameters are T and S.
Problem downhill(Int tile_width_t = 8, Int tile_width_s = 64);

/// Deterministic pseudo-random DNA string (alphabet ACGT).
std::string random_dna(std::size_t length, unsigned seed);

/// Parameter values (sequence lengths) for a sequence problem.
IntVec sequence_params(const std::vector<std::string>& seqs);

}  // namespace dpgen::problems
