// Pairwise sequence alignment with affine gap costs (Gotoh), the paper's
// section-I motivation: "an initial gap cost more (Gap Creation Penalty)
// than extending an already existing gap (Gap Extension Penalty)".
//
// The classic formulation keeps three matrices (M, Ix, Iy); here the
// matrix index becomes a third, 3-wide dimension z so the problem fits the
// generator's single-state-array template class:
//
//   F(i, j, z) = min over the next operation of
//     match/mismatch(a_i, b_j)            + F(i+1, j+1, 0)
//     (z == 1 ? gap_extend : gap_open)    + F(i+1, j,   1)
//     (z == 2 ? gap_extend : gap_open)    + F(i,   j+1, 2)
//
// The target layer of each move is fixed, but the SOURCE layer varies —
// so each move contributes one template vector per source layer
// ((1,1,-z), (1,0,1-z), (0,1,2-z) for z in {0,1,2}: nine constant
// vectors), and the center code selects the right one by z.  The third
// dimension's offsets are laterally mixed, which the generalised legality
// rule accepts because every vector leads with a positive i/j component.
//
// The answer is F(0, 0, 0): aligning both full suffixes with no open gap.

#include <algorithm>
#include <vector>

#include "problems/problems.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace dpgen::problems {

namespace {

double subst(char a, char b, double mismatch) {
  return a == b ? 0.0 : mismatch;
}

}  // namespace

Problem align_affine(const std::string& a, const std::string& b,
                     double mismatch, double gap_open, double gap_extend,
                     Int tile_width) {
  DPGEN_CHECK(gap_extend <= gap_open,
              "affine gaps need gap_extend <= gap_open");
  Problem p;
  p.spec.name("align_affine")
      .params({"L1", "L2"})
      .vars({"i", "j", "z"})
      .array("V")
      .constraint("i >= 0")
      .constraint("i <= L1")
      .constraint("j >= 0")
      .constraint("j <= L2")
      .constraint("z >= 0")
      .constraint("z <= 2");
  // Dependencies: move m in {diag->0, up->1, left->2} from source layer z
  // reads layer (target - z) away.
  for (Int z = 0; z <= 2; ++z) {
    p.spec.dep(cat("diag_z", z), {1, 1, 0 - z});
    p.spec.dep(cat("up_z", z), {1, 0, 1 - z});
    p.spec.dep(cat("left_z", z), {0, 1, 2 - z});
  }
  p.spec.load_balance({"i", "j"});
  p.spec.tile_widths({tile_width, tile_width, 3});

  {
    std::string global = cat("static const char dp_seq_a[] = \"", a,
                             "\";\nstatic const char dp_seq_b[] = \"", b,
                             "\";\n");
    std::string center = cat(
        "double dp_best = 0.0; int dp_any = 0;\n"
        "const double dp_mm = ", mismatch, ", dp_go = ", gap_open,
        ", dp_ge = ", gap_extend, ";\n");
    for (Int z = 0; z <= 2; ++z) {
      center += cat(
          "if (z == ", z, ") {\n",
          "  if (is_valid_diag_z", z,
          ") { double c = (dp_seq_a[i] == dp_seq_b[j] ? 0.0 : dp_mm) + "
          "V[loc_diag_z", z,
          "]; if (!dp_any || c < dp_best) { dp_best = c; dp_any = 1; } }\n",
          "  if (is_valid_up_z", z, ") { double c = ",
          (z == 1 ? "dp_ge" : "dp_go"), " + V[loc_up_z", z,
          "]; if (!dp_any || c < dp_best) { dp_best = c; dp_any = 1; } }\n",
          "  if (is_valid_left_z", z, ") { double c = ",
          (z == 2 ? "dp_ge" : "dp_go"), " + V[loc_left_z", z,
          "]; if (!dp_any || c < dp_best) { dp_best = c; dp_any = 1; } }\n",
          "}\n");
    }
    // Base cases: both suffixes empty.  One-sided exhaustion is handled by
    // the surviving gap moves.
    center += "V[loc] = dp_any ? dp_best : 0.0;\n";
    p.spec.global_code(global).center_code(center);
  }
  p.spec.validate();

  std::string sa = a, sb = b;
  p.kernel = [sa, sb, mismatch, gap_open, gap_extend](
                 const engine::Cell& c) {
    const Int z = c.x[2];
    // Dep layout: for source layer z, indices are 3*z + {0:diag, 1:up,
    // 2:left}.
    const int base = static_cast<int>(3 * z);
    double best = 0.0;
    bool any = false;
    if (c.valid[base + 0]) {
      double v = subst(sa[static_cast<std::size_t>(c.x[0])],
                       sb[static_cast<std::size_t>(c.x[1])], mismatch) +
                 c.V[c.loc_dep[base + 0]];
      if (!any || v < best) best = v, any = true;
    }
    if (c.valid[base + 1]) {
      double v = (z == 1 ? gap_extend : gap_open) + c.V[c.loc_dep[base + 1]];
      if (!any || v < best) best = v, any = true;
    }
    if (c.valid[base + 2]) {
      double v = (z == 2 ? gap_extend : gap_open) + c.V[c.loc_dep[base + 2]];
      if (!any || v < best) best = v, any = true;
    }
    c.V[c.loc] = any ? best : 0.0;
  };

  p.objective = {0, 0, 0};

  p.reference = [sa, sb, mismatch, gap_open, gap_extend](
                    const IntVec& params) {
    const Int l1 = params.at(0), l2 = params.at(1);
    auto idx = [&](Int i, Int j) {
      return static_cast<std::size_t>(i * (l2 + 1) + j);
    };
    const double inf = 1e30;
    // Suffix-based Gotoh: layer z = previous operation type.
    std::vector<std::vector<double>> f(
        3, std::vector<double>(static_cast<std::size_t>((l1 + 1) * (l2 + 1)),
                               0.0));
    for (Int i = l1; i >= 0; --i) {
      for (Int j = l2; j >= 0; --j) {
        for (Int z = 0; z <= 2; ++z) {
          double best = inf;
          bool any = false;
          if (i < l1 && j < l2) {
            double v = subst(sa[static_cast<std::size_t>(i)],
                             sb[static_cast<std::size_t>(j)], mismatch) +
                       f[0][idx(i + 1, j + 1)];
            if (v < best) best = v;
            any = true;
          }
          if (i < l1) {
            double v =
                (z == 1 ? gap_extend : gap_open) + f[1][idx(i + 1, j)];
            if (v < best) best = v;
            any = true;
          }
          if (j < l2) {
            double v =
                (z == 2 ? gap_extend : gap_open) + f[2][idx(i, j + 1)];
            if (v < best) best = v;
            any = true;
          }
          f[static_cast<std::size_t>(z)][idx(i, j)] = any ? best : 0.0;
        }
      }
    }
    return f[0][idx(0, 0)];
  };
  return p;
}

Problem smith_waterman(const std::string& a, const std::string& b,
                       double match, double mismatch, double gap,
                       Int tile_width) {
  DPGEN_CHECK(match > 0 && mismatch <= 0 && gap <= 0,
              "smith_waterman expects match > 0 and penalties <= 0");
  Problem p;
  p.spec.name("smith_waterman")
      .params({"L1", "L2"})
      .vars({"i", "j"})
      .array("V")
      .constraint("i >= 0")
      .constraint("i <= L1")
      .constraint("j >= 0")
      .constraint("j <= L2")
      .dep("diag", {1, 1})
      .dep("del", {1, 0})
      .dep("ins", {0, 1})
      .load_balance({"i", "j"})
      .tile_widths({tile_width, tile_width})
      .global_code(cat("static const char dp_seq_a[] = \"", a,
                       "\";\nstatic const char dp_seq_b[] = \"", b, "\";\n"))
      .center_code(cat(R"(
double dp_h = 0.0;
if (is_valid_diag) {
  double c = (dp_seq_a[i] == dp_seq_b[j] ? )", match, " : ", mismatch,
                       R"() + V[loc_diag];
  if (c > dp_h) dp_h = c;
}
if (is_valid_del) { double c = )", gap, R"( + V[loc_del]; if (c > dp_h) dp_h = c; }
if (is_valid_ins) { double c = )", gap, R"( + V[loc_ins]; if (c > dp_h) dp_h = c; }
V[loc] = dp_h;
)"));
  p.spec.validate();

  std::string sa = a, sb = b;
  p.kernel = [sa, sb, match, mismatch, gap](const engine::Cell& c) {
    double h = 0.0;
    if (c.valid[0]) {
      double v = (sa[static_cast<std::size_t>(c.x[0])] ==
                          sb[static_cast<std::size_t>(c.x[1])]
                      ? match
                      : mismatch) +
                 c.V[c.loc_dep[0]];
      h = std::max(h, v);
    }
    if (c.valid[1]) h = std::max(h, gap + c.V[c.loc_dep[1]]);
    if (c.valid[2]) h = std::max(h, gap + c.V[c.loc_dep[2]]);
    c.V[c.loc] = h;
  };

  // The objective is max over all cells (use EngineOptions::track_max);
  // the origin probe is kept for API uniformity.
  p.objective = {0, 0};

  p.reference = [sa, sb, match, mismatch, gap](const IntVec& params) {
    const Int l1 = params.at(0), l2 = params.at(1);
    std::vector<double> H(static_cast<std::size_t>((l1 + 1) * (l2 + 1)),
                          0.0);
    auto idx = [&](Int i, Int j) {
      return static_cast<std::size_t>(i * (l2 + 1) + j);
    };
    double best = 0.0;
    for (Int i = l1; i >= 0; --i) {
      for (Int j = l2; j >= 0; --j) {
        double h = 0.0;
        if (i < l1 && j < l2)
          h = std::max(h, (sa[static_cast<std::size_t>(i)] ==
                                   sb[static_cast<std::size_t>(j)]
                               ? match
                               : mismatch) +
                              H[idx(i + 1, j + 1)]);
        if (i < l1) h = std::max(h, gap + H[idx(i + 1, j)]);
        if (j < l2) h = std::max(h, gap + H[idx(i, j + 1)]);
        H[idx(i, j)] = h;
        best = std::max(best, h);
      }
    }
    return best;
  };
  return p;
}

}  // namespace dpgen::problems
