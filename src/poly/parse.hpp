#pragma once
// Textual constraint parsing for the generator input format.
//
// Accepts affine comparisons over named variables, e.g.
//   "s1 + f1 + s2 + f2 <= N",  "x >= 0",  "2*i - j == k - 1",  "a < b".
// Strict comparisons are converted to their integer-equivalent non-strict
// forms (a < b  becomes  a <= b - 1).

#include <string>

#include "poly/system.hpp"

namespace dpgen::poly {

/// Parses one affine expression, e.g. "2*s1 - f1 + 3".  Throws dpgen::Error
/// with a descriptive message on malformed input or unknown variables.
LinExpr parse_expr(const std::string& text, const Vars& vars);

/// Parses one comparison into a canonical constraint (e >= 0 or e == 0).
Constraint parse_constraint(const std::string& text, const Vars& vars);

}  // namespace dpgen::poly
