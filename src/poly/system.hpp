#pragma once
// Systems of linear constraints (polyhedra) over a Vars table.
//
// A System is the central polyhedral object: the user's iteration space,
// the extended (tiled) space, the tile space, pack/unpack spaces and the
// load-balancing space are all Systems.  Constraints are stored in the
// canonical form  e >= 0  or  e == 0.

#include <optional>
#include <string>
#include <vector>

#include "poly/linexpr.hpp"

namespace dpgen::poly {

/// Relation of a constraint: expr >= 0 or expr == 0.
enum class Rel { Ge, Eq };

/// One constraint, `e rel 0`.
struct Constraint {
  LinExpr e;
  Rel rel = Rel::Ge;

  friend bool operator==(const Constraint& a, const Constraint& b) {
    return a.rel == b.rel && a.e == b.e;
  }
  std::string to_string(const Vars& vars) const;
};

/// A conjunction of linear constraints over an ordered variable table.
class System {
 public:
  System() = default;
  explicit System(Vars vars) : vars_(std::move(vars)) {}

  const Vars& vars() const { return vars_; }
  const std::vector<Constraint>& constraints() const { return cs_; }
  int size() const { return static_cast<int>(cs_.size()); }
  bool empty() const { return cs_.empty(); }

  /// Adds `e >= 0`.
  void add_ge(LinExpr e);
  /// Adds `e == 0`.
  void add_eq(LinExpr e);
  void add(Constraint c);

  /// True if the point satisfies every constraint (point.size() == nvars).
  /// Inline: tile_in_space / dependency counting run this per edge in the
  /// runtime hot path.
  bool contains(const IntVec& point) const {
    for (const auto& c : cs_) {
      Int v = c.e.eval(point);
      if (c.rel == Rel::Ge ? v < 0 : v != 0) return false;
    }
    return true;
  }

  /// gcd-reduces each constraint.  For inequalities the constant is
  /// tightened toward the feasible side (a.x + c >= 0 with gcd(a)=g becomes
  /// (a/g).x + floor(c/g) >= 0), which is exact over the integers.
  void normalize();

  /// normalize() + removal of duplicates, of constraints dominated by an
  /// identical-coefficient tighter constraint, and of trivially-true
  /// constraints.  Detects trivially-false constraints (see
  /// known_infeasible()).
  void simplify();

  /// Removes inequality constraints that are implied by the rest of the
  /// system over the integers, proven exactly by Fourier-Motzkin: c is
  /// redundant when (system \ c) AND (c violated by >= 1) is infeasible.
  /// Quadratic in the constraint count with a full elimination per test;
  /// intended for small systems (tile spaces), where it keeps the emitted
  /// membership tests and the initial-tile face bands minimal.
  void remove_redundant();

  /// True when simplify() discovered a constraint 0 >= c with c < 0 (or
  /// 0 == c, c != 0).  A false result does NOT prove feasibility.
  bool known_infeasible() const { return infeasible_; }

  /// Fourier-Motzkin elimination of one variable.  The returned system has
  /// the same variable table, with no constraint mentioning `var`.  The
  /// projection is exact over the rationals (and conservative over Z, which
  /// is what loop scanning requires).
  System eliminated(int var) const;

  /// Eliminates every variable whose index appears in `vars_to_drop`.
  System eliminated_all(const std::vector<int>& vars_to_drop) const;

  /// Substitutes a constant value for a variable: occurrences are folded
  /// into the constant term and the variable's coefficient becomes zero.
  System with_fixed(int var, Int value) const;

  std::string to_string() const;

 private:
  Vars vars_;
  std::vector<Constraint> cs_;
  bool infeasible_ = false;
};

/// Rewrites `sys` over a new variable table: each old variable i is replaced
/// by the affine expression image[i] (expressed over new_vars).
System transform(const System& sys, const Vars& new_vars,
                 const std::vector<LinExpr>& image);

/// Proves (by Fourier-Motzkin) that every point of `inner` satisfies
/// `outer`.  Both systems must share a variable table.  The test is exact
/// over the rationals and therefore conservative over the integers: a
/// `true` is a proof; a `false` may occasionally be a rational-only
/// artifact.  Intended for small systems (test assertions, round-trip
/// validation).
bool semantically_contains(const System& outer, const System& inner);

/// Both inclusions: the two systems describe the same integer set.
inline bool semantically_equal(const System& a, const System& b) {
  return semantically_contains(a, b) && semantically_contains(b, a);
}

}  // namespace dpgen::poly
