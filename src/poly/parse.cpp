#include "poly/parse.hpp"

#include <cctype>
#include <optional>

#include "support/error.hpp"
#include "support/str.hpp"

namespace dpgen::poly {

namespace {

struct Lexer {
  const std::string& s;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos])))
      ++pos;
  }
  bool done() {
    skip_ws();
    return pos >= s.size();
  }
  char peek() {
    skip_ws();
    return pos < s.size() ? s[pos] : '\0';
  }
  bool eat(char c) {
    skip_ws();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  std::optional<Int> number() {
    skip_ws();
    if (pos >= s.size() || !std::isdigit(static_cast<unsigned char>(s[pos])))
      return std::nullopt;
    Int v = 0;
    while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) {
      v = add_ck(mul_ck(v, 10), s[pos] - '0');
      ++pos;
    }
    return v;
  }
  std::optional<std::string> ident() {
    skip_ws();
    if (pos >= s.size() ||
        !(std::isalpha(static_cast<unsigned char>(s[pos])) || s[pos] == '_'))
      return std::nullopt;
    std::size_t start = pos;
    while (pos < s.size() && (std::isalnum(static_cast<unsigned char>(s[pos])) ||
                              s[pos] == '_'))
      ++pos;
    return s.substr(start, pos - start);
  }
  [[noreturn]] void fail(const std::string& why) {
    raise(cat("cannot parse '", s, "': ", why, " (at offset ", pos, ")"));
  }
};

/// term := number ['*' ident] | ident ['*' number]
LinExpr parse_term(Lexer& lx, const Vars& vars) {
  if (auto n = lx.number()) {
    if (lx.eat('*')) {
      auto id = lx.ident();
      if (!id) lx.fail("expected variable after '*'");
      int idx = vars.index_of(*id);
      if (idx < 0) lx.fail(cat("unknown variable '", *id, "'"));
      return LinExpr::term(vars.size(), idx, *n);
    }
    LinExpr e(vars.size());
    e.c = *n;
    return e;
  }
  if (auto id = lx.ident()) {
    int idx = vars.index_of(*id);
    if (idx < 0) lx.fail(cat("unknown variable '", *id, "'"));
    Int coef = 1;
    if (lx.eat('*')) {
      auto n = lx.number();
      if (!n) lx.fail("expected number after '*'");
      coef = *n;
    }
    return LinExpr::term(vars.size(), idx, coef);
  }
  lx.fail("expected a number or variable");
}

/// signed_term := ('+'|'-')* term
LinExpr parse_signed_term(Lexer& lx, const Vars& vars) {
  bool neg = false;
  while (true) {
    if (lx.eat('-'))
      neg = !neg;
    else if (!lx.eat('+'))
      break;
  }
  LinExpr t = parse_term(lx, vars);
  return neg ? -t : t;
}

/// expr := signed_term (('+'|'-') signed_term)*
LinExpr parse_sum(Lexer& lx, const Vars& vars) {
  LinExpr acc = parse_signed_term(lx, vars);
  while (true) {
    if (lx.eat('+')) {
      acc += parse_signed_term(lx, vars);
    } else if (lx.peek() == '-') {
      lx.eat('-');
      acc -= parse_signed_term(lx, vars);
    } else {
      break;
    }
  }
  return acc;
}

}  // namespace

LinExpr parse_expr(const std::string& text, const Vars& vars) {
  Lexer lx{text};
  LinExpr e = parse_sum(lx, vars);
  if (!lx.done()) lx.fail("unexpected trailing input");
  return e;
}

Constraint parse_constraint(const std::string& text, const Vars& vars) {
  Lexer lx{text};
  LinExpr lhs = parse_sum(lx, vars);

  enum class Op { Le, Ge, Lt, Gt, Eq };
  Op op;
  if (lx.eat('<')) {
    op = lx.eat('=') ? Op::Le : Op::Lt;
  } else if (lx.eat('>')) {
    op = lx.eat('=') ? Op::Ge : Op::Gt;
  } else if (lx.eat('=')) {
    lx.eat('=');  // accept both '=' and '=='
    op = Op::Eq;
  } else {
    lx.fail("expected a comparison operator (<=, >=, <, >, ==)");
  }

  LinExpr rhs = parse_sum(lx, vars);
  if (!lx.done()) lx.fail("unexpected trailing input");

  Constraint c;
  switch (op) {
    case Op::Le:  // lhs <= rhs  ->  rhs - lhs >= 0
      c = {rhs - lhs, Rel::Ge};
      break;
    case Op::Lt: {  // lhs < rhs  ->  rhs - lhs - 1 >= 0
      LinExpr e = rhs - lhs;
      e.c = sub_ck(e.c, 1);
      c = {std::move(e), Rel::Ge};
      break;
    }
    case Op::Ge:  // lhs >= rhs  ->  lhs - rhs >= 0
      c = {lhs - rhs, Rel::Ge};
      break;
    case Op::Gt: {  // lhs > rhs  ->  lhs - rhs - 1 >= 0
      LinExpr e = lhs - rhs;
      e.c = sub_ck(e.c, 1);
      c = {std::move(e), Rel::Ge};
      break;
    }
    case Op::Eq:
      c = {lhs - rhs, Rel::Eq};
      break;
  }
  return c;
}

}  // namespace dpgen::poly
