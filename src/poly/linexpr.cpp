#include "poly/linexpr.hpp"

#include "support/error.hpp"
#include "support/str.hpp"

namespace dpgen::poly {

Vars::Vars(std::vector<std::string> names) {
  for (auto& n : names) add(n);
}

int Vars::add(const std::string& name) {
  DPGEN_CHECK(is_identifier(name),
              cat("variable name '", name, "' is not a valid identifier"));
  DPGEN_CHECK(index_of(name) < 0, cat("duplicate variable name '", name, "'"));
  names_.push_back(name);
  return static_cast<int>(names_.size()) - 1;
}

int Vars::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return static_cast<int>(i);
  return -1;
}

int Vars::require(const std::string& name) const {
  int i = index_of(name);
  DPGEN_CHECK(i >= 0, cat("unknown variable '", name, "'"));
  return i;
}

const std::string& Vars::name(int i) const {
  DPGEN_ASSERT(i >= 0 && i < size());
  return names_[static_cast<std::size_t>(i)];
}

LinExpr LinExpr::term(int nvars, int idx, Int coef) {
  LinExpr e(nvars);
  DPGEN_ASSERT(idx >= 0 && idx < nvars);
  e.coeffs[static_cast<std::size_t>(idx)] = coef;
  return e;
}

LinExpr LinExpr::operator-() const {
  LinExpr r(nvars());
  for (std::size_t i = 0; i < coeffs.size(); ++i) r.coeffs[i] = neg_ck(coeffs[i]);
  r.c = neg_ck(c);
  return r;
}

LinExpr operator+(const LinExpr& a, const LinExpr& b) {
  DPGEN_ASSERT(a.coeffs.size() == b.coeffs.size());
  LinExpr r(a.nvars());
  for (std::size_t i = 0; i < a.coeffs.size(); ++i)
    r.coeffs[i] = add_ck(a.coeffs[i], b.coeffs[i]);
  r.c = add_ck(a.c, b.c);
  return r;
}

LinExpr operator-(const LinExpr& a, const LinExpr& b) { return a + (-b); }

LinExpr operator*(const LinExpr& a, Int s) {
  LinExpr r(a.nvars());
  for (std::size_t i = 0; i < a.coeffs.size(); ++i)
    r.coeffs[i] = mul_ck(a.coeffs[i], s);
  r.c = mul_ck(a.c, s);
  return r;
}

LinExpr LinExpr::remapped(const std::vector<int>& map, int new_nvars) const {
  DPGEN_CHECK(static_cast<int>(map.size()) == nvars(),
              "remapped: map arity mismatch");
  LinExpr out(new_nvars, c);
  for (int i = 0; i < nvars(); ++i) {
    Int a = coef(i);
    if (a == 0) continue;
    int j = map[static_cast<std::size_t>(i)];
    DPGEN_CHECK(j >= 0 && j < new_nvars, "remapped: target out of range");
    out.set_coef(j, add_ck(out.coef(j), a));
  }
  return out;
}

Int LinExpr::reduce_gcd() {
  Int g = 0;
  for (Int v : coeffs) g = gcd(g, v);
  g = gcd(g, c);
  if (g > 1) {
    for (auto& v : coeffs) v /= g;
    c /= g;
    return g;
  }
  return 1;
}

std::string LinExpr::to_string(const Vars& vars) const {
  DPGEN_ASSERT(static_cast<int>(coeffs.size()) == vars.size());
  std::string out;
  for (int i = 0; i < nvars(); ++i) {
    Int a = coeffs[static_cast<std::size_t>(i)];
    if (a == 0) continue;
    if (out.empty()) {
      if (a == -1)
        out += "-";
      else if (a != 1)
        out += std::to_string(a) + "*";
    } else {
      out += (a > 0) ? " + " : " - ";
      Int m = a > 0 ? a : neg_ck(a);
      if (m != 1) out += std::to_string(m) + "*";
    }
    out += vars.name(i);
  }
  if (c != 0 || out.empty()) {
    if (out.empty()) {
      out = std::to_string(c);
    } else {
      out += (c > 0) ? " + " : " - ";
      out += std::to_string(c > 0 ? c : neg_ck(c));
    }
  }
  return out;
}

}  // namespace dpgen::poly
