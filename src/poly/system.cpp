#include "poly/system.hpp"

#include <algorithm>
#include <map>

#include "poly/fm.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace dpgen::poly {

std::string Constraint::to_string(const Vars& vars) const {
  return e.to_string(vars) + (rel == Rel::Ge ? " >= 0" : " == 0");
}

void System::add_ge(LinExpr e) {
  DPGEN_ASSERT(e.nvars() == vars_.size());
  cs_.push_back({std::move(e), Rel::Ge});
}

void System::add_eq(LinExpr e) {
  DPGEN_ASSERT(e.nvars() == vars_.size());
  cs_.push_back({std::move(e), Rel::Eq});
}

void System::add(Constraint c) {
  DPGEN_ASSERT(c.e.nvars() == vars_.size());
  cs_.push_back(std::move(c));
}

void System::normalize() {
  for (auto& c : cs_) {
    Int g = 0;
    for (Int v : c.e.coeffs) g = gcd(g, v);
    if (g > 1) {
      for (auto& v : c.e.coeffs) v /= g;
      if (c.rel == Rel::Ge) {
        c.e.c = floor_div(c.e.c, g);
      } else {
        if (c.e.c % g != 0) {
          // a.x == c with g | a but g !| c has no integer solution.
          infeasible_ = true;
        }
        c.e.c = floor_div(c.e.c, g);
      }
    }
  }
}

void System::simplify() {
  normalize();
  // Keyed by (rel, coefficient row); keep the tightest constant.
  // For  a.x + c >= 0  a smaller c is tighter.
  std::map<std::pair<int, IntVec>, Int> tightest;
  std::vector<Constraint> out;
  for (auto& c : cs_) {
    if (c.e.is_constant()) {
      bool ok = (c.rel == Rel::Ge) ? (c.e.c >= 0) : (c.e.c == 0);
      if (!ok) {
        // Keep the contradiction so infeasibility survives further
        // eliminations/copies and is rediscovered by any later simplify().
        infeasible_ = true;
        out.push_back(c);
      }
      continue;  // trivially true constraints are dropped
    }
    auto key = std::make_pair(static_cast<int>(c.rel), c.e.coeffs);
    auto it = tightest.find(key);
    if (it == tightest.end()) {
      tightest.emplace(key, c.e.c);
    } else if (c.rel == Rel::Ge) {
      it->second = std::min(it->second, c.e.c);
    } else if (it->second != c.e.c) {
      infeasible_ = true;  // a.x == c1 and a.x == c2 with c1 != c2
    }
  }
  for (auto& [key, c0] : tightest) {
    Constraint c;
    c.rel = static_cast<Rel>(key.first);
    c.e.coeffs = key.second;
    c.e.c = c0;
    out.push_back(std::move(c));
  }
  // An equality a.x + c == 0 makes any inequality with coefficients ±a
  // redundant or infeasibility-revealing; keep it simple and leave those to
  // FM.  (This pass is about keeping constraint counts small, not minimal.)
  cs_ = std::move(out);
}

void System::remove_redundant() {
  simplify();
  for (std::size_t i = 0; i < cs_.size();) {
    if (cs_[i].rel != Rel::Ge) {
      ++i;
      continue;
    }
    System test(vars_);
    for (std::size_t j = 0; j < cs_.size(); ++j)
      if (j != i) test.add(cs_[j]);
    // Violation of c by at least one: -e - 1 >= 0.
    LinExpr neg = -cs_[i].e;
    neg.c = sub_ck(neg.c, 1);
    test.add_ge(std::move(neg));
    System projected = test;
    for (int v = 0; v < vars_.size(); ++v) projected = projected.eliminated(v);
    projected.simplify();
    if (projected.known_infeasible()) {
      cs_.erase(cs_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

System System::eliminated(int var) const { return fm_eliminate(*this, var); }

System System::eliminated_all(const std::vector<int>& vars_to_drop) const {
  System s = *this;
  for (int v : vars_to_drop) s = s.eliminated(v);
  return s;
}

System System::with_fixed(int var, Int value) const {
  System s(vars_);
  for (const auto& c : cs_) {
    Constraint n = c;
    Int a = n.e.coef(var);
    if (a != 0) {
      n.e.c = add_ck(n.e.c, mul_ck(a, value));
      n.e.set_coef(var, 0);
    }
    s.add(std::move(n));
  }
  return s;
}

std::string System::to_string() const {
  std::vector<std::string> lines;
  lines.reserve(cs_.size());
  for (const auto& c : cs_) lines.push_back(c.to_string(vars_));
  return join(lines, "\n");
}

System transform(const System& sys, const Vars& new_vars,
                 const std::vector<LinExpr>& image) {
  DPGEN_CHECK(static_cast<int>(image.size()) == sys.vars().size(),
              "transform: image must cover every old variable");
  System out(new_vars);
  for (const auto& c : sys.constraints()) {
    LinExpr e(new_vars.size(), c.e.c);
    for (int i = 0; i < c.e.nvars(); ++i) {
      Int a = c.e.coef(i);
      if (a != 0) e += image[static_cast<std::size_t>(i)] * a;
    }
    out.add({std::move(e), c.rel});
  }
  return out;
}

bool semantically_contains(const System& outer, const System& inner) {
  DPGEN_CHECK(outer.vars() == inner.vars(),
              "semantically_contains: variable tables differ");
  auto violable = [&](LinExpr neg) {
    // Feasible(inner AND neg >= 0)?
    System test = inner;
    test.add_ge(std::move(neg));
    for (int v = 0; v < test.vars().size(); ++v) test = test.eliminated(v);
    test.simplify();
    return !test.known_infeasible();
  };
  for (const auto& c : outer.constraints()) {
    if (c.rel == Rel::Ge) {
      // Violation: e <= -1.
      LinExpr neg = -c.e;
      neg.c = sub_ck(neg.c, 1);
      if (violable(std::move(neg))) return false;
    } else {
      LinExpr lo = c.e;  // violation: e >= 1
      lo.c = sub_ck(lo.c, 1);
      LinExpr hi = -c.e;  // violation: e <= -1
      hi.c = sub_ck(hi.c, 1);
      if (violable(std::move(lo)) || violable(std::move(hi))) return false;
    }
  }
  return true;
}

}  // namespace dpgen::poly
