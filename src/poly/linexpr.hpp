#pragma once
// Variable tables and affine (linear + constant) integer expressions.
//
// Every polyhedral object in dpgen is expressed over an ordered variable
// table (poly::Vars).  A LinExpr is a dense row of coefficients over that
// table plus a constant term; constraint systems, loop bounds and mapping
// functions are all built from LinExprs.

#include <string>
#include <vector>

#include "support/vec.hpp"

namespace dpgen::poly {

/// An ordered, uniquely-named set of variables.  The order defines the
/// coefficient layout of every LinExpr built against this table.
class Vars {
 public:
  Vars() = default;
  explicit Vars(std::vector<std::string> names);

  /// Appends a new variable; throws if the name is not a fresh identifier.
  int add(const std::string& name);

  int size() const { return static_cast<int>(names_.size()); }

  /// Index of `name`, or -1 when absent.
  int index_of(const std::string& name) const;

  /// Index of `name`; throws when absent.
  int require(const std::string& name) const;

  const std::string& name(int i) const;
  const std::vector<std::string>& names() const { return names_; }

  friend bool operator==(const Vars& a, const Vars& b) {
    return a.names_ == b.names_;
  }

 private:
  std::vector<std::string> names_;
};

/// The affine form  coeffs . x + c  over some Vars table.
struct LinExpr {
  IntVec coeffs;
  Int c = 0;

  LinExpr() = default;
  explicit LinExpr(int nvars, Int constant = 0)
      : coeffs(static_cast<std::size_t>(nvars), 0), c(constant) {}

  /// The expression consisting of `coef * x_idx`.
  static LinExpr term(int nvars, int idx, Int coef = 1);

  int nvars() const { return static_cast<int>(coeffs.size()); }

  /// True when all coefficients are zero.
  bool is_constant() const { return vec_is_zero(coeffs); }

  /// Value at an integer point (point.size() == nvars()).  Inline: this is
  /// the innermost operation of every bound/validity evaluation in the
  /// runtime hot path.
  Int eval(const IntVec& point) const {
    DPGEN_ASSERT(point.size() == coeffs.size());
    return add_ck(vec_dot(coeffs, point), c);
  }

  /// Coefficient of variable idx.
  Int coef(int idx) const { return coeffs[static_cast<std::size_t>(idx)]; }
  void set_coef(int idx, Int v) { coeffs[static_cast<std::size_t>(idx)] = v; }

  LinExpr operator-() const;
  friend LinExpr operator+(const LinExpr& a, const LinExpr& b);
  friend LinExpr operator-(const LinExpr& a, const LinExpr& b);
  /// Multiplies all coefficients and the constant by s.
  friend LinExpr operator*(const LinExpr& a, Int s);
  LinExpr& operator+=(const LinExpr& o) { return *this = *this + o; }
  LinExpr& operator-=(const LinExpr& o) { return *this = *this - o; }

  friend bool operator==(const LinExpr& a, const LinExpr& b) {
    return a.coeffs == b.coeffs && a.c == b.c;
  }

  /// Divides every coefficient and the constant by their (positive) gcd.
  /// Returns the divisor used (1 when already primitive or all-zero).
  Int reduce_gcd();

  /// Re-expresses the form over another variable table: coefficient i
  /// moves to variable `map[i]` (map.size() == nvars(), every entry in
  /// [0, new_nvars)); the constant is preserved.  Used to lift
  /// original-space expressions into the extended (params, tiles, locals)
  /// table during code generation.
  LinExpr remapped(const std::vector<int>& map, int new_nvars) const;

  /// Renders e.g. "2*s1 - f1 + 3" using names from `vars`.
  std::string to_string(const Vars& vars) const;

  /// Renders as a C expression, e.g. "2*s1 - f1 + 3"; "0" when empty.
  std::string to_cpp(const Vars& vars) const { return to_string(vars); }
};

}  // namespace dpgen::poly
