#include "poly/count.hpp"

#include "support/error.hpp"

namespace dpgen::poly {

LatticeCounter::LatticeCounter(const System& sys, std::vector<int> order)
    : order_(std::move(order)), nest_(LoopNest::build(sys, order_)) {}

Int LatticeCounter::count(const IntVec& seed) const {
  if (nest_.levels() == 0) return 1;
  IntVec point = seed;
  return count_level(point, 0);
}

Int LatticeCounter::count_in_place(IntVec& point) const {
  if (nest_.levels() == 0) return 1;
  return count_level(point, 0);
}

Int LatticeCounter::count_level(IntVec& point, int level) const {
  auto [lo, hi] = nest_.range(level, point);
  if (lo > hi) return 0;
  if (level == nest_.levels() - 1) return sub_ck(hi, lo) + 1;
  Int total = 0;
  auto v = static_cast<std::size_t>(nest_.var_at(level));
  for (Int x = lo; x <= hi; ++x) {
    point[v] = x;
    total = add_ck(total, count_level(point, level + 1));
  }
  return total;
}

}  // namespace dpgen::poly
