#pragma once
// Ehrhart (quasi-)polynomial construction — the Barvinok-library substitute.
//
// The paper's load balancer (section IV.J) uses the Barvinok library to
// obtain two Ehrhart polynomials: the total work of the problem as a
// function of the input parameters, and the work of all tiles with fixed
// load-balanced tile indices.  We do not have Barvinok, so we reconstruct
// the (quasi-)polynomials by exact rational interpolation: lattice-point
// counts are polynomial of bounded degree in each parameter on each residue
// class of a fixed period (Ehrhart's theorem), so counting at a tensor grid
// of sample points and solving the Vandermonde system over Q recovers the
// polynomial exactly.  Fits are validated on held-out samples; a failed
// validation reports "no fit" and callers fall back to exact counting.

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "support/rational.hpp"
#include "support/vec.hpp"

namespace dpgen::poly {

/// A multivariate polynomial with rational coefficients.
class Polynomial {
 public:
  explicit Polynomial(int nvars) : nvars_(nvars) {}

  int nvars() const { return nvars_; }

  /// Adds coef * prod_i x_i^exps[i]; merges with an existing term.
  void add_term(const std::vector<int>& exps, const Rat& coef);

  Rat eval(const IntVec& values) const;

  /// Total degree (max over terms of sum of exponents); -1 for the zero
  /// polynomial.
  int degree() const;

  /// Renders e.g. "(1/24)*N^4 + (5/12)*N^2" with the given variable names.
  std::string to_string(const std::vector<std::string>& names) const;

  /// Renders a C++ expression computing the (integer) value with long long
  /// arithmetic: "(<numerator poly>) / <common denominator>".  Only valid
  /// to emit for polynomials that take integer values on the intended
  /// argument set (Ehrhart polynomials do).
  std::string to_cpp(const std::vector<std::string>& names) const;

  const std::map<std::vector<int>, Rat>& terms() const { return terms_; }

 private:
  int nvars_;
  std::map<std::vector<int>, Rat> terms_;
};

/// A quasi-polynomial: one Polynomial per residue class of the arguments
/// modulo per-variable periods.
class QuasiPolynomial {
 public:
  QuasiPolynomial(std::vector<Int> periods) : periods_(std::move(periods)) {}

  const std::vector<Int>& periods() const { return periods_; }
  int nvars() const { return static_cast<int>(periods_.size()); }

  void set_class(const IntVec& residues, Polynomial poly);
  const Polynomial& class_for(const IntVec& values) const;

  Rat eval(const IntVec& values) const;

  /// Evaluates and asserts the result is an integer (counts always are).
  Int eval_int(const IntVec& values) const;

  /// All residue classes, for code emission.
  const std::map<IntVec, Polynomial>& classes() const { return classes_; }

 private:
  IntVec residues_of(const IntVec& values) const;

  std::vector<Int> periods_;
  std::map<IntVec, Polynomial> classes_;
};

/// Controls for fit_quasi_polynomial.
struct FitOptions {
  /// Per-variable degree bound of the polynomial (use the polytope
  /// dimension; Ehrhart degree never exceeds it).
  std::vector<int> degree;
  /// Per-variable periods (1 = plain polynomial).  Use lcm-of-tile-width
  /// style periods when the first fit fails validation.
  std::vector<Int> periods;
  /// Smallest argument value to sample, per variable.  Choose large enough
  /// that the counted polytope is in its "stable" shape if clipping at
  /// small sizes makes the count non-quasi-polynomial there.
  IntVec base;
  /// Extra held-out samples per variable used to validate the fit.
  int validation_samples = 2;
};

/// Fits count(.) as a quasi-polynomial.  Returns nullopt when the held-out
/// validation fails (the function is not quasi-polynomial with the given
/// degree/periods over the sampled range).
std::optional<QuasiPolynomial> fit_quasi_polynomial(
    const std::function<Int(const IntVec&)>& count, const FitOptions& opt);

/// Solves the square linear system A x = b exactly over Q by Gaussian
/// elimination with partial (nonzero) pivoting.  Throws when singular.
std::vector<Rat> solve_linear_system(std::vector<std::vector<Rat>> a,
                                     std::vector<Rat> b);

}  // namespace dpgen::poly
