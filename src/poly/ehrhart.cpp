#include "poly/ehrhart.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/str.hpp"

namespace dpgen::poly {

void Polynomial::add_term(const std::vector<int>& exps, const Rat& coef) {
  DPGEN_ASSERT(static_cast<int>(exps.size()) == nvars_);
  if (coef.is_zero()) return;
  auto [it, inserted] = terms_.emplace(exps, coef);
  if (!inserted) {
    it->second += coef;
    if (it->second.is_zero()) terms_.erase(it);
  }
}

Rat Polynomial::eval(const IntVec& values) const {
  DPGEN_ASSERT(static_cast<int>(values.size()) == nvars_);
  Rat total(0);
  for (const auto& [exps, coef] : terms_) {
    Rat term = coef;
    for (int i = 0; i < nvars_; ++i) {
      Int v = values[static_cast<std::size_t>(i)];
      for (int e = 0; e < exps[static_cast<std::size_t>(i)]; ++e)
        term *= Rat(v);
    }
    total += term;
  }
  return total;
}

int Polynomial::degree() const {
  int deg = -1;
  for (const auto& [exps, coef] : terms_) {
    int d = 0;
    for (int e : exps) d += e;
    deg = std::max(deg, d);
  }
  return deg;
}

std::string Polynomial::to_string(
    const std::vector<std::string>& names) const {
  if (terms_.empty()) return "0";
  std::vector<std::string> parts;
  for (const auto& [exps, coef] : terms_) {
    std::string t = "(" + coef.to_string() + ")";
    for (int i = 0; i < nvars_; ++i) {
      int e = exps[static_cast<std::size_t>(i)];
      if (e == 0) continue;
      t += "*" + names[static_cast<std::size_t>(i)];
      if (e > 1) t += "^" + std::to_string(e);
    }
    parts.push_back(t);
  }
  return join(parts, " + ");
}

std::string Polynomial::to_cpp(const std::vector<std::string>& names) const {
  if (terms_.empty()) return "0LL";
  // Common denominator so the emitted code stays in integer arithmetic.
  Int den = 1;
  for (const auto& [exps, coef] : terms_) den = lcm(den, coef.den());
  std::vector<std::string> parts;
  for (const auto& [exps, coef] : terms_) {
    Int num = mul_ck(coef.num(), den / coef.den());
    std::string t = std::to_string(num) + "LL";
    for (int i = 0; i < nvars_; ++i) {
      for (int e = 0; e < exps[static_cast<std::size_t>(i)]; ++e)
        t += "*" + names[static_cast<std::size_t>(i)];
    }
    parts.push_back(t);
  }
  std::string numer = "(" + join(parts, " + ") + ")";
  if (den == 1) return numer;
  return numer + " / " + std::to_string(den) + "LL";
}

void QuasiPolynomial::set_class(const IntVec& residues, Polynomial poly) {
  classes_.insert_or_assign(residues, std::move(poly));
}

IntVec QuasiPolynomial::residues_of(const IntVec& values) const {
  DPGEN_ASSERT(values.size() == periods_.size());
  IntVec r(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    Int p = periods_[i];
    r[i] = ((values[i] % p) + p) % p;
  }
  return r;
}

const Polynomial& QuasiPolynomial::class_for(const IntVec& values) const {
  auto it = classes_.find(residues_of(values));
  DPGEN_CHECK(it != classes_.end(),
              "quasi-polynomial has no fitted residue class for arguments");
  return it->second;
}

Rat QuasiPolynomial::eval(const IntVec& values) const {
  return class_for(values).eval(values);
}

Int QuasiPolynomial::eval_int(const IntVec& values) const {
  Rat v = eval(values);
  DPGEN_CHECK(v.is_integer(),
              "quasi-polynomial evaluated to a non-integer count");
  return v.as_int();
}

std::vector<Rat> solve_linear_system(std::vector<std::vector<Rat>> a,
                                     std::vector<Rat> b) {
  const std::size_t n = a.size();
  DPGEN_CHECK(b.size() == n, "solve_linear_system: size mismatch");
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    while (pivot < n && a[pivot][col].is_zero()) ++pivot;
    DPGEN_CHECK(pivot < n, "solve_linear_system: singular matrix");
    std::swap(a[pivot], a[col]);
    std::swap(b[pivot], b[col]);
    Rat inv = Rat(1) / a[col][col];
    for (std::size_t j = col; j < n; ++j) a[col][j] *= inv;
    b[col] *= inv;
    for (std::size_t row = 0; row < n; ++row) {
      if (row == col || a[row][col].is_zero()) continue;
      Rat f = a[row][col];
      for (std::size_t j = col; j < n; ++j) a[row][j] -= f * a[col][j];
      b[row] -= f * b[col];
    }
  }
  return b;
}

namespace {

/// Enumerates exponent tuples with exps[i] <= degree[i].
std::vector<std::vector<int>> exponent_tuples(const std::vector<int>& degree) {
  std::vector<std::vector<int>> out{{}};
  for (int d : degree) {
    std::vector<std::vector<int>> next;
    for (const auto& base : out)
      for (int e = 0; e <= d; ++e) {
        auto t = base;
        t.push_back(e);
        next.push_back(std::move(t));
      }
    out = std::move(next);
  }
  return out;
}

Rat monomial_value(const std::vector<int>& exps, const IntVec& values) {
  Rat v(1);
  for (std::size_t i = 0; i < exps.size(); ++i)
    for (int e = 0; e < exps[i]; ++e) v *= Rat(values[i]);
  return v;
}

}  // namespace

std::optional<QuasiPolynomial> fit_quasi_polynomial(
    const std::function<Int(const IntVec&)>& count, const FitOptions& opt) {
  const int m = static_cast<int>(opt.degree.size());
  DPGEN_CHECK(static_cast<int>(opt.periods.size()) == m &&
                  static_cast<int>(opt.base.size()) == m,
              "fit_quasi_polynomial: option vectors must have equal length");
  for (Int p : opt.periods) DPGEN_CHECK(p >= 1, "periods must be >= 1");

  const auto exps = exponent_tuples(opt.degree);
  const std::size_t nterms = exps.size();

  // Enumerate residue classes (tensor product of residues per variable).
  std::vector<IntVec> residue_classes{{}};
  for (int i = 0; i < m; ++i) {
    std::vector<IntVec> next;
    for (const auto& base : residue_classes)
      for (Int r = 0; r < opt.periods[static_cast<std::size_t>(i)]; ++r) {
        auto t = base;
        t.push_back(r);
        next.push_back(std::move(t));
      }
    residue_classes = std::move(next);
  }

  QuasiPolynomial qp(opt.periods);
  for (const auto& residues : residue_classes) {
    // Per-variable sample values in this residue class: the first value
    // >= base[i] congruent to residues[i], then strides of the period.
    auto sample_value = [&](int var, Int k) {
      auto v = static_cast<std::size_t>(var);
      Int p = opt.periods[v];
      Int first = opt.base[v] +
                  (((residues[v] - opt.base[v]) % p) + p) % p;
      return first + k * p;
    };

    // Tensor grid of (degree[i]+1) fitting samples per variable.
    std::vector<IntVec> grid{{}};
    for (int i = 0; i < m; ++i) {
      std::vector<IntVec> next;
      for (const auto& base : grid)
        for (int k = 0; k <= opt.degree[static_cast<std::size_t>(i)]; ++k) {
          auto t = base;
          t.push_back(sample_value(i, k));
          next.push_back(std::move(t));
        }
      grid = std::move(next);
    }
    DPGEN_ASSERT(grid.size() == nterms);

    std::vector<std::vector<Rat>> a(nterms, std::vector<Rat>(nterms));
    std::vector<Rat> b(nterms);
    for (std::size_t row = 0; row < nterms; ++row) {
      for (std::size_t col = 0; col < nterms; ++col)
        a[row][col] = monomial_value(exps[col], grid[row]);
      b[row] = Rat(count(grid[row]));
    }
    std::vector<Rat> coefs = solve_linear_system(std::move(a), std::move(b));

    Polynomial poly(m);
    for (std::size_t t = 0; t < nterms; ++t) poly.add_term(exps[t], coefs[t]);

    // Held-out validation: diagonal samples past the fitting grid.
    for (int v = 1; v <= opt.validation_samples; ++v) {
      IntVec probe(static_cast<std::size_t>(m));
      for (int i = 0; i < m; ++i)
        probe[static_cast<std::size_t>(i)] = sample_value(
            i, opt.degree[static_cast<std::size_t>(i)] + v);
      if (poly.eval(probe) != Rat(count(probe))) return std::nullopt;
    }
    qp.set_class(residues, std::move(poly));
  }
  return qp;
}

}  // namespace dpgen::poly
