#pragma once
// Loop-bound synthesis from a constraint system (paper sections IV.D, IV.L).
//
// Given a scan order v_0, ..., v_{m-1} of the variables to iterate (all
// other variables act as parameters whose values are fixed before scanning),
// a LoopNest holds, for every level k, the lower/upper bound expressions of
// v_k in terms of the parameters and v_0..v_{k-1}.  These are exactly the
// ub_k/lb_k functions of the paper's Figure 3, realised either at run time
// (range()) or as emitted C code (by the codegen module).

#include <utility>
#include <vector>

#include "poly/system.hpp"

namespace dpgen::poly {

/// One bound on a scan variable: `coef * v + rest >= 0` where coef != 0.
/// coef > 0 yields a lower bound  v >= ceil(-rest / coef); coef < 0 yields
/// an upper bound  v <= floor(rest / -coef).
struct Bound {
  LinExpr rest;  // never mentions v or later scan variables
  Int coef = 0;

  bool is_lower() const { return coef > 0; }

  /// Evaluates the bound at `point` (a full-width assignment in which the
  /// parameters and all earlier scan variables are set).
  Int value(const IntVec& point) const {
    Int r = rest.eval(point);
    return coef > 0 ? ceil_div(neg_ck(r), coef) : floor_div(r, neg_ck(coef));
  }
};

/// Per-level loop bounds for a fixed scan order.
class LoopNest {
 public:
  /// Builds the nest by FM-eliminating the scan variables innermost-first,
  /// reading off the bounds of v_k from the system in which v_{k+1}..v_{m-1}
  /// have been eliminated.  `dirs` (optional, +1/-1 per level) sets the
  /// scan direction of each loop: +1 iterates lo..hi, -1 iterates hi..lo
  /// (the paper's Figure 3 iterates descending when dependencies are
  /// positive).
  static LoopNest build(const System& sys, const std::vector<int>& order,
                        const std::vector<int>& dirs = {});

  /// Scan direction of a level: +1 ascending, -1 descending.
  int dir(int level) const { return dirs_[static_cast<std::size_t>(level)]; }

  int levels() const { return static_cast<int>(order_.size()); }
  int var_at(int level) const { return order_[static_cast<std::size_t>(level)]; }

  const std::vector<Bound>& lowers(int level) const {
    return lowers_[static_cast<std::size_t>(level)];
  }
  const std::vector<Bound>& uppers(int level) const {
    return uppers_[static_cast<std::size_t>(level)];
  }

  /// Computes the integer range [lo, hi] of the level-k variable given
  /// `point`, a full-width assignment with parameters and outer scan
  /// variables filled in.  The range may be empty (lo > hi).  For a system
  /// discovered infeasible at build time every range is empty.
  std::pair<Int, Int> range(int level, const IntVec& point) const;

  /// True when any level of the nest lacks a lower or an upper bound,
  /// i.e. the polytope is unbounded in the scan directions.
  bool unbounded() const { return unbounded_; }

 private:
  std::vector<int> order_;
  std::vector<int> dirs_;
  std::vector<std::vector<Bound>> lowers_;
  std::vector<std::vector<Bound>> uppers_;
  bool unbounded_ = false;
  bool infeasible_ = false;  // constant-false constraint found at build
};

namespace detail {
template <typename Fn>
void scan_level(const LoopNest& nest, IntVec& point, int level, Fn& fn) {
  if (level == nest.levels()) {
    fn(const_cast<const IntVec&>(point));
    return;
  }
  auto [lo, hi] = nest.range(level, point);
  auto v = static_cast<std::size_t>(nest.var_at(level));
  if (nest.dir(level) >= 0) {
    for (Int x = lo; x <= hi; ++x) {
      point[v] = x;
      scan_level(nest, point, level + 1, fn);
    }
  } else {
    for (Int x = hi; x >= lo; --x) {
      point[v] = x;
      scan_level(nest, point, level + 1, fn);
    }
  }
}
}  // namespace detail

/// Invokes fn(point) for every integer point of the nest's system, scanned
/// in nest order.  `seed` is a full-width assignment; parameter components
/// must be pre-set and are left untouched.
template <typename Fn>
void for_each_point(const LoopNest& nest, IntVec seed, Fn&& fn) {
  detail::scan_level(nest, seed, 0, fn);
}

/// Same scan but mutating the caller's seed in place (no copy).  The scanned
/// components of `seed` are clobbered; callers reusing a scratch vector
/// across calls avoid one allocation per scan.
template <typename Fn>
void for_each_point_inplace(const LoopNest& nest, IntVec& seed, Fn&& fn) {
  detail::scan_level(nest, seed, 0, fn);
}

}  // namespace dpgen::poly
