#include "poly/loopnest.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace dpgen::poly {

LoopNest LoopNest::build(const System& sys, const std::vector<int>& order,
                         const std::vector<int>& dirs) {
  LoopNest nest;
  nest.order_ = order;
  const int m = static_cast<int>(order.size());
  DPGEN_CHECK(dirs.empty() || dirs.size() == order.size(),
              "LoopNest: dirs must match order length");
  nest.dirs_ = dirs.empty() ? std::vector<int>(order.size(), 1) : dirs;
  nest.lowers_.resize(static_cast<std::size_t>(m));
  nest.uppers_.resize(static_cast<std::size_t>(m));

  // levels[k] = system with scan vars k+1..m-1 eliminated.
  System cur = sys;
  cur.simplify();
  if (cur.known_infeasible()) nest.infeasible_ = true;
  for (int k = m - 1; k >= 0; --k) {
    const int v = order[static_cast<std::size_t>(k)];
    auto& lo = nest.lowers_[static_cast<std::size_t>(k)];
    auto& up = nest.uppers_[static_cast<std::size_t>(k)];
    for (const auto& c : cur.constraints()) {
      Int a = c.e.coef(v);
      if (a == 0) continue;
      Bound b;
      b.coef = a;
      b.rest = c.e;
      b.rest.set_coef(v, 0);
      if (c.rel == Rel::Eq) {
        // e == 0 contributes both a lower and an upper bound.
        Bound b2;
        b2.coef = neg_ck(a);
        b2.rest = -b.rest;
        (b.coef > 0 ? lo : up).push_back(b);
        (b2.coef > 0 ? lo : up).push_back(b2);
      } else {
        (a > 0 ? lo : up).push_back(std::move(b));
      }
    }
    if (lo.empty() || up.empty()) nest.unbounded_ = true;
    if (k > 0) {
      cur = cur.eliminated(v);
      if (cur.known_infeasible()) nest.infeasible_ = true;
    }
  }
  return nest;
}

std::pair<Int, Int> LoopNest::range(int level, const IntVec& point) const {
  if (infeasible_) return {0, -1};
  const auto& lo = lowers_[static_cast<std::size_t>(level)];
  const auto& up = uppers_[static_cast<std::size_t>(level)];
  DPGEN_CHECK(!lo.empty() && !up.empty(),
              "loop nest variable is unbounded; iteration space must be a "
              "bounded polytope");
  Int l = lo.front().value(point);
  for (std::size_t i = 1; i < lo.size(); ++i)
    l = std::max(l, lo[i].value(point));
  Int u = up.front().value(point);
  for (std::size_t i = 1; i < up.size(); ++i)
    u = std::min(u, up[i].value(point));
  return {l, u};
}

}  // namespace dpgen::poly
