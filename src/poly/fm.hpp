#pragma once
// Fourier-Motzkin elimination (paper section IV.D).
//
// The generator uses FM elimination everywhere a variable must be projected
// out of a system of linear inequalities: building the tile space from the
// extended system, deriving per-level loop bounds, building the
// load-balancing space, and constructing initial-tile face systems.
//
// Naive FM can square the constraint count at every step, so duplicate and
// syntactically-dominated constraints are pruned after each elimination,
// exactly as the paper describes.

#include "poly/system.hpp"

namespace dpgen::poly {

/// Eliminates variable `var` from `sys` by Fourier-Motzkin.  Equalities
/// mentioning `var` are used as a pivot when possible (unit coefficient) and
/// otherwise expanded into two inequalities.  The result is simplified.
System fm_eliminate(const System& sys, int var);

/// Counters exposed for the FMPERF benchmark: constraints produced before
/// pruning / after pruning by the most recent fm_eliminate call in this
/// thread.
struct FmStats {
  long long produced = 0;
  long long kept = 0;
};
FmStats fm_last_stats();

}  // namespace dpgen::poly
