#pragma once
// Exact integer-point counting over a constraint system.
//
// This is the exact half of the Barvinok substitute (see DESIGN.md): the
// load balancer and the tests need "number of lattice points" both for whole
// spaces and for spaces with some variables fixed.  Counting scans the
// outer d-1 levels of a LoopNest and closes the innermost level in constant
// time, so the cost is proportional to the number of points in the
// projection onto the outer variables.

#include "poly/loopnest.hpp"

namespace dpgen::poly {

/// Counts integer points of `sys` over the scan variables in `order`, with
/// all other variables fixed to their values in `seed`.
class LatticeCounter {
 public:
  LatticeCounter(const System& sys, std::vector<int> order);

  /// Number of lattice points; `seed` must assign every non-scan variable.
  Int count(const IntVec& seed) const;

  /// Allocation-free variant for hot paths: counts directly in `point`,
  /// clobbering its scan-variable entries.  `point` must assign every
  /// non-scan variable and be sized for the full system.
  Int count_in_place(IntVec& point) const;

  const LoopNest& nest() const { return nest_; }

 private:
  Int count_level(IntVec& point, int level) const;

  std::vector<int> order_;
  LoopNest nest_;
};

}  // namespace dpgen::poly
