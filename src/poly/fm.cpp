#include "poly/fm.hpp"

#include <vector>

#include "support/error.hpp"

namespace dpgen::poly {

namespace {
thread_local FmStats g_last_stats;
}  // namespace

FmStats fm_last_stats() { return g_last_stats; }

System fm_eliminate(const System& sys, int var) {
  DPGEN_ASSERT(var >= 0 && var < sys.vars().size());

  // Pivot on an equality with coefficient +-1 on `var` when available:
  //   var = -(rest)/a  substituted into every other constraint exactly.
  for (const auto& c : sys.constraints()) {
    if (c.rel != Rel::Eq) continue;
    Int a = c.e.coef(var);
    if (a != 1 && a != -1) continue;
    // a*var + rest == 0  =>  var == -rest/a; with a==±1 this is integral.
    LinExpr rest = c.e;
    rest.set_coef(var, 0);
    // var_expr = -rest * a  (since a is ±1, 1/a == a)
    LinExpr var_expr = (-rest) * a;
    System out(sys.vars());
    for (const auto& o : sys.constraints()) {
      if (&o == &c) continue;
      Int b = o.e.coef(var);
      Constraint n = o;
      if (b != 0) {
        n.e.set_coef(var, 0);
        n.e += var_expr * b;
      }
      out.add(std::move(n));
    }
    g_last_stats = {static_cast<long long>(sys.constraints().size()),
                    static_cast<long long>(out.constraints().size())};
    out.simplify();
    return out;
  }

  // Expand remaining equalities touching `var` into two inequalities, then
  // combine every (lower, upper) pair.
  std::vector<LinExpr> lowers;  // a*var + rest >= 0 with a > 0
  std::vector<LinExpr> uppers;  // a*var + rest >= 0 with a < 0
  System out(sys.vars());
  auto classify = [&](const LinExpr& e) {
    Int a = e.coef(var);
    if (a > 0)
      lowers.push_back(e);
    else if (a < 0)
      uppers.push_back(e);
    else
      out.add_ge(e);
  };
  for (const auto& c : sys.constraints()) {
    if (c.rel == Rel::Ge) {
      if (c.e.coef(var) == 0) {
        out.add(c);
      } else {
        classify(c.e);
      }
    } else {  // equality: e == 0  ->  e >= 0 and -e >= 0
      if (c.e.coef(var) == 0) {
        out.add(c);
      } else {
        classify(c.e);
        classify(-c.e);
      }
    }
  }

  long long produced = static_cast<long long>(out.constraints().size());
  for (const auto& lo : lowers) {
    Int a = lo.coef(var);  // > 0
    for (const auto& up : uppers) {
      Int b = neg_ck(up.coef(var));  // > 0
      // a*var >= -lo_rest  and  b*var <= up_rest:
      // combine as  b*lo + a*up >= 0  (var cancels).
      LinExpr combined = lo * b + up * a;
      DPGEN_ASSERT(combined.coef(var) == 0);
      combined.reduce_gcd();
      out.add_ge(std::move(combined));
      ++produced;
    }
  }
  out.simplify();
  g_last_stats = {produced,
                  static_cast<long long>(out.constraints().size())};
  return out;
}

}  // namespace dpgen::poly
