#include "engine/serial.hpp"

#include "poly/loopnest.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace dpgen::engine {

EngineResult run_serial(const tiling::TilingModel& model,
                        const IntVec& params, const CenterFn& center) {
  const auto& spec = model.problem();
  const poly::System& space = spec.space();
  const int d = spec.dim();
  const int p = spec.nparams();
  DPGEN_CHECK(static_cast<int>(params.size()) == p,
              "run_serial: parameter count mismatch");

  // Bounding box of each loop variable: project out every other loop
  // variable, then evaluate that variable's bounds at the parameters.
  IntVec lo(static_cast<std::size_t>(d)), hi(static_cast<std::size_t>(d));
  for (int k = 0; k < d; ++k) {
    std::vector<int> others;
    for (int j = 0; j < d; ++j)
      if (j != k) others.push_back(spec.space_var(j));
    poly::System proj = space.eliminated_all(others);
    poly::LoopNest nest = poly::LoopNest::build(proj, {spec.space_var(k)});
    IntVec seed(static_cast<std::size_t>(p + d), 0);
    std::copy(params.begin(), params.end(), seed.begin());
    auto [l, h] = nest.range(0, seed);
    DPGEN_CHECK(l <= h, cat("iteration space is empty in dimension ",
                            spec.var_names()[static_cast<std::size_t>(k)]));
    lo[static_cast<std::size_t>(k)] = l;
    hi[static_cast<std::size_t>(k)] = h;
  }

  // Dense row-major array over the box.
  IntVec strides(static_cast<std::size_t>(d), 1);
  for (int k = d - 2; k >= 0; --k)
    strides[static_cast<std::size_t>(k)] =
        mul_ck(strides[static_cast<std::size_t>(k + 1)],
               hi[static_cast<std::size_t>(k + 1)] -
                   lo[static_cast<std::size_t>(k + 1)] + 1);
  Int total = mul_ck(strides[0], hi[0] - lo[0] + 1);
  std::vector<double> array(static_cast<std::size_t>(total), 0.0);

  // Scan the real space in dependency order: descending in +1 dims.
  std::vector<int> order;
  std::vector<int> dirs;
  for (int k = 0; k < d; ++k) {
    order.push_back(spec.space_var(k));
    dirs.push_back(spec.dep_signs()[static_cast<std::size_t>(k)] > 0 ? -1
                                                                     : 1);
  }
  poly::LoopNest nest = poly::LoopNest::build(space, order, dirs);

  const auto ndeps = spec.deps().size();
  std::vector<Int> loc_dep(ndeps);
  std::vector<unsigned char> valid(ndeps);
  std::vector<Int> dep_off(ndeps);
  for (std::size_t j = 0; j < ndeps; ++j)
    dep_off[j] = vec_dot(strides, spec.deps()[j].vec);

  unsigned char decision_slot = 0;
  Cell cell;
  cell.V = array.data();
  cell.loc_dep = loc_dep.data();
  cell.valid = valid.data();
  cell.params = params.data();
  cell.decision = &decision_slot;

  EngineResult result;
  IntVec x(static_cast<std::size_t>(d));
  IntVec seed(static_cast<std::size_t>(p + d), 0);
  std::copy(params.begin(), params.end(), seed.begin());
  poly::for_each_point(nest, seed, [&](const IntVec& pt) {
    Int loc = 0;
    for (int k = 0; k < d; ++k) {
      auto ks = static_cast<std::size_t>(k);
      x[ks] = pt[static_cast<std::size_t>(spec.space_var(k))];
      loc = add_ck(loc, mul_ck(strides[ks], x[ks] - lo[ks]));
    }
    cell.loc = loc;
    cell.x = x.data();
    for (std::size_t j = 0; j < ndeps; ++j) {
      loc_dep[j] = loc + dep_off[j];
      valid[j] = model.dep_valid_at(pt, static_cast<int>(j)) ? 1 : 0;
    }
    center(cell);
    result.values[x] = array[static_cast<std::size_t>(loc)];
  });
  return result;
}

}  // namespace dpgen::engine
