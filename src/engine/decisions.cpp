#include "engine/decisions.hpp"

#include "engine/interpret.hpp"
#include "support/str.hpp"

namespace dpgen::engine {

void DecisionLog::record(const IntVec& tile,
                         const std::vector<unsigned char>& cells) {
  std::vector<Run> runs;
  for (unsigned char d : cells) {
    if (!runs.empty() && runs.back().decision == d)
      ++runs.back().count;
    else
      runs.push_back({d, 1});
  }
  std::lock_guard<std::mutex> lock(mu_);
  runs_.insert_or_assign(tile, std::move(runs));
}

unsigned char DecisionLog::decision_at(const tiling::TilingModel& model,
                                       const IntVec& params,
                                       const IntVec& point) const {
  IntVec tile = detail::tile_of(model, point);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = runs_.find(tile);
  DPGEN_CHECK(it != runs_.end(),
              cat("no decisions recorded for the tile containing ",
                  vec_to_string(point)));
  // Index of the point within the tile's scan order.
  Int index = -1, i = 0;
  model.for_each_cell(params, tile,
                      [&](const IntVec&, const IntVec& global) {
                        if (global == point) index = i;
                        ++i;
                      });
  DPGEN_CHECK(index >= 0, cat("point ", vec_to_string(point),
                              " is not a cell of its tile"));
  for (const Run& r : it->second) {
    if (index < r.count) return r.decision;
    index -= r.count;
  }
  raise("decision log shorter than the tile (engine bug)");
}

long long DecisionLog::total_cells() const {
  std::lock_guard<std::mutex> lock(mu_);
  long long n = 0;
  for (const auto& [tile, runs] : runs_)
    for (const Run& r : runs) n += r.count;
  return n;
}

long long DecisionLog::total_runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  long long n = 0;
  for (const auto& [tile, runs] : runs_)
    n += static_cast<long long>(runs.size());
  return n;
}

double DecisionLog::compression_ratio() const {
  long long runs = total_runs();
  return runs == 0 ? 0.0
                   : static_cast<double>(total_cells()) /
                         static_cast<double>(runs);
}

}  // namespace dpgen::engine
