#include "engine/interpret.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace dpgen::engine::detail {

void execute_tile_interpreted(const tiling::TilingModel& model,
                              const IntVec& params, const IntVec& tile,
                              const CenterFn& center, double* buffer,
                              std::vector<unsigned char>* decisions) {
  const int d = model.dim();
  const int p = model.nparams();
  const auto& deps = model.problem().deps();
  const auto ndeps = deps.size();

  std::vector<Int> loc_dep(ndeps);
  std::vector<unsigned char> valid(ndeps);
  IntVec orig_point(static_cast<std::size_t>(p + d));
  std::copy(params.begin(), params.end(), orig_point.begin());

  unsigned char decision_slot = 0;
  Cell cell;
  cell.V = buffer;
  cell.loc_dep = loc_dep.data();
  cell.valid = valid.data();
  cell.params = params.data();
  cell.decision = &decision_slot;

  model.for_each_cell(
      params, tile, [&](const IntVec& local, const IntVec& global) {
        cell.loc = model.local_index(local);
        for (std::size_t j = 0; j < ndeps; ++j)
          loc_dep[j] = cell.loc + model.dep_loc_offset(static_cast<int>(j));
        std::copy(global.begin(), global.end(), orig_point.begin() + p);
        for (std::size_t j = 0; j < ndeps; ++j)
          valid[j] =
              model.dep_valid_at(orig_point, static_cast<int>(j)) ? 1 : 0;
        cell.x = global.data();
        decision_slot = 0;
        center(cell);
        if (decisions) decisions->push_back(decision_slot);
      });
}

void unpack_interpreted(const tiling::TilingModel& model,
                        const IntVec& params, int edge,
                        const IntVec& producer, const double* data,
                        Int count, double* buffer) {
  const auto& w = model.problem().widths();
  const IntVec& delta = model.edges()[static_cast<std::size_t>(edge)].offset;
  Int idx = 0;
  IntVec ghost(static_cast<std::size_t>(model.dim()));
  model.for_each_pack_cell(params, producer, edge, [&](const IntVec& j) {
    DPGEN_ASSERT(idx < count);
    for (std::size_t k = 0; k < ghost.size(); ++k)
      ghost[k] = j[k] + w[k] * delta[k];
    buffer[model.local_index(ghost)] = data[idx++];
  });
  DPGEN_CHECK(idx == count, "unpack: edge payload length mismatch");
}

Int pack_interpreted(const tiling::TilingModel& model, const IntVec& params,
                     int edge, const IntVec& producer, const double* buffer,
                     std::vector<double>& out) {
  out.clear();
  model.for_each_pack_cell(params, producer, edge, [&](const IntVec& j) {
    out.push_back(buffer[model.local_index(j)]);
  });
  return static_cast<Int>(out.size());
}

IntVec tile_of(const tiling::TilingModel& model, const IntVec& point) {
  const auto& w = model.problem().widths();
  IntVec t(point.size());
  for (std::size_t k = 0; k < point.size(); ++k)
    t[k] = floor_div(point[k], w[k]);
  return t;
}

}  // namespace dpgen::engine::detail
