#include "engine/interpret.hpp"

#include <algorithm>
#include <cstring>

#include "support/error.hpp"

namespace dpgen::engine::detail {

void execute_tile_interpreted(const tiling::TilingModel& model,
                              const IntVec& params, const IntVec& tile,
                              const CenterFn& center, double* buffer,
                              std::vector<unsigned char>* decisions) {
  const int d = model.dim();
  const int p = model.nparams();
  const auto& deps = model.problem().deps();
  const auto ndeps = deps.size();

  // Per-thread scratch: execute runs once per tile on the hot path and
  // must not allocate in steady state.
  thread_local std::vector<Int> loc_dep;
  thread_local std::vector<unsigned char> valid;
  thread_local IntVec orig_point;
  loc_dep.assign(ndeps, 0);
  valid.assign(ndeps, 0);
  orig_point.assign(static_cast<std::size_t>(p + d), 0);
  std::copy(params.begin(), params.end(), orig_point.begin());

  unsigned char decision_slot = 0;
  Cell cell;
  cell.V = buffer;
  cell.loc_dep = loc_dep.data();
  cell.valid = valid.data();
  cell.params = params.data();
  cell.decision = &decision_slot;

  model.for_each_cell_fast(
      params, tile, [&](const IntVec& local, const IntVec& global) {
        cell.loc = model.local_index(local);
        for (std::size_t j = 0; j < ndeps; ++j)
          loc_dep[j] = cell.loc + model.dep_loc_offset(static_cast<int>(j));
        std::copy(global.begin(), global.end(), orig_point.begin() + p);
        for (std::size_t j = 0; j < ndeps; ++j)
          valid[j] =
              model.dep_valid_at(orig_point, static_cast<int>(j)) ? 1 : 0;
        cell.x = global.data();
        decision_slot = 0;
        center(cell);
        if (decisions) decisions->push_back(decision_slot);
      });
}

void unpack_interpreted(const tiling::TilingModel& model,
                        const IntVec& params, int edge,
                        const IntVec& producer, const double* data,
                        Int count, double* buffer) {
  // The consumer-side ghost index of a pack cell is its producer-local
  // index plus a per-edge constant, so every producer run is also one
  // contiguous ghost run.
  const Int shift = model.edge_unpack_shift(edge);
  Int pos = 0;
  model.for_each_pack_run(params, producer, edge, [&](Int start, Int len) {
    DPGEN_ASSERT(pos + len <= count);
    std::memcpy(buffer + start + shift, data + pos,
                static_cast<std::size_t>(len) * sizeof(double));
    pos += len;
  });
  DPGEN_CHECK(pos == count, "unpack: edge payload length mismatch");
}

Int pack_interpreted(const tiling::TilingModel& model, const IntVec& params,
                     int edge, const IntVec& producer, const double* buffer,
                     double* out) {
  Int n = 0;
  model.for_each_pack_run(params, producer, edge, [&](Int start, Int len) {
    std::memcpy(out + n, buffer + start,
                static_cast<std::size_t>(len) * sizeof(double));
    n += len;
  });
  return n;
}

Int pack_interpreted(const tiling::TilingModel& model, const IntVec& params,
                     int edge, const IntVec& producer, const double* buffer,
                     std::vector<double>& out) {
  out.resize(static_cast<std::size_t>(
      model.edges()[static_cast<std::size_t>(edge)].capacity));
  Int n = pack_interpreted(model, params, edge, producer, buffer, out.data());
  out.resize(static_cast<std::size_t>(n));
  return n;
}

IntVec tile_of(const tiling::TilingModel& model, const IntVec& point) {
  const auto& w = model.problem().widths();
  IntVec t(point.size());
  for (std::size_t k = 0; k < point.size(); ++k)
    t[k] = floor_div(point[k], w[k]);
  return t;
}

}  // namespace dpgen::engine::detail
