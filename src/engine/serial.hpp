#pragma once
// Serial reference execution over the original (untiled) iteration space.
//
// An independent second execution path for any ProblemSpec: a dense
// bounding-box array over the original loop variables, scanned in plain
// dependency order (the paper's Fig. 1 style quadruple loop), no tiling,
// no scheduler, no communication.  Property tests run arbitrary specs
// through both this and the tiled hybrid engine and require identical
// results; it is also the natural "before" baseline when demonstrating
// the generator.

#include "engine/engine.hpp"

namespace dpgen::engine {

/// Runs the problem serially and returns the value of every location.
/// Memory is the dense bounding box of the iteration space — intended for
/// correctness work, not large problems (that is the engine's job).
EngineResult run_serial(const tiling::TilingModel& model,
                        const IntVec& params, const CenterFn& center);

}  // namespace dpgen::engine
