#include "engine/recovery.hpp"

#include "engine/interpret.hpp"
#include "support/str.hpp"

namespace dpgen::engine {

Recovery::Recovery(const tiling::TilingModel& model, const IntVec& params,
                   CenterFn center, EngineOptions options)
    : model_(model), params_(params), center_(std::move(center)) {
  options.edge_store = &store_;
  options.record_all = false;
  options.probes.clear();
  run(model_, params_, center_, options);
}

bool Recovery::contains(const IntVec& point) const {
  DPGEN_CHECK(static_cast<int>(point.size()) == model_.dim(),
              "point dimensionality mismatch");
  IntVec orig = params_;
  orig.insert(orig.end(), point.begin(), point.end());
  return model_.problem().space().contains(orig);
}

#ifndef NDEBUG
namespace {
/// Clears the reentrancy flag on every exit path out of value_at,
/// including the DPGEN_CHECK throws below.
struct ReentrancyGuard {
  explicit ReentrancyGuard(std::atomic<bool>& flag) : flag_(flag) {
    DPGEN_CHECK(!flag_.exchange(true, std::memory_order_acquire),
                "Recovery::value_at entered concurrently: it mutates the "
                "tile cache without a lock (documented not thread-safe); "
                "serialize calls or give each thread its own Recovery");
  }
  ~ReentrancyGuard() { flag_.store(false, std::memory_order_release); }
  std::atomic<bool>& flag_;
};
}  // namespace
#endif

double Recovery::value_at(const IntVec& point) {
#ifndef NDEBUG
  ReentrancyGuard reentrancy_guard(in_value_at_);
#endif
  DPGEN_CHECK(contains(point),
              cat("point ", vec_to_string(point),
                  " is outside the iteration space"));
  IntVec tile = detail::tile_of(model_, point);
  auto it = cache_.find(tile);
  if (it == cache_.end()) {
    std::vector<double> buffer(
        static_cast<std::size_t>(model_.buffer_size()), 0.0);
    auto edges = store_.by_consumer.find(tile);
    if (edges != store_.by_consumer.end()) {
      for (const auto& e : edges->second) {
        IntVec producer = vec_add(
            tile, model_.edges()[static_cast<std::size_t>(e.edge)].offset);
        detail::unpack_interpreted(model_, params_, e.edge, producer,
                                   e.payload.data(),
                                   static_cast<Int>(e.payload.size()),
                                   buffer.data());
      }
    }
    detail::execute_tile_interpreted(model_, params_, tile, center_,
                                     buffer.data());
    ++recomputed_;
    it = cache_.emplace(std::move(tile), std::move(buffer)).first;
  }
  IntVec local(point.size());
  const auto& w = model_.problem().widths();
  for (std::size_t k = 0; k < point.size(); ++k)
    local[k] = point[k] - w[k] * it->first[k];
  return it->second[static_cast<std::size_t>(model_.local_index(local))];
}

long long Recovery::edges_stored() const {
  long long n = 0;
  for (const auto& [tile, edges] : store_.by_consumer)
    n += static_cast<long long>(edges.size());
  return n;
}

}  // namespace dpgen::engine
