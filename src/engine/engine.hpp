#pragma once
// Direct (interpreted) execution of a ProblemSpec.
//
// The engine runs any problem end-to-end through the exact same machinery a
// generated program uses — TilingModel geometry, LoadBalancer ownership,
// the runtime tile scheduler and the minimpi message layer — but with the
// center loop supplied as a C++ callable instead of emitted source.  Tests,
// benchmarks and examples use it to execute problems without invoking a
// compiler; the code generator's output is validated against it.

#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "minimpi/faults.hpp"
#include "obs/analysis.hpp"
#include "obs/profile.hpp"
#include "runtime/driver.hpp"
#include "tiling/balance.hpp"
#include "tiling/model.hpp"

namespace dpgen::engine {

/// Everything a center-loop kernel may touch for the current location,
/// mirroring the symbols the paper gives generated center code (IV.B):
/// V[loc], V[loc_r1...], is_valid_r1..., the original loop variables and
/// the input parameters.
struct Cell {
  double* V = nullptr;        ///< tile buffer base ("state array")
  Int loc = 0;                ///< index of the current location
  const Int* loc_dep = nullptr;          ///< per-dependency indices (loc_rj)
  const unsigned char* valid = nullptr;  ///< per-dependency validity flags
  const Int* x = nullptr;      ///< original loop variable values (d of them)
  const Int* params = nullptr; ///< input parameter values
  /// Optional decision slot: write the chosen action here to feed a
  /// DecisionLog (always a valid pointer; ignored unless a log is
  /// attached).
  unsigned char* decision = nullptr;
};

/// The center-loop body: called once per location, in a valid order.
/// Must be thread-safe (multiple tiles execute concurrently).
using CenterFn = std::function<void(const Cell&)>;

/// Captures every packed edge delivered during a run, keyed by the
/// consuming tile — the storage the paper's solution-recovery scheme
/// (section VII.A) needs: "the edges of the tiles could be saved, and
/// needed tiles recalculated on the fly during the traceback".
struct EdgeStore {
  std::mutex mu;
  std::unordered_map<IntVec, std::vector<runtime::EdgeData<double>>,
                     IntVecHash>
      by_consumer;
};

struct EngineOptions {
  int ranks = 1;    ///< message-passing ranks (MPI processes in the paper)
  int threads = 1;  ///< worker threads per rank (OpenMP threads)
  runtime::PriorityPolicy policy = runtime::PriorityPolicy::kColumnMajor;
  tiling::BalanceMethod balance = tiling::BalanceMethod::kPerDimension;
  std::size_t mailbox_capacity = 0;  ///< 0 = unbounded receive buffers
  bool poison_buffers = false;
  double stall_timeout_seconds = 120.0;
  /// Record the value of every location (small problems / oracle tests).
  bool record_all = false;
  /// Specific locations to record (global coordinates).
  std::vector<IntVec> probes;
  /// When set, every delivered tile edge is also copied here (enables
  /// post-run solution recovery; see engine/recovery.hpp).
  EdgeStore* edge_store = nullptr;
  /// Called after each tile finishes executing (under no lock; must be
  /// thread-safe).  Used by tests to observe the actual schedule.
  std::function<void(const IntVec& tile)> on_tile_executed;
  /// When set, per-cell decisions written through Cell::decision are
  /// stored run-length encoded (paper VII.A's decision matrix).
  class DecisionLog* decision_log = nullptr;
  /// Number of ready-queue shards per rank (paper VII.C: separate shared
  /// data structures for groups of cores).  1 = one global queue.
  int queue_shards = 1;
  /// Track the maximum value over ALL locations (and its lexicographically
  /// smallest location) — the objective shape of local-alignment style
  /// DPs, where the answer is max over the whole space rather than f(0).
  bool track_max = false;
  /// When non-empty, span tracing is enabled for this run and the merged
  /// rank x thread timeline is written here as Chrome trace-event JSON
  /// (open in Perfetto / chrome://tracing; see docs/observability.md).
  std::string trace_json_path;
  /// When non-empty, the obs::MetricsRegistry is dumped here as JSON
  /// after the run.
  std::string metrics_json_path;
  /// When non-empty, the run is traced (like trace_json_path) and the
  /// attributed performance report — critical path, Ehrhart-vs-measured
  /// load-balance audit, per-peer communication matrix (obs/analysis.hpp)
  /// — is written here as JSON; the same report lands in
  /// EngineResult::report.
  std::string report_json_path;
  /// When non-empty, causal message tracing is enabled for this run: every
  /// data-plane message carries a lifecycle envelope (pack / send / admit /
  /// deliver / unpack / dispatch stamps) and the dpgen.msgtrace.v1
  /// document — per-link conservation accounting plus the queueing-delay
  /// decomposition — is written here.  "-" collects records (they feed
  /// the report's msgtrace section and the trace's flow events) without
  /// writing the document.  After a checkpoint restart the document covers
  /// the attempt that finished, matching the report.
  std::string msgtrace_json_path;
  /// When non-empty, live telemetry is enabled for this run: per-rank
  /// heartbeats, scheduler snapshots and online straggler detection are
  /// appended here as dpgen.events.v1 JSONL (see docs/observability.md).
  /// "-" enables monitoring (MonitorHub / EngineResult::stragglers)
  /// without writing an event log.
  std::string monitor_path;
  /// Sampling / straggler-detector period in seconds.
  double monitor_interval = 0.05;
  /// Deterministic fault injection: when set, the first attempt's transport
  /// is wrapped in a minimpi::FaultInjector replaying this plan (restarts
  /// run fault-free, so a killed rank cannot be killed again forever).
  /// Implies fault_tolerant.
  std::optional<minimpi::FaultPlan> fault_plan;
  /// Enable checkpoint/restart recovery: every tile completion is logged
  /// to an in-memory CheckpointStore, and a TransportFailure restarts the
  /// run over the surviving ranks — ownership re-assigned by re-running
  /// the Ehrhart LoadBalancer — instead of propagating.  Already-executed
  /// tiles are credited from the checkpoint, their outbound edges
  /// re-delivered from the edge log (see runtime/checkpoint.hpp).
  bool fault_tolerant = false;
  /// Restart attempts allowed before the failure propagates after all.
  int max_restarts = 4;
  /// Fault-tolerant runs only: a rank that makes no progress for this many
  /// seconds declares a transport failure and triggers a checkpoint
  /// restart (recovers dropped messages).  0 = never.  Keep this well
  /// under stall_timeout_seconds, which still aborts the whole run.
  double recover_stall_seconds = 0.0;
  /// When non-empty, the checkpoint store is flushed here as
  /// dpgen.checkpoint.v1 JSON (tools/checkpoint_schema.json) every
  /// checkpoint_every_tiles tile completions, at every restart, and once
  /// more after the run succeeds.
  std::string checkpoint_json_path;
  long long checkpoint_every_tiles = 64;
  /// When non-empty, seed the checkpoint store from this
  /// dpgen.checkpoint.v1 file before running — resume an earlier run of
  /// the same problem/params.
  std::string resume_checkpoint_path;
  /// When non-empty, continuous profiling is enabled for this run: every
  /// worker thread arms a sampling timer and a hardware-counter group
  /// (obs/profile.hpp) and the aggregated dpgen.profile.v1 document is
  /// written here (tools/profile_schema.json).  "-" profiles without
  /// writing a file (the document still lands in EngineResult::profile).
  std::string profile_path;
  /// Sampling frequency per worker thread, Hz (clamped to [1, 10000]).
  double profile_hz = 97.0;
  /// Force the counter groups into CLOCK_THREAD_CPUTIME mode even when
  /// perf events are available (test knob for the degradation path).
  bool profile_force_cputime = false;
  /// Label stamped into the profile document (family name for the cost
  /// table); defaults to "engine" when empty.
  std::string profile_problem;
};

struct EngineResult {
  /// Recorded values keyed by global coordinate.
  std::unordered_map<IntVec, double, IntVecHash> values;
  /// Per-rank runtime statistics.
  std::vector<runtime::RunStats> rank_stats;
  /// Filled when EngineOptions::track_max is set: the maximum value over
  /// every location and its (lex-smallest) coordinates.
  double max_value = 0.0;
  IntVec max_point;
  /// Filled when EngineOptions::report_json_path is set: the analyzed
  /// performance report for this run.
  std::optional<obs::AnalysisReport> report;
  /// Filled when EngineOptions::monitor_path is set: ranks the online
  /// detector flagged as stragglers (empty on a balanced run).
  std::vector<obs::StragglerFlag> stragglers;
  /// Fault-tolerance outcome: restart attempts actually taken, the ranks
  /// that died (in failure order), and the injector's tally when a fault
  /// plan was supplied.  All zero/empty on a clean run.
  int restarts = 0;
  std::vector<int> failed_ranks;
  minimpi::FaultStats fault_stats;
  /// Filled when EngineOptions::profile_path is set: the aggregated
  /// sampling-profile / cost-model document for this run.
  std::optional<obs::ProfileDoc> profile;

  /// Value at a recorded location; throws when it was not recorded.
  double at(const IntVec& point) const;

  /// Sums a statistic across ranks.
  long long total(long long runtime::RunStats::* field) const;
};

/// Runs the problem for the given parameter values and returns recorded
/// values plus statistics.  The model must outlive the call.
EngineResult run(const tiling::TilingModel& model, const IntVec& params,
                 const CenterFn& center, const EngineOptions& options = {});

}  // namespace dpgen::engine
