#pragma once
// Run-length-encoded decision matrices (paper section VII.A, second half):
// "If only the decisions are required then a run length encoded
// representation of the decision matrix might be acceptable."
//
// The center kernel reports one decision byte per location through
// Cell::decision; the engine collects each tile's decisions in its scan
// order and stores them run-length encoded.  Optimal policies have long
// constant runs (e.g. "pull arm 1" across large regions of the bandit
// state space), so the log stays far below one byte per location while
// still answering decision_at() for any point.

#include <mutex>
#include <unordered_map>

#include "tiling/model.hpp"

namespace dpgen::engine {

class DecisionLog {
 public:
  /// One RLE run: `count` consecutive cells (tile scan order) chose
  /// `decision`.
  struct Run {
    unsigned char decision = 0;
    Int count = 0;
  };

  /// Records one tile's decision sequence (called by the engine).
  void record(const IntVec& tile, const std::vector<unsigned char>& cells);

  /// The decision at a global point.  Replays the containing tile's scan
  /// order against the stored runs.
  unsigned char decision_at(const tiling::TilingModel& model,
                            const IntVec& params, const IntVec& point) const;

  /// Total locations covered and total runs stored.
  long long total_cells() const;
  long long total_runs() const;
  /// locations / runs: how much RLE saved over one byte per location.
  double compression_ratio() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<IntVec, std::vector<Run>, IntVecHash> runs_;
};

}  // namespace dpgen::engine
