#include "engine/engine.hpp"

#include <algorithm>
#include <mutex>
#include <optional>

#include "engine/decisions.hpp"
#include "engine/interpret.hpp"
#include "obs/export.hpp"
#include "obs/msgtrace.hpp"
#include "support/str.hpp"

namespace dpgen::engine {

namespace {

/// Shared (per-run, across ranks) state: the recorded values.
struct Recorder {
  std::mutex mu;
  std::unordered_map<IntVec, double, IntVecHash> values;
  bool record_all = false;
  std::vector<IntVec> probes;
  bool track_max = false;
  bool have_max = false;
  double max_value = 0.0;
  IntVec max_point;
};

/// ProblemHooks implementation that interprets the TilingModel.
class ModelHooks final : public runtime::ProblemHooks<double> {
 public:
  ModelHooks(const tiling::TilingModel& model, const IntVec& params,
             const tiling::LoadBalancer& balancer, const CenterFn& center,
             Recorder& recorder, EdgeStore* edge_store,
             const std::function<void(const IntVec&)>& tile_hook,
             DecisionLog* decision_log)
      : model_(model),
        params_(params),
        balancer_(balancer),
        center_(center),
        recorder_(recorder),
        edge_store_(edge_store),
        tile_hook_(tile_hook),
        decision_log_(decision_log),
        cells_fn_(model.cell_count_fn(params)) {}

  int dim() const override { return model_.dim(); }
  Int buffer_size() const override { return model_.buffer_size(); }
  int num_edges() const override { return model_.num_edges(); }
  const IntVec& edge_offset(int edge) const override {
    return model_.edges()[static_cast<std::size_t>(edge)].offset;
  }
  Int edge_capacity(int edge) const override {
    return model_.edges()[static_cast<std::size_t>(edge)].capacity;
  }
  bool tile_exists(const IntVec& tile) const override {
    return model_.tile_in_space(params_, tile);
  }
  int dep_count(const IntVec& tile) const override {
    return model_.num_deps_of(params_, tile);
  }
  Int tile_cells(const IntVec& tile) const override {
    // Per dispatched tile on the monitored hot path: use the specialised
    // product form when the local nest permits it, the generic counter
    // otherwise.
    return cells_fn_.ok() ? cells_fn_.count(tile)
                          : model_.cell_count(params_, tile);
  }
  void initial_tiles(std::vector<IntVec>& out) const override {
    model_.for_each_initial_tile(params_,
                                 [&](const IntVec& t) { out.push_back(t); });
  }
  int owner(const IntVec& tile) const override {
    return balancer_.owner(tile);
  }
  Int owned_tiles(int rank) const override {
    return balancer_.owned_tiles(rank);
  }

  void execute_tile(const IntVec& tile, double* buffer) override {
    if (decision_log_) {
      std::vector<unsigned char> decisions;
      detail::execute_tile_interpreted(model_, params_, tile, center_,
                                       buffer, &decisions);
      decision_log_->record(tile, decisions);
    } else {
      detail::execute_tile_interpreted(model_, params_, tile, center_,
                                       buffer);
    }
  }

  void on_tile_executed(const IntVec& tile, const double* buffer) override {
    if (tile_hook_) tile_hook_(tile);
    if (recorder_.track_max) {
      // Per-tile local maximum first (no lock), then one merge.
      bool have = false;
      double best = 0.0;
      IntVec best_point;
      model_.for_each_cell(
          params_, tile, [&](const IntVec& local, const IntVec& global) {
            double v = buffer[model_.local_index(local)];
            if (!have || v > best || (v == best && global < best_point)) {
              have = true;
              best = v;
              best_point = global;
            }
          });
      if (have) {
        std::lock_guard<std::mutex> lock(recorder_.mu);
        if (!recorder_.have_max || best > recorder_.max_value ||
            (best == recorder_.max_value &&
             best_point < recorder_.max_point)) {
          recorder_.have_max = true;
          recorder_.max_value = best;
          recorder_.max_point = best_point;
        }
      }
    }
    if (!recorder_.record_all && recorder_.probes.empty()) return;
    if (recorder_.record_all) {
      std::lock_guard<std::mutex> lock(recorder_.mu);
      model_.for_each_cell(params_, tile,
                           [&](const IntVec& local, const IntVec& global) {
                             recorder_.values[global] =
                                 buffer[model_.local_index(local)];
                           });
      return;
    }
    const int d = model_.dim();
    const auto& w = model_.problem().widths();
    for (const auto& probe : recorder_.probes) {
      bool inside = true;
      IntVec local(static_cast<std::size_t>(d));
      for (int k = 0; k < d && inside; ++k) {
        auto ks = static_cast<std::size_t>(k);
        if (floor_div(probe[ks], w[ks]) != tile[ks]) inside = false;
        local[ks] = probe[ks] - w[ks] * tile[ks];
      }
      if (!inside) continue;
      std::lock_guard<std::mutex> lock(recorder_.mu);
      recorder_.values[probe] = buffer[model_.local_index(local)];
    }
  }

  Int pack(int edge, const IntVec& producer, const double* buffer,
           double* out) const override {
    return detail::pack_interpreted(model_, params_, edge, producer, buffer,
                                    out);
  }

  void unpack(int edge, const IntVec& producer, const double* data, Int count,
              double* buffer) const override {
    if (edge_store_) {
      IntVec consumer = vec_sub(
          producer, model_.edges()[static_cast<std::size_t>(edge)].offset);
      runtime::EdgeData<double> copy;
      copy.edge = edge;
      copy.payload.assign(data, data + count);
      std::lock_guard<std::mutex> lock(edge_store_->mu);
      edge_store_->by_consumer[consumer].push_back(std::move(copy));
    }
    detail::unpack_interpreted(model_, params_, edge, producer, data, count,
                               buffer);
  }

 private:
  const tiling::TilingModel& model_;
  const IntVec& params_;
  const tiling::LoadBalancer& balancer_;
  const CenterFn& center_;
  Recorder& recorder_;
  EdgeStore* edge_store_;
  const std::function<void(const IntVec&)>& tile_hook_;
  DecisionLog* decision_log_;
  tiling::CellCountFn cells_fn_;
};

}  // namespace

double EngineResult::at(const IntVec& point) const {
  auto it = values.find(point);
  DPGEN_CHECK(it != values.end(),
              cat("no recorded value at ", vec_to_string(point),
                  "; add it to EngineOptions::probes or set record_all"));
  return it->second;
}

long long EngineResult::total(long long runtime::RunStats::* field) const {
  long long sum = 0;
  for (const auto& s : rank_stats) sum += s.*field;
  return sum;
}

EngineResult run(const tiling::TilingModel& model, const IntVec& params,
                 const CenterFn& center, const EngineOptions& options) {
  // A trace request switches the process-wide tracer on for this run and
  // starts it from a clean buffer, so the exported timeline covers exactly
  // this execution.  A report request implies tracing: the analyzer needs
  // the spans.
  const bool tracing =
      !options.trace_json_path.empty() || !options.report_json_path.empty();
  obs::Tracer& tracer = obs::Tracer::instance();
  const bool was_enabled = tracer.enabled();
  if (tracing) {
    tracer.clear();
    tracer.set_enabled(true);
  }
  // Message tracing is independent of span tracing (either can run alone);
  // the records feed the msgtrace document, the report's msgtrace section
  // and the exported trace's flow events.
  const bool msg_tracing = !options.msgtrace_json_path.empty();
  obs::MsgTracer& msg_tracer = obs::MsgTracer::instance();
  const bool msg_was_enabled = msg_tracer.enabled();
  if (msg_tracing) {
    msg_tracer.clear();
    msg_tracer.set_enabled(true);
  }

  Recorder recorder;
  recorder.record_all = options.record_all;
  recorder.probes = options.probes;
  recorder.track_max = options.track_max;

  // Priority dimensions: load-balanced dims first, then the rest in loop
  // order (paper Fig. 5).
  std::vector<int> dim_priority = model.lb_dims();
  for (int k = 0; k < model.dim(); ++k)
    if (std::find(dim_priority.begin(), dim_priority.end(), k) ==
        dim_priority.end())
      dim_priority.push_back(k);

  runtime::RunOptions ropt;
  ropt.threads = options.threads;
  ropt.queue_shards = options.queue_shards;
  ropt.order = runtime::TileOrder(dim_priority,
                                  model.problem().dep_signs(), options.policy);
  ropt.poison_buffers = options.poison_buffers;
  ropt.stall_timeout_seconds = options.stall_timeout_seconds;

  // Fault tolerance: tile completions feed a checkpoint store (producer-
  // side edge log; see runtime/checkpoint.hpp), and a TransportFailure —
  // injected kill, declared drop-stall, or a real worker exception —
  // restarts the run over the surviving ranks instead of propagating.
  // Because every DP here is confluent (cell values are schedule-
  // independent) and edge delivery is idempotent under the tile table's
  // duplicate guard, re-executing the non-checkpointed frontier converges
  // to byte-identical results.
  const bool fault_tolerant =
      options.fault_tolerant || options.fault_plan.has_value();
  runtime::CheckpointStore<double> store;
  if (fault_tolerant) {
    store.set_meta(model.problem().problem_name(), vec_to_string(params),
                   model.dim());
    if (!options.resume_checkpoint_path.empty())
      store.restore_from(
          runtime::load_checkpoint_json(options.resume_checkpoint_path));
    if (!options.checkpoint_json_path.empty())
      store.configure_flush(options.checkpoint_json_path,
                            options.checkpoint_every_tiles);
    ropt.recover_stall_seconds = options.recover_stall_seconds;
    // Faulty wires can duplicate; replayed restarts can re-send.  Either
    // way re-delivered edges must be dropped even after their tile went
    // ready, so arm the table guard for every attempt of this run.
    ropt.replay_guard = true;
  }

  // Continuous profiling: armed once for the whole run (restart attempts
  // accumulate into the same document — the cost model wants the total
  // work, not one attempt's slice).
  const bool profiling = !options.profile_path.empty();
  if (profiling) {
    obs::ProfileOptions popt;
    popt.hz = options.profile_hz;
    popt.force_cputime = options.profile_force_cputime;
    popt.source = "engine";
    popt.problem = options.profile_problem.empty()
                       ? model.problem().problem_name()
                       : options.profile_problem;
    popt.params = params;
    obs::Profiler::instance().start(popt);
    ropt.profile = true;
  }
  // A run that throws (non-fault-tolerant failure, restarts exhausted) must
  // not leave the process-wide profiler armed for the next run.
  struct ProfilerDisarm {
    bool armed;
    ~ProfilerDisarm() {
      if (armed && obs::Profiler::instance().active())
        (void)obs::Profiler::instance().stop();
    }
  } profiler_disarm{profiling};

  int alive = options.ranks;
  int restarts = 0;
  std::vector<int> failed_ranks;
  minimpi::FaultStats fault_stats;

  std::optional<tiling::LoadBalancer> balancer_storage;
  std::optional<obs::Monitor> monitor;
  std::optional<minimpi::World> world;
  std::vector<runtime::RunStats> rank_stats;

  for (;;) {
    // Ownership is re-planned for the surviving fleet each attempt: the
    // Ehrhart balancer runs over `alive` ranks, so a killed rank's tiles
    // are re-distributed proportionally instead of piling onto one peer.
    {
      obs::ScopedSpan span(obs::Phase::kLoadBalance);
      balancer_storage.emplace(model, params, alive, options.balance);
    }
    tiling::LoadBalancer& balancer = *balancer_storage;

    // Live telemetry: a wall-clock sampler publishes per-rank heartbeats
    // and runs the straggler detector while the ranks execute ("-" =
    // in-process monitoring only, no event log).  Restart attempts append
    // to the same event log for one continuous history.
    monitor.reset();
    ropt.monitor = nullptr;
    if (!options.monitor_path.empty()) {
      obs::MonitorOptions mopt;
      mopt.nranks = alive;
      mopt.interval_s = options.monitor_interval;
      if (options.monitor_path != "-") mopt.events_path = options.monitor_path;
      mopt.append = restarts > 0;
      for (int r = 0; r < alive; ++r)
        mopt.predicted_work.push_back(
            static_cast<double>(balancer.owned_work(r)));
      mopt.source = "engine";
      mopt.problem = model.problem().problem_name();
      monitor.emplace(std::move(mopt));
      ropt.monitor = &*monitor;
    }

    // Faults are injected only on the first attempt: the plan describes
    // one concrete failure scenario, and recovery must not re-trip it.
    auto base = std::make_shared<minimpi::InProcessTransport>(
        alive, options.mailbox_capacity);
    std::shared_ptr<minimpi::FaultInjector> injector;
    std::shared_ptr<minimpi::Transport> transport = base;
    if (options.fault_plan && restarts == 0) {
      injector =
          std::make_shared<minimpi::FaultInjector>(base, *options.fault_plan);
      transport = injector;
    }

    // Each attempt gets a fresh World (per-link sequence counters restart
    // from 0), so stale records from an aborted attempt must not pollute
    // the final attempt's conservation accounting.
    if (msg_tracing) msg_tracer.clear();

    world.emplace(alive, options.mailbox_capacity, transport);
    rank_stats.assign(static_cast<std::size_t>(alive), {});
    try {
      world->run([&](minimpi::Comm& comm) {
        ModelHooks hooks(model, params, balancer, center, recorder,
                         options.edge_store, options.on_tile_executed,
                         options.decision_log);
        rank_stats[static_cast<std::size_t>(comm.rank())] =
            runtime::run_node<double>(hooks, comm, ropt,
                                      fault_tolerant ? &store : nullptr);
      });
      if (injector) fault_stats = injector->stats();
      break;
    } catch (const minimpi::TransportFailure& e) {
      if (!fault_tolerant) throw;
      if (injector) fault_stats = injector->stats();
      const std::vector<int> dead = transport->dead_ranks();
      ++restarts;
      DPGEN_CHECK(restarts <= options.max_restarts,
                  cat("fault tolerance exhausted after ", restarts - 1,
                      " restarts: ", e.what()));
      const int next_alive =
          std::max(1, alive - static_cast<int>(dead.size()));
      if (monitor) {
        for (int r : dead) monitor->rank_failed(r, e.what());
        monitor->restart_event(restarts, next_alive);
        monitor->stop();
      }
      for (int r : dead) failed_ranks.push_back(r);
      alive = next_alive;
      // Credited tiles may now re-execute (crash-before-record frontier),
      // so the next attempt's drivers must screen deliveries against the
      // executed set — see CheckpointStore::replay_possible.
      store.enter_replay();
      store.flush();
    }
  }
  if (fault_tolerant) store.flush();

  std::vector<obs::StragglerFlag> stragglers;
  if (monitor) {
    monitor->stop();
    stragglers = monitor->stragglers();
  }

  std::optional<obs::ProfileDoc> profile;
  if (profiling) {
    profiler_disarm.armed = false;
    obs::ProfileDoc doc = obs::Profiler::instance().stop();
    doc.nranks = alive;
    if (!doc.families.empty()) {
      // The Ehrhart prediction for the fleet that finished the run: the
      // cost table's "predicted cells" column.
      double predicted = 0.0;
      for (int r = 0; r < alive; ++r)
        predicted += static_cast<double>(balancer_storage->owned_work(r));
      doc.families[0].predicted_cells = predicted;
    }
    if (options.profile_path != "-")
      obs::write_profile_json(options.profile_path, doc);
    profile = std::move(doc);
  }

  std::vector<obs::MsgRecord> msg_records;
  std::uint64_t msg_dropped = 0;
  if (msg_tracing) {
    // run_node gathered every rank's records to rank 0 (the shared
    // in-process tracer), mirroring the span gather.
    msg_records = msg_tracer.merged();
    msg_dropped = msg_tracer.dropped();
    if (options.msgtrace_json_path != "-") {
      obs::MsgTraceInput min;
      min.records = msg_records;
      min.nranks = alive;
      min.sent_matrix = world->sent_matrix();
      min.records_dropped = msg_dropped;
      min.expected_drops = fault_stats.messages_dropped;
      min.expected_dups = fault_stats.messages_duplicated;
      for (const auto& s : rank_stats)
        min.table_duplicates += s.table.duplicate_edges;
      min.source = "engine";
      min.problem = model.problem().problem_name();
      min.params = params;
      obs::write_msgtrace_json(options.msgtrace_json_path, min);
    }
    msg_tracer.set_enabled(msg_was_enabled);
  }

  std::optional<obs::AnalysisReport> report;
  if (tracing) {
    // run_node gathered every rank's spans to rank 0, which (in this
    // in-process world) merged them into the shared tracer; the setup
    // spans recorded before the world started ride along under rank -1.
    std::vector<obs::Span> spans = tracer.merged();
    for (const obs::Span& s : tracer.collect_rank(-1)) spans.push_back(s);
    const std::uint64_t dropped = tracer.dropped();
    if (!options.trace_json_path.empty())
      obs::write_chrome_trace(options.trace_json_path, spans, dropped,
                              msg_records);
    if (!options.report_json_path.empty()) {
      // The report covers the attempt that finished: the last balancer,
      // world and rank count (smaller than options.ranks after a kill).
      obs::AnalysisInput in;
      in.spans = std::move(spans);
      in.nranks = alive;
      for (const auto& e : model.edges()) in.edge_offsets.push_back(e.offset);
      for (int r = 0; r < alive; ++r)
        in.predicted_work.push_back(
            static_cast<double>(balancer_storage->owned_work(r)));
      in.bytes_matrix = world->bytes_matrix();
      in.messages_matrix = world->messages_matrix();
      in.spans_dropped = dropped;
      in.source = "engine";
      in.problem = model.problem().problem_name();
      in.params = params;
      in.msg_records = msg_records;
      in.msg_records_dropped = msg_dropped;
      report = obs::analyze(in);
      obs::write_report_json(options.report_json_path, *report);
    }
    tracer.set_enabled(was_enabled);
  }
  if (!options.metrics_json_path.empty())
    obs::write_metrics_json(options.metrics_json_path,
                            obs::MetricsRegistry::instance());

  EngineResult result;
  result.report = std::move(report);
  result.values = std::move(recorder.values);
  result.rank_stats = std::move(rank_stats);
  result.max_value = recorder.max_value;
  result.max_point = std::move(recorder.max_point);
  result.stragglers = std::move(stragglers);
  result.restarts = restarts;
  result.failed_ranks = std::move(failed_ranks);
  result.fault_stats = fault_stats;
  result.profile = std::move(profile);
  return result;
}

}  // namespace dpgen::engine
