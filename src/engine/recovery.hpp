#pragma once
// Solution recovery / traceback (paper section VII.A).
//
// The generated programs and the engine normally discard the iteration
// space as they go (only tile edges live long enough to satisfy
// dependencies), so only probed values survive a run.  For tracebacks —
// reconstructing an optimal alignment, extracting a bandit allocation
// policy — the paper proposes: "the edges of the tiles could be saved, and
// needed tiles recalculated on the fly during the traceback".
//
// Recovery implements exactly that: it runs the problem once with an
// EdgeStore attached (memory O(n^(d-1)), the packed edges), then serves
// value_at(point) queries by recomputing the containing tile from its
// saved edges and caching the rebuilt buffer.  A traceback that walks from
// the objective to the base cases touches a chain of neighbouring tiles,
// so each tile is recomputed at most once.

#include <atomic>

#include "engine/engine.hpp"

namespace dpgen::engine {

class Recovery {
 public:
  /// Runs the problem (options' probe/record fields are ignored; ranks,
  /// threads, policy etc. apply), saving every tile edge.
  Recovery(const tiling::TilingModel& model, const IntVec& params,
           CenterFn center, EngineOptions options = {});

  /// Value of any location in the iteration space.  Recomputes (and
  /// caches) the containing tile on first touch.  Not thread-safe: the
  /// tile cache is unlocked, so concurrent calls would corrupt it
  /// silently.  Debug builds trip a reentrancy guard (throws) instead.
  double value_at(const IntVec& point);

  /// True when the point lies inside the iteration space.
  bool contains(const IntVec& point) const;

  /// Number of tiles recomputed so far (diagnostics).
  long long tiles_recomputed() const { return recomputed_; }
  /// Number of packed edges retained from the run.
  long long edges_stored() const;

 private:
  const tiling::TilingModel& model_;
  IntVec params_;
  CenterFn center_;
  EdgeStore store_;
  std::unordered_map<IntVec, std::vector<double>, IntVecHash> cache_;
  long long recomputed_ = 0;
#ifndef NDEBUG
  std::atomic<bool> in_value_at_{false};  ///< reentrancy tripwire, see .cpp
#endif
};

}  // namespace dpgen::engine
