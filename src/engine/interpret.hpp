#pragma once
// Interpreted per-tile operations shared by the engine hooks and the
// solution-recovery machinery: executing one tile's loop nest with a
// CenterFn, and unpacking a stored edge into a tile buffer.

#include "engine/engine.hpp"

namespace dpgen::engine::detail {

/// Runs the tile's local loop nest over `buffer`, invoking `center` per
/// cell with mapping functions and validity flags set up (the interpreted
/// equivalent of the generated Fig. 3 loop nest).  When `decisions` is
/// non-null, the per-cell Cell::decision bytes are appended in scan order.
void execute_tile_interpreted(const tiling::TilingModel& model,
                              const IntVec& params, const IntVec& tile,
                              const CenterFn& center, double* buffer,
                              std::vector<unsigned char>* decisions = nullptr);

/// Writes a packed edge (producer-side canonical order) into the consumer
/// tile buffer's ghost cells, one memcpy per contiguous run.
void unpack_interpreted(const tiling::TilingModel& model,
                        const IntVec& params, int edge,
                        const IntVec& producer, const double* data,
                        Int count, double* buffer);

/// Packs the producer-side cells of `edge` from `buffer` into `out` (room
/// for at least model.edges()[edge].capacity scalars), one memcpy per
/// contiguous run; returns the number of scalars packed.
Int pack_interpreted(const tiling::TilingModel& model, const IntVec& params,
                     int edge, const IntVec& producer, const double* buffer,
                     double* out);

/// Convenience overload packing into a vector (sized to capacity, then
/// trimmed); used by recovery and tests.
Int pack_interpreted(const tiling::TilingModel& model, const IntVec& params,
                     int edge, const IntVec& producer, const double* buffer,
                     std::vector<double>& out);

/// The tile containing a global point: t_k = floor(x_k / w_k).
IntVec tile_of(const tiling::TilingModel& model, const IntVec& point);

}  // namespace dpgen::engine::detail
