#pragma once
// The user-facing problem description (paper section IV.A / IV.B).
//
// A ProblemSpec captures everything the generator needs about a dynamic
// programming problem:
//   * input parameter names (e.g. N),
//   * loop variable names in loop order (x_1..x_d),
//   * the state array name and scalar type,
//   * a system of linear inequalities over (params, loop vars) describing
//     the iteration space,
//   * named template dependency vectors r_1..r_k (f(x) uses f(x + r_i)),
//   * load-balancing dimensions lb_1..lb_j (a priority-ordered subset of
//     the loop variables),
//   * per-dimension tile widths w_k,
//   * C/C++ code fragments: global definitions, initialization code and
//     the center-loop body.
//
// Specs are built either programmatically (builder methods below) or from
// the text input format (spec/parser.hpp).  validate() enforces the class
// of problems the generator supports — in particular that every dependency
// dimension has a consistent sign, which is the rectangular-tiling legality
// condition the paper assumes ("the template vectors of the dependencies
// are all assumed to be positive; if not ... loops iterate the other way").

#include <string>
#include <vector>

#include "poly/system.hpp"

namespace dpgen::spec {

/// One template dependency: f(x) reads f(x + vec).
struct TemplateDep {
  std::string name;  // e.g. "r1"; exposed to user code as loc_r1/is_valid_r1
  IntVec vec;        // length d
};

/// User-supplied code fragments, inserted verbatim into generated programs
/// (and, for the center loop, compiled into an engine kernel for direct
/// execution).
struct CodeFragments {
  std::string global;  // file-scope definitions
  std::string init;    // run once after MPI initialization
  std::string center;  // the center-loop body
};

/// The complete description of one dynamic programming problem.
class ProblemSpec {
 public:
  // ---- builder interface -------------------------------------------------
  ProblemSpec& name(std::string v);
  ProblemSpec& params(std::vector<std::string> names);
  /// Loop variables in loop (scan) order, outermost first.
  ProblemSpec& vars(std::vector<std::string> names);
  ProblemSpec& array(std::string name, std::string scalar_type = "double");
  /// Parses and adds one constraint, e.g. "s1 + f1 <= N".  Must be called
  /// after params() and vars().
  ProblemSpec& constraint(const std::string& text);
  ProblemSpec& dep(std::string name, IntVec vec);
  ProblemSpec& load_balance(std::vector<std::string> dims);
  ProblemSpec& tile_widths(IntVec widths);
  ProblemSpec& global_code(std::string code);
  ProblemSpec& init_code(std::string code);
  ProblemSpec& center_code(std::string code);

  // ---- accessors ---------------------------------------------------------
  const std::string& problem_name() const { return name_; }
  const std::vector<std::string>& param_names() const { return params_; }
  const std::vector<std::string>& var_names() const { return vars_; }
  const std::string& array_name() const { return array_; }
  const std::string& scalar_type() const { return scalar_; }
  const std::vector<TemplateDep>& deps() const { return deps_; }
  const std::vector<std::string>& load_balance_dims() const { return lb_; }
  const IntVec& widths() const { return widths_; }
  const CodeFragments& code() const { return code_; }

  /// Number of loop dimensions d.
  int dim() const { return static_cast<int>(vars_.size()); }
  int nparams() const { return static_cast<int>(params_.size()); }

  /// The iteration-space system over Vars(params ++ loop vars): parameter i
  /// has index i, loop variable k has index nparams() + k.
  const poly::System& space() const { return space_; }

  /// Index of loop variable k within space().vars().
  int space_var(int k) const { return nparams() + k; }

  /// Per-dimension dependency sign: +1 (all dep components >= 0, some > 0),
  /// -1 (all <= 0, some < 0) or 0 (all zero).  Only valid after validate().
  const std::vector<int>& dep_signs() const { return dep_signs_; }

  /// Checks the spec describes a problem the generator supports; throws
  /// dpgen::Error with a precise message otherwise.  Fills dep_signs().
  void validate();

  /// Serialises the spec in the text input format; parse_spec(to_text())
  /// round-trips.  Throws when a code fragment contains the block
  /// terminator "}}}" on a line of its own.
  std::string to_text() const;

 private:
  void ensure_space_vars();

  std::string name_ = "problem";
  std::vector<std::string> params_;
  std::vector<std::string> vars_;
  std::string array_ = "V";
  std::string scalar_ = "double";
  poly::System space_;
  bool space_built_ = false;
  std::vector<TemplateDep> deps_;
  std::vector<std::string> lb_;
  IntVec widths_;
  CodeFragments code_;
  std::vector<int> dep_signs_;
};

}  // namespace dpgen::spec
