#include "spec/parser.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/str.hpp"

namespace dpgen::spec {

namespace {

struct Lines {
  std::vector<std::string> raw;
  std::size_t next = 0;

  bool done() const { return next >= raw.size(); }
  int lineno() const { return static_cast<int>(next); }  // 1-based after get
  std::string get() { return raw[next++]; }
  [[noreturn]] void fail(int line, const std::string& why) {
    raise(cat("spec parse error at line ", line, ": ", why));
  }
};

/// Parses "(1, 0, -2)" into an IntVec.
IntVec parse_vector(Lines& lines, int line, const std::string& text) {
  std::string t = trim(text);
  if (t.empty() || t.front() != '(' || t.back() != ')')
    lines.fail(line, cat("expected a vector like (1, 0), got '", text, "'"));
  IntVec out;
  for (const auto& tok : split(t.substr(1, t.size() - 2), ", \t")) {
    try {
      std::size_t used = 0;
      out.push_back(std::stoll(tok, &used));
      if (used != tok.size()) throw std::invalid_argument(tok);
    } catch (const std::exception&) {
      lines.fail(line, cat("bad vector component '", tok, "'"));
    }
  }
  if (out.empty()) lines.fail(line, "empty vector");
  return out;
}

/// Collects a verbatim {{{ ... }}} block.  The opening token has already
/// been seen at the end of `first`.
std::string parse_block(Lines& lines, int open_line) {
  std::string body;
  while (!lines.done()) {
    std::string l = lines.get();
    if (trim(l) == "}}}") return body;
    body += l;
    body += '\n';
  }
  lines.fail(open_line, "unterminated {{{ block");
}

}  // namespace

ProblemSpec parse_spec(const std::string& text) {
  Lines lines;
  {
    std::istringstream in(text);
    std::string l;
    while (std::getline(in, l)) lines.raw.push_back(l);
  }

  ProblemSpec spec;
  bool saw_params = false, saw_vars = false;
  // Constraint texts are collected and applied after params/vars are known,
  // so section order in the file is flexible.
  std::vector<std::pair<int, std::string>> constraint_lines;

  while (!lines.done()) {
    int line = lines.lineno() + 1;
    std::string l = trim(lines.get());
    if (l.empty() || l[0] == '#') continue;

    auto words = split(l, " \t");
    const std::string& key = words[0];

    auto rest_after = [&](const std::string& kw) {
      return trim(l.substr(kw.size()));
    };

    if (key == "problem") {
      if (words.size() != 2) lines.fail(line, "usage: problem <name>");
      spec.name(words[1]);
    } else if (key == "params") {
      spec.params({words.begin() + 1, words.end()});
      saw_params = true;
    } else if (key == "vars") {
      if (words.size() < 2) lines.fail(line, "usage: vars <x1> [x2 ...]");
      spec.vars({words.begin() + 1, words.end()});
      saw_vars = true;
    } else if (key == "array") {
      if (words.size() == 2)
        spec.array(words[1]);
      else if (words.size() == 3)
        spec.array(words[1], words[2]);
      else
        lines.fail(line, "usage: array <name> [scalar_type]");
    } else if (key == "constraints") {
      if (trim(rest_after("constraints")) != "{")
        lines.fail(line, "usage: constraints {");
      bool closed = false;
      while (!lines.done()) {
        int cline = lines.lineno() + 1;
        std::string cl = trim(lines.get());
        if (cl == "}") {
          closed = true;
          break;
        }
        if (cl.empty() || cl[0] == '#') continue;
        constraint_lines.emplace_back(cline, cl);
      }
      if (!closed) lines.fail(line, "unterminated constraints block");
    } else if (key == "dep") {
      // dep r1 = (1, 0, 0, 0)
      auto eq = l.find('=');
      if (words.size() < 2 || eq == std::string::npos)
        lines.fail(line, "usage: dep <name> = (c1, c2, ...)");
      spec.dep(words[1], parse_vector(lines, line, l.substr(eq + 1)));
    } else if (key == "loadbalance") {
      spec.load_balance({words.begin() + 1, words.end()});
    } else if (key == "tilewidths") {
      IntVec w;
      for (std::size_t i = 1; i < words.size(); ++i) {
        try {
          w.push_back(std::stoll(words[i]));
        } catch (const std::exception&) {
          lines.fail(line, cat("bad tile width '", words[i], "'"));
        }
      }
      spec.tile_widths(std::move(w));
    } else if (key == "global" || key == "init" || key == "center") {
      if (trim(rest_after(key)) != "{{{")
        lines.fail(line, cat("usage: ", key, " {{{"));
      std::string body = parse_block(lines, line);
      if (key == "global")
        spec.global_code(body);
      else if (key == "init")
        spec.init_code(body);
      else
        spec.center_code(body);
    } else {
      lines.fail(line, cat("unknown directive '", key, "'"));
    }
  }

  if (!saw_vars) raise("spec parse error: missing 'vars' directive");
  (void)saw_params;  // params are optional (fixed-size problems)

  for (const auto& [cline, ctext] : constraint_lines) {
    try {
      spec.constraint(ctext);
    } catch (const Error& e) {
      raise(cat("spec parse error at line ", cline, ": ", e.what()));
    }
  }

  spec.validate();
  return spec;
}

ProblemSpec parse_spec_file(const std::string& path) {
  std::ifstream in(path);
  DPGEN_CHECK(in.good(), cat("cannot open spec file '", path, "'"));
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_spec(buf.str());
}

}  // namespace dpgen::spec
