#include "spec/problem_spec.hpp"

#include <algorithm>
#include <set>

#include "poly/loopnest.hpp"
#include "poly/parse.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace dpgen::spec {

ProblemSpec& ProblemSpec::name(std::string v) {
  DPGEN_CHECK(is_identifier(v), "problem name must be an identifier");
  name_ = std::move(v);
  return *this;
}

ProblemSpec& ProblemSpec::params(std::vector<std::string> names) {
  DPGEN_CHECK(!space_built_, "params() must be set before constraints");
  params_ = std::move(names);
  return *this;
}

ProblemSpec& ProblemSpec::vars(std::vector<std::string> names) {
  DPGEN_CHECK(!space_built_, "vars() must be set before constraints");
  vars_ = std::move(names);
  return *this;
}

ProblemSpec& ProblemSpec::array(std::string name, std::string scalar_type) {
  DPGEN_CHECK(is_identifier(name), "array name must be an identifier");
  array_ = std::move(name);
  scalar_ = std::move(scalar_type);
  return *this;
}

void ProblemSpec::ensure_space_vars() {
  if (space_built_) return;
  poly::Vars v;
  for (const auto& p : params_) v.add(p);
  for (const auto& x : vars_) v.add(x);
  space_ = poly::System(v);
  space_built_ = true;
}

ProblemSpec& ProblemSpec::constraint(const std::string& text) {
  ensure_space_vars();
  space_.add(poly::parse_constraint(text, space_.vars()));
  return *this;
}

ProblemSpec& ProblemSpec::dep(std::string name, IntVec vec) {
  deps_.push_back({std::move(name), std::move(vec)});
  return *this;
}

ProblemSpec& ProblemSpec::load_balance(std::vector<std::string> dims) {
  lb_ = std::move(dims);
  return *this;
}

ProblemSpec& ProblemSpec::tile_widths(IntVec widths) {
  widths_ = std::move(widths);
  return *this;
}

ProblemSpec& ProblemSpec::global_code(std::string code) {
  code_.global = std::move(code);
  return *this;
}
ProblemSpec& ProblemSpec::init_code(std::string code) {
  code_.init = std::move(code);
  return *this;
}
ProblemSpec& ProblemSpec::center_code(std::string code) {
  code_.center = std::move(code);
  return *this;
}

std::string ProblemSpec::to_text() const {
  std::string out;
  out += "problem " + name_ + "\n";
  if (!params_.empty()) out += "params " + join(params_, " ") + "\n";
  out += "vars " + join(vars_, " ") + "\n";
  out += "array " + array_ + " " + scalar_ + "\n\n";
  out += "constraints {\n";
  for (const auto& c : space_.constraints())
    out += "  " + c.to_string(space_.vars()) + "\n";
  out += "}\n\n";
  for (const auto& dp : deps_) {
    std::vector<std::string> comps;
    for (Int v : dp.vec) comps.push_back(std::to_string(v));
    out += "dep " + dp.name + " = (" + join(comps, ", ") + ")\n";
  }
  if (!lb_.empty()) out += "loadbalance " + join(lb_, " ") + "\n";
  if (!widths_.empty()) {
    std::vector<std::string> ws;
    for (Int w : widths_) ws.push_back(std::to_string(w));
    out += "tilewidths " + join(ws, " ") + "\n";
  }
  auto block = [&](const char* key, const std::string& body) {
    if (body.empty()) return;
    DPGEN_CHECK(body.find("\n}}}") == std::string::npos &&
                    !starts_with(body, "}}}"),
                cat(key, " code contains the block terminator '}}}'"));
    out += cat("\n", key, " {{{\n", body);
    if (body.back() != '\n') out += "\n";
    out += "}}}\n";
  };
  block("global", code_.global);
  block("init", code_.init);
  block("center", code_.center);
  return out;
}

void ProblemSpec::validate() {
  ensure_space_vars();
  const int d = dim();
  DPGEN_CHECK(d >= 1, "a problem needs at least one loop variable");
  DPGEN_CHECK(!space_.empty(),
              "a problem needs iteration-space constraints");

  // Tile widths: one per dimension, each >= 1.
  DPGEN_CHECK(static_cast<int>(widths_.size()) == d,
              cat("expected ", d, " tile widths, got ", widths_.size()));
  for (Int w : widths_)
    DPGEN_CHECK(w >= 1, "tile widths must be positive");

  // Dependencies: correct arity, nonzero, unique names, consistent
  // per-dimension signs (rectangular tiling legality).
  DPGEN_CHECK(!deps_.empty(), "a problem needs at least one dependency");
  std::set<std::string> dep_names;
  for (const auto& dp : deps_) {
    DPGEN_CHECK(is_identifier(dp.name),
                cat("dependency name '", dp.name, "' is not an identifier"));
    DPGEN_CHECK(dep_names.insert(dp.name).second,
                cat("duplicate dependency name '", dp.name, "'"));
    DPGEN_CHECK(static_cast<int>(dp.vec.size()) == d,
                cat("dependency ", dp.name, " has ", dp.vec.size(),
                    " components, expected ", d));
    DPGEN_CHECK(!vec_is_zero(dp.vec),
                cat("dependency ", dp.name, " is the zero vector"));
  }
  // Scan-direction assignment (generalises the paper's "all positive, or
  // reverse the loop" rule): execution scans the loop variables in spec
  // order, dimension k descending when dep_signs_[k] == +1 and ascending
  // when -1.  A schedule exists iff every dependency vector is
  // lexicographically positive under some such assignment — i.e. in its
  // first nonzero dimension (loop order) all dependencies that start there
  // agree in sign.  Laterally mixed signs (e.g. the Viterbi/trellis deps
  // (1,-1),(1,0),(1,1)) are fine: they never constrain the lateral
  // dimension at cell level.  Tile-level acyclicity is checked with the
  // same rule on the derived tile offsets below.
  dep_signs_.assign(static_cast<std::size_t>(d), 0);
  auto constrain = [&](int k, Int component, const std::string& what) {
    int s = component > 0 ? 1 : -1;
    auto ks = static_cast<std::size_t>(k);
    DPGEN_CHECK(
        dep_signs_[ks] == 0 || dep_signs_[ks] == s,
        cat("no valid scan direction for dimension '", vars_[ks], "': ",
            what,
            " require conflicting directions (reorder the loop variables, "
            "or use tile width 1 in the pipelined dimension)"));
    dep_signs_[ks] = s;
  };
  for (const auto& dp : deps_) {
    for (int k = 0; k < d; ++k) {
      Int r = dp.vec[static_cast<std::size_t>(k)];
      if (r == 0) continue;
      constrain(k, r, cat("dependency vectors (", dp.name, ")"));
      break;  // only the first nonzero component constrains the scan
    }
  }
  // Tile-level acyclicity (the same rule applied to the derived tile
  // offsets) is checked by TilingModel, which can first prove which
  // offsets actually connect two existing tiles — a width-only check here
  // would falsely reject offsets that never materialise (e.g. a layer
  // dimension fully covered by one tile).

  // Load-balance dims: distinct loop variables.
  std::set<std::string> seen_lb;
  for (const auto& dim_name : lb_) {
    DPGEN_CHECK(std::find(vars_.begin(), vars_.end(), dim_name) != vars_.end(),
                cat("load-balance dimension '", dim_name,
                    "' is not a loop variable"));
    DPGEN_CHECK(seen_lb.insert(dim_name).second,
                cat("duplicate load-balance dimension '", dim_name, "'"));
  }

  // The iteration space must be bounded in the loop variables (possibly in
  // terms of the parameters).
  std::vector<int> order;
  for (int k = 0; k < d; ++k) order.push_back(space_var(k));
  poly::LoopNest nest = poly::LoopNest::build(space_, order);
  DPGEN_CHECK(!nest.unbounded(),
              "the iteration space is unbounded in some loop variable; add "
              "constraints bounding every variable (in terms of the "
              "parameters)");

  // Contradictions among the loop variables surface when they are all
  // projected out (a direct simplify only catches syntactic cases).
  poly::System check = space_.eliminated_all(order);
  check.simplify();
  DPGEN_CHECK(!check.known_infeasible(),
              "the iteration-space constraints are contradictory");

  DPGEN_CHECK(!code_.center.empty(),
              "a problem needs center-loop code (the recurrence body)");
}

}  // namespace dpgen::spec
