#pragma once
// Parser for the generator's text input format (paper section IV.A).
//
// The input is a line-oriented description; code fragments are delimited by
// {{{ ... }}} and copied verbatim.  Example:
//
//   problem bandit2
//   params N
//   vars s1 f1 s2 f2
//   array V double
//
//   constraints {
//     s1 >= 0
//     f1 >= 0
//     s2 >= 0
//     f2 >= 0
//     s1 + f1 + s2 + f2 <= N
//   }
//
//   dep r1 = (1, 0, 0, 0)
//   dep r2 = (0, 1, 0, 0)
//   dep r3 = (0, 0, 1, 0)
//   dep r4 = (0, 0, 0, 1)
//
//   loadbalance s1 f1
//   tilewidths 8 8 8 8
//
//   global {{{
//     static const double p1 = 0.5, p2 = 0.65;
//   }}}
//
//   center {{{
//     double V1 = ...;
//     V[loc] = ...;
//   }}}
//
// Lines starting with '#' are comments.  Parse errors carry line numbers.

#include <string>

#include "spec/problem_spec.hpp"

namespace dpgen::spec {

/// Parses a full problem description; throws dpgen::Error with a
/// line-numbered message on malformed input.  The returned spec has already
/// passed validate().
ProblemSpec parse_spec(const std::string& text);

/// Reads the file and parses it with parse_spec.
ProblemSpec parse_spec_file(const std::string& path);

}  // namespace dpgen::spec
