// Tests for the codegen optimization pass pipeline (codegen/passes.hpp):
// pipeline parsing, layout-plan geometry, the lifted center-loop IR, the
// structure of the optimized emission, and the differential contract —
// every pass subset produces byte-identical RESULT/MAX lines and matches
// the serial reference.

#include <gtest/gtest.h>

#include <sstream>

#include "codegen/generator.hpp"
#include "codegen/passes.hpp"
#include "codegen_util.hpp"
#include "problems/problems.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace dpgen::codegen {
namespace {

using codegen_test::compile_program;
using codegen_test::parse_result;
using codegen_test::run_command;

// ---- pipeline parsing -----------------------------------------------------

TEST(CodegenPassesPipeline, ParseSpellings) {
  EXPECT_FALSE(PassPipeline::parse("").any());
  EXPECT_FALSE(PassPipeline::parse("none").any());

  PassPipeline full = PassPipeline::parse("full");
  EXPECT_TRUE(full.canonicalize && full.unroll && full.layout);
  EXPECT_EQ(full.unroll_factor, 4);
  EXPECT_TRUE(PassPipeline::parse("all").any());

  PassPipeline sub = PassPipeline::parse("canonicalize,unroll:8");
  EXPECT_TRUE(sub.canonicalize);
  EXPECT_TRUE(sub.unroll);
  EXPECT_FALSE(sub.layout);
  EXPECT_EQ(sub.unroll_factor, 8);
  EXPECT_TRUE(sub.loop_passes());

  PassPipeline lay = PassPipeline::parse("layout");
  EXPECT_TRUE(lay.any());
  EXPECT_FALSE(lay.loop_passes());

  EXPECT_EQ(full.to_string(), "canonicalize,unroll:4,layout");
  EXPECT_EQ(PassPipeline{}.to_string(), "none");
  EXPECT_EQ(sub.names(), (std::vector<std::string>{"canonicalize",
                                                   "unroll:8"}));
}

TEST(CodegenPassesPipeline, RejectsBadInput) {
  EXPECT_THROW(PassPipeline::parse("vectorize"), Error);
  EXPECT_THROW(PassPipeline::parse("canonicalize,"), Error);
  EXPECT_THROW(PassPipeline::parse("unroll:0"), Error);
  EXPECT_THROW(PassPipeline::parse("unroll:17"), Error);
  EXPECT_THROW(PassPipeline::parse("unroll:x"), Error);
}

// ---- layout plan ----------------------------------------------------------

TEST(CodegenPassesLayout, PadsInnermostExtentToAlignment) {
  problems::Problem p = problems::trellis(10);
  tiling::TilingModel model(p.spec);
  LayoutPlan id = LayoutPlan::make(model, false);
  LayoutPlan padded = LayoutPlan::make(model, true);

  // Identity plan: extent 10 + 2 lateral ghosts = 12, not a multiple of 8.
  EXPECT_FALSE(id.padded);
  EXPECT_EQ(id.extents.back(), 12);
  EXPECT_TRUE(padded.padded);
  EXPECT_EQ(padded.extents.back(), 16);
  EXPECT_EQ(padded.extents.back() % kLayoutAlign, 0);

  // Ghost origins are geometry, not layout: unchanged by padding.
  EXPECT_EQ(padded.ghost_lo, id.ghost_lo);

  // Strides re-derived from the padded extents, innermost stride 1.
  const auto d = padded.extents.size();
  EXPECT_EQ(padded.strides[d - 1], 1);
  Int expect = 1;
  for (std::size_t k = d; k-- > 0;) {
    EXPECT_EQ(padded.strides[k], expect) << "dim " << k;
    expect *= padded.extents[k];
  }
  EXPECT_EQ(padded.buffer_size, expect);
  EXPECT_GT(padded.buffer_size, id.buffer_size);

  // Derived constants stay consistent with the strides.
  Int lc = 0;
  for (std::size_t k = 0; k < d; ++k)
    lc += padded.strides[k] * padded.ghost_lo[k];
  EXPECT_EQ(padded.loc_const, lc);
  ASSERT_EQ(padded.dep_offsets.size(), 3u);
  const auto& deps = model.problem().deps();
  for (std::size_t j = 0; j < deps.size(); ++j) {
    Int off = 0;
    for (std::size_t k = 0; k < d; ++k)
      off += padded.strides[k] * deps[j].vec[k];
    EXPECT_EQ(padded.dep_offsets[j], off) << deps[j].name;
  }
}

TEST(CodegenPassesLayout, OneDimensionalSpacesAreNotPadded) {
  problems::Problem p = problems::coin_change({1, 3}, 5);
  tiling::TilingModel model(p.spec);
  LayoutPlan padded = LayoutPlan::make(model, true);
  // No outer stride exists, so padding would only waste buffer (and wire
  // format must stay put): the plan is the identity.
  EXPECT_FALSE(padded.padded);
  EXPECT_EQ(padded.buffer_size, LayoutPlan::make(model, false).buffer_size);
}

// ---- lifted IR ------------------------------------------------------------

TEST(CodegenPassesIR, LiftsDeduplicatedChecks) {
  problems::Problem p = problems::trellis(8);
  tiling::TilingModel model(p.spec);
  CenterLoopIR ir = CenterLoopIR::lift(model);

  // Three dependencies share the t <= T check; the lateral s-bounds are
  // unique to up_left / up_right: three deduplicated checks in all.
  ASSERT_EQ(ir.checks.size(), 3u);
  ASSERT_EQ(ir.dep_checks.size(), 3u);
  int pos = 0, neg = 0, zero = 0;
  for (const CenterCheck& c : ir.checks) {
    EXPECT_FALSE(c.rendered.empty());
    (c.inner_coef > 0 ? pos : c.inner_coef < 0 ? neg : zero)++;
  }
  // s - 1 >= 0 (inner coefficient +1), S - s - 1 >= 0 (-1), and the
  // invariant t-check (0).
  EXPECT_EQ(pos, 1);
  EXPECT_EQ(neg, 1);
  EXPECT_EQ(zero, 1);
}

TEST(CodegenPassesIR, IvdepLegality) {
  // Every trellis dependency moves in t: the innermost loop carries no
  // memory dependence.
  EXPECT_TRUE(ivdep_legal(tiling::TilingModel(problems::trellis(8).spec)));
  EXPECT_TRUE(ivdep_legal(tiling::TilingModel(problems::downhill(4, 8).spec)));
  // A 1-D problem's dependencies move only in the innermost dimension.
  EXPECT_FALSE(
      ivdep_legal(tiling::TilingModel(problems::coin_change({1, 3}, 5).spec)));
}

// ---- emission structure ---------------------------------------------------

TEST(CodegenPassesSource, OptimizedEmissionStructure) {
  problems::Problem p = problems::trellis(16);
  tiling::TilingModel model(p.spec);
  GenOptions opt;
  opt.passes = PassPipeline::parse("full");
  std::string src = generate_program(model, opt);

  // Run-time toggle and dual emission.
  EXPECT_NE(src.find("static bool dp_g_loop_passes = true;"),
            std::string::npos);
  EXPECT_NE(src.find("if (dp_g_loop_passes)"), std::string::npos);
  EXPECT_NE(src.find("--passes="), std::string::npos);
  // Canonicalize: hoisted row base, split bounds, vectorization marker.
  EXPECT_NE(src.find("dp_row_i_s"), std::string::npos);
  EXPECT_NE(src.find("dp_sa_i_s"), std::string::npos);
  EXPECT_NE(src.find("dp_sb_i_s"), std::string::npos);
  EXPECT_NE(src.find("// dpgen:vec-inner"), std::string::npos);
  EXPECT_NE(src.find("#pragma GCC ivdep"), std::string::npos);
  // Unroll on the vector-eligible interior is pragma-based.
  EXPECT_NE(src.find("#pragma GCC unroll 4"), std::string::npos);
  // The report epilogue declares the pipeline.
  EXPECT_NE(src.find("\"canonicalize\""), std::string::npos);
  EXPECT_NE(src.find("\"unroll:4\""), std::string::npos);
  EXPECT_NE(src.find("\"layout\""), std::string::npos);
}

TEST(CodegenPassesSource, DefaultEmissionHasNoPassArtifacts) {
  problems::Problem p = problems::trellis(16);
  tiling::TilingModel model(p.spec);
  std::string src = generate_program(model);
  EXPECT_EQ(src.find("dp_g_loop_passes"), std::string::npos);
  EXPECT_EQ(src.find("dpgen:vec-inner"), std::string::npos);
  EXPECT_EQ(src.find("#pragma GCC"), std::string::npos);
  EXPECT_EQ(src.find("--passes="), std::string::npos);
}

TEST(CodegenPassesSource, ManualUnrollWithoutCanonicalize) {
  problems::Problem p = problems::trellis(16);
  tiling::TilingModel model(p.spec);
  GenOptions opt;
  opt.passes = PassPipeline::parse("unroll:3");
  std::string src = generate_program(model, opt);
  // Without canonicalize the loop keeps per-cell guards and stays scalar:
  // source-level unrolling with the dp_base counter and a remainder loop.
  EXPECT_NE(src.find("dp_base_i_s"), std::string::npos);
  EXPECT_EQ(src.find("#pragma GCC unroll"), std::string::npos);
  EXPECT_EQ(src.find("dp_sa_i_s"), std::string::npos);
}

TEST(CodegenPassesSource, IvdepOmittedWhenIllegal) {
  // 1-D coin change: every dependency is innermost-only, so the optimized
  // emission must not claim independence.
  problems::Problem p = problems::coin_change({1, 3}, 5);
  tiling::TilingModel model(p.spec);
  GenOptions opt;
  opt.passes = PassPipeline::parse("canonicalize");
  std::string src = generate_program(model, opt);
  EXPECT_EQ(src.find("#pragma GCC ivdep"), std::string::npos);
  EXPECT_NE(src.find("dpgen:vec-inner"), std::string::npos);
}

// ---- differential: byte-identical results across subsets ------------------

/// The deterministic result lines (RESULT/MAX/STATS tiles+work counters,
/// not timings) of a run.
std::string result_lines(const std::string& out) {
  std::istringstream ss(out);
  std::string line, acc;
  while (std::getline(ss, line)) {
    if (line.rfind("RESULT ", 0) == 0 || line.rfind("MAX ", 0) == 0)
      acc += line + "\n";
  }
  return acc;
}

struct BuiltVariant {
  std::string passes;
  codegen_test::CompiledProgram prog;
};

std::vector<BuiltVariant> build_variants(const tiling::TilingModel& model,
                                         const std::vector<std::string>& subsets,
                                         const std::string& tag) {
  std::vector<BuiltVariant> out;
  for (const std::string& sub : subsets) {
    GenOptions opt;
    opt.passes = PassPipeline::parse(sub);
    std::string src_path =
        cat(testing::TempDir(), "/dpgen_passes_", tag, "_", out.size(),
            ".cpp");
    write_program(model, src_path, opt);
    BuiltVariant v;
    v.passes = sub;
    v.prog = compile_program(src_path, cat("passes_", tag, "_", out.size()));
    EXPECT_TRUE(v.prog.ok) << sub << ":\n" << v.prog.log;
    out.push_back(std::move(v));
  }
  return out;
}

TEST(CodegenPassesEndToEnd, TrellisSubsetsBitIdentical) {
  problems::Problem p = problems::trellis(6);
  tiling::TilingModel model(p.spec);
  auto variants = build_variants(
      model,
      {"none", "canonicalize", "unroll:2", "canonicalize,unroll:3", "layout",
       "full"},
      "trellis");

  const IntVec params{13, 29};
  const std::string args = cat(" ", params[0], " ", params[1]);
  std::string baseline;
  for (const auto& v : variants) {
    if (!v.prog.ok) continue;
    auto [status, out] =
        run_command(cat(v.prog.binary, args, " --ranks=2 --threads=2"));
    ASSERT_EQ(status, 0) << v.passes << "\n" << out;
    std::string results = result_lines(out);
    EXPECT_FALSE(results.empty()) << out;
    // Exact double round-trip: every subset prints the same bytes.
    if (baseline.empty())
      baseline = results;
    else
      EXPECT_EQ(results, baseline) << "passes=" << v.passes;
    EXPECT_DOUBLE_EQ(parse_result(out, p.objective), p.reference(params))
        << "passes=" << v.passes;
  }

  // The run-time kill switch on the full binary reproduces the plain loop.
  const auto& full = variants.back();
  if (full.prog.ok) {
    auto [status, out] =
        run_command(cat(full.prog.binary, args, " --passes=none"));
    ASSERT_EQ(status, 0) << out;
    EXPECT_EQ(result_lines(out), baseline);
    auto [bad_status, bad_out] =
        run_command(cat(full.prog.binary, args, " --passes=bogus"));
    EXPECT_NE(bad_status, 0);
    EXPECT_NE(bad_out.find("--passes"), std::string::npos) << bad_out;
  }
}

TEST(CodegenPassesEndToEnd, DownhillFullBitIdentical) {
  problems::Problem p = problems::downhill(3, 7);
  tiling::TilingModel model(p.spec);
  auto variants = build_variants(model, {"none", "full"}, "downhill");
  const IntVec params{17, 23};
  const std::string args = cat(" ", params[0], " ", params[1]);
  std::string baseline;
  for (const auto& v : variants) {
    if (!v.prog.ok) continue;
    auto [status, out] =
        run_command(cat(v.prog.binary, args, " --ranks=2 --threads=2"));
    ASSERT_EQ(status, 0) << v.passes << "\n" << out;
    std::string results = result_lines(out);
    if (baseline.empty())
      baseline = results;
    else
      EXPECT_EQ(results, baseline) << "passes=" << v.passes;
    EXPECT_DOUBLE_EQ(parse_result(out, p.objective), p.reference(params))
        << "passes=" << v.passes;
  }
}

TEST(CodegenPassesEndToEnd, SmithWatermanMaxTrackingBitIdentical) {
  // Max tracking reads `loc` through the plan-driven mapping function on
  // both variants; the MAX line must agree byte-for-byte too.
  std::string a = "TTGACACGTT", b = "GGCACACAGG";
  problems::Problem p = problems::smith_waterman(a, b, 2.0, -1.0, -1.0, 4);
  tiling::TilingModel model(p.spec);
  std::vector<std::string> outs;
  for (const char* sub : {"none", "full"}) {
    GenOptions opt;
    opt.track_max = true;
    opt.passes = PassPipeline::parse(sub);
    std::string src_path =
        cat(testing::TempDir(), "/dpgen_passes_sw_", outs.size(), ".cpp");
    write_program(model, src_path, opt);
    auto prog = compile_program(src_path, cat("passes_sw_", outs.size()));
    ASSERT_TRUE(prog.ok) << sub << ":\n" << prog.log;
    IntVec params = problems::sequence_params({a, b});
    auto [status, out] = run_command(
        cat(prog.binary, " ", params[0], " ", params[1], " --threads=2"));
    ASSERT_EQ(status, 0) << out;
    EXPECT_NE(out.find("MAX ("), std::string::npos) << out;
    outs.push_back(result_lines(out));
  }
  EXPECT_EQ(outs[0], outs[1]);
}

}  // namespace
}  // namespace dpgen::codegen
