// Deterministic chaos suite for the fault-injecting transport and the
// checkpoint/restart machinery (ROADMAP item 5, docs/fault-tolerance.md).
//
// The headline assertions run every seed problem family through seeded
// fault scenarios — mid-run rank kill, message drop, duplication, delay,
// slow node — and require the faulty run's RESULT/MAX lines to be
// byte-identical to the fault-free run's, under both the plain and the
// sharded tile table.  A randomized soak mode replays seeded random plans;
// a failing iteration logs its seed and plan string for exact replay
// (--chaos-iters=N raises the iteration count; scripts/check.sh and the
// ChaosSoak ctest entry use it).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chaos_util.hpp"
#include "minimpi/faults.hpp"
#include "minimpi/transport.hpp"
#include "minimpi/world.hpp"
#include "runtime/checkpoint.hpp"
#include "support/json.hpp"
#include "support/json_schema.hpp"

namespace dpgen {

int g_soak_iters = 12;  // default; --chaos-iters=N overrides (check.sh: 100)

namespace {

using chaos::ChaosCase;
using minimpi::FaultInjector;
using minimpi::FaultPlan;
using minimpi::InProcessTransport;
using minimpi::Message;
using minimpi::PostResult;
using minimpi::TransportFailure;

// ---------------------------------------------------------------- grammar

TEST(FaultPlanGrammar, ToStringParseRoundTrip) {
  const std::string text =
      "kill:1@120;drop:*>2@3;dup:0>*@1;delay:2>3@4+7;slow:0@25";
  const FaultPlan plan = FaultPlan::parse(text);
  EXPECT_EQ(plan.to_string(), text);
  EXPECT_EQ(FaultPlan::parse(plan.to_string()).to_string(), text);
  ASSERT_EQ(plan.kills.size(), 1u);
  EXPECT_EQ(plan.kills[0].rank, 1);
  EXPECT_EQ(plan.kills[0].after_ops, 120);
  ASSERT_EQ(plan.links.size(), 3u);
  EXPECT_EQ(plan.links[0].kind, FaultPlan::LinkFault::kDrop);
  EXPECT_EQ(plan.links[0].src, -1);
  EXPECT_EQ(plan.links[0].dst, 2);
  EXPECT_EQ(plan.links[2].kind, FaultPlan::LinkFault::kDelay);
  EXPECT_EQ(plan.links[2].hold, 7);
  ASSERT_EQ(plan.slows.size(), 1u);
  EXPECT_EQ(plan.slows[0].op_delay_us, 25);
}

TEST(FaultPlanGrammar, WhitespaceAndEmptyTokensTolerated) {
  const FaultPlan plan = FaultPlan::parse(" kill:0@5 ; ; slow:1@10 ");
  EXPECT_EQ(plan.to_string(), "kill:0@5;slow:1@10");
  EXPECT_TRUE(FaultPlan::parse("").empty());
}

TEST(FaultPlanGrammar, MalformedPlansRejected) {
  EXPECT_THROW(FaultPlan::parse("boom:1@2"), Error);
  EXPECT_THROW(FaultPlan::parse("kill:*@5"), Error);   // needs concrete rank
  EXPECT_THROW(FaultPlan::parse("kill:1"), Error);     // missing '@'
  EXPECT_THROW(FaultPlan::parse("delay:0>1@2"), Error);  // missing '+hold'
  EXPECT_THROW(FaultPlan::parse("drop:0@1"), Error);   // missing '>'
  EXPECT_THROW(FaultPlan::parse("drop:x>1@1"), Error);
}

TEST(FaultPlanGrammar, RandomIsSeedDeterministicAndRoundTrips) {
  for (unsigned seed = 0; seed < 64; ++seed) {
    const FaultPlan a = FaultPlan::random(seed, 4);
    const FaultPlan b = FaultPlan::random(seed, 4);
    EXPECT_EQ(a.to_string(), b.to_string()) << "seed " << seed;
    EXPECT_FALSE(a.empty()) << "seed " << seed;
    EXPECT_EQ(FaultPlan::parse(a.to_string()).to_string(), a.to_string())
        << "seed " << seed;
  }
  // Not all seeds generate the same plan.
  EXPECT_NE(FaultPlan::random(1, 4).to_string(),
            FaultPlan::random(2, 4).to_string());
}

TEST(FaultPlanGrammar, OutOfRangePlansRejectedByInjector) {
  auto base = std::make_shared<InProcessTransport>(2, 0);
  EXPECT_THROW(FaultInjector(base, FaultPlan::parse("kill:5@1")), Error);
  EXPECT_THROW(FaultInjector(base, FaultPlan::parse("slow:2@10")), Error);
  EXPECT_THROW(FaultInjector(base, FaultPlan::parse("drop:0>7@1")), Error);
}

// -------------------------------------------------------------- transport

Message make_msg(int source, int tag, std::uint8_t byte) {
  Message m;
  m.source = source;
  m.tag = tag;
  m.payload = {byte};
  return m;
}

TEST(Transport, InProcessPostCollectRoundTrip) {
  InProcessTransport t(2, 0);
  Message m = make_msg(0, 7, 42);
  ASSERT_EQ(t.try_post(0, 1, m), PostResult::kDelivered);
  int src = -1, tag = -1;
  EXPECT_TRUE(t.probe(1, &src, &tag));
  EXPECT_EQ(src, 0);
  EXPECT_EQ(tag, 7);
  auto got = t.collect(1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, std::vector<std::uint8_t>{42});
  EXPECT_FALSE(t.collect(1).has_value());
}

TEST(Transport, CollectMatchFiltersBySourceAndTag) {
  InProcessTransport t(3, 0);
  Message a = make_msg(0, 1, 1), b = make_msg(1, 2, 2);
  ASSERT_EQ(t.try_post(0, 2, a), PostResult::kDelivered);
  ASSERT_EQ(t.try_post(1, 2, b), PostResult::kDelivered);
  EXPECT_FALSE(t.collect_match(2, 0, 9).has_value());
  auto got = t.collect_match(2, 1, 2);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, std::vector<std::uint8_t>{2});
  EXPECT_TRUE(t.collect_match(2, -1, -1).has_value());  // wildcard
}

TEST(Transport, BoundedMailboxReportsFull) {
  InProcessTransport t(2, 1);
  Message a = make_msg(0, 0, 1), b = make_msg(0, 0, 2);
  ASSERT_EQ(t.try_post(0, 1, a), PostResult::kDelivered);
  ASSERT_EQ(t.try_post(0, 1, b), PostResult::kFull);
  EXPECT_EQ(b.payload, std::vector<std::uint8_t>{2});  // left intact
  EXPECT_TRUE(t.would_block(1));
  ASSERT_TRUE(t.collect(1).has_value());
  ASSERT_EQ(t.try_post(0, 1, b), PostResult::kDelivered);
}

TEST(Transport, FailurePoisonsBlockingCollect) {
  InProcessTransport t(2, 0);
  std::atomic<bool> threw{false};
  std::thread waiter([&] {
    try {
      (void)t.collect_blocking(1);
    } catch (const TransportFailure&) {
      threw = true;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.fail("test poison");
  waiter.join();
  EXPECT_TRUE(threw.load());
  EXPECT_TRUE(t.failed());
  EXPECT_EQ(t.failure_reason(), "test poison");
  EXPECT_THROW(t.check_alive(), TransportFailure);
}

TEST(Transport, WorldRunsOnExplicitTransport) {
  auto transport = std::make_shared<InProcessTransport>(2, 0);
  minimpi::World world(2, 0, transport);
  std::vector<int> got(2, -1);
  world.run([&](minimpi::Comm& comm) {
    if (comm.rank() == 0) {
      const int v = 41;
      comm.send(1, 0, &v, sizeof(v));
    } else {
      Message m = comm.recv();
      got[1] = *reinterpret_cast<const int*>(m.payload.data()) + 1;
    }
  });
  EXPECT_EQ(got[1], 42);
  EXPECT_THROW(minimpi::World(3, 0, transport), Error);  // nranks mismatch
}

TEST(FaultInjectorWire, DropsExactlyTheNthLinkMessage) {
  auto base = std::make_shared<InProcessTransport>(2, 0);
  FaultInjector inj(base, FaultPlan::parse("drop:0>1@2"));
  for (std::uint8_t i = 1; i <= 3; ++i) {
    Message m = make_msg(0, 0, i);
    ASSERT_EQ(inj.try_post(0, 1, m), PostResult::kDelivered);
  }
  std::vector<std::uint8_t> seen;
  while (auto m = inj.collect(1)) seen.push_back(m->payload[0]);
  EXPECT_EQ(seen, (std::vector<std::uint8_t>{1, 3}));
  EXPECT_EQ(inj.stats().messages_dropped, 1);
}

TEST(FaultInjectorWire, CollectiveTagsAreExemptFromLinkFaults) {
  auto base = std::make_shared<InProcessTransport>(2, 0);
  FaultInjector inj(base, FaultPlan::parse("drop:*>*@1"));
  Message gather = make_msg(0, -102, 9);
  ASSERT_EQ(inj.try_post(0, 1, gather), PostResult::kDelivered);
  Message data = make_msg(0, 0, 1);
  ASSERT_EQ(inj.try_post(0, 1, data), PostResult::kDelivered);
  std::vector<std::uint8_t> seen;
  while (auto m = inj.collect(1)) seen.push_back(m->payload[0]);
  EXPECT_EQ(seen, std::vector<std::uint8_t>{9});  // data dropped, not gather
  EXPECT_EQ(inj.stats().messages_dropped, 1);
}

TEST(FaultInjectorWire, DuplicatesDeliverTwoCopies) {
  auto base = std::make_shared<InProcessTransport>(2, 0);
  FaultInjector inj(base, FaultPlan::parse("dup:0>1@1"));
  Message m = make_msg(0, 3, 5);
  ASSERT_EQ(inj.try_post(0, 1, m), PostResult::kDelivered);
  int copies = 0;
  while (auto got = inj.collect(1)) {
    EXPECT_EQ(got->payload, std::vector<std::uint8_t>{5});
    EXPECT_EQ(got->tag, 3);
    ++copies;
  }
  EXPECT_EQ(copies, 2);
  EXPECT_EQ(inj.stats().messages_duplicated, 1);
}

TEST(FaultInjectorWire, DelayParksUntilDestinationOps) {
  auto base = std::make_shared<InProcessTransport>(2, 0);
  FaultInjector inj(base, FaultPlan::parse("delay:0>1@1+3"));
  Message m = make_msg(0, 0, 8);
  ASSERT_EQ(inj.try_post(0, 1, m), PostResult::kDelivered);
  // Parked: not visible until rank 1 performs 3 further transport ops.
  EXPECT_FALSE(inj.collect(1).has_value());
  EXPECT_FALSE(inj.collect(1).has_value());
  auto got = inj.collect(1);  // 3rd op releases, delivered before collect
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, std::vector<std::uint8_t>{8});
  EXPECT_EQ(inj.stats().messages_delayed, 1);
}

TEST(FaultInjectorWire, KillFiresAtOpCountAndPoisonsStack) {
  auto base = std::make_shared<InProcessTransport>(2, 0);
  FaultInjector inj(base, FaultPlan::parse("kill:0@3"));
  EXPECT_FALSE(inj.collect(0).has_value());  // op 1
  EXPECT_FALSE(inj.probe(0, nullptr, nullptr));  // op 2
  EXPECT_THROW(inj.collect(0), TransportFailure);  // op 3: dead
  EXPECT_TRUE(inj.failed());
  EXPECT_EQ(inj.dead_ranks(), std::vector<int>{0});
  EXPECT_EQ(inj.stats().kills_fired, 1);
  // Every other rank's next operation now throws too.
  EXPECT_THROW(inj.collect(1), TransportFailure);
  // Sends to the dead rank before the poison propagated would have been
  // swallowed silently (posts_to_dead) — here the stack is already down.
}

// ------------------------------------------------------- chaos scenarios

/// Clean-reference cache: the fault-free lines per (case, shards), shared
/// across scenario tests (the sweep reruns the same topologies).
const std::string& clean_reference(int case_index, int shards) {
  static std::map<std::pair<int, int>, std::string> cache;
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  auto key = std::make_pair(case_index, shards);
  auto it = cache.find(key);
  if (it == cache.end()) {
    const ChaosCase c = chaos::chaos_cases()[static_cast<std::size_t>(
        case_index)];
    it = cache.emplace(key, chaos::clean_lines(c, 4, 2, shards)).first;
  }
  return it->second;
}

class ChaosScenario
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  ChaosCase chaos_case() const {
    return chaos::chaos_cases()[static_cast<std::size_t>(
        std::get<0>(GetParam()))];
  }
  int shards() const { return std::get<1>(GetParam()); }
  const std::string& clean() const {
    return clean_reference(std::get<0>(GetParam()), shards());
  }
  engine::EngineOptions options() const {
    return chaos::base_options(4, 2, shards());
  }
};

TEST_P(ChaosScenario, CleanRunIsDeterministic) {
  const ChaosCase c = chaos_case();
  ASSERT_FALSE(clean().empty());
  EXPECT_EQ(chaos::clean_lines(c, 4, 2, shards()), clean());
}

TEST_P(ChaosScenario, KillRankMidRunRecoversByteIdentical) {
  const ChaosCase c = chaos_case();
  auto opt = options();
  // A low trigger: every rank performs a dozen transport operations even
  // in the smallest family (idle polls count), so the kill always fires.
  opt.fault_plan = FaultPlan::parse("kill:1@12");
  const auto result = chaos::run_case(c, opt);
  EXPECT_EQ(chaos::result_lines(result, c.track_max), clean());
  EXPECT_GE(result.restarts, 1);
  ASSERT_EQ(result.failed_ranks.size(), 1u);
  EXPECT_EQ(result.failed_ranks[0], 1);
  EXPECT_EQ(result.fault_stats.kills_fired, 1);
}

TEST_P(ChaosScenario, DroppedMessagesRecoverViaStallRestart) {
  const ChaosCase c = chaos_case();
  auto opt = options();
  opt.fault_plan = FaultPlan::parse("drop:*>*@2");
  opt.recover_stall_seconds = 0.25;
  const auto result = chaos::run_case(c, opt);
  EXPECT_EQ(chaos::result_lines(result, c.track_max), clean());
  EXPECT_GE(result.fault_stats.messages_dropped, 1);
  EXPECT_GE(result.restarts, 1);
  EXPECT_TRUE(result.failed_ranks.empty());  // nobody died, messages did
}

TEST_P(ChaosScenario, DuplicatedMessagesAreDeduplicated) {
  const ChaosCase c = chaos_case();
  auto opt = options();
  opt.fault_plan = FaultPlan::parse("dup:*>*@2");
  const auto result = chaos::run_case(c, opt);
  EXPECT_EQ(chaos::result_lines(result, c.track_max), clean());
  EXPECT_GE(result.fault_stats.messages_duplicated, 1);
  EXPECT_EQ(result.restarts, 0);
}

TEST_P(ChaosScenario, DelayedMessagesReorderWithoutLoss) {
  const ChaosCase c = chaos_case();
  auto opt = options();
  opt.fault_plan = FaultPlan::parse("delay:*>*@2+6");
  const auto result = chaos::run_case(c, opt);
  EXPECT_EQ(chaos::result_lines(result, c.track_max), clean());
  EXPECT_GE(result.fault_stats.messages_delayed, 1);
  EXPECT_EQ(result.restarts, 0);
}

TEST_P(ChaosScenario, SlowNodeChangesNothingButTiming) {
  const ChaosCase c = chaos_case();
  auto opt = options();
  opt.fault_plan = FaultPlan::parse("slow:1@15");
  const auto result = chaos::run_case(c, opt);
  EXPECT_EQ(chaos::result_lines(result, c.track_max), clean());
  EXPECT_GE(result.fault_stats.slow_ops, 1);
  EXPECT_EQ(result.restarts, 0);
}

std::string scenario_name(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  const auto cases = chaos::chaos_cases();
  return cases[static_cast<std::size_t>(std::get<0>(info.param))].name +
         "_shards" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Faults, ChaosScenario,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Values(1, 2)),
    scenario_name);

// ------------------------------------------------------------------ soak

TEST(ChaosSoak, RandomizedSeededPlans) {
  const auto cases = chaos::chaos_cases();
  const int iters = g_soak_iters;
  for (int i = 0; i < iters; ++i) {
    const unsigned seed = 7701u + static_cast<unsigned>(i);
    const int case_index = i % static_cast<int>(cases.size());
    const int shards = 1 + (i / static_cast<int>(cases.size())) % 2;
    const ChaosCase& c = cases[static_cast<std::size_t>(case_index)];
    const FaultPlan plan = FaultPlan::random(seed, 4);
    auto opt = chaos::base_options(4, 2, shards);
    opt.fault_plan = plan;
    opt.recover_stall_seconds = 0.2;
    const std::string replay =
        cat("chaos soak seed ", seed, " plan '", plan.to_string(), "' on ",
            c.name, " shards=", shards,
            " — replay with FaultPlan::parse(plan)");
    std::string got;
    try {
      got = chaos::result_lines(chaos::run_case(c, opt), c.track_max);
    } catch (const std::exception& e) {
      FAIL() << replay << " threw: " << e.what();
    }
    ASSERT_EQ(got, clean_reference(case_index, shards)) << replay;
  }
}

// ------------------------------------------------------------ checkpoint

runtime::CheckpointEdge<double> edge_to(IntVec consumer, int edge,
                                        std::vector<double> payload) {
  runtime::CheckpointEdge<double> e;
  e.consumer = std::move(consumer);
  e.edge = edge;
  e.payload = std::move(payload);
  return e;
}

TEST(CheckpointStore, RecordsAreIdempotent) {
  runtime::CheckpointStore<double> store;
  store.set_meta("t", "p", 2);
  std::vector<runtime::CheckpointEdge<double>> edges;
  edges.push_back(edge_to({0, 1}, 0, {1.5, 2.5}));
  store.tile_complete({0, 0}, std::move(edges));
  std::vector<runtime::CheckpointEdge<double>> again;
  again.push_back(edge_to({0, 1}, 0, {9.9}));  // would corrupt if applied
  store.tile_complete({0, 0}, std::move(again));
  EXPECT_EQ(store.completed(), 1);
  EXPECT_TRUE(store.executed({0, 0}));
  EXPECT_FALSE(store.executed({0, 1}));
  const auto doc = store.to_doc();
  ASSERT_EQ(doc.edges.size(), 1u);
  EXPECT_EQ(doc.edges[0].payload_bytes.size(), 2 * sizeof(double));
}

TEST(CheckpointStore, SeedRankCreditsAndDelivers) {
  runtime::CheckpointStore<double> store;
  store.set_meta("t", "p", 1);
  {
    std::vector<runtime::CheckpointEdge<double>> edges;
    edges.push_back(edge_to({1}, 0, {3.0}));
    store.tile_complete({2}, std::move(edges));
  }
  {
    std::vector<runtime::CheckpointEdge<double>> edges;
    edges.push_back(edge_to({0}, 0, {4.0}));  // consumer {0} not executed
    store.tile_complete({1}, std::move(edges));
  }
  // {1} executed, so its stored inbound edge must NOT be re-delivered;
  // {0} is live and gets its edge.
  runtime::ShardedTileTable<double> table(
      runtime::TileOrder({0}, {1}, runtime::PriorityPolicy::kColumnMajor),
      1);
  const long long credited = store.seed_rank(
      0, [](const IntVec&) { return 0; }, [](const IntVec&) { return 1; },
      table);
  EXPECT_EQ(credited, 2);  // {1} and {2}
  auto ready = table.pop(0);
  ASSERT_TRUE(ready.has_value());
  EXPECT_EQ(ready->tile, IntVec{0});
  ASSERT_EQ(ready->edges.size(), 1u);
  EXPECT_EQ(ready->edges[0].payload, std::vector<double>{4.0});
  EXPECT_FALSE(table.pop(0).has_value());
}

TEST(CheckpointJson, FileRoundTripPreservesEverything) {
  runtime::CheckpointStore<double> store;
  store.set_meta("roundtrip", "3 4", 2);
  {
    std::vector<runtime::CheckpointEdge<double>> edges;
    edges.push_back(edge_to({0, 1}, 0, {0.1, -2.25, 1e300}));
    edges.push_back(edge_to({1, 0}, 1, {}));
    store.tile_complete({0, 0}, std::move(edges));
  }
  store.tile_complete({1, 1}, {});
  const std::string path =
      ::testing::TempDir() + "dpgen_checkpoint_roundtrip.json";
  const std::string text = runtime::encode_checkpoint_json(store.to_doc());
  runtime::write_checkpoint_file(path, text);

  const runtime::CheckpointDoc loaded = runtime::load_checkpoint_json(path);
  EXPECT_EQ(loaded.problem, "roundtrip");
  EXPECT_EQ(loaded.params, "3 4");
  EXPECT_EQ(loaded.dim, 2);
  EXPECT_EQ(loaded.scalar_bytes, static_cast<int>(sizeof(double)));
  ASSERT_EQ(loaded.executed.size(), 2u);
  ASSERT_EQ(loaded.edges.size(), 2u);

  runtime::CheckpointStore<double> restored;
  restored.set_meta("roundtrip", "3 4", 2);
  restored.restore_from(loaded);
  // Hex payloads round-trip bit-exactly, so re-encoding is byte-identical.
  EXPECT_EQ(runtime::encode_checkpoint_json(restored.to_doc()), text);
  EXPECT_TRUE(restored.executed({1, 1}));
}

TEST(CheckpointJson, MatchesPublishedSchema) {
  runtime::CheckpointStore<double> store;
  store.set_meta("schema_check", "7", 1);
  {
    std::vector<runtime::CheckpointEdge<double>> edges;
    edges.push_back(edge_to({1}, 0, {2.0}));
    store.tile_complete({0}, std::move(edges));
  }
  runtime::ShardedTileTable<double> table(
      runtime::TileOrder({0}, {1}, runtime::PriorityPolicy::kColumnMajor),
      1);
  store.attach_table(0, &table);
  const std::string text = runtime::encode_checkpoint_json(store.to_doc());
  store.detach_table(0);

  std::ifstream schema_in(DPGEN_CHECKPOINT_SCHEMA);
  ASSERT_TRUE(schema_in.good()) << "cannot open " << DPGEN_CHECKPOINT_SCHEMA;
  std::stringstream schema_ss;
  schema_ss << schema_in.rdbuf();
  const auto schema = json::parse(schema_ss.str());
  const auto doc = json::parse(text);
  const std::vector<std::string> errors = json::validate(*schema, *doc);
  EXPECT_TRUE(errors.empty()) << errors.front() << "\nin: " << text;
}

TEST(CheckpointJson, CorruptFilesRejected) {
  const std::string dir = ::testing::TempDir();
  auto write = [&](const std::string& name, const std::string& text) {
    const std::string path = dir + name;
    std::ofstream out(path);
    out << text;
    return path;
  };
  EXPECT_THROW(runtime::load_checkpoint_json(dir + "missing_file.json"),
               Error);
  EXPECT_THROW(
      runtime::load_checkpoint_json(write("dpgen_ckpt_nonjson.json", "{nope")),
      Error);
  EXPECT_THROW(runtime::load_checkpoint_json(write(
                   "dpgen_ckpt_schema.json",
                   R"({"schema":"dpgen.checkpoint.v2","problem":"x","params":"",)"
                   R"("dim":1,"scalar_bytes":8,"completed_tiles":0,)"
                   R"("executed":[],"edges":[]})")),
               Error);
  EXPECT_THROW(runtime::load_checkpoint_json(write(
                   "dpgen_ckpt_count.json",
                   R"({"schema":"dpgen.checkpoint.v1","problem":"x","params":"",)"
                   R"("dim":1,"scalar_bytes":8,"completed_tiles":3,)"
                   R"("executed":[[0]],"edges":[]})")),
               Error);
  EXPECT_THROW(runtime::load_checkpoint_json(write(
                   "dpgen_ckpt_hex.json",
                   R"({"schema":"dpgen.checkpoint.v1","problem":"x","params":"",)"
                   R"("dim":1,"scalar_bytes":8,"completed_tiles":1,)"
                   R"("executed":[[0]],)"
                   R"("edges":[{"consumer":[1],"edge":0,"payload":"zz"}]})")),
               Error);
  EXPECT_THROW(runtime::detail::hex_to_bytes("abc"), Error);  // odd length
}

TEST(CheckpointResume, PartialCheckpointResumesToIdenticalOutput) {
  // Run a case fault-tolerantly with a checkpoint file, then knock a
  // checkerboard of tiles out of the 'executed' set and resume: the
  // surviving entries are credited, the holes re-execute from logged
  // edges, and the output matches the clean run byte for byte.
  const auto cases = chaos::chaos_cases();
  const ChaosCase& c = cases[1];  // lcs
  ASSERT_EQ(c.name, "lcs");
  const std::string path =
      ::testing::TempDir() + "dpgen_checkpoint_resume.json";

  auto opt = chaos::base_options(2, 2, 1);
  opt.fault_tolerant = true;
  opt.checkpoint_json_path = path;
  opt.checkpoint_every_tiles = 1;
  const auto full = chaos::run_case(c, opt);
  const std::string want = chaos::result_lines(full, c.track_max);
  EXPECT_EQ(want, chaos::clean_lines(c, 2, 2, 1));

  runtime::CheckpointDoc doc = runtime::load_checkpoint_json(path);
  const std::size_t total = doc.executed.size();
  ASSERT_GT(total, 4u);
  doc.executed.erase(
      std::remove_if(doc.executed.begin(), doc.executed.end(),
                     [](const IntVec& t) {
                       Int sum = 0;
                       for (Int v : t) sum += v;
                       return sum % 2 == 0;  // includes the objective tile
                     }),
      doc.executed.end());
  ASSERT_LT(doc.executed.size(), total);
  ASSERT_FALSE(doc.executed.empty());
  runtime::write_checkpoint_file(path,
                                 runtime::encode_checkpoint_json(doc));

  auto resume = chaos::base_options(2, 2, 1);
  resume.fault_tolerant = true;
  resume.resume_checkpoint_path = path;
  const auto resumed = chaos::run_case(c, resume);
  EXPECT_EQ(chaos::result_lines(resumed, c.track_max), want);
  // Only the holes re-executed.
  const long long executed =
      resumed.total(&runtime::RunStats::tiles_executed);
  EXPECT_EQ(executed, static_cast<long long>(total - doc.executed.size()));
}

TEST(CheckpointResume, MismatchedProblemRejected) {
  runtime::CheckpointDoc doc;
  doc.problem = "other";
  doc.params = "1";
  doc.dim = 1;
  doc.scalar_bytes = static_cast<int>(sizeof(double));
  runtime::CheckpointStore<double> store;
  store.set_meta("mine", "1", 1);
  EXPECT_THROW(store.restore_from(doc), Error);
  doc.problem = "mine";
  doc.scalar_bytes = 4;
  EXPECT_THROW(store.restore_from(doc), Error);
}

TEST(CheckpointEngine, KillWritesCheckpointAndEventsTellTheStory) {
  const auto cases = chaos::chaos_cases();
  const ChaosCase& c = cases[2];  // edit_distance
  const std::string ckpt =
      ::testing::TempDir() + "dpgen_checkpoint_kill.json";
  const std::string events =
      ::testing::TempDir() + "dpgen_chaos_events.jsonl";
  auto opt = chaos::base_options(4, 2, 2);
  opt.fault_plan = FaultPlan::parse("kill:2@25");
  opt.checkpoint_json_path = ckpt;
  opt.checkpoint_every_tiles = 4;
  opt.monitor_path = events;
  const auto result = chaos::run_case(c, opt);
  EXPECT_EQ(chaos::result_lines(result, c.track_max),
            clean_reference(2, 2));
  EXPECT_GE(result.restarts, 1);

  // The checkpoint on disk is complete and valid.
  const runtime::CheckpointDoc doc = runtime::load_checkpoint_json(ckpt);
  EXPECT_EQ(doc.problem, c.problem.spec.problem_name());
  EXPECT_GT(doc.executed.size(), 0u);

  // The single events log spans both attempts: run_start appears per
  // attempt, and the failure/restart pair explains the gap.
  std::ifstream in(events);
  ASSERT_TRUE(in.good());
  int run_starts = 0, rank_failed = 0, restarts = 0, run_ends = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto ev = json::parse(line);
    const std::string kind = ev->at("event").as_string();
    if (kind == "run_start") ++run_starts;
    if (kind == "rank_failed") {
      ++rank_failed;
      EXPECT_EQ(static_cast<int>(ev->at("rank").as_number()), 2);
      EXPECT_FALSE(ev->at("reason").as_string().empty());
    }
    if (kind == "restart") {
      ++restarts;
      EXPECT_GE(ev->at("attempt").as_number(), 1.0);
      EXPECT_EQ(static_cast<int>(ev->at("nranks").as_number()), 3);
    }
    if (kind == "run_end") ++run_ends;
  }
  EXPECT_EQ(run_starts, 2);
  EXPECT_EQ(rank_failed, 1);
  EXPECT_EQ(restarts, 1);
  EXPECT_EQ(run_ends, 2);
}

}  // namespace
}  // namespace dpgen

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string flag = "--chaos-iters=";
    if (arg.rfind(flag, 0) == 0)
      dpgen::g_soak_iters = std::atoi(arg.c_str() + flag.size());
  }
  return RUN_ALL_TESTS();
}
