// Codegen fuzzing: randomly generated specs pushed through the full
// generate -> compile (-Werror) -> run pipeline and compared against the
// independent serial reference at every recorded location.  A small number
// of seeds (compiles are expensive); the wide behavioural sweep lives in
// test_fuzz.cpp.

#include <gtest/gtest.h>

#include "codegen/generator.hpp"
#include "codegen_util.hpp"
#include "engine/serial.hpp"
#include "fuzz_util.hpp"

namespace dpgen::codegen {
namespace {

using codegen_test::compile_program;
using codegen_test::parse_result;
using codegen_test::run_command;

class CodegenFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CodegenFuzz, GeneratedProgramMatchesSerialReference) {
  fuzz::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977);
  int ndeps = 0;
  spec::ProblemSpec s = fuzz::random_spec(rng, &ndeps);
  SCOPED_TRACE(s.to_text());
  tiling::TilingModel model(std::move(s));

  const Int N = 6;
  auto serial =
      engine::run_serial(model, {N}, fuzz::generic_kernel(ndeps));

  // Probe a handful of locations including the origin.
  GenOptions opt;
  opt.probes.push_back(IntVec(static_cast<std::size_t>(model.dim()), 0));
  int count = 0;
  for (const auto& [point, value] : serial.values) {
    if (++count % 7 == 0 && opt.probes.size() < 6)
      opt.probes.push_back(point);
  }

  std::string src_path = testing::TempDir() + "/dpgen_fuzz_" +
                         std::to_string(GetParam()) + ".cpp";
  write_program(model, src_path, opt);
  auto prog =
      compile_program(src_path, "fuzz" + std::to_string(GetParam()));
  ASSERT_TRUE(prog.ok) << prog.log;

  auto [status, out] =
      run_command(cat(prog.binary, " ", N, " --ranks=2 --threads=2"));
  ASSERT_EQ(status, 0) << out;
  for (const auto& probe : opt.probes)
    EXPECT_DOUBLE_EQ(parse_result(out, probe), serial.values.at(probe))
        << vec_to_string(probe) << "\n" << out;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodegenFuzz, ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace dpgen::codegen
