// Codegen fuzzing: randomly generated specs pushed through the full
// generate -> compile (-Werror) -> run pipeline and compared against the
// independent serial reference at every recorded location — once with the
// default (pass-free) emission and once with a seed-chosen optimization
// pass subset, whose probe lines must be byte-identical to the baseline's.
// A small number of seeds (compiles are expensive); the wide behavioural
// sweep lives in test_fuzz.cpp.

#include <gtest/gtest.h>

#include <iterator>
#include <sstream>

#include "codegen/generator.hpp"
#include "codegen_util.hpp"
#include "engine/serial.hpp"
#include "fuzz_util.hpp"

namespace dpgen::codegen {
namespace {

using codegen_test::compile_program;
using codegen_test::parse_result;
using codegen_test::run_command;

/// The deterministic probe lines of a run, for exact comparison.
std::string result_lines(const std::string& out) {
  std::istringstream ss(out);
  std::string line, acc;
  while (std::getline(ss, line))
    if (line.rfind("RESULT ", 0) == 0 || line.rfind("MAX ", 0) == 0)
      acc += line + "\n";
  return acc;
}

class CodegenFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CodegenFuzz, GeneratedProgramMatchesSerialReference) {
  fuzz::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977);
  int ndeps = 0;
  spec::ProblemSpec s = fuzz::random_spec(rng, &ndeps);
  SCOPED_TRACE(s.to_text());
  tiling::TilingModel model(std::move(s));

  const Int N = 6;
  auto serial =
      engine::run_serial(model, {N}, fuzz::generic_kernel(ndeps));

  // Probe a handful of locations including the origin.
  GenOptions opt;
  opt.probes.push_back(IntVec(static_cast<std::size_t>(model.dim()), 0));
  int count = 0;
  for (const auto& [point, value] : serial.values) {
    if (++count % 7 == 0 && opt.probes.size() < 6)
      opt.probes.push_back(point);
  }

  std::string src_path = testing::TempDir() + "/dpgen_fuzz_" +
                         std::to_string(GetParam()) + ".cpp";
  write_program(model, src_path, opt);
  auto prog =
      compile_program(src_path, "fuzz" + std::to_string(GetParam()));
  ASSERT_TRUE(prog.ok) << prog.log;

  auto [status, out] =
      run_command(cat(prog.binary, " ", N, " --ranks=2 --threads=2"));
  ASSERT_EQ(status, 0) << out;
  for (const auto& probe : opt.probes)
    EXPECT_DOUBLE_EQ(parse_result(out, probe), serial.values.at(probe))
        << vec_to_string(probe) << "\n" << out;

  // The same spec through a randomly chosen pass subset: the probe lines
  // must reproduce the pass-free program's bytes exactly, on the random
  // geometry the fuzzer produced (not just the hand-built families).
  static const char* kSubsets[] = {
      "canonicalize",        "unroll:2",          "layout",
      "canonicalize,layout", "canonicalize,unroll:5", "full"};
  GenOptions popt = opt;
  popt.passes = PassPipeline::parse(
      kSubsets[rng.range(0, static_cast<Int>(std::size(kSubsets)) - 1)]);
  SCOPED_TRACE(cat("passes=", popt.passes.to_string()));
  std::string pass_src = testing::TempDir() + "/dpgen_fuzz_" +
                         std::to_string(GetParam()) + "_passes.cpp";
  write_program(model, pass_src, popt);
  auto pass_prog = compile_program(
      pass_src, cat("fuzz", GetParam(), "_passes"));
  ASSERT_TRUE(pass_prog.ok) << pass_prog.log;
  auto [pstatus, pout] =
      run_command(cat(pass_prog.binary, " ", N, " --ranks=2 --threads=2"));
  ASSERT_EQ(pstatus, 0) << pout;
  EXPECT_EQ(result_lines(pout), result_lines(out));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodegenFuzz, ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace dpgen::codegen
