// Tests for solution recovery / traceback (paper VII.A): saved tile edges
// plus on-demand tile recomputation must reproduce every location's value,
// and support real tracebacks (LCS string reconstruction, bandit policy
// extraction) without ever holding the full iteration space.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "engine/decisions.hpp"
#include "engine/interpret.hpp"
#include "engine/recovery.hpp"
#include "engine/serial.hpp"
#include "problems/problems.hpp"

namespace dpgen::engine {
namespace {

TEST(Recovery, MatchesRecordAllEverywhere) {
  problems::Problem p = problems::bandit2(4);
  tiling::TilingModel model(p.spec);
  IntVec params{10};

  EngineOptions opt;
  opt.ranks = 2;
  opt.record_all = true;
  auto full = run(model, params, p.kernel, opt);

  EngineOptions ropt;
  ropt.ranks = 2;
  Recovery rec(model, params, p.kernel, ropt);
  for (const auto& [point, value] : full.values)
    EXPECT_DOUBLE_EQ(rec.value_at(point), value) << vec_to_string(point);
}

TEST(Recovery, CachesTiles) {
  problems::Problem p = problems::bandit2(4);
  tiling::TilingModel model(p.spec);
  Recovery rec(model, {10}, p.kernel);
  (void)rec.value_at({0, 0, 0, 0});
  long long after_first = rec.tiles_recomputed();
  EXPECT_EQ(after_first, 1);
  (void)rec.value_at({1, 1, 0, 0});  // same tile (width 4)
  EXPECT_EQ(rec.tiles_recomputed(), 1);
  (void)rec.value_at({5, 0, 0, 0});  // different tile
  EXPECT_EQ(rec.tiles_recomputed(), 2);
}

TEST(Recovery, RejectsPointsOutsideSpace) {
  problems::Problem p = problems::bandit2(4);
  tiling::TilingModel model(p.spec);
  Recovery rec(model, {6}, p.kernel);
  EXPECT_FALSE(rec.contains({7, 0, 0, 0}));
  EXPECT_THROW(rec.value_at({7, 0, 0, 0}), Error);
  EXPECT_THROW(rec.value_at({-1, 0, 0, 0}), Error);
  EXPECT_TRUE(rec.contains({3, 3, 0, 0}));
}

#ifndef NDEBUG
TEST(Recovery, ConcurrentValueAtIsCaughtInDebugBuilds) {
  // value_at is documented not thread-safe: it fills the tile cache with
  // no lock.  The debug-build reentrancy guard must turn a concurrent
  // call into a loud Error instead of silent cache corruption.  The
  // overlap is made deterministic by intruding from inside the kernel,
  // which runs while the first value_at is recomputing its tile.
  problems::Problem p = problems::bandit2(4);
  tiling::TilingModel model(p.spec);
  std::atomic<bool> armed{false};
  std::atomic<bool> fired{false};
  Recovery* rec_ptr = nullptr;
  CenterFn kernel = [&, inner = p.kernel](const Cell& c) {
    if (armed.load() && !fired.exchange(true)) {
      std::thread intruder([&] {
        EXPECT_THROW((void)rec_ptr->value_at({0, 0, 0, 0}), Error);
      });
      intruder.join();
    }
    inner(c);
  };
  Recovery rec(model, {8}, kernel);
  rec_ptr = &rec;
  armed.store(true);
  // Uncached point: forces a recompute, whose kernel launches the
  // intruder while this call holds the guard.
  (void)rec.value_at({0, 0, 0, 0});
  EXPECT_TRUE(fired.load());
  // The guard cleared on exit: single-threaded use keeps working.
  EXPECT_NO_THROW((void)rec.value_at({4, 0, 0, 0}));
}
#endif

TEST(Recovery, EdgeMemoryIsSublinear) {
  // Stored edges are O(n^{d-1}) packed scalars, far below the n^d space.
  problems::Problem p = problems::bandit2(4);
  tiling::TilingModel model(p.spec);
  IntVec params{24};
  Recovery rec(model, params, p.kernel);
  EXPECT_GT(rec.edges_stored(), 0);
  // Edges count tiles' incoming messages, not locations.
  EXPECT_LT(rec.edges_stored(), model.total_cells(params) / 10);
}

TEST(Recovery, LcsTracebackReconstructsASubsequence) {
  std::vector<std::string> seqs{"ABCBDAB", "BDCABA"};
  problems::Problem p = problems::lcs(seqs, 3);
  tiling::TilingModel model(p.spec);
  IntVec params = problems::sequence_params(seqs);
  Recovery rec(model, params, p.kernel);

  double total = rec.value_at({0, 0});
  EXPECT_DOUBLE_EQ(total, 4.0);

  // Walk the DP: at (i, j), if both chars match and taking them is
  // consistent with the value, take them; otherwise move along the arm
  // that preserves the value.
  std::string lcs;
  Int i = 0, j = 0;
  const Int l1 = params[0], l2 = params[1];
  while (i < l1 && j < l2) {
    double here = rec.value_at({i, j});
    if (here == 0.0) break;
    if (seqs[0][static_cast<std::size_t>(i)] ==
            seqs[1][static_cast<std::size_t>(j)] &&
        rec.value_at({i + 1, j + 1}) == here - 1.0) {
      lcs += seqs[0][static_cast<std::size_t>(i)];
      ++i;
      ++j;
    } else if (rec.value_at({i + 1, j}) == here) {
      ++i;
    } else {
      ++j;
    }
  }
  EXPECT_EQ(lcs.size(), 4u);
  // Verify it is a common subsequence of both strings.
  for (const auto& s : seqs) {
    std::size_t pos = 0;
    for (char c : lcs) {
      pos = s.find(c, pos);
      ASSERT_NE(pos, std::string::npos) << lcs << " not in " << s;
      ++pos;
    }
  }
}

TEST(Recovery, BanditPolicyExtraction) {
  // Extract the optimal first-pull decision: compare the two arms' action
  // values at the origin.  By symmetry of the uniform priors both arms
  // are equally good at (0,0,0,0); after one success on arm 1, arm 1 must
  // be (weakly) preferred.
  problems::Problem p = problems::bandit2(4);
  tiling::TilingModel model(p.spec);
  Recovery rec(model, {10}, p.kernel);

  auto action_values = [&](IntVec s) {
    double p1 = static_cast<double>(s[0] + 1) / (s[0] + s[1] + 2);
    double p2 = static_cast<double>(s[2] + 1) / (s[2] + s[3] + 2);
    double v1 = p1 * (1.0 + rec.value_at({s[0] + 1, s[1], s[2], s[3]})) +
                (1.0 - p1) * rec.value_at({s[0], s[1] + 1, s[2], s[3]});
    double v2 = p2 * (1.0 + rec.value_at({s[0], s[1], s[2] + 1, s[3]})) +
                (1.0 - p2) * rec.value_at({s[0], s[1], s[2], s[3] + 1});
    return std::make_pair(v1, v2);
  };
  auto [v1_origin, v2_origin] = action_values({0, 0, 0, 0});
  EXPECT_NEAR(v1_origin, v2_origin, 1e-12);  // symmetric start
  EXPECT_NEAR(std::max(v1_origin, v2_origin), rec.value_at({0, 0, 0, 0}),
              1e-12);
  auto [v1_after, v2_after] = action_values({1, 0, 0, 0});
  EXPECT_GE(v1_after, v2_after - 1e-12);  // success on arm 1 favours arm 1
}

TEST(SerialReference, AgreesWithEngineOnProblems) {
  for (auto& [prob, params] :
       std::vector<std::pair<problems::Problem, IntVec>>{
           {problems::bandit2(3), {8}},
           {problems::lcs({"ACGTAC", "GTTACG"}, 3),
            problems::sequence_params({"ACGTAC", "GTTACG"})}}) {
    tiling::TilingModel model(prob.spec);
    auto serial = run_serial(model, params, prob.kernel);
    EngineOptions opt;
    opt.ranks = 2;
    opt.threads = 2;
    opt.record_all = true;
    auto tiled = run(model, params, prob.kernel, opt);
    ASSERT_EQ(serial.values.size(), tiled.values.size());
    for (const auto& [point, value] : serial.values)
      EXPECT_DOUBLE_EQ(tiled.at(point), value)
          << prob.spec.problem_name() << " at " << vec_to_string(point);
  }
}

TEST(SerialReference, MatchesOracleObjective) {
  problems::Problem p = problems::bandit2(3);
  tiling::TilingModel model(p.spec);
  auto serial = run_serial(model, {9}, p.kernel);
  EXPECT_NEAR(serial.at(p.objective), p.reference({9}), 1e-12);
}

/// bandit2 kernel that also reports the chosen arm (0 = terminal,
/// 1 = arm one, 2 = arm two) through the decision slot.
engine::CenterFn bandit2_decision_kernel() {
  return [](const Cell& c) {
    if (!(c.valid[0] && c.valid[1] && c.valid[2] && c.valid[3])) {
      c.V[c.loc] = 0.0;
      *c.decision = 0;
      return;
    }
    double p1 = static_cast<double>(c.x[0] + 1) / (c.x[0] + c.x[1] + 2);
    double p2 = static_cast<double>(c.x[2] + 1) / (c.x[2] + c.x[3] + 2);
    double v1 =
        p1 * (1.0 + c.V[c.loc_dep[0]]) + (1.0 - p1) * c.V[c.loc_dep[1]];
    double v2 =
        p2 * (1.0 + c.V[c.loc_dep[2]]) + (1.0 - p2) * c.V[c.loc_dep[3]];
    c.V[c.loc] = std::max(v1, v2);
    *c.decision = v1 >= v2 ? 1 : 2;
  };
}

TEST(DecisionMatrix, RleLogCoversEveryLocationAndCompresses) {
  problems::Problem p = problems::bandit2(4);
  tiling::TilingModel model(p.spec);
  IntVec params{14};
  DecisionLog log;
  EngineOptions opt;
  opt.ranks = 2;
  opt.threads = 2;
  opt.decision_log = &log;
  run(model, params, bandit2_decision_kernel(), opt);
  EXPECT_EQ(log.total_cells(), model.total_cells(params));
  // Optimal bandit policies have constant runs, so RLE beats one byte per
  // location (paper VII.A's premise); the ratio grows with tile width and
  // problem size as runs stop being cut by tile boundaries.
  EXPECT_GT(log.compression_ratio(), 2.0);
}

TEST(DecisionMatrix, DecisionsMatchActionValues) {
  problems::Problem p = problems::bandit2(4);
  tiling::TilingModel model(p.spec);
  IntVec params{10};
  DecisionLog log;
  EngineOptions opt;
  opt.decision_log = &log;
  run(model, params, bandit2_decision_kernel(), opt);

  // Recompute the action values independently via Recovery and check the
  // logged decision is a genuine argmax at a sample of interior states.
  Recovery rec(model, params, p.kernel);
  for (IntVec s : std::vector<IntVec>{
           {0, 0, 0, 0}, {1, 0, 0, 0}, {0, 2, 1, 0}, {2, 1, 0, 3}}) {
    double p1 = static_cast<double>(s[0] + 1) / (s[0] + s[1] + 2);
    double p2 = static_cast<double>(s[2] + 1) / (s[2] + s[3] + 2);
    double v1 = p1 * (1.0 + rec.value_at({s[0] + 1, s[1], s[2], s[3]})) +
                (1.0 - p1) * rec.value_at({s[0], s[1] + 1, s[2], s[3]});
    double v2 = p2 * (1.0 + rec.value_at({s[0], s[1], s[2] + 1, s[3]})) +
                (1.0 - p2) * rec.value_at({s[0], s[1], s[2], s[3] + 1});
    unsigned char got = log.decision_at(model, params, s);
    unsigned char expected = v1 >= v2 ? 1 : 2;
    EXPECT_EQ(got, expected) << vec_to_string(s);
  }
  // Terminal states carry decision 0.
  EXPECT_EQ(log.decision_at(model, params, {10, 0, 0, 0}), 0);
}

TEST(DecisionMatrix, UnknownTileRejected) {
  problems::Problem p = problems::bandit2(4);
  tiling::TilingModel model(p.spec);
  DecisionLog log;  // empty: nothing recorded
  EXPECT_THROW(log.decision_at(model, {10}, {0, 0, 0, 0}), Error);
}

TEST(FailureInjection, UnpackLengthMismatchIsDetected) {
  // A corrupted edge payload (wrong element count) must fail loudly in
  // the unpack protocol rather than silently misalign ghost cells.
  problems::Problem p = problems::bandit2(4);
  tiling::TilingModel model(p.spec);
  IntVec params{8};
  std::vector<double> buffer(static_cast<std::size_t>(model.buffer_size()),
                             0.0);
  // Find a tile with an in-space dependency and feed it a short payload.
  IntVec consumer{0, 0, 0, 0};
  auto deps = model.deps_of(params, consumer);
  ASSERT_FALSE(deps.empty());
  int edge = deps[0];
  IntVec producer =
      vec_add(consumer, model.edges()[static_cast<std::size_t>(edge)].offset);
  std::vector<double> payload{1.0};  // far fewer than the slab needs
  EXPECT_THROW(
      detail::unpack_interpreted(model, params, edge, producer,
                                 payload.data(),
                                 static_cast<Int>(payload.size()),
                                 buffer.data()),
      Error);
}

TEST(FailureInjection, PackThenUnpackRoundTripsExactly) {
  problems::Problem p = problems::bandit2(3);
  tiling::TilingModel model(p.spec);
  IntVec params{9};
  // Fill a producer tile buffer with distinct values, pack each edge, then
  // unpack into a consumer buffer and check the ghost cells receive the
  // packed values in order.
  std::vector<double> producer_buf(
      static_cast<std::size_t>(model.buffer_size()));
  for (std::size_t i = 0; i < producer_buf.size(); ++i)
    producer_buf[i] = static_cast<double>(i) + 0.25;
  IntVec producer{1, 0, 0, 0};
  ASSERT_TRUE(model.tile_in_space(params, producer));
  for (int e = 0; e < model.num_edges(); ++e) {
    IntVec consumer =
        vec_sub(producer, model.edges()[static_cast<std::size_t>(e)].offset);
    if (!model.tile_in_space(params, consumer)) continue;
    std::vector<double> payload;
    Int n = detail::pack_interpreted(model, params, e, producer,
                                     producer_buf.data(), payload);
    ASSERT_EQ(n, static_cast<Int>(payload.size()));
    std::vector<double> consumer_buf(
        static_cast<std::size_t>(model.buffer_size()), -1.0);
    detail::unpack_interpreted(model, params, e, producer, payload.data(), n,
                               consumer_buf.data());
    // Every packed value must appear in the consumer buffer.
    for (double v : payload)
      EXPECT_NE(std::find(consumer_buf.begin(), consumer_buf.end(), v),
                consumer_buf.end());
  }
}

TEST(QueueShards, AllShardCountsGiveSameResults) {
  problems::Problem p = problems::bandit2(3);
  tiling::TilingModel model(p.spec);
  double expected = p.reference({11});
  for (int shards : {1, 2, 4, 7}) {
    EngineOptions opt;
    opt.ranks = 2;
    opt.threads = 3;
    opt.queue_shards = shards;
    opt.probes = {p.objective};
    auto result = run(model, {11}, p.kernel, opt);
    EXPECT_NEAR(result.at(p.objective), expected, 1e-12)
        << shards << " shards";
  }
}

}  // namespace
}  // namespace dpgen::engine
