// Tests for the code generator: emission helpers, structural checks on the
// generated source, and a full end-to-end cycle — generate, compile with
// the host toolchain (OpenMP enabled), run as a hybrid program, and compare
// the printed results against the serial oracle and the engine.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "codegen/emit.hpp"
#include "codegen/generator.hpp"
#include "codegen_util.hpp"
#include "json_util.hpp"
#include "obs/trace.hpp"
#include "poly/parse.hpp"
#include "problems/problems.hpp"
#include "support/json_schema.hpp"
#include "support/str.hpp"

namespace dpgen::codegen {
namespace {

TEST(EmitExpr, RendersAffineExpressions) {
  std::vector<std::string> names{"N", "x"};
  poly::Vars vars({"N", "x"});
  EXPECT_EQ(expr_cpp(poly::parse_expr("2*x - N + 3", vars), names),
            "-N + 2LL*x + 3LL");
  EXPECT_EQ(expr_cpp(poly::parse_expr("x", vars), names), "x");
  EXPECT_EQ(expr_cpp(poly::LinExpr(2), names), "0LL");
  EXPECT_EQ(expr_cpp(poly::LinExpr(2, -7), names), "-7LL");
}

TEST(EmitBound, LowerAndUpperBounds) {
  std::vector<std::string> names{"N", "x"};
  poly::Bound lower;  // 2x - N >= 0  ->  x >= ceil(N/2)
  lower.coef = 2;
  lower.rest = poly::LinExpr(2);
  lower.rest.set_coef(0, -1);
  EXPECT_EQ(bound_cpp(lower, names), "dp_ceildiv(N, 2LL)");

  poly::Bound upper;  // -x + N >= 0  ->  x <= N
  upper.coef = -1;
  upper.rest = poly::LinExpr(2);
  upper.rest.set_coef(0, 1);
  EXPECT_EQ(bound_cpp(upper, names), "(N)");
}

TEST(EmitSystem, ConjunctionOfConstraints) {
  poly::Vars vars({"x"});
  poly::System s(vars);
  s.add(poly::parse_constraint("x >= 0", vars));
  s.add(poly::parse_constraint("x <= 5", vars));
  std::string test = system_test_cpp(s, {"x"});
  EXPECT_NE(test.find("(x) >= 0"), std::string::npos);
  EXPECT_NE(test.find(" && "), std::string::npos);
  EXPECT_EQ(system_test_cpp(poly::System(vars), {"x"}), "true");
}

TEST(EmitWriter, IndentationAndBlocks) {
  Writer w;
  w.line("a;");
  {
    Block b(w, "if (x)");
    w.line("b;");
  }
  EXPECT_EQ(w.str(), "a;\nif (x) {\n  b;\n}\n");
}

TEST(GeneratedSource, ContainsPaperArtifacts) {
  problems::Problem p = problems::bandit2(8);
  tiling::TilingModel model(p.spec);
  std::string src = generate_program(model);
  // The paper's user-visible symbols (IV.B).
  EXPECT_NE(src.find("loc_r1"), std::string::npos);
  EXPECT_NE(src.find("is_valid_r1"), std::string::npos);
  // The user's center code, inserted verbatim.
  EXPECT_NE(src.find("V[loc] = v1 > v2 ? v1 : v2;"), std::string::npos);
  // Structural pieces: tile space test, pack/unpack switches, balancer.
  EXPECT_NE(src.find("dp_tile_exists"), std::string::npos);
  EXPECT_NE(src.find("switch (dp_e)"), std::string::npos);
  EXPECT_NE(src.find("dp_cell_count_lb"), std::string::npos);
  // The 4-simplex total work is a clean Ehrhart polynomial: the fit must
  // have succeeded (period 1).
  EXPECT_NE(src.find("Ehrhart quasi-polynomial, period 1"),
            std::string::npos);
  // Descending loops for the positive-dependency dimensions (Fig. 3).
  EXPECT_NE(src.find("--i_s1"), std::string::npos);
}

TEST(GeneratedSource, SharedValidityChecksComputedOnce) {
  // Paper IV.G: bandit2's four dependencies all check the same shifted sum
  // constraint, so the generated code must evaluate it exactly once.
  problems::Problem p = problems::bandit2(8);
  tiling::TilingModel model(p.spec);
  std::string src = generate_program(model);
  // The shared check expression appears once; all four flags reference it.
  std::size_t checks = 0;
  for (std::size_t pos = src.find("const bool dp_chk_");
       pos != std::string::npos;
       pos = src.find("const bool dp_chk_", pos + 1))
    ++checks;
  EXPECT_EQ(checks, 1u);
  EXPECT_NE(src.find("const bool is_valid_r4 = dp_chk_0;"),
            std::string::npos);
}

TEST(GeneratedSource, EchoesTheSpecForProvenance) {
  problems::Problem p = problems::bandit2(8);
  tiling::TilingModel model(p.spec);
  std::string src = generate_program(model);
  EXPECT_NE(src.find("//   problem bandit2"), std::string::npos);
  EXPECT_NE(src.find("//   dep r1 = (1, 0, 0, 0)"), std::string::npos);
  EXPECT_NE(src.find("//   tilewidths 8 8 8 8"), std::string::npos);
}

TEST(GeneratedSource, ProbeDefaultsToOrigin) {
  problems::Problem p = problems::bandit2(4);
  tiling::TilingModel model(p.spec);
  std::string src = generate_program(model);
  EXPECT_NE(src.find("kProbes[kNumProbes][kDim] = {{0LL, 0LL, 0LL, 0LL}}"),
            std::string::npos);
}

TEST(GeneratedSource, WriteProgramCreatesFile) {
  problems::Problem p = problems::bandit2(4);
  tiling::TilingModel model(p.spec);
  std::string path = testing::TempDir() + "/dpgen_write_test.cpp";
  write_program(model, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("int main(int argc, char** argv)"),
            std::string::npos);
}

// ---- end-to-end: generate -> compile -> run -> compare -------------------

using codegen_test::compile_program;
using codegen_test::parse_result;
using codegen_test::run_command;

TEST(EndToEnd, GeneratedBandit2MatchesOracle) {
  problems::Problem p = problems::bandit2(4);
  tiling::TilingModel model(p.spec);
  std::string src_path = testing::TempDir() + "/dpgen_bandit2_gen.cpp";
  write_program(model, src_path);

  auto prog = compile_program(src_path, "bandit2");
  ASSERT_TRUE(prog.ok) << "generated program failed to compile:\n"
                       << prog.log;

  const Int N = 11;
  double expected = p.reference({N});
  // Single rank, single thread.
  {
    auto [status, out] = run_command(cat(prog.binary, " ", N));
    ASSERT_EQ(status, 0) << out;
    EXPECT_NEAR(parse_result(out, p.objective), expected, 1e-12) << out;
    EXPECT_NE(out.find("STATS tiles="), std::string::npos);
    // The emitted Ehrhart polynomial: total work of the 4-simplex is
    // C(N+4, 4) = 1365 at N = 11.
    EXPECT_NE(out.find("total_work=1365"), std::string::npos) << out;
  }
  // Degenerate parameters: an empty iteration space must terminate
  // cleanly with no results.
  {
    auto [status, out] = run_command(cat(prog.binary, " -1"));
    ASSERT_EQ(status, 0) << out;
    EXPECT_EQ(out.find("RESULT"), std::string::npos) << out;
  }
  // Hybrid: 2 ranks x 2 OpenMP threads.
  {
    auto [status, out] =
        run_command(cat(prog.binary, " ", N, " --ranks=2 --threads=2"));
    ASSERT_EQ(status, 0) << out;
    EXPECT_NEAR(parse_result(out, p.objective), expected, 1e-12) << out;
  }
  // Level-set priority policy.
  {
    auto [status, out] =
        run_command(cat(prog.binary, " ", N, " --policy=level"));
    ASSERT_EQ(status, 0) << out;
    EXPECT_NEAR(parse_result(out, p.objective), expected, 1e-12) << out;
  }
}

TEST(EndToEnd, GeneratedLcsMatchesOracle) {
  std::vector<std::string> seqs{"ABCBDAB", "BDCABA"};
  problems::Problem p = problems::lcs(seqs, 4);
  tiling::TilingModel model(p.spec);
  std::string src_path = testing::TempDir() + "/dpgen_lcs_gen.cpp";
  write_program(model, src_path);

  auto prog = compile_program(src_path, "lcs");
  ASSERT_TRUE(prog.ok) << "generated program failed to compile:\n"
                       << prog.log;

  IntVec params = problems::sequence_params(seqs);
  std::string args;
  for (Int v : params) args += " " + std::to_string(v);
  auto [status, out] =
      run_command(cat(prog.binary, args, " --ranks=2 --threads=2"));
  ASSERT_EQ(status, 0) << out;
  EXPECT_DOUBLE_EQ(parse_result(out, p.objective), 4.0) << out;

  // The generated program's --trace/--metrics/--report flags produce a
  // loadable Chrome trace (one tile_execute X event per tile), a metrics
  // dump, and a schema-valid performance report.
  if (obs::kTraceCompiled) {
    std::string trace = testing::TempDir() + "/dpgen_lcs_trace.json";
    std::string metrics = testing::TempDir() + "/dpgen_lcs_metrics.json";
    std::string report = testing::TempDir() + "/dpgen_lcs_report.json";
    auto [tstatus, tout] = run_command(cat(
        prog.binary, args, " --ranks=2 --threads=2 --trace=", trace,
        " --metrics=", metrics, " --report=", report));
    ASSERT_EQ(tstatus, 0) << tout;
    {
      std::ifstream rf(report);
      ASSERT_TRUE(rf.good()) << "generated program wrote no report file";
      std::stringstream rs;
      rs << rf.rdbuf();
      auto rdoc = json::parse(rs.str());
      EXPECT_EQ(rdoc->at("schema").as_string(), "dpgen.report.v1");
      EXPECT_EQ(rdoc->at("source").as_string(), "generated");
      EXPECT_EQ(rdoc->at("problem").as_string(), "lcs2");
      EXPECT_EQ(rdoc->at("nranks").as_number(), 2);
      EXPECT_GE(rdoc->at("critical_path").at("length").as_number(), 1);
      std::ifstream sf(DPGEN_SRC_DIR "/../tools/report_schema.json");
      ASSERT_TRUE(sf.good());
      std::stringstream schema_text;
      schema_text << sf.rdbuf();
      auto schema = json::parse(schema_text.str());
      for (const auto& e : json::validate(*schema, *rdoc))
        ADD_FAILURE() << e;
      std::remove(report.c_str());
    }
    std::ifstream tf(trace);
    ASSERT_TRUE(tf.good()) << "generated program wrote no trace file";
    std::stringstream ss;
    ss << tf.rdbuf();
    auto doc = json::parse(ss.str());
    long long tile_events = 0;
    for (const auto& ev : doc->at("traceEvents").as_array())
      if (ev->at("ph").as_string() == "X" &&
          ev->at("cat").as_string() == "tile_execute")
        ++tile_events;
    EXPECT_EQ(tile_events, model.total_tiles(params));
    std::ifstream mf(metrics);
    ASSERT_TRUE(mf.good()) << "generated program wrote no metrics file";
    std::stringstream ms;
    ms << mf.rdbuf();
    EXPECT_NO_THROW(json::parse(ms.str()));
    std::remove(trace.c_str());
    std::remove(metrics.c_str());
  }

  // Causal message tracing: --msgtrace writes a dpgen.msgtrace.v1 document
  // whose per-link conservation accounts every sequence number, and the
  // run prints a MSGTRACE summary line.
  if (obs::kTraceCompiled) {
    std::string mt = testing::TempDir() + "/dpgen_lcs_msgtrace.json";
    auto [mtstatus, mtout] = run_command(
        cat(prog.binary, args, " --ranks=2 --threads=2 --msgtrace=", mt));
    ASSERT_EQ(mtstatus, 0) << mtout;
    EXPECT_DOUBLE_EQ(parse_result(mtout, p.objective), 4.0) << mtout;
    EXPECT_NE(mtout.find("MSGTRACE records="), std::string::npos) << mtout;
    std::ifstream mtf(mt);
    ASSERT_TRUE(mtf.good()) << "generated program wrote no msgtrace file";
    std::stringstream mts;
    mts << mtf.rdbuf();
    auto mtdoc = json::parse(mts.str());
    EXPECT_EQ(mtdoc->at("schema").as_string(), "dpgen.msgtrace.v1");
    EXPECT_EQ(mtdoc->at("source").as_string(), "generated");
    const json::Value& cons = mtdoc->at("conservation");
    EXPECT_EQ(cons.at("total_sent").as_number(),
              cons.at("total_delivered").as_number());
    EXPECT_TRUE(cons.at("accounted").boolean);
    std::ifstream msf(DPGEN_SRC_DIR "/../tools/msgtrace_schema.json");
    ASSERT_TRUE(msf.good());
    std::stringstream mschema_text;
    mschema_text << msf.rdbuf();
    auto mschema = json::parse(mschema_text.str());
    for (const auto& e : json::validate(*mschema, *mtdoc))
      ADD_FAILURE() << e;
    std::remove(mt.c_str());
  }

  // Live monitoring: --monitor streams dpgen.events.v1 heartbeats, the
  // run prints a MONITOR summary, and on a balanced in-process run the
  // straggler detector stays quiet.
  {
    std::string events = testing::TempDir() + "/dpgen_lcs_events.jsonl";
    auto [mstatus, mout] =
        run_command(cat(prog.binary, args, " --ranks=2 --threads=2",
                        " --monitor=", events, " --monitor-interval=0.002"));
    ASSERT_EQ(mstatus, 0) << mout;
    EXPECT_DOUBLE_EQ(parse_result(mout, p.objective), 4.0) << mout;
    EXPECT_NE(mout.find("MONITOR heartbeats="), std::string::npos) << mout;
    EXPECT_NE(mout.find("stragglers=0"), std::string::npos) << mout;

    std::ifstream sf(DPGEN_SRC_DIR "/../tools/events_schema.json");
    ASSERT_TRUE(sf.good());
    std::stringstream schema_text;
    schema_text << sf.rdbuf();
    auto schema = json::parse(schema_text.str());

    std::ifstream ef(events);
    ASSERT_TRUE(ef.good()) << "generated program wrote no events file";
    std::string line, first, last;
    long long heartbeats = 0;
    while (std::getline(ef, line)) {
      if (first.empty()) first = line;
      last = line;
      auto ev = json::parse(line);
      for (const auto& e : json::validate(*schema, *ev)) ADD_FAILURE() << e;
      if (ev->at("event").as_string() == "heartbeat") ++heartbeats;
    }
    EXPECT_NE(first.find("run_start"), std::string::npos) << first;
    EXPECT_NE(first.find("\"generated\""), std::string::npos) << first;
    EXPECT_NE(last.find("run_end"), std::string::npos) << last;
    EXPECT_GE(heartbeats, 1);
    std::remove(events.c_str());
  }
}

TEST(EndToEnd, GeneratedDelayedBanditMatchesOracle) {
  // 6-dimensional wedge space (coupled constraints s_i + f_i <= u_i):
  // exercises multi-check validity flags and non-box pack clipping in
  // generated code.
  problems::Problem p = problems::bandit2_delay(3);
  tiling::TilingModel model(p.spec);
  std::string src_path = testing::TempDir() + "/dpgen_delay_gen.cpp";
  write_program(model, src_path);

  auto prog = compile_program(src_path, "delay");
  ASSERT_TRUE(prog.ok) << prog.log;

  const Int N = 6;
  auto [status, out] =
      run_command(cat(prog.binary, " ", N, " --ranks=2 --threads=2"));
  ASSERT_EQ(status, 0) << out;
  EXPECT_NEAR(parse_result(out, p.objective), p.reference({N}), 1e-12)
      << out;
}

TEST(EndToEnd, GeneratedMsa3WithEmbeddedSequences) {
  // The sequences live in the generated program's global code; validates
  // the global-fragment path and the 7-dependency subset recurrence.
  std::vector<std::string> seqs{problems::random_dna(9, 7),
                                problems::random_dna(8, 8),
                                problems::random_dna(10, 9)};
  problems::Problem p = problems::msa(seqs, 4);
  tiling::TilingModel model(p.spec);
  std::string src_path = testing::TempDir() + "/dpgen_msa3_gen.cpp";
  write_program(model, src_path);

  auto prog = compile_program(src_path, "msa3");
  ASSERT_TRUE(prog.ok) << prog.log;

  IntVec params = problems::sequence_params(seqs);
  std::string args;
  for (Int v : params) args += " " + std::to_string(v);
  auto [status, out] = run_command(cat(prog.binary, args, " --threads=2"));
  ASSERT_EQ(status, 0) << out;
  EXPECT_NEAR(parse_result(out, p.objective), p.reference(params), 1e-12)
      << out;
}

TEST(EndToEnd, GeneratedFloatScalarProgram) {
  // The paper: "the data type of the state array is adjustable in the
  // generated program".  A float-typed countdown must compile and count.
  spec::ProblemSpec s;
  s.name("count_f")
      .params({"N"})
      .vars({"x"})
      .array("acc", "float")
      .constraint("x >= 0")
      .constraint("x <= N")
      .dep("r1", {1})
      .load_balance({"x"})
      .tile_widths({4})
      .center_code("acc[loc] = is_valid_r1 ? acc[loc_r1] + 1.0f : 1.0f;");
  tiling::TilingModel model(std::move(s));
  std::string src_path = testing::TempDir() + "/dpgen_float_gen.cpp";
  write_program(model, src_path);
  std::ifstream in(src_path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("using dp_scalar = float;"), std::string::npos);

  auto prog = compile_program(src_path, "floats");
  ASSERT_TRUE(prog.ok) << prog.log;
  auto [status, out] = run_command(cat(prog.binary, " 25 --ranks=2"));
  ASSERT_EQ(status, 0) << out;
  EXPECT_DOUBLE_EQ(parse_result(out, {0}), 26.0) << out;
}

TEST(EndToEnd, GeneratedNegativeDepProgram) {
  // Negative template vectors: ascending loops, ghost cells on the low
  // side, dependency offsets toward smaller tiles.
  spec::ProblemSpec s;
  s.name("forward")
      .params({"N"})
      .vars({"x"})
      .constraint("x >= 0")
      .constraint("x <= N")
      .dep("r1", {-2})
      .load_balance({"x"})
      .tile_widths({3})
      .center_code("V[loc] = is_valid_r1 ? V[loc_r1] + 1.0 : 1.0;");
  tiling::TilingModel model(std::move(s));
  std::string src_path = testing::TempDir() + "/dpgen_neg_gen.cpp";
  codegen::GenOptions gen_opt;
  gen_opt.probes = {{20}};
  write_program(model, src_path, gen_opt);
  auto prog = compile_program(src_path, "neg");
  ASSERT_TRUE(prog.ok) << prog.log;
  auto [status, out] = run_command(cat(prog.binary, " 20 --ranks=2"));
  ASSERT_EQ(status, 0) << out;
  // f(x) = f(x-2) + 1, f(0)=f(1)=1 -> f(20) = 11.
  EXPECT_DOUBLE_EQ(parse_result(out, {20}), 11.0) << out;
}

TEST(EndToEnd, GeneratedSeamCarvingWithMixedLateralDeps) {
  // Strip-tiled trellis with mixed-sign lateral dependencies and a helper
  // function in the user's global code.
  problems::Problem p = problems::seam_carving(6);
  tiling::TilingModel model(p.spec);
  std::string src_path = testing::TempDir() + "/dpgen_seam_gen.cpp";
  write_program(model, src_path);
  auto prog = compile_program(src_path, "seam");
  ASSERT_TRUE(prog.ok) << prog.log;
  IntVec params{14, 17};
  auto [status, out] = run_command(
      cat(prog.binary, " ", params[0], " ", params[1], " --ranks=2"));
  ASSERT_EQ(status, 0) << out;
  EXPECT_DOUBLE_EQ(parse_result(out, p.objective), p.reference(params))
      << out;
}

TEST(EndToEnd, GeneratedAffineAlignmentLayeredDimension) {
  // 3-dimensional problem whose third dimension is the Gotoh matrix
  // index: nine template vectors with mixed z-offsets, phantom-edge
  // pruning, and per-layer center code in the generated program.
  std::string a = problems::random_dna(10, 51), b = problems::random_dna(12, 52);
  problems::Problem p = problems::align_affine(a, b, 1.0, 3.0, 1.0, 5);
  tiling::TilingModel model(p.spec);
  std::string src_path = testing::TempDir() + "/dpgen_affine_gen.cpp";
  write_program(model, src_path);
  auto prog = compile_program(src_path, "affine");
  ASSERT_TRUE(prog.ok) << prog.log;
  IntVec params = problems::sequence_params({a, b});
  auto [status, out] = run_command(cat(prog.binary, " ", params[0], " ",
                                       params[1], " --ranks=2 --threads=2"));
  ASSERT_EQ(status, 0) << out;
  EXPECT_NEAR(parse_result(out, p.objective), p.reference(params), 1e-12)
      << out;
}

TEST(EndToEnd, GeneratedCoinChangeWithLongRangeEdges) {
  // Denominations larger than the tile width make dependencies cross
  // several tiles: exercises multi-tile edges in generated pack/unpack.
  problems::Problem p = problems::coin_change({1, 15, 16}, 4);
  tiling::TilingModel model(p.spec);
  std::string src_path = testing::TempDir() + "/dpgen_coins_gen.cpp";
  write_program(model, src_path);
  auto prog = compile_program(src_path, "coins");
  ASSERT_TRUE(prog.ok) << prog.log;
  auto [status, out] = run_command(cat(prog.binary, " 30 --ranks=2"));
  ASSERT_EQ(status, 0) << out;
  EXPECT_DOUBLE_EQ(parse_result(out, {0}), 2.0) << out;
}

TEST(EndToEnd, GeneratedSmithWatermanTracksGlobalMax) {
  // Local alignment: the generated program's objective is the maximum
  // over every location (GenOptions::track_max -> "MAX (...) = v" line).
  std::string a = "TTTTCACACTTTT", b = "GGGGCACACGGGG";
  problems::Problem p = problems::smith_waterman(a, b, 2.0, -1.0, -1.0, 4);
  tiling::TilingModel model(p.spec);
  GenOptions gopt;
  gopt.track_max = true;
  std::string src_path = testing::TempDir() + "/dpgen_sw_gen.cpp";
  write_program(model, src_path, gopt);
  auto prog = compile_program(src_path, "sw");
  ASSERT_TRUE(prog.ok) << prog.log;
  IntVec params = problems::sequence_params({a, b});
  auto [status, out] = run_command(cat(prog.binary, " ", params[0], " ",
                                       params[1], " --ranks=2 --threads=2"));
  ASSERT_EQ(status, 0) << out;
  auto pos = out.find("MAX (");
  ASSERT_NE(pos, std::string::npos) << out;
  double value = std::strtod(
      out.c_str() + out.find(" = ", pos) + 3, nullptr);
  EXPECT_DOUBLE_EQ(value, p.reference(params)) << out;
}

TEST(EndToEnd, GeneratedFixedSizeProblemWithoutParameters) {
  // Problems without input parameters are legal (fixed-size spaces); the
  // generated program takes no positional arguments.
  spec::ProblemSpec s;
  s.name("fixed")
      .vars({"x"})
      .constraint("x >= 0")
      .constraint("x <= 12")
      .dep("r1", {1})
      .load_balance({"x"})
      .tile_widths({4})
      .center_code("V[loc] = is_valid_r1 ? V[loc_r1] + 1.0 : 1.0;");
  tiling::TilingModel model(std::move(s));
  std::string src_path = testing::TempDir() + "/dpgen_fixed_gen.cpp";
  write_program(model, src_path);
  auto prog = compile_program(src_path, "fixed");
  ASSERT_TRUE(prog.ok) << prog.log;
  auto [status, out] = run_command(cat(prog.binary, " --ranks=2"));
  ASSERT_EQ(status, 0) << out;
  EXPECT_DOUBLE_EQ(parse_result(out, {0}), 13.0) << out;
}

TEST(EndToEnd, GeneratedProgramRejectsBadUsage) {
  problems::Problem p = problems::bandit2(4);
  tiling::TilingModel model(p.spec);
  std::string src_path = testing::TempDir() + "/dpgen_usage_gen.cpp";
  write_program(model, src_path);
  auto prog = compile_program(src_path, "usage");
  ASSERT_TRUE(prog.ok) << prog.log;
  auto [status, out] = run_command(prog.binary);  // missing N
  EXPECT_NE(status, 0);
  EXPECT_NE(out.find("usage:"), std::string::npos);
  auto [status2, out2] = run_command(prog.binary + std::string(" 5 --bogus"));
  EXPECT_NE(status2, 0);
}

}  // namespace
}  // namespace dpgen::codegen
