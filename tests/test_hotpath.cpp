// Hot-path allocation tests: pooled edge buffers, wire-format round trips
// through the pool, run-coalesced pack/unpack equivalence against the
// per-cell reference on every packaged problem, and the steady-state
// allocation counter (the driver loop must not allocate per edge).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "engine/interpret.hpp"
#include "minimpi/world.hpp"
#include "problems/problems.hpp"
#include "runtime/buffer_pool.hpp"
#include "runtime/driver.hpp"
#include "tiling/model.hpp"

// ---- global allocation counter -------------------------------------------
// Counts every path into the global heap.  Only deltas are meaningful (the
// test harness allocates too), and tests must take deltas around regions
// that do not run concurrently with other tests (ctest runs cases in
// separate processes, so this holds).

namespace {
std::atomic<long long> g_heap_allocs{0};

void* counted_alloc(std::size_t n) {
  ++g_heap_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_heap_allocs;
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  ++g_heap_allocs;
  return std::malloc(n ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace dpgen {
namespace {

// ---- pooled wire round trip ----------------------------------------------

TEST(Hotpath, PooledEncodeDecodeRoundTrip) {
  runtime::detail::BufferPool<double> pool;
  std::vector<double> payload = pool.acquire();
  EXPECT_EQ(pool.misses(), 1);
  payload = {1.5, -2.25, 0.0, 42.0};

  // Zero-copy encode: reserve the header, write scalars straight into the
  // wire buffer, then stamp the header.
  std::vector<std::uint8_t> wire;
  double* out = runtime::detail::begin_edge_wire<double>(wire, 3, 8);
  std::memcpy(out, payload.data(), payload.size() * sizeof(double));
  runtime::detail::finish_edge_wire<double>(
      wire, 2, {4, -1, 7}, static_cast<Int>(payload.size()));

  // Byte-identical to the one-shot encoder.
  const std::vector<std::uint8_t> reference =
      runtime::detail::encode_edge<double>(2, {4, -1, 7}, payload);
  EXPECT_EQ(wire, reference);

  // Decode into a pooled vector; the released payload is reused.
  pool.release(std::move(payload));
  std::vector<double> decoded = pool.acquire();
  EXPECT_EQ(pool.hits(), 1);  // got the released buffer back
  int edge = -1;
  IntVec consumer;
  runtime::detail::decode_edge<double>(wire, 3, 8, &edge, &consumer,
                                       &decoded);
  EXPECT_EQ(edge, 2);
  EXPECT_EQ(consumer, (IntVec{4, -1, 7}));
  EXPECT_EQ(decoded, (std::vector<double>{1.5, -2.25, 0.0, 42.0}));
}

TEST(Hotpath, BufferPoolSteadyStateHitRate) {
  // The driver's per-tile cycle: acquire one buffer per outgoing edge,
  // release one per incoming edge.  After the first cycle seeds the
  // freelist, every acquire must hit.
  runtime::detail::BufferPool<float> pool;
  constexpr int kCycles = 1000;
  constexpr int kEdges = 2;
  for (int c = 0; c < kCycles; ++c) {
    std::vector<float> bufs[kEdges];
    for (auto& b : bufs) {
      b = pool.acquire();
      b.resize(16);
    }
    for (auto& b : bufs) pool.release(std::move(b));
  }
  EXPECT_EQ(pool.misses(), kEdges);  // only the first cycle allocates
  EXPECT_EQ(pool.hits(), static_cast<long long>(kCycles * kEdges - kEdges));
  const double hit_rate =
      static_cast<double>(pool.hits()) /
      static_cast<double>(pool.hits() + pool.misses());
  EXPECT_GT(hit_rate, 0.99);
}

// ---- run coalescing vs per-cell reference --------------------------------

void expect_coalesced_equivalence(problems::Problem p, const IntVec& params) {
  tiling::TilingModel model(std::move(p.spec));
  // A recognisable pattern so payload mismatches show as value diffs.
  std::vector<double> buffer(static_cast<std::size_t>(model.buffer_size()));
  for (std::size_t i = 0; i < buffer.size(); ++i)
    buffer[i] = 1.0 + 0.5 * static_cast<double>(i);

  std::vector<IntVec> tiles;
  model.for_each_tile(params, [&](const IntVec& t) { tiles.push_back(t); });
  ASSERT_FALSE(tiles.empty());
  // Cap the per-problem work: an even spread over the tile space still
  // covers boundary tiles (partial pack slabs) and interior ones.
  const std::size_t stride = std::max<std::size_t>(1, tiles.size() / 40);

  for (std::size_t ti = 0; ti < tiles.size(); ti += stride) {
    const IntVec& tile = tiles[ti];
    for (int e = 0; e < model.num_edges(); ++e) {
      // Per-cell reference pack.
      std::vector<double> ref;
      model.for_each_pack_cell(params, tile, e, [&](const IntVec& j) {
        ref.push_back(buffer[static_cast<std::size_t>(model.local_index(j))]);
      });
      // Coalesced pack must be byte-identical.
      std::vector<double> out;
      const Int n = engine::detail::pack_interpreted(model, params, e, tile,
                                                     buffer.data(), out);
      ASSERT_EQ(static_cast<std::size_t>(n), ref.size())
          << "edge " << e << " tile " << vec_to_string(tile);
      ASSERT_EQ(0, std::memcmp(out.data(), ref.data(),
                               ref.size() * sizeof(double)))
          << "edge " << e << " tile " << vec_to_string(tile);

      // Per-cell reference unpack (scatter at local + per-edge shift)...
      const Int shift = model.edge_unpack_shift(e);
      std::vector<double> ref_buf(buffer.size(), 0.0);
      std::size_t pos = 0;
      model.for_each_pack_cell(params, tile, e, [&](const IntVec& j) {
        ref_buf[static_cast<std::size_t>(model.local_index(j) + shift)] =
            ref[pos++];
      });
      // ...must equal the coalesced unpack over the whole buffer.
      std::vector<double> got(buffer.size(), 0.0);
      engine::detail::unpack_interpreted(model, params, e, tile, out.data(),
                                         n, got.data());
      ASSERT_EQ(0, std::memcmp(got.data(), ref_buf.data(),
                               got.size() * sizeof(double)))
          << "edge " << e << " tile " << vec_to_string(tile);
    }
  }
}

TEST(HotpathCoalescing, Bandit2) {
  expect_coalesced_equivalence(problems::bandit2(4), {6});
}
TEST(HotpathCoalescing, Bandit3) {
  expect_coalesced_equivalence(problems::bandit3(2), {3});
}
TEST(HotpathCoalescing, Bandit2Delay) {
  expect_coalesced_equivalence(problems::bandit2_delay(2), {4});
}
TEST(HotpathCoalescing, Msa) {
  const std::vector<std::string> seqs = {"GATTACA", "GCATGCU"};
  expect_coalesced_equivalence(problems::msa(seqs, 4),
                               problems::sequence_params(seqs));
}
TEST(HotpathCoalescing, Lcs) {
  const std::vector<std::string> seqs = {"ACGGTAG", "CGTTCGG", "ACTGAG"};
  expect_coalesced_equivalence(problems::lcs(seqs, 4),
                               problems::sequence_params(seqs));
}
TEST(HotpathCoalescing, EditDistance) {
  expect_coalesced_equivalence(
      problems::edit_distance("kitten", "sitting", 4),
      problems::sequence_params({"kitten", "sitting"}));
}
TEST(HotpathCoalescing, SmithWaterman) {
  expect_coalesced_equivalence(
      problems::smith_waterman("TACGGGCC", "TAGCCCTA", 2.0, -1.0, -1.0, 4),
      problems::sequence_params({"TACGGGCC", "TAGCCCTA"}));
}
TEST(HotpathCoalescing, AlignAffine) {
  expect_coalesced_equivalence(
      problems::align_affine("GATTACA", "GCATGCU", 1.0, 3.0, 1.0, 4),
      problems::sequence_params({"GATTACA", "GCATGCU"}));
}
TEST(HotpathCoalescing, CoinChange) {
  expect_coalesced_equivalence(problems::coin_change({1, 3, 4}, 4), {25});
}
TEST(HotpathCoalescing, SeamCarving) {
  expect_coalesced_equivalence(problems::seam_carving(4), {12, 16});
}

// ---- steady-state allocation count ---------------------------------------

/// Minimal 2D grid hooks: an n x n tile grid where tile t depends on
/// (t0+1, t1) and (t0, t1+1), each edge carrying 4 scalars.  This drives
/// run_node's full loop (pop, unpack, execute, pack, deliver) without the
/// engine's interpreter, so the count isolates the driver hot path.
class GridHooks final : public runtime::ProblemHooks<double> {
 public:
  explicit GridHooks(Int n) : n_(n) {}

  int dim() const override { return 2; }
  Int buffer_size() const override { return 16; }
  int num_edges() const override { return 2; }
  const IntVec& edge_offset(int e) const override {
    return e == 0 ? off0_ : off1_;
  }
  Int edge_capacity(int) const override { return 4; }
  bool tile_exists(const IntVec& t) const override {
    return t[0] >= 0 && t[0] < n_ && t[1] >= 0 && t[1] < n_;
  }
  int dep_count(const IntVec& t) const override {
    return (t[0] + 1 < n_ ? 1 : 0) + (t[1] + 1 < n_ ? 1 : 0);
  }
  void initial_tiles(std::vector<IntVec>& out) const override {
    out.push_back({n_ - 1, n_ - 1});
  }
  int owner(const IntVec&) const override { return 0; }
  Int owned_tiles(int) const override { return n_ * n_; }
  void execute_tile(const IntVec&, double* buffer) override {
    buffer[0] += 1.0;
  }
  Int pack(int, const IntVec&, const double* buffer,
           double* out) const override {
    std::memcpy(out, buffer, 4 * sizeof(double));
    return 4;
  }
  void unpack(int, const IntVec&, const double* data, Int count,
              double* buffer) const override {
    for (Int i = 0; i < count; ++i) buffer[4 + i] = data[i];
  }

 private:
  Int n_;
  IntVec off0_{1, 0};
  IntVec off1_{0, 1};
};

struct AllocRun {
  long long allocs = 0;
  long long edges = 0;
  double pool_hit_rate = 0.0;
};

AllocRun run_grid_and_count(Int n) {
  GridHooks hooks(n);
  runtime::RunOptions opt;
  opt.order =
      runtime::TileOrder({0, 1}, {1, 1}, runtime::PriorityPolicy::kColumnMajor);
  minimpi::World world(1);
  AllocRun out;
  const long long a0 = g_heap_allocs.load();
  runtime::RunStats stats =
      runtime::run_node<double>(hooks, world.comm(0), opt);
  out.allocs = g_heap_allocs.load() - a0;
  out.edges = stats.local_edges + stats.remote_edges;
  const long long pool_total = stats.pool_hits + stats.edge_allocs;
  out.pool_hit_rate =
      pool_total > 0
          ? static_cast<double>(stats.pool_hits) / pool_total
          : 0.0;
  return out;
}

TEST(Hotpath, SteadyStateHeapAllocationFree) {
  // Warm thread-local scratch so first-touch allocations do not count.
  (void)run_grid_and_count(8);

  const AllocRun small = run_grid_and_count(24);
  const AllocRun large = run_grid_and_count(48);
  ASSERT_GT(large.edges, small.edges);

  // Pools reach steady state within a run: nearly every payload acquire
  // must be served from the freelist.
  EXPECT_GT(small.pool_hit_rate, 0.95);
  EXPECT_GT(large.pool_hit_rate, 0.95);

  std::printf("[ alloc  ] 24x24: %lld allocs / %lld edges;"
              " 48x48: %lld allocs / %lld edges\n",
              small.allocs, small.edges, large.allocs, large.edges);

#if !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
  // Zero per-edge steady-state heap allocations: what a run allocates is
  // startup and frontier state (table slots, pool seeds — O(n) for an
  // n x n grid), not per-edge work.  Quadrupling the edge count must add
  // far less than one allocation per additional edge.
  const long long extra_allocs = large.allocs - small.allocs;
  const long long extra_edges = large.edges - small.edges;
  EXPECT_LT(extra_allocs, extra_edges / 10)
      << "per-edge allocations crept back into the driver hot path: "
      << extra_allocs << " allocs for " << extra_edges << " extra edges";
  // And the absolute count stays far below one per edge.
  EXPECT_LT(large.allocs, large.edges / 4)
      << large.allocs << " allocs for " << large.edges << " edges";
#endif
}

}  // namespace
}  // namespace dpgen
