// Tests for the continuous-profiling stack (obs/profile.hpp): frame-stack
// encoding, sampler start/stop churn (the TSan flavour runs this under
// instrumentation), the forced perf-unavailable fallback, document
// round-trips against tools/profile_schema.json, the synthetic sim
// profile, and the schema registry.

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "obs/profile.hpp"
#include "problems/problems.hpp"
#include "sim/cluster_sim.hpp"
#include "support/json.hpp"
#include "support/json_schema.hpp"
#include "tiling/model.hpp"

namespace dpgen::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> validate_against_schema(const std::string& text) {
  json::ValuePtr schema = json::parse(read_file(DPGEN_PROFILE_SCHEMA));
  json::ValuePtr doc = json::parse(text);
  return json::validate(*schema, *doc);
}

/// A tiny profiled engine run; returns the collected document.
ProfileDoc profiled_engine_run(bool force_cputime,
                               const std::string& path = "-") {
  problems::Problem p = problems::lcs(
      {problems::random_dna(192, 1), problems::random_dna(192, 2)});
  tiling::TilingModel model(p.spec);
  engine::EngineOptions opt;
  opt.ranks = 2;
  opt.threads = 2;
  opt.profile_path = path;
  opt.profile_hz = 1997.0;
  opt.profile_force_cputime = force_cputime;
  engine::EngineResult r = engine::run(model, {192, 192}, p.kernel, opt);
  EXPECT_TRUE(r.profile.has_value());
  return r.profile ? *r.profile : ProfileDoc{};
}

// ---- frame-stack encoding -------------------------------------------------

TEST(ProfileFrames, EncodingPushPop) {
  // Frames only exist while a profiled run is active (g_frames_on).
  ProfileOptions popt;
  popt.problem = "frames";
  Profiler::instance().start(popt);
  Profiler::instance().thread_enter(/*rank=*/0, /*thread=*/0);
  profdetail::ThreadProfState* st = profdetail::t_state;
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->stack.load(), 0u);

  const auto enc = [](Phase p) {
    return static_cast<std::uint32_t>(static_cast<int>(p) + 1);
  };
  const bool a = profile_frame_push(Phase::kPack);
  EXPECT_TRUE(a);
  EXPECT_EQ(st->stack.load(), enc(Phase::kPack));
  const bool b = profile_frame_push(Phase::kSend);
  EXPECT_TRUE(b);
  EXPECT_EQ(st->stack.load(), (enc(Phase::kPack) << 5) | enc(Phase::kSend));
  profile_frame_pop(b);
  EXPECT_EQ(st->stack.load(), enc(Phase::kPack));
  profile_frame_pop(a);
  EXPECT_EQ(st->stack.load(), 0u);

  // ScopedSpan pushes/pops the same stack when tracing is compiled in.
  if (kTraceCompiled) {
    ScopedSpan span(Phase::kTileExecute, nullptr);
    EXPECT_EQ(st->stack.load(), enc(Phase::kTileExecute));
  }
  EXPECT_EQ(st->stack.load(), 0u);

  // Deep nesting sheds the oldest frames instead of corrupting the top.
  std::vector<bool> pushed;
  for (int i = 0; i < 10; ++i)
    pushed.push_back(profile_frame_push(Phase::kPoll));
  EXPECT_EQ(st->stack.load() & 31u, enc(Phase::kPoll));
  for (int i = 9; i >= 0; --i) profile_frame_pop(pushed[static_cast<std::size_t>(i)]);

  Profiler::instance().thread_exit();
  (void)Profiler::instance().stop();
  // Frames are off outside a run: push reports "not pushed".
  EXPECT_FALSE(profile_frame_push(Phase::kPack));
}

// ---- sampler churn --------------------------------------------------------

// Start/stop churn with worker threads registering, pushing frames and
// running tile windows while SIGPROF fires at the maximum rate.  The TSan
// build flavour runs this test under instrumentation; any race between
// the signal handler, the hot path and stop() aggregation trips it.
TEST(ProfileSampler, StartStopChurn) {
  for (int round = 0; round < 5; ++round) {
    ProfileOptions popt;
    popt.hz = 10000.0;
    popt.problem = "churn";
    popt.force_cputime = true;
    Profiler::instance().start(popt);
    EXPECT_TRUE(Profiler::instance().active());

    std::vector<std::thread> workers;
    for (int w = 0; w < 3; ++w) {
      workers.emplace_back([w] {
        ProfileThreadScope scope(true, /*rank=*/w, /*thread=*/0);
        for (int i = 0; i < 2000; ++i) {
          const bool f = profile_frame_push(Phase::kTileExecute);
          const bool win = Profiler::tile_begin();
          Profiler::tile_end(win, /*cells=*/4, /*exec_ns=*/500);
          profile_frame_pop(f);
        }
      });
    }
    for (auto& t : workers) t.join();

    ProfileDoc doc = Profiler::instance().stop();
    EXPECT_FALSE(Profiler::instance().active());
    EXPECT_EQ(doc.threads.size(), 3u);
    ASSERT_EQ(doc.families.size(), 1u);
    EXPECT_EQ(doc.families[0].tiles, 3 * 2000);
    EXPECT_EQ(doc.families[0].cells, 3 * 2000 * 4);
    EXPECT_GT(doc.families[0].sampled_tiles, 0);
    // Sub-2us tiles stretch the stride, so windows cover a subset.
    EXPECT_LE(doc.families[0].sampled_tiles, doc.families[0].tiles);
    EXPECT_EQ(doc.samples_dropped, 0);
  }
}

TEST(ProfileSampler, SecondStartWhileActiveThrows) {
  ProfileOptions popt;
  popt.problem = "nested";
  Profiler::instance().start(popt);
  EXPECT_THROW(Profiler::instance().start(popt), std::exception);
  (void)Profiler::instance().stop();
}

// ---- forced cputime fallback ---------------------------------------------

// The perf-unavailable degradation path: force_cputime runs every counter
// group on CLOCK_THREAD_CPUTIME and the emitted document must say so and
// still validate against the schema.
TEST(ProfileFallback, ForcedCputimeDocValidates) {
  const std::string path = testing::TempDir() + "/prof_cputime.json";
  ProfileDoc doc = profiled_engine_run(/*force_cputime=*/true, path);
  EXPECT_EQ(doc.counters, "cputime");
  EXPECT_EQ(doc.sampler, "timer");
  const std::vector<std::string> errors =
      validate_against_schema(read_file(path));
  for (const auto& e : errors) ADD_FAILURE() << "schema violation " << e;
  // In cputime mode the "cycles" channel carries thread CPU ns and there
  // are no instruction counts, so IPC must report as absent (0).
  ASSERT_EQ(doc.families.size(), 1u);
  EXPECT_EQ(doc.families[0].instructions, 0u);
  EXPECT_EQ(doc.families[0].ipc(), 0.0);
}

// ---- engine end-to-end ----------------------------------------------------

TEST(ProfileEngine, EndToEndDocument) {
  ProfileDoc doc = profiled_engine_run(/*force_cputime=*/false);
  EXPECT_EQ(doc.source, "engine");
  EXPECT_EQ(doc.problem, "lcs2");  // the spec's name for 2-sequence LCS
  EXPECT_EQ(doc.nranks, 2);
  EXPECT_EQ(doc.threads.size(), 4u);  // 2 ranks x 2 threads

  ASSERT_EQ(doc.families.size(), 1u);
  const ProfileFamily& fam = doc.families[0];
  EXPECT_GT(fam.tiles, 0);
  EXPECT_GT(fam.cells, 0);
  EXPECT_GT(fam.exec_seconds, 0.0);
  EXPECT_GT(fam.sampled_tiles, 0);
  EXPECT_GT(fam.cycles, 0u);
  // The engine stamps the Ehrhart prediction; lcs counts every cell, so
  // measured == predicted exactly.
  EXPECT_EQ(static_cast<double>(fam.cells), fam.predicted_cells);

  // Sample accounting: per-phase buckets + untraced == total, and the
  // folded stacks cover exactly the attributed samples.
  long long bucketed = doc.samples_untraced;
  for (long long c : doc.phase_samples) bucketed += c;
  EXPECT_EQ(bucketed, doc.samples_total);
  long long folded = 0;
  for (const FoldedStack& f : doc.folded) folded += f.samples;
  EXPECT_EQ(folded, doc.samples_total);
  long long per_thread = 0;
  for (const ProfileThreadSummary& t : doc.threads) per_thread += t.samples;
  EXPECT_EQ(per_thread, doc.samples_total);

  if (kTraceCompiled) {
    // With span hooks compiled in, samples land in phases, not untraced
    // (a handful of untraced samples between spans is fine).
    EXPECT_LE(doc.samples_untraced, doc.samples_total);
  } else {
    // Without spans there are no frames: everything is untraced.
    EXPECT_EQ(doc.samples_untraced, doc.samples_total);
  }
}

TEST(ProfileEngine, JsonRoundTrip) {
  ProfileDoc doc = profiled_engine_run(/*force_cputime=*/true);
  const std::string text = profile_json(doc);
  const std::vector<std::string> errors = validate_against_schema(text);
  for (const auto& e : errors) ADD_FAILURE() << "schema violation " << e;

  ProfileDoc back = parse_profile_doc(*json::parse(text));
  EXPECT_EQ(back.source, doc.source);
  EXPECT_EQ(back.problem, doc.problem);
  EXPECT_EQ(back.params, doc.params);
  EXPECT_EQ(back.counters, doc.counters);
  EXPECT_EQ(back.sampler, doc.sampler);
  EXPECT_EQ(back.nranks, doc.nranks);
  EXPECT_EQ(back.samples_total, doc.samples_total);
  EXPECT_EQ(back.samples_untraced, doc.samples_untraced);
  EXPECT_EQ(back.phase_samples, doc.phase_samples);
  ASSERT_EQ(back.folded.size(), doc.folded.size());
  for (std::size_t i = 0; i < doc.folded.size(); ++i) {
    EXPECT_EQ(back.folded[i].stack, doc.folded[i].stack);
    EXPECT_EQ(back.folded[i].samples, doc.folded[i].samples);
  }
  ASSERT_EQ(back.families.size(), doc.families.size());
  for (std::size_t i = 0; i < doc.families.size(); ++i) {
    EXPECT_EQ(back.families[i].name, doc.families[i].name);
    EXPECT_EQ(back.families[i].tiles, doc.families[i].tiles);
    EXPECT_EQ(back.families[i].cells, doc.families[i].cells);
    EXPECT_EQ(back.families[i].cycles, doc.families[i].cycles);
    EXPECT_EQ(back.families[i].predicted_cells,
              doc.families[i].predicted_cells);
  }

  // The flame view renders without data: one SVG per rank.
  const std::string html = profile_flame_html(doc);
  EXPECT_NE(html.find("<svg"), std::string::npos);
}

// ---- synthetic sim profile ------------------------------------------------

TEST(ProfileSim, SyntheticDocValidates) {
  problems::Problem p = problems::lcs(
      {problems::random_dna(96, 1), problems::random_dna(96, 2)});
  tiling::TilingModel model(p.spec);
  sim::ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.cores_per_node = 2;
  const std::string path = testing::TempDir() + "/prof_sim.json";
  cfg.profile_path = path;
  cfg.problem_name = "lcs";
  sim::SimResult r = sim::simulate(model, {96, 96}, cfg);
  EXPECT_GT(r.makespan, 0.0);

  const std::string text = read_file(path);
  const std::vector<std::string> errors = validate_against_schema(text);
  for (const auto& e : errors) ADD_FAILURE() << "schema violation " << e;

  ProfileDoc doc = parse_profile_doc(*json::parse(text));
  EXPECT_EQ(doc.source, "sim");
  EXPECT_EQ(doc.counters, "sim");
  EXPECT_EQ(doc.sampler, "synthetic");
  EXPECT_EQ(doc.nranks, 4);
  // The synthetic rate auto-scales so short DES makespans still resolve.
  EXPECT_GT(doc.samples_total, 0);
  EXPECT_GT(doc.phase_samples[static_cast<int>(Phase::kTileExecute)], 0);
  ASSERT_EQ(doc.families.size(), 1u);
  EXPECT_EQ(doc.families[0].name, "lcs");
  EXPECT_GT(doc.families[0].predicted_cells, 0.0);
}

// ---- schema registry ------------------------------------------------------

TEST(SchemaRegistry, KnownIdsResolve) {
  EXPECT_EQ(json::schema_file_for("dpgen.profile.v1"),
            "profile_schema.json");
  EXPECT_EQ(json::schema_file_for("dpgen.report.v1"), "report_schema.json");
  EXPECT_EQ(json::schema_file_for("dpgen.bench.v1"), "bench_schema.json");
  EXPECT_EQ(json::schema_file_for("dpgen.events.v1"), "events_schema.json");
  EXPECT_EQ(json::schema_file_for("dpgen.checkpoint.v1"),
            "checkpoint_schema.json");
  EXPECT_EQ(json::schema_file_for("dpgen.unknown.v9"), "");
}

}  // namespace
}  // namespace dpgen::obs
