// Tests for the discrete-event cluster simulator: conservation laws,
// critical-path behaviour, scaling shapes and the Fig. 4 memory metric.

#include <gtest/gtest.h>

#include <fstream>

#include "engine/engine.hpp"
#include "sim/cluster_sim.hpp"
#include "sim/svg.hpp"
#include "sim/tune.hpp"

namespace dpgen::sim {
namespace {

spec::ProblemSpec chain_spec(Int width) {
  spec::ProblemSpec s;
  s.name("chain")
      .params({"N"})
      .vars({"x"})
      .constraint("x >= 0")
      .constraint("x <= N")
      .dep("r1", {1})
      .load_balance({"x"})
      .tile_widths({width})
      .center_code("V[loc] = 0.0;");
  return s;
}

/// An n x n tile grid: square space of side n*width, deps (1,0) and (0,1).
spec::ProblemSpec grid_spec(Int width) {
  spec::ProblemSpec s;
  s.name("grid")
      .params({"N"})
      .vars({"x", "y"})
      .constraint("x >= 0")
      .constraint("x <= N")
      .constraint("y >= 0")
      .constraint("y <= N")
      .dep("r1", {1, 0})
      .dep("r2", {0, 1})
      .load_balance({"x", "y"})
      .tile_widths({width, width})
      .center_code("V[loc] = 0.0;");
  return s;
}

spec::ProblemSpec bandit_like_spec(Int width) {
  spec::ProblemSpec s;
  s.name("simplex4")
      .params({"N"})
      .vars({"a", "b", "c", "d"});
  s.constraint("a >= 0").constraint("b >= 0");
  s.constraint("c >= 0").constraint("d >= 0");
  s.constraint("a + b + c + d <= N");
  s.dep("r1", {1, 0, 0, 0}).dep("r2", {0, 1, 0, 0});
  s.dep("r3", {0, 0, 1, 0}).dep("r4", {0, 0, 0, 1});
  s.load_balance({"a", "b"}).tile_widths({width, width, width, width});
  s.center_code("V[loc] = 0.0;");
  return s;
}

TEST(SimChain, SerialChainHasNoSpeedup) {
  tiling::TilingModel model(chain_spec(4));
  ClusterConfig cfg;
  cfg.tile_overhead_sec = 0.0;
  SimResult one = simulate(model, {63}, cfg);
  cfg.cores_per_node = 8;
  SimResult eight = simulate(model, {63}, cfg);
  // A 1-D dependency chain is inherently serial.
  EXPECT_DOUBLE_EQ(one.makespan, eight.makespan);
  EXPECT_NEAR(eight.speedup(), 1.0, 1e-9);
}

TEST(SimChain, MakespanEqualsTotalWorkOnOneCore) {
  tiling::TilingModel model(chain_spec(4));
  ClusterConfig cfg;
  SimResult r = simulate(model, {63}, cfg);
  EXPECT_NEAR(r.makespan, r.total_work_sec, 1e-12);
  EXPECT_NEAR(r.utilization, 1.0, 1e-9);
  EXPECT_EQ(r.tiles, model.total_tiles({63}));
  EXPECT_EQ(r.remote_messages, 0);
}

TEST(SimGrid, WorkConservedAcrossConfigurations) {
  tiling::TilingModel model(grid_spec(4));
  IntVec params{31};
  ClusterConfig base;
  SimResult serial = simulate(model, params, base);
  for (int nodes : {1, 2, 4}) {
    for (int cores : {1, 2, 8}) {
      ClusterConfig cfg;
      cfg.nodes = nodes;
      cfg.cores_per_node = cores;
      SimResult r = simulate(model, params, cfg);
      EXPECT_NEAR(r.total_work_sec, serial.total_work_sec, 1e-9)
          << nodes << "x" << cores;
      EXPECT_EQ(r.tiles, serial.tiles);
      // Makespan can never beat the perfect-parallel bound.
      EXPECT_GE(r.makespan * nodes * cores, r.total_work_sec - 1e-9);
    }
  }
}

TEST(SimGrid, MoreCoresNeverSlower) {
  tiling::TilingModel model(grid_spec(4));
  IntVec params{47};
  double prev = 1e100;
  for (int cores : {1, 2, 4, 8, 16}) {
    ClusterConfig cfg;
    cfg.cores_per_node = cores;
    double mk = simulate(model, params, cfg).makespan;
    EXPECT_LE(mk, prev + 1e-12) << cores << " cores";
    prev = mk;
  }
}

TEST(SimGrid, SharedMemoryScalingIsStrong) {
  // A 12x12 tile grid on up to 8 cores should scale well (wavefront
  // parallelism greatly exceeds the core count).
  tiling::TilingModel model(grid_spec(4));
  IntVec params{47};
  ClusterConfig cfg;
  cfg.cores_per_node = 8;
  cfg.tile_overhead_sec = 0.0;
  SimResult r = simulate(model, params, cfg);
  EXPECT_GT(r.speedup(), 5.0);
  EXPECT_LE(r.speedup(), 8.0 + 1e-9);
}

TEST(SimGrid, RemoteEdgesOnlyAcrossNodes) {
  tiling::TilingModel model(grid_spec(4));
  IntVec params{31};
  ClusterConfig cfg;
  cfg.nodes = 2;
  SimResult r = simulate(model, params, cfg);
  EXPECT_GT(r.remote_messages, 0);
  EXPECT_GT(r.remote_scalars, 0.0);
  cfg.nodes = 1;
  EXPECT_EQ(simulate(model, params, cfg).remote_messages, 0);
}

TEST(SimGrid, LatencyOnlyHurtsMultiNode) {
  tiling::TilingModel model(grid_spec(4));
  IntVec params{31};
  ClusterConfig fast, slow;
  fast.nodes = slow.nodes = 2;
  fast.link_latency_sec = 0.0;
  slow.link_latency_sec = 1e-3;
  EXPECT_LT(simulate(model, params, fast).makespan,
            simulate(model, params, slow).makespan);
  // Single node: latency is irrelevant.
  fast.nodes = slow.nodes = 1;
  EXPECT_DOUBLE_EQ(simulate(model, params, fast).makespan,
                   simulate(model, params, slow).makespan);
}

TEST(SimMemory, Fig4ColumnMajorVsLevelSet) {
  // Paper Fig. 4 / section V.B: on an n x n tile grid the column-major
  // priority buffers about n+1 edges; level-set order buffers about
  // 2(n-1).
  for (Int n : {5, 8, 16}) {
    tiling::TilingModel model(grid_spec(4));
    IntVec params{4 * n - 1};  // exactly n tiles per side
    ASSERT_EQ(model.total_tiles(params), n * n);
    ClusterConfig cfg;  // single core: pure priority effect
    cfg.policy = runtime::PriorityPolicy::kColumnMajor;
    long long col = simulate(model, params, cfg).peak_buffered_edges;
    cfg.policy = runtime::PriorityPolicy::kLevelSet;
    long long lvl = simulate(model, params, cfg).peak_buffered_edges;
    EXPECT_LT(col, lvl) << "n=" << n;
    EXPECT_NEAR(static_cast<double>(col), static_cast<double>(n + 1), 2.0)
        << "n=" << n;
    EXPECT_NEAR(static_cast<double>(lvl), static_cast<double>(2 * (n - 1)),
                3.0)
        << "n=" << n;
  }
}

TEST(SimDeterminism, IdenticalRunsIdenticalResults) {
  tiling::TilingModel model(bandit_like_spec(3));
  IntVec params{14};
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.cores_per_node = 4;
  SimResult a = simulate(model, params, cfg);
  SimResult b = simulate(model, params, cfg);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.peak_buffered_edges, b.peak_buffered_edges);
  EXPECT_EQ(a.remote_messages, b.remote_messages);
}

TEST(SimBandit, MultiNodeWeakShapeHoldsUp) {
  // Scaling a 4-dim simplex across nodes keeps utilization reasonably
  // high when per-node work is matched (coarse weak-scaling sanity).
  tiling::TilingModel model(bandit_like_spec(3));
  ClusterConfig cfg;
  cfg.cores_per_node = 4;
  cfg.nodes = 1;
  SimResult one = simulate(model, {16}, cfg);
  cfg.nodes = 4;
  SimResult four = simulate(model, {24}, cfg);  // ~4x the locations
  EXPECT_GT(one.utilization, 0.5);
  EXPECT_GT(four.utilization, 0.35);
  EXPECT_GT(four.speedup(), one.speedup());
}

TEST(SimTimeline, SpansCoverAllTilesAndRespectCores) {
  tiling::TilingModel model(grid_spec(4));
  IntVec params{31};
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.cores_per_node = 3;
  cfg.record_timeline = true;
  SimResult r = simulate(model, params, cfg);
  EXPECT_EQ(static_cast<Int>(r.timeline.size()), r.tiles);
  // Per (node, core), spans must not overlap.
  std::map<std::pair<int, int>, std::vector<std::pair<double, double>>> lanes;
  double busy = 0.0;
  for (const auto& s : r.timeline) {
    EXPECT_LT(s.start, s.end);
    EXPECT_LE(s.end, r.makespan + 1e-12);
    lanes[{s.node, s.core}].emplace_back(s.start, s.end);
    busy += s.end - s.start;
  }
  EXPECT_NEAR(busy, r.total_work_sec, 1e-9);
  for (auto& [lane, spans] : lanes) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i)
      EXPECT_GE(spans[i].first, spans[i - 1].second - 1e-12);
  }
}

TEST(SimTimeline, UtilizationProfileShowsFillAndDrain) {
  tiling::TilingModel model(grid_spec(4));
  ClusterConfig cfg;
  cfg.cores_per_node = 8;
  cfg.record_timeline = true;
  SimResult r = simulate(model, {63}, cfg);
  auto profile = utilization_profile(r, 8, 10);
  ASSERT_EQ(profile.size(), 10u);
  for (double u : profile) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
  // The middle of the run is busier than the wavefront fill at the start.
  EXPECT_GT(profile[5], profile[0]);
  // Average of the profile equals the overall utilization.
  double avg = 0.0;
  for (double u : profile) avg += u;
  EXPECT_NEAR(avg / 10.0, r.utilization, 0.02);
}

TEST(SimFidelity, SingleCoreOrderMatchesEngineExactly) {
  // The simulator's core claim: it replays the real schedule.  With one
  // core and one thread both systems are deterministic, so the simulated
  // execution order must equal the engine's actual order tile for tile.
  for (auto policy : {runtime::PriorityPolicy::kColumnMajor,
                      runtime::PriorityPolicy::kLevelSet}) {
    spec::ProblemSpec s1 = grid_spec(4);
    tiling::TilingModel model(std::move(s1));
    IntVec params{19};

    ClusterConfig cfg;
    cfg.policy = policy;
    cfg.record_timeline = true;
    SimResult sim_result = simulate(model, params, cfg);
    std::vector<IntVec> sim_order;
    for (const auto& span : sim_result.timeline)
      sim_order.push_back(span.tile);

    std::vector<IntVec> engine_order;
    engine::EngineOptions opt;
    opt.policy = policy;
    opt.on_tile_executed = [&](const IntVec& t) {
      engine_order.push_back(t);
    };
    engine::run(model, params,
                [](const engine::Cell& c) { c.V[c.loc] = 0.0; }, opt);

    ASSERT_EQ(sim_order.size(), engine_order.size());
    EXPECT_EQ(sim_order, engine_order)
        << (policy == runtime::PriorityPolicy::kColumnMajor ? "column"
                                                            : "levelset");
  }
}

TEST(SimTimeline, SvgRenderingContainsEveryTile) {
  tiling::TilingModel model(grid_spec(4));
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.cores_per_node = 2;
  cfg.record_timeline = true;
  SimResult r = simulate(model, {23}, cfg);
  std::string svg = timeline_svg(r);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  // One <rect> per tile plus the background.
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1))
    ++rects;
  EXPECT_EQ(static_cast<Int>(rects), r.tiles + 1);

  std::string path = testing::TempDir() + "/dpgen_timeline.svg";
  write_timeline_svg(r, path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
}

TEST(SimTimeline, SeriesSvgRendersPolylinesWithGaps) {
  std::vector<Series> series;
  series.push_back({"alpha", {1.0, 2.0, 3.0, 2.5}});
  series.push_back(
      {"beta", {0.5, std::numeric_limits<double>::quiet_NaN(), 1.5, 2.0}});
  std::string svg = series_svg(series, "bench medians");
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("bench medians"), std::string::npos);
  EXPECT_NE(svg.find("alpha"), std::string::npos);
  EXPECT_NE(svg.find("beta"), std::string::npos);
  // The NaN splits beta's polyline, so there are at least 3 polylines
  // (alpha's plus beta's two segments... beta's first segment is a single
  // point, drawn as a circle), and one circle per finite point.
  std::size_t circles = 0;
  for (std::size_t pos = svg.find("<circle"); pos != std::string::npos;
       pos = svg.find("<circle", pos + 1))
    ++circles;
  EXPECT_EQ(circles, 7u);  // 4 alpha + 3 finite beta points
  EXPECT_EQ(svg.find("nan"), std::string::npos);
}

TEST(SimTimeline, SvgNeedsRecordedTimeline) {
  tiling::TilingModel model(chain_spec(4));
  SimResult r = simulate(model, {15}, ClusterConfig{});
  EXPECT_THROW(timeline_svg(r), Error);
}

TEST(SimTimeline, DisabledByDefault) {
  tiling::TilingModel model(chain_spec(4));
  SimResult r = simulate(model, {15}, ClusterConfig{});
  EXPECT_TRUE(r.timeline.empty());
  EXPECT_THROW(utilization_profile(r, 0, 5), Error);
}

TEST(SimTune, SweepCoversWidthsAndFindsMinimum) {
  auto factory = [](Int w) { return grid_spec(w); };
  ClusterConfig cfg;
  cfg.cores_per_node = 4;
  cfg.tile_overhead_sec = 1e-4;  // strong per-tile cost: big tiles win
  auto sweep = sweep_widths(factory, {1, 2, 4, 8}, {31}, cfg);
  ASSERT_EQ(sweep.size(), 4u);
  for (std::size_t i = 0; i < sweep.size(); ++i)
    EXPECT_GT(sweep[i].result.makespan, 0.0);
  // With a dominant per-tile overhead the largest width must win.
  EXPECT_EQ(best_width(sweep), 8);
  // With zero overhead and many nodes, smaller tiles pipeline better.
  cfg.tile_overhead_sec = 0.0;
  cfg.nodes = 8;
  auto sweep2 = sweep_widths(factory, {2, 16}, {31}, cfg);
  EXPECT_EQ(best_width(sweep2), 2);
}

TEST(SimTune, EmptyInputsRejected) {
  auto factory = [](Int w) { return grid_spec(w); };
  EXPECT_THROW(sweep_widths(factory, {}, {31}, ClusterConfig{}), Error);
  EXPECT_THROW(best_width({}), Error);
}

TEST(SimConfig, InvalidConfigsRejected) {
  tiling::TilingModel model(chain_spec(4));
  ClusterConfig cfg;
  cfg.nodes = 0;
  EXPECT_THROW(simulate(model, {10}, cfg), Error);
  cfg.nodes = 1;
  cfg.sec_per_cell = 0.0;
  EXPECT_THROW(simulate(model, {10}, cfg), Error);
}

TEST(SimBalance, HyperplaneMethodRunsOnWedge) {
  // Paper VII.B / Fig. 8 present hyperplane cuts as future work for wedge
  // shapes.  Both methods must schedule the wedge correctly and stay in
  // the same performance regime; which one wins depends on the pipeline
  // behaviour (see bench_loadbalance for the measured comparison).
  spec::ProblemSpec s;
  s.name("wedge").params({"N"}).vars({"x", "y"});
  s.constraint("x >= 0").constraint("y >= 0").constraint("x + y <= N");
  s.dep("r1", {1, 0}).dep("r2", {0, 1});
  s.load_balance({"x", "y"}).tile_widths({2, 2});
  s.center_code("V[loc] = 0.0;");
  tiling::TilingModel model(std::move(s));
  IntVec params{63};
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.cores_per_node = 2;
  cfg.balance = tiling::BalanceMethod::kPerDimension;
  SimResult perdim = simulate(model, params, cfg);
  cfg.balance = tiling::BalanceMethod::kHyperplane;
  SimResult hyper = simulate(model, params, cfg);
  EXPECT_EQ(hyper.tiles, perdim.tiles);
  EXPECT_GT(hyper.utilization, 0.4);
  EXPECT_LE(hyper.makespan, perdim.makespan * 2.0);
}

TEST(SimMonitor, BalancedRunFlagsNoStraggler) {
  tiling::TilingModel model(grid_spec(4));
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.cores_per_node = 2;
  cfg.events_path = "-";  // monitor without an event log
  SimResult r = simulate(model, {63}, cfg);
  EXPECT_TRUE(r.stragglers.empty());
}

TEST(SimMonitor, SlowedNodeIsFlaggedByName) {
  tiling::TilingModel model(grid_spec(4));
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.cores_per_node = 2;
  cfg.events_path = "-";
  cfg.node_slowdown = {1.0, 4.0};
  SimResult r = simulate(model, {63}, cfg);
  ASSERT_FALSE(r.stragglers.empty());
  for (const auto& f : r.stragglers) {
    EXPECT_EQ(f.rank, 1);
    EXPECT_LT(f.pace, f.median_pace);
  }
  // The skew is real: the same problem without the slowdown is faster.
  cfg.node_slowdown.clear();
  SimResult balanced = simulate(model, {63}, cfg);
  EXPECT_LT(balanced.makespan, r.makespan);
}

TEST(SimMonitor, EventLogIsWrittenAndDeterministic) {
  tiling::TilingModel model(grid_spec(4));
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.cores_per_node = 2;
  cfg.events_path = testing::TempDir() + "/dpgen_sim_events.jsonl";
  SimResult a = simulate(model, {63}, cfg);
  std::ifstream in(cfg.events_path);
  ASSERT_TRUE(in.good());
  std::string first;
  ASSERT_TRUE(std::getline(in, first));
  EXPECT_NE(first.find("run_start"), std::string::npos);
  EXPECT_NE(first.find("\"sim\""), std::string::npos);
  long long lines = 1;
  std::string line, last;
  while (std::getline(in, line)) {
    ++lines;
    last = line;
  }
  EXPECT_NE(last.find("run_end"), std::string::npos);
  EXPECT_GE(lines, 4);  // run_start + >=1 heartbeat per node + run_end
  // DES time drives the monitor, so a rerun reproduces the log exactly.
  std::remove(cfg.events_path.c_str());
  SimResult b = simulate(model, {63}, cfg);
  EXPECT_EQ(a.makespan, b.makespan);
  std::ifstream in2(cfg.events_path);
  long long lines2 = 0;
  while (std::getline(in2, line)) ++lines2;
  EXPECT_EQ(lines, lines2);
  std::remove(cfg.events_path.c_str());
}

TEST(SimMonitor, SeriesSvgDrawsTicksAndLegend) {
  std::vector<Series> series;
  series.push_back({"node 0", {0.0, 0.4, 0.8, 1.0}});
  series.push_back({"node 1", {0.0, 0.2, 0.6, 1.0}});
  SeriesSvgOptions opt;
  opt.x_labels = {"0ms", "1ms", "2ms", "3ms"};
  opt.y_ticks = 4;
  opt.legend = true;
  std::string svg = series_svg(series, "completed fraction", opt);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  for (const auto& lbl : opt.x_labels)
    EXPECT_NE(svg.find(lbl), std::string::npos) << lbl;
  EXPECT_NE(svg.find("node 0"), std::string::npos);
  EXPECT_NE(svg.find("node 1"), std::string::npos);
  // y gridlines carry value labels; 1.0 is the series maximum.
  EXPECT_NE(svg.find("1"), std::string::npos);
  // Defaults stay byte-compatible with the pre-tick renderer: no axis
  // tick text and the inline label row instead of the legend block.
  std::string plain = series_svg(series, "completed fraction");
  EXPECT_EQ(plain.find("0ms"), std::string::npos);
}

}  // namespace
}  // namespace dpgen::sim
