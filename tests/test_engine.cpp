// Integration tests for the engine: end-to-end execution of small problems
// through tiling + runtime + minimpi, swept across tile widths, rank
// counts, thread counts, priority policies and balance methods, validated
// against closed-form answers.

#include <gtest/gtest.h>

#include <cmath>

#include "engine/engine.hpp"
#include "problems/problems.hpp"

namespace dpgen::engine {
namespace {

/// f(x) = f(x+1) + 1 with f(N) = 1: f(0) == N + 1.
spec::ProblemSpec countdown_spec(Int width) {
  spec::ProblemSpec s;
  s.name("countdown")
      .params({"N"})
      .vars({"x"})
      .constraint("x >= 0")
      .constraint("x <= N")
      .dep("r1", {1})
      .load_balance({"x"})
      .tile_widths({width})
      .center_code("V[loc] = is_valid_r1 ? V[loc_r1] + 1.0 : 1.0;");
  return s;
}

CenterFn countdown_kernel() {
  return [](const Cell& c) {
    c.V[c.loc] = c.valid[0] ? c.V[c.loc_dep[0]] + 1.0 : 1.0;
  };
}

/// Lattice-path counting on the square [0,N]^2: paths(x,y) =
/// paths(x+1,y) + paths(x,y+1), paths with no valid move = 1.
/// paths(x,y) = C((N-x)+(N-y), N-x).
spec::ProblemSpec paths_spec(Int width) {
  spec::ProblemSpec s;
  s.name("paths")
      .params({"N"})
      .vars({"x", "y"})
      .constraint("x >= 0")
      .constraint("x <= N")
      .constraint("y >= 0")
      .constraint("y <= N")
      .dep("r1", {1, 0})
      .dep("r2", {0, 1})
      .load_balance({"x", "y"})
      .tile_widths({width, width})
      .center_code(R"(
double dp_v = 0.0; int dp_any = 0;
if (is_valid_r1) { dp_v += V[loc_r1]; dp_any = 1; }
if (is_valid_r2) { dp_v += V[loc_r2]; dp_any = 1; }
V[loc] = dp_any ? dp_v : 1.0;
)");
  return s;
}

CenterFn paths_kernel() {
  return [](const Cell& c) {
    double v = 0.0;
    bool any = false;
    if (c.valid[0]) {
      v += c.V[c.loc_dep[0]];
      any = true;
    }
    if (c.valid[1]) {
      v += c.V[c.loc_dep[1]];
      any = true;
    }
    c.V[c.loc] = any ? v : 1.0;
  };
}

double binom(Int n, Int k) {
  double r = 1.0;
  for (Int i = 1; i <= k; ++i)
    r = r * static_cast<double>(n - k + i) / static_cast<double>(i);
  return r;
}

TEST(EngineCountdown, SingleRankSingleThread) {
  for (Int width : {1, 3, 4, 7, 16}) {
    tiling::TilingModel model(countdown_spec(width));
    EngineOptions opt;
    opt.probes = {{0}};
    auto result = run(model, {10}, countdown_kernel(), opt);
    EXPECT_DOUBLE_EQ(result.at({0}), 11.0) << "width " << width;
  }
}

TEST(EngineCountdown, MultiRankPipelines) {
  tiling::TilingModel model(countdown_spec(3));
  for (int ranks : {2, 3, 4}) {
    EngineOptions opt;
    opt.ranks = ranks;
    opt.probes = {{0}};
    auto result = run(model, {20}, countdown_kernel(), opt);
    EXPECT_DOUBLE_EQ(result.at({0}), 21.0) << ranks << " ranks";
    // A 1-D chain across ranks must actually communicate.
    long long remote = result.total(&runtime::RunStats::remote_edges);
    EXPECT_GE(remote, ranks - 1);
  }
}

class EnginePathsSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(EnginePathsSweep, MatchesBinomial) {
  auto [width, ranks, threads] = GetParam();
  tiling::TilingModel model(paths_spec(width));
  EngineOptions opt;
  opt.ranks = ranks;
  opt.threads = threads;
  opt.probes = {{0, 0}};
  const Int N = 12;
  auto result = run(model, {N}, paths_kernel(), opt);
  EXPECT_DOUBLE_EQ(result.at({0, 0}), binom(2 * N, N));
}

INSTANTIATE_TEST_SUITE_P(
    WidthRanksThreads, EnginePathsSweep,
    ::testing::Combine(::testing::Values(1, 3, 5, 8),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(1, 3)),
    [](const auto& info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "_r" +
             std::to_string(std::get<1>(info.param)) + "_t" +
             std::to_string(std::get<2>(info.param));
    });

TEST(EnginePaths, RecordAllMatchesClosedFormEverywhere) {
  tiling::TilingModel model(paths_spec(4));
  EngineOptions opt;
  opt.record_all = true;
  opt.ranks = 2;
  const Int N = 7;
  auto result = run(model, {N}, paths_kernel(), opt);
  EXPECT_EQ(result.values.size(), static_cast<std::size_t>((N + 1) * (N + 1)));
  for (Int x = 0; x <= N; ++x)
    for (Int y = 0; y <= N; ++y)
      EXPECT_DOUBLE_EQ(result.at({x, y}), binom(2 * N - x - y, N - x))
          << "(" << x << "," << y << ")";
}

TEST(EnginePaths, BothPoliciesAndBalancersAgree) {
  tiling::TilingModel model(paths_spec(3));
  const Int N = 9;
  for (auto policy : {runtime::PriorityPolicy::kColumnMajor,
                      runtime::PriorityPolicy::kLevelSet}) {
    for (auto method : {tiling::BalanceMethod::kPerDimension,
                        tiling::BalanceMethod::kHyperplane}) {
      EngineOptions opt;
      opt.ranks = 3;
      opt.threads = 2;
      opt.policy = policy;
      opt.balance = method;
      opt.probes = {{0, 0}};
      auto result = run(model, {N}, paths_kernel(), opt);
      EXPECT_DOUBLE_EQ(result.at({0, 0}), binom(2 * N, N));
    }
  }
}

TEST(EnginePaths, PoisonedBuffersStayOutOfResults) {
  // With NaN-poisoned buffers, any read of a ghost cell that was never
  // unpacked (or of an invalid dependency) would contaminate the result.
  tiling::TilingModel model(paths_spec(4));
  EngineOptions opt;
  opt.poison_buffers = true;
  opt.ranks = 2;
  opt.record_all = true;
  auto result = run(model, {8}, paths_kernel(), opt);
  for (const auto& [point, value] : result.values)
    EXPECT_FALSE(std::isnan(value)) << vec_to_string(point);
}

TEST(EnginePaths, BoundedMailboxesStillComplete) {
  tiling::TilingModel model(paths_spec(2));
  EngineOptions opt;
  opt.ranks = 4;
  opt.threads = 2;
  opt.mailbox_capacity = 1;  // smallest legal buffer budget
  opt.probes = {{0, 0}};
  auto result = run(model, {11}, paths_kernel(), opt);
  EXPECT_DOUBLE_EQ(result.at({0, 0}), binom(22, 11));
}

TEST(EngineStats, TileAndEdgeAccounting) {
  tiling::TilingModel model(paths_spec(3));
  IntVec params{10};
  EngineOptions opt;
  opt.ranks = 2;
  opt.probes = {{0, 0}};
  auto result = run(model, params, paths_kernel(), opt);
  EXPECT_EQ(result.total(&runtime::RunStats::tiles_executed),
            model.total_tiles(params));
  // Exactly one dependency-free tile on the square: the (max, max) corner.
  EXPECT_EQ(result.total(&runtime::RunStats::initial_tiles), 1);
  EXPECT_GT(result.total(&runtime::RunStats::remote_edges), 0);
  for (const auto& s : result.rank_stats) {
    EXPECT_GE(s.init_scan_seconds, 0.0);
    EXPECT_GT(s.total_seconds, 0.0);
  }
}

TEST(EngineResultApi, MissingProbeThrows) {
  tiling::TilingModel model(countdown_spec(4));
  EngineOptions opt;
  opt.probes = {{0}};
  auto result = run(model, {5}, countdown_kernel(), opt);
  EXPECT_THROW(result.at({3}), Error);
}

TEST(EngineEqualitySpaces, DiagonalChain) {
  // Iteration space restricted to the diagonal x == y; the tile grid
  // contains off-diagonal tiles only as rational artifacts, and most
  // diagonal-band tiles are clipped.  f(x,y) = f(x+1,y+1) + 1.
  spec::ProblemSpec s;
  s.name("diag")
      .params({"N"})
      .vars({"x", "y"})
      .constraint("x >= 0")
      .constraint("x <= N")
      .constraint("x == y")
      .dep("r1", {1, 1})
      .load_balance({"x"})
      .tile_widths({3, 4})  // deliberately mismatched widths
      .center_code("V[loc] = is_valid_r1 ? V[loc_r1] + 1.0 : 1.0;");
  tiling::TilingModel model(std::move(s));
  const Int N = 17;
  EXPECT_EQ(model.total_cells({N}), N + 1);
  EngineOptions opt;
  opt.ranks = 2;
  opt.probes = {{0, 0}};
  auto result = run(model, {N},
                    [](const Cell& c) {
                      c.V[c.loc] = c.valid[0] ? c.V[c.loc_dep[0]] + 1.0 : 1.0;
                    },
                    opt);
  EXPECT_DOUBLE_EQ(result.at({0, 0}), static_cast<double>(N + 1));
}

TEST(EngineEqualitySpaces, StridedLattice) {
  // x == 2y: only even x participate.  f(x,y) = f(x+2,y+1) + 1, so
  // f(0,0) counts the lattice points: floor(N/2) + 1.
  spec::ProblemSpec s;
  s.name("stride")
      .params({"N"})
      .vars({"x", "y"})
      .constraint("x >= 0")
      .constraint("x <= N")
      .constraint("x == 2*y")
      .dep("r1", {2, 1})
      .load_balance({"x"})
      .tile_widths({4, 4})
      .center_code("V[loc] = is_valid_r1 ? V[loc_r1] + 1.0 : 1.0;");
  tiling::TilingModel model(std::move(s));
  const Int N = 21;
  EXPECT_EQ(model.total_cells({N}), N / 2 + 1);
  EngineOptions opt;
  opt.probes = {{0, 0}};
  opt.poison_buffers = true;
  auto result = run(model, {N},
                    [](const Cell& c) {
                      c.V[c.loc] = c.valid[0] ? c.V[c.loc_dep[0]] + 1.0 : 1.0;
                    },
                    opt);
  EXPECT_DOUBLE_EQ(result.at({0, 0}), static_cast<double>(N / 2 + 1));
}

// ---- failure injection: a broken dependency count must stall-fail, not
// hang forever -----------------------------------------------------------

class BrokenDepCountHooks final : public runtime::ProblemHooks<double> {
 public:
  int dim() const override { return 1; }
  Int buffer_size() const override { return 2; }
  int num_edges() const override { return 1; }
  const IntVec& edge_offset(int) const override { return offset_; }
  bool tile_exists(const IntVec& t) const override {
    return t[0] >= 0 && t[0] <= 1;
  }
  int dep_count(const IntVec&) const override { return 5; }  // wrong: is 1
  void initial_tiles(std::vector<IntVec>& out) const override {
    out.push_back({1});
  }
  int owner(const IntVec&) const override { return 0; }
  Int owned_tiles(int) const override { return 2; }
  void execute_tile(const IntVec&, double*) override {}
  Int edge_capacity(int) const override { return 0; }
  Int pack(int, const IntVec&, const double*, double*) const override {
    return 0;
  }
  void unpack(int, const IntVec&, const double*, Int, double*) const override {
  }

 private:
  IntVec offset_{1};
};

TEST(EngineFailureInjection, StallTimeoutFires) {
  minimpi::World world(1);
  BrokenDepCountHooks hooks;
  runtime::RunOptions opt;
  opt.order = runtime::TileOrder({0}, {1}, runtime::PriorityPolicy::kColumnMajor);
  opt.stall_timeout_seconds = 0.2;
  // The abort must carry the scheduler snapshot: tile {1} executed, its
  // edge delivered to tile {0}, which then waits forever for the 4
  // dependencies that do not exist.
  try {
    runtime::run_node<double>(hooks, world.comm(0), opt);
    FAIL() << "expected the stall timeout to fire";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("runtime stalled"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ready=0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("pending=1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("buffered_edges=1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("executed=1/2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("blocked_senders=0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("last tile completed: (1)"), std::string::npos) << msg;
  }
}

// ---- live telemetry -----------------------------------------------------

TEST(EngineMonitor, BalancedRunIsQuietAndStillCorrect) {
  // monitor_path "-" turns monitoring on without an event log.  A
  // balanced in-process run must produce the right answer, at least one
  // heartbeat per rank, and zero straggler flags, and the Monitor must
  // unregister from the hub when the run ends.
  tiling::TilingModel model(paths_spec(3));
  EngineOptions opt;
  opt.ranks = 2;
  opt.threads = 2;
  opt.probes = {{0, 0}};
  opt.monitor_path = "-";
  opt.monitor_interval = 0.002;
  const Int N = 40;
  auto result = run(model, {N}, paths_kernel(), opt);
  EXPECT_DOUBLE_EQ(result.at({0, 0}), binom(2 * N, N));
  EXPECT_TRUE(result.stragglers.empty());
  EXPECT_EQ(obs::MonitorHub::instance().count(), 0u);
}

TEST(EngineMonitor, StallWarningFiresAtHalfTheTimeout) {
  // The broken-dep stall from above, but monitored: at 50% of the stall
  // budget the driver must raise a stall_warning through the Monitor
  // (visible live) before the run aborts at 100%.
  obs::MonitorOptions mopt;
  mopt.nranks = 1;
  mopt.interval_s = 0.01;
  obs::Monitor monitor(std::move(mopt));
  minimpi::World world(1);
  BrokenDepCountHooks hooks;
  runtime::RunOptions opt;
  opt.order =
      runtime::TileOrder({0}, {1}, runtime::PriorityPolicy::kColumnMajor);
  opt.stall_timeout_seconds = 0.4;
  opt.monitor = &monitor;
  EXPECT_THROW(runtime::run_node<double>(hooks, world.comm(0), opt), Error);
  EXPECT_GE(monitor.stall_warnings(), 1);
}

}  // namespace
}  // namespace dpgen::engine
