// Unit tests for the continuous-benchmarking registry (obs/bench_registry):
// registration and dedup, the robust trial statistics, the dpgen.bench.v1
// round-trip against the checked-in schema, and the regression gate's
// verdicts — including the self-test path that injects a synthetic
// slowdown and expects the gate to fire.

#include "obs/bench_registry.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "support/json.hpp"
#include "support/json_schema.hpp"

namespace dpgen::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

BenchSample fixed_sample(double seconds) {
  BenchSample s;
  s.seconds = seconds;
  return s;
}

/// A doc with one record per (name, median, mad) triple; samples are
/// synthesized so parse/gate paths see a plausible record.
BenchDoc make_doc(const std::string& fingerprint,
                  std::vector<std::tuple<std::string, double, double>>
                      benches) {
  BenchDoc doc;
  doc.meta.git_sha = "abcdef123456";
  doc.meta.machine = "test-cpu x4";
  doc.meta.fingerprint = fingerprint;
  doc.meta.timestamp = 1700000000;
  doc.meta.trials = 3;
  for (auto& [name, median, mad] : benches) {
    BenchRecord rec;
    rec.name = name;
    rec.stats.trials = 3;
    rec.stats.kept = 3;
    rec.stats.median_s = median;
    rec.stats.mad_s = mad;
    rec.stats.min_s = median - mad;
    rec.stats.max_s = median + mad;
    rec.stats.samples_s = {median - mad, median, median + mad};
    doc.records.push_back(std::move(rec));
  }
  return doc;
}

TEST(BenchRegistry, RegistrationDedupAndSelect) {
  BenchRegistry& reg = BenchRegistry::instance();
  ASSERT_TRUE(reg.add("t/alpha", [] { return fixed_sample(1.0); }));
  ASSERT_TRUE(reg.add("t/beta", [] { return fixed_sample(2.0); }));
  // Duplicate names are rejected; the first registration wins.
  EXPECT_FALSE(reg.add("t/alpha", [] { return fixed_sample(9.0); }));
  ASSERT_NE(reg.find("t/alpha"), nullptr);
  EXPECT_EQ(reg.find("t/alpha")->run().seconds, 1.0);
  EXPECT_EQ(reg.find("t/missing"), nullptr);

  std::vector<std::string> all = reg.select("");
  ASSERT_GE(all.size(), 2u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));

  std::vector<std::string> one = reg.select("t/al");
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], "t/alpha");

  std::vector<std::string> both = reg.select("t/alpha,t/beta");
  EXPECT_EQ(both.size(), 2u);
}

TEST(BenchRegistry, RobustStatsRejectsOutliers) {
  // One 50s sample among ~1s samples: a classic preemption outlier.
  TrialStats st = robust_stats({1.0, 1.1, 0.9, 1.05, 50.0});
  EXPECT_EQ(st.trials, 5);
  EXPECT_EQ(st.kept, 4);
  EXPECT_DOUBLE_EQ(st.median_s, 0.5 * (1.0 + 1.05));
  // min/max always cover every sample, rejected or not.
  EXPECT_DOUBLE_EQ(st.min_s, 0.9);
  EXPECT_DOUBLE_EQ(st.max_s, 50.0);
  EXPECT_EQ(st.samples_s.size(), 5u);
}

TEST(BenchRegistry, RobustStatsIdenticalSamplesKeepAll) {
  TrialStats st = robust_stats({2.0, 2.0, 2.0});
  EXPECT_EQ(st.kept, 3);
  EXPECT_DOUBLE_EQ(st.median_s, 2.0);
  EXPECT_DOUBLE_EQ(st.mad_s, 0.0);
}

TEST(BenchRegistry, RunBenchAppliesSlowdownAndPicksMedianTrialMetrics) {
  int calls = 0;
  BenchEntry entry;
  entry.name = "t/slowdown";
  entry.run = [&calls] {
    BenchSample s;
    s.seconds = 0.010 * (calls + 1);  // 10ms, 20ms, 30ms
    s.metrics = {{"trial", static_cast<double>(calls)}};
    ++calls;
    return s;
  };
  BenchRecord rec = run_bench(entry, /*trials=*/3, /*warmup=*/0,
                              /*slowdown=*/2.0);
  ASSERT_EQ(rec.stats.samples_s.size(), 3u);
  EXPECT_DOUBLE_EQ(rec.stats.samples_s[0], 0.020);
  EXPECT_DOUBLE_EQ(rec.stats.median_s, 0.040);
  // The metrics come from the trial closest to the median (trial 1).
  ASSERT_EQ(rec.metrics.size(), 1u);
  EXPECT_DOUBLE_EQ(rec.metrics[0].second, 1.0);
}

TEST(BenchRegistry, JsonRoundTripValidatesAgainstSchema) {
  BenchDoc doc = make_doc("feedc0de00000000",
                          {{"t/a", 0.01, 0.001}, {"t/b", 0.5, 0.0}});
  doc.records[0].metrics = {{"edges_per_s", 1.25e6}, {"tiles", 42.0}};
  const std::string text = bench_json(doc);

  json::ValuePtr parsed = json::parse(text);
  json::ValuePtr schema = json::parse(read_file(DPGEN_BENCH_SCHEMA));
  for (const std::string& e : json::validate(*schema, *parsed))
    ADD_FAILURE() << e;

  BenchDoc back = parse_bench_doc(*parsed);
  EXPECT_EQ(back.meta.git_sha, doc.meta.git_sha);
  EXPECT_EQ(back.meta.machine, doc.meta.machine);
  EXPECT_EQ(back.meta.fingerprint, doc.meta.fingerprint);
  EXPECT_EQ(back.meta.timestamp, doc.meta.timestamp);
  EXPECT_EQ(back.meta.trials, doc.meta.trials);
  ASSERT_EQ(back.records.size(), 2u);
  EXPECT_EQ(back.records[0].name, "t/a");
  EXPECT_DOUBLE_EQ(back.records[0].stats.median_s, 0.01);
  EXPECT_DOUBLE_EQ(back.records[0].stats.mad_s, 0.001);
  ASSERT_EQ(back.records[0].metrics.size(), 2u);
  EXPECT_DOUBLE_EQ(back.records[0].stats.samples_s[1], 0.01);
}

TEST(BenchRegistry, GateClassifiesEveryVerdict) {
  BenchDoc baseline = make_doc("fp", {{"t/regressed", 0.010, 0.0001},
                                      {"t/noisy_ok", 0.010, 0.0001},
                                      {"t/gone", 0.010, 0.0001},
                                      {"t/improved", 0.010, 0.0001}});
  BenchDoc run = make_doc("fp", {{"t/regressed", 0.015, 0.0001},
                                 {"t/noisy_ok", 0.0102, 0.0001},
                                 {"t/new", 0.010, 0.0001},
                                 {"t/improved", 0.005, 0.0001}});
  GateResult r = gate(baseline, run);
  EXPECT_TRUE(r.fingerprint_match);
  EXPECT_EQ(r.regressions, 1);
  EXPECT_EQ(r.improvements, 1);
  ASSERT_EQ(r.findings.size(), 5u);
  // Findings come back sorted by name.
  EXPECT_EQ(r.findings[0].name, "t/gone");
  EXPECT_EQ(r.findings[0].verdict, GateVerdict::kNotRun);
  EXPECT_EQ(r.findings[1].name, "t/improved");
  EXPECT_EQ(r.findings[1].verdict, GateVerdict::kImprovement);
  EXPECT_EQ(r.findings[2].name, "t/new");
  EXPECT_EQ(r.findings[2].verdict, GateVerdict::kNoBaseline);
  EXPECT_EQ(r.findings[3].name, "t/noisy_ok");
  EXPECT_EQ(r.findings[3].verdict, GateVerdict::kOk);
  EXPECT_EQ(r.findings[4].name, "t/regressed");
  EXPECT_EQ(r.findings[4].verdict, GateVerdict::kRegression);
  EXPECT_NEAR(r.findings[4].ratio, 1.5, 1e-9);
}

TEST(BenchRegistry, GateNoiseWidensTheThreshold) {
  // A within-threshold delta under a huge MAD must not fire even though
  // the same ratio would fire under a tight MAD.
  BenchDoc baseline = make_doc("fp", {{"t/jittery", 0.010, 0.002}});
  BenchDoc run = make_doc("fp", {{"t/jittery", 0.0115, 0.002}});
  GateResult r = gate(baseline, run);
  // threshold = max(0.10, 5 * 0.002 / 0.010) = 1.0; ratio 1.15 is inside.
  EXPECT_EQ(r.regressions, 0);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].verdict, GateVerdict::kOk);
  EXPECT_DOUBLE_EQ(r.findings[0].threshold, 1.0);
}

TEST(BenchRegistry, GateAbsoluteFloorProtectsMicrosecondBenches) {
  // Ratio 5x but only 40 microseconds apart: below the 1e-4s floor, so
  // cross-process jitter on tiny benches cannot trip the gate.
  BenchDoc baseline = make_doc("fp", {{"t/tiny", 1e-5, 0.0}});
  BenchDoc run = make_doc("fp", {{"t/tiny", 5e-5, 0.0}});
  GateResult r = gate(baseline, run);
  EXPECT_EQ(r.regressions, 0);
  EXPECT_EQ(r.findings[0].verdict, GateVerdict::kOk);

  // The same ratio above the floor fires.
  BenchDoc baseline2 = make_doc("fp", {{"t/big", 1e-2, 0.0}});
  BenchDoc run2 = make_doc("fp", {{"t/big", 5e-2, 0.0}});
  EXPECT_EQ(gate(baseline2, run2).regressions, 1);
}

TEST(BenchRegistry, GateReportsFingerprintMismatch) {
  BenchDoc baseline = make_doc("fp-one", {{"t/x", 0.010, 0.0}});
  BenchDoc run = make_doc("fp-two", {{"t/x", 0.010, 0.0}});
  EXPECT_FALSE(gate(baseline, run).fingerprint_match);
}

TEST(BenchRegistry, GateTextAndJsonRenderings) {
  BenchDoc baseline = make_doc("fp", {{"t/regressed", 0.010, 0.0}});
  BenchDoc run = make_doc("fp", {{"t/regressed", 0.020, 0.0}});
  GateResult r = gate(baseline, run);
  std::string text = gate_text(r);
  EXPECT_NE(text.find("1 regression(s)"), std::string::npos) << text;
  EXPECT_NE(text.find("t/regressed"), std::string::npos);

  json::ValuePtr parsed = json::parse(gate_json(r));
  EXPECT_EQ(parsed->at("schema").as_string(), "dpgen.benchgate.v1");
  EXPECT_EQ(parsed->at("regressions").as_number(), 1.0);
  EXPECT_EQ(parsed->at("findings").as_array().size(), 1u);
  EXPECT_EQ(parsed->at("findings").as_array()[0]->at("verdict").as_string(),
            "regression");
}

TEST(BenchRegistry, InjectedSlowdownFiresTheGate) {
  // End-to-end self-test: measure a deterministic bench, then re-run it
  // through run_bench's slowdown injection and gate the two documents —
  // exactly what `dpgen-bench --gate --self-test-slowdown=4` does.
  BenchEntry entry;
  entry.name = "t/self_test";
  entry.run = [] { return fixed_sample(0.010); };

  BenchDoc baseline = make_doc("fp", {});
  baseline.records.push_back(run_bench(entry, 3, 0));
  BenchDoc same = make_doc("fp", {});
  same.records.push_back(run_bench(entry, 3, 0));
  EXPECT_EQ(gate(baseline, same).regressions, 0);

  BenchDoc slowed = make_doc("fp", {});
  slowed.records.push_back(run_bench(entry, 3, 0, /*slowdown=*/4.0));
  GateResult r = gate(baseline, slowed);
  EXPECT_EQ(r.regressions, 1);
  EXPECT_EQ(r.findings[0].verdict, GateVerdict::kRegression);
  EXPECT_NEAR(r.findings[0].ratio, 4.0, 1e-9);
}

}  // namespace
}  // namespace dpgen::obs
