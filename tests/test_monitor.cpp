// Tests for the live-telemetry monitor (obs/monitor.hpp): seqlock
// snapshot coherence under a racing writer, the straggler detector over
// hand-scripted heartbeat sequences (balanced pipeline fill stays quiet, a
// slow rank is flagged by name, a rank that serialised before its peers is
// caught retrospectively), the dpgen.events.v1 JSONL log against
// tools/events_schema.json, and the MonitorHub registry.
//
// Every scenario drives the detector deterministically: sampler_thread is
// off and the test plays publisher + DES loop itself via publish()/tick().

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "json_util.hpp"
#include "obs/monitor.hpp"
#include "support/json_schema.hpp"

namespace dpgen {
namespace {

using obs::Monitor;
using obs::MonitorHub;
using obs::MonitorOptions;
using obs::RankSnapshot;
using obs::StragglerFlag;

MonitorOptions scripted(int nranks, double interval_s = 0.1) {
  MonitorOptions opt;
  opt.nranks = nranks;
  opt.interval_s = interval_s;
  opt.sampler_thread = false;
  opt.source = "sim";
  opt.problem = "scripted";
  return opt;
}

/// A heartbeat for a rank that has `executed` tiles (of `owned`) and
/// `cells` cells in flight or done, with one busy worker.
RankSnapshot beat(double t, long long executed, long long cells,
                  long long owned, long long active_workers = 1,
                  long long workers = 1) {
  RankSnapshot s;
  s.t_s = t;
  s.executed = executed;
  s.executed_cells = cells;
  s.owned = owned;
  s.active_workers = active_workers;
  s.workers = workers;
  return s;
}

TEST(MonitorSeqlock, SnapshotsAreCoherentUnderRacingWriter) {
  Monitor mon(scripted(1));
  constexpr long long kWrites = 20000;

  std::thread writer([&] {
    for (long long i = 1; i <= kWrites; ++i) {
      RankSnapshot s;
      s.t_s = static_cast<double>(i);
      s.executed = i;
      s.executed_cells = 3 * i;
      s.bytes_sent = 2 * i;
      s.owned = kWrites;
      mon.publish(0, s);
    }
  });

  // Reader: every observed snapshot must be internally consistent (the
  // seqlock recheck discards torn reads) and epochs must never go back.
  long long last_epoch = 0;
  long long reads = 0;
  for (;;) {
    RankSnapshot s = mon.latest(0);
    if (s.epoch != 0) {
      EXPECT_GE(s.epoch, last_epoch);
      last_epoch = s.epoch;
      EXPECT_EQ(s.bytes_sent, 2 * s.executed);
      EXPECT_EQ(s.executed_cells, 3 * s.executed);
    }
    ++reads;
    if (s.executed == kWrites) break;
  }
  writer.join();
  EXPECT_GT(reads, 0);
  EXPECT_EQ(mon.heartbeats(), kWrites);
  EXPECT_EQ(mon.latest(0).epoch, kWrites);
}

TEST(MonitorSeqlock, UnpublishedRankReadsAsDefault) {
  Monitor mon(scripted(2));
  RankSnapshot s = mon.latest(1);
  EXPECT_EQ(s.epoch, 0);
  EXPECT_EQ(s.executed, 0);
  EXPECT_EQ(s.owned, 0);
}

TEST(MonitorClaim, TickArmsEachRankExactlyOnce) {
  Monitor mon(scripted(2));
  EXPECT_FALSE(mon.claim(0));
  EXPECT_FALSE(mon.claim(1));
  mon.tick(0.1);
  EXPECT_TRUE(mon.claim(0));
  EXPECT_FALSE(mon.claim(0));  // consumed until the next tick
  EXPECT_TRUE(mon.claim(1));
  mon.tick(0.2);
  EXPECT_TRUE(mon.claim(0));
}

TEST(MonitorDetector, BalancedRanksStayQuietThroughDrain) {
  Monitor mon(scripted(2));
  // Both ranks complete one 100-cell tile per tick, finish at tick 10,
  // then idle through four drain ticks.  No flag at any point.
  for (int k = 1; k <= 14; ++k) {
    const double t = 0.1 * k;
    const long long done = std::min<long long>(k, 10);
    mon.publish(0, beat(t, done, 100 * done, 10, k <= 10 ? 1 : 0));
    mon.publish(1, beat(t, done, 100 * done, 10, k <= 10 ? 1 : 0));
    mon.tick(t);
  }
  mon.stop(1.5);
  EXPECT_TRUE(mon.stragglers().empty());
}

TEST(MonitorDetector, SlowRankIsFlaggedByName) {
  Monitor mon(scripted(2));
  // Rank 1 moves cells at 30% of rank 0's pace over identical active
  // time: below the 0.5 floor, so it must be flagged (and only it).
  for (int k = 1; k <= 8; ++k) {
    const double t = 0.1 * k;
    mon.publish(0, beat(t, k, 100 * k, 20));
    mon.publish(1, beat(t, k, 30 * k, 20));
    mon.tick(t);
  }
  mon.stop(0.9);
  std::vector<StragglerFlag> flags = mon.stragglers();
  ASSERT_EQ(flags.size(), 1u);
  EXPECT_EQ(flags[0].rank, 1);
  EXPECT_GT(flags[0].median_pace, flags[0].pace);
  EXPECT_GT(flags[0].lag, 0.5);
  EXPECT_GT(flags[0].t_s, 0.2);  // not before warmup
}

TEST(MonitorDetector, FlagIsStickyAndReportedOnce) {
  Monitor mon(scripted(2));
  for (int k = 1; k <= 30; ++k) {
    const double t = 0.1 * k;
    mon.publish(0, beat(t, k, 100 * k, 40));
    mon.publish(1, beat(t, k, 30 * k, 40));
    mon.tick(t);
  }
  mon.stop(3.1);
  EXPECT_EQ(mon.stragglers().size(), 1u);
}

TEST(MonitorDetector, TooFewTilesIsNotJudged) {
  Monitor mon(scripted(2));
  // Rank 1 completes only two (tiny) tiles: below min_executed_tiles, so
  // its wild apparent pace never joins the comparison.
  for (int k = 1; k <= 8; ++k) {
    const double t = 0.1 * k;
    mon.publish(0, beat(t, k, 100 * k, 20));
    mon.publish(1, beat(t, std::min(k, 2), 5 * std::min(k, 2), 20));
    mon.tick(t);
  }
  mon.stop(0.9);
  EXPECT_TRUE(mon.stragglers().empty());
}

TEST(MonitorDetector, StarvedRankAccruesNoActiveTime) {
  Monitor mon(scripted(2));
  // Rank 1 spends the first 10 ticks dependency-starved (no progress, no
  // ready tiles, no busy workers), then runs at the same per-active-second
  // pace as rank 0.  Wall-clock lag is not slowness: no flag.
  for (int k = 1; k <= 20; ++k) {
    const double t = 0.1 * k;
    mon.publish(0, beat(t, std::min(k, 10), 100 * std::min(k, 10), 10,
                        k <= 10 ? 1 : 0));
    const long long done1 = std::max(0, k - 10);
    mon.publish(1, beat(t, done1, 100 * done1, 10, k > 10 ? 1 : 0));
    mon.tick(t);
  }
  mon.stop(2.1);
  EXPECT_TRUE(mon.stragglers().empty());
}

TEST(MonitorDetector, TrickleFedRankIsJudgedAtTrueSpeed) {
  Monitor mon(scripted(2));
  // Rank 1 has two workers but only one ever busy (trickle-fed by its
  // upstream), moving cells at half of rank 0's rate.  Per busy worker it
  // is exactly as fast, so the utilization weighting must keep it clean.
  for (int k = 1; k <= 12; ++k) {
    const double t = 0.1 * k;
    mon.publish(0, beat(t, k, 200 * k, 30, 2, 2));
    mon.publish(1, beat(t, k, 100 * k, 30, 1, 2));
    mon.tick(t);
  }
  mon.stop(1.3);
  EXPECT_TRUE(mon.stragglers().empty());
}

TEST(MonitorDetector, SerializedStragglerIsCaughtRetrospectively) {
  Monitor mon(scripted(2));
  // Pipeline order runs the slow rank 1 to completion *before* rank 0
  // starts (coin_change's 2-node shape): no concurrent window exists, but
  // once rank 0 establishes the fleet pace, rank 1's frozen lifetime pace
  // is 30% of it and the flag must still fire.
  for (int k = 1; k <= 5; ++k) {
    const double t = 0.1 * k;
    mon.publish(0, beat(t, 0, 0, 5, 0));
    mon.publish(1, beat(t, k, 60 * k, 5));
    mon.tick(t);
  }
  for (int k = 6; k <= 12; ++k) {
    const double t = 0.1 * k;
    const long long done0 = std::min<long long>(k - 5, 5);
    mon.publish(0, beat(t, done0, 200 * done0, 5, done0 < 5 ? 1 : 0));
    mon.publish(1, beat(t, 5, 300, 5, 0));
    mon.tick(t);
  }
  mon.stop(1.3);
  std::vector<StragglerFlag> flags = mon.stragglers();
  ASSERT_EQ(flags.size(), 1u);
  EXPECT_EQ(flags[0].rank, 1);
}

TEST(MonitorDetector, CellBlindPublisherFallsBackToPredictedWork) {
  MonitorOptions opt = scripted(2);
  // Generated programs can't count cells (executed_cells stays 0); the
  // detector then scales owned-fractions by the planner's work shares.
  // Rank 1 owns half the cells of rank 0 and completes tiles at the same
  // *tile* rate — without the weights that reads as equal pace, with them
  // rank 1's per-second cell output is half.  Use a deep lag (4x) so the
  // flag does not depend on the exact shares.
  opt.predicted_work = {1000.0, 250.0};
  Monitor mon(std::move(opt));
  for (int k = 1; k <= 10; ++k) {
    const double t = 0.1 * k;
    mon.publish(0, beat(t, k, 0, 20));
    mon.publish(1, beat(t, k, 0, 20));
    mon.tick(t);
  }
  mon.stop(1.1);
  std::vector<StragglerFlag> flags = mon.stragglers();
  ASSERT_EQ(flags.size(), 1u);
  EXPECT_EQ(flags[0].rank, 1);
}

TEST(MonitorEvents, LogValidatesAgainstSchemaAndCountsAgree) {
  const std::string path = testing::TempDir() + "/dpgen_events_test.jsonl";
  std::remove(path.c_str());
  {
    MonitorOptions opt = scripted(2);
    opt.events_path = path;
    opt.predicted_work = {2000.0, 2000.0};
    Monitor mon(std::move(opt));
    for (int k = 1; k <= 8; ++k) {
      const double t = 0.1 * k;
      mon.publish(0, beat(t, k, 100 * k, 20));
      mon.publish(1, beat(t, k, 30 * k, 20));
      mon.tick(t);
    }
    RankSnapshot s = beat(0.85, 8, 240, 20);
    mon.stall_warning(1, s, 0.5, 1.0);
    mon.stop(0.9);
  }

  std::ifstream schema_in(DPGEN_EVENTS_SCHEMA);
  ASSERT_TRUE(schema_in.good()) << "cannot open " << DPGEN_EVENTS_SCHEMA;
  std::stringstream schema_ss;
  schema_ss << schema_in.rdbuf();
  auto schema = json::parse(schema_ss.str());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<json::ValuePtr> events;
  std::string line;
  long long heartbeats = 0, stragglers = 0, stall_warnings = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    auto ev = json::parse(line);
    std::vector<std::string> errors = json::validate(*schema, *ev);
    EXPECT_TRUE(errors.empty())
        << line << "\n first violation: " << errors.front();
    const std::string& kind = ev->at("event").as_string();
    if (kind == "heartbeat") ++heartbeats;
    if (kind == "straggler") {
      ++stragglers;
      EXPECT_EQ(ev->at("rank").as_number(), 1);
    }
    if (kind == "stall_warning") ++stall_warnings;
    events.push_back(std::move(ev));
  }
  ASSERT_GE(events.size(), 4u);
  EXPECT_EQ(events.front()->at("event").as_string(), "run_start");
  EXPECT_EQ(events.front()->at("problem").as_string(), "scripted");
  EXPECT_EQ(events.back()->at("event").as_string(), "run_end");
  EXPECT_EQ(heartbeats, 16);
  EXPECT_EQ(stragglers, 1);
  EXPECT_EQ(stall_warnings, 1);
  // run_end carries the totals the log itself shows.
  EXPECT_EQ(events.back()->at("heartbeats").as_number(), heartbeats);
  EXPECT_EQ(events.back()->at("stragglers").as_number(), stragglers);
  EXPECT_EQ(events.back()->at("stall_warnings").as_number(), stall_warnings);
  std::remove(path.c_str());
}

TEST(MonitorHubRegistry, MonitorsRegisterForTheirLifetime) {
  const std::size_t base = MonitorHub::instance().count();
  {
    Monitor mon(scripted(3));
    EXPECT_EQ(MonitorHub::instance().count(), base + 1);
    std::size_t seen = 0;
    MonitorHub::instance().visit([&](Monitor& m) {
      ++seen;
      EXPECT_EQ(m.options().nranks, 3);
    });
    EXPECT_EQ(seen, base + 1);
  }
  EXPECT_EQ(MonitorHub::instance().count(), base);
}

}  // namespace
}  // namespace dpgen
