// Unit and property tests for the tiling model: extended/tile spaces, tile
// dependencies, ghost geometry and mapping functions, pack spaces, validity
// checks, initial-tile detection and the load balancer.

#include <gtest/gtest.h>

#include <set>

#include "tiling/balance.hpp"
#include "tiling/model.hpp"

namespace dpgen::tiling {
namespace {

spec::ProblemSpec line_spec(Int width, IntVec dep = {1}) {
  spec::ProblemSpec s;
  s.name("line")
      .params({"N"})
      .vars({"x"})
      .constraint("x >= 0")
      .constraint("x <= N")
      .dep("r1", std::move(dep))
      .load_balance({"x"})
      .tile_widths({width})
      .center_code("V[loc] = 0.0;");
  return s;
}

spec::ProblemSpec triangle_spec(Int width, std::vector<IntVec> deps) {
  spec::ProblemSpec s;
  s.name("tri").params({"N"}).vars({"x", "y"});
  s.constraint("x >= 0").constraint("y >= 0").constraint("x + y <= N");
  int i = 1;
  for (auto& d : deps) s.dep("r" + std::to_string(i++), std::move(d));
  s.load_balance({"x", "y"}).tile_widths({width, width});
  s.center_code("V[loc] = 0.0;");
  return s;
}

TEST(TilingLine, TileSpaceAndCounts) {
  TilingModel m(line_spec(4));
  // x in [0, 10], width 4: tiles 0, 1, 2.
  EXPECT_TRUE(m.tile_in_space({10}, {0}));
  EXPECT_TRUE(m.tile_in_space({10}, {2}));
  EXPECT_FALSE(m.tile_in_space({10}, {3}));
  EXPECT_FALSE(m.tile_in_space({10}, {-1}));
  EXPECT_EQ(m.total_tiles({10}), 3);
  EXPECT_EQ(m.total_cells({10}), 11);
  EXPECT_EQ(m.cell_count({10}, {2}), 3);  // partial boundary tile {8,9,10}
  EXPECT_EQ(m.cell_count({10}, {0}), 4);
}

TEST(TilingLine, CellScanIsDescendingForPositiveDeps) {
  TilingModel m(line_spec(4));
  std::vector<Int> xs;
  m.for_each_cell({10}, {1},
                  [&](const IntVec& local, const IntVec& global) {
                    EXPECT_EQ(global[0], local[0] + 4);
                    xs.push_back(global[0]);
                  });
  EXPECT_EQ(xs, (std::vector<Int>{7, 6, 5, 4}));
}

TEST(TilingLine, CellScanIsAscendingForNegativeDeps) {
  TilingModel m(line_spec(4, {-1}));
  std::vector<Int> xs;
  m.for_each_cell({10}, {0},
                  [&](const IntVec&, const IntVec& g) { xs.push_back(g[0]); });
  EXPECT_EQ(xs, (std::vector<Int>{0, 1, 2, 3}));
}

TEST(TilingLine, EdgesAndGhosts) {
  TilingModel m(line_spec(4));
  ASSERT_EQ(m.num_edges(), 1);
  EXPECT_EQ(m.edges()[0].offset, (IntVec{1}));
  EXPECT_EQ(m.ghost_lo(), (IntVec{0}));
  EXPECT_EQ(m.ghost_hi(), (IntVec{1}));
  EXPECT_EQ(m.buffer_extents(), (IntVec{5}));
  EXPECT_EQ(m.buffer_size(), 5);
  EXPECT_EQ(m.dep_loc_offset(0), 1);
  // Slab: the producer's low cell only.
  EXPECT_EQ(m.edges()[0].box_lo, (IntVec{0}));
  EXPECT_EQ(m.edges()[0].box_hi, (IntVec{0}));
}

TEST(TilingLine, LongRangeDepSpansTwoTiles) {
  // r = (3) with width 2 crosses one or two tile boundaries.
  TilingModel m(line_spec(2, {3}));
  ASSERT_EQ(m.num_edges(), 2);
  EXPECT_EQ(m.edges()[0].offset, (IntVec{1}));
  EXPECT_EQ(m.edges()[1].offset, (IntVec{2}));
  EXPECT_EQ(m.ghost_hi(), (IntVec{3}));
}

TEST(TilingLine, NegativeDepGhostsOnLowSide) {
  TilingModel m(line_spec(4, {-2}));
  ASSERT_EQ(m.num_edges(), 1);
  EXPECT_EQ(m.edges()[0].offset, (IntVec{-1}));
  EXPECT_EQ(m.ghost_lo(), (IntVec{2}));
  EXPECT_EQ(m.ghost_hi(), (IntVec{0}));
  EXPECT_EQ(m.buffer_extents(), (IntVec{6}));
}

TEST(TilingTriangle, DiagonalDepYieldsThreeOffsets) {
  // The paper's IV.F example: template <1,1> causes dependencies on
  // t+(1,0), t+(1,1) and t+(0,1).
  TilingModel m(triangle_spec(4, {{1, 1}}));
  ASSERT_EQ(m.num_edges(), 3);
  std::set<IntVec> offsets;
  for (const auto& e : m.edges()) offsets.insert(e.offset);
  EXPECT_EQ(offsets, (std::set<IntVec>{{0, 1}, {1, 0}, {1, 1}}));
}

TEST(TilingTriangle, DepsOfInteriorAndBoundaryTiles) {
  TilingModel m(triangle_spec(4, {{1, 0}, {0, 1}}));
  // N=15: tiles satisfy 4tx + 4ty <= 15 (roughly). Tile (0,0) depends on
  // (1,0) and (0,1); the extreme tile on the x axis has fewer deps.
  auto deps00 = m.deps_of({15}, {0, 0});
  EXPECT_EQ(deps00.size(), 2u);
  auto deps30 = m.deps_of({15}, {3, 0});  // x in [12,15]: corner tile
  EXPECT_EQ(deps30.size(), 0u);
}

TEST(TilingTriangle, MappingFunctionIndicesAreConsistent) {
  TilingModel m(triangle_spec(4, {{1, 0}, {0, 1}}));
  // extents are (5, 5); strides (5, 1); ghosts high by one in each dim.
  EXPECT_EQ(m.buffer_extents(), (IntVec{5, 5}));
  EXPECT_EQ(m.strides(), (IntVec{5, 1}));
  EXPECT_EQ(m.local_index({0, 0}), 0);
  EXPECT_EQ(m.local_index({1, 2}), 7);
  EXPECT_EQ(m.dep_loc_offset(0), 5);
  EXPECT_EQ(m.dep_loc_offset(1), 1);
  // Ghost coordinates address the high edges.
  EXPECT_EQ(m.local_index({4, 0}), 20);
  EXPECT_EQ(m.local_index({0, 4}), 4);
}

TEST(TilingTriangle, ValidityChecksOnlyForViolableConstraints) {
  TilingModel m(triangle_spec(4, {{1, 0}, {0, 1}}));
  // Only "x + y <= N" can be violated by either dep; x >= 0 / y >= 0
  // cannot (positive shifts).
  ASSERT_EQ(m.validity_checks(0).size(), 1u);
  ASSERT_EQ(m.validity_checks(1).size(), 1u);
  // dep r1 at point (params=5, x=3, y=2): x+1+y = 6 > 5 -> invalid.
  EXPECT_FALSE(m.dep_valid_at({5, 3, 2}, 0));
  EXPECT_TRUE(m.dep_valid_at({5, 2, 2}, 0));
  EXPECT_FALSE(m.dep_valid_at({5, 2, 3}, 1));
}

TEST(TilingTriangle, PackCellsClipToGlobalSpace) {
  TilingModel m(triangle_spec(4, {{1, 0}, {0, 1}}));
  // Edge (1,0): producer packs its i_x == 0 slab, all valid i_y.
  int edge_x = -1;
  for (int e = 0; e < m.num_edges(); ++e)
    if (m.edges()[static_cast<std::size_t>(e)].offset == IntVec{1, 0})
      edge_x = e;
  ASSERT_GE(edge_x, 0);
  // Producer (1, 0) with N=9: x in [4,7], y in [0, min(3, 9-x)] -> at
  // i_x = 0 (x=4), y in [0,3]: 4 cells.
  std::vector<IntVec> cells;
  m.for_each_pack_cell({9}, {1, 0}, edge_x,
                       [&](const IntVec& j) { cells.push_back(j); });
  EXPECT_EQ(cells.size(), 4u);
  for (const auto& j : cells) EXPECT_EQ(j[0], 0);
  // Producer (1, 1): x in [4,7], y in [4,5] clipped by x+y<=9: at x=4,
  // y in [4,5]: 2 cells.
  cells.clear();
  m.for_each_pack_cell({9}, {1, 1}, edge_x,
                       [&](const IntVec& j) { cells.push_back(j); });
  EXPECT_EQ(cells.size(), 2u);
}

/// Brute-force initial tiles: tiles whose every dependency is outside.
std::set<IntVec> brute_force_initial(const TilingModel& m,
                                     const IntVec& params) {
  std::set<IntVec> out;
  m.for_each_tile(params, [&](const IntVec& t) {
    if (m.deps_of(params, t).empty()) out.insert(t);
  });
  return out;
}

TEST(InitialTiles, MatchBruteForceAcrossShapes) {
  struct Case {
    spec::ProblemSpec spec;
    IntVec params;
  };
  std::vector<Case> cases;
  cases.push_back({line_spec(4), {10}});
  cases.push_back({line_spec(4, {-1}), {10}});
  cases.push_back({line_spec(2, {3}), {13}});
  cases.push_back({triangle_spec(4, {{1, 0}, {0, 1}}), {15}});
  cases.push_back({triangle_spec(3, {{1, 1}}), {11}});
  cases.push_back({triangle_spec(5, {{1, 0}, {0, 1}, {1, 1}}), {23}});
  for (auto& c : cases) {
    TilingModel m(std::move(c.spec));
    std::set<IntVec> expected = brute_force_initial(m, c.params);
    std::set<IntVec> got;
    Int scanned =
        m.for_each_initial_tile(c.params, [&](const IntVec& t) {
          EXPECT_TRUE(got.insert(t).second) << "duplicate initial tile";
        });
    EXPECT_EQ(got, expected) << m.problem().problem_name();
    EXPECT_GE(scanned, static_cast<Int>(expected.size()));
  }
}

TEST(InitialTiles, FaceScanIsSubquadraticOnTriangle) {
  // The candidate scan should touch O(n) tiles of the n^2/2-tile triangle.
  TilingModel m(triangle_spec(2, {{1, 0}, {0, 1}}));
  Int total = m.total_tiles({40});
  Int scanned = m.for_each_initial_tile({40}, [](const IntVec&) {});
  EXPECT_LT(scanned, total / 2) << "face scan degenerated to a full scan";
}

TEST(TilingCounts, LbCellCountsSumToTotals) {
  TilingModel m(triangle_spec(4, {{1, 0}, {0, 1}}));
  IntVec params{17};
  Int cells = 0, tiles = 0;
  m.for_each_lb_cell(params, [&](const IntVec& lb) {
    cells += m.cell_count_lb(params, lb);
    tiles += m.tile_count_lb(params, lb);
  });
  EXPECT_EQ(cells, m.total_cells(params));
  EXPECT_EQ(tiles, m.total_tiles(params));
}

TEST(TilingCounts, CellCountsMatchScan) {
  TilingModel m(triangle_spec(3, {{1, 1}}));
  IntVec params{10};
  m.for_each_tile(params, [&](const IntVec& t) {
    Int n = 0;
    m.for_each_cell(params, t,
                    [&](const IntVec&, const IntVec&) { ++n; });
    EXPECT_EQ(n, m.cell_count(params, t)) << vec_to_string(t);
  });
}

TEST(TilingCounts, CellCountFnMatchesGenericOnSeparableSpec) {
  // Rectangular local space with widths that do not divide the extent, so
  // boundary tiles are clipped in one or both dimensions.
  spec::ProblemSpec s;
  s.name("g").params({"N"}).vars({"x", "y"});
  s.constraint("x >= 0").constraint("y >= 0");
  s.constraint("x <= N").constraint("y <= N");
  s.dep("r1", {1, 0}).dep("r2", {0, 1});
  s.load_balance({"x"}).tile_widths({3, 4});
  s.center_code("V[loc] = 0.0;");
  TilingModel m(std::move(s));
  IntVec params{13};
  CellCountFn fn = m.cell_count_fn(params);
  ASSERT_TRUE(fn.ok());
  Int total = 0;
  m.for_each_tile(params, [&](const IntVec& t) {
    EXPECT_EQ(fn.count(t), m.cell_count(params, t)) << vec_to_string(t);
    total += fn.count(t);
  });
  EXPECT_EQ(total, m.total_cells(params));
}

TEST(TilingCounts, CellCountFnRejectsCoupledLocalSpace) {
  // x + y <= N couples the two local variables: the per-dimension product
  // form is invalid, so the specialised counter must decline and leave
  // callers on the generic path.
  TilingModel m(triangle_spec(3, {{1, 0}, {0, 1}}));
  EXPECT_FALSE(m.cell_count_fn({10}).ok());
}

TEST(LoadBalance, SingleRankOwnsEverything) {
  TilingModel m(triangle_spec(4, {{1, 0}, {0, 1}}));
  LoadBalancer lb(m, {15}, 1);
  EXPECT_EQ(lb.owner({0, 0}), 0);
  EXPECT_EQ(lb.owned_tiles(0), m.total_tiles({15}));
  EXPECT_EQ(lb.owned_work(0), m.total_cells({15}));
  EXPECT_DOUBLE_EQ(lb.imbalance(), 1.0);
}

TEST(LoadBalance, WorkSplitsRoughlyEvenly) {
  TilingModel m(triangle_spec(2, {{1, 0}, {0, 1}}));
  IntVec params{39};
  for (int ranks : {2, 3, 4, 8}) {
    LoadBalancer lb(m, params, ranks);
    Int total = 0;
    for (int r = 0; r < ranks; ++r) {
      EXPECT_GT(lb.owned_work(r), 0) << "rank " << r << " starved";
      total += lb.owned_work(r);
    }
    EXPECT_EQ(total, m.total_cells(params));
    EXPECT_LT(lb.imbalance(), 1.35) << ranks << " ranks";
  }
}

TEST(LoadBalance, OwnersPartitionAllTiles) {
  TilingModel m(triangle_spec(3, {{1, 0}, {0, 1}}));
  IntVec params{20};
  LoadBalancer lb(m, params, 3);
  std::vector<Int> counted(3, 0);
  m.for_each_tile(params, [&](const IntVec& t) {
    int o = lb.owner(t);
    ASSERT_GE(o, 0);
    ASSERT_LT(o, 3);
    ++counted[static_cast<std::size_t>(o)];
  });
  for (int r = 0; r < 3; ++r)
    EXPECT_EQ(counted[static_cast<std::size_t>(r)], lb.owned_tiles(r));
}

TEST(LoadBalance, HyperplaneMethodAlsoPartitions) {
  TilingModel m(triangle_spec(2, {{1, 0}, {0, 1}}));
  IntVec params{23};
  LoadBalancer lb(m, params, 4, BalanceMethod::kHyperplane);
  Int total = 0;
  for (int r = 0; r < 4; ++r) total += lb.owned_work(r);
  EXPECT_EQ(total, m.total_cells(params));
  EXPECT_LT(lb.imbalance(), 1.5);
}

TEST(LoadBalance, MultiRankWithoutLbDimsRejected) {
  spec::ProblemSpec s = line_spec(4);
  s.load_balance({});
  TilingModel m(std::move(s));
  EXPECT_NO_THROW(LoadBalancer(m, {10}, 1));
  EXPECT_THROW(LoadBalancer(m, {10}, 2), Error);
}

TEST(TilingModel, TwoLbDimsOnBandit4d) {
  // A 4-dimensional simplex like the 2-arm bandit, balanced on two dims.
  spec::ProblemSpec s;
  s.name("b").params({"N"}).vars({"a", "b", "c", "d"});
  s.constraint("a >= 0").constraint("b >= 0");
  s.constraint("c >= 0").constraint("d >= 0");
  s.constraint("a + b + c + d <= N");
  s.dep("r1", {1, 0, 0, 0}).dep("r2", {0, 1, 0, 0});
  s.dep("r3", {0, 0, 1, 0}).dep("r4", {0, 0, 0, 1});
  s.load_balance({"a", "b"}).tile_widths({3, 3, 3, 3});
  s.center_code("V[loc] = 0.0;");
  TilingModel m(std::move(s));
  IntVec params{11};
  // C(11+4,4) = 1365 lattice points.
  EXPECT_EQ(m.total_cells(params), 1365);
  LoadBalancer lb(m, params, 4);
  Int total = 0;
  for (int r = 0; r < 4; ++r) total += lb.owned_work(r);
  EXPECT_EQ(total, 1365);
  EXPECT_EQ(m.lb_dims(), (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace dpgen::tiling
