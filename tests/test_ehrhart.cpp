// Unit tests for the Ehrhart quasi-polynomial fitter (Barvinok substitute):
// rational linear solving, polynomial evaluation/rendering and the
// interpolation-based fit validated against exact lattice counts.

#include <gtest/gtest.h>

#include "poly/count.hpp"
#include "poly/ehrhart.hpp"
#include "poly/parse.hpp"
#include "poly/system.hpp"

namespace dpgen::poly {
namespace {

TEST(LinearSolve, Identity) {
  std::vector<std::vector<Rat>> a{{Rat(1), Rat(0)}, {Rat(0), Rat(1)}};
  std::vector<Rat> b{Rat(3), Rat(-4)};
  auto x = solve_linear_system(a, b);
  EXPECT_EQ(x[0], Rat(3));
  EXPECT_EQ(x[1], Rat(-4));
}

TEST(LinearSolve, TwoByTwoExactFractions) {
  // 2x + y = 1 ; x + 3y = 2  ->  x = 1/5, y = 3/5
  std::vector<std::vector<Rat>> a{{Rat(2), Rat(1)}, {Rat(1), Rat(3)}};
  std::vector<Rat> b{Rat(1), Rat(2)};
  auto x = solve_linear_system(a, b);
  EXPECT_EQ(x[0], Rat(1, 5));
  EXPECT_EQ(x[1], Rat(3, 5));
}

TEST(LinearSolve, NeedsRowSwap) {
  std::vector<std::vector<Rat>> a{{Rat(0), Rat(1)}, {Rat(1), Rat(0)}};
  std::vector<Rat> b{Rat(7), Rat(9)};
  auto x = solve_linear_system(a, b);
  EXPECT_EQ(x[0], Rat(9));
  EXPECT_EQ(x[1], Rat(7));
}

TEST(LinearSolve, SingularThrows) {
  std::vector<std::vector<Rat>> a{{Rat(1), Rat(2)}, {Rat(2), Rat(4)}};
  std::vector<Rat> b{Rat(1), Rat(2)};
  EXPECT_THROW(solve_linear_system(a, b), Error);
}

TEST(PolynomialOps, EvalAndDegree) {
  Polynomial p(2);
  p.add_term({2, 0}, Rat(1, 2));  // x^2/2
  p.add_term({0, 1}, Rat(3));     // 3y
  p.add_term({0, 0}, Rat(-1));    // -1
  EXPECT_EQ(p.eval({4, 2}), Rat(8 + 6 - 1));
  EXPECT_EQ(p.degree(), 2);
  Polynomial zero(2);
  EXPECT_EQ(zero.degree(), -1);
  EXPECT_EQ(zero.eval({5, 5}), Rat(0));
}

TEST(PolynomialOps, TermsMergeAndCancel) {
  Polynomial p(1);
  p.add_term({1}, Rat(2));
  p.add_term({1}, Rat(-2));
  EXPECT_TRUE(p.terms().empty());
}

TEST(PolynomialOps, ToCppUsesCommonDenominator) {
  Polynomial p(1);
  p.add_term({2}, Rat(1, 2));
  p.add_term({1}, Rat(1, 2));  // (n^2+n)/2: triangular numbers
  std::string code = p.to_cpp({"n"});
  EXPECT_NE(code.find("/ 2LL"), std::string::npos);
  EXPECT_EQ(Polynomial(1).to_cpp({"n"}), "0LL");
}

/// Exact count of the d-simplex {x >= 0, sum x <= N} for a given N.
Int simplex_count(int d, Int n) {
  Vars v;
  v.add("N");
  for (int i = 0; i < d; ++i) v.add("x" + std::to_string(i));
  System s(v);
  LinExpr sum(d + 1);
  std::vector<int> order;
  for (int i = 0; i < d; ++i) {
    s.add_ge(LinExpr::term(d + 1, i + 1));
    sum += LinExpr::term(d + 1, i + 1);
    order.push_back(i + 1);
  }
  LinExpr cap = LinExpr::term(d + 1, 0) - sum;  // N - sum >= 0
  s.add_ge(cap);
  LatticeCounter counter(s, order);
  IntVec seed(static_cast<std::size_t>(d + 1), 0);
  seed[0] = n;
  return counter.count(seed);
}

TEST(EhrhartFit, SimplexIsPolynomial) {
  // Ehrhart polynomial of the standard d-simplex is C(N+d, d).
  for (int d = 1; d <= 4; ++d) {
    FitOptions opt;
    opt.degree = {d};
    opt.periods = {1};
    opt.base = {0};
    auto qp = fit_quasi_polynomial(
        [&](const IntVec& args) { return simplex_count(d, args[0]); }, opt);
    ASSERT_TRUE(qp.has_value()) << "d=" << d;
    for (Int n : {0, 3, 12, 25})
      EXPECT_EQ(qp->eval_int({n}), simplex_count(d, n)) << "d=" << d;
  }
}

TEST(EhrhartFit, QuasiPolynomialNeedsPeriod) {
  // count(N) = floor(N/2) + 1 (points 0 <= 2x <= N) is a quasi-polynomial
  // with period 2: a period-1 fit must fail validation, period 2 succeeds.
  auto count = [](const IntVec& args) { return args[0] / 2 + 1; };

  FitOptions p1;
  p1.degree = {1};
  p1.periods = {1};
  p1.base = {0};
  EXPECT_FALSE(fit_quasi_polynomial(count, p1).has_value());

  FitOptions p2 = p1;
  p2.periods = {2};
  auto qp = fit_quasi_polynomial(count, p2);
  ASSERT_TRUE(qp.has_value());
  for (Int n = 0; n <= 9; ++n) EXPECT_EQ(qp->eval_int({n}), n / 2 + 1);
}

TEST(EhrhartFit, TwoParameterRectangle) {
  // count(M, N) = (M+1)(N+1)
  auto count = [](const IntVec& a) { return (a[0] + 1) * (a[1] + 1); };
  FitOptions opt;
  opt.degree = {1, 1};
  opt.periods = {1, 1};
  opt.base = {0, 0};
  auto qp = fit_quasi_polynomial(count, opt);
  ASSERT_TRUE(qp.has_value());
  EXPECT_EQ(qp->eval_int({4, 7}), 40);
  EXPECT_EQ(qp->eval_int({0, 0}), 1);
}

TEST(EhrhartFit, NonPolynomialRejected) {
  // 2^N is not polynomial of degree 3: validation must catch it.
  auto count = [](const IntVec& a) { return Int(1) << a[0]; };
  FitOptions opt;
  opt.degree = {3};
  opt.periods = {1};
  opt.base = {0};
  EXPECT_FALSE(fit_quasi_polynomial(count, opt).has_value());
}

TEST(EhrhartFit, EmittedCppMatchesValues) {
  // Fit the triangle count C(N+2,2) and check the generated C++ string
  // contains integer-division structure we can trust.
  FitOptions opt;
  opt.degree = {2};
  opt.periods = {1};
  opt.base = {0};
  auto qp = fit_quasi_polynomial(
      [&](const IntVec& a) { return simplex_count(2, a[0]); }, opt);
  ASSERT_TRUE(qp.has_value());
  const Polynomial& p = qp->class_for({0});
  // (N+1)(N+2)/2 = (N^2 + 3N + 2)/2
  EXPECT_EQ(p.eval({10}), Rat(66));
  std::string code = p.to_cpp({"N"});
  EXPECT_NE(code.find("/ 2LL"), std::string::npos);
}

TEST(QuasiPolynomialClasses, ResiduesHandleNegatives) {
  QuasiPolynomial qp({2});
  Polynomial even(1), odd(1);
  even.add_term({0}, Rat(100));
  odd.add_term({0}, Rat(200));
  qp.set_class({0}, even);
  qp.set_class({1}, odd);
  EXPECT_EQ(qp.eval_int({4}), 100);
  EXPECT_EQ(qp.eval_int({5}), 200);
  EXPECT_EQ(qp.eval_int({-3}), 200);  // -3 mod 2 == 1
  EXPECT_EQ(qp.eval_int({-4}), 100);
}

TEST(QuasiPolynomialClasses, MissingClassThrows) {
  QuasiPolynomial qp({3});
  Polynomial p(1);
  qp.set_class({0}, p);
  EXPECT_THROW(qp.eval({1}), Error);
}

}  // namespace
}  // namespace dpgen::poly
