// Tests for the observability subsystem: metrics instruments, the span
// tracer, Chrome trace-event export, and the end-to-end multi-rank path —
// a real engine run whose exported timeline is validated structurally and
// whose counters must satisfy conservation laws (every sent edge is
// delivered, every owned tile is executed exactly once).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "json_util.hpp"
#include "obs/export.hpp"
#include "obs/gather.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tiling/balance.hpp"

namespace dpgen {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Metrics, CounterGaugeHistogramBasics) {
  obs::Counter c;
  c.add(5);
  c.increment();
  EXPECT_EQ(c.value(), 6);
  c.reset();
  EXPECT_EQ(c.value(), 0);

  obs::Gauge g;
  g.set(7);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.max(), 7);

  obs::Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(5);
  h.observe(1024);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 1030);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 1024);
  EXPECT_EQ(h.bucket(0), 1);  // the zero observation
  EXPECT_EQ(h.bucket(1), 1);  // 1 lands in [1,2)
  EXPECT_EQ(h.bucket(3), 1);  // 5 lands in [4,8)
  EXPECT_EQ(h.bucket(11), 1);  // 1024 lands in [1024,2048)
}

TEST(Metrics, RegistryJsonParsesAndKeepsHandles) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Counter& c = reg.counter("test_obs.events");
  obs::Counter& c2 = reg.counter("test_obs.events");
  EXPECT_EQ(&c, &c2);  // same name, same instrument
  c.add(42);
  reg.gauge("test_obs.level").set(9);
  reg.histogram("test_obs.sizes").observe(100);

  auto doc = json::parse(reg.to_json());
  EXPECT_EQ(doc->at("counters").at("test_obs.events").as_number(), 42);
  EXPECT_EQ(doc->at("gauges").at("test_obs.level").at("value").as_number(),
            9);
  const auto& hist = doc->at("histograms").at("test_obs.sizes");
  EXPECT_EQ(hist.at("count").as_number(), 1);
  EXPECT_EQ(hist.at("sum").as_number(), 100);

  reg.reset();
  EXPECT_EQ(c.value(), 0);  // reset zeroes but the reference stays valid
}

TEST(Metrics, HistogramQuantilesInterpolateLog2Buckets) {
  obs::Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty

  // A single observation is every quantile (clamped to [min, max]).
  h.observe(100);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);

  // 50 ones + 50 at 1024: the lower quantiles interpolate inside the
  // [1, 2) bucket, the upper ones clamp to the recorded max.
  obs::Histogram h2;
  for (int i = 0; i < 50; ++i) h2.observe(1);
  for (int i = 0; i < 50; ++i) h2.observe(1024);
  EXPECT_DOUBLE_EQ(h2.quantile(0.25), 1.49);  // rank 25 of 50 in [1, 2)
  EXPECT_DOUBLE_EQ(h2.quantile(0.75), 1024.0);
  EXPECT_LE(h2.quantile(0.5), h2.quantile(0.95));
  EXPECT_LE(h2.quantile(0.95), h2.quantile(0.99));

  // All-zero observations sit in the dedicated zero bucket.
  obs::Histogram h3;
  h3.observe(0);
  h3.observe(0);
  EXPECT_DOUBLE_EQ(h3.quantile(0.99), 0.0);
}

TEST(Metrics, QuantilesAppearInTextAndJson) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Histogram& h = reg.histogram("test_obs.quantiles");
  h.reset();
  for (int i = 1; i <= 100; ++i) h.observe(i);

  auto doc = json::parse(reg.to_json());
  const auto& hist = doc->at("histograms").at("test_obs.quantiles");
  ASSERT_TRUE(hist.has("p50"));
  ASSERT_TRUE(hist.has("p95"));
  ASSERT_TRUE(hist.has("p99"));
  EXPECT_LE(hist.at("p50").as_number(), hist.at("p95").as_number());
  EXPECT_LE(hist.at("p95").as_number(), hist.at("p99").as_number());
  EXPECT_GE(hist.at("p50").as_number(), hist.at("min").as_number());
  EXPECT_LE(hist.at("p99").as_number(), hist.at("max").as_number());

  std::string text = reg.to_text();
  EXPECT_NE(text.find("test_obs.quantiles.p50"), std::string::npos);
  EXPECT_NE(text.find("test_obs.quantiles.p99"), std::string::npos);
}

// Regression: Gauge::reset() (and MetricsRegistry::reset(), which calls
// it) must clear the high-water mark too, not just the level — otherwise
// a peak from a previous run leaks into the next run's report.
TEST(Metrics, ResetClearsGaugeHighWaterMark) {
  obs::Gauge g;
  g.set(7);
  g.set(3);
  ASSERT_EQ(g.max(), 7);
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max(), 0);
  g.set(2);
  EXPECT_EQ(g.max(), 2) << "stale high-water mark survived reset()";

  auto& reg = obs::MetricsRegistry::instance();
  obs::Gauge& rg = reg.gauge("test_obs.reset_gauge");
  rg.set(99);
  rg.set(1);
  reg.reset();
  EXPECT_EQ(rg.max(), 0);
}

TEST(Export, ChromeTraceCarriesDroppedSpanCount) {
  std::vector<obs::Span> spans(1);
  spans[0].start_ns = 0;
  spans[0].end_ns = 10;
  spans[0].phase = obs::Phase::kTileExecute;

  auto doc = json::parse(obs::chrome_trace_json(spans, /*dropped=*/5));
  EXPECT_EQ(doc->at("metadata").at("spans_dropped").as_number(), 5);
  auto clean = json::parse(obs::chrome_trace_json(spans));
  EXPECT_EQ(clean->at("metadata").at("spans_dropped").as_number(), 0);
}

TEST(Tracer, RecordsPerThreadAndCollectsByRank) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "built with DPGEN_TRACE=0";
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.clear();
  tracer.set_enabled(true);

  constexpr int kThreads = 4;
  constexpr int kSpansEach = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &tracer] {
      obs::Tracer::set_identity(/*rank=*/7, /*thread=*/t);
      for (int i = 0; i < kSpansEach; ++i) {
        IntVec tile{t, i};
        std::int64_t now = tracer.now_ns();
        tracer.record(obs::Phase::kTileExecute, now, now + 10, &tile);
      }
    });
  }
  for (auto& th : threads) th.join();
  tracer.set_enabled(false);

  auto spans = tracer.collect_rank(7);
  ASSERT_EQ(spans.size(), kThreads * kSpansEach);
  std::set<int> seen_threads;
  for (const auto& s : spans) {
    EXPECT_EQ(s.rank, 7);
    EXPECT_EQ(s.ncoord, 2);
    EXPECT_GE(s.end_ns, s.start_ns);
    seen_threads.insert(s.thread);
  }
  EXPECT_EQ(seen_threads.size(), kThreads);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_TRUE(tracer.collect_rank(12345).empty());
  tracer.clear();
  EXPECT_TRUE(tracer.collect_rank(7).empty());
}

TEST(Tracer, DisabledRecordingIsANoOp) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.clear();
  tracer.set_enabled(false);
  tracer.record(obs::Phase::kIdle, 0, 1);
  EXPECT_TRUE(tracer.collect_all().empty());
}

TEST(Tracer, SpanSerializationRoundTrips) {
  std::vector<obs::Span> spans(3);
  spans[0].start_ns = 10;
  spans[0].end_ns = 20;
  spans[0].rank = 1;
  spans[0].thread = 2;
  spans[0].phase = obs::Phase::kPack;
  spans[0].ncoord = 2;
  spans[0].coord[0] = 5;
  spans[0].coord[1] = -3;
  spans[2].phase = obs::Phase::kBarrier;

  auto bytes = obs::serialize_spans(spans);
  bytes.resize(bytes.size() + 37);  // gather pads buffers; must tolerate
  auto back = obs::deserialize_spans(bytes.data(), bytes.size());
  ASSERT_EQ(back.size(), spans.size());
  EXPECT_EQ(back[0].start_ns, 10);
  EXPECT_EQ(back[0].coord[1], -3);
  EXPECT_EQ(back[0].phase, obs::Phase::kPack);
  EXPECT_EQ(back[2].phase, obs::Phase::kBarrier);
}

TEST(Export, ChromeTraceShape) {
  std::vector<obs::Span> spans(2);
  spans[0].start_ns = 1000;
  spans[0].end_ns = 2500;
  spans[0].rank = 0;
  spans[0].thread = 1;
  spans[0].phase = obs::Phase::kTileExecute;
  spans[0].ncoord = 2;
  spans[0].coord[0] = 3;
  spans[0].coord[1] = 4;
  spans[1].start_ns = 0;
  spans[1].end_ns = 50;
  spans[1].rank = -1;  // setup span
  spans[1].phase = obs::Phase::kLoadBalance;

  auto doc = json::parse(obs::chrome_trace_json(spans));
  const auto& events = doc->at("traceEvents").as_array();
  int x_events = 0, m_events = 0;
  for (const auto& ev : events) {
    const std::string& ph = ev->at("ph").as_string();
    if (ph == "X") {
      ++x_events;
      EXPECT_GE(ev->at("dur").as_number(), 0.0);
      EXPECT_TRUE(ev->has("pid"));
      EXPECT_TRUE(ev->has("tid"));
    } else {
      EXPECT_EQ(ph, "M");
      ++m_events;
    }
  }
  EXPECT_EQ(x_events, 2);
  EXPECT_GE(m_events, 2);  // at least one track-name pair
  // The tile-execute event carries its coordinates in the name.
  bool found = false;
  for (const auto& ev : events)
    if (ev->at("ph").as_string() == "X" &&
        ev->at("name").as_string().find("(3, 4)") != std::string::npos)
      found = true;
  EXPECT_TRUE(found);
}

// End-to-end: a 2-rank x 2-thread engine run with tracing on.  Checks the
// exported timeline structurally and the counters against conservation
// laws the scheduler must satisfy.
TEST(ObsEndToEnd, MultiRankTraceAndConservation) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "built with DPGEN_TRACE=0";

  // Lattice-path counting on [0,N]^2 (same recurrence as test_engine).
  spec::ProblemSpec s;
  s.name("paths")
      .params({"N"})
      .vars({"x", "y"})
      .constraint("x >= 0")
      .constraint("x <= N")
      .constraint("y >= 0")
      .constraint("y <= N")
      .dep("r1", {1, 0})
      .dep("r2", {0, 1})
      .load_balance({"x", "y"})
      .tile_widths({4, 4})
      .center_code("V[loc] = 0.0;");
  tiling::TilingModel model(s);
  const IntVec params{15};

  engine::EngineOptions opt;
  opt.ranks = 2;
  opt.threads = 2;
  std::string trace_path = testing::TempDir() + "/dpgen_obs_trace.json";
  std::string metrics_path = testing::TempDir() + "/dpgen_obs_metrics.json";
  opt.trace_json_path = trace_path;
  opt.metrics_json_path = metrics_path;

  auto center = [](const engine::Cell& c) {
    double v = 0.0;
    int any = 0;
    if (c.valid[0]) { v += c.V[c.loc_dep[0]]; any = 1; }
    if (c.valid[1]) { v += c.V[c.loc_dep[1]]; any = 1; }
    c.V[c.loc] = any ? v : 1.0;
  };
  auto result = engine::run(model, params, center, opt);

  // Conservation: each rank executes exactly the tiles it owns...
  tiling::LoadBalancer balancer(model, params, opt.ranks, opt.balance);
  ASSERT_EQ(result.rank_stats.size(), 2u);
  long long total_tiles = 0;
  for (int r = 0; r < opt.ranks; ++r) {
    EXPECT_EQ(result.rank_stats[static_cast<std::size_t>(r)].tiles_executed,
              balancer.owned_tiles(r))
        << "rank " << r;
    total_tiles +=
        result.rank_stats[static_cast<std::size_t>(r)].tiles_executed;
  }
  EXPECT_EQ(total_tiles, model.total_tiles(params));

  // ...and every produced edge (local or remote) is delivered exactly once.
  long long sent = 0, delivered = 0;
  for (const auto& st : result.rank_stats) {
    sent += st.local_edges + st.remote_edges;
    delivered += st.table.delivered_edges;
    EXPECT_GE(st.idle_seconds, 0.0);
    EXPECT_GE(st.blocked_send_seconds, 0.0);
  }
  EXPECT_EQ(sent, delivered);

  // The exported trace parses, and has one tile-execute X event per
  // executed tile with sane timestamps and rank/thread track ids.
  auto doc = json::parse(read_file(trace_path));
  long long tile_events = 0;
  std::set<std::pair<int, int>> tracks;
  for (const auto& ev : doc->at("traceEvents").as_array()) {
    if (ev->at("ph").as_string() != "X") continue;
    EXPECT_GE(ev->at("ts").as_number(), 0.0);
    EXPECT_GE(ev->at("dur").as_number(), 0.0);
    int pid = static_cast<int>(ev->at("pid").as_number());
    int tid = static_cast<int>(ev->at("tid").as_number());
    if (ev->at("cat").as_string() == "tile_execute") {
      ++tile_events;
      EXPECT_TRUE(pid == 0 || pid == 1) << "unexpected rank track " << pid;
      tracks.insert({pid, tid});
    }
  }
  EXPECT_EQ(tile_events, model.total_tiles(params));
  EXPECT_GT(tracks.size(), 1u) << "expected multiple rank x thread tracks";

  // The metrics dump parses and covers the runtime counters.
  auto metrics = json::parse(read_file(metrics_path));
  EXPECT_GE(metrics->at("counters").at("runtime.tiles_executed").as_number(),
            static_cast<double>(model.total_tiles(params)));
  EXPECT_TRUE(metrics->at("histograms").has("runtime.tile_latency_ns"));

  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());

  // Tracing must be switched back off after the traced run.
  EXPECT_FALSE(obs::Tracer::instance().enabled());
}

// A second run without tracing must not grow the merged span set.
TEST(ObsEndToEnd, UntracedRunRecordsNothing) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.clear();

  spec::ProblemSpec s;
  s.name("countdown")
      .params({"N"})
      .vars({"x"})
      .constraint("x >= 0")
      .constraint("x <= N")
      .dep("r1", {1})
      .load_balance({"x"})
      .tile_widths({4})
      .center_code("V[loc] = 0.0;");
  tiling::TilingModel model(s);
  auto center = [](const engine::Cell& c) {
    c.V[c.loc] = c.valid[0] ? c.V[c.loc_dep[0]] + 1.0 : 1.0;
  };
  engine::EngineOptions opt;
  opt.ranks = 2;
  auto result = engine::run(model, {31}, center, opt);
  EXPECT_EQ(result.total(&runtime::RunStats::tiles_executed),
            model.total_tiles({31}));
  EXPECT_TRUE(tracer.collect_all().empty());
  EXPECT_TRUE(tracer.merged().empty());
}

}  // namespace
}  // namespace dpgen
