// Unit tests for the runtime scheduling structures: tile priority order
// (Fig. 5), the pending-tile table / ready queue (section V.B) and the edge
// message wire format.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <limits>
#include <thread>

#include "runtime/driver.hpp"
#include "runtime/order.hpp"
#include "runtime/tile_table.hpp"

namespace dpgen::runtime {
namespace {

TEST(TileOrderCmp, ColumnMajorPrefersMostAdvanced) {
  // 2D, both dims positive deps: execution runs from high indices to low,
  // so the tile furthest along (smaller t0, the balanced dim) runs first —
  // it is the one that feeds the neighbouring rank.
  TileOrder o({0, 1}, {1, 1}, PriorityPolicy::kColumnMajor);
  EXPECT_TRUE(o.earlier({2, 9}, {3, 0}));
  EXPECT_TRUE(o.earlier({2, 4}, {2, 5}));
  EXPECT_FALSE(o.earlier({2, 5}, {2, 4}));
  EXPECT_FALSE(o.earlier({1, 1}, {1, 1}));  // irreflexive
}

TEST(TileOrderCmp, DimPriorityReordersSignificance) {
  // dim 1 most significant: smaller t1 wins regardless of t0.
  TileOrder o({1, 0}, {1, 1}, PriorityPolicy::kColumnMajor);
  EXPECT_TRUE(o.earlier({9, 2}, {0, 3}));
}

TEST(TileOrderCmp, NegativeSignFlipsDirection) {
  // dim 0 has negative deps: execution low -> high, so larger t0 is
  // further along and runs first.
  TileOrder o({0}, {-1}, PriorityPolicy::kColumnMajor);
  EXPECT_TRUE(o.earlier({2}, {1}));
  EXPECT_FALSE(o.earlier({1}, {2}));
}

TEST(TileOrderCmp, LevelSetComparesDiagonals) {
  TileOrder o({0, 1}, {1, 1}, PriorityPolicy::kLevelSet);
  // Wavefront order: the less-progressed level set (larger coordinate sum
  // under positive deps) runs first.
  EXPECT_TRUE(o.earlier({2, 2}, {3, 0}));
  EXPECT_TRUE(o.earlier({1, 3}, {2, 1}));
  // Same level: ties broken by the column-major rule (most advanced in
  // the priority dim first).
  EXPECT_TRUE(o.earlier({2, 2}, {3, 1}));
}

TEST(TileOrderCmp, StrictWeakOrderingOnGrid) {
  for (auto policy : {PriorityPolicy::kColumnMajor, PriorityPolicy::kLevelSet}) {
    TileOrder o({0, 1}, {1, -1}, policy);
    std::vector<IntVec> tiles;
    for (Int a = 0; a < 4; ++a)
      for (Int b = 0; b < 4; ++b) tiles.push_back({a, b});
    for (const auto& x : tiles)
      for (const auto& y : tiles) {
        EXPECT_FALSE(o.earlier(x, y) && o.earlier(y, x));
        if (x != y) EXPECT_TRUE(o.earlier(x, y) || o.earlier(y, x));
      }
  }
}

TileOrder default_order() {
  return TileOrder({0, 1}, {1, 1}, PriorityPolicy::kColumnMajor);
}

TEST(TileTableOps, SeededTileIsImmediatelyReady) {
  TileTable<double> table(default_order());
  table.seed_ready({2, 2});
  auto t = table.pop();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->tile, (IntVec{2, 2}));
  EXPECT_TRUE(t->edges.empty());
  EXPECT_FALSE(table.pop().has_value());
}

TEST(TileTableOps, TileReadyOnlyWhenAllDepsDelivered) {
  TileTable<double> table(default_order());
  auto two_deps = [](const IntVec&) { return 2; };
  table.deliver({1, 1}, two_deps, {0, {1.0}});
  EXPECT_FALSE(table.pop().has_value());
  table.deliver({1, 1}, two_deps, {1, {2.0, 3.0}});
  auto t = table.pop();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->tile, (IntVec{1, 1}));
  ASSERT_EQ(t->edges.size(), 2u);
  EXPECT_EQ(t->edges[0].edge, 0);
  EXPECT_EQ(t->edges[1].payload, (std::vector<double>{2.0, 3.0}));
}

TEST(TileTableOps, PopRespectsPriority) {
  TileTable<double> table(default_order());
  table.seed_ready({0, 5});
  table.seed_ready({3, 1});
  table.seed_ready({3, 4});
  EXPECT_EQ(table.pop()->tile, (IntVec{0, 5}));
  EXPECT_EQ(table.pop()->tile, (IntVec{3, 1}));
  EXPECT_EQ(table.pop()->tile, (IntVec{3, 4}));
}

TEST(TileTableOps, StatsTrackPeaks) {
  TileTable<double> table(default_order());
  auto one_dep = [](const IntVec&) { return 1; };
  auto two_deps = [](const IntVec&) { return 2; };
  table.deliver({0, 0}, two_deps, {0, {1.0, 2.0}});
  table.deliver({0, 1}, one_dep, {1, {3.0}});  // becomes ready
  auto s = table.stats();
  EXPECT_EQ(s.delivered_edges, 2);
  EXPECT_EQ(s.peak_pending_tiles, 2);  // both seen pending at some point
  EXPECT_EQ(s.peak_buffered_edges, 2);
  EXPECT_EQ(s.peak_buffered_scalars, 3);
  (void)table.pop();  // pops {0,1}; its edge memory released
  table.deliver({0, 0}, two_deps, {1, {4.0}});
  (void)table.pop();
  EXPECT_TRUE(table.idle());
}

TEST(TileTableOps, IdleReflectsState) {
  TileTable<float> table(default_order());
  EXPECT_TRUE(table.idle());
  table.deliver({0, 0}, [](const IntVec&) { return 2; }, {0, {}});
  EXPECT_FALSE(table.idle());
}

TEST(ShardedTable, SingleShardBehavesLikePlainTable) {
  TileOrder order = default_order();
  ShardedTileTable<double> table(order, 1);
  table.seed_ready({0, 5});
  table.seed_ready({3, 1});
  EXPECT_EQ(table.pop(0)->tile, (IntVec{0, 5}));
  EXPECT_EQ(table.pop(0)->tile, (IntVec{3, 1}));
  EXPECT_FALSE(table.pop(0).has_value());
}

TEST(ShardedTable, StealingFindsWorkInOtherShards) {
  ShardedTileTable<double> table(default_order(), 4);
  table.seed_ready({1, 1});  // lands in hash(tile) % 4
  // Whatever the preferred shard, the single ready tile must be found.
  for (int preferred = 0; preferred < 4; ++preferred) {
    auto t = table.pop(preferred);
    ASSERT_TRUE(t.has_value()) << "preferred " << preferred;
    table.seed_ready(t->tile);  // put it back for the next round
  }
}

TEST(ShardedTable, DeliverRoutesConsistently) {
  ShardedTileTable<double> table(default_order(), 3);
  auto two = [](const IntVec&) { return 2; };
  table.deliver({2, 2}, two, {0, {1.0}});
  EXPECT_FALSE(table.pop(0).has_value());  // still pending
  table.deliver({2, 2}, two, {1, {2.0}});  // same shard via same hash
  auto t = table.pop(0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->edges.size(), 2u);
  EXPECT_TRUE(table.idle());
}

TEST(ShardedTable, StatsAggregateAcrossShards) {
  ShardedTileTable<float> table(default_order(), 2);
  auto one = [](const IntVec&) { return 1; };
  table.deliver({0, 0}, one, {0, {1.0f, 2.0f}});
  table.deliver({5, 5}, one, {0, {3.0f}});
  auto s = table.stats();
  EXPECT_EQ(s.delivered_edges, 2);
  EXPECT_EQ(s.peak_buffered_scalars, 3);
  EXPECT_THROW(ShardedTileTable<float>(default_order(), 0), Error);
}

TEST(ShardedTable, ReadyPeakIsSimultaneousNotSummed) {
  // Tiles become ready one at a time and are popped immediately, spread
  // over both shards.  The rank-level peak must be 1 — summing per-shard
  // peaks (the old bug) would report 2.
  ShardedTileTable<float> table(default_order(), 2);
  auto one = [](const IntVec&) { return 1; };
  for (Int i = 0; i < 8; ++i) {
    table.deliver({i, i + 1}, one, {0, {1.0f}});
    ASSERT_TRUE(table.pop(0).has_value());
  }
  EXPECT_EQ(table.stats().peak_ready_tiles, 1);
}

TEST(ShardedTable, ReadyPeakTracksSimultaneousDepth) {
  ShardedTileTable<float> table(default_order(), 2);
  for (Int i = 0; i < 5; ++i) table.seed_ready({i, i});
  EXPECT_EQ(table.stats().peak_ready_tiles, 5);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(table.pop(i).has_value());
  EXPECT_FALSE(table.pop(0).has_value());
  EXPECT_EQ(table.stats().peak_ready_tiles, 5);  // peak, not current depth
}

TEST(EdgeWire, EncodeDecodeRoundTrip) {
  std::vector<double> payload{1.5, -2.25, 0.0};
  auto buf = detail::encode_edge<double>(3, {4, -1, 7}, payload);
  int edge = -1;
  IntVec consumer;
  std::vector<double> out;
  detail::decode_edge<double>(buf, 3, 8, &edge, &consumer, &out);
  EXPECT_EQ(edge, 3);
  EXPECT_EQ(consumer, (IntVec{4, -1, 7}));
  EXPECT_EQ(out, payload);
}

TEST(EdgeWire, EmptyPayloadRoundTrip) {
  auto buf = detail::encode_edge<float>(0, {9}, {});
  int edge = -1;
  IntVec consumer;
  std::vector<float> out;
  detail::decode_edge<float>(buf, 1, 8, &edge, &consumer, &out);
  EXPECT_EQ(edge, 0);
  EXPECT_EQ(consumer, (IntVec{9}));
  EXPECT_TRUE(out.empty());
}

TEST(EdgeWire, TruncatedMessageRejected) {
  auto buf = detail::encode_edge<double>(1, {2, 3}, {1.0});
  buf.pop_back();
  int edge;
  IntVec consumer;
  std::vector<double> out;
  EXPECT_THROW(detail::decode_edge<double>(buf, 2, 8, &edge, &consumer, &out),
               Error);
}

TEST(EdgeWire, MalformedHeadersRejected) {
  // A valid message we then corrupt field by field; header layout is
  // [edge, count, consumer...] as Int (8 bytes each).
  auto valid = detail::encode_edge<double>(1, {2, 3}, {1.0, 2.0});
  int edge;
  IntVec consumer;
  std::vector<double> out;

  auto corrupt = [&](std::size_t field, Int value) {
    auto buf = valid;
    std::memcpy(buf.data() + field * sizeof(Int), &value, sizeof(Int));
    return buf;
  };

  // Edge index out of range: negative or >= num_edges.
  EXPECT_THROW(detail::decode_edge<double>(corrupt(0, -1), 2, 8, &edge,
                                           &consumer, &out),
               Error);
  EXPECT_THROW(detail::decode_edge<double>(corrupt(0, 8), 2, 8, &edge,
                                           &consumer, &out),
               Error);
  // Negative payload count.
  EXPECT_THROW(detail::decode_edge<double>(corrupt(1, -1), 2, 8, &edge,
                                           &consumer, &out),
               Error);
  // Payload count overflowing the buffer (count * sizeof(S) would wrap).
  EXPECT_THROW(detail::decode_edge<double>(
                   corrupt(1, std::numeric_limits<Int>::max()), 2, 8, &edge,
                   &consumer, &out),
               Error);
  // Count claims more scalars than the buffer holds.
  EXPECT_THROW(detail::decode_edge<double>(corrupt(1, 3), 2, 8, &edge,
                                           &consumer, &out),
               Error);
  // Buffer shorter than the fixed header.
  std::vector<std::uint8_t> tiny(detail::edge_wire_header(2) - 1, 0);
  EXPECT_THROW(
      detail::decode_edge<double>(tiny, 2, 8, &edge, &consumer, &out), Error);
  // The uncorrupted message still decodes.
  detail::decode_edge<double>(valid, 2, 8, &edge, &consumer, &out);
  EXPECT_EQ(edge, 1);
  EXPECT_EQ(consumer, (IntVec{2, 3}));
  EXPECT_EQ(out, (std::vector<double>{1.0, 2.0}));
}

TEST(EdgeWire, FloatScalarsSupported) {
  std::vector<float> payload{1.0f, 2.0f};
  auto buf = detail::encode_edge<float>(2, {0, 0}, payload);
  int edge;
  IntVec consumer;
  std::vector<float> out;
  detail::decode_edge<float>(buf, 2, 8, &edge, &consumer, &out);
  EXPECT_EQ(out, payload);
}

TEST(RuntimeSnapshot, TracksPendingReadyBuffered) {
  ShardedTileTable<double> table(default_order(), 2);
  auto two = [](const IntVec&) { return 2; };
  table.deliver({1, 1}, two, {0, {1.0}});
  TableSnapshot s = table.snapshot();
  EXPECT_EQ(s.pending_tiles, 1);
  EXPECT_EQ(s.ready_tiles, 0);
  EXPECT_EQ(s.buffered_edges, 1);
  table.deliver({1, 1}, two, {1, {2.0}});
  s = table.snapshot();
  EXPECT_EQ(s.pending_tiles, 0);
  EXPECT_EQ(s.ready_tiles, 1);
  EXPECT_EQ(s.buffered_edges, 2);  // ready tiles still hold their edges
  ASSERT_TRUE(table.pop(0).has_value());
  s = table.snapshot();
  EXPECT_EQ(s.pending_tiles, 0);
  EXPECT_EQ(s.ready_tiles, 0);
  EXPECT_EQ(s.buffered_edges, 0);
}

TEST(RuntimeSnapshot, ConcurrentWithDeliverAndPop) {
  // The monitor samples snapshot() from outside the worker threads while
  // edges stream in and tiles are popped.  Every tile needs exactly two
  // edges, so any consistent observation satisfies
  //   buffered_edges == pending_tiles + 2 * ready_tiles
  // per shard — and the sum of per-shard identities is the identity on
  // the summed snapshot, no matter when each shard was read.
  constexpr Int kTiles = 2000;
  ShardedTileTable<double> table(default_order(), 4);
  auto two = [](const IntVec&) { return 2; };
  std::atomic<bool> done{false};

  std::thread producer([&] {
    for (Int i = 0; i < kTiles; ++i) {
      table.deliver({i, i + 1}, two, {0, {1.0}});
      table.deliver({i, i + 1}, two, {1, {2.0, 3.0}});
    }
  });
  std::thread consumer([&] {
    Int popped = 0;
    while (popped < kTiles) {
      auto t = table.pop(static_cast<int>(popped) % 4);
      if (t) {
        EXPECT_EQ(t->edges.size(), 2u);
        ++popped;
      }
    }
    done.store(true, std::memory_order_release);
  });

  long long observations = 0;
  while (!done.load(std::memory_order_acquire)) {
    TableSnapshot s = table.snapshot();
    EXPECT_GE(s.pending_tiles, 0);
    EXPECT_GE(s.ready_tiles, 0);
    EXPECT_GE(s.buffered_edges, 0);
    EXPECT_LE(s.pending_tiles, kTiles);
    EXPECT_EQ(s.buffered_edges, s.pending_tiles + 2 * s.ready_tiles);
    ++observations;
  }
  producer.join();
  consumer.join();
  EXPECT_GT(observations, 0);

  TableSnapshot end = table.snapshot();
  EXPECT_EQ(end.pending_tiles, 0);
  EXPECT_EQ(end.ready_tiles, 0);
  EXPECT_EQ(end.buffered_edges, 0);
  EXPECT_TRUE(table.idle());
}

// --- checkpoint/restart state round-trips (tests/test_faults.cpp holds the
// engine-level restart suite; these cover the table layer in isolation) ---

TEST(TableStateRoundTrip, PendingAndReadySurviveExportRestore) {
  TileTable<double> src(default_order());
  auto two_deps = [](const IntVec&) { return 2; };
  auto three_deps = [](const IntVec&) { return 3; };
  src.seed_ready({4, 4});
  src.deliver({1, 1}, two_deps, {0, {1.0}});              // pending, 1/2
  src.deliver({2, 2}, three_deps, {1, {2.0, 3.0}});       // pending, 1/3
  src.deliver({2, 2}, three_deps, {2, {4.0}});            // pending, 2/3
  src.deliver({3, 3}, two_deps, {0, {5.0}});              // goes ready below
  src.deliver({3, 3}, two_deps, {1, {6.0}});

  const TableState<double> state = src.export_state();
  EXPECT_EQ(state.pending.size(), 2u);
  EXPECT_EQ(state.ready.size(), 2u);

  TileTable<double> dst(default_order());
  dst.restore_state(state);
  TableSnapshot before = src.snapshot(), after = dst.snapshot();
  EXPECT_EQ(after.pending_tiles, before.pending_tiles);
  EXPECT_EQ(after.ready_tiles, before.ready_tiles);
  EXPECT_EQ(after.buffered_edges, before.buffered_edges);

  // The restored table completes exactly like the original would: the
  // missing dependencies arrive and every tile pops in priority order
  // with its full edge set.
  dst.deliver({1, 1}, two_deps, {1, {7.0}});
  dst.deliver({2, 2}, three_deps, {0, {8.0}});
  std::vector<IntVec> order;
  while (auto t = dst.pop()) {
    if (t->tile == (IntVec{1, 1}) || t->tile == (IntVec{2, 2})) {
      EXPECT_EQ(t->edges.size(), t->tile == (IntVec{2, 2}) ? 3u : 2u);
    }
    order.push_back(t->tile);
  }
  ASSERT_EQ(order.size(), 4u);
  EXPECT_TRUE(dst.idle());
}

TEST(TableStateRoundTrip, RestoredReadyTileKeepsDuplicateGuard) {
  // A tile that went ready before the export must reject re-delivered
  // edges after the restore — otherwise a restart under a duplicating
  // fault would re-execute it (the double-execution bug the chaos suite's
  // smith_waterman case caught on the live path).
  TileTable<double> src(default_order());
  auto one_dep = [](const IntVec&) { return 1; };
  src.deliver({0, 1}, one_dep, {0, {1.5}});  // immediately ready
  TileTable<double> dst(default_order());
  dst.restore_state(src.export_state());
  dst.deliver({0, 1}, one_dep, {0, {1.5}});  // duplicate of the same edge
  EXPECT_EQ(dst.stats().duplicate_edges, 1);
  auto t = dst.pop();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->tile, (IntVec{0, 1}));
  EXPECT_FALSE(dst.pop().has_value());  // not resurrected
  EXPECT_TRUE(dst.idle());
}

TEST(TableStateRoundTrip, TombstonedSlotsAreNotExported) {
  // Tiles that went ready (tombstoned slots) and recycled containers must
  // not leak into the export: only genuinely pending tiles and the
  // not-yet-popped ready queue travel.
  TileTable<double> table(default_order());
  auto one_dep = [](const IntVec&) { return 1; };
  auto two_deps = [](const IntVec&) { return 2; };
  for (Int i = 0; i < 8; ++i)
    table.deliver({i, i}, one_dep, {0, {static_cast<double>(i)}});
  for (int i = 0; i < 8; ++i) {
    auto t = table.pop();
    ASSERT_TRUE(t.has_value());
    table.recycle(std::move(*t));
  }
  table.deliver({9, 0}, two_deps, {0, {42.0}});
  const TableState<double> state = table.export_state();
  ASSERT_EQ(state.pending.size(), 1u);
  EXPECT_EQ(state.pending[0].tile, (IntVec{9, 0}));
  EXPECT_EQ(state.pending[0].waiting, 1);
  ASSERT_EQ(state.pending[0].edges.size(), 1u);
  EXPECT_EQ(state.pending[0].edges[0].payload, (std::vector<double>{42.0}));
  EXPECT_TRUE(state.ready.empty());
}

TEST(TableStateRoundTrip, ShardedExportRestoresAcrossShardCounts) {
  // The exported state is shard-agnostic: a 4-shard table's state restores
  // into a 2-shard table (the engine re-shards after a restart when the
  // surviving world is smaller).
  TileOrder order = default_order();
  ShardedTileTable<double> src(order, 4);
  auto two_deps = [](const IntVec&) { return 2; };
  for (Int i = 0; i < 12; ++i) {
    src.deliver({i, i + 1}, two_deps, {0, {static_cast<double>(i)}});
    if (i % 2 == 0)
      src.deliver({i, i + 1}, two_deps, {1, {static_cast<double>(-i)}});
  }
  ShardedTileTable<double> dst(order, 2);
  dst.restore_state(src.export_state());
  TableSnapshot before = src.snapshot(), after = dst.snapshot();
  EXPECT_EQ(after.pending_tiles, before.pending_tiles);
  EXPECT_EQ(after.ready_tiles, before.ready_tiles);
  EXPECT_EQ(after.buffered_edges, before.buffered_edges);
  // Finish the odd tiles and drain everything through the steal path.
  for (Int i = 1; i < 12; i += 2)
    dst.deliver({i, i + 1}, two_deps, {1, {static_cast<double>(-i)}});
  int popped = 0;
  while (dst.pop(0)) ++popped;
  EXPECT_EQ(popped, 12);
  EXPECT_TRUE(dst.idle());
}

TEST(TableStateRoundTrip, DuplicateEdgeStatSurvivesConcurrentDelivery) {
  // The duplicate guard must hold under concurrent duplicate delivery:
  // exactly one copy of each edge lands no matter the interleaving.
  TileOrder order = default_order();
  ShardedTileTable<double> table(order, 2);
  table.enable_replay_guard();  // duplicates only occur on guarded runs
  auto four_deps = [](const IntVec&) { return 4; };
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w)
    workers.emplace_back([&, w] {
      // Every thread delivers every edge of every tile: kThreads copies
      // of each, all but one of which must be dropped.
      (void)w;
      for (Int t = 0; t < 6; ++t)
        for (int e = 0; e < 4; ++e)
          table.deliver({t, t}, four_deps,
                        {e, {static_cast<double>(t * 4 + e)}});
    });
  for (auto& t : workers) t.join();
  int popped = 0;
  while (auto t = table.pop(0)) {
    EXPECT_EQ(t->edges.size(), 4u);
    ++popped;
  }
  EXPECT_EQ(popped, 6);
  const TableStats s = table.stats();
  EXPECT_EQ(s.delivered_edges, 6 * 4);
  EXPECT_EQ(s.duplicate_edges, 6 * 4 * (kThreads - 1));
  EXPECT_TRUE(table.idle());
}

}  // namespace
}  // namespace dpgen::runtime
