#pragma once
// Shared helpers for the deterministic chaos suite (tests/test_faults.cpp).
//
// The suite's core assertion is *byte-identical output under faults*: a run
// with a seeded FaultPlan (rank kill, message drop/duplication/delay, slow
// node) must print exactly the RESULT/MAX lines of the fault-free run.
// That is a meaningful check because every DP here is confluent — cell
// values are schedule-independent, and the tracked maximum tie-breaks on
// the lexicographically smallest location — so any difference means the
// fault-tolerance machinery lost or double-applied work.
//
// result_lines() reproduces the exact printf formats a generated program
// uses for its RESULT/MAX lines (src/codegen/generator.cpp), so the
// equality proven here is the one end users would diff.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "problems/problems.hpp"
#include "tiling/model.hpp"

namespace dpgen::chaos {

/// One seed problem family, sized small enough that the full scenario
/// sweep stays inside the tier-1 time budget while still spanning many
/// tiles per rank (so faults land mid-run, not after the work is done).
struct ChaosCase {
  std::string name;
  problems::Problem problem;
  IntVec params;
  bool track_max = false;
};

inline std::vector<ChaosCase> chaos_cases() {
  std::vector<ChaosCase> cases;
  {
    ChaosCase c;
    c.name = "bandit2";
    c.problem = problems::bandit2(/*tile_width=*/3);
    // Horizon 12: at 8 the wedge is so small that a rank can finish in
    // under a dozen transport ops, before any mid-run fault can fire.
    c.params = {12};
    cases.push_back(std::move(c));
  }
  {
    const std::vector<std::string> seqs = {problems::random_dna(20, 11),
                                           problems::random_dna(24, 12)};
    ChaosCase c;
    c.name = "lcs";
    c.problem = problems::lcs(seqs, /*tile_width=*/4);
    c.params = problems::sequence_params(seqs);
    cases.push_back(std::move(c));
  }
  {
    ChaosCase c;
    c.name = "edit_distance";
    c.problem = problems::edit_distance(problems::random_dna(22, 3),
                                        problems::random_dna(26, 4),
                                        /*tile_width=*/4);
    c.params = {22, 26};
    cases.push_back(std::move(c));
  }
  {
    const std::vector<std::string> seqs = {problems::random_dna(8, 5),
                                           problems::random_dna(9, 6),
                                           problems::random_dna(10, 7)};
    ChaosCase c;
    c.name = "msa";
    c.problem = problems::msa(seqs, /*tile_width=*/3);
    c.params = problems::sequence_params(seqs);
    cases.push_back(std::move(c));
  }
  {
    ChaosCase c;
    c.name = "smith_waterman";
    c.problem = problems::smith_waterman(problems::random_dna(24, 8),
                                         problems::random_dna(28, 9));
    c.params = {24, 28};
    c.track_max = true;
    cases.push_back(std::move(c));
  }
  return cases;
}

/// Formats the recorded values (sorted by coordinate for determinism) and
/// the tracked maximum exactly as a generated program prints them.
inline std::string result_lines(const engine::EngineResult& result,
                                bool track_max) {
  std::vector<IntVec> keys;
  keys.reserve(result.values.size());
  for (const auto& kv : result.values) keys.push_back(kv.first);
  std::sort(keys.begin(), keys.end());
  std::string out;
  char buf[64];
  auto point = [&](const char* label, const IntVec& p) {
    out += label;
    out += " (";
    for (std::size_t k = 0; k < p.size(); ++k) {
      std::snprintf(buf, sizeof(buf), k ? ", %lld" : "%lld",
                    static_cast<long long>(p[k]));
      out += buf;
    }
  };
  for (const IntVec& k : keys) {
    point("RESULT", k);
    std::snprintf(buf, sizeof(buf), ") = %.17g\n", result.values.at(k));
    out += buf;
  }
  if (track_max) {
    point("MAX", result.max_point);
    std::snprintf(buf, sizeof(buf), ") = %.17g\n", result.max_value);
    out += buf;
  }
  return out;
}

/// Runs one case through the engine with the case's probes and objective
/// shape applied on top of `opt`.
inline engine::EngineResult run_case(const ChaosCase& c,
                                     engine::EngineOptions opt) {
  tiling::TilingModel model(c.problem.spec);
  opt.probes.push_back(c.problem.objective);
  opt.track_max = c.track_max;
  return engine::run(model, c.params, c.problem.kernel, opt);
}

inline engine::EngineOptions base_options(int ranks, int threads,
                                          int queue_shards) {
  engine::EngineOptions opt;
  opt.ranks = ranks;
  opt.threads = threads;
  opt.queue_shards = queue_shards;
  // Generous hard deadline: recovery (recover_stall_seconds) must fire
  // long before this, and a hang is better reported as a stall than a
  // ctest timeout.
  opt.stall_timeout_seconds = 60.0;
  return opt;
}

/// The fault-free reference output for a case at the given topology.
inline std::string clean_lines(const ChaosCase& c, int ranks, int threads,
                               int queue_shards) {
  return result_lines(run_case(c, base_options(ranks, threads, queue_shards)),
                      c.track_max);
}

}  // namespace dpgen::chaos
